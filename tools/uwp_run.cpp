// uwp_run: execute any ScenarioSpec file against any driver in the stack.
// The scenario is entirely data — geometry, channel, protocol, sensors,
// solver, DES toggles, fleet mix all come from the spec — so opening a new
// experiment means writing a JSON file, not a C++ main.
//
//   uwp_run --spec=examples/specs/fleet_mixed.json
//   uwp_run --spec=... --mode=sweep --threads=8 --out=metrics.json
//
// Flags:
//   --spec=FILE    the ScenarioSpec (required); parsed and validated first,
//                  so a malformed file fails with path-qualified errors
//   --mode=M       override the spec's mode: round | sweep | des | fleet | serve
//   --threads=N    override the worker count (sweep threads / fleet shards /
//                  serve workers)
//   --out=FILE     write run metrics as JSON; the deterministic part lives
//                  under "metrics" (bit-identical at any --threads), wall
//                  clock and friends under "timing"
//   --telemetry-out=FILE
//                  fleet/serve only: attach a telemetry::Collector (forcing
//                  telemetry on even if the spec leaves it disabled) and
//                  write its report — virtual-time-windowed counters under
//                  "counters" (bit-identical at any --threads), span/sample
//                  histograms, ring drop accounting, and flight-recorder
//                  dumps under "timing"
//   --slo-out=FILE fleet/serve only: write the SLO scoreboard — the
//                  deterministic counter/error reducer under "slo"
//                  (bit-identical at any --threads; CI byte-diffs exactly
//                  that object), round-latency tails under "timing"
//   --trace-spans-out=FILE
//                  fleet/serve only: force-enable causal round tracing and
//                  write the spans as Chrome trace-event JSON, loadable
//                  as-is in Perfetto / chrome://tracing; span structure is
//                  deterministic, wall-clock timing is not
//   --control-log-out=FILE
//                  fleet/serve only: force-enable the self-tuning control
//                  plane (and telemetry, which drives it) and write the
//                  ControlLog as JSON — every window-boundary decision the
//                  policy engine took. The document is deterministic:
//                  byte-identical at any --threads (CI diffs exactly that)
//   --print-spec   dump the normalized spec (defaults filled in) and exit
//
// Every output path is probed (opened for append) before the run starts, so
// a typo'd directory fails in milliseconds with exit 2 and a path-qualified
// message instead of after minutes of simulation.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <memory>
#include <string>
#include <thread>

#include "config/factory.hpp"
#include "config/json.hpp"
#include "config/spec.hpp"
#include "control/engine.hpp"
#include "control/log.hpp"
#include "fleet/recorder.hpp"
#include "fleet/server.hpp"
#include "fleet/service.hpp"
#include "sim/metrics.hpp"
#include "telemetry/collector.hpp"
#include "telemetry/slo.hpp"
#include "telemetry/trace.hpp"
#include "util/stats.hpp"

namespace {

using uwp::config::Json;

struct Args {
  std::string spec_path;
  std::string mode;
  std::string out_path;
  std::string telemetry_path;
  std::string slo_path;
  std::string trace_path;
  std::string control_path;
  long threads = -1;  // -1 = keep the spec's value
  bool print_spec = false;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --spec=FILE [--mode=round|sweep|des|fleet|serve] "
               "[--threads=N] [--out=FILE] [--telemetry-out=FILE] "
               "[--slo-out=FILE] [--trace-spans-out=FILE] "
               "[--control-log-out=FILE] [--print-spec]\n",
               argv0);
  return 2;
}

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--spec=", 7) == 0) {
      args.spec_path = a + 7;
    } else if (std::strncmp(a, "--mode=", 7) == 0) {
      args.mode = a + 7;
    } else if (std::strncmp(a, "--threads=", 10) == 0) {
      char* end = nullptr;
      args.threads = std::strtol(a + 10, &end, 10);
      if (end == a + 10 || *end != '\0' || args.threads < 0 || args.threads > 1024)
        return false;
    } else if (std::strncmp(a, "--out=", 6) == 0) {
      args.out_path = a + 6;
    } else if (std::strncmp(a, "--telemetry-out=", 16) == 0) {
      args.telemetry_path = a + 16;
    } else if (std::strncmp(a, "--slo-out=", 10) == 0) {
      args.slo_path = a + 10;
    } else if (std::strncmp(a, "--trace-spans-out=", 18) == 0) {
      args.trace_path = a + 18;
    } else if (std::strncmp(a, "--control-log-out=", 18) == 0) {
      args.control_path = a + 18;
    } else if (std::strcmp(a, "--print-spec") == 0) {
      args.print_spec = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a);
      return false;
    }
  }
  return !args.spec_path.empty();
}

// Fail fast on unwritable output destinations: probe by opening for append
// (which creates the file but never clobbers existing content), so the run
// exits 2 immediately instead of simulating for minutes and then losing the
// result to a typo'd directory.
int probe_writable(const std::string& path, const char* flag) {
  if (path.empty()) return 0;
  std::ofstream probe(path, std::ios::binary | std::ios::app);
  if (!probe) {
    std::fprintf(stderr, "uwp_run: %s=%s: cannot open for writing\n", flag,
                 path.c_str());
    return 2;
  }
  return 0;
}

Json summary_to_json(const uwp::Summary& s) {
  Json o = Json::object();
  o.set("count", uwp::config::u64_to_json(s.count));
  o.set("mean", uwp::config::double_to_json(s.mean));
  o.set("stddev", uwp::config::double_to_json(s.stddev));
  o.set("min", uwp::config::double_to_json(s.min));
  o.set("median", uwp::config::double_to_json(s.median));
  o.set("p90", uwp::config::double_to_json(s.p90));
  o.set("p95", uwp::config::double_to_json(s.p95));
  o.set("max", uwp::config::double_to_json(s.max));
  return o;
}

std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx", static_cast<unsigned long long>(v));
  return buf;
}

// --- telemetry report -> JSON ----------------------------------------------

Json histogram_to_json(const uwp::telemetry::Histogram& h) {
  Json o = Json::object();
  o.set("count", uwp::config::u64_to_json(h.count()));
  o.set("mean", uwp::config::double_to_json(h.mean()));
  o.set("min", uwp::config::double_to_json(h.min_seen()));
  o.set("max", uwp::config::double_to_json(h.max_seen()));
  o.set("p50", uwp::config::double_to_json(h.quantile(0.50)));
  o.set("p99", uwp::config::double_to_json(h.quantile(0.99)));
  o.set("p999", uwp::config::double_to_json(h.quantile(0.999)));
  return o;
}

// Flight-recorder events rendered for post-mortem reading: the id enum is
// resolved through the family named by `kind`, and the trace id is included
// only where it means something (kTraceSpan).
Json flight_event_to_json(const uwp::telemetry::Event& e) {
  namespace tel = uwp::telemetry;
  Json o = Json::object();
  switch (e.kind) {
    case tel::EventKind::kCounter:
      o.set("kind", Json::string("counter"));
      o.set("id", Json::string(tel::to_string(static_cast<tel::Counter>(e.id))));
      break;
    case tel::EventKind::kSpan:
      o.set("kind", Json::string("span"));
      o.set("id", Json::string(tel::to_string(static_cast<tel::Stage>(e.id))));
      break;
    case tel::EventKind::kSample:
      o.set("kind", Json::string("sample"));
      o.set("id", Json::string(tel::to_string(static_cast<tel::Sample>(e.id))));
      break;
    case tel::EventKind::kTraceSpan:
      o.set("kind", Json::string("trace_span"));
      o.set("id", Json::string(tel::to_string(static_cast<tel::TraceOp>(e.id))));
      o.set("trace", uwp::config::u64_to_json(e.ref));
      break;
  }
  o.set("t", uwp::config::double_to_json(e.t));
  o.set("value", uwp::config::double_to_json(e.value));
  return o;
}

// The telemetry document mirrors the metrics document's split: "counters"
// is the deterministic plane (virtual-time-windowed sums, bit-identical at
// any shard/worker/thread count — CI diffs exactly this object), "timing"
// is the run-varying plane (span/sample histograms, ring drop accounting,
// trace-span accounting, and flight-recorder dumps — dumps ride the lossy
// ring, so their contents are best-effort by design).
Json telemetry_report_to_json(const uwp::config::ScenarioSpec& spec,
                              const uwp::telemetry::TelemetryReport& rep) {
  namespace tel = uwp::telemetry;
  Json totals = Json::object();
  for (std::size_t c = 0; c < tel::kCounterCount; ++c)
    totals.set(tel::to_string(static_cast<tel::Counter>(c)),
               uwp::config::u64_to_json(rep.totals[c]));
  Json windows = Json::array();
  for (const tel::Snapshot& snap : rep.snapshots) {
    Json w = Json::object();
    w.set("window", uwp::config::u64_to_json(snap.window));
    for (std::size_t c = 0; c < tel::kCounterCount; ++c)
      w.set(tel::to_string(static_cast<tel::Counter>(c)),
            uwp::config::u64_to_json(snap.counts[c]));
    windows.push_back(std::move(w));
  }
  Json counters = Json::object();
  counters.set("window", uwp::config::double_to_json(rep.options.window));
  counters.set("totals", std::move(totals));
  counters.set("windows", std::move(windows));

  Json spans = Json::object();
  for (std::size_t s = 0; s < tel::kStageCount; ++s)
    spans.set(tel::to_string(static_cast<tel::Stage>(s)),
              histogram_to_json(rep.spans[s]));
  Json samples = Json::object();
  for (std::size_t s = 0; s < tel::kSampleCount; ++s)
    samples.set(tel::to_string(static_cast<tel::Sample>(s)),
                histogram_to_json(rep.samples[s]));
  Json flight = Json::array();
  for (const tel::FlightDump& d : rep.flight) {
    Json dump = Json::object();
    dump.set("stream", uwp::config::u64_to_json(d.stream));
    dump.set("trigger", Json::string(tel::to_string(d.trigger)));
    dump.set("t", uwp::config::double_to_json(d.t));
    dump.set("window", uwp::config::u64_to_json(d.window));
    Json events = Json::array();
    for (const tel::Event& e : d.events) events.push_back(flight_event_to_json(e));
    dump.set("events", std::move(events));
    flight.push_back(std::move(dump));
  }

  Json timing = Json::object();
  timing.set("streams", uwp::config::u64_to_json(rep.streams));
  timing.set("events", uwp::config::u64_to_json(rep.events));
  timing.set("dropped", uwp::config::u64_to_json(rep.dropped));
  timing.set("trace_spans", uwp::config::u64_to_json(rep.trace.size()));
  timing.set("trace_dropped", uwp::config::u64_to_json(rep.trace_dropped));
  timing.set("spans", std::move(spans));
  timing.set("samples", std::move(samples));
  timing.set("flight", std::move(flight));

  Json doc = Json::object();
  doc.set("name", Json::string(spec.name));
  doc.set("mode", Json::string(uwp::config::to_string(spec.mode)));
  doc.set("counters", std::move(counters));
  doc.set("timing", std::move(timing));
  return doc;
}

// --- control log -> JSON ----------------------------------------------------

// The whole document is the deterministic plane: the ControlLog is a pure
// function of (window index, counter snapshot, control config), so these
// bytes are identical at any shard/worker/thread count — CI diffs the file.
Json control_log_to_json(const uwp::config::ScenarioSpec& spec,
                         const uwp::control::ControlLog& log) {
  Json actions = Json::array();
  for (const uwp::control::ControlAction& a : log.actions) {
    Json o = Json::object();
    o.set("window", uwp::config::u64_to_json(a.window));
    o.set("kind", Json::string(uwp::control::to_string(a.kind)));
    // Hexfloat: the log's identity is bit-level.
    o.set("value", uwp::config::double_to_json(a.value, true));
    actions.push_back(std::move(o));
  }
  Json doc = Json::object();
  doc.set("name", Json::string(spec.name));
  doc.set("mode", Json::string(uwp::config::to_string(spec.mode)));
  doc.set("windows_observed", uwp::config::u64_to_json(log.windows_observed));
  doc.set("digest", Json::string(hex64(uwp::control::control_log_digest(log))));
  doc.set("actions", std::move(actions));
  return doc;
}

// --- SLO report -> JSON -----------------------------------------------------

Json slo_cdf_to_json(const uwp::telemetry::SloCdf& c) {
  Json o = Json::object();
  o.set("count", uwp::config::u64_to_json(c.count));
  o.set("mean", uwp::config::double_to_json(c.mean));
  o.set("min", uwp::config::double_to_json(c.min));
  o.set("max", uwp::config::double_to_json(c.max));
  o.set("p50", uwp::config::double_to_json(c.p50));
  o.set("p90", uwp::config::double_to_json(c.p90));
  o.set("p95", uwp::config::double_to_json(c.p95));
  o.set("p99", uwp::config::double_to_json(c.p99));
  o.set("p999", uwp::config::double_to_json(c.p999));
  return o;
}

// Same split as every other document this tool writes: "slo" is the
// deterministic scoreboard (counter totals, rates, pooled and per-kind
// error CDFs — byte-identical at any --threads; CI diffs exactly this
// object), "timing" holds the run-varying round-latency tails.
Json slo_report_to_json(const uwp::config::ScenarioSpec& spec,
                        const uwp::telemetry::SloReport& r) {
  Json slo = Json::object();
  slo.set("sessions", uwp::config::u64_to_json(r.sessions));
  slo.set("rounds", uwp::config::u64_to_json(r.rounds));
  slo.set("localized", uwp::config::u64_to_json(r.localized));
  slo.set("coasts", uwp::config::u64_to_json(r.coasts));
  slo.set("evicts", uwp::config::u64_to_json(r.evicts));
  slo.set("sheds", uwp::config::u64_to_json(r.sheds));
  slo.set("defers", uwp::config::u64_to_json(r.defers));
  slo.set("localize_failures", uwp::config::u64_to_json(r.localize_failures));
  slo.set("warm_start_hits", uwp::config::u64_to_json(r.warm_hits));
  slo.set("warm_start_misses", uwp::config::u64_to_json(r.warm_misses));
  slo.set("localized_rate", uwp::config::double_to_json(r.localized_rate));
  slo.set("coast_rate", uwp::config::double_to_json(r.coast_rate));
  slo.set("evict_rate", uwp::config::double_to_json(r.evict_rate));
  slo.set("shed_rate", uwp::config::double_to_json(r.shed_rate));
  slo.set("warm_start_hit_rate",
          uwp::config::double_to_json(r.warm_start_hit_rate));
  slo.set("error", slo_cdf_to_json(r.error));
  Json kinds = Json::array();
  for (const uwp::telemetry::SloKindReport& k : r.kinds) {
    Json o = Json::object();
    o.set("kind", Json::string(k.kind));
    o.set("sessions", uwp::config::u64_to_json(k.sessions));
    o.set("rounds", uwp::config::u64_to_json(k.rounds));
    o.set("localized", uwp::config::u64_to_json(k.localized));
    o.set("coasts", uwp::config::u64_to_json(k.coasts));
    o.set("localized_rate", uwp::config::double_to_json(k.localized_rate));
    o.set("coast_rate", uwp::config::double_to_json(k.coast_rate));
    o.set("error", slo_cdf_to_json(k.error));
    kinds.push_back(std::move(o));
  }
  slo.set("kinds", std::move(kinds));

  Json timing = Json::object();
  timing.set("latency_count", uwp::config::u64_to_json(r.latency_count));
  timing.set("rounds_per_sec", uwp::config::double_to_json(r.rounds_per_sec));
  timing.set("latency_p50_s", uwp::config::double_to_json(r.latency_p50_s));
  timing.set("latency_p99_s", uwp::config::double_to_json(r.latency_p99_s));
  timing.set("latency_p999_s", uwp::config::double_to_json(r.latency_p999_s));

  Json doc = Json::object();
  doc.set("name", Json::string(spec.name));
  doc.set("mode", Json::string(uwp::config::to_string(spec.mode)));
  doc.set("slo", std::move(slo));
  doc.set("timing", std::move(timing));
  return doc;
}

// --- one runner per mode; each returns the "metrics" object and fills
// --- "timing" (the only part allowed to vary run to run).

Json run_round(const uwp::config::ScenarioSpec& spec, Json& timing) {
  const uwp::sim::ScenarioRunner runner = uwp::config::make_scenario_runner(spec);
  const uwp::sim::RoundOptions opts = uwp::config::make_round_options(spec);
  uwp::Rng rng(spec.sweep.master_seed);
  uwp::sim::ScenarioRoundContext ctx(runner, opts);
  const uwp::sim::RoundResult res = ctx.run(rng);

  std::printf("one round, %zu devices: %s\n", runner.deployment().size(),
              res.ok ? "localized" : "NOT localized");
  Json metrics = Json::object();
  metrics.set("localized", Json::boolean(res.ok));
  if (res.ok) {
    metrics.set("normalized_stress",
                uwp::config::double_to_json(res.localization.normalized_stress));
    std::printf("stress %.3f m RMS\n", res.localization.normalized_stress);
  }
  Json errors = Json::array();
  for (const double e : res.error_2d) errors.push_back(uwp::config::double_to_json(e));
  metrics.set("error_2d", std::move(errors));
  timing.set("threads", uwp::config::u64_to_json(1));
  return metrics;
}

Json run_sweep(const uwp::config::ScenarioSpec& spec, Json& timing) {
  const uwp::sim::ScenarioRunner runner = uwp::config::make_scenario_runner(spec);
  const uwp::sim::RoundOptions opts = uwp::config::make_round_options(spec);
  const uwp::sim::SweepRunner sweep = uwp::config::make_sweep(spec);
  const uwp::sim::SweepResult res = sweep.run(
      [&] { return std::make_shared<uwp::sim::ScenarioRoundContext>(runner, opts); },
      [](std::size_t, uwp::Rng& rng, void* ctx) {
        auto* context = static_cast<uwp::sim::ScenarioRoundContext*>(ctx);
        uwp::sim::RoundResult round;
        context->run_into(round, rng);
        return round.error_2d;
      });

  std::printf("%zu trials (%zu failed) across %zu threads in %.3f s\n",
              res.per_trial.size(), res.failed_trials, res.threads_used,
              res.wall_seconds);
  uwp::sim::print_summary_row("per-device error", res.samples);
  Json metrics = Json::object();
  metrics.set("trials", uwp::config::u64_to_json(res.per_trial.size()));
  metrics.set("failed_trials", uwp::config::u64_to_json(res.failed_trials));
  metrics.set("error", summary_to_json(res.summary));
  timing.set("wall_seconds", uwp::config::double_to_json(res.wall_seconds));
  timing.set("threads", uwp::config::u64_to_json(res.threads_used));
  return metrics;
}

Json run_des(const uwp::config::ScenarioSpec& spec, Json& timing) {
  const uwp::des::DesScenario scenario = uwp::config::make_des_scenario(spec);
  uwp::Rng rng(spec.sweep.master_seed);
  const uwp::des::DesScenarioResult res = scenario.run(rng);

  std::printf("%zu rounds (%zu localized), period %.2f s\n", res.rounds.size(),
              res.localized_rounds, scenario.round_period_s());
  uwp::sim::print_summary_row("raw error", res.errors);
  uwp::sim::print_summary_row("tracked error", res.tracked_errors);
  Json metrics = Json::object();
  metrics.set("rounds", uwp::config::u64_to_json(res.rounds.size()));
  metrics.set("localized_rounds", uwp::config::u64_to_json(res.localized_rounds));
  metrics.set("deliveries", uwp::config::u64_to_json(res.total_deliveries));
  metrics.set("collisions", uwp::config::u64_to_json(res.total_collisions));
  metrics.set("half_duplex_drops",
              uwp::config::u64_to_json(res.total_half_duplex_drops));
  metrics.set("error", summary_to_json(uwp::summarize(res.errors)));
  metrics.set("tracked_error", summary_to_json(uwp::summarize(res.tracked_errors)));
  timing.set("threads", uwp::config::u64_to_json(1));
  return metrics;
}

// The deterministic fleet-level metrics object plus the wall-clock timing
// entries, shared verbatim by fleet and serve modes (the serve-vs-fleet
// bit-identity check in CI diffs exactly this object).
Json fleet_metrics_json(const uwp::fleet::FleetResult& res, Json& timing) {
  std::printf("%zu sessions, %zu rounds (%zu localized, %zu coasted), "
              "%zu shards, %.3f s\n",
              res.sessions.size(), res.rounds, res.localized, res.coasts,
              res.shards_used, res.wall_seconds);
  uwp::sim::print_summary_row("per-device error", res.errors);

  Json sessions = Json::array();
  for (const uwp::fleet::SessionMetrics& m : res.sessions) {
    Json s = Json::object();
    s.set("id", uwp::config::u64_to_json(m.session_id));
    s.set("kind", Json::string(uwp::sim::to_string(m.kind)));
    s.set("rounds", uwp::config::u64_to_json(m.rounds));
    s.set("localized", uwp::config::u64_to_json(m.localized));
    s.set("coasts", uwp::config::u64_to_json(m.coasts));
    s.set("mean_error", uwp::config::double_to_json(m.mean_error()));
    s.set("digest", Json::string(hex64(m.digest)));
    sessions.push_back(std::move(s));
  }
  Json metrics = Json::object();
  metrics.set("rounds", uwp::config::u64_to_json(res.rounds));
  metrics.set("localized", uwp::config::u64_to_json(res.localized));
  metrics.set("coasts", uwp::config::u64_to_json(res.coasts));
  metrics.set("fleet_digest", Json::string(hex64(res.fleet_digest)));
  metrics.set("error", summary_to_json(res.summary));
  metrics.set("sessions", std::move(sessions));

  timing.set("wall_seconds", uwp::config::double_to_json(res.wall_seconds));
  timing.set("shards", uwp::config::u64_to_json(res.shards_used));
  if (!res.round_latency_s.empty()) {
    const uwp::sim::RateLatency rl =
        uwp::sim::rate_latency(res.rounds, res.wall_seconds, res.round_latency_s);
    timing.set("rounds_per_sec", uwp::config::double_to_json(rl.rounds_per_sec));
    timing.set("round_p50_s", uwp::config::double_to_json(rl.p50_s));
    timing.set("round_p99_s", uwp::config::double_to_json(rl.p99_s));
    timing.set("round_p999_s", uwp::config::double_to_json(rl.p999_s));
  }
  return metrics;
}

Json run_fleet(const uwp::config::ScenarioSpec& spec, Json& timing,
               uwp::telemetry::Collector* telemetry,
               uwp::control::ControlEngine* engine,
               uwp::fleet::FleetResult& fleet_out) {
  const uwp::fleet::FleetService service = uwp::config::make_fleet_service(spec);
  fleet_out = service.run(nullptr, telemetry, engine);
  return fleet_metrics_json(fleet_out, timing);
}

Json run_serve(const uwp::config::ScenarioSpec& spec, Json& timing,
               uwp::telemetry::Collector* telemetry,
               uwp::control::ControlEngine* engine,
               uwp::fleet::FleetResult& fleet_out) {
  uwp::fleet::Server server = uwp::config::make_fleet_server(spec);
  const std::vector<uwp::sim::GroupScenario> workload =
      uwp::config::make_workload(spec);
  uwp::fleet::RingBufferTransport transport(spec.fleet.server.transport_capacity);

  // Producer side: stream the workload's frames through the transport while
  // this thread is the server's ingest loop.
  uwp::fleet::FeedOptions feed_opts;
  feed_opts.tick_period_s = spec.fleet.server.tick_period_s;
  std::exception_ptr feed_error;
  std::thread feeder([&] {
    try {
      uwp::fleet::feed_workload(transport, workload,
                                spec.fleet.options.master_seed, feed_opts);
    } catch (...) {
      feed_error = std::current_exception();
      transport.close();
    }
  });

  uwp::fleet::ServerResult res;
  try {
    res = server.serve(transport, nullptr, telemetry, engine);
  } catch (...) {
    transport.close();
    feeder.join();
    throw;
  }
  feeder.join();
  if (feed_error != nullptr) std::rethrow_exception(feed_error);

  fleet_out = std::move(res.fleet);
  Json metrics = fleet_metrics_json(fleet_out, timing);
  const uwp::fleet::ShaperStats& sh = res.stats.shaper;
  std::printf("ingest: %zu frames, %zu admitted / %zu shed rounds, "
              "%zu defers, schedule %s (%s)\n",
              sh.frames, sh.rounds_admitted, sh.rounds_shed, sh.defer_events,
              hex64(res.schedule_digest).c_str(),
              res.stats.schedule_mismatches == 0 ? "verified" : "MISMATCH");

  Json serving = Json::object();
  serving.set("policy",
              Json::string(to_string(spec.fleet.server.options.shaping.policy)));
  serving.set("frames", uwp::config::u64_to_json(sh.frames));
  serving.set("rounds_admitted", uwp::config::u64_to_json(sh.rounds_admitted));
  serving.set("rounds_shed", uwp::config::u64_to_json(sh.rounds_shed));
  serving.set("defer_events", uwp::config::u64_to_json(sh.defer_events));
  serving.set("frames_deferred", uwp::config::u64_to_json(sh.frames_deferred));
  serving.set("max_backlog", uwp::config::u64_to_json(sh.max_backlog));
  serving.set("peak_occupancy",
              uwp::config::double_to_json(res.stats.peak_occupancy));
  serving.set("schedule_digest", Json::string(hex64(res.schedule_digest)));
  serving.set("schedule_verified",
              Json::boolean(res.stats.schedule_mismatches == 0));
  metrics.set("serving", std::move(serving));

  timing.set("frames_received", uwp::config::u64_to_json(res.stats.frames_received));
  timing.set("send_waits", uwp::config::u64_to_json(transport.send_waits()));
  return metrics;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) return usage(argv[0]);

  uwp::config::ScenarioSpec spec;
  try {
    spec = uwp::config::load_spec(args.spec_path);
  } catch (const uwp::config::SpecError& e) {
    std::fprintf(stderr, "uwp_run: %s\n", e.what());
    return 2;
  }

  if (!args.mode.empty()) {
    bool known = false;
    for (const uwp::config::RunMode m :
         {uwp::config::RunMode::kRound, uwp::config::RunMode::kSweep,
          uwp::config::RunMode::kDes, uwp::config::RunMode::kFleet,
          uwp::config::RunMode::kServe}) {
      if (args.mode != uwp::config::to_string(m)) continue;
      spec.mode = m;
      known = true;
    }
    if (!known) {
      std::fprintf(stderr, "uwp_run: unknown mode \"%s\"\n", args.mode.c_str());
      return 2;
    }
  }
  if (args.threads >= 0) {
    spec.sweep.threads = static_cast<std::size_t>(args.threads);
    spec.fleet.options.shards = static_cast<std::size_t>(args.threads);
    spec.fleet.server.options.workers = static_cast<std::size_t>(args.threads);
  }

  if (args.print_spec) {
    std::fputs(uwp::config::write_spec(spec).c_str(), stdout);
    return 0;
  }

  if (int rc = probe_writable(args.out_path, "--out")) return rc;
  if (int rc = probe_writable(args.telemetry_path, "--telemetry-out")) return rc;
  if (int rc = probe_writable(args.slo_path, "--slo-out")) return rc;
  if (int rc = probe_writable(args.trace_path, "--trace-spans-out")) return rc;
  if (int rc = probe_writable(args.control_path, "--control-log-out")) return rc;

  const bool control_run = !args.control_path.empty() || spec.control.enabled;
  const bool telemetry_run = !args.telemetry_path.empty() ||
                             !args.slo_path.empty() || !args.trace_path.empty() ||
                             spec.telemetry.enabled || control_run;
  if (telemetry_run && spec.mode != uwp::config::RunMode::kFleet &&
      spec.mode != uwp::config::RunMode::kServe) {
    std::fprintf(stderr,
                 "uwp_run: telemetry and control (--telemetry-out/--slo-out/"
                 "--trace-spans-out/--control-log-out) are only available in "
                 "fleet/serve mode\n");
    return 2;
  }
  std::unique_ptr<uwp::telemetry::Collector> collector;
  if (telemetry_run) {
    // The output flags imply collection even when the spec leaves it off,
    // and --trace-spans-out force-enables span recording the same way.
    uwp::telemetry::TelemetryOptions topts = uwp::config::make_telemetry_options(spec);
    topts.enabled = true;
    if (!args.trace_path.empty()) topts.trace = true;
    collector = std::make_unique<uwp::telemetry::Collector>(topts);
  }
  std::unique_ptr<uwp::control::ControlEngine> engine;
  if (control_run) {
    // --control-log-out implies the control plane even when the spec leaves
    // it off (the engine needs no other configuration than the defaults).
    uwp::control::ControlConfig ccfg = uwp::config::make_control_config(spec);
    ccfg.enabled = true;
    engine = std::make_unique<uwp::control::ControlEngine>(
        ccfg, uwp::config::make_control_baseline(spec));
  }

  std::printf("[%s] %s (mode %s)\n", args.spec_path.c_str(), spec.name.c_str(),
              uwp::config::to_string(spec.mode));
  Json doc = Json::object();
  doc.set("name", Json::string(spec.name));
  doc.set("mode", Json::string(uwp::config::to_string(spec.mode)));
  Json timing = Json::object();
  Json metrics;
  uwp::fleet::FleetResult fleet_res;
  try {
    switch (spec.mode) {
      case uwp::config::RunMode::kRound:
        metrics = run_round(spec, timing);
        break;
      case uwp::config::RunMode::kSweep:
        metrics = run_sweep(spec, timing);
        break;
      case uwp::config::RunMode::kDes:
        metrics = run_des(spec, timing);
        break;
      case uwp::config::RunMode::kFleet:
        metrics = run_fleet(spec, timing, collector.get(), engine.get(), fleet_res);
        break;
      case uwp::config::RunMode::kServe:
        metrics = run_serve(spec, timing, collector.get(), engine.get(), fleet_res);
        break;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "uwp_run: %s\n", e.what());
    return 1;
  }
  if (engine != nullptr) {
    const uwp::control::ControlLog& clog = engine->log();
    std::printf("control: %llu windows, %zu actions, log %s\n",
                static_cast<unsigned long long>(clog.windows_observed),
                clog.actions.size(),
                hex64(uwp::control::control_log_digest(clog)).c_str());
    // The summary rides the deterministic metrics object: the log is a pure
    // function of the counter plane, so it is --threads invariant too.
    Json control = Json::object();
    control.set("windows", uwp::config::u64_to_json(clog.windows_observed));
    control.set("actions", uwp::config::u64_to_json(clog.actions.size()));
    control.set("digest",
                Json::string(hex64(uwp::control::control_log_digest(clog))));
    metrics.set("control", std::move(control));
    if (!args.control_path.empty()) {
      std::ofstream cout_(args.control_path, std::ios::binary);
      if (!cout_) {
        std::fprintf(stderr, "uwp_run: cannot open %s\n", args.control_path.c_str());
        return 1;
      }
      cout_ << uwp::config::write_json(control_log_to_json(spec, clog));
      std::printf("control log written to %s\n", args.control_path.c_str());
    }
  }
  doc.set("metrics", std::move(metrics));
  doc.set("timing", std::move(timing));

  if (collector != nullptr) {
    // One report drains everything; the telemetry, trace, and SLO documents
    // are all views over the same drained state.
    const uwp::telemetry::TelemetryReport rep = collector->report();
    std::printf("telemetry: %zu streams, %llu events (%llu dropped), "
                "%zu counter windows\n",
                rep.streams, static_cast<unsigned long long>(rep.events),
                static_cast<unsigned long long>(rep.dropped),
                rep.snapshots.size());
    if (!rep.flight.empty())
      std::printf("flight recorder: %zu dumps\n", rep.flight.size());
    if (!args.telemetry_path.empty()) {
      std::ofstream tout(args.telemetry_path, std::ios::binary);
      if (!tout) {
        std::fprintf(stderr, "uwp_run: cannot open %s\n",
                     args.telemetry_path.c_str());
        return 1;
      }
      tout << uwp::config::write_json(telemetry_report_to_json(spec, rep));
      std::printf("telemetry written to %s\n", args.telemetry_path.c_str());
    }
    if (!args.trace_path.empty()) {
      std::ofstream tout(args.trace_path, std::ios::binary);
      if (!tout) {
        std::fprintf(stderr, "uwp_run: cannot open %s\n", args.trace_path.c_str());
        return 1;
      }
      uwp::telemetry::write_chrome_trace(tout, rep.trace);
      std::printf("trace: %zu spans (%llu over cap), structure %s, "
                  "written to %s\n",
                  rep.trace.size(),
                  static_cast<unsigned long long>(rep.trace_dropped),
                  hex64(uwp::telemetry::trace_structure_digest(rep.trace)).c_str(),
                  args.trace_path.c_str());
    }
    if (!args.slo_path.empty()) {
      const uwp::telemetry::SloReport slo = uwp::telemetry::build_slo_report(
          uwp::fleet::make_slo_inputs(fleet_res, &rep));
      std::ofstream sout(args.slo_path, std::ios::binary);
      if (!sout) {
        std::fprintf(stderr, "uwp_run: cannot open %s\n", args.slo_path.c_str());
        return 1;
      }
      sout << uwp::config::write_json(slo_report_to_json(spec, slo));
      std::printf("slo: %.1f%% localized, error p99 %.3f m, written to %s\n",
                  100.0 * slo.localized_rate, slo.error.p99,
                  args.slo_path.c_str());
    }
  }

  if (!args.out_path.empty()) {
    std::ofstream out(args.out_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "uwp_run: cannot open %s\n", args.out_path.c_str());
      return 1;
    }
    out << uwp::config::write_json(doc);
    std::printf("metrics written to %s\n", args.out_path.c_str());
  }
  return 0;
}
