#include <gtest/gtest.h>

#include <cmath>

#include "core/ambiguity.hpp"
#include "core/outlier_detection.hpp"
#include "util/random.hpp"

namespace uwp::core {
namespace {

Matrix distance_matrix(const std::vector<Vec2>& pts) {
  const std::size_t n = pts.size();
  Matrix d(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) d(i, j) = distance(pts[i], pts[j]);
  return d;
}

TEST(Subsets, EnumerationCounts) {
  EXPECT_EQ(subsets_of_size(5, 1).size(), 5u);
  EXPECT_EQ(subsets_of_size(5, 2).size(), 10u);
  EXPECT_EQ(subsets_of_size(10, 3).size(), 120u);
  EXPECT_EQ(subsets_of_size(3, 3).size(), 1u);
  EXPECT_TRUE(subsets_of_size(2, 3).empty());
}

TEST(Subsets, ElementsAreSortedAndUnique) {
  for (const auto& s : subsets_of_size(6, 3)) {
    ASSERT_EQ(s.size(), 3u);
    EXPECT_LT(s[0], s[1]);
    EXPECT_LT(s[1], s[2]);
    EXPECT_LT(s[2], 6u);
  }
}

TEST(OutlierDetection, CleanDataPassesThrough) {
  uwp::Rng rng(1);
  const std::vector<Vec2> truth = {{0, 0}, {8, 1}, {3, 9}, {-6, 4}, {-2, -7}};
  const Matrix d = distance_matrix(truth);
  const OutlierResult res =
      localize_with_outlier_detection(d, Matrix::ones(5, 5), {}, rng);
  EXPECT_FALSE(res.outliers_suspected);
  EXPECT_TRUE(res.dropped_links.empty());
  EXPECT_LT(aligned_rmse(res.positions, truth), 0.05);
}

TEST(OutlierDetection, SingleCorruptedLinkFoundAndDropped) {
  uwp::Rng rng(2);
  const std::vector<Vec2> truth = {{0, 0}, {10, 0}, {4, 9}, {-7, 5}, {-3, -8}};
  Matrix d = distance_matrix(truth);
  // Occluded link 0-1: multipath adds ~7 m.
  d(0, 1) = d(1, 0) = d(0, 1) + 7.0;
  const OutlierResult res =
      localize_with_outlier_detection(d, Matrix::ones(5, 5), {}, rng);
  EXPECT_TRUE(res.outliers_suspected);
  ASSERT_EQ(res.dropped_links.size(), 1u);
  EXPECT_EQ(res.dropped_links[0], (Edge{0, 1}));
  EXPECT_LT(aligned_rmse(res.positions, truth), 0.5);
  EXPECT_LT(res.normalized_stress, 1.5);
}

TEST(OutlierDetection, OutlierErrorBelowTriangleInequalityStillCaught) {
  // The paper notes occlusion errors often do NOT break the triangle
  // inequality; stress-based detection must still catch them.
  uwp::Rng rng(3);
  const std::vector<Vec2> truth = {{0, 0}, {12, 0}, {6, 10}, {-8, 6}, {-4, -9}};
  Matrix d = distance_matrix(truth);
  const double bumped = d(0, 1) + 4.0;  // 16 m: within 0-2-1 path (~22 m)
  d(0, 1) = d(1, 0) = bumped;
  EXPECT_LT(bumped, d(0, 2) + d(2, 1));  // triangle inequality intact
  const OutlierResult res =
      localize_with_outlier_detection(d, Matrix::ones(5, 5), {}, rng);
  EXPECT_TRUE(res.outliers_suspected);
  ASSERT_FALSE(res.dropped_links.empty());
  EXPECT_EQ(res.dropped_links[0], (Edge{0, 1}));
}

TEST(OutlierDetection, RefusesDropsThatBreakRealizability) {
  // With only 2n-3 + 1 links, dropping the "outlier" would leave a graph
  // that is not uniquely realizable -> the drop must not be attempted even
  // if it would reduce stress.
  uwp::Rng rng(4);
  const std::vector<Vec2> truth = {{0, 0}, {10, 0}, {5, 8}, {-5, 8}};
  Matrix d = distance_matrix(truth);
  Matrix w = Matrix::ones(4, 4);
  // K4 has 6 edges and is redundantly rigid; removing any one edge leaves a
  // Laman graph which is NOT redundantly rigid -> no drop is allowed.
  d(0, 1) = d(1, 0) = d(0, 1) + 6.0;  // corrupt one link anyway
  const OutlierResult res = localize_with_outlier_detection(d, w, {}, rng);
  EXPECT_TRUE(res.outliers_suspected);
  EXPECT_TRUE(res.dropped_links.empty());
}

TEST(OutlierDetection, MaxOutlierBudgetRespected) {
  uwp::Rng rng(5);
  const std::vector<Vec2> truth = {{0, 0},  {12, 0}, {5, 11}, {-9, 6},
                                   {-5, -9}, {8, -7}};
  Matrix d = distance_matrix(truth);
  // Corrupt 4 links; only up to 3 may be dropped.
  d(0, 1) = d(1, 0) = d(0, 1) + 8.0;
  d(2, 3) = d(3, 2) = d(2, 3) + 7.0;
  d(4, 5) = d(5, 4) = d(4, 5) + 9.0;
  d(1, 4) = d(4, 1) = d(1, 4) + 6.0;
  OutlierOptions opts;
  opts.max_outliers = 3;
  const OutlierResult res = localize_with_outlier_detection(d, Matrix::ones(6, 6),
                                                            opts, rng);
  EXPECT_LE(res.dropped_links.size(), 3u);
}

TEST(Ambiguity, TranslateLeaderToOrigin) {
  const std::vector<Vec2> pts = {{3, 4}, {5, 6}, {-1, 0}};
  const auto out = translate_leader_to_origin(pts);
  EXPECT_DOUBLE_EQ(out[0].x, 0.0);
  EXPECT_DOUBLE_EQ(out[0].y, 0.0);
  EXPECT_DOUBLE_EQ(out[1].x, 2.0);
  EXPECT_DOUBLE_EQ(out[2].y, -4.0);
}

TEST(Ambiguity, RotationPutsNodeOneOnBearing) {
  std::vector<Vec2> pts = {{0, 0}, {5, 5}, {10, 0}};
  const double target = uwp::deg_to_rad(90.0);
  const auto out = resolve_rotation(pts, target);
  EXPECT_NEAR(bearing(out[1]), target, 1e-12);
  // Distances preserved.
  EXPECT_NEAR(distance(out[0], out[2]), 10.0, 1e-12);
  EXPECT_NEAR(out[1].norm(), std::sqrt(50.0), 1e-12);
}

TEST(Ambiguity, RotationRequiresLeaderAtOrigin) {
  std::vector<Vec2> pts = {{1, 1}, {5, 5}};
  EXPECT_THROW(resolve_rotation(pts, 0.0), std::invalid_argument);
}

TEST(Ambiguity, FlipConfigurationMirrorsAcrossLeaderLine) {
  const std::vector<Vec2> pts = {{0, 0}, {10, 0}, {5, 3}, {2, -4}};
  const auto flipped = flip_configuration(pts);
  EXPECT_NEAR(flipped[0].x, 0.0, 1e-12);
  EXPECT_NEAR(flipped[1].x, 10.0, 1e-12);  // axis nodes fixed
  EXPECT_NEAR(flipped[2].y, -3.0, 1e-12);
  EXPECT_NEAR(flipped[3].y, 4.0, 1e-12);
}

TEST(Ambiguity, VoteScoreCountsConsistentSides) {
  // Node 2 left (+1 vote with mic_sign +1), node 3 right.
  const std::vector<Vec2> pts = {{0, 0}, {10, 0}, {5, 3}, {2, -4}};
  const std::vector<MicVote> votes = {{2, 1}, {3, -1}};
  EXPECT_DOUBLE_EQ(flip_vote_score(pts, votes), 2.0);
  // Mirrored configuration scores -2.
  EXPECT_DOUBLE_EQ(flip_vote_score(flip_configuration(pts), votes), -2.0);
}

TEST(Ambiguity, ResolveFlipPicksHigherScore) {
  const std::vector<Vec2> truth = {{0, 0}, {10, 0}, {5, 3}, {2, -4}};
  const std::vector<MicVote> votes = {{2, 1}, {3, -1}};
  // Feed the mirrored configuration; the votes must flip it back.
  const FlipDecision d = resolve_flip(flip_configuration(truth), votes);
  EXPECT_TRUE(d.flipped);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(d.positions[i].x, truth[i].x, 1e-9);
    EXPECT_NEAR(d.positions[i].y, truth[i].y, 1e-9);
  }
}

TEST(Ambiguity, MajorityVoteOverridesMinorityError) {
  const std::vector<Vec2> pts = {{0, 0}, {10, 0}, {5, 3}, {2, -4}, {7, 6}};
  // Node 3's vote is wrong (says left, actually right); majority correct.
  const std::vector<MicVote> votes = {{2, 1}, {3, 1}, {4, 1}};
  const FlipDecision d = resolve_flip(pts, votes);
  EXPECT_FALSE(d.flipped);
}

TEST(Ambiguity, TieKeepsOriginal) {
  const std::vector<Vec2> pts = {{0, 0}, {10, 0}, {5, 3}, {2, -4}};
  const std::vector<MicVote> votes = {{2, 1}, {3, 1}};  // one right, one wrong
  const FlipDecision d = resolve_flip(pts, votes);
  EXPECT_FALSE(d.flipped);
  EXPECT_DOUBLE_EQ(d.score_original, d.score_flipped);
}

TEST(Ambiguity, VotesOnAxisNodesIgnored) {
  const std::vector<Vec2> pts = {{0, 0}, {10, 0}, {5, 3}};
  const std::vector<MicVote> votes = {{0, 1}, {1, -1}};  // invalid voters
  EXPECT_DOUBLE_EQ(flip_vote_score(pts, votes), 0.0);
}

}  // namespace
}  // namespace uwp::core
