#include <gtest/gtest.h>

#include <cmath>

#include "core/mds3d.hpp"
#include "core/trilateration.hpp"
#include "util/random.hpp"

namespace uwp::core {
namespace {

TEST(Trilateration, ExactRangesExactPosition) {
  const std::vector<Vec2> anchors = {{0, 0}, {20, 0}, {0, 20}, {20, 20}};
  const Vec2 truth{7.0, 12.5};
  std::vector<double> ranges;
  for (const Vec2& a : anchors) ranges.push_back(distance(truth, a));
  const auto res = trilaterate_2d(anchors, ranges);
  ASSERT_TRUE(res.has_value());
  EXPECT_NEAR(res->position.x, truth.x, 1e-6);
  EXPECT_NEAR(res->position.y, truth.y, 1e-6);
  EXPECT_NEAR(res->residual_rms_m, 0.0, 1e-6);
}

TEST(Trilateration, NoisyRangesBoundedError) {
  uwp::Rng rng(1);
  const std::vector<Vec2> anchors = {{0, 0}, {30, 0}, {15, 25}};
  const Vec2 truth{12.0, 8.0};
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> ranges;
    for (const Vec2& a : anchors)
      ranges.push_back(std::max(0.1, distance(truth, a) + rng.symmetric(0.5)));
    const auto res = trilaterate_2d(anchors, ranges);
    ASSERT_TRUE(res.has_value());
    EXPECT_LT(distance(res->position, truth), 2.0);
  }
}

TEST(Trilateration, CollinearAnchorsRejectedOrDegenerate) {
  const std::vector<Vec2> anchors = {{0, 0}, {10, 0}, {20, 0}};
  const Vec2 truth{5.0, 7.0};
  std::vector<double> ranges;
  for (const Vec2& a : anchors) ranges.push_back(distance(truth, a));
  // Collinear anchors cannot resolve the mirror ambiguity. Seeded on the
  // anchor axis the iteration stays there (zero cross-axis gradient) and the
  // residual betrays the failure; an off-axis seed converges to one of the
  // two mirror solutions.
  const auto on_axis = trilaterate_2d(anchors, ranges);
  ASSERT_TRUE(on_axis.has_value());
  EXPECT_GT(on_axis->residual_rms_m, 1.0);  // visibly bad fit
  const auto seeded = trilaterate_2d(anchors, ranges, {}, Vec2{5.0, 3.0});
  ASSERT_TRUE(seeded.has_value());
  EXPECT_NEAR(std::abs(seeded->position.y), 7.0, 0.2);
  EXPECT_NEAR(seeded->position.x, 5.0, 0.2);
}

TEST(Trilateration, InputValidation) {
  EXPECT_FALSE(trilaterate_2d({{0, 0}, {1, 0}}, {1.0, 2.0}).has_value());
  EXPECT_FALSE(trilaterate_2d({{0, 0}, {1, 0}, {0, 1}}, {1.0}).has_value());
}

TEST(Gdop, SurroundingAnchorsBeatOneSidedAnchors) {
  const Vec2 target{0, 0};
  const std::vector<Vec2> surrounding = {{20, 0}, {-20, 0}, {0, 20}, {0, -20}};
  const std::vector<Vec2> one_sided = {{20, 0}, {22, 2}, {24, -1}, {26, 1}};
  EXPECT_LT(gdop_2d(surrounding, target), gdop_2d(one_sided, target));
}

TEST(Gdop, DegenerateGeometryIsInfinite) {
  EXPECT_TRUE(std::isinf(gdop_2d({{10, 0}, {20, 0}}, {0, 0})));
  EXPECT_TRUE(std::isinf(gdop_2d({{10, 0}}, {0, 0})));
}

Matrix distance_matrix_3d(const std::vector<Vec3>& pts) {
  const std::size_t n = pts.size();
  Matrix d(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) d(i, j) = distance(pts[i], pts[j]);
  return d;
}

TEST(Smacof3d, ExactDistancesRecoverShape) {
  uwp::Rng rng(2);
  const std::vector<Vec3> truth = {{0, 0, 2},   {12, 1, 4}, {3, 14, 1},
                                   {-9, 6, 3},  {-4, -11, 5}, {8, -7, 2}};
  std::vector<double> depths;
  for (const Vec3& p : truth) depths.push_back(p.z);
  const Smacof3dResult res =
      smacof_3d(distance_matrix_3d(truth), Matrix::ones(6, 6), depths, {}, rng);
  EXPECT_LT(res.normalized_stress, 0.05);
  // Depth anchoring pins z near the sensor readings.
  for (std::size_t i = 0; i < truth.size(); ++i)
    EXPECT_NEAR(res.positions[i].z, truth[i].z, 0.3) << "node " << i;
}

TEST(Smacof3d, DepthPenaltyPinsZ) {
  uwp::Rng rng(3);
  const std::vector<Vec3> truth = {{0, 0, 1}, {10, 0, 3}, {0, 10, 5}, {10, 10, 2},
                                   {5, 5, 4}};
  std::vector<double> depths;
  for (const Vec3& p : truth) depths.push_back(p.z);
  Smacof3dOptions heavy;
  heavy.depth_weight = 100.0;
  const Smacof3dResult res =
      smacof_3d(distance_matrix_3d(truth), Matrix::ones(5, 5), depths, heavy, rng);
  for (std::size_t i = 0; i < truth.size(); ++i)
    EXPECT_NEAR(res.positions[i].z, truth[i].z, 0.1);
}

TEST(Smacof3d, WithoutDepthsStillEmbeds) {
  uwp::Rng rng(4);
  const std::vector<Vec3> truth = {{0, 0, 0}, {10, 0, 2}, {0, 10, 4}, {10, 10, 1},
                                   {5, 4, 3}, {-4, 6, 2}};
  const Smacof3dResult res =
      smacof_3d(distance_matrix_3d(truth), Matrix::ones(6, 6), {}, {}, rng);
  EXPECT_LT(res.normalized_stress, 0.1);
}

TEST(Smacof3d, NoisyDepthsDegradeGracefully) {
  // The ablation story: with noisy distances, raw 3D embedding has more
  // freedom to misplace nodes than the paper's 2D projection, but the depth
  // penalty keeps it usable.
  uwp::Rng rng(5);
  const std::vector<Vec3> truth = {{0, 0, 2}, {14, 2, 4}, {4, 15, 1},
                                   {-10, 7, 3}, {-5, -12, 5}, {9, -8, 2}};
  std::vector<double> depths;
  for (const Vec3& p : truth) depths.push_back(p.z + rng.symmetric(0.4));
  Matrix d = distance_matrix_3d(truth);
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = i + 1; j < 6; ++j) {
      d(i, j) = std::max(0.5, d(i, j) + rng.symmetric(0.8));
      d(j, i) = d(i, j);
    }
  const Smacof3dResult res = smacof_3d(d, Matrix::ones(6, 6), depths, {}, rng);
  double worst = 0.0;
  for (std::size_t i = 0; i < 6; ++i) {
    // Compare pairwise distances (3D embedding is only unique up to rigid
    // motion); use the stress as the primary check and z sanity as second.
    worst = std::max(worst, std::abs(res.positions[i].z - truth[i].z));
  }
  EXPECT_LT(res.normalized_stress, 1.0);
  EXPECT_LT(worst, 1.5);
}

TEST(Smacof3d, Validation) {
  uwp::Rng rng(6);
  EXPECT_THROW(smacof_3d(Matrix(3, 2), Matrix(3, 3), {}, {}, rng),
               std::invalid_argument);
  EXPECT_THROW(smacof_3d(Matrix(3, 3), Matrix(3, 3), {1.0}, {}, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace uwp::core
