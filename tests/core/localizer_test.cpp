#include "core/localizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/projection.hpp"
#include "util/random.hpp"

namespace uwp::core {
namespace {

struct Truth {
  std::vector<Vec3> positions;  // leader at origin
};

// Build exact measurement input from ground-truth 3D positions.
LocalizationInput exact_input(const Truth& t) {
  const std::size_t n = t.positions.size();
  LocalizationInput in;
  in.distances = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      in.distances(i, j) = distance(t.positions[i], t.positions[j]);
  in.weights = Matrix::ones(n, n);
  in.depths.resize(n);
  for (std::size_t i = 0; i < n; ++i) in.depths[i] = t.positions[i].z;
  in.pointing_bearing_rad = bearing(t.positions[1].xy());
  // Perfect votes from the true geometry.
  for (std::size_t i = 2; i < n; ++i) {
    const double side =
        side_of_line(t.positions[i].xy(), {0, 0}, t.positions[1].xy());
    in.votes.push_back({i, side > 0 ? 1 : -1});
  }
  return in;
}

Truth five_device_truth() {
  return {{{0, 0, 1.5},
           {8, 2, 2.0},
           {3, 11, 1.0},
           {-7, 6, 2.5},
           {-4, -9, 3.0}}};
}

TEST(Projection, RoundTripWithDepths) {
  const Truth t = five_device_truth();
  const std::size_t n = t.positions.size();
  Matrix d3(n, n);
  std::vector<double> depths(n);
  for (std::size_t i = 0; i < n; ++i) depths[i] = t.positions[i].z;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      d3(i, j) = distance(t.positions[i], t.positions[j]);
  const Matrix d2 = project_to_2d(d3, depths);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_NEAR(d2(i, j), distance(t.positions[i].xy(), t.positions[j].xy()), 1e-9);
  const Matrix lifted = lift_to_3d(d2, depths);
  EXPECT_LT(lifted.max_abs_diff(d3), 1e-9);
}

TEST(Projection, NegativeRadicandClampsToZero) {
  Matrix d3(2, 2, 0.0);
  d3(0, 1) = d3(1, 0) = 1.0;
  const std::vector<double> depths = {0.0, 5.0};  // depth gap > distance
  const Matrix d2 = project_to_2d(d3, depths);
  EXPECT_DOUBLE_EQ(d2(0, 1), 0.0);
}

TEST(Projection, ShapeValidation) {
  EXPECT_THROW(project_to_2d(Matrix(3, 2), std::vector<double>(3, 0.0)),
               std::invalid_argument);
  EXPECT_THROW(project_to_2d(Matrix(3, 3), std::vector<double>(2, 0.0)),
               std::invalid_argument);
}

TEST(Localizer, ExactInputExactOutput) {
  const Truth t = five_device_truth();
  uwp::Rng rng(1);
  const Localizer loc;
  const LocalizationResult res = loc.localize(exact_input(t), rng);
  ASSERT_EQ(res.positions.size(), 5u);
  // Leader at the origin.
  EXPECT_NEAR(res.positions[0].x, 0.0, 1e-9);
  EXPECT_NEAR(res.positions[0].y, 0.0, 1e-9);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(res.positions[i].x, t.positions[i].x, 0.05) << "node " << i;
    EXPECT_NEAR(res.positions[i].y, t.positions[i].y, 0.05) << "node " << i;
    EXPECT_DOUBLE_EQ(res.positions[i].z, t.positions[i].z);
  }
  EXPECT_FALSE(res.outliers_suspected);
}

TEST(Localizer, NoisyInputBoundedError) {
  const Truth t = five_device_truth();
  uwp::Rng rng(2);
  LocalizationInput in = exact_input(t);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = i + 1; j < 5; ++j) {
      in.distances(i, j) = std::max(0.5, in.distances(i, j) + rng.symmetric(0.8));
      in.distances(j, i) = in.distances(i, j);
    }
  for (double& h : in.depths) h += rng.symmetric(0.4);
  const Localizer loc;
  const LocalizationResult res = loc.localize(in, rng);
  for (std::size_t i = 1; i < 5; ++i) {
    const double err = distance(res.positions[i].xy(), t.positions[i].xy());
    EXPECT_LT(err, 3.0) << "node " << i;
  }
}

TEST(Localizer, MissingLinkHandled) {
  const Truth t = five_device_truth();
  uwp::Rng rng(3);
  LocalizationInput in = exact_input(t);
  in.weights(2, 4) = in.weights(4, 2) = 0.0;  // one link lost
  const Localizer loc;
  const LocalizationResult res = loc.localize(in, rng);
  for (std::size_t i = 1; i < 5; ++i)
    EXPECT_LT(distance(res.positions[i].xy(), t.positions[i].xy()), 0.5);
}

TEST(Localizer, OccludedLinkRecoveredByOutlierDetection) {
  const Truth t = five_device_truth();
  uwp::Rng rng(4);
  LocalizationInput in = exact_input(t);
  in.distances(0, 1) += 6.0;
  in.distances(1, 0) = in.distances(0, 1);
  const Localizer loc;
  const LocalizationResult res = loc.localize(in, rng);
  EXPECT_TRUE(res.outliers_suspected);
  ASSERT_FALSE(res.dropped_links.empty());
  EXPECT_EQ(res.dropped_links[0], (Edge{0, 1}));
  for (std::size_t i = 1; i < 5; ++i)
    EXPECT_LT(distance(res.positions[i].xy(), t.positions[i].xy()), 1.0);
}

TEST(Localizer, WrongFlipWithInvertedVotes) {
  // All votes inverted: the result should be the mirror image.
  const Truth t = five_device_truth();
  uwp::Rng rng(5);
  LocalizationInput in = exact_input(t);
  for (MicVote& v : in.votes) v.mic_sign = -v.mic_sign;
  const Localizer loc;
  const LocalizationResult res = loc.localize(in, rng);
  // Node 2 ends up on the wrong side of the leader->1 line.
  const double true_side = side_of_line(t.positions[2].xy(), {0, 0}, t.positions[1].xy());
  const double est_side =
      side_of_line(res.positions[2].xy(), {0, 0}, res.positions[1].xy());
  EXPECT_LT(true_side * est_side, 0.0);
}

TEST(Localizer, PointingErrorRotatesResult) {
  const Truth t = five_device_truth();
  uwp::Rng rng(6);
  LocalizationInput in = exact_input(t);
  const double eps = uwp::deg_to_rad(10.0);
  in.pointing_bearing_rad += eps;
  const Localizer loc;
  const LocalizationResult res = loc.localize(in, rng);
  // Node 1 sits exactly on the (wrong) pointed bearing; its error is
  // approximately |P1| * eps.
  const double expected = t.positions[1].xy().norm() * eps;
  const double err = distance(res.positions[1].xy(), t.positions[1].xy());
  EXPECT_NEAR(err, expected, 0.3);
}

TEST(Localizer, InputValidation) {
  uwp::Rng rng(7);
  const Localizer loc;
  LocalizationInput in;
  in.distances = Matrix(1, 1);
  in.weights = Matrix(1, 1);
  in.depths = {0.0};
  EXPECT_THROW(loc.localize(in, rng), std::invalid_argument);

  in.distances = Matrix(3, 3);
  in.weights = Matrix(3, 3);
  in.depths = {0.0, 1.0};  // wrong length
  EXPECT_THROW(loc.localize(in, rng), std::invalid_argument);
}

TEST(Localizer, ThreeDeviceMinimumGroup) {
  // §5: the approach needs >= 3 divers; with exactly 3 (triangle) it works.
  uwp::Rng rng(8);
  Truth t;
  t.positions = {{0, 0, 1.0}, {6, 1, 2.0}, {2, 7, 1.5}};
  const Localizer loc;
  const LocalizationResult res = loc.localize(exact_input(t), rng);
  for (std::size_t i = 1; i < 3; ++i)
    EXPECT_LT(distance(res.positions[i].xy(), t.positions[i].xy()), 0.1);
}

}  // namespace
}  // namespace uwp::core
