#include "core/tracker.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.hpp"
#include "util/stats.hpp"

namespace uwp::core {
namespace {

TEST(DiverTrack, FirstMeasurementInitializes) {
  DiverTrack track;
  EXPECT_FALSE(track.initialized());
  EXPECT_TRUE(track.update({3.0, -2.0}));
  EXPECT_TRUE(track.initialized());
  EXPECT_NEAR(track.position().x, 3.0, 1e-12);
  EXPECT_NEAR(track.position().y, -2.0, 1e-12);
  EXPECT_NEAR(track.speed(), 0.0, 1e-12);
}

TEST(DiverTrack, PredictBeforeInitIsNoop) {
  DiverTrack track;
  track.predict(5.0);
  EXPECT_FALSE(track.initialized());
}

TEST(DiverTrack, SmoothsNoisyStationaryMeasurements) {
  TrackerConfig cfg;
  cfg.measurement_sigma_m = 0.9;
  DiverTrack track(cfg);
  uwp::Rng rng(1);
  const Vec2 truth{10.0, 5.0};
  std::vector<double> raw_err, filt_err;
  for (int round = 0; round < 150; ++round) {
    track.predict(5.0);
    const Vec2 measured{truth.x + rng.normal(0.0, 0.9), truth.y + rng.normal(0.0, 0.9)};
    raw_err.push_back(distance(measured, truth));
    track.update(measured);
    if (round >= 10) filt_err.push_back(distance(track.position(), truth));
  }
  // The filter should clearly beat the raw per-round noise (steady-state
  // ratio ~0.7 at the default process noise).
  EXPECT_LT(uwp::mean(filt_err), 0.8 * uwp::mean(raw_err));
}

TEST(DiverTrack, TracksConstantVelocitySwimmer) {
  DiverTrack track;
  uwp::Rng rng(2);
  const Vec2 v{0.4, 0.2};  // 45 cm/s, the paper's mobility range
  for (int round = 0; round < 30; ++round) {
    const double t = 5.0 * round;
    track.predict(round == 0 ? 0.0 : 5.0);
    track.update({v.x * t + rng.normal(0.0, 0.5), v.y * t + rng.normal(0.0, 0.5)});
  }
  EXPECT_NEAR(track.velocity().x, v.x, 0.15);
  EXPECT_NEAR(track.velocity().y, v.y, 0.15);
  // Coasting prediction stays close for one missed round.
  const Vec2 before = track.position();
  track.predict(5.0);
  const Vec2 coasted = track.position();
  EXPECT_NEAR(distance(coasted, before), 5.0 * v.norm(), 0.8);
}

TEST(DiverTrack, GateRejectsWildOutlier) {
  DiverTrack track;
  for (int i = 0; i < 10; ++i) {
    track.predict(5.0);
    track.update({5.0, 5.0});
  }
  const Vec2 before = track.position();
  EXPECT_FALSE(track.update({500.0, -300.0}));  // a broken round
  EXPECT_NEAR(distance(track.position(), before), 0.0, 1e-9);
  // A sane follow-up is accepted.
  EXPECT_TRUE(track.update({5.2, 4.9}));
}

TEST(DiverTrack, UncertaintyGrowsWhileCoasting) {
  DiverTrack track;
  track.update({0.0, 0.0});
  track.predict(5.0);
  track.update({0.1, 0.0});
  const double sigma_fresh = track.position_sigma();
  for (int i = 0; i < 12; ++i) track.predict(5.0);
  EXPECT_GT(track.position_sigma(), 2.0 * sigma_fresh);
}

TEST(DiverTrack, VelocityDecaysWithoutUpdates) {
  TrackerConfig cfg;
  cfg.velocity_decay_tau_s = 10.0;
  DiverTrack track(cfg);
  track.update({0, 0});
  track.predict(5.0);
  track.update({2.5, 0.0});  // implies ~0.5 m/s
  const double v0 = track.speed();
  ASSERT_GT(v0, 0.1);
  for (int i = 0; i < 10; ++i) track.predict(5.0);
  EXPECT_LT(track.speed(), 0.05 * v0 + 1e-3);
}

TEST(GroupTracker, PerDeviceIndependence) {
  GroupTracker group(4);
  std::vector<std::optional<Vec2>> round(4);
  round[1] = Vec2{1.0, 0.0};
  round[3] = Vec2{-2.0, 4.0};  // device 2 missing this round
  group.update(round);
  EXPECT_TRUE(group.track(1).initialized());
  EXPECT_FALSE(group.track(2).initialized());
  EXPECT_TRUE(group.track(3).initialized());
  EXPECT_NEAR(group.track(3).position().y, 4.0, 1e-12);
}

TEST(GroupTracker, Validation) {
  EXPECT_THROW(GroupTracker(1), std::invalid_argument);
  GroupTracker group(3);
  EXPECT_THROW(group.track(0), std::invalid_argument);
  EXPECT_THROW(group.track(3), std::invalid_argument);
}

}  // namespace
}  // namespace uwp::core
