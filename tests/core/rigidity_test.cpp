#include "core/rigidity.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.hpp"

namespace uwp::core {
namespace {

// Numeric reference for the pebble game: the rank of the rigidity matrix at
// a generic (random) placement equals the generic rank of the rigidity
// matroid. Row per edge (i, j): [... (pi - pj) at i ..., (pj - pi) at j ...].
std::size_t rigidity_matrix_rank(std::size_t n, const std::vector<Edge>& edges,
                                 uwp::Rng& rng) {
  const std::size_t cols = 2 * n;
  std::vector<std::vector<double>> rows;
  std::vector<std::pair<double, double>> pos(n);
  for (auto& p : pos) p = {rng.uniform(-10, 10), rng.uniform(-10, 10)};
  for (const Edge& e : edges) {
    std::vector<double> row(cols, 0.0);
    const double dx = pos[e.first].first - pos[e.second].first;
    const double dy = pos[e.first].second - pos[e.second].second;
    row[2 * e.first] = dx;
    row[2 * e.first + 1] = dy;
    row[2 * e.second] = -dx;
    row[2 * e.second + 1] = -dy;
    rows.push_back(std::move(row));
  }
  // Gaussian elimination with partial pivoting.
  std::size_t rank = 0;
  for (std::size_t col = 0; col < cols && rank < rows.size(); ++col) {
    std::size_t pivot = rank;
    for (std::size_t r = rank + 1; r < rows.size(); ++r)
      if (std::abs(rows[r][col]) > std::abs(rows[pivot][col])) pivot = r;
    if (std::abs(rows[pivot][col]) < 1e-9) continue;
    std::swap(rows[rank], rows[pivot]);
    for (std::size_t r = 0; r < rows.size(); ++r) {
      if (r == rank) continue;
      const double f = rows[r][col] / rows[rank][col];
      for (std::size_t c = col; c < cols; ++c) rows[r][c] -= f * rows[rank][c];
    }
    ++rank;
  }
  return rank;
}

std::vector<Edge> complete_graph(std::size_t n) {
  std::vector<Edge> e;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) e.emplace_back(i, j);
  return e;
}

TEST(Rigidity, EdgesFromWeights) {
  Matrix w(3, 3, 0.0);
  w(0, 1) = w(1, 0) = 1.0;
  w(1, 2) = w(2, 1) = 1.0;
  const auto edges = edges_from_weights(w);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (Edge{0, 1}));
  EXPECT_EQ(edges[1], (Edge{1, 2}));
}

TEST(Rigidity, Connectivity) {
  EXPECT_TRUE(is_connected(4, complete_graph(4)));
  EXPECT_TRUE(is_connected(1, {}));
  EXPECT_FALSE(is_connected(3, {{0, 1}}));          // node 2 isolated
  EXPECT_TRUE(is_connected(3, {{0, 1}, {1, 2}}));
}

TEST(Rigidity, KConnectivity) {
  // K4 is 3-connected.
  EXPECT_TRUE(is_k_connected(4, complete_graph(4), 3));
  // A 4-cycle is 2-connected but not 3-connected.
  const std::vector<Edge> cycle4 = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  EXPECT_TRUE(is_k_connected(4, cycle4, 2));
  EXPECT_FALSE(is_k_connected(4, cycle4, 3));
  // A path is 1-connected only.
  const std::vector<Edge> path = {{0, 1}, {1, 2}, {2, 3}};
  EXPECT_TRUE(is_k_connected(4, path, 1));
  EXPECT_FALSE(is_k_connected(4, path, 2));
}

TEST(Rigidity, TriangleIsRigid) {
  EXPECT_TRUE(is_rigid_2d(3, complete_graph(3)));
}

TEST(Rigidity, FourCycleIsFlexible) {
  // Fig 4a: a 4-cycle deforms continuously.
  EXPECT_FALSE(is_rigid_2d(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}));
}

TEST(Rigidity, BracedFourCycleIsRigid) {
  EXPECT_TRUE(is_rigid_2d(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}}));
}

TEST(Rigidity, RankCountsIndependentEdges) {
  // Laman: 2n - 3 independent edges for rigidity; K4 has 6 edges but rank 5.
  EXPECT_EQ(rigidity_rank(4, complete_graph(4)), 5u);
  EXPECT_EQ(rigidity_rank(3, complete_graph(3)), 3u);
  // Double-banana-style over-braced subgraph: extra edges are dependent.
  std::vector<Edge> tri_plus = complete_graph(3);
  tri_plus.emplace_back(0, 1);  // duplicate edge is dependent
  EXPECT_EQ(rigidity_rank(3, tri_plus), 3u);
}

TEST(Rigidity, LamanCounterexampleRejected) {
  // 6 nodes, 9 edges arranged as two triangles joined by 3 parallel edges
  // (a "prism" is actually rigid); instead test two triangles sharing one
  // vertex + 2 edges: has 2n-3 = 9? n=5, 2n-3=7. Two triangles sharing a
  // vertex have 6 edges and are flexible (hinge).
  const std::vector<Edge> hinge = {{0, 1}, {1, 2}, {2, 0}, {0, 3}, {3, 4}, {4, 0}};
  EXPECT_FALSE(is_rigid_2d(5, hinge));
}

TEST(Rigidity, RedundantRigidity) {
  // K4 stays rigid after removing any edge.
  EXPECT_TRUE(is_redundantly_rigid_2d(4, complete_graph(4)));
  // A minimally rigid graph (Laman graph) is not redundantly rigid.
  const std::vector<Edge> braced = {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}};
  EXPECT_TRUE(is_rigid_2d(4, braced));
  EXPECT_FALSE(is_redundantly_rigid_2d(4, braced));
}

TEST(Rigidity, UniqueRealizability) {
  // Complete graphs are uniquely realizable.
  EXPECT_TRUE(is_uniquely_realizable_2d(4, complete_graph(4)));
  EXPECT_TRUE(is_uniquely_realizable_2d(5, complete_graph(5)));
  // The partial-reflection case (Fig 4b): rigid but a cut pair allows a
  // mirror flip -> not 3-connected -> not uniquely realizable.
  const std::vector<Edge> flip_case = {{0, 1}, {1, 2}, {2, 0}, {1, 3}, {2, 3},
                                       {3, 4}, {2, 4}};
  EXPECT_TRUE(is_rigid_2d(5, flip_case));
  EXPECT_FALSE(is_uniquely_realizable_2d(5, flip_case));
}

TEST(Rigidity, SmallCases) {
  EXPECT_TRUE(is_uniquely_realizable_2d(1, {}));
  EXPECT_TRUE(is_uniquely_realizable_2d(2, {{0, 1}}));
  EXPECT_TRUE(is_uniquely_realizable_2d(3, complete_graph(3)));
  EXPECT_FALSE(is_uniquely_realizable_2d(3, {{0, 1}, {1, 2}}));
}

TEST(Rigidity, PebbleGameMatchesRigidityMatrixRankOnRandomGraphs) {
  // Property check: the combinatorial (2,3) pebble game and the numeric
  // rigidity-matrix rank at a generic placement must agree on every random
  // graph (Laman's theorem). Sweep sizes and densities.
  uwp::Rng rng(2718);
  for (std::size_t n : {4u, 5u, 6u, 7u, 8u}) {
    for (double p : {0.3, 0.5, 0.8}) {
      for (int trial = 0; trial < 6; ++trial) {
        std::vector<Edge> edges;
        for (std::size_t i = 0; i < n; ++i)
          for (std::size_t j = i + 1; j < n; ++j)
            if (rng.bernoulli(p)) edges.emplace_back(i, j);
        const std::size_t pebble = rigidity_rank(n, edges);
        const std::size_t numeric = rigidity_matrix_rank(n, edges, rng);
        EXPECT_EQ(pebble, numeric)
            << "n=" << n << " p=" << p << " edges=" << edges.size();
      }
    }
  }
}

TEST(Rigidity, CompleteMinusOneEdgeOnFive) {
  // K5 minus an edge is still redundantly rigid and 3-connected.
  std::vector<Edge> edges = complete_graph(5);
  edges.pop_back();
  EXPECT_TRUE(is_uniquely_realizable_2d(5, edges));
}

TEST(Rigidity, WheelGraphUniquelyRealizable) {
  // Wheel W5: hub 0 connected to rim 1-4, rim forms a cycle. Redundantly
  // rigid and 3-connected.
  const std::vector<Edge> wheel = {{0, 1}, {0, 2}, {0, 3}, {0, 4},
                                   {1, 2}, {2, 3}, {3, 4}, {4, 1}};
  EXPECT_TRUE(is_uniquely_realizable_2d(5, wheel));
}

}  // namespace
}  // namespace uwp::core
