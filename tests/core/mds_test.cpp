#include <gtest/gtest.h>

#include <cmath>

#include "core/mds_classical.hpp"
#include "core/smacof.hpp"
#include "util/random.hpp"

namespace uwp::core {
namespace {

Matrix distance_matrix(const std::vector<Vec2>& pts) {
  const std::size_t n = pts.size();
  Matrix d(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) d(i, j) = distance(pts[i], pts[j]);
  return d;
}

std::vector<Vec2> random_points(std::size_t n, uwp::Rng& rng, double spread = 20.0) {
  std::vector<Vec2> pts(n);
  for (Vec2& p : pts) p = {rng.uniform(-spread, spread), rng.uniform(-spread, spread)};
  return pts;
}

TEST(ShortestPathCompletion, FillsMissingViaHops) {
  // Chain 0-1-2 with d(0,1)=3, d(1,2)=4; missing (0,2) completes to 7.
  Matrix d(3, 3, 0.0);
  d(0, 1) = d(1, 0) = 3.0;
  d(1, 2) = d(2, 1) = 4.0;
  Matrix w(3, 3, 0.0);
  w(0, 1) = w(1, 0) = 1.0;
  w(1, 2) = w(2, 1) = 1.0;
  const Matrix full = shortest_path_completion(d, w);
  EXPECT_DOUBLE_EQ(full(0, 2), 7.0);
  EXPECT_DOUBLE_EQ(full(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(full(0, 0), 0.0);
}

TEST(ShortestPathCompletion, UnreachableCapsAtMaxObserved) {
  Matrix d(3, 3, 0.0);
  d(0, 1) = d(1, 0) = 5.0;
  Matrix w(3, 3, 0.0);
  w(0, 1) = w(1, 0) = 1.0;  // node 2 disconnected
  const Matrix full = shortest_path_completion(d, w);
  EXPECT_DOUBLE_EQ(full(0, 2), 5.0);
}

TEST(ClassicalMds, RecoversExactConfiguration) {
  uwp::Rng rng(1);
  const std::vector<Vec2> truth = random_points(6, rng);
  const std::vector<Vec2> est = classical_mds_2d(distance_matrix(truth));
  EXPECT_LT(aligned_rmse(est, truth), 1e-6);
}

TEST(ClassicalMds, CollinearPointsStayCollinear) {
  const std::vector<Vec2> truth = {{0, 0}, {5, 0}, {10, 0}, {15, 0}};
  const std::vector<Vec2> est = classical_mds_2d(distance_matrix(truth));
  EXPECT_LT(aligned_rmse(est, truth), 1e-6);
}

TEST(Smacof, ExactDistancesGiveExactTopology) {
  uwp::Rng rng(2);
  for (std::size_t n : {4u, 5u, 6u, 8u}) {
    const std::vector<Vec2> truth = random_points(n, rng);
    const Matrix d = distance_matrix(truth);
    const Matrix w = Matrix::ones(n, n);
    const SmacofResult res = smacof_2d(d, w, {}, rng);
    EXPECT_LT(aligned_rmse(res.positions, truth), 1e-4) << "n=" << n;
    EXPECT_LT(res.normalized_stress, 1e-4);
  }
}

TEST(Smacof, StressDecreasesMonotonicallyToConvergence) {
  uwp::Rng rng(3);
  const std::vector<Vec2> truth = random_points(6, rng);
  Matrix d = distance_matrix(truth);
  // Perturb distances to create a non-trivial problem.
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = i + 1; j < 6; ++j) {
      d(i, j) += rng.uniform(-0.5, 0.5);
      d(j, i) = d(i, j);
    }
  SmacofOptions opts;
  opts.random_restarts = 0;
  const SmacofResult res = smacof_2d(d, Matrix::ones(6, 6), opts, rng);
  EXPECT_GT(res.iterations, 1);
  EXPECT_GE(res.stress, 0.0);
}

TEST(Smacof, MissingLinksStillLocalizable) {
  // Wheel topology: uniquely realizable with several links missing.
  uwp::Rng rng(4);
  const std::vector<Vec2> truth = {{0, 0}, {10, 0}, {0, 10}, {-10, 0}, {0, -10}};
  Matrix d = distance_matrix(truth);
  Matrix w = Matrix::ones(5, 5);
  // Remove two non-adjacent rim chords that K5 has but the wheel doesn't.
  w(1, 3) = w(3, 1) = 0.0;
  w(2, 4) = w(4, 2) = 0.0;
  const SmacofResult res = smacof_2d(d, w, {}, rng);
  EXPECT_LT(aligned_rmse(res.positions, truth), 0.1);
  EXPECT_EQ(res.num_links, 8u);
}

TEST(Smacof, NoisyDistancesBoundedError) {
  uwp::Rng rng(5);
  const std::vector<Vec2> truth = random_points(6, rng, 25.0);
  Matrix d = distance_matrix(truth);
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = i + 1; j < 6; ++j) {
      d(i, j) = std::max(0.1, d(i, j) + rng.symmetric(0.8));
      d(j, i) = d(i, j);
    }
  const SmacofResult res = smacof_2d(d, Matrix::ones(6, 6), {}, rng);
  // Fig 6a scale: with eps_1d = 0.8 m the mean 2D error is ~1 m.
  EXPECT_LT(aligned_rmse(res.positions, truth), 2.5);
}

TEST(Smacof, NormalizedStressIsRmsResidual) {
  uwp::Rng rng(6);
  const std::vector<Vec2> truth = random_points(5, rng);
  const Matrix d = distance_matrix(truth);
  const Matrix w = Matrix::ones(5, 5);
  const SmacofResult res = smacof_2d(d, w, {}, rng);
  EXPECT_NEAR(res.normalized_stress,
              std::sqrt(res.stress / static_cast<double>(res.num_links)), 1e-12);
}

TEST(Smacof, InitOverrideRespected) {
  uwp::Rng rng(7);
  const std::vector<Vec2> truth = random_points(5, rng);
  const Matrix d = distance_matrix(truth);
  SmacofOptions opts;
  opts.random_restarts = 0;
  opts.max_iterations = 0;  // no iterations: output == init
  const SmacofResult res = smacof_2d(d, Matrix::ones(5, 5), opts, rng,
                                     std::make_optional(truth));
  for (std::size_t i = 0; i < truth.size(); ++i) {
    EXPECT_DOUBLE_EQ(res.positions[i].x, truth[i].x);
    EXPECT_DOUBLE_EQ(res.positions[i].y, truth[i].y);
  }
}

TEST(Smacof, DegenerateSizes) {
  uwp::Rng rng(8);
  EXPECT_TRUE(smacof_2d(Matrix(0, 0), Matrix(0, 0), {}, rng).positions.empty());
  const SmacofResult one = smacof_2d(Matrix(1, 1), Matrix(1, 1), {}, rng);
  ASSERT_EQ(one.positions.size(), 1u);
  EXPECT_THROW(smacof_2d(Matrix(3, 2), Matrix(3, 3), {}, rng), std::invalid_argument);
}

TEST(Smacof, WeightedStressIgnoresMissingLinks) {
  const std::vector<Vec2> x = {{0, 0}, {3, 0}, {0, 4}};
  Matrix d(3, 3, 0.0);
  d(0, 1) = d(1, 0) = 3.0;
  d(0, 2) = d(2, 0) = 4.0;
  d(1, 2) = d(2, 1) = 99.0;  // wildly wrong but weight 0
  Matrix w = Matrix::ones(3, 3);
  w(1, 2) = w(2, 1) = 0.0;
  EXPECT_NEAR(weighted_stress(x, d, w), 0.0, 1e-12);
}

}  // namespace
}  // namespace uwp::core
