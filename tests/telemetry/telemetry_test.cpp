// Telemetry plane invariants: the SPSC ring never blocks and accounts every
// overflow drop; histogram bucketing is exact at octave boundaries; the
// deterministic counter plane is bit-identical whatever the shard/worker
// partitioning or ring sizing — the contract uwp_run's "counters" section
// (and CI's cross-thread diff) relies on; trace-span *structure* and the
// SLO scoreboard share that determinism while their wall-clock side stays
// free; and the flight recorder dumps context when its triggers fire.
#include "telemetry/collector.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "config/json.hpp"
#include "fleet/server.hpp"
#include "fleet/service.hpp"
#include "sim/fleet_workload.hpp"
#include "telemetry/bus.hpp"
#include "telemetry/histogram.hpp"
#include "telemetry/slo.hpp"
#include "telemetry/trace.hpp"

namespace uwp::telemetry {
namespace {

Event counter_event(std::uint64_t n) {
  Event e;
  e.kind = EventKind::kCounter;
  e.id = static_cast<std::uint8_t>(Counter::kRounds);
  e.t = 0.0;
  e.value = static_cast<double>(n);
  return e;
}

// --- Bus --------------------------------------------------------------------

TEST(Bus, RoundsCapacityUpToPowerOfTwo) {
  EXPECT_EQ(Bus(0).capacity(), 8u);
  EXPECT_EQ(Bus(8).capacity(), 8u);
  EXPECT_EQ(Bus(9).capacity(), 16u);
  EXPECT_EQ(Bus(1000).capacity(), 1024u);
}

TEST(Bus, FifoAcrossWraparound) {
  Bus bus(8);
  Event out[4];
  std::uint64_t next = 0, read = 0;
  // Cycle several times the capacity so head/tail wrap the mask repeatedly.
  for (int cycle = 0; cycle < 10; ++cycle) {
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(bus.try_push(counter_event(next++)));
    std::size_t got = 0;
    while (got < 5) {
      const std::size_t n = bus.pop(out, 4);
      for (std::size_t k = 0; k < n; ++k)
        EXPECT_EQ(out[k].value, static_cast<double>(read++));
      got += n;
    }
  }
  EXPECT_EQ(read, next);
  EXPECT_EQ(bus.dropped(), 0u);
}

TEST(Bus, OverflowDropsAndCountsInsteadOfBlocking) {
  Bus bus(8);
  for (std::uint64_t i = 0; i < 8; ++i) ASSERT_TRUE(bus.try_push(counter_event(i)));
  // Full: pushes fail immediately (no blocking) and every loss is counted.
  EXPECT_FALSE(bus.try_push(counter_event(8)));
  EXPECT_FALSE(bus.try_push(counter_event(9)));
  EXPECT_EQ(bus.dropped(), 2u);

  // The ring's contents survive the overflow intact, oldest first.
  Event out[8];
  ASSERT_EQ(bus.pop(out, 8), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_EQ(out[i].value, static_cast<double>(i));

  // Space reclaimed: pushes succeed again.
  EXPECT_TRUE(bus.try_push(counter_event(10)));
  EXPECT_EQ(bus.dropped(), 2u);
}

// Single producer, single consumer, live concurrently (the TSan target):
// everything pushed is either delivered in order or counted as dropped.
TEST(Bus, ConcurrentProducerConsumerLosesNothingUnaccounted) {
  Bus bus(64);
  constexpr std::uint64_t kEvents = 200000;

  std::uint64_t delivered = 0;
  std::uint64_t last = 0;
  bool ordered = true;
  std::thread consumer([&] {
    Event out[32];
    // Drain until the producer's full count is accounted for. dropped() may
    // lag the push that failed, so re-check until the sum closes.
    for (;;) {
      const std::size_t n = bus.pop(out, 32);
      for (std::size_t k = 0; k < n; ++k) {
        const std::uint64_t v = static_cast<std::uint64_t>(out[k].value);
        if (delivered > 0 && v <= last) ordered = false;
        last = v;
        ++delivered;
      }
      if (n == 0 && delivered + bus.dropped() >= kEvents) break;
      if (n == 0) std::this_thread::yield();
    }
  });

  for (std::uint64_t i = 0; i < kEvents; ++i) bus.try_push(counter_event(i));
  consumer.join();

  EXPECT_TRUE(ordered);
  EXPECT_EQ(delivered + bus.dropped(), kEvents);
  EXPECT_GT(delivered, 0u);
}

// --- Histogram --------------------------------------------------------------

TEST(Histogram, OctaveBoundariesLandExactly) {
  const Histogram h;  // min 1e-9, 4 buckets per octave
  const int P = h.buckets_per_octave();
  // min * 2^k must land in bucket k*P exactly — frexp-based bucketing, not
  // raw logs, so no off-by-one from libm rounding.
  for (int k = 0; k < 40; ++k) {
    const double v = h.min_value() * std::pow(2.0, k);
    EXPECT_EQ(h.bucket_index(v), static_cast<std::size_t>(k * P)) << "octave " << k;
  }
  // Below-range values clamp into bucket 0; the top clamps to the last.
  EXPECT_EQ(h.bucket_index(0.0), 0u);
  EXPECT_EQ(h.bucket_index(h.min_value() / 2.0), 0u);
  EXPECT_EQ(h.bucket_index(1e300), h.buckets() - 1);
}

TEST(Histogram, BucketLowerEdgesAreMonotonicGeometric) {
  const Histogram h;
  double prev = 0.0;
  for (std::size_t b = 0; b < h.buckets(); ++b) {
    const double edge = h.bucket_lower_edge(b);
    EXPECT_GT(edge, prev);
    EXPECT_EQ(h.bucket_index(edge), b) << "edge of bucket " << b;
    prev = edge;
  }
}

TEST(Histogram, QuantilesTrackRecordedRange) {
  Histogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0);  // empty
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i) * 1e-6);
  EXPECT_EQ(h.count(), 1000u);
  // Log-bucket quantiles are approximate (~19%/bucket) but must bracket the
  // true value and stay inside the observed range.
  EXPECT_NEAR(h.quantile(0.5), 500e-6, 500e-6 * 0.25);
  EXPECT_NEAR(h.quantile(0.99), 990e-6, 990e-6 * 0.25);
  EXPECT_GE(h.quantile(0.001), h.min_seen());
  EXPECT_LE(h.quantile(1.0), h.max_seen());
}

TEST(Histogram, MergeAddsCountsAndRejectsMismatchedGeometry) {
  Histogram a, b;
  a.record(1e-6);
  b.record(2e-6);
  b.record(4e-3);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.sum(), 1e-6 + 2e-6 + 4e-3);
  EXPECT_EQ(a.max_seen(), 4e-3);

  Histogram other(1e-9, 8);
  EXPECT_THROW(a.merge(other), std::invalid_argument);
}

// --- counter plane determinism ----------------------------------------------

sim::WorkloadParams small_params(std::size_t sessions) {
  sim::WorkloadParams p;
  p.sessions = sessions;
  p.seed = 0xBADCAFEu;
  p.min_group_size = 4;
  p.max_group_size = 6;
  p.min_rounds = 2;
  p.max_rounds = 4;
  p.admit_spread_ticks = 3;
  p.include_des = true;
  return p;
}

TelemetryReport fleet_report(const std::vector<sim::GroupScenario>& workload,
                             std::size_t shards, std::size_t ring_capacity = 1 << 15) {
  fleet::FleetOptions fo;
  fo.master_seed = 0x7E1Eu;
  fo.shards = shards;
  TelemetryOptions topts;
  topts.enabled = true;
  topts.window = 4.0;
  topts.ring_capacity = ring_capacity;
  Collector collector(topts);
  fleet::FleetService(fo, workload).run(nullptr, &collector);
  return collector.report();
}

TEST(CounterPlane, FleetSnapshotsBitIdenticalAcrossShardCounts) {
  const std::vector<sim::GroupScenario> workload =
      sim::make_workload(small_params(12));
  const TelemetryReport one = fleet_report(workload, 1);
  const TelemetryReport four = fleet_report(workload, 4);
  const TelemetryReport three = fleet_report(workload, 3);

  EXPECT_TRUE(one.counters_equal(four));
  EXPECT_TRUE(one.counters_equal(three));
  // Sanity: the run did real work and the windows are populated.
  EXPECT_GT(one.totals[static_cast<std::size_t>(Counter::kRounds)], 0u);
  EXPECT_GT(one.totals[static_cast<std::size_t>(Counter::kSolverIterations)], 0u);
  EXPECT_EQ(one.totals[static_cast<std::size_t>(Counter::kAdmits)], workload.size());
  EXPECT_EQ(one.totals[static_cast<std::size_t>(Counter::kEvicts)], workload.size());
  EXPECT_GT(one.snapshots.size(), 1u);
}

TEST(CounterPlane, RingOverflowNeverTouchesCounters) {
  const std::vector<sim::GroupScenario> workload =
      sim::make_workload(small_params(8));
  // An 8-slot ring drops nearly the whole live stream; the counter pages
  // must not notice.
  const TelemetryReport tiny = fleet_report(workload, 2, 1);
  const TelemetryReport big = fleet_report(workload, 2, 1 << 15);
  EXPECT_GT(tiny.dropped, 0u);
  EXPECT_EQ(big.dropped, 0u);
  EXPECT_TRUE(tiny.counters_equal(big));
}

TelemetryReport serve_report(const std::vector<sim::GroupScenario>& workload,
                             std::size_t workers, fleet::ServerOptions opts) {
  opts.workers = workers;
  TelemetryOptions topts;
  topts.enabled = true;
  topts.window = 4.0;
  Collector collector(topts);
  fleet::Server server(opts, workload);
  fleet::RingBufferTransport transport(64);
  std::thread feeder(
      [&] { feed_workload(transport, workload, opts.master_seed, {}); });
  try {
    server.serve(transport, nullptr, &collector);
  } catch (...) {
    transport.close();
    feeder.join();
    throw;
  }
  feeder.join();
  return collector.report();
}

TEST(CounterPlane, ServeSnapshotsBitIdenticalAcrossWorkerCounts) {
  const std::vector<sim::GroupScenario> workload =
      sim::make_workload(small_params(10));
  fleet::ServerOptions opts;
  opts.master_seed = 0x7E1Eu;
  // Shaping on, with one partition squeezed well below the ~10 rounds/s the
  // workload offers so defers and sheds actually happen: the ingest verdict
  // counters must be exercised and still be worker-count invariant.
  opts.shaping.policy = fleet::AdmissionPolicy::kDefer;
  opts.shaping.ingest_shards = 1;
  opts.shaping.queue_depth = 4;
  opts.shaping.drain_rounds_per_s = 2.0;
  opts.shaping.rate_rounds_per_s = 2.0;
  opts.shaping.burst_rounds = 1.0;
  opts.shaping.max_defers = 2;

  const TelemetryReport one = serve_report(workload, 1, opts);
  const TelemetryReport four = serve_report(workload, 4, opts);
  EXPECT_TRUE(one.counters_equal(four));
  const std::uint64_t admitted =
      one.totals[static_cast<std::size_t>(Counter::kIngestAdmitted)];
  const std::uint64_t shed =
      one.totals[static_cast<std::size_t>(Counter::kIngestShed)];
  EXPECT_GT(admitted, 0u);
  // Every executed round was an admitted measurement frame.
  EXPECT_EQ(one.totals[static_cast<std::size_t>(Counter::kRounds)], admitted);
  EXPECT_GT(shed + one.totals[static_cast<std::size_t>(Counter::kIngestDeferred)], 0u);
}

TEST(CounterPlane, UnshapedServeMatchesFleetSharedCounters) {
  const std::vector<sim::GroupScenario> workload =
      sim::make_workload(small_params(10));
  fleet::ServerOptions opts;
  opts.master_seed = 0x7E1Eu;  // must match fleet_report's seed
  const TelemetryReport served = serve_report(workload, 3, opts);
  const TelemetryReport fleet = fleet_report(workload, 2);
  // The serve path executes the same session timeline, so every counter the
  // two drivers share must agree; only the ingest verdicts are serve-only.
  for (const Counter c :
       {Counter::kRounds, Counter::kLocalized, Counter::kCoasts, Counter::kEvicts,
        Counter::kAdmits, Counter::kSolverIterations, Counter::kArenaLeases}) {
    const std::size_t i = static_cast<std::size_t>(c);
    EXPECT_EQ(served.totals[i], fleet.totals[i]) << to_string(c);
  }
}

// A tailer thread draining concurrently with a batched run (satellite for
// the live-dashboard use case): drain() races the shard producers and the
// service's internal open(), and the deterministic plane must come out
// exactly as a quiet sequential run's.
TEST(CounterPlane, ConcurrentTailerDrainsDuringBatchedRun) {
  const std::vector<sim::GroupScenario> workload =
      sim::make_workload(small_params(12));
  fleet::FleetOptions fo;
  fo.master_seed = 0x7E1Eu;
  fo.shards = 4;
  fo.batch_rounds = true;
  TelemetryOptions topts;
  topts.enabled = true;
  topts.window = 4.0;
  Collector collector(topts);

  std::atomic<bool> stop{false};
  std::thread tailer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      collector.drain();
      std::this_thread::yield();
    }
  });
  fleet::FleetService(fo, workload).run(nullptr, &collector);
  stop.store(true, std::memory_order_relaxed);
  tailer.join();

  TelemetryReport tailed = collector.report();
  EXPECT_TRUE(tailed.counters_equal(fleet_report(workload, 2)));
  EXPECT_GT(tailed.totals[static_cast<std::size_t>(Counter::kRounds)], 0u);
}

TEST(CounterPlane, DisabledTimingKeepsCountersAndSkipsSpans) {
  const std::vector<sim::GroupScenario> workload =
      sim::make_workload(small_params(6));
  fleet::FleetOptions fo;
  fo.master_seed = 0x7E1Eu;
  fo.shards = 2;
  TelemetryOptions topts;
  topts.enabled = true;
  topts.timing = false;
  topts.window = 4.0;
  Collector collector(topts);
  fleet::FleetService(fo, workload).run(nullptr, &collector);
  TelemetryReport rep = collector.report();

  EXPECT_GT(rep.totals[static_cast<std::size_t>(Counter::kRounds)], 0u);
  for (std::size_t s = 0; s < kStageCount; ++s)
    EXPECT_EQ(rep.spans[s].count(), 0u) << to_string(static_cast<Stage>(s));
  EXPECT_TRUE(rep.counters_equal(fleet_report(workload, 3)));
}

// --- trace plane ------------------------------------------------------------

TEST(TracePlane, IdPackingRoundTrips) {
  const std::uint64_t id = make_trace_id(17, 0);
  EXPECT_NE(id, 0u);  // round 0 is biased away from the "not tracing" id
  EXPECT_EQ(trace_session(id), 17u);
  EXPECT_EQ(trace_round(id), 0u);
  EXPECT_EQ(trace_session(make_trace_id(0, 41)), 0u);
  EXPECT_EQ(trace_round(make_trace_id(0, 41)), 41u);
  EXPECT_NE(make_trace_id(0, 0), 0u);
}

TelemetryReport fleet_trace_report(const std::vector<sim::GroupScenario>& workload,
                                   std::size_t shards, bool batch = true) {
  fleet::FleetOptions fo;
  fo.master_seed = 0x7E1Eu;
  fo.shards = shards;
  fo.batch_rounds = batch;
  TelemetryOptions topts;
  topts.enabled = true;
  topts.trace = true;
  topts.window = 4.0;
  Collector collector(topts);
  fleet::FleetService(fo, workload).run(nullptr, &collector);
  return collector.report();
}

TEST(TracePlane, FleetStructureDigestInvariantAcrossShardCounts) {
  const std::vector<sim::GroupScenario> workload =
      sim::make_workload(small_params(10));
  const TelemetryReport one = fleet_trace_report(workload, 1);
  const TelemetryReport four = fleet_trace_report(workload, 4);
  ASSERT_FALSE(one.trace.empty());
  EXPECT_EQ(one.trace.size(), four.trace.size());
  EXPECT_EQ(trace_structure_digest(one.trace), trace_structure_digest(four.trace));

  // The batched path contributes kBatch spans; every executed round has a
  // root span and stage children parented to it.
  std::set<TraceOp> ops;
  for (const TraceSpan& s : one.trace) {
    ops.insert(s.op);
    if (s.op == TraceOp::kRound) {
      EXPECT_EQ(s.parent, TraceOp::kNone);
    }
    if (s.op == TraceOp::kLocalize || s.op == TraceOp::kBatch) {
      EXPECT_EQ(s.parent, TraceOp::kRound);
    }
    EXPECT_NE(s.trace_id, 0u);
  }
  EXPECT_TRUE(ops.count(TraceOp::kRound));
  EXPECT_TRUE(ops.count(TraceOp::kBatch));
  EXPECT_TRUE(ops.count(TraceOp::kLocalize));

  // The batch layout knob must not change the rounds traced: every id in
  // the reference (unbatched) run appears in the batched one.
  const TelemetryReport ref = fleet_trace_report(workload, 2, /*batch=*/false);
  std::set<std::uint64_t> batched_ids, ref_ids;
  for (const TraceSpan& s : one.trace) batched_ids.insert(s.trace_id);
  for (const TraceSpan& s : ref.trace) ref_ids.insert(s.trace_id);
  EXPECT_EQ(batched_ids, ref_ids);
}

TelemetryReport serve_trace_report(const std::vector<sim::GroupScenario>& workload,
                                   std::size_t workers) {
  fleet::ServerOptions opts;
  opts.master_seed = 0x7E1Eu;
  opts.workers = workers;
  TelemetryOptions topts;
  topts.enabled = true;
  topts.trace = true;
  topts.window = 4.0;
  Collector collector(topts);
  fleet::Server server(opts, workload);
  fleet::RingBufferTransport transport(64);
  std::thread feeder(
      [&] { feed_workload(transport, workload, opts.master_seed, {}); });
  try {
    server.serve(transport, nullptr, &collector);
  } catch (...) {
    transport.close();
    feeder.join();
    throw;
  }
  feeder.join();
  return collector.report();
}

TEST(TracePlane, ServeChainsIngestQueueRoundAndDigestIsWorkerInvariant) {
  const std::vector<sim::GroupScenario> workload =
      sim::make_workload(small_params(8));
  const TelemetryReport one = serve_trace_report(workload, 1);
  const TelemetryReport four = serve_trace_report(workload, 4);
  ASSERT_FALSE(one.trace.empty());
  EXPECT_EQ(trace_structure_digest(one.trace), trace_structure_digest(four.trace));

  // Every admitted round's trace must chain ingest -> queue -> round with
  // the declared parent links, whatever the worker count.
  std::set<std::uint64_t> ingest, queue, round;
  for (const TraceSpan& s : four.trace) {
    if (s.op == TraceOp::kIngest) {
      EXPECT_EQ(s.parent, TraceOp::kNone);
      ingest.insert(s.trace_id);
    } else if (s.op == TraceOp::kQueue) {
      EXPECT_EQ(s.parent, TraceOp::kIngest);
      queue.insert(s.trace_id);
    } else if (s.op == TraceOp::kRound) {
      round.insert(s.trace_id);
    }
  }
  ASSERT_FALSE(queue.empty());
  for (const std::uint64_t id : queue) EXPECT_TRUE(ingest.count(id)) << id;
  for (const std::uint64_t id : round) EXPECT_TRUE(queue.count(id)) << id;
}

TEST(TracePlane, SpanCapCountsOverflowInsteadOfGrowing) {
  const std::vector<sim::GroupScenario> workload =
      sim::make_workload(small_params(8));
  fleet::FleetOptions fo;
  fo.master_seed = 0x7E1Eu;
  fo.shards = 2;
  TelemetryOptions topts;
  topts.enabled = true;
  topts.trace = true;
  topts.trace_max_spans = 4;
  Collector collector(topts);
  fleet::FleetService(fo, workload).run(nullptr, &collector);
  const TelemetryReport rep = collector.report();
  EXPECT_LE(rep.trace.size(), 4u * rep.streams);
  EXPECT_GT(rep.trace_dropped, 0u);
}

TEST(TracePlane, ChromeTraceExportParsesAsJson) {
  const std::vector<sim::GroupScenario> workload =
      sim::make_workload(small_params(6));
  const TelemetryReport rep = fleet_trace_report(workload, 2);
  std::ostringstream out;
  write_chrome_trace(out, rep.trace);
  const config::Json doc = config::parse_json(out.str());
  ASSERT_TRUE(doc.is_object());
  const config::Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_GE(events->items().size(), rep.trace.size());
  for (const config::Json& e : events->items()) {
    ASSERT_TRUE(e.is_object());
    ASSERT_NE(e.find("ph"), nullptr);
    const std::string& ph = e.find("ph")->as_string();
    EXPECT_TRUE(ph == "X" || ph == "s" || ph == "t");
    if (ph == "X") {
      EXPECT_NE(e.find("dur"), nullptr);
    }
  }
}

// --- flight recorder --------------------------------------------------------

TEST(FlightRecorder, EvictStormTriggerDumpsRecentEvents) {
  const std::vector<sim::GroupScenario> workload =
      sim::make_workload(small_params(12));
  fleet::FleetOptions fo;
  fo.master_seed = 0x7E1Eu;
  fo.shards = 2;
  TelemetryOptions topts;
  topts.enabled = true;
  topts.window = 4.0;
  topts.flight.capacity = 32;
  topts.flight.max_dumps = 2;
  topts.flight.evict_storm = 1;  // every eviction is a "storm"
  Collector collector(topts);
  fleet::FleetService(fo, workload).run(nullptr, &collector);
  const TelemetryReport rep = collector.report();

  ASSERT_FALSE(rep.flight.empty());
  EXPECT_LE(rep.flight.size(), 2u * rep.streams);  // budget per stream
  bool saw_evict_storm = false;
  for (const FlightDump& d : rep.flight) {
    EXPECT_LT(d.stream, rep.streams);
    EXPECT_FALSE(d.events.empty());
    EXPECT_LE(d.events.size(), 32u);
    if (d.trigger == FlightTrigger::kEvictStorm) saw_evict_storm = true;
  }
  EXPECT_TRUE(saw_evict_storm);
}

TEST(FlightRecorder, RingOverflowTriggerFiresOnDrops) {
  const std::vector<sim::GroupScenario> workload =
      sim::make_workload(small_params(8));
  fleet::FleetOptions fo;
  fo.master_seed = 0x7E1Eu;
  fo.shards = 2;
  TelemetryOptions topts;
  topts.enabled = true;
  topts.ring_capacity = 1;  // rounds to the 8-slot minimum: guaranteed drops
  topts.flight.capacity = 16;
  Collector collector(topts);
  fleet::FleetService(fo, workload).run(nullptr, &collector);
  const TelemetryReport rep = collector.report();

  ASSERT_GT(rep.dropped, 0u);
  bool saw_overflow = false;
  for (const FlightDump& d : rep.flight)
    if (d.trigger == FlightTrigger::kRingOverflow) saw_overflow = true;
  EXPECT_TRUE(saw_overflow);
}

TEST(FlightRecorder, DisabledCapacityRecordsNothing) {
  const std::vector<sim::GroupScenario> workload =
      sim::make_workload(small_params(8));
  fleet::FleetOptions fo;
  fo.master_seed = 0x7E1Eu;
  fo.shards = 2;
  TelemetryOptions topts;
  topts.enabled = true;
  topts.flight.capacity = 0;
  topts.flight.evict_storm = 1;
  Collector collector(topts);
  fleet::FleetService(fo, workload).run(nullptr, &collector);
  EXPECT_TRUE(collector.report().flight.empty());
}

// --- SLO scoreboard ---------------------------------------------------------

TEST(Slo, CdfReducesKnownVector) {
  const SloCdf c = make_slo_cdf({10.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0});
  EXPECT_EQ(c.count, 10u);
  EXPECT_DOUBLE_EQ(c.mean, 5.5);
  EXPECT_DOUBLE_EQ(c.min, 1.0);
  EXPECT_DOUBLE_EQ(c.max, 10.0);
  EXPECT_DOUBLE_EQ(c.p50, 5.5);  // linear interpolation between order stats
  EXPECT_DOUBLE_EQ(c.p90, 9.1);
  EXPECT_DOUBLE_EQ(c.p999, 9.991);

  const SloCdf empty = make_slo_cdf({});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.p99, 0.0);
}

SloReport fleet_slo(const std::vector<sim::GroupScenario>& workload,
                    std::size_t shards) {
  fleet::FleetOptions fo;
  fo.master_seed = 0x7E1Eu;
  fo.shards = shards;
  TelemetryOptions topts;
  topts.enabled = true;
  topts.window = 4.0;
  Collector collector(topts);
  const fleet::FleetResult res =
      fleet::FleetService(fo, workload).run(nullptr, &collector);
  const TelemetryReport rep = collector.report();
  return build_slo_report(fleet::make_slo_inputs(res, &rep));
}

TEST(Slo, ScoreboardBitIdenticalAcrossShardCounts) {
  const std::vector<sim::GroupScenario> workload =
      sim::make_workload(small_params(12));
  const SloReport one = fleet_slo(workload, 1);
  const SloReport four = fleet_slo(workload, 4);

  EXPECT_EQ(one.sessions, workload.size());
  EXPECT_GT(one.rounds, 0u);
  EXPECT_GT(one.localized_rate, 0.0);
  EXPECT_GT(one.error.count, 0u);

  // The deterministic scoreboard must match bit-for-bit (EXPECT_EQ on
  // doubles is exact equality — that is the contract).
  EXPECT_EQ(one.rounds, four.rounds);
  EXPECT_EQ(one.localized, four.localized);
  EXPECT_EQ(one.coasts, four.coasts);
  EXPECT_EQ(one.evicts, four.evicts);
  EXPECT_EQ(one.warm_hits, four.warm_hits);
  EXPECT_EQ(one.warm_misses, four.warm_misses);
  EXPECT_EQ(one.localized_rate, four.localized_rate);
  EXPECT_EQ(one.warm_start_hit_rate, four.warm_start_hit_rate);
  EXPECT_EQ(one.error.mean, four.error.mean);
  EXPECT_EQ(one.error.p50, four.error.p50);
  EXPECT_EQ(one.error.p99, four.error.p99);
  EXPECT_EQ(one.error.p999, four.error.p999);

  // All workload kinds are reported, in enum order, with pooled counts that
  // add back up to the fleet totals.
  ASSERT_EQ(one.kinds.size(), four.kinds.size());
  std::uint64_t kind_rounds = 0;
  for (std::size_t i = 0; i < one.kinds.size(); ++i) {
    EXPECT_EQ(one.kinds[i].kind, four.kinds[i].kind);
    EXPECT_EQ(one.kinds[i].rounds, four.kinds[i].rounds);
    EXPECT_EQ(one.kinds[i].error.p99, four.kinds[i].error.p99);
    kind_rounds += one.kinds[i].rounds;
  }
  EXPECT_EQ(kind_rounds, one.rounds);
}

}  // namespace
}  // namespace uwp::telemetry
