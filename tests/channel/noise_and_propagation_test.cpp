#include <gtest/gtest.h>

#include <cmath>

#include "channel/ambient_noise.hpp"
#include "channel/propagation.hpp"
#include "dsp/goertzel.hpp"
#include "util/stats.hpp"

namespace uwp::channel {
namespace {

TEST(WenzPsd, ShippingRaisesLowBand) {
  const double quiet = wenz_psd_db(500.0, 0.0, 3.0);
  const double busy = wenz_psd_db(500.0, 1.0, 3.0);
  EXPECT_GT(busy, quiet);
}

TEST(WenzPsd, WindRaisesMidBand) {
  EXPECT_GT(wenz_psd_db(2000.0, 0.3, 10.0), wenz_psd_db(2000.0, 0.3, 0.0));
}

TEST(WenzPsd, FallsOffTowardHighFrequencies) {
  // Above the wind hump the composite spectrum decreases until thermal noise
  // takes over well beyond our band.
  EXPECT_GT(wenz_psd_db(1000.0, 0.3, 4.0), wenz_psd_db(20000.0, 0.3, 4.0));
}

TEST(AmbientNoise, RmsMatchesEnvironment) {
  Environment env = make_dock();
  env.noise_rms = 0.01;
  uwp::Rng rng(1);
  const auto noise = ambient_noise(env, 44100, 44100.0, rng);
  EXPECT_NEAR(uwp::rms(noise), 0.01, 1e-12);
}

TEST(AmbientNoise, EmptyAndDeterministic) {
  Environment env = make_dock();
  uwp::Rng a(7), b(7);
  EXPECT_TRUE(ambient_noise(env, 0, 44100.0, a).empty());
  const auto n1 = ambient_noise(env, 1000, 44100.0, a);
  ambient_noise(env, 0, 44100.0, b);
  const auto n2 = ambient_noise(env, 1000, 44100.0, b);
  ASSERT_EQ(n1.size(), n2.size());
  for (std::size_t i = 0; i < n1.size(); ++i) EXPECT_DOUBLE_EQ(n1[i], n2[i]);
}

TEST(SpikeNoise, RateControlsOccupancy) {
  Environment env = make_dock();
  env.spike_rate_hz = 0.0;
  uwp::Rng rng(2);
  for (double v : spike_noise(env, 44100, 44100.0, rng)) EXPECT_DOUBLE_EQ(v, 0.0);

  env.spike_rate_hz = 20.0;
  const auto spiky = spike_noise(env, 44100 * 4, 44100.0, rng);
  double peak = 0.0;
  for (double v : spiky) peak = std::max(peak, std::abs(v));
  // Spikes are much louder than the ambient floor.
  EXPECT_GT(peak, env.noise_rms * 5.0);
}

TEST(Propagation, ReceptionContainsSignalAboveNoise) {
  Environment env = make_dock();
  const LinkSimulator link(env, 44100.0);
  LinkConfig cfg;
  cfg.tx_pos = {0, 0, 2.5};
  cfg.rx_pos = {10, 0, 2.5};
  uwp::Rng rng(3);
  std::vector<double> tone(2000);
  for (std::size_t i = 0; i < tone.size(); ++i)
    tone[i] = std::sin(2.0 * 3.14159265 * 3000.0 * static_cast<double>(i) / 44100.0);
  const Reception rec = link.transmit(tone, cfg, rng);
  ASSERT_EQ(rec.mic[0].empty(), false);
  // Energy at the tone frequency around the arrival should dominate a
  // noise-only window later in the stream.
  const double tof_samples = rec.true_tof_s[0] * 44100.0;
  const std::size_t at = static_cast<std::size_t>(tof_samples);
  std::vector<double> sig_win(rec.mic[0].begin() + at, rec.mic[0].begin() + at + 2000);
  const double sig_power = uwp::dsp::goertzel_power(sig_win, 3000.0, 44100.0);
  std::vector<double> noise_win(rec.mic[0].end() - 2000, rec.mic[0].end());
  const double noise_power = uwp::dsp::goertzel_power(noise_win, 3000.0, 44100.0);
  EXPECT_GT(sig_power, 10.0 * noise_power);
}

TEST(Propagation, TrueTofMatchesGeometry) {
  Environment env = make_dock();
  const LinkSimulator link(env, 44100.0);
  LinkConfig cfg;
  cfg.tx_pos = {0, 0, 2};
  cfg.rx_pos = {20, 0, 2};
  cfg.mic_axis = {1, 0};
  uwp::Rng rng(4);
  const std::vector<double> pulse(500, 0.5);
  const Reception rec = link.transmit(pulse, cfg, rng);
  EXPECT_NEAR(rec.true_range_m, 20.0, 1e-12);
  // Mic 1 at -8 cm along x is nearer the source; mic 2 farther.
  EXPECT_LT(rec.true_tof_s[0], rec.true_tof_s[1]);
  EXPECT_NEAR(rec.true_tof_s[1] - rec.true_tof_s[0],
              0.16 / env.sound_speed_mps(), 1e-6);
}

TEST(Propagation, MicNoiseFactorsDiffer) {
  Environment env = make_dock();
  env.spike_rate_hz = 0.0;  // spikes dominate RMS and are high-variance
  const LinkSimulator link(env, 44100.0);
  LinkConfig cfg;
  cfg.rx_device.mic_noise_factor = {1.0, 3.0};
  uwp::Rng rng(5);
  const Reception rec = link.noise_only(1.0, cfg, rng);
  EXPECT_GT(uwp::rms(rec.mic[1]), 2.0 * uwp::rms(rec.mic[0]));
}

TEST(Propagation, EmptyWaveformThrows) {
  const LinkSimulator link(make_dock(), 44100.0);
  LinkConfig cfg;
  uwp::Rng rng(6);
  EXPECT_THROW(link.transmit({}, cfg, rng), std::invalid_argument);
}

TEST(Propagation, CaseImpulseResponseHasUnitDirectTap) {
  uwp::Rng rng(7);
  const auto ir = make_case_impulse_response(DeviceModel::samsung_s9(), rng);
  ASSERT_FALSE(ir.empty());
  EXPECT_DOUBLE_EQ(ir[0], 1.0);
  for (std::size_t i = 1; i < ir.size(); ++i) EXPECT_LT(std::abs(ir[i]), 1.0);
}

TEST(Propagation, ShadowingAttenuatesDirectPathEnergy) {
  // With shadowing forced on (probability 1), the received energy around the
  // direct arrival drops on average versus shadowing off.
  Environment env = make_dock();
  env.spike_rate_hz = 0.0;
  env.noise_rms = 1e-6;  // isolate the deterministic paths
  env.scatter_taps = 0;
  const LinkSimulator link(env, 44100.0);
  std::vector<double> pulse(400, 0.0);
  pulse[0] = 1.0;

  auto direct_energy = [&](double shadow_prob, std::uint64_t seed) {
    LinkConfig cfg;
    cfg.tx_pos = {0, 0, 4.0};
    cfg.rx_pos = {15, 0, 4.0};
    cfg.direct_fade_sigma_db = 0.0;
    cfg.reflection_fade_sigma_db = 0.0;
    cfg.shadow_probability = shadow_prob;
    uwp::Rng rng(seed);
    double acc = 0.0;
    for (int t = 0; t < 8; ++t) {
      const Reception rec = link.transmit(pulse, cfg, rng);
      const std::size_t at = static_cast<std::size_t>(rec.true_tof_s[0] * 44100.0);
      for (std::size_t i = at; i < at + 4 && i < rec.mic[0].size(); ++i)
        acc += rec.mic[0][i] * rec.mic[0][i];
    }
    return acc;
  };
  EXPECT_LT(direct_energy(1.0, 7), 0.5 * direct_energy(0.0, 7));
}

TEST(Propagation, PathFadesSharedAcrossMics) {
  // The direct-path fade is a physical property of the link, so both mics
  // must see the same realization: their direct-arrival amplitudes stay in a
  // fixed ratio across trials even under heavy fading.
  Environment env = make_dock();
  env.spike_rate_hz = 0.0;
  env.noise_rms = 1e-9;
  env.scatter_taps = 0;
  const LinkSimulator link(env, 44100.0);
  std::vector<double> pulse(10, 0.0);
  pulse[0] = 1.0;
  LinkConfig cfg;
  cfg.tx_pos = {0, 0, 4.0};
  cfg.rx_pos = {20, 0, 4.0};
  cfg.direct_fade_sigma_db = 6.0;
  cfg.shadow_probability = 0.5;
  uwp::Rng rng(9);
  // The per-mic case reverb adds independent variation, so compare the
  // pattern across trials: when one mic's direct peak fades, so must the
  // other's (log-peak correlation near 1).
  std::vector<double> log1, log2;
  for (int t = 0; t < 16; ++t) {
    const Reception rec = link.transmit(pulse, cfg, rng);
    double peak1 = 0.0, peak2 = 0.0;
    for (double v : rec.mic[0]) peak1 = std::max(peak1, std::abs(v));
    for (double v : rec.mic[1]) peak2 = std::max(peak2, std::abs(v));
    log1.push_back(std::log(peak1));
    log2.push_back(std::log(peak2));
  }
  const double m1 = uwp::mean(log1), m2 = uwp::mean(log2);
  double num = 0.0, d1 = 0.0, d2 = 0.0;
  for (std::size_t i = 0; i < log1.size(); ++i) {
    num += (log1[i] - m1) * (log2[i] - m2);
    d1 += (log1[i] - m1) * (log1[i] - m1);
    d2 += (log2[i] - m2) * (log2[i] - m2);
  }
  EXPECT_GT(num / std::sqrt(d1 * d2), 0.9);
}

TEST(Propagation, DeviceModelPresetsDistinct) {
  const auto s9 = DeviceModel::samsung_s9();
  const auto px = DeviceModel::pixel();
  const auto op = DeviceModel::oneplus();
  EXPECT_NE(s9.name, px.name);
  EXPECT_NE(px.name, op.name);
  EXPECT_NE(s9.clock_skew_ppm, op.clock_skew_ppm);
}

}  // namespace
}  // namespace uwp::channel
