#include "channel/sound_speed.hpp"

#include <gtest/gtest.h>

namespace uwp::channel {
namespace {

TEST(SoundSpeed, WilsonEquationReferencePoints) {
  // T=0, S=35, D=0: c = 1449 + 1.39*0 = 1449.
  EXPECT_NEAR(sound_speed({0.0, 35.0, 0.0}), 1449.0, 1e-9);
  // T=10, S=35, D=0: 1449 + 46 - 5.5 + 0.3 = 1489.8.
  EXPECT_NEAR(sound_speed({10.0, 35.0, 0.0}), 1489.8, 1e-9);
}

TEST(SoundSpeed, IncreasesWithTemperatureInDiveRange) {
  for (double t = 0.0; t < 30.0; t += 5.0) {
    const double c1 = sound_speed({t, 0.5, 2.0});
    const double c2 = sound_speed({t + 5.0, 0.5, 2.0});
    EXPECT_GT(c2, c1) << "at T=" << t;
  }
}

TEST(SoundSpeed, IncreasesWithDepth) {
  EXPECT_GT(sound_speed({15.0, 0.5, 40.0}), sound_speed({15.0, 0.5, 0.0}));
}

TEST(SoundSpeed, FreshWaterSlowerThanSeaWater) {
  EXPECT_LT(sound_speed({15.0, 0.5, 2.0}), sound_speed({15.0, 35.0, 2.0}));
}

TEST(SoundSpeed, WithinTwoPercentOfNominalForDiveConditions) {
  // Paper §2: at recreational depths the speed change is ~2% of 1500 m/s.
  for (double t = 5.0; t <= 28.0; t += 2.0) {
    for (double d = 0.0; d <= 40.0; d += 10.0) {
      const double c = sound_speed({t, 0.5, d});
      EXPECT_GT(c, 1400.0);
      EXPECT_LT(c, 1560.0);
    }
  }
}

}  // namespace
}  // namespace uwp::channel
