#include "channel/multipath.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace uwp::channel {
namespace {

Environment test_env() {
  Environment e = make_dock();
  e.scatter_taps = 0;  // deterministic macro paths only
  return e;
}

TEST(Multipath, DirectPathDelayMatchesGeometry) {
  const Environment env = test_env();
  const uwp::Vec3 tx{0, 0, 3}, rx{20, 0, 4};
  const auto taps = image_method_taps(tx, rx, env, {});
  ASSERT_FALSE(taps.empty());
  // The first (earliest) tap is the direct path.
  EXPECT_TRUE(taps.front().is_direct);
  const double expected = uwp::distance(tx, rx) / env.sound_speed_mps();
  EXPECT_NEAR(taps.front().delay_s, expected, 1e-12);
}

TEST(Multipath, TapsSortedByDelay) {
  const Environment env = test_env();
  const auto taps = image_method_taps({0, 0, 2}, {15, 5, 6}, env, {});
  for (std::size_t i = 1; i < taps.size(); ++i)
    EXPECT_GE(taps[i].delay_s, taps[i - 1].delay_s);
}

TEST(Multipath, ExpectedImageCount) {
  const Environment env = test_env();
  MultipathOptions opts;
  opts.max_bounces = 4;
  const auto taps = image_method_taps({0, 0, 2}, {10, 0, 3}, env, opts);
  // Direct + two alternating chains of length max_bounces.
  EXPECT_EQ(taps.size(), 1u + 2u * 4u);
}

TEST(Multipath, SurfaceReflectionFlipsPhase) {
  const Environment env = test_env();
  const auto taps = image_method_taps({0, 0, 2}, {10, 0, 3}, env, {});
  for (const auto& t : taps) {
    if (t.surface_bounces % 2 == 1 && t.bottom_bounces == 0) {
      EXPECT_LT(t.gain, 0.0) << "single surface bounce should be negative";
    }
    if (t.is_direct) {
      EXPECT_GT(t.gain, 0.0);
    }
  }
}

TEST(Multipath, SurfacePathDelayMatchesImageGeometry) {
  const Environment env = test_env();
  const uwp::Vec3 tx{0, 0, 2}, rx{10, 0, 3};
  const auto taps = image_method_taps(tx, rx, env, {});
  // Surface image at z = -2: path length sqrt(100 + 25).
  const double expected = std::sqrt(100.0 + 25.0) / env.sound_speed_mps();
  bool found = false;
  for (const auto& t : taps) {
    if (t.surface_bounces == 1 && t.bottom_bounces == 0) {
      EXPECT_NEAR(t.delay_s, expected, 1e-12);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Multipath, GainDecaysWithRange) {
  const Environment env = test_env();
  const auto near = image_method_taps({0, 0, 4}, {5, 0, 4}, env, {});
  const auto far = image_method_taps({0, 0, 4}, {40, 0, 4}, env, {});
  EXPECT_GT(std::abs(near.front().gain), std::abs(far.front().gain));
}

TEST(Multipath, OcclusionAttenuatesDirectAndSurfacePaths) {
  // A blocking sheet spans the upper water column: the direct path and
  // surface-only bounces are attenuated; bottom detours survive.
  const Environment env = test_env();
  MultipathOptions opts;
  const auto base = image_method_taps({0, 0, 2}, {10, 0, 3}, env, opts);
  opts.occlusion_db = 20.0;
  const auto occluded = image_method_taps({0, 0, 2}, {10, 0, 3}, env, opts);
  ASSERT_EQ(base.size(), occluded.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    const bool blocked = base[i].is_direct ||
                         (base[i].bottom_bounces == 0 && base[i].surface_bounces > 0);
    if (blocked)
      EXPECT_NEAR(occluded[i].gain / base[i].gain, 0.1, 1e-9);
    else
      EXPECT_DOUBLE_EQ(occluded[i].gain, base[i].gain);
  }
}

TEST(Multipath, OcclusionSurfaceBlockingCanBeDisabled) {
  const Environment env = test_env();
  MultipathOptions opts;
  opts.occlusion_db = 20.0;
  opts.occlusion_blocks_surface = false;
  const auto taps = image_method_taps({0, 0, 2}, {10, 0, 3}, env, opts);
  MultipathOptions clean;
  const auto base = image_method_taps({0, 0, 2}, {10, 0, 3}, env, clean);
  for (std::size_t i = 0; i < base.size(); ++i) {
    if (base[i].surface_bounces > 0 && base[i].bottom_bounces == 0) {
      EXPECT_DOUBLE_EQ(taps[i].gain, base[i].gain);
    }
  }
}

TEST(Multipath, EndpointOutsideWaterThrows) {
  const Environment env = test_env();
  EXPECT_THROW(image_method_taps({0, 0, -1}, {10, 0, 3}, env, {}),
               std::invalid_argument);
  EXPECT_THROW(image_method_taps({0, 0, 2}, {10, 0, 99}, env, {}),
               std::invalid_argument);
}

TEST(Multipath, ScatterTailAddsConfiguredTaps) {
  Environment env = make_dock();
  env.scatter_taps = 10;
  uwp::Rng rng(3);
  const auto macro = image_method_taps({0, 0, 2}, {10, 0, 3}, env, {});
  const auto with_tail = scatter_tail(macro, env, rng);
  EXPECT_EQ(with_tail.size(), macro.size() + 10u);
  // Scatter taps arrive no earlier than the first macro arrival.
  for (const auto& t : with_tail) EXPECT_GE(t.delay_s, macro.front().delay_s - 1e-12);
}

TEST(Multipath, ScatterTailWeakerThanStrongestArrival) {
  Environment env = make_dock();
  env.scatter_taps = 30;
  env.scatter_relative_db = -20.0;
  uwp::Rng rng(5);
  const auto macro = image_method_taps({0, 0, 2}, {10, 0, 3}, env, {});
  double ref = 0.0;
  for (const auto& t : macro) ref = std::max(ref, std::abs(t.gain));
  const auto with_tail = scatter_tail(macro, env, rng);
  for (std::size_t i = macro.size(); i < with_tail.size(); ++i)
    EXPECT_LT(std::abs(with_tail[i].gain), ref);
}

TEST(Multipath, RenderImpulseResponsePlacesTapEnergy) {
  std::vector<PathTap> taps = {{100.0 / 44100.0, 1.0, 0, 0, true}};
  const auto h = render_impulse_response(taps, 44100.0, 256);
  // Peak at sample 100.
  std::size_t peak = 0;
  for (std::size_t i = 1; i < h.size(); ++i)
    if (h[i] > h[peak]) peak = i;
  EXPECT_EQ(peak, 100u);
  EXPECT_NEAR(h[100], 1.0, 1e-9);
}

TEST(Multipath, RenderFractionalTapSplitsBetweenSamples) {
  std::vector<PathTap> taps = {{100.5 / 44100.0, 1.0, 0, 0, true}};
  const auto h = render_impulse_response(taps, 44100.0, 256);
  EXPECT_GT(h[100], 0.3);
  EXPECT_GT(h[101], 0.3);
  EXPECT_NEAR(h[100], h[101], 1e-9);  // symmetric split at .5
}

TEST(Multipath, RenderIgnoresOutOfRangeTaps) {
  std::vector<PathTap> taps = {{1.0, 1.0, 0, 0, true}};  // 44100 samples out
  const auto h = render_impulse_response(taps, 44100.0, 64);
  for (double v : h) EXPECT_DOUBLE_EQ(v, 0.0);
}

}  // namespace
}  // namespace uwp::channel
