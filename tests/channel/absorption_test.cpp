#include "channel/absorption.hpp"

#include <gtest/gtest.h>

namespace uwp::channel {
namespace {

TEST(Absorption, ThorpIncreasesWithFrequency) {
  EXPECT_LT(thorp_absorption_db_per_km(1000.0), thorp_absorption_db_per_km(5000.0));
  EXPECT_LT(thorp_absorption_db_per_km(5000.0), thorp_absorption_db_per_km(50000.0));
}

TEST(Absorption, ThorpSmallInPhoneBand) {
  // At 1-5 kHz absorption is well under 1 dB/km — negligible at 50 m, which
  // is why spreading dominates the paper's link budget.
  EXPECT_LT(thorp_absorption_db_per_km(3000.0), 1.0);
  EXPECT_GT(thorp_absorption_db_per_km(3000.0), 0.0);
}

TEST(Absorption, SpreadingLossReferencedToOneMeter) {
  EXPECT_DOUBLE_EQ(spreading_loss_db(1.0), 0.0);
  EXPECT_NEAR(spreading_loss_db(10.0), 20.0, 1e-12);
  EXPECT_NEAR(spreading_loss_db(100.0), 40.0, 1e-12);
  // Below 1 m clamps to the reference.
  EXPECT_DOUBLE_EQ(spreading_loss_db(0.5), 0.0);
}

TEST(Absorption, TransmissionLossMonotonicInRange) {
  double prev = -1.0;
  for (double r = 1.0; r <= 64.0; r *= 2.0) {
    const double tl = transmission_loss_db(r, 3000.0);
    EXPECT_GT(tl, prev);
    prev = tl;
  }
}

TEST(Absorption, DbAmplitudeRoundTrip) {
  for (double db : {-40.0, -6.0, 0.0, 6.0, 20.0})
    EXPECT_NEAR(amplitude_to_db(db_to_amplitude(db)), db, 1e-9);
}

TEST(Absorption, MinusSixDbHalvesAmplitude) {
  EXPECT_NEAR(db_to_amplitude(-6.0205999), 0.5, 1e-6);
}

}  // namespace
}  // namespace uwp::channel
