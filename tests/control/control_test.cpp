// The control plane's contract (src/control/README.md): every decision is a
// pure function of (window index, counter snapshot, config); the ControlLog
// is byte-identical at any shard/worker count; every fleet-side knob is
// result-neutral; and a recorded run's log re-derives exactly from the
// counter plane a Replayer rebuilds.
#include "control/engine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <initializer_list>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "control/log.hpp"
#include "control/policies.hpp"
#include "fleet/recorder.hpp"
#include "fleet/server.hpp"
#include "fleet/service.hpp"
#include "sim/fleet_workload.hpp"
#include "telemetry/collector.hpp"

namespace uwp::control {
namespace {

using telemetry::Counter;

telemetry::Snapshot snap_with(
    std::uint64_t window,
    std::initializer_list<std::pair<Counter, std::uint64_t>> vals) {
  telemetry::Snapshot s;
  s.window = window;
  for (const auto& [c, v] : vals) s.counts[static_cast<std::size_t>(c)] = v;
  return s;
}

// --- log codec --------------------------------------------------------------

TEST(ControlLog, CodecRoundTripsBitExactly) {
  ControlLog log;
  log.windows_observed = 7;
  log.actions.push_back({0, ActionKind::kArenaCachePolicy,
                         static_cast<double>(CachePolicy::kLfu)});
  log.actions.push_back({2, ActionKind::kArenaRetain, 16.0});
  log.actions.push_back({3, ActionKind::kShaperRate, 6.25});
  log.actions.push_back({3, ActionKind::kShaperBurst, 10.0});
  log.actions.push_back({5, ActionKind::kSearchThreads, 4.0});
  // A value whose bit pattern must survive exactly.
  log.actions.push_back({6, ActionKind::kShaperRate, 0.1 + 0.2});

  std::stringstream ss;
  write_control_log(ss, log);
  const ControlLog back = read_control_log(ss);
  EXPECT_TRUE(bit_equal(log, back));
  EXPECT_EQ(control_log_digest(log), control_log_digest(back));
}

TEST(ControlLog, ReaderRejectsCorruption) {
  ControlLog log;
  log.windows_observed = 1;
  log.actions.push_back({0, ActionKind::kArenaRetain, 8.0});
  std::stringstream ss;
  write_control_log(ss, log);
  std::string bytes = ss.str();

  {
    std::string bad = bytes;
    bad[0] ^= 0xFF;  // magic
    std::stringstream in(bad);
    EXPECT_THROW(read_control_log(in), std::runtime_error);
  }
  {
    std::stringstream in(bytes.substr(0, bytes.size() - 3));  // truncated
    EXPECT_THROW(read_control_log(in), std::runtime_error);
  }
  {
    std::stringstream in(bytes + "x");  // trailing bytes
    EXPECT_THROW(read_control_log(in), std::runtime_error);
  }
}

// --- policy folds -----------------------------------------------------------

TEST(Policies, ArenaTunerStormsAndDecays) {
  ControlConfig cfg;
  ArenaTunerPolicy tuner(cfg);
  ShardControls c;

  // Storm: retention jumps to the base, then doubles, capped at retain_max.
  tuner.observe(0, snap_with(0, {{Counter::kEvicts, cfg.evict_storm}}), c);
  EXPECT_EQ(c.arena_retain, 2 * cfg.retain_base);
  for (int i = 0; i < 10; ++i)
    tuner.observe(1 + i, snap_with(1 + i, {{Counter::kEvicts, cfg.evict_storm}}), c);
  EXPECT_EQ(c.arena_retain, cfg.retain_max);

  // Idle windows decay retention back toward the base, never below it.
  for (int i = 0; i < 10; ++i) tuner.observe(20 + i, snap_with(20 + i, {}), c);
  EXPECT_EQ(c.arena_retain, cfg.retain_base);
}

TEST(Policies, ArenaTunerPicksPolicyFromMixDrift) {
  ControlConfig cfg;
  ArenaTunerPolicy tuner(cfg);
  ShardControls c;

  // Balanced mix (mean admit size == mean evict size): LFU.
  tuner.observe(0,
                snap_with(0, {{Counter::kAdmits, 4},
                              {Counter::kEvicts, 4},
                              {Counter::kAdmitDevices, 20},
                              {Counter::kEvictDevices, 20}}),
                c);
  EXPECT_EQ(c.cache_policy, CachePolicy::kLfu);

  // Drifting mix (admitted groups much larger than evicted): cost-aware.
  tuner.observe(1,
                snap_with(1, {{Counter::kAdmits, 4},
                              {Counter::kEvicts, 4},
                              {Counter::kAdmitDevices, 40},
                              {Counter::kEvictDevices, 20}}),
                c);
  EXPECT_EQ(c.cache_policy, CachePolicy::kCostAware);
}

TEST(Policies, SolverTunerScalesWithIterationPressure) {
  ControlConfig cfg;
  SolverTunerPolicy tuner(cfg);
  ShardControls c;

  tuner.observe(0,
                snap_with(0, {{Counter::kRounds, 10},
                              {Counter::kSolverIterations,
                               10 * (cfg.solver_iters_high + 1)}}),
                c);
  EXPECT_EQ(c.search_threads, 2u);
  // Pressure stays high: doubles to the cap, never past it.
  for (int i = 0; i < 8; ++i)
    tuner.observe(1 + i,
                  snap_with(1 + i, {{Counter::kRounds, 10},
                                    {Counter::kSolverIterations,
                                     10 * (cfg.solver_iters_high + 1)}}),
                  c);
  EXPECT_EQ(c.search_threads, cfg.max_search_threads);
  // Low pressure halves back down to 1.
  for (int i = 0; i < 8; ++i)
    tuner.observe(20 + i, snap_with(20 + i, {{Counter::kRounds, 10}}), c);
  EXPECT_EQ(c.search_threads, 1u);
  // No rounds at all: no change.
  c.search_threads = 4;
  tuner.observe(40, snap_with(40, {}), c);
  EXPECT_EQ(c.search_threads, 4u);
}

TEST(Policies, ShaperTunerOpensUnderShedPressureAndRelaxes) {
  ControlConfig cfg;
  ShardControls base;
  base.shaper_rate = 4.0;
  base.shaper_burst = 8.0;
  base.shaper_max_defers = 8;
  ShaperTunerPolicy tuner(cfg, base);
  ShardControls c = base;

  // Sheds while workers kept up: the bucket is the bottleneck.
  tuner.observe(0,
                snap_with(0, {{Counter::kIngestShed, 5},
                              {Counter::kIngestAdmitted, 10},
                              {Counter::kRounds, 10}}),
                c);
  EXPECT_DOUBLE_EQ(c.shaper_rate, 4.0 * cfg.rate_step);
  EXPECT_DOUBLE_EQ(c.shaper_burst, 10.0);
  EXPECT_EQ(c.shaper_max_defers, 10u);

  // Quiet windows step back to (never past) the baseline.
  for (int i = 0; i < 16; ++i) tuner.observe(1 + i, snap_with(1 + i, {}), c);
  EXPECT_DOUBLE_EQ(c.shaper_rate, base.shaper_rate);
  EXPECT_DOUBLE_EQ(c.shaper_burst, base.shaper_burst);
  EXPECT_EQ(c.shaper_max_defers, base.shaper_max_defers);

  // Disabled baseline: inert no matter the counters.
  ShardControls off;
  ShaperTunerPolicy inert(cfg, off);
  ShardControls c2 = off;
  inert.observe(0, snap_with(0, {{Counter::kIngestShed, 100}}), c2);
  EXPECT_TRUE(bit_equal(c2, off));
}

// --- engine -----------------------------------------------------------------

TEST(ControlEngine, FoldIsPureAndMasksItsOwnCounters) {
  ControlConfig cfg;
  cfg.enabled = true;
  const ShardControls base;

  std::vector<telemetry::Snapshot> snaps;
  snaps.push_back(snap_with(0, {{Counter::kEvicts, 8}, {Counter::kAdmits, 8},
                                {Counter::kAdmitDevices, 40},
                                {Counter::kEvictDevices, 39}}));
  snaps.push_back(snap_with(1, {{Counter::kRounds, 4},
                                {Counter::kSolverIterations, 4000}}));
  snaps.push_back(snap_with(2, {}));

  const ControlLog a = ControlEngine::reexecute(cfg, base, snaps);
  const ControlLog b = ControlEngine::reexecute(cfg, base, snaps);
  EXPECT_TRUE(bit_equal(a, b));
  EXPECT_EQ(a.windows_observed, 3u);
  EXPECT_FALSE(a.actions.empty());

  // The engine's own emissions must not feed back into decisions: spiking
  // the control counters in the input changes nothing.
  std::vector<telemetry::Snapshot> spiked = snaps;
  for (telemetry::Snapshot& s : spiked) {
    s.counts[static_cast<std::size_t>(Counter::kControlWindows)] = 999;
    s.counts[static_cast<std::size_t>(Counter::kControlActions)] = 999;
  }
  EXPECT_TRUE(bit_equal(a, ControlEngine::reexecute(cfg, base, spiked)));
}

// --- fleet integration ------------------------------------------------------

sim::WorkloadParams churn_params(std::size_t sessions) {
  sim::WorkloadParams p;
  p.sessions = sessions;
  p.seed = 0xC0117301u;
  p.min_group_size = 4;
  p.max_group_size = 6;
  p.min_rounds = 2;
  p.max_rounds = 4;
  p.admit_spread_ticks = 4;
  p.include_des = false;
  return p;
}

telemetry::TelemetryOptions fleet_tel_options(double window) {
  telemetry::TelemetryOptions t;
  t.enabled = true;
  t.timing = false;
  t.window = window;
  return t;
}

void expect_fleet_bits(const fleet::FleetResult& a, const fleet::FleetResult& b) {
  EXPECT_EQ(a.fleet_digest, b.fleet_digest);
  ASSERT_EQ(a.sessions.size(), b.sessions.size());
  for (std::size_t i = 0; i < a.sessions.size(); ++i)
    EXPECT_TRUE(a.sessions[i].bit_equal(b.sessions[i])) << "session " << i;
}

TEST(ControlFleet, ResultNeutralAndShardCountInvariant) {
  ControlConfig cfg;
  cfg.enabled = true;
  cfg.window_ticks = 4;
  const ShardControls base;
  const std::vector<sim::GroupScenario> workload =
      sim::make_workload(churn_params(24));

  fleet::FleetOptions opts;
  opts.shards = 1;
  const fleet::FleetService serial(opts, workload);
  const fleet::FleetResult plain = serial.run();

  telemetry::Collector col1(fleet_tel_options(4.0));
  ControlEngine e1(cfg, base);
  const fleet::FleetResult controlled1 = serial.run(nullptr, &col1, &e1);

  opts.shards = 4;
  const fleet::FleetService sharded(opts, workload);
  telemetry::Collector col4(fleet_tel_options(4.0));
  ControlEngine e4(cfg, base);
  const fleet::FleetResult controlled4 = sharded.run(nullptr, &col4, &e4);

  // Result-neutral: the controlled runs produce the uncontrolled bits.
  expect_fleet_bits(plain, controlled1);
  expect_fleet_bits(plain, controlled4);

  // The log is shard-count invariant, bit for bit, and covers every window
  // of the workload's timeline.
  EXPECT_TRUE(bit_equal(e1.log(), e4.log()));
  EXPECT_EQ(control_log_digest(e1.log()), control_log_digest(e4.log()));
  const std::size_t ticks = serial.ticks();
  EXPECT_EQ(e1.log().windows_observed, (ticks + 3) / 4);

  // The engine stream emitted its bookkeeping counters.
  const telemetry::TelemetryReport rep = col1.report();
  EXPECT_EQ(rep.totals[static_cast<std::size_t>(Counter::kControlWindows)],
            e1.log().windows_observed);
}

TEST(ControlFleet, ReplayReexecutesTheLogExactly) {
  ControlConfig cfg;
  cfg.enabled = true;
  cfg.window_ticks = 4;
  const ShardControls base;
  const sim::WorkloadParams params = churn_params(16);
  const std::vector<sim::GroupScenario> workload = sim::make_workload(params);

  fleet::FleetOptions opts;
  opts.shards = 3;
  const fleet::FleetService service(opts, workload);
  fleet::SessionRecorder recorder(opts.master_seed, params, workload);
  telemetry::Collector col(fleet_tel_options(4.0));
  ControlEngine engine(cfg, base);
  const fleet::FleetResult live = service.run(&recorder, &col, &engine);
  ASSERT_FALSE(engine.log().actions.empty());

  // Round-trip the trace through the codec, then replay with a fresh
  // collector: the rebuilt counter plane must re-derive the live log.
  std::stringstream ss;
  recorder.write(ss);
  const fleet::Replayer replayer(fleet::read_fleet_trace(ss));
  telemetry::Collector replay_col(fleet_tel_options(4.0));
  const fleet::Replayer::ReplayResult replayed =
      replayer.replay(&replay_col, &cfg, &base);

  EXPECT_EQ(replayed.result_mismatches, 0u);
  expect_fleet_bits(live, replayed.fleet);
  EXPECT_TRUE(bit_equal(engine.log(), replayed.control_log));
}

// --- serve integration ------------------------------------------------------

fleet::ServerResult serve_controlled(const std::vector<sim::GroupScenario>& workload,
                                     fleet::ServerOptions opts,
                                     telemetry::Collector& col,
                                     ControlEngine& engine) {
  fleet::Server server(opts, workload);
  fleet::RingBufferTransport transport(64);
  std::thread feeder(
      [&] { fleet::feed_workload(transport, workload, opts.master_seed, {}); });
  fleet::ServerResult res;
  try {
    res = server.serve(transport, nullptr, &col, &engine);
  } catch (...) {
    transport.close();
    feeder.join();
    throw;
  }
  feeder.join();
  return res;
}

TEST(ControlServe, LogAndResultWorkerCountInvariantUnderShaping) {
  ControlConfig cfg;
  cfg.enabled = true;
  cfg.window_ticks = 4;  // collector window below must match
  const std::vector<sim::GroupScenario> workload =
      sim::make_workload(churn_params(16));

  fleet::ServerOptions opts;
  opts.shaping.policy = fleet::AdmissionPolicy::kDefer;
  opts.shaping.ingest_shards = 1;  // one bucket for the whole fleet: overload
  opts.shaping.rate_rounds_per_s = 1.0;
  opts.shaping.burst_rounds = 2.0;
  opts.shaping.queue_depth = 8;
  opts.shaping.drain_rounds_per_s = 4.0;
  opts.shaping.max_defers = 2;

  ShardControls base;
  base.shaper_rate = opts.shaping.rate_rounds_per_s;
  base.shaper_burst = opts.shaping.burst_rounds;
  base.shaper_max_defers = opts.shaping.max_defers;

  opts.workers = 1;
  telemetry::Collector col1(fleet_tel_options(4.0));
  ControlEngine e1(cfg, base);
  const fleet::ServerResult r1 = serve_controlled(workload, opts, col1, e1);

  opts.workers = 3;
  telemetry::Collector col3(fleet_tel_options(4.0));
  ControlEngine e3(cfg, base);
  const fleet::ServerResult r3 = serve_controlled(workload, opts, col3, e3);

  // The control-aware verifier recomputes the schedule (with the log's
  // retunes folded in at the same boundaries) bit for bit.
  EXPECT_EQ(r1.stats.schedule_mismatches, 0u);
  EXPECT_EQ(r3.stats.schedule_mismatches, 0u);

  // Log, schedule, and fleet bits are all worker-count invariant.
  EXPECT_TRUE(bit_equal(e1.log(), e3.log()));
  EXPECT_EQ(r1.schedule_digest, r3.schedule_digest);
  expect_fleet_bits(r1.fleet, r3.fleet);

  // Under this overload the shaper tuner must actually have acted.
  bool retuned = false;
  for (const ControlAction& a : e1.log().actions)
    if (a.kind == ActionKind::kShaperRate) retuned = true;
  EXPECT_TRUE(retuned);
}

}  // namespace
}  // namespace uwp::control
