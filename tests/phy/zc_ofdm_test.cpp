#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "dsp/fft.hpp"
#include "phy/ofdm_preamble.hpp"
#include "phy/zadoff_chu.hpp"

namespace uwp::phy {
namespace {

TEST(ZadoffChu, ConstantAmplitude) {
  for (std::size_t n : {63u, 64u, 139u, 174u}) {
    const auto zc = zadoff_chu(n, 1);
    ASSERT_EQ(zc.size(), n);
    for (const auto& v : zc) EXPECT_NEAR(std::abs(v), 1.0, 1e-12);
  }
}

TEST(ZadoffChu, ZeroAutocorrelationOddLength) {
  // CAZAC property: circular autocorrelation is zero at all non-zero lags.
  const std::size_t n = 139;  // prime
  const auto zc = zadoff_chu(n, 1);
  for (std::size_t lag = 1; lag < n; ++lag) {
    std::complex<double> acc{0, 0};
    for (std::size_t k = 0; k < n; ++k) acc += zc[k] * std::conj(zc[(k + lag) % n]);
    EXPECT_LT(std::abs(acc), 1e-8) << "lag " << lag;
  }
}

TEST(ZadoffChu, DifferentRootsDiffer) {
  const auto a = zadoff_chu(139, 1);
  const auto b = zadoff_chu(139, 2);
  double diff = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) diff += std::abs(a[i] - b[i]);
  EXPECT_GT(diff, 1.0);
}

TEST(ZadoffChu, Validation) {
  EXPECT_THROW(zadoff_chu(0, 1), std::invalid_argument);
  EXPECT_THROW(zadoff_chu(10, 0), std::invalid_argument);
  EXPECT_THROW(zadoff_chu(10, 5), std::invalid_argument);  // gcd(10,5)=5
}

TEST(PreambleConfig, PaperParameters) {
  PreambleConfig cfg;
  // 1920-sample symbols at 44.1 kHz -> ~23 Hz bins; 1-5 kHz spans bins 44..217.
  EXPECT_EQ(cfg.bin_lo(), 44u);
  EXPECT_EQ(cfg.bin_hi(), 217u);
  EXPECT_EQ(cfg.num_bins(), 174u);
  EXPECT_EQ(cfg.total_len(), 9840u);  // 4 * (540 + 1920)
}

TEST(OfdmPreamble, WaveformIsRealAndBounded) {
  const OfdmPreamble p(PreambleConfig{});
  const auto& w = p.waveform();
  ASSERT_EQ(w.size(), 9840u);
  for (double v : w) {
    EXPECT_LE(std::abs(v), 1.0 + 1e-9);
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(OfdmPreamble, EnergyConfinedToBand) {
  const OfdmPreamble p(PreambleConfig{});
  const auto spec = uwp::dsp::fft_real(p.base_symbol());
  const PreambleConfig& cfg = p.config();
  double in_band = 0.0, out_band = 0.0;
  for (std::size_t k = 1; k < cfg.symbol_len / 2; ++k) {
    const double e = std::norm(spec[k]);
    if (k >= cfg.bin_lo() && k <= cfg.bin_hi())
      in_band += e;
    else
      out_band += e;
  }
  EXPECT_GT(in_band, 1e6 * std::max(out_band, 1e-30));
}

TEST(OfdmPreamble, CyclicPrefixMatchesSymbolTail) {
  const OfdmPreamble p(PreambleConfig{});
  const PreambleConfig& cfg = p.config();
  const auto& w = p.waveform();
  for (std::size_t s = 0; s < cfg.num_symbols; ++s) {
    const std::size_t block = s * (cfg.cp_len + cfg.symbol_len);
    for (std::size_t i = 0; i < cfg.cp_len; ++i) {
      // CP sample i equals symbol sample (symbol_len - cp_len + i).
      EXPECT_NEAR(w[block + i],
                  w[block + cfg.cp_len + cfg.symbol_len - cfg.cp_len + i], 1e-12);
    }
  }
}

TEST(OfdmPreamble, PnSignsApplied) {
  const OfdmPreamble p(PreambleConfig{});
  const PreambleConfig& cfg = p.config();
  const auto& w = p.waveform();
  const std::size_t block = cfg.cp_len + cfg.symbol_len;
  // Symbol 2 carries PN = -1: its body is the negation of symbol 0's body.
  for (std::size_t i = 0; i < cfg.symbol_len; i += 37)
    EXPECT_NEAR(w[2 * block + cfg.cp_len + i], -w[0 * block + cfg.cp_len + i], 1e-12);
  // Symbol 3 carries PN = +1 again.
  for (std::size_t i = 0; i < cfg.symbol_len; i += 37)
    EXPECT_NEAR(w[3 * block + cfg.cp_len + i], w[cfg.cp_len + i], 1e-12);
}

TEST(OfdmPreamble, ValidationErrors) {
  PreambleConfig bad_pn;
  bad_pn.pn = {1, 1};
  EXPECT_THROW(OfdmPreamble{bad_pn}, std::invalid_argument);
  PreambleConfig bad_band;
  bad_band.band_hi_hz = 23000.0;  // beyond Nyquist/2 bins for 1920 at 44.1k
  EXPECT_THROW(OfdmPreamble{bad_band}, std::invalid_argument);
}

TEST(OfdmPreamble, SharpSelfCorrelation) {
  // The ZC-filled preamble autocorrelation must be strongly peaked: the
  // property the paper relies on for coarse sync.
  const OfdmPreamble p(PreambleConfig{});
  const auto& w = p.waveform();
  std::vector<double> padded(w.size() * 2, 0.0);
  for (std::size_t i = 0; i < w.size(); ++i) padded[w.size() / 2 + i] = w[i];
  double peak = 0.0, side = 0.0;
  // Direct correlation at a few lags around the center.
  for (int lag = -200; lag <= 200; lag += 8) {
    double acc = 0.0;
    for (std::size_t i = 0; i < w.size(); ++i)
      acc += w[i] * padded[w.size() / 2 + i + static_cast<std::size_t>(lag + 200) - 200];
    if (lag == 0)
      peak = std::abs(acc);
    else
      side = std::max(side, std::abs(acc));
  }
  EXPECT_GT(peak, 3.0 * side);
}

}  // namespace
}  // namespace uwp::phy
