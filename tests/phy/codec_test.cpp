#include <gtest/gtest.h>

#include "phy/convolutional.hpp"
#include "phy/fsk_modem.hpp"
#include "phy/mfsk_id.hpp"
#include "util/random.hpp"

namespace uwp::phy {
namespace {

std::vector<std::uint8_t> random_bits(std::size_t n, uwp::Rng& rng) {
  std::vector<std::uint8_t> bits(n);
  for (auto& b : bits) b = rng.bernoulli(0.5) ? 1 : 0;
  return bits;
}

TEST(Convolutional, EncodeLength) {
  const std::vector<std::uint8_t> bits = {1, 0, 1};
  const auto coded = ConvolutionalCode::encode_r12(bits);
  EXPECT_EQ(coded.size(), 2 * (3 + 6));  // info + 6 tail bits, rate 1/2
}

TEST(Convolutional, CleanDecodeRoundTrip) {
  uwp::Rng rng(1);
  for (std::size_t len : {1u, 8u, 58u, 200u}) {
    const auto bits = random_bits(len, rng);
    const auto coded = ConvolutionalCode::encode_r12(bits);
    const auto decoded = ConvolutionalCode::decode_r12(coded);
    EXPECT_EQ(decoded, bits) << "len " << len;
  }
}

TEST(Convolutional, CorrectsScatteredBitErrors) {
  uwp::Rng rng(2);
  const auto bits = random_bits(100, rng);
  auto coded = ConvolutionalCode::encode_r12(bits);
  // Flip well-separated bits (K=7 code corrects isolated errors easily).
  for (std::size_t pos = 10; pos + 30 < coded.size(); pos += 30) coded[pos] ^= 1;
  EXPECT_EQ(ConvolutionalCode::decode_r12(coded), bits);
}

TEST(Convolutional, PunctureRate) {
  uwp::Rng rng(3);
  const auto bits = random_bits(58, rng);  // paper's N=6 payload size
  const auto coded = ConvolutionalCode::encode_r12(bits);
  const auto punctured = ConvolutionalCode::puncture_r23(coded);
  // 4 coded bits -> 3 kept.
  EXPECT_EQ(punctured.size(), coded.size() / 2 + (coded.size() / 2 + 1) / 2);
}

TEST(Convolutional, DepunctureInsertsErasures) {
  uwp::Rng rng(4);
  const auto bits = random_bits(20, rng);
  const auto coded = ConvolutionalCode::encode_r12(bits);
  const auto punctured = ConvolutionalCode::puncture_r23(coded);
  const auto restored = ConvolutionalCode::depuncture_r23(punctured, coded.size());
  ASSERT_EQ(restored.size(), coded.size());
  std::size_t erasures = 0;
  for (std::size_t i = 0; i < restored.size(); ++i) {
    if (restored[i] == 2)
      ++erasures;
    else
      EXPECT_EQ(restored[i], coded[i]);
  }
  EXPECT_EQ(erasures, coded.size() - punctured.size());
}

TEST(Convolutional, Rate23RoundTrip) {
  uwp::Rng rng(5);
  for (std::size_t len : {8u, 58u, 68u, 123u}) {
    const auto bits = random_bits(len, rng);
    const auto tx = ConvolutionalCode::encode_r23(bits);
    const auto decoded = ConvolutionalCode::decode_r23(tx, len);
    EXPECT_EQ(decoded, bits) << "len " << len;
  }
}

TEST(Convolutional, Rate23CorrectsSparseErrors) {
  uwp::Rng rng(6);
  const auto bits = random_bits(58, rng);
  auto tx = ConvolutionalCode::encode_r23(bits);
  tx[5] ^= 1;
  tx[40] ^= 1;
  tx[70] ^= 1;
  EXPECT_EQ(ConvolutionalCode::decode_r23(tx, 58), bits);
}

TEST(Convolutional, InputValidation) {
  EXPECT_THROW(ConvolutionalCode::encode_r12(std::vector<std::uint8_t>{2}),
               std::invalid_argument);
  EXPECT_THROW(ConvolutionalCode::decode_r12(std::vector<std::uint8_t>{1}),
               std::invalid_argument);
  EXPECT_THROW(ConvolutionalCode::puncture_r23(std::vector<std::uint8_t>{1}),
               std::invalid_argument);
}

TEST(MfskId, RoundTripAllIds) {
  MfskConfig cfg;
  cfg.num_ids = 8;
  const MfskIdCodec codec(cfg);
  for (std::size_t id = 0; id < 8; ++id) {
    const auto burst = codec.encode(id);
    const auto decoded = codec.decode(burst);
    ASSERT_TRUE(decoded.has_value()) << "id " << id;
    EXPECT_EQ(*decoded, id);
  }
}

TEST(MfskId, RobustToNoise) {
  MfskConfig cfg;
  cfg.num_ids = 6;
  const MfskIdCodec codec(cfg);
  uwp::Rng rng(7);
  for (std::size_t id = 0; id < 6; ++id) {
    auto burst = codec.encode(id);
    for (double& v : burst) v = 0.05 * v + rng.normal(0.0, 0.02);  // ~8 dB SNR
    const auto decoded = codec.decode(burst);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, id);
  }
}

TEST(MfskId, NoiseOnlyRejected) {
  const MfskIdCodec codec(MfskConfig{});
  uwp::Rng rng(8);
  std::vector<double> noise(2205);
  for (double& v : noise) v = rng.normal(0.0, 0.1);
  EXPECT_FALSE(codec.decode(noise).has_value());
}

TEST(MfskId, PairEncoding) {
  MfskConfig cfg;
  cfg.num_ids = 6;
  const MfskIdCodec codec(cfg);
  const auto burst = codec.encode_pair(3, 1);
  EXPECT_EQ(burst.size(), 2 * cfg.symbol_samples);
  const auto pair = codec.decode_pair(burst);
  ASSERT_TRUE(pair.has_value());
  EXPECT_EQ(pair->first, 3u);
  EXPECT_EQ(pair->second, 1u);
}

TEST(MfskId, IdOutOfRangeThrows) {
  const MfskIdCodec codec(MfskConfig{});
  EXPECT_THROW(codec.encode(99), std::invalid_argument);
}

TEST(FskModem, BandTonesInsideAssignedBand) {
  FskConfig cfg;
  cfg.num_bands = 6;
  const double width = 4000.0 / 6.0;
  for (std::size_t b = 0; b < 6; ++b) {
    const FskBand tones = cfg.band_tones(b);
    const double lo = 1000.0 + static_cast<double>(b) * width;
    EXPECT_GT(tones.f0_hz, lo - 1e-9);
    EXPECT_LT(tones.f1_hz, lo + width + 1e-9);
    EXPECT_LT(tones.f0_hz, tones.f1_hz);
  }
}

TEST(FskModem, UncodedRoundTrip) {
  const FskModem modem(FskConfig{});
  uwp::Rng rng(9);
  const auto bits = random_bits(40, rng);
  const auto wave = modem.modulate(bits, 2);
  EXPECT_EQ(modem.demodulate(wave, 2, bits.size()), bits);
}

TEST(FskModem, CodedRoundTripWithNoise) {
  const FskModem modem(FskConfig{});
  uwp::Rng rng(10);
  const auto bits = random_bits(58, rng);
  auto wave = modem.modulate_coded(bits, 1);
  for (double& v : wave) v += rng.normal(0.0, 0.25);
  EXPECT_EQ(modem.demodulate_coded(wave, 1, bits.size()), bits);
}

TEST(FskModem, SimultaneousBandsDoNotInterfere) {
  const FskModem modem(FskConfig{});
  uwp::Rng rng(11);
  const auto bits_a = random_bits(30, rng);
  const auto bits_b = random_bits(30, rng);
  auto wave_a = modem.modulate(bits_a, 0);
  const auto wave_b = modem.modulate(bits_b, 5);
  wave_a.resize(std::max(wave_a.size(), wave_b.size()), 0.0);
  for (std::size_t i = 0; i < wave_b.size(); ++i) wave_a[i] += wave_b[i];
  EXPECT_EQ(modem.demodulate(wave_a, 0, 30), bits_a);
  EXPECT_EQ(modem.demodulate(wave_a, 5, 30), bits_b);
}

TEST(FskModem, PaperAirtimeNumbers) {
  // §2.4: ~0.9, 1.0, 1.2 s for N = 6, 7, 8 at 100 bps.
  for (const auto& [n, expect_s] : std::vector<std::pair<std::size_t, double>>{
           {6, 0.9}, {7, 1.0}, {8, 1.2}}) {
    FskConfig cfg;
    cfg.num_bands = n;
    const FskModem modem(cfg);
    const std::size_t payload = 10 * (n - 1) + 8;
    EXPECT_NEAR(modem.coded_duration_s(payload), expect_s, 0.15) << "N=" << n;
  }
}

}  // namespace
}  // namespace uwp::phy
