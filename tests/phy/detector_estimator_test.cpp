#include <gtest/gtest.h>

#include <cmath>

#include "channel/propagation.hpp"
#include "phy/channel_estimator.hpp"
#include "phy/direct_path.hpp"
#include "phy/preamble_detector.hpp"
#include "util/random.hpp"

namespace uwp::phy {
namespace {

class DetectorFixture : public ::testing::Test {
 protected:
  PreambleConfig cfg_{};
  OfdmPreamble preamble_{cfg_};
};

TEST_F(DetectorFixture, DetectsCleanPreamble) {
  uwp::Rng rng(1);
  std::vector<double> stream(30000);
  for (double& v : stream) v = rng.normal(0.0, 0.005);
  const auto& w = preamble_.waveform();
  for (std::size_t i = 0; i < w.size(); ++i) stream[12000 + i] += 0.1 * w[i];

  const PreambleDetector det(preamble_);
  const auto res = det.detect(stream);
  ASSERT_TRUE(res.has_value());
  EXPECT_NEAR(static_cast<double>(res->coarse_index), 12000.0, 50.0);
  EXPECT_GT(res->autocorr_score, 0.35);
}

TEST_F(DetectorFixture, RejectsNoiseOnly) {
  uwp::Rng rng(2);
  std::vector<double> stream(30000);
  for (double& v : stream) v = rng.normal(0.0, 0.01);
  const PreambleDetector det(preamble_);
  EXPECT_FALSE(det.detect(stream).has_value());
}

TEST_F(DetectorFixture, RejectsSpikyTransient) {
  // A loud click produces a cross-correlation peak but cannot replicate the
  // 4-symbol PN structure — the autocorrelation gate must reject it.
  uwp::Rng rng(3);
  std::vector<double> stream(30000);
  for (double& v : stream) v = rng.normal(0.0, 0.003);
  for (std::size_t i = 0; i < 300; ++i)
    stream[15000 + i] += 2.0 * std::exp(-static_cast<double>(i) / 60.0) *
                         std::sin(0.4 * static_cast<double>(i));
  const PreambleDetector det(preamble_);
  const auto res = det.detect(stream);
  EXPECT_FALSE(res.has_value());
}

TEST_F(DetectorFixture, AutocorrScoreHighOnlyAtTrueOffset) {
  uwp::Rng rng(4);
  std::vector<double> stream(30000);
  for (double& v : stream) v = rng.normal(0.0, 0.002);
  const auto& w = preamble_.waveform();
  for (std::size_t i = 0; i < w.size(); ++i) stream[9000 + i] += 0.2 * w[i];
  const PreambleDetector det(preamble_);
  EXPECT_GT(det.autocorrelation_score(stream, 9000), 0.8);
  EXPECT_LT(det.autocorrelation_score(stream, 2000), 0.35);
}

TEST_F(DetectorFixture, TooShortStreamGivesZeroScore) {
  const std::vector<double> tiny(100, 0.1);
  const PreambleDetector det(preamble_);
  EXPECT_DOUBLE_EQ(det.autocorrelation_score(tiny, 0), 0.0);
  EXPECT_FALSE(det.detect(tiny).has_value());
}

TEST_F(DetectorFixture, ChannelEstimateRecoversImpulseDelay) {
  // Ideal single-path channel delayed by a known amount: the strongest tap
  // must sit at (backoff + delay_offset).
  uwp::Rng rng(5);
  std::vector<double> stream(30000);
  for (double& v : stream) v = rng.normal(0.0, 0.001);
  const auto& w = preamble_.waveform();
  const std::size_t true_start = 10000;
  for (std::size_t i = 0; i < w.size(); ++i) stream[true_start + i] += 0.3 * w[i];

  const PreambleDetector det(preamble_);
  const auto found = det.detect(stream);
  ASSERT_TRUE(found.has_value());
  const LsChannelEstimator est(preamble_, 100);
  const ChannelEstimate ce = est.estimate(stream, found->coarse_index);
  // Peak tap position + window_start should equal the true start.
  std::size_t peak = 0;
  for (std::size_t i = 1; i < ce.taps.size(); ++i)
    if (ce.taps[i] > ce.taps[peak]) peak = i;
  EXPECT_NEAR(static_cast<double>(ce.window_start + peak),
              static_cast<double>(true_start), 2.0);
}

TEST_F(DetectorFixture, ChannelEstimateResolvesTwoPaths) {
  uwp::Rng rng(6);
  std::vector<double> stream(30000);
  for (double& v : stream) v = rng.normal(0.0, 0.0005);
  const auto& w = preamble_.waveform();
  const std::size_t start = 8000;
  const std::size_t echo_delay = 180;
  for (std::size_t i = 0; i < w.size(); ++i) {
    stream[start + i] += 0.2 * w[i];
    stream[start + echo_delay + i] += 0.12 * w[i];
  }
  const PreambleDetector det(preamble_);
  const auto found = det.detect(stream);
  ASSERT_TRUE(found.has_value());
  const LsChannelEstimator est(preamble_, 100);
  const ChannelEstimate ce = est.estimate(stream, found->coarse_index);

  // Both paths appear as strong taps with the right spacing.
  std::size_t first = 0;
  for (std::size_t i = 1; i < ce.taps.size(); ++i)
    if (ce.taps[i] > ce.taps[first]) first = i;
  const std::size_t expect_echo = first + echo_delay;
  ASSERT_LT(expect_echo, ce.taps.size());
  double local_max = 0.0;
  for (std::size_t i = expect_echo - 2; i <= expect_echo + 2; ++i)
    local_max = std::max(local_max, ce.taps[i]);
  EXPECT_GT(local_max, 0.4);
}

TEST_F(DetectorFixture, MmseIsShrinkageOfLs) {
  // Wiener property: every MMSE bin is the LS bin scaled by a factor in
  // [0, 1], and the average factor drops as SNR drops (more shrinkage when
  // noise dominates).
  uwp::Rng rng(9);
  const auto& w = preamble_.waveform();
  const LsChannelEstimator est(preamble_, 100);
  const PreambleConfig& pc = preamble_.config();

  auto mean_shrink = [&](double amp) {
    std::vector<double> stream(30000);
    for (double& v : stream) v = rng.normal(0.0, 0.03);
    for (std::size_t i = 0; i < w.size(); ++i) stream[9000 + i] += amp * w[i];
    const ChannelEstimate ls = est.estimate(stream, 9000);
    const ChannelEstimate mmse = est.estimate_mmse(stream, 9000);
    double acc = 0.0;
    std::size_t count = 0;
    for (std::size_t k = pc.bin_lo(); k <= pc.bin_hi(); ++k) {
      const double mag_ls = std::abs(ls.freq[k]);
      const double mag_mmse = std::abs(mmse.freq[k]);
      if (mag_ls < 1e-12) continue;
      const double ratio = mag_mmse / mag_ls;
      EXPECT_LE(ratio, 1.0 + 1e-9);
      EXPECT_GE(ratio, -1e-9);
      acc += ratio;
      ++count;
    }
    return acc / static_cast<double>(count);
  };
  const double strong = mean_shrink(0.5);
  const double weak = mean_shrink(0.01);
  EXPECT_GT(strong, 0.9);          // high SNR: barely touched
  EXPECT_LT(weak, strong - 0.15);  // low SNR: visibly shrunk
}

TEST_F(DetectorFixture, PerBinSnrTracksSignalLevel) {
  uwp::Rng rng(10);
  const auto& w = preamble_.waveform();
  const LsChannelEstimator est(preamble_, 100);
  auto mean_snr = [&](double amp) {
    std::vector<double> stream(30000);
    for (double& v : stream) v = rng.normal(0.0, 0.01);
    for (std::size_t i = 0; i < w.size(); ++i) stream[9000 + i] += amp * w[i];
    const std::vector<double> snr = est.per_bin_snr_db(stream, 9000);
    double acc = 0.0;
    for (double s : snr) acc += s;
    return acc / static_cast<double>(snr.size());
  };
  const double loud = mean_snr(0.3);
  const double quiet = mean_snr(0.03);
  // 20 dB amplitude difference should appear as roughly 20 dB of SNR.
  EXPECT_GT(loud, quiet + 10.0);
}

TEST_F(DetectorFixture, PerBinSnrEmptyOnShortStream) {
  const LsChannelEstimator est(preamble_, 100);
  const std::vector<double> tiny(100, 0.1);
  EXPECT_TRUE(est.per_bin_snr_db(tiny, 0).empty());
}

TEST(DirectPath, NoiseFloorIsMeanOfTail) {
  std::vector<double> h(200, 0.0);
  for (std::size_t i = 100; i < 200; ++i) h[i] = 0.1;
  EXPECT_NEAR(channel_noise_floor(h, 100), 0.1, 1e-12);
  EXPECT_NEAR(channel_noise_floor(h, 200), 0.05, 1e-12);
}

TEST(DirectPath, DualMicPicksConstrainedEarliestPair) {
  // h1 has a spurious early peak that h2 lacks; the joint constraint must
  // skip it and lock onto the consistent pair.
  DirectPathConfig cfg;
  cfg.lambda = 0.2;
  cfg.fs_hz = 44100.0;
  std::vector<double> h1(400, 0.01), h2(400, 0.01);
  h1[50] = 0.5;             // spurious (no counterpart in h2 within 5 taps)
  h1[120] = 0.8;            // true direct path
  h2[122] = 0.7;            // true direct path at mic 2 (+2 taps)
  h1[200] = 1.0;            // strong late reflection
  h2[201] = 1.0;
  const auto res = find_direct_path_dual(h1, h2, cfg);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->mic1_tap, 120u);
  EXPECT_EQ(res->mic2_tap, 122u);
  EXPECT_NEAR(res->tau, 121.0, 1e-12);
}

TEST(DirectPath, SingleMicFallsForSpuriousEarlyPeak) {
  // The same profile through the single-mic rule picks the spurious peak —
  // exactly the failure mode Fig 11b quantifies.
  DirectPathConfig cfg;
  std::vector<double> h1(400, 0.01);
  h1[50] = 0.5;
  h1[120] = 0.8;
  const auto res = find_direct_path_single(h1, cfg);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(*res, 50u);
}

TEST(DirectPath, OffsetConstraintScalesWithMicSeparation) {
  DirectPathConfig cfg;
  cfg.mic_separation_m = 0.16;
  cfg.sound_speed_mps = 1500.0;
  cfg.fs_hz = 44100.0;
  cfg.offset_slack = 0.0;
  // 0.16 m / 1500 m/s * 44100 Hz = 4.7 samples.
  EXPECT_NEAR(cfg.max_offset_samples(), 4.704, 0.01);

  std::vector<double> h1(300, 0.0), h2(300, 0.0);
  h1[100] = 1.0;
  h2[110] = 1.0;  // 10 taps apart: infeasible for 16 cm
  EXPECT_FALSE(find_direct_path_dual(h1, h2, cfg).has_value());
  std::vector<double> h3(300, 0.0);
  h3[103] = 1.0;  // 3 taps: feasible
  EXPECT_TRUE(find_direct_path_dual(h1, h3, cfg).has_value());
}

TEST(DirectPath, EmptyOrMismatchedInputs) {
  DirectPathConfig cfg;
  EXPECT_FALSE(find_direct_path_dual({}, {}, cfg).has_value());
  std::vector<double> a(10, 0.0), b(20, 0.0);
  EXPECT_FALSE(find_direct_path_dual(a, b, cfg).has_value());
}

TEST(DirectPath, AllNoiseReturnsNullopt) {
  DirectPathConfig cfg;
  const std::vector<double> flat(300, 0.5);  // floor = 0.5, no peak clears +0.2
  EXPECT_FALSE(find_direct_path_single(flat, cfg).has_value());
}

TEST(DirectPath, SidelobeGuardRejectsPreRinging) {
  // A weak bump shortly before a much stronger peak is band-limitation
  // pre-ringing, not an arrival; the guard must reject it as a candidate.
  DirectPathConfig cfg;
  std::vector<double> h(400, 0.01);
  h[110] = 0.25;  // pre-ringing sidelobe (~-13 dB of the main peak)
  h[120] = 1.0;   // true arrival
  const auto peaks = candidate_arrival_peaks(h, cfg);
  ASSERT_FALSE(peaks.empty());
  EXPECT_EQ(peaks.front(), 120u);
}

TEST(DirectPath, SidelobeGuardKeepsWeakDirectBeforeFarReflection) {
  // A genuinely weak direct path followed by a strong reflection beyond the
  // guard window (boundary detours exceed guard_hi samples) must survive.
  DirectPathConfig cfg;
  std::vector<double> h(400, 0.01);
  h[120] = 0.30;  // weak (shadowed) direct path
  h[160] = 1.0;   // strong reflection, 40 taps later
  const auto peaks = candidate_arrival_peaks(h, cfg);
  ASSERT_FALSE(peaks.empty());
  EXPECT_EQ(peaks.front(), 120u);
}

TEST(DirectPath, GuardWindowBoundsRespected) {
  DirectPathConfig cfg;
  cfg.sidelobe_guard_lo = 4;
  cfg.sidelobe_guard_hi = 20;
  std::vector<double> h(400, 0.01);
  h[100] = 0.25;
  h[121] = 1.0;  // just beyond guard_hi of tap 100 -> no rejection
  auto peaks = candidate_arrival_peaks(h, cfg);
  EXPECT_EQ(peaks.front(), 100u);
  h[121] = 0.01;
  h[118] = 1.0;  // inside the window -> rejection
  peaks = candidate_arrival_peaks(h, cfg);
  EXPECT_EQ(peaks.front(), 118u);
}

TEST_F(DetectorFixture, WindowedEstimatorSuppressesPreSidelobes) {
  // Ablation: with the Hamming taper, the estimate just before the direct
  // path is much lower relative to the peak than without it.
  uwp::Rng rng(8);
  std::vector<double> stream(30000);
  for (double& v : stream) v = rng.normal(0.0, 0.0005);
  const auto& w = preamble_.waveform();
  for (std::size_t i = 0; i < w.size(); ++i) stream[9000 + i] += 0.3 * w[i];
  const PreambleDetector det(preamble_);
  const auto found = det.detect(stream);
  ASSERT_TRUE(found.has_value());

  auto sidelobe_level = [&](bool windowed) {
    const LsChannelEstimator est(preamble_, 100, windowed);
    const ChannelEstimate ce = est.estimate(stream, found->coarse_index);
    std::size_t peak = 0;
    for (std::size_t i = 1; i < ce.taps.size(); ++i)
      if (ce.taps[i] > ce.taps[peak]) peak = i;
    // Maximum tap in the pre-ringing region 45..22 taps before the peak —
    // outside even the widened (Hamming) main lobe.
    double pre = 0.0;
    for (std::size_t i = peak - 45; i + 22 <= peak; ++i) pre = std::max(pre, ce.taps[i]);
    return pre / ce.taps[peak];
  };
  EXPECT_LT(sidelobe_level(true), 0.6 * sidelobe_level(false));
}

TEST(DirectPath, ParabolicRefinementSubSample) {
  std::vector<double> h = {0.0, 0.2, 0.9, 1.0, 0.3, 0.0};
  const double refined = refine_peak_parabolic(h, 3);
  EXPECT_GT(refined, 2.5);
  EXPECT_LT(refined, 3.5);
  EXPECT_NE(refined, 3.0);
  // Boundary peaks return unchanged.
  EXPECT_DOUBLE_EQ(refine_peak_parabolic(h, 0), 0.0);
}

}  // namespace
}  // namespace uwp::phy
