// End-to-end PHY integration: preamble through the simulated underwater
// channel into the full ranging pipeline, plus the baseline rangers.
#include <gtest/gtest.h>

#include <cmath>

#include "channel/propagation.hpp"
#include "phy/baseline/chirp_ranger.hpp"
#include "phy/baseline/fmcw_ranger.hpp"
#include "phy/ranging.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"

namespace uwp::phy {
namespace {

class RangingFixture : public ::testing::Test {
 protected:
  PreambleConfig cfg_{};
  OfdmPreamble preamble_{cfg_};
  PreambleRanger ranger_{preamble_};
  channel::Environment env_ = channel::make_dock();
};

TEST_F(RangingFixture, TenMeterRangingWithinOneMeter) {
  const channel::LinkSimulator link(env_, cfg_.fs_hz);
  channel::LinkConfig lc;
  lc.tx_pos = {0, 0, 2.5};
  lc.rx_pos = {10, 0, 2.5};
  uwp::Rng rng(42);
  std::vector<double> errors;
  for (int trial = 0; trial < 8; ++trial) {
    const channel::Reception rec = link.transmit(preamble_.waveform(), lc, rng);
    const auto est = ranger_.estimate(rec);
    ASSERT_TRUE(est.has_value()) << "trial " << trial;
    const double d = one_way_distance_m(*est, env_.sound_speed_mps());
    errors.push_back(std::abs(d - 10.0));
  }
  EXPECT_LT(uwp::median(errors), 1.0);
}

TEST_F(RangingFixture, ErrorGrowsWithRangeOnAverage) {
  const channel::LinkSimulator link(env_, cfg_.fs_hz);
  uwp::Rng rng(7);
  auto median_err = [&](double range) {
    channel::LinkConfig lc;
    lc.tx_pos = {0, 0, 2.5};
    lc.rx_pos = {range, 0, 2.5};
    std::vector<double> errs;
    for (int t = 0; t < 10; ++t) {
      const channel::Reception rec = link.transmit(preamble_.waveform(), lc, rng);
      const auto est = ranger_.estimate(rec);
      if (!est) continue;
      errs.push_back(std::abs(one_way_distance_m(*est, env_.sound_speed_mps()) - range));
    }
    return errs.empty() ? 99.0 : uwp::median(errs);
  };
  const double near = median_err(8.0);
  const double far = median_err(40.0);
  EXPECT_LT(near, 1.2);
  EXPECT_LT(near, far + 0.5);  // far should not be dramatically better
}

TEST_F(RangingFixture, SingleMicModesWork) {
  const channel::LinkSimulator link(env_, cfg_.fs_hz);
  channel::LinkConfig lc;
  lc.tx_pos = {0, 0, 2.5};
  lc.rx_pos = {12, 0, 2.5};
  uwp::Rng rng(11);
  const channel::Reception rec = link.transmit(preamble_.waveform(), lc, rng);
  for (MicMode mode : {MicMode::kMic1Only, MicMode::kMic2Only}) {
    const auto est = ranger_.estimate(rec, mode);
    if (est) {
      const double d = one_way_distance_m(*est, env_.sound_speed_mps());
      EXPECT_GT(d, 5.0);
      EXPECT_LT(d, 25.0);
    }
  }
}

TEST_F(RangingFixture, MicTapsEncodeArrivalSide) {
  // Transmitter well off to one side of the mic axis: the near microphone's
  // direct path tap must be earlier (or equal within a sample).
  const channel::LinkSimulator link(env_, cfg_.fs_hz);
  channel::LinkConfig lc;
  lc.tx_pos = {0, 0, 2.5};
  lc.rx_pos = {15, 0, 2.5};
  lc.mic_axis = {1, 0};  // mic 1 at x=14.92 (near), mic 2 at x=15.08 (far)
  uwp::Rng rng(13);
  int near_first = 0, total = 0;
  for (int t = 0; t < 10; ++t) {
    const channel::Reception rec = link.transmit(preamble_.waveform(), lc, rng);
    const auto est = ranger_.estimate(rec);
    if (!est) continue;
    ++total;
    if (est->mic1_tap_frac <= est->mic2_tap_frac) ++near_first;
  }
  ASSERT_GT(total, 5);
  // Paper reports ~90% single-signal flip accuracy; allow some slack.
  EXPECT_GE(static_cast<double>(near_first) / total, 0.7);
}

TEST(ChirpBaseline, DetectsAndRangesCleanChannel) {
  const baseline::ChirpRanger ranger{baseline::ChirpConfig{}};
  uwp::Rng rng(17);
  std::vector<double> stream(30000);
  for (double& v : stream) v = rng.normal(0.0, 0.002);
  const auto& w = ranger.waveform();
  const std::size_t at = 6000;
  for (std::size_t i = 0; i < w.size(); ++i) stream[at + i] += 0.2 * w[i];
  EXPECT_TRUE(ranger.detect(stream));
  const auto arrival = ranger.estimate_arrival(stream);
  ASSERT_TRUE(arrival.has_value());
  EXPECT_NEAR(*arrival, static_cast<double>(at), 40.0);
}

TEST(ChirpBaseline, PowerDetectorFiresOnSpikes) {
  // The window-power detector (TH_SD) has no structure check, so a loud
  // transient triggers it — the false-positive weakness Fig 12a shows.
  const baseline::ChirpRanger ranger{baseline::ChirpConfig{}};
  uwp::Rng rng(19);
  std::vector<double> stream(30000);
  for (double& v : stream) v = rng.normal(0.0, 0.002);
  for (std::size_t i = 0; i < 600; ++i) stream[9000 + i] += 1.5;
  EXPECT_TRUE(ranger.detect(stream));
}

TEST(FmcwBaseline, RecoverDelayCleanChannel) {
  const baseline::FmcwRanger ranger{baseline::FmcwConfig{}};
  const auto& w = ranger.waveform();
  const std::size_t delay = 300;
  std::vector<double> stream(w.size() + 4000, 0.0);
  uwp::Rng rng(23);
  for (double& v : stream) v = rng.normal(0.0, 0.002);
  for (std::size_t i = 0; i < w.size(); ++i) stream[delay + i] += 0.3 * w[i];
  EXPECT_TRUE(ranger.detect(stream));
  const auto est = ranger.estimate_delay_samples(stream);
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(*est, static_cast<double>(delay), 30.0);
}

TEST(FmcwBaseline, TooShortStreamHandled) {
  const baseline::FmcwRanger ranger{baseline::FmcwConfig{}};
  const std::vector<double> tiny(100, 0.1);
  EXPECT_FALSE(ranger.detect(tiny));
  EXPECT_FALSE(ranger.estimate_delay_samples(tiny).has_value());
}

TEST_F(RangingFixture, DualMicBeatsBaselinesUnderMultipath) {
  // The headline Fig 12b comparison in miniature: median error of our
  // dual-mic pipeline vs the FMCW baseline over the same receptions.
  const channel::LinkSimulator link(env_, cfg_.fs_hz);
  channel::LinkConfig lc;
  lc.tx_pos = {0, 0, 1.0};
  lc.rx_pos = {20, 0, 1.0};
  uwp::Rng rng(29);

  const baseline::FmcwRanger fmcw{baseline::FmcwConfig{}};
  std::vector<double> ours, theirs;
  for (int t = 0; t < 10; ++t) {
    const channel::Reception rec = link.transmit(preamble_.waveform(), lc, rng);
    const auto est = ranger_.estimate(rec);
    if (est)
      ours.push_back(std::abs(one_way_distance_m(*est, env_.sound_speed_mps()) - 20.0));
    // Feed FMCW the same mic-1 stream with its own chirp assumption violated
    // equally often (same channel conditions, chirp transmitted separately).
    const channel::Reception rec2 = link.transmit(fmcw.waveform(), lc, rng);
    const auto d = fmcw.estimate_delay_samples(rec2.mic[0]);
    if (d)
      theirs.push_back(std::abs(*d / cfg_.fs_hz * env_.sound_speed_mps() - 20.0));
  }
  ASSERT_FALSE(ours.empty());
  ASSERT_FALSE(theirs.empty());
  EXPECT_LT(uwp::median(ours), uwp::median(theirs) + 0.75);
}

}  // namespace
}  // namespace uwp::phy
