#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "phy/ofdm_preamble.hpp"
#include "phy/ranging.hpp"

namespace uwp::sim {
namespace {

channel::Reception make_reception(double fs, std::size_t len, double seed) {
  channel::Reception rec;
  rec.fs_hz = fs;
  rec.true_range_m = seed * 3.0;
  rec.true_tof_s = {seed * 1e-3, seed * 1e-3 + 1e-4};
  rec.mic[0].resize(len);
  rec.mic[1].resize(len + 7);
  for (std::size_t i = 0; i < rec.mic[0].size(); ++i)
    rec.mic[0][i] = std::sin(seed + static_cast<double>(i));
  for (std::size_t i = 0; i < rec.mic[1].size(); ++i)
    rec.mic[1][i] = std::cos(seed + static_cast<double>(i));
  return rec;
}

TEST(Trace, StreamRoundTripExact) {
  ReceptionTrace trace;
  trace.add(make_reception(44100.0, 100, 1.0));
  trace.add(make_reception(48000.0, 50, 2.5));

  std::stringstream buf;
  write_trace(buf, trace);
  const ReceptionTrace rt = read_trace(buf);
  ASSERT_EQ(rt.size(), 2u);
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_DOUBLE_EQ(rt.receptions[r].fs_hz, trace.receptions[r].fs_hz);
    EXPECT_DOUBLE_EQ(rt.receptions[r].true_range_m, trace.receptions[r].true_range_m);
    ASSERT_EQ(rt.receptions[r].mic[0].size(), trace.receptions[r].mic[0].size());
    ASSERT_EQ(rt.receptions[r].mic[1].size(), trace.receptions[r].mic[1].size());
    for (std::size_t i = 0; i < rt.receptions[r].mic[0].size(); ++i)
      EXPECT_DOUBLE_EQ(rt.receptions[r].mic[0][i], trace.receptions[r].mic[0][i]);
  }
}

TEST(Trace, EmptyTraceRoundTrips) {
  std::stringstream buf;
  write_trace(buf, ReceptionTrace{});
  EXPECT_EQ(read_trace(buf).size(), 0u);
}

TEST(Trace, BadMagicRejected) {
  std::stringstream buf;
  buf << "NOPE0000000000000000";
  EXPECT_THROW(read_trace(buf), std::runtime_error);
}

TEST(Trace, TruncatedStreamRejected) {
  ReceptionTrace trace;
  trace.add(make_reception(44100.0, 100, 1.0));
  std::stringstream buf;
  write_trace(buf, trace);
  const std::string full = buf.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(read_trace(cut), std::runtime_error);
}

TEST(Trace, FileRoundTrip) {
  ReceptionTrace trace;
  trace.add(make_reception(44100.0, 64, 3.0));
  const std::string path = ::testing::TempDir() + "/uwp_trace_test.uwpt";
  save_trace(path, trace);
  const ReceptionTrace rt = load_trace(path);
  ASSERT_EQ(rt.size(), 1u);
  EXPECT_DOUBLE_EQ(rt.receptions[0].true_range_m, 9.0);
  std::remove(path.c_str());
}

TEST(Trace, MissingFileThrows) {
  EXPECT_THROW(load_trace("/nonexistent/path.uwpt"), std::runtime_error);
}

TEST(Trace, RecordedTraceReplaysThroughRanger) {
  // Capture-once, analyze-many: a recorded trace must produce the same
  // ranging estimates on every replay (bitwise identical inputs).
  const channel::Environment env = channel::make_dock();
  const phy::PreambleConfig pc;
  const phy::OfdmPreamble preamble(pc);
  const phy::PreambleRanger ranger(preamble);
  const channel::LinkSimulator link(env, pc.fs_hz);
  channel::LinkConfig cfg;
  cfg.tx_pos = {0, 0, 2.5};
  cfg.rx_pos = {12, 0, 2.5};
  uwp::Rng rng(11);
  const ReceptionTrace trace =
      record_link_trace(link, cfg, preamble.waveform(), 3, rng);

  std::stringstream buf;
  write_trace(buf, trace);
  const ReceptionTrace replay = read_trace(buf);

  int detections = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto a = ranger.estimate(trace.receptions[i]);
    const auto b = ranger.estimate(replay.receptions[i]);
    ASSERT_EQ(a.has_value(), b.has_value());
    if (a) {
      ++detections;
      EXPECT_DOUBLE_EQ(a->arrival_index, b->arrival_index);
    }
  }
  EXPECT_GE(detections, 2);
}

TEST(PacketTraceCsv, RowsCarryRoundTagAndKindNames) {
  PacketTrace trace;
  trace.round = 3;
  trace.add(0.0, 0, 0, PacketEventKind::kTxStart, false);
  trace.add(0.01, 0, 1, PacketEventKind::kRxDeliver, false);
  trace.round = 4;
  trace.add(14.2, 2, 1, PacketEventKind::kRxCollision, true);
  trace.add(14.3, 2, 3, PacketEventKind::kRxHalfDuplexDrop, false);
  trace.add(14.4, 2, 4, PacketEventKind::kRxDetectFail, false);

  std::stringstream buf;
  write_packet_trace_csv(buf, trace);
  std::string line;
  std::getline(buf, line);
  EXPECT_EQ(line, "time_s,round,tx,rx,event,collision");
  std::getline(buf, line);
  EXPECT_EQ(line, "0.000000000,3,0,0,tx_start,0");
  std::getline(buf, line);
  EXPECT_EQ(line, "0.010000000,3,0,1,rx_deliver,0");
  std::getline(buf, line);
  EXPECT_EQ(line, "14.200000000,4,2,1,rx_collision,1");
  std::getline(buf, line);
  EXPECT_EQ(line, "14.300000000,4,2,3,rx_half_duplex_drop,0");
  std::getline(buf, line);
  EXPECT_EQ(line, "14.400000000,4,2,4,rx_detect_fail,0");
}

}  // namespace
}  // namespace uwp::sim
