// Edge-case coverage for the reporting stack (sim/metrics + util/stats
// percentiles it builds on) and the duty-cycle energy model, beyond the
// happy paths in sim_test.cpp.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/energy_model.hpp"
#include "sim/metrics.hpp"
#include "util/stats.hpp"

namespace uwp::sim {
namespace {

// ---------- percentile / CEP edge cases ----------

TEST(Percentile, SingleSampleIsEveryPercentile) {
  const std::vector<double> one = {3.5};
  EXPECT_DOUBLE_EQ(uwp::percentile(one, 0.0), 3.5);
  EXPECT_DOUBLE_EQ(uwp::percentile(one, 50.0), 3.5);
  EXPECT_DOUBLE_EQ(uwp::percentile(one, 100.0), 3.5);
  EXPECT_DOUBLE_EQ(uwp::median(one), 3.5);
}

TEST(Percentile, LinearInterpolationBetweenOrderStatistics) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(uwp::percentile(xs, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(uwp::percentile(xs, 25.0), 2.5);
  // Unsorted input is sorted internally.
  const std::vector<double> shuffled = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(uwp::median(shuffled), 2.5);
  EXPECT_DOUBLE_EQ(uwp::percentile(shuffled, 100.0), 4.0);
}

TEST(Percentile, EmptyAndOutOfRangeThrow) {
  const std::vector<double> empty;
  EXPECT_THROW(uwp::percentile(empty, 50.0), std::invalid_argument);
  EXPECT_THROW(uwp::median(empty), std::invalid_argument);
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(uwp::percentile(xs, -0.1), std::invalid_argument);
  EXPECT_THROW(uwp::percentile(xs, 100.1), std::invalid_argument);
}

TEST(Percentile, TwoSamplePinnedValues) {
  // The two-sample case exercises every branch of rank = pct/100 * (n-1):
  // the endpoints land exactly on the order statistics, everything else is
  // a pure linear blend of the only two values.
  const std::vector<double> xs = {2.0, 8.0};
  EXPECT_DOUBLE_EQ(uwp::percentile(xs, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(uwp::percentile(xs, 10.0), 2.6);
  EXPECT_DOUBLE_EQ(uwp::percentile(xs, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(uwp::percentile(xs, 99.0), 7.94);
  EXPECT_DOUBLE_EQ(uwp::percentile(xs, 100.0), 8.0);
}

TEST(Percentile, UnsortedInputMatchesSorted) {
  const std::vector<double> unsorted = {9.0, 1.0, 5.0, 3.0, 7.0};
  const std::vector<double> sorted = {1.0, 3.0, 5.0, 7.0, 9.0};
  for (const double pct : {0.0, 12.5, 37.5, 50.0, 87.5, 99.0, 100.0})
    EXPECT_DOUBLE_EQ(uwp::percentile(unsorted, pct), uwp::percentile(sorted, pct))
        << "pct=" << pct;
  // And the input itself is left untouched (percentile sorts a copy).
  EXPECT_EQ(unsorted.front(), 9.0);
  EXPECT_EQ(unsorted.back(), 7.0);
}

TEST(RateLatency, EmptyLatenciesReportZeroPercentiles) {
  const std::vector<double> none;
  const RateLatency rl = rate_latency(120, 2.0, none);
  EXPECT_DOUBLE_EQ(rl.rounds_per_sec, 60.0);
  EXPECT_DOUBLE_EQ(rl.p50_s, 0.0);
  EXPECT_DOUBLE_EQ(rl.p99_s, 0.0);
}

TEST(RateLatency, NonPositiveWallClockReportsZeroRate) {
  const std::vector<double> lat = {0.5};
  EXPECT_DOUBLE_EQ(rate_latency(10, 0.0, lat).rounds_per_sec, 0.0);
  EXPECT_DOUBLE_EQ(rate_latency(10, -1.0, lat).rounds_per_sec, 0.0);
  // The latency percentiles are still computed from the samples.
  EXPECT_DOUBLE_EQ(rate_latency(10, 0.0, lat).p50_s, 0.5);
}

TEST(RateLatency, SingleAndUnsortedSamples) {
  const std::vector<double> one = {0.25};
  const RateLatency single = rate_latency(1, 1.0, one);
  EXPECT_DOUBLE_EQ(single.p50_s, 0.25);
  EXPECT_DOUBLE_EQ(single.p99_s, 0.25);

  const std::vector<double> unsorted = {0.9, 0.1, 0.5};
  const RateLatency rl = rate_latency(3, 1.5, unsorted);
  EXPECT_DOUBLE_EQ(rl.rounds_per_sec, 2.0);
  EXPECT_DOUBLE_EQ(rl.p50_s, 0.5);
  EXPECT_DOUBLE_EQ(rl.p99_s, uwp::percentile(unsorted, 99.0));
}

TEST(Cep, MatchesPercentileOfRadialErrors) {
  const std::vector<double> r = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(cep(r), 3.0);                 // CEP50 = median radius
  EXPECT_DOUBLE_EQ(cep(r, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(cep(r, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(cep(r, 0.95), uwp::percentile(r, 95.0));
}

TEST(Cep, EmptyAndBadFractionThrow) {
  const std::vector<double> empty;
  EXPECT_THROW(cep(empty), std::invalid_argument);
  const std::vector<double> r = {1.0};
  EXPECT_THROW(cep(r, -0.01), std::invalid_argument);
  EXPECT_THROW(cep(r, 1.01), std::invalid_argument);
}

// ---------- empty-input behavior of the reporting helpers ----------

TEST(Metrics, EmptyInputsAreBenign) {
  const std::vector<double> empty;
  const Summary s = uwp::summarize(empty);
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_TRUE(uwp::cdf_points(empty).empty());
  EXPECT_DOUBLE_EQ(uwp::ecdf(empty, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(uwp::rms(empty), 0.0);
  // The printers must not throw on empty series (benches hit this when every
  // trial fails to detect).
  EXPECT_NO_THROW(print_summary_row("empty", empty));
  EXPECT_NO_THROW(print_cdf("empty", empty));
}

TEST(Metrics, CdfPointsDegenerateRequests) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_TRUE(uwp::cdf_points(xs, 0).empty());
  EXPECT_TRUE(uwp::cdf_points(xs, 1).empty());
  const auto pts = uwp::cdf_points(xs, 3);
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_DOUBLE_EQ(pts.front().first, 1.0);
  EXPECT_DOUBLE_EQ(pts.back().first, 3.0);
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);  // CDF reaches 1 at the max
}

TEST(Metrics, CdfPointsConstantSeries) {
  const std::vector<double> xs = {2.0, 2.0, 2.0};
  const auto pts = uwp::cdf_points(xs, 5);
  ASSERT_EQ(pts.size(), 5u);
  for (const auto& [x, p] : pts) {
    EXPECT_DOUBLE_EQ(x, 2.0);
    EXPECT_DOUBLE_EQ(p, 1.0);
  }
}

TEST(Metrics, TakeIgnoresAllOutOfRangeIndices) {
  const std::vector<double> v = {10.0};
  const std::vector<std::size_t> idx = {5, 6, 7};
  EXPECT_TRUE(take(v, idx).empty());
}

// ---------- energy model ----------

TEST(EnergyModel, BatteryDrainIsMonotoneAndClamped) {
  for (const EnergyModel& m :
       {EnergyModel{}, EnergyModel::watch_ultra_siren(), EnergyModel::phone_preamble_tx()}) {
    double prev = -1.0;
    for (double h = 0.0; h <= 48.0; h += 0.5) {
      const double drop = m.battery_drop_fraction(h);
      EXPECT_GE(drop, prev);  // monotone nondecreasing in time
      EXPECT_GE(drop, 0.0);
      EXPECT_LE(drop, 1.0);   // clamped at a dead battery
      prev = drop;
    }
    EXPECT_DOUBLE_EQ(m.battery_drop_fraction(0.0), 0.0);
    EXPECT_DOUBLE_EQ(m.battery_drop_fraction(1e6), 1.0);
  }
}

TEST(EnergyModel, HoursToDropInvertsDrainBelowClamp) {
  const EnergyModel m = EnergyModel::phone_preamble_tx();
  for (double f : {0.1, 0.5, 0.9}) {
    const double h = m.hours_to_drop(f);
    EXPECT_GT(h, 0.0);
    EXPECT_NEAR(m.battery_drop_fraction(h), f, 1e-12);
  }
}

TEST(EnergyModel, HigherDutyCycleDrainsFaster) {
  EnergyModel lo, hi;
  lo.duty_cycle = 0.1;
  hi.duty_cycle = 0.9;
  EXPECT_GT(hi.average_power_w(), lo.average_power_w());
  EXPECT_LT(hi.hours_to_drop(0.5), lo.hours_to_drop(0.5));
  EXPECT_GT(hi.battery_drop_fraction(1.0), lo.battery_drop_fraction(1.0));
}

TEST(EnergyModel, RecordPowerContributesToAveragePower) {
  EnergyModel m;
  m.duty_cycle = 0.0;
  const double without = m.average_power_w();
  m.record_power_w += 0.2;
  EXPECT_NEAR(m.average_power_w() - without, 0.2, 1e-12);
}

}  // namespace
}  // namespace uwp::sim
