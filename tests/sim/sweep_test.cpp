#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "sim/deployment.hpp"
#include "sim/scenario.hpp"
#include "sim/sweep.hpp"
#include "util/stats.hpp"

namespace uwp::sim {
namespace {

// A trial that consumes a thread-count-dependent-looking mix of draws; if
// streams leaked between trials this would diverge across schedules.
std::vector<double> noisy_trial(std::size_t t, uwp::Rng& rng) {
  std::vector<double> out;
  const int n = 1 + static_cast<int>(t % 3);
  for (int i = 0; i < n; ++i) out.push_back(rng.normal(0.0, 1.0) + rng.uniform(-1, 1));
  return out;
}

TEST(TrialSeed, DistinctAcrossTrialsAndSeeds) {
  EXPECT_NE(trial_seed(1, 0), trial_seed(1, 1));
  EXPECT_NE(trial_seed(1, 0), trial_seed(2, 0));
  EXPECT_EQ(trial_seed(42, 7), trial_seed(42, 7));
  // No obvious collisions in a small window.
  std::vector<std::uint64_t> seen;
  for (std::uint64_t t = 0; t < 1000; ++t) seen.push_back(trial_seed(99, t));
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

TEST(SweepRunner, BitIdenticalAcrossThreadCounts) {
  SweepResult reference;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    SweepOptions so;
    so.trials = 64;
    so.master_seed = 1234;
    so.threads = threads;
    const SweepResult r = SweepRunner(so).run(noisy_trial);
    EXPECT_EQ(r.threads_used, threads);
    if (threads == 1) {
      reference = r;
      continue;
    }
    // Bit-identical: exact double equality, not approximate.
    ASSERT_EQ(r.samples.size(), reference.samples.size());
    for (std::size_t i = 0; i < r.samples.size(); ++i)
      EXPECT_EQ(r.samples[i], reference.samples[i]) << "sample " << i;
    EXPECT_EQ(r.summary.mean, reference.summary.mean);
    EXPECT_EQ(r.summary.median, reference.summary.median);
    EXPECT_EQ(r.summary.p95, reference.summary.p95);
  }
}

TEST(SweepRunner, MatchesHandRolledSerialReference) {
  SweepOptions so;
  so.trials = 32;
  so.master_seed = 777;
  so.threads = 4;
  const SweepResult r = SweepRunner(so).run(noisy_trial);

  // The contract callers rely on: trial t is exactly Rng(trial_seed(seed, t)).
  std::vector<double> expect;
  for (std::size_t t = 0; t < so.trials; ++t) {
    uwp::Rng rng(trial_seed(so.master_seed, t));
    const auto s = noisy_trial(t, rng);
    expect.insert(expect.end(), s.begin(), s.end());
  }
  ASSERT_EQ(r.samples.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) EXPECT_EQ(r.samples[i], expect[i]);
}

TEST(SweepRunner, SamplesKeepTrialOrderNotCompletionOrder) {
  SweepOptions so;
  so.trials = 100;
  so.threads = 4;
  const SweepResult r = SweepRunner(so).run(
      [](std::size_t t, uwp::Rng&) { return std::vector<double>{static_cast<double>(t)}; });
  ASSERT_EQ(r.samples.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(r.samples[i], static_cast<double>(i));
  ASSERT_EQ(r.per_trial.size(), 100u);
  EXPECT_DOUBLE_EQ(r.per_trial[42][0], 42.0);
}

TEST(SweepRunner, FailedTrialsAreCountedAndIsolated) {
  SweepOptions so;
  so.trials = 20;
  so.threads = 2;
  const SweepResult r = SweepRunner(so).run([](std::size_t t, uwp::Rng&) {
    if (t % 5 == 0) throw std::runtime_error("unlucky topology");
    return std::vector<double>{1.0};
  });
  EXPECT_EQ(r.failed_trials, 4u);
  EXPECT_EQ(r.samples.size(), 16u);
  EXPECT_TRUE(r.per_trial[0].empty());
  EXPECT_FALSE(r.per_trial[1].empty());
  EXPECT_DOUBLE_EQ(r.summary.mean, 1.0);
}

TEST(SweepRunner, SummaryMatchesStatsOverFlattenedSamples) {
  SweepOptions so;
  so.trials = 40;
  so.threads = 3;
  const SweepResult r = SweepRunner(so).run(noisy_trial);
  const Summary direct = uwp::summarize(r.samples);
  EXPECT_EQ(r.summary.count, direct.count);
  EXPECT_EQ(r.summary.mean, direct.mean);
  EXPECT_EQ(r.summary.p90, direct.p90);
  EXPECT_EQ(r.summary.max, direct.max);
}

TEST(SweepRunner, NanSentinelsStayInPerTrialButNotInSamples) {
  // Fixed-position trial rows use NaN to mark misses (e.g. a mic mode that
  // failed to detect); those must never reach summarize(), whose percentile
  // sort has undefined behavior on NaN.
  SweepOptions so;
  so.trials = 10;
  so.threads = 2;
  const double kMiss = std::numeric_limits<double>::quiet_NaN();
  const SweepResult r = SweepRunner(so).run([&](std::size_t t, uwp::Rng&) {
    return std::vector<double>{static_cast<double>(t), t % 2 == 0 ? kMiss : 1.0};
  });
  ASSERT_EQ(r.per_trial.size(), 10u);
  EXPECT_TRUE(std::isnan(r.per_trial[0][1]));  // row kept verbatim
  EXPECT_EQ(r.samples.size(), 15u);            // 10 indices + 5 non-NaN flags
  for (const double x : r.samples) EXPECT_FALSE(std::isnan(x));
  EXPECT_EQ(r.summary.count, 15u);
  EXPECT_DOUBLE_EQ(r.summary.max, 9.0);
}

// The documented pattern for keeping per-worker contexts warm across
// *several* sweeps: the factory leases contexts from a caller-owned pool and
// the shared_ptr deleter returns them, so sweep 2 reuses sweep 1's contexts
// instead of building fresh ones — without giving up bit-reproducibility.
TEST(SweepRunner, WarmContextReuseAcrossSweeps) {
  struct Ctx {
    std::size_t trials_run = 0;  // stands in for warm solver workspaces
  };
  std::mutex mu;
  std::vector<std::unique_ptr<Ctx>> pool;
  std::size_t created = 0;
  const auto factory = [&]() -> std::shared_ptr<void> {
    std::unique_ptr<Ctx> ctx;
    {
      const std::lock_guard<std::mutex> lock(mu);
      if (!pool.empty()) {
        ctx = std::move(pool.back());
        pool.pop_back();
      } else {
        ++created;
        ctx = std::make_unique<Ctx>();
      }
    }
    return {ctx.release(), [&](void* p) {
              const std::lock_guard<std::mutex> lock(mu);
              pool.emplace_back(static_cast<Ctx*>(p));
            }};
  };
  const auto trial = [](std::size_t t, uwp::Rng& rng, void* ctx) {
    ++static_cast<Ctx*>(ctx)->trials_run;
    return noisy_trial(t, rng);
  };

  SweepOptions so;
  so.trials = 24;
  so.master_seed = 52;
  so.threads = 2;
  const SweepResult first = SweepRunner(so).run(factory, trial);
  ASSERT_LE(created, 2u);  // at most one context per lane
  const std::size_t after_first = created;
  EXPECT_EQ(pool.size(), created);  // every context came back to the pool

  const SweepResult second = SweepRunner(so).run(factory, trial);
  // The second sweep ran entirely on the first sweep's warm contexts...
  EXPECT_EQ(created, after_first);
  std::size_t trials_run = 0;
  for (const auto& ctx : pool) trials_run += ctx->trials_run;
  EXPECT_EQ(trials_run, 2 * so.trials);

  // ...and context reuse never leaks into the results: both sweeps match the
  // context-free serial reference bit for bit.
  so.threads = 1;
  const SweepResult reference = SweepRunner(so).run(noisy_trial);
  ASSERT_EQ(first.samples.size(), reference.samples.size());
  ASSERT_EQ(second.samples.size(), reference.samples.size());
  for (std::size_t i = 0; i < reference.samples.size(); ++i) {
    EXPECT_EQ(first.samples[i], reference.samples[i]) << "sample " << i;
    EXPECT_EQ(second.samples[i], reference.samples[i]) << "sample " << i;
  }
}

TEST(SweepRunner, ZeroTrialsYieldsEmptyResult) {
  SweepOptions so;
  so.trials = 0;
  const SweepResult r = SweepRunner(so).run(noisy_trial);
  EXPECT_TRUE(r.samples.empty());
  EXPECT_EQ(r.summary.count, 0u);
  EXPECT_EQ(r.failed_trials, 0u);
}

// End-to-end: a fast-mode scenario sweep (the fig18-style workload) is
// deterministic across thread counts and lands in the paper's error regime.
TEST(SweepRunner, ScenarioFastModeSweepDeterministicAndSane) {
  uwp::Rng dep_rng(4);
  const ScenarioRunner runner(make_dock_testbed(dep_rng));
  RoundOptions opts;
  opts.waveform_phy = false;

  const auto trial = [&runner, &opts](std::size_t, uwp::Rng& rng) {
    const RoundResult res = runner.run_round(opts, rng);
    if (!res.ok) return std::vector<double>{};
    return std::vector<double>(res.error_2d.begin() + 1, res.error_2d.end());
  };

  SweepOptions so;
  so.trials = 16;
  so.master_seed = 18;
  so.threads = 1;
  const SweepResult serial = SweepRunner(so).run(trial);
  so.threads = 4;
  const SweepResult parallel = SweepRunner(so).run(trial);

  ASSERT_FALSE(serial.samples.empty());
  ASSERT_EQ(parallel.samples.size(), serial.samples.size());
  for (std::size_t i = 0; i < serial.samples.size(); ++i)
    EXPECT_EQ(parallel.samples[i], serial.samples[i]) << "sample " << i;
  EXPECT_LT(serial.summary.median, 2.5);
}

}  // namespace
}  // namespace uwp::sim
