#include <gtest/gtest.h>

#include <cmath>

#include "sim/deployment.hpp"
#include "sim/energy_model.hpp"
#include "sim/metrics.hpp"
#include "sim/scenario.hpp"
#include "util/stats.hpp"

namespace uwp::sim {
namespace {

TEST(Deployment, TestbedsWellFormed) {
  uwp::Rng rng(1);
  for (const Deployment& d : {make_dock_testbed(rng), make_boathouse_testbed(rng)}) {
    EXPECT_EQ(d.size(), 5u);
    EXPECT_EQ(d.connectivity.rows(), 5u);
    EXPECT_EQ(d.protocol.num_devices, 5u);
    // All devices inside the water column.
    for (const ScenarioDevice& dev : d.devices) {
      EXPECT_GE(dev.position.z, 0.0);
      EXPECT_LE(dev.position.z, d.env.water_depth_m);
    }
    // Distances from leader span the 3-25 m range of Fig 17.
    double max_d = 0.0;
    for (std::size_t i = 1; i < d.size(); ++i)
      max_d = std::max(max_d,
                       distance(d.devices[i].position, d.devices[0].position));
    EXPECT_GT(max_d, 15.0);
    EXPECT_LT(max_d, 32.0);
  }
}

TEST(Deployment, LinkManipulation) {
  uwp::Rng rng(2);
  Deployment d = make_dock_testbed(rng);
  EXPECT_GT(d.connectivity(1, 2), 0.0);
  d.drop_link(1, 2);
  EXPECT_DOUBLE_EQ(d.connectivity(1, 2), 0.0);
  EXPECT_DOUBLE_EQ(d.connectivity(2, 1), 0.0);
  d.occlude_link(0, 1, 25.0);
  EXPECT_DOUBLE_EQ(d.occlusion_db(1, 0), 25.0);
}

TEST(Deployment, AnalyticalTopologyConstraints) {
  uwp::Rng rng(3);
  for (int t = 0; t < 50; ++t) {
    const AnalyticalTopology topo = random_analytical_topology(6, rng);
    ASSERT_EQ(topo.positions.size(), 6u);
    // Leader at the volume center.
    EXPECT_DOUBLE_EQ(topo.positions[0].x, 0.0);
    EXPECT_DOUBLE_EQ(topo.positions[0].y, 0.0);
    // Device 1 within 4-9 m of the leader.
    const double r = distance(topo.positions[0], topo.positions[1]);
    EXPECT_GE(r, 3.99);
    EXPECT_LE(r, 9.01);
    for (const auto& p : topo.positions) {
      EXPECT_GE(p.z, 0.0);
      EXPECT_LE(p.z, 10.0);
      EXPECT_LE(std::abs(p.x), 30.0);
      EXPECT_LE(std::abs(p.y), 30.0);
    }
  }
}

TEST(Scenario, FastModeRoundLocalizesFiveDevices) {
  uwp::Rng rng(4);
  const ScenarioRunner runner(make_dock_testbed(rng));
  RoundOptions opts;
  opts.waveform_phy = false;  // fast calibrated-error mode
  std::vector<double> errors;
  for (int t = 0; t < 12; ++t) {
    const RoundResult res = runner.run_round(opts, rng);
    ASSERT_TRUE(res.ok);
    for (std::size_t i = 1; i < 5; ++i) errors.push_back(res.error_2d[i]);
  }
  // Fig 18a scale: median ~0.9 m at the dock; allow generous slack.
  EXPECT_LT(uwp::median(errors), 2.0);
  EXPECT_LT(uwp::percentile(errors, 95.0), 8.0);
}

TEST(Scenario, WaveformModeSingleRound) {
  uwp::Rng rng(5);
  const ScenarioRunner runner(make_dock_testbed(rng));
  RoundOptions opts;
  opts.waveform_phy = true;
  const RoundResult res = runner.run_round(opts, rng);
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.localization.positions.size(), 5u);
  EXPECT_FALSE(res.ranging_errors.empty());
  // Waveform-level ranging should be sub-meter at these ranges (median).
  EXPECT_LT(uwp::median(res.ranging_errors), 1.5);
}

TEST(Scenario, ArrivalErrorSampleIsFinite) {
  uwp::Rng rng(6);
  const ScenarioRunner runner(make_dock_testbed(rng));
  int detected = 0;
  for (int t = 0; t < 5; ++t) {
    const auto e = runner.sample_arrival_error(1, 0, rng);
    if (e) {
      ++detected;
      EXPECT_LT(std::abs(*e), 5e-3);  // within ~7.5 m equivalent
    }
  }
  EXPECT_GE(detected, 4);
}

TEST(Scenario, LeaderVoteMatchesGeometry) {
  uwp::Rng rng(7);
  const ScenarioRunner runner(make_dock_testbed(rng));
  const Deployment& d = runner.deployment();
  const uwp::Vec2 to1 = (d.devices[1].position - d.devices[0].position).xy();
  const double pointing = bearing(to1);
  int correct = 0, total = 0;
  for (std::size_t node = 2; node < 5; ++node) {
    const double side =
        side_of_line((d.devices[node].position - d.devices[0].position).xy(),
                     {0, 0}, to1);
    const int expected = side > 0 ? 1 : -1;
    for (int t = 0; t < 4; ++t) {
      const int vote = runner.sample_leader_vote(node, pointing, rng);
      if (vote == 0) continue;
      ++total;
      if (vote == expected) ++correct;
    }
  }
  ASSERT_GT(total, 6);
  // Paper: 90.1% single-signal accuracy; leave slack for the small sample.
  EXPECT_GE(static_cast<double>(correct) / total, 0.7);
}

TEST(Scenario, MissingLinkRoundStillLocalizes) {
  uwp::Rng rng(8);
  Deployment dep = make_dock_testbed(rng);
  dep.drop_link(2, 4);
  const ScenarioRunner runner(std::move(dep));
  RoundOptions opts;
  opts.waveform_phy = false;
  int ok = 0;
  std::vector<double> errors;
  for (int t = 0; t < 10; ++t) {
    const RoundResult res = runner.run_round(opts, rng);
    if (!res.ok) continue;
    ++ok;
    for (std::size_t i = 1; i < 5; ++i) errors.push_back(res.error_2d[i]);
  }
  EXPECT_GE(ok, 8);
  EXPECT_LT(uwp::median(errors), 2.5);
}

TEST(Scenario, LocalizerInputExposedForAblations) {
  uwp::Rng rng(9);
  const ScenarioRunner runner(make_dock_testbed(rng));
  RoundOptions opts;
  opts.waveform_phy = false;
  const RoundResult res = runner.run_round(opts, rng);
  ASSERT_TRUE(res.ok);
  // The exposed input matches the solved ranging data, so ablations can
  // re-localize identical measurements.
  EXPECT_EQ(res.localizer_input.distances.rows(), 5u);
  EXPECT_LT(res.localizer_input.distances.max_abs_diff(res.ranging.distances), 1e-12);
  EXPECT_LT(res.localizer_input.weights.max_abs_diff(res.ranging.weights), 1e-12);
  // Re-running the localizer on the same input reproduces a valid result.
  uwp::Rng rng2(1);
  const uwp::core::Localizer loc;
  const auto again = loc.localize(res.localizer_input, rng2);
  EXPECT_EQ(again.positions.size(), 5u);
}

TEST(Scenario, SoundSpeedErrorBiasesRangingProportionally) {
  uwp::Rng rng(10);
  Deployment dep = make_dock_testbed(rng);
  const ScenarioRunner runner(std::move(dep));
  RoundOptions opts;
  opts.waveform_phy = false;
  opts.fast_arrival.sigma_m = 0.01;  // isolate the speed bias
  opts.fast_arrival.sigma_per_m = 0.0;
  opts.fast_arrival.detection_failure_prob = 0.0;
  opts.quantize_payload = false;

  opts.sound_speed_error_mps = 0.0;
  const RoundResult exact = runner.run_round(opts, rng);
  opts.sound_speed_error_mps = 30.0;
  const RoundResult biased = runner.run_round(opts, rng);
  ASSERT_TRUE(exact.ok);
  ASSERT_TRUE(biased.ok);
  // ~2% speed error inflates a 23 m link by ~0.46 m.
  const double c = runner.deployment().env.sound_speed_mps();
  const double d_true = distance(runner.deployment().devices[0].position,
                                 runner.deployment().devices[4].position);
  const double expected = d_true * 30.0 / c;
  EXPECT_NEAR(biased.ranging.distances(0, 4) - exact.ranging.distances(0, 4),
              expected, 0.15);
}

TEST(Metrics, BarRendering) {
  EXPECT_EQ(bar(0.0, 10), "..........");
  EXPECT_EQ(bar(0.5, 10), "#####.....");
  EXPECT_EQ(bar(1.0, 10), "##########");
  EXPECT_EQ(bar(2.0, 10), "##########");  // clamped
}

TEST(Metrics, TakeSelectsIndices) {
  const std::vector<double> v = {10, 20, 30, 40};
  const std::vector<std::size_t> idx = {3, 0, 9};
  const auto out = take(v, idx);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 40.0);
  EXPECT_DOUBLE_EQ(out[1], 10.0);
}

TEST(EnergyModel, PaperBatteryNumbers) {
  // §3.1: watch lost 90% in 4.5 h, phone 63%.
  const EnergyModel watch = EnergyModel::watch_ultra_siren();
  const EnergyModel phone = EnergyModel::phone_preamble_tx();
  EXPECT_NEAR(watch.battery_drop_fraction(4.5), 0.90, 0.10);
  EXPECT_NEAR(phone.battery_drop_fraction(4.5), 0.63, 0.25);
  // Both outlast the maximum recommended recreational dive (~1 h).
  EXPECT_GT(watch.hours_to_drop(1.0), 1.0);
  EXPECT_GT(phone.hours_to_drop(1.0), 1.0);
}

TEST(EnergyModel, DutyCycleScalesPower) {
  EnergyModel m;
  m.duty_cycle = 0.0;
  const double idle = m.average_power_w();
  m.duty_cycle = 1.0;
  EXPECT_GT(m.average_power_w(), idle);
}

}  // namespace
}  // namespace uwp::sim
