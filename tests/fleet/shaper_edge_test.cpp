// IngestScheduler edge cases: a zero-capacity token bucket, FIFO resolution
// of retry-heap ties, and backlog-chain draining through a session's kBye.
// Every schedule produced here must also recompute exactly through
// verify_ingest_schedule — the edges are inside the determinism contract,
// not exceptions to it.
#include "fleet/shaper.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fleet/transport.hpp"

namespace uwp::fleet {
namespace {

IngestFrame frame(IngestKind kind, std::uint64_t session, std::uint32_t round,
                  double t_s) {
  IngestFrame f;
  f.kind = kind;
  f.session_id = session;
  f.round = round;
  f.t_s = t_s;
  f.dt_s = 1.0;
  return f;
}

// Captured dispatch: (session, round, kind, shed, decide_s) in decision order.
struct Dispatched {
  std::uint64_t session = 0;
  std::uint32_t round = 0;
  IngestKind kind = IngestKind::kMeasurement;
  bool shed = false;
  double decide_s = 0.0;
};

struct Capture {
  std::vector<Dispatched> out;
  IngestScheduler::Dispatch fn() {
    return [this](IngestFrame&& f, bool shed, double decide_s) {
      out.push_back({f.session_id, f.round, f.kind, shed, decide_s});
    };
  }
};

ShaperOptions one_partition(AdmissionPolicy policy) {
  ShaperOptions o;
  o.policy = policy;
  o.ingest_shards = 1;
  o.queue_depth = 32;
  o.drain_rounds_per_s = 1000.0;  // occupancy never interferes
  return o;
}

// --- zero-capacity token bucket ---------------------------------------------

TEST(ShaperEdge, ZeroCapacityBucketShedsEveryRound) {
  ShaperOptions opts = one_partition(AdmissionPolicy::kShed);
  opts.rate_rounds_per_s = 4.0;
  opts.burst_rounds = 0.0;  // tokens can never reach one frame's worth

  IngestScheduler sched(opts, 2);
  Capture cap;
  const auto dispatch = cap.fn();
  sched.on_frame(frame(IngestKind::kMeasurement, 0, 0, 0.0), dispatch);
  sched.on_frame(frame(IngestKind::kMeasurement, 1, 0, 10.0), dispatch);
  sched.on_frame(frame(IngestKind::kBye, 0, 1, 20.0), dispatch);
  sched.finish(dispatch);

  // Both rounds shed on arrival no matter how long the bucket refilled;
  // the control frame is not load and passes.
  ASSERT_EQ(cap.out.size(), 3u);
  EXPECT_TRUE(cap.out[0].shed);
  EXPECT_TRUE(cap.out[1].shed);
  EXPECT_DOUBLE_EQ(cap.out[1].decide_s, 10.0);
  EXPECT_FALSE(cap.out[2].shed);
  EXPECT_EQ(sched.stats().rounds_shed, 2u);
  EXPECT_EQ(sched.stats().rounds_admitted, 0u);
  EXPECT_EQ(verify_ingest_schedule(sched.schedule(), opts, 2), 0u);
}

TEST(ShaperEdge, ZeroCapacityBucketExhaustsDeferBudgetThenSheds) {
  ShaperOptions opts = one_partition(AdmissionPolicy::kDefer);
  opts.rate_rounds_per_s = 4.0;
  opts.burst_rounds = 0.0;
  opts.defer_delay_s = 0.25;
  opts.max_defers = 2;

  IngestScheduler sched(opts, 1);
  Capture cap;
  const auto dispatch = cap.fn();
  sched.on_frame(frame(IngestKind::kMeasurement, 0, 0, 1.0), dispatch);
  sched.finish(dispatch);

  // The frame burns its whole defer budget (retries at 1.25 and 1.5) and
  // sheds at the attempt after the last failed defer.
  ASSERT_EQ(cap.out.size(), 1u);
  EXPECT_TRUE(cap.out[0].shed);
  EXPECT_DOUBLE_EQ(cap.out[0].decide_s, 1.5);
  ASSERT_EQ(sched.schedule().size(), 1u);
  EXPECT_EQ(sched.schedule()[0].decision, IngestDecision::kShed);
  EXPECT_EQ(sched.schedule()[0].defers, 2u);
  EXPECT_EQ(sched.stats().defer_events, 2u);
  EXPECT_EQ(sched.stats().frames_deferred, 1u);
  EXPECT_EQ(verify_ingest_schedule(sched.schedule(), opts, 1), 0u);
}

// --- retry-heap ordering ties -----------------------------------------------

// Two sessions defer at the same virtual time, so their retries land on the
// same heap slot time. The tie must break FIFO (by defer sequence), not by
// session id or heap internals: the session deferred first gets the single
// refilled token, the other defers again.
TEST(ShaperEdge, RetryTiesResolveInDeferOrder) {
  ShaperOptions opts = one_partition(AdmissionPolicy::kDefer);
  opts.rate_rounds_per_s = 1.0;
  opts.burst_rounds = 1.0;
  opts.defer_delay_s = 1.0;
  opts.max_defers = 8;

  for (const bool swap : {false, true}) {
    IngestScheduler sched(opts, 3);
    Capture cap;
    const auto dispatch = cap.fn();
    const std::uint64_t first = swap ? 2 : 1;
    const std::uint64_t second = swap ? 1 : 2;

    // t=0: session 0 takes the only token; `first` then `second` defer,
    // both scheduling retries at exactly t=1.
    sched.on_frame(frame(IngestKind::kMeasurement, 0, 0, 0.0), dispatch);
    sched.on_frame(frame(IngestKind::kMeasurement, first, 0, 0.0), dispatch);
    sched.on_frame(frame(IngestKind::kMeasurement, second, 0, 0.0), dispatch);
    sched.finish(dispatch);

    // At t=1 one token has refilled: `first` (lower defer seq) admits at
    // 1.0; `second` loses the tie, defers again, and admits at 2.0. Which
    // session id plays which role follows arrival order exactly.
    ASSERT_EQ(cap.out.size(), 3u);
    EXPECT_EQ(cap.out[1].session, first);
    EXPECT_DOUBLE_EQ(cap.out[1].decide_s, 1.0);
    EXPECT_EQ(cap.out[2].session, second);
    EXPECT_DOUBLE_EQ(cap.out[2].decide_s, 2.0);
    for (const Dispatched& d : cap.out) EXPECT_FALSE(d.shed);

    for (const IngestRecord& r : sched.schedule()) {
      if (r.session_id == first) {
        EXPECT_EQ(r.defers, 1u);
      } else if (r.session_id == second) {
        EXPECT_EQ(r.defers, 2u);
      }
    }
    EXPECT_EQ(verify_ingest_schedule(sched.schedule(), opts, 3), 0u);
  }
}

// --- backlog chain drains through kBye --------------------------------------

// While a session's head frame is deferred, later frames — including its
// kBye — chain behind it. When the head finally resolves, the chain drains
// in session order; the kBye is never shed or deferred on its own but still
// waits its turn.
TEST(ShaperEdge, ByeDrainsBehindDeferredBacklog) {
  ShaperOptions opts = one_partition(AdmissionPolicy::kDefer);
  opts.rate_rounds_per_s = 1.0;
  opts.burst_rounds = 1.0;
  opts.defer_delay_s = 1.0;
  opts.max_defers = 8;

  IngestScheduler sched(opts, 2);
  Capture cap;
  const auto dispatch = cap.fn();

  // Session 0 drains the bucket; session 1's round defers and its next
  // round plus its kBye chain up behind the deferred head.
  sched.on_frame(frame(IngestKind::kMeasurement, 0, 0, 0.0), dispatch);
  sched.on_frame(frame(IngestKind::kMeasurement, 1, 0, 0.0), dispatch);
  sched.on_frame(frame(IngestKind::kMeasurement, 1, 1, 0.25), dispatch);
  sched.on_frame(frame(IngestKind::kBye, 1, 2, 0.5), dispatch);
  EXPECT_EQ(sched.stats().max_backlog, 3u);
  sched.finish(dispatch);

  // Chain resolution: head admits at t=1 on the refilled token; round 1
  // attempts immediately after, defers (bucket just emptied), and admits at
  // t=2; only then does the kBye pass — in order, as an admit, at the
  // chain-drain time rather than its own arrival time.
  ASSERT_EQ(cap.out.size(), 4u);
  EXPECT_EQ(cap.out[1].round, 0u);
  EXPECT_DOUBLE_EQ(cap.out[1].decide_s, 1.0);
  EXPECT_EQ(cap.out[2].round, 1u);
  EXPECT_DOUBLE_EQ(cap.out[2].decide_s, 2.0);
  EXPECT_EQ(cap.out[3].kind, IngestKind::kBye);
  EXPECT_FALSE(cap.out[3].shed);
  EXPECT_DOUBLE_EQ(cap.out[3].decide_s, 2.0);

  ASSERT_EQ(sched.schedule().size(), 4u);
  const IngestRecord& bye = sched.schedule()[3];
  EXPECT_EQ(bye.kind, IngestKind::kBye);
  EXPECT_EQ(bye.decision, IngestDecision::kAdmit);
  EXPECT_EQ(bye.defers, 0u);
  EXPECT_EQ(verify_ingest_schedule(sched.schedule(), opts, 2), 0u);
}

// A mid-stream retune applies from the boundary on: the same arrivals that
// deferred under the tight bucket sail through after flush_until + retune.
TEST(ShaperEdge, RetuneAtBoundaryOpensTheBucket) {
  ShaperOptions opts = one_partition(AdmissionPolicy::kDefer);
  opts.rate_rounds_per_s = 1.0;
  opts.burst_rounds = 1.0;
  opts.defer_delay_s = 0.25;
  opts.max_defers = 32;  // enough budget that nothing sheds pre-boundary

  IngestScheduler sched(opts, 4);
  Capture cap;
  const auto dispatch = cap.fn();
  for (std::uint64_t s = 0; s < 4; ++s)
    sched.on_frame(frame(IngestKind::kMeasurement, s, 0, 0.0), dispatch);
  EXPECT_EQ(cap.out.size(), 1u);  // one token, three deferred

  // Window boundary at t=4: flush due retries, then open the bucket.
  sched.flush_until(4.0, dispatch);
  sched.retune(100.0, 100.0, opts.max_defers);
  for (std::uint64_t s = 0; s < 4; ++s)
    sched.on_frame(frame(IngestKind::kMeasurement, s, 1, 4.0), dispatch);
  sched.finish(dispatch);

  EXPECT_EQ(sched.stats().rounds_admitted, 8u);
  EXPECT_EQ(sched.stats().rounds_shed, 0u);
  // The second batch all admitted on arrival at the retuned rate.
  std::size_t instant = 0;
  for (const IngestRecord& r : sched.schedule())
    if (r.round == 1 && r.decide_s == r.arrival_s &&
        r.decision == IngestDecision::kAdmit)
      ++instant;
  EXPECT_EQ(instant, 4u);
}

}  // namespace
}  // namespace uwp::fleet
