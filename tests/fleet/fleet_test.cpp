#include "fleet/service.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>
#include <vector>

#include "des/scenario.hpp"
#include "des/session_source.hpp"
#include "fleet/recorder.hpp"
#include "sim/fleet_workload.hpp"

namespace uwp::fleet {
namespace {

sim::WorkloadParams small_params(std::size_t sessions, std::uint64_t seed) {
  sim::WorkloadParams p;
  p.sessions = sessions;
  p.seed = seed;
  p.min_group_size = 4;
  p.max_group_size = 6;
  p.min_rounds = 2;
  p.max_rounds = 4;
  p.admit_spread_ticks = 3;
  p.include_des = true;
  return p;
}

void expect_bit_identical(const FleetResult& a, const FleetResult& b) {
  EXPECT_EQ(a.fleet_digest, b.fleet_digest);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.localized, b.localized);
  EXPECT_EQ(a.coasts, b.coasts);
  ASSERT_EQ(a.sessions.size(), b.sessions.size());
  for (std::size_t i = 0; i < a.sessions.size(); ++i)
    EXPECT_TRUE(a.sessions[i].bit_equal(b.sessions[i])) << "session " << i;
  ASSERT_EQ(a.errors.size(), b.errors.size());
  for (std::size_t i = 0; i < a.errors.size(); ++i)
    EXPECT_EQ(a.errors[i], b.errors[i]) << "sample " << i;
  // Bit-identical aggregates follow, but check the headline number anyway.
  EXPECT_EQ(a.summary.mean, b.summary.mean);
  EXPECT_EQ(a.summary.median, b.summary.median);
}

TEST(FleetService, ThousandSessionMixedFleetBitIdenticalAcrossShards) {
  const sim::WorkloadParams params = small_params(1000, 0xAB17u);
  const std::vector<sim::GroupScenario> workload = sim::make_workload(params);

  // The generator produced a genuinely mixed fleet.
  std::map<sim::GroupScenarioKind, std::size_t> kinds;
  for (const sim::GroupScenario& sc : workload) ++kinds[sc.kind];
  EXPECT_GT(kinds[sim::GroupScenarioKind::kStatic], 0u);
  EXPECT_GT(kinds[sim::GroupScenarioKind::kLawnmower], 0u);
  EXPECT_GT(kinds[sim::GroupScenarioKind::kWaypoint], 0u);
  EXPECT_GT(kinds[sim::GroupScenarioKind::kDropoutChurn], 0u);
  EXPECT_GT(kinds[sim::GroupScenarioKind::kPacketDes], 0u);

  FleetResult reference;
  // 1 shard (serial reference), 4 shards, and one shard per hardware thread.
  for (const std::size_t shards : {1u, 4u, 0u}) {
    FleetOptions fo;
    fo.master_seed = 0x99u;
    fo.shards = shards;
    FleetService service(fo, workload);
    const FleetResult r = service.run();

    ASSERT_EQ(r.sessions.size(), workload.size());
    EXPECT_GT(r.rounds, 0u);
    EXPECT_GT(r.localized, 0u);
    EXPECT_GT(r.coasts, 0u);  // the dropout/churn slice coasted somewhere
    if (shards == 1) {
      reference = r;
      continue;
    }
    expect_bit_identical(reference, r);
  }
}

TEST(FleetService, LifecycleRunsEverySessionToEvictionAndReusesArenas) {
  const sim::WorkloadParams params = small_params(200, 0xCC02u);
  std::vector<sim::GroupScenario> workload = sim::make_workload(params);

  FleetOptions fo;
  fo.master_seed = 3;
  fo.shards = 1;
  FleetService service(fo, workload);
  const FleetResult r = service.run();

  // Every session was admitted exactly once and ran its whole scheduled
  // lifetime (rounds + coasted rounds).
  EXPECT_EQ(service.arena_stats().leases, workload.size());
  for (std::size_t i = 0; i < workload.size(); ++i)
    EXPECT_EQ(r.sessions[i].rounds + r.sessions[i].coasts,
              workload[i].lifetime_rounds)
        << "session " << i;
  // Group sizes repeat across the fleet, so evicted pipelines get rebound.
  EXPECT_GT(service.arena_stats().reuses, 0u);
  EXPECT_GT(r.localized, r.rounds / 2);  // the service actually localizes
}

TEST(FleetService, LatencyMeasurementCoversEveryRound) {
  const sim::WorkloadParams params = small_params(32, 0x11u);
  FleetOptions fo;
  fo.master_seed = 5;
  fo.shards = 2;
  fo.measure_latency = true;
  FleetService service(fo, sim::make_workload(params));
  const FleetResult r = service.run();
  EXPECT_EQ(r.round_latency_s.size(), r.rounds);
  for (const double l : r.round_latency_s) EXPECT_GE(l, 0.0);
  EXPECT_GT(r.wall_seconds, 0.0);
}

TEST(FleetRecordReplay, ReplayReproducesPerSessionMetricsBitForBit) {
  sim::WorkloadParams params = small_params(64, 0x5EEDu);
  params.min_rounds = 3;
  params.max_rounds = 6;

  FleetOptions fo;
  fo.master_seed = 0xCAFEu;
  fo.shards = 0;  // any shard count; the trace is shard-independent
  FleetService service(fo, sim::make_workload(params));

  SessionRecorder recorder(fo.master_seed, params);
  const FleetResult live = service.run(&recorder);

  // File round trip, then replay from the loaded trace.
  const char* path = "fleet_replay_test.trace";
  recorder.save(path);
  const FleetTrace loaded = load_fleet_trace(path);
  std::remove(path);

  // Serialization is stable: saving the loaded trace reproduces the bytes.
  std::ostringstream first, second;
  write_fleet_trace(first, recorder.trace());
  write_fleet_trace(second, loaded);
  EXPECT_EQ(first.str(), second.str());

  const Replayer replayer(loaded);
  const Replayer::ReplayResult replay = replayer.replay();

  // The recomputed per-round results matched the recorded ones...
  EXPECT_EQ(replay.result_mismatches, 0u);
  // ...and the whole fleet aggregate is bit-identical to the live run.
  expect_bit_identical(live, replay.fleet);
}

TEST(FleetRecordReplay, CorruptTracesAreRejected) {
  sim::WorkloadParams params = small_params(4, 0x77u);
  params.include_des = false;
  FleetOptions fo;
  fo.master_seed = 1;
  fo.shards = 1;
  FleetService service(fo, sim::make_workload(params));
  SessionRecorder recorder(fo.master_seed, params, service.workload());
  service.run(&recorder);

  std::ostringstream out;
  recorder.write(out);
  const std::string good = out.str();

  {
    std::string bad = good;
    bad[0] = 'X';  // magic
    std::istringstream in(bad);
    EXPECT_THROW(read_fleet_trace(in), WireError);
  }
  {
    std::string bad = good;
    bad.resize(bad.size() / 2);  // truncated mid-frame
    std::istringstream in(bad);
    EXPECT_THROW(read_fleet_trace(in), WireError);
  }
  {
    std::string bad = good + "tail";  // trailing junk
    std::istringstream in(bad);
    EXPECT_THROW(read_fleet_trace(in), WireError);
  }
  {
    // Corrupt the v2 header's force_kind byte (magic + version + two u64s +
    // the 7 u64 workload params + include_des) to a value past kPacketDes:
    // must fail decode as WireError, not leak std::invalid_argument from
    // the workload generator at replay time.
    std::string bad = good;
    const std::size_t force_kind_at = 4 + 2 + 8 + 8 + 7 * 8 + 1;
    ASSERT_EQ(static_cast<unsigned char>(bad[force_kind_at]), 0xFFu);  // mixed
    bad[force_kind_at] = 0x20;
    std::istringstream in(bad);
    EXPECT_THROW(read_fleet_trace(in), WireError);
  }
}

TEST(FleetRecordReplay, ImplausibleCountsFailAsWireErrorNotBadAlloc) {
  sim::WorkloadParams params = small_params(4, 0x42u);
  params.include_des = false;
  FleetOptions fo;
  fo.master_seed = 7;
  fo.shards = 1;
  FleetService service(fo, sim::make_workload(params));
  SessionRecorder recorder(fo.master_seed, params, service.workload());
  service.run(&recorder);

  std::ostringstream out;
  recorder.write(out);
  const std::string good = out.str();

  const auto put_u64_at = [](std::string& s, std::size_t at, std::uint64_t v) {
    for (int b = 0; b < 8; ++b)
      s[at + static_cast<std::size_t>(b)] =
          static_cast<char>((v >> (8 * b)) & 0xffu);
  };
  // Header layout: magic(4) version(2) master_seed(8) digest(8) -> params
  // start at 22 (sessions first), 7 u64s + 2 u8s -> session count at 80,
  // session 0's id at 88 and its event count at 96.
  {
    // A count field that would allocate terabytes must fail the remaining-
    // bytes plausibility check as WireError — resize-then-discover-EOF
    // dies in the allocator (bad_alloc / OOM) instead.
    std::string bad = good;
    put_u64_at(bad, 22, 0x1000000000000ull);  // params.sessions (must match)
    put_u64_at(bad, 80, 0x1000000000000ull);  // session count
    std::istringstream in(bad);
    try {
      read_fleet_trace(in);
      FAIL() << "implausible session count accepted";
    } catch (const WireError& e) {
      EXPECT_NE(std::string(e.what()).find("implausible session count"),
                std::string::npos);
    }
  }
  {
    std::string bad = good;
    put_u64_at(bad, 96, 0xFFFFFFFFFFFFFFFFull);  // session 0's event count
    std::istringstream in(bad);
    try {
      read_fleet_trace(in);
      FAIL() << "implausible event count accepted";
    } catch (const WireError& e) {
      EXPECT_NE(std::string(e.what()).find("implausible event count"),
                std::string::npos);
    }
  }
  {
    // An event count larger than the bytes left but too small to OOM is
    // caught by the same bound (9 bytes per event minimum).
    std::string bad = good;
    put_u64_at(bad, 96, good.size());
    std::istringstream in(bad);
    EXPECT_THROW(read_fleet_trace(in), WireError);
  }
}

TEST(FleetRecordReplay, WorkloadVersionSkewIsRejectedWithAClearError) {
  sim::WorkloadParams params = small_params(6, 0x99u);
  params.include_des = false;
  FleetOptions fo;
  fo.master_seed = 4;
  fo.shards = 1;
  FleetService service(fo, sim::make_workload(params));
  // params-only ctor: regenerates the workload itself to pin the digest
  SessionRecorder recorder(fo.master_seed, params);
  service.run(&recorder);

  // The digest survives the file round trip and a faithful trace replays.
  std::ostringstream out;
  recorder.write(out);
  std::istringstream in(out.str());
  const FleetTrace loaded = read_fleet_trace(in);
  EXPECT_EQ(loaded.workload_digest, recorder.trace().workload_digest);
  EXPECT_NO_THROW({ Replayer ok(loaded); });

  {
    // A tampered digest field is refused outright.
    FleetTrace bad = recorder.trace();
    bad.workload_digest ^= 1;
    EXPECT_THROW(Replayer(std::move(bad)), WireError);
  }
  {
    // The version-skew case proper: the header's parameters regenerate a
    // *different* workload than the one recorded (here simulated by editing
    // the seed; a changed generator behaves identically). Must not replay.
    FleetTrace bad = recorder.trace();
    bad.workload.seed += 1;
    try {
      Replayer replayer(std::move(bad));
      FAIL() << "skewed workload accepted";
    } catch (const WireError& e) {
      EXPECT_NE(std::string(e.what()).find("digest mismatch"), std::string::npos);
    }
  }
}

TEST(FleetRecordReplay, MismatchedDeviceCountFrameIsRejectedNotReadOutOfBounds) {
  sim::WorkloadParams params = small_params(4, 0x88u);
  params.include_des = false;  // groups of 4-6 devices
  FleetOptions fo;
  fo.master_seed = 2;
  fo.shards = 1;
  FleetService service(fo, sim::make_workload(params));
  SessionRecorder recorder(fo.master_seed, params, service.workload());
  service.run(&recorder);

  // Swap session 0's first measurement for a *well-formed* frame of a
  // smaller group: internally consistent, so decode succeeds — the replayer
  // must still refuse to push it through a pipeline sized for more devices.
  pipeline::RoundMeasurement tiny;
  tiny.protocol.timestamps.assign(2, 2);
  tiny.protocol.heard.assign(2, 2);
  tiny.protocol.sync_ref.assign(2, 0);
  tiny.protocol.tx_global.assign(2, 0.0);
  tiny.depths.assign(2, 1.0);
  tiny.truth_pos.resize(2);
  tiny.truth_xy.resize(2);
  tiny.truth_depths.assign(2, 1.0);

  FleetTrace trace = recorder.trace();
  for (TraceEvent& ev : trace.sessions[0].events) {
    if (ev.kind != FrameKind::kMeasurement) continue;
    ev.payload.clear();
    encode_measurement(tiny, ev.payload);
    break;
  }
  EXPECT_THROW(Replayer(trace).replay(), WireError);
}

// The persistent packet-level session source must be the DES scenario driver
// bit for bit: same event order, same rng draws, same timestamp tables.
TEST(DesSessionSource, MatchesDesScenarioBitForBit) {
  const std::size_t n = 6;
  const std::size_t rounds = 4;

  des::DesScenarioConfig cfg;
  cfg.protocol.num_devices = n;
  cfg.rounds = rounds;
  cfg.arrival.detection_failure_prob = 0.02;

  std::vector<Vec3> origins;
  for (std::size_t i = 0; i < n; ++i)
    origins.push_back({3.0 * static_cast<double>(i), 2.0 * static_cast<double>(i % 3),
                       1.0 + 0.5 * static_cast<double>(i)});
  auto mobility = std::make_shared<des::StaticMobility>(origins);

  std::vector<audio::AudioTimingConfig> audio(n);
  for (std::size_t i = 0; i < n; ++i) {
    audio[i].speaker_start_s = 0.1 * static_cast<double>(i);
    audio[i].mic_start_s = 0.05 + 0.07 * static_cast<double>(i);
  }
  Matrix conn(n, n, 1.0);
  for (std::size_t i = 0; i < n; ++i) conn(i, i) = 0.0;

  const des::DesScenario scenario(cfg, mobility, audio, conn);
  uwp::Rng rng_scenario(5);
  const des::DesScenarioResult ref = scenario.run(rng_scenario);

  // Drive a DesSessionSource through the shared pipeline exactly the way
  // DesScenario::run does, from an identical rng.
  des::DesSessionSource source(cfg, mobility, audio, conn);
  EXPECT_EQ(source.round_period_s(), scenario.round_period_s());

  pipeline::PipelineOptions popts;
  popts.protocol = cfg.protocol;
  popts.quantize_payload = cfg.quantize_payload;
  popts.sound_speed_error_mps = cfg.sound_speed_error_mps;
  popts.localizer = cfg.localizer;
  popts.track = true;
  popts.tracker = cfg.tracker;
  pipeline::RoundPipeline pipe(popts);

  uwp::Rng rng(5);
  pipeline::RoundMeasurement meas;
  std::vector<double> errors;
  for (std::size_t r = 0; r < rounds; ++r) {
    source.measure(meas, rng);
    const pipeline::RoundOutput& out =
        pipe.run_round(meas, rng, r == 0 ? 0.0 : source.round_period_s());
    for (std::size_t i = 1; i < n; ++i)
      if (!std::isnan(out.error_2d[i])) errors.push_back(out.error_2d[i]);
  }
  EXPECT_EQ(source.rounds_run(), rounds);

  ASSERT_EQ(errors.size(), ref.errors.size());
  for (std::size_t i = 0; i < errors.size(); ++i)
    EXPECT_EQ(errors[i], ref.errors[i]) << "error " << i;
}

}  // namespace
}  // namespace uwp::fleet
