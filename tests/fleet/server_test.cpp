// fleet::Server: the async ingest path must be concurrency-invariant — the
// same FleetResult bits for any worker count, bit-identical to the
// synchronous FleetService when shaping is off, an ingest schedule that
// recomputes exactly from its recorded arrivals, and traces of served
// (even shaped) runs that replay through the ordinary fleet::Replayer.
#include "fleet/server.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "fleet/recorder.hpp"
#include "fleet/service.hpp"
#include "sim/fleet_workload.hpp"

namespace uwp::fleet {
namespace {

sim::WorkloadParams small_params(std::size_t sessions, std::uint64_t seed) {
  sim::WorkloadParams p;
  p.sessions = sessions;
  p.seed = seed;
  p.min_group_size = 4;
  p.max_group_size = 6;
  p.min_rounds = 2;
  p.max_rounds = 4;
  p.admit_spread_ticks = 3;
  p.include_des = true;
  return p;
}

void expect_bit_identical(const FleetResult& a, const FleetResult& b) {
  EXPECT_EQ(a.fleet_digest, b.fleet_digest);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.localized, b.localized);
  EXPECT_EQ(a.coasts, b.coasts);
  ASSERT_EQ(a.sessions.size(), b.sessions.size());
  for (std::size_t i = 0; i < a.sessions.size(); ++i)
    EXPECT_TRUE(a.sessions[i].bit_equal(b.sessions[i])) << "session " << i;
  ASSERT_EQ(a.errors.size(), b.errors.size());
  for (std::size_t i = 0; i < a.errors.size(); ++i)
    EXPECT_EQ(a.errors[i], b.errors[i]) << "sample " << i;
}

// One full served run: feeder thread on one side of an in-process ring,
// Server::serve on the other.
ServerResult serve_workload(const std::vector<sim::GroupScenario>& workload,
                            const ServerOptions& opts,
                            SessionRecorder* recorder = nullptr,
                            std::size_t transport_capacity = 64) {
  Server server(opts, workload);
  RingBufferTransport transport(transport_capacity);
  std::thread feeder(
      [&] { feed_workload(transport, workload, opts.master_seed, {}); });
  ServerResult res;
  try {
    res = server.serve(transport, recorder);
  } catch (...) {
    transport.close();
    feeder.join();
    throw;
  }
  feeder.join();
  return res;
}

// --- ingest frame codec -----------------------------------------------------

TEST(IngestFrameCodec, RoundTripsEveryKind) {
  IngestFrame in;
  in.kind = IngestKind::kMeasurement;
  in.session_id = 77;
  in.round = 3;
  in.t_s = 12.5;
  in.dt_s = 2.0;
  in.payload = {1, 2, 3, 250, 0};

  std::vector<std::uint8_t> bytes;
  encode_ingest_frame(in, bytes);
  IngestFrame out;
  decode_ingest_frame(bytes, out);
  EXPECT_EQ(out.kind, in.kind);
  EXPECT_EQ(out.session_id, in.session_id);
  EXPECT_EQ(out.round, in.round);
  EXPECT_EQ(out.t_s, in.t_s);
  EXPECT_EQ(out.dt_s, in.dt_s);
  EXPECT_EQ(out.payload, in.payload);

  for (const IngestKind kind : {IngestKind::kCoast, IngestKind::kBye}) {
    IngestFrame ctl;
    ctl.kind = kind;
    ctl.session_id = 5;
    ctl.t_s = 1.0;
    ctl.dt_s = 2.0;
    encode_ingest_frame(ctl, bytes);
    decode_ingest_frame(bytes, out);
    EXPECT_EQ(out.kind, kind);
    EXPECT_TRUE(out.payload.empty());
  }
}

TEST(IngestFrameCodec, RejectsMalformedFrames) {
  IngestFrame f;
  f.kind = IngestKind::kMeasurement;
  f.payload = {9, 9};
  std::vector<std::uint8_t> good;
  encode_ingest_frame(f, good);

  {
    std::vector<std::uint8_t> bad = good;
    bad[0] ^= 0xFF;  // magic
    IngestFrame out;
    EXPECT_THROW(decode_ingest_frame(bad, out), WireError);
  }
  {
    std::vector<std::uint8_t> bad = good;
    bad[4] = 0x7F;  // version
    IngestFrame out;
    EXPECT_THROW(decode_ingest_frame(bad, out), WireError);
  }
  {
    std::vector<std::uint8_t> bad = good;
    bad[6] = 0x42;  // kind
    IngestFrame out;
    EXPECT_THROW(decode_ingest_frame(bad, out), WireError);
  }
  {
    std::vector<std::uint8_t> bad = good;
    bad.resize(bad.size() - 1);  // truncated payload
    IngestFrame out;
    EXPECT_THROW(decode_ingest_frame(bad, out), WireError);
  }
  {
    std::vector<std::uint8_t> bad = good;
    bad.push_back(0);  // trailing bytes
    IngestFrame out;
    EXPECT_THROW(decode_ingest_frame(bad, out), WireError);
  }
  {
    // A control frame must not carry a payload.
    IngestFrame bye;
    bye.kind = IngestKind::kBye;
    bye.payload = {1};
    std::vector<std::uint8_t> bytes;
    encode_ingest_frame(bye, bytes);
    IngestFrame out;
    EXPECT_THROW(decode_ingest_frame(bytes, out), WireError);
  }
}

TEST(RingBufferTransport, FifoOrderAndCloseSemantics) {
  RingBufferTransport t(2);
  EXPECT_TRUE(t.send({1}));
  EXPECT_TRUE(t.send({2}));
  t.close();
  EXPECT_FALSE(t.send({3}));  // closed: refused, not queued

  std::vector<std::uint8_t> frame;
  ASSERT_TRUE(t.recv(frame));  // in-flight frames still drain after close
  EXPECT_EQ(frame, std::vector<std::uint8_t>{1});
  ASSERT_TRUE(t.recv(frame));
  EXPECT_EQ(frame, std::vector<std::uint8_t>{2});
  EXPECT_FALSE(t.recv(frame));  // drained
  EXPECT_EQ(t.frames_sent(), 2u);
}

// --- serving determinism ----------------------------------------------------

TEST(FleetServer, UnshapedServeIsBitIdenticalToFleetService) {
  const std::vector<sim::GroupScenario> workload =
      sim::make_workload(small_params(48, 0xF00Du));

  FleetOptions fo;
  fo.master_seed = 0x99u;
  fo.shards = 2;
  FleetService service(fo, workload);
  const FleetResult reference = service.run();

  ServerOptions so;
  so.master_seed = fo.master_seed;
  so.workers = 3;
  so.shaping.policy = AdmissionPolicy::kAdmitAll;
  const ServerResult served = serve_workload(workload, so);

  expect_bit_identical(reference, served.fleet);
  EXPECT_EQ(served.stats.shaper.rounds_shed, 0u);
  EXPECT_EQ(served.stats.schedule_mismatches, 0u);
  EXPECT_GT(served.stats.frames_received, 0u);
}

TEST(FleetServer, BitIdenticalAcrossWorkerCountsUnderShaping) {
  const std::vector<sim::GroupScenario> workload =
      sim::make_workload(small_params(48, 0xBEEFu));

  ServerOptions so;
  so.master_seed = 0x77u;
  so.queue_depth = 4;  // small dispatch queues: heavy real backpressure
  so.shaping.policy = AdmissionPolicy::kDefer;
  so.shaping.ingest_shards = 2;
  so.shaping.queue_depth = 8;
  so.shaping.drain_rounds_per_s = 6.0;
  so.shaping.rate_rounds_per_s = 8.0;
  so.shaping.burst_rounds = 4.0;
  so.shaping.max_defers = 3;

  ServerResult reference;
  // Serial, small pool, and one worker per hardware thread.
  for (const std::size_t workers : {1u, 4u, 0u}) {
    so.workers = workers;
    const ServerResult r = serve_workload(workload, so);
    EXPECT_EQ(r.stats.schedule_mismatches, 0u) << workers << " workers";
    if (workers == 1) {
      reference = r;
      // The shaper actually did something on this configuration.
      EXPECT_GT(reference.stats.shaper.defer_events, 0u);
      EXPECT_GT(reference.stats.shaper.rounds_shed, 0u);
      continue;
    }
    expect_bit_identical(reference.fleet, r.fleet);
    EXPECT_EQ(reference.schedule_digest, r.schedule_digest);
    ASSERT_EQ(reference.schedule.size(), r.schedule.size());
    for (std::size_t i = 0; i < r.schedule.size(); ++i)
      EXPECT_TRUE(bit_equal(reference.schedule[i], r.schedule[i])) << "record " << i;
  }
}

TEST(FleetServer, BackpressureShedsDeterministically) {
  const std::vector<sim::GroupScenario> workload =
      sim::make_workload(small_params(32, 0xD00Du));

  ServerOptions so;
  so.master_seed = 0x31u;
  so.workers = 2;
  so.shaping.policy = AdmissionPolicy::kShed;
  so.shaping.ingest_shards = 2;
  so.shaping.queue_depth = 3;  // tiny modeled queue: guaranteed overload
  so.shaping.drain_rounds_per_s = 2.0;

  const ServerResult a = serve_workload(workload, so, nullptr, 8);
  const ServerResult b = serve_workload(workload, so, nullptr, 8);

  // Overload really shed rounds, and every shed is a pure function of the
  // schedule: two runs agree bit for bit.
  EXPECT_GT(a.stats.shaper.rounds_shed, 0u);
  EXPECT_EQ(a.stats.shaper.rounds_shed, b.stats.shaper.rounds_shed);
  EXPECT_EQ(a.schedule_digest, b.schedule_digest);
  expect_bit_identical(a.fleet, b.fleet);
  EXPECT_EQ(a.stats.schedule_mismatches, 0u);

  // Shed rounds became coasts: every session still ran its full lifetime.
  for (std::size_t i = 0; i < workload.size(); ++i)
    EXPECT_EQ(a.fleet.sessions[i].rounds + a.fleet.sessions[i].coasts,
              workload[i].lifetime_rounds)
        << "session " << i;
  EXPECT_LT(a.fleet.rounds, a.stats.shaper.rounds_admitted +
                                a.stats.shaper.rounds_shed + 1);
}

TEST(FleetServer, RecordedServedRunReplaysBitIdentically) {
  const sim::WorkloadParams params = small_params(40, 0x5E17u);
  const std::vector<sim::GroupScenario> workload = sim::make_workload(params);

  ServerOptions so;
  so.master_seed = 0xCAFEu;
  so.workers = 0;
  so.shaping.policy = AdmissionPolicy::kShed;
  so.shaping.ingest_shards = 2;
  so.shaping.queue_depth = 6;
  so.shaping.drain_rounds_per_s = 4.0;

  SessionRecorder recorder(so.master_seed, params, workload);
  const ServerResult served = serve_workload(workload, so, &recorder);
  EXPECT_GT(served.stats.shaper.rounds_shed, 0u);  // the trace includes sheds

  // The served trace replays through the ordinary replayer: shed rounds
  // were recorded as coasts, so the trace format needed no extension.
  const Replayer replayer(recorder.trace());
  const Replayer::ReplayResult replay = replayer.replay();
  EXPECT_EQ(replay.result_mismatches, 0u);
  expect_bit_identical(served.fleet, replay.fleet);
}

TEST(FleetServer, ScheduleVerifierCatchesTampering) {
  const std::vector<sim::GroupScenario> workload =
      sim::make_workload(small_params(24, 0xAB1Eu));

  ServerOptions so;
  so.master_seed = 0x13u;
  so.workers = 2;
  so.shaping.policy = AdmissionPolicy::kShed;
  so.shaping.ingest_shards = 2;
  so.shaping.queue_depth = 4;
  so.shaping.drain_rounds_per_s = 3.0;
  const ServerResult res = serve_workload(workload, so);

  // Recorded-vs-recomputed: clean as served...
  EXPECT_EQ(verify_ingest_schedule(res.schedule, so.shaping, workload.size()), 0u);
  ASSERT_GT(res.schedule.size(), 0u);

  {
    // ...but flipping one recorded decision no longer recomputes.
    std::vector<IngestRecord> tampered = res.schedule;
    std::size_t flip = tampered.size();
    for (std::size_t i = 0; i < tampered.size(); ++i) {
      if (tampered[i].kind != IngestKind::kMeasurement) continue;
      flip = i;
      break;
    }
    ASSERT_LT(flip, tampered.size());
    tampered[flip].decision = tampered[flip].decision == IngestDecision::kAdmit
                                  ? IngestDecision::kShed
                                  : IngestDecision::kAdmit;
    EXPECT_GT(verify_ingest_schedule(tampered, so.shaping, workload.size()), 0u);
  }
  {
    // Editing a recorded timestamp desyncs the recomputed record: caught.
    std::vector<IngestRecord> tampered = res.schedule;
    tampered.front().decide_s += 1.0;
    EXPECT_GT(verify_ingest_schedule(tampered, so.shaping, workload.size()), 0u);
  }
  // Different options than the ones that produced the schedule: caught too.
  ShaperOptions other = so.shaping;
  other.drain_rounds_per_s *= 10.0;
  EXPECT_GT(verify_ingest_schedule(res.schedule, other, workload.size()), 0u);
}

TEST(FleetServer, RejectsUnknownSessionIdAndMalformedFrames) {
  const std::vector<sim::GroupScenario> workload =
      sim::make_workload(small_params(4, 0x21u));

  {
    // A frame addressed past the workload must fail the serve, not index
    // out of bounds.
    Server server({}, workload);
    RingBufferTransport transport(4);
    IngestFrame f;
    f.kind = IngestKind::kCoast;
    f.session_id = workload.size();
    std::vector<std::uint8_t> bytes;
    encode_ingest_frame(f, bytes);
    ASSERT_TRUE(transport.send(std::move(bytes)));
    transport.close();
    EXPECT_THROW(server.serve(transport), WireError);
  }
  {
    // Garbage bytes on the transport fail decode as WireError.
    Server server({}, workload);
    RingBufferTransport transport(4);
    ASSERT_TRUE(transport.send({0xDE, 0xAD, 0xBE, 0xEF}));
    transport.close();
    EXPECT_THROW(server.serve(transport), WireError);
  }
  {
    // A well-formed frame whose payload is a measurement for the wrong
    // group size is rejected by the worker (same guard as the replayer).
    Server server({}, workload);
    RingBufferTransport transport(4);
    pipeline::RoundMeasurement tiny;
    tiny.protocol.timestamps.assign(2, 2);
    tiny.protocol.heard.assign(2, 2);
    tiny.protocol.sync_ref.assign(2, 0);
    tiny.protocol.tx_global.assign(2, 0.0);
    tiny.depths.assign(2, 1.0);
    tiny.truth_pos.resize(2);
    tiny.truth_xy.resize(2);
    tiny.truth_depths.assign(2, 1.0);
    IngestFrame f;
    f.kind = IngestKind::kMeasurement;
    f.session_id = 0;
    encode_measurement(tiny, f.payload);
    std::vector<std::uint8_t> bytes;
    encode_ingest_frame(f, bytes);
    ASSERT_TRUE(transport.send(std::move(bytes)));
    transport.close();
    try {
      server.serve(transport);
      FAIL() << "mismatched device count accepted";
    } catch (const WireError& e) {
      EXPECT_NE(std::string(e.what()).find("device count"), std::string::npos);
    }
  }
}

}  // namespace
}  // namespace uwp::fleet
