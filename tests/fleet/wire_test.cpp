#include "fleet/wire.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/random.hpp"

namespace uwp::fleet {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// A fully populated measurement with the awkward values the wire must carry
// exactly: NaN timestamp/tx sentinels, SIZE_MAX sync refs, negative deltas,
// denormal-ish magnitudes.
pipeline::RoundMeasurement make_measurement(std::size_t n, uwp::Rng& rng) {
  pipeline::RoundMeasurement m;
  m.protocol.timestamps.assign(n, n);
  m.protocol.heard.assign(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const bool heard = rng.bernoulli(0.8);
      m.protocol.heard(i, j) = heard ? 1.0 : 0.0;
      m.protocol.timestamps(i, j) = heard ? rng.normal(1.0, 3.0) : kNaN;
    }
  }
  m.protocol.sync_ref.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    m.protocol.sync_ref[i] = rng.bernoulli(0.2) ? std::numeric_limits<std::size_t>::max()
                                                : static_cast<std::size_t>(rng.uniform_int(
                                                      0, static_cast<std::int64_t>(n) - 1));
  m.protocol.tx_global.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    m.protocol.tx_global[i] = rng.bernoulli(0.1) ? kNaN : rng.uniform(-2.0, 8.0);
  m.protocol.round_duration_s = rng.uniform(0.0, 10.0);

  m.depths.resize(n);
  for (double& d : m.depths) d = rng.uniform(0.0, 50.0);
  m.pointing_bearing_rad = rng.uniform(-3.2, 3.2);

  m.votes.clear();
  for (std::size_t i = 2; i < n; ++i)
    if (rng.bernoulli(0.7))
      m.votes.push_back({i, static_cast<int>(rng.uniform_int(-1, 1))});

  m.truth_pos.resize(n);
  m.truth_xy.resize(n);
  m.truth_depths.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    m.truth_pos[i] = {rng.uniform(-30, 30), rng.uniform(-30, 30), rng.uniform(0, 10)};
    m.truth_xy[i] = m.truth_pos[i].xy();
    m.truth_depths[i] = m.truth_pos[i].z;
  }
  return m;
}

TEST(WireCodec, MeasurementRoundTripExactEveryField) {
  uwp::Rng rng(42);
  const pipeline::RoundMeasurement m = make_measurement(6, rng);

  std::vector<std::uint8_t> bytes;
  encode_measurement(m, bytes);
  EXPECT_EQ(peek_record_kind(bytes, 0), RecordKind::kMeasurement);

  pipeline::RoundMeasurement back;
  std::size_t pos = 0;
  decode_measurement(bytes, pos, back);
  EXPECT_EQ(pos, bytes.size());
  EXPECT_TRUE(bit_equal(m, back));

  // Field-level spot checks on top of the bit_equal sweep, so a failure
  // names the field.
  EXPECT_EQ(back.protocol.sync_ref, m.protocol.sync_ref);
  EXPECT_EQ(back.depths.size(), m.depths.size());
  for (std::size_t i = 0; i < m.depths.size(); ++i)
    EXPECT_EQ(back.depths[i], m.depths[i]);
  EXPECT_EQ(back.pointing_bearing_rad, m.pointing_bearing_rad);
  ASSERT_EQ(back.votes.size(), m.votes.size());
  for (std::size_t i = 0; i < m.votes.size(); ++i) {
    EXPECT_EQ(back.votes[i].node, m.votes[i].node);
    EXPECT_EQ(back.votes[i].mic_sign, m.votes[i].mic_sign);
  }
  // NaNs survive bit-for-bit.
  for (std::size_t i = 0; i < m.protocol.tx_global.size(); ++i)
    EXPECT_EQ(std::isnan(back.protocol.tx_global[i]),
              std::isnan(m.protocol.tx_global[i]));

  // Re-encoding the decoded value reproduces the byte stream exactly.
  std::vector<std::uint8_t> bytes2;
  encode_measurement(back, bytes2);
  EXPECT_EQ(bytes, bytes2);
}

TEST(WireCodec, DecodedBuffersAreReusedAcrossSizes) {
  uwp::Rng rng(7);
  pipeline::RoundMeasurement out;
  for (const std::size_t n : {8u, 3u, 5u}) {
    const pipeline::RoundMeasurement m = make_measurement(n, rng);
    std::vector<std::uint8_t> bytes;
    encode_measurement(m, bytes);
    std::size_t pos = 0;
    decode_measurement(bytes, pos, out);  // same `out` every iteration
    EXPECT_TRUE(bit_equal(m, out)) << "n=" << n;
  }
}

TEST(WireCodec, RoundRecordRoundTrip) {
  RoundRecord r;
  r.round = 17;
  r.localized = true;
  r.normalized_stress = 0.12345;
  r.error_2d = {0.0, 1.5, kNaN, 2.25};
  r.tracked_error_2d = {kNaN, 0.5, 0.75, kNaN};

  std::vector<std::uint8_t> bytes;
  encode_round_record(r, bytes);
  EXPECT_EQ(peek_record_kind(bytes, 0), RecordKind::kRoundRecord);

  RoundRecord back;
  std::size_t pos = 0;
  decode_round_record(bytes, pos, back);
  EXPECT_EQ(pos, bytes.size());
  EXPECT_TRUE(bit_equal(r, back));

  // Empty tracked vector (tracking off) round-trips too.
  r.tracked_error_2d.clear();
  bytes.clear();
  encode_round_record(r, bytes);
  pos = 0;
  decode_round_record(bytes, pos, back);
  EXPECT_TRUE(bit_equal(r, back));
}

TEST(WireCodec, EncodeRejectsUnencodableValues) {
  uwp::Rng rng(3);
  std::vector<std::uint8_t> bytes;

  pipeline::RoundMeasurement m = make_measurement(4, rng);
  m.depths.resize(3);  // inconsistent with n
  EXPECT_THROW(encode_measurement(m, bytes), std::invalid_argument);

  m = make_measurement(4, rng);
  m.protocol.heard(1, 2) = 0.5;  // not an indicator
  EXPECT_THROW(encode_measurement(m, bytes), std::invalid_argument);

  m = make_measurement(4, rng);
  m.votes = {{2, 3}};  // sign outside {-1, 0, +1}
  EXPECT_THROW(encode_measurement(m, bytes), std::invalid_argument);

  m = make_measurement(4, rng);
  m.votes = {{9, 1}};  // node outside the group
  EXPECT_THROW(encode_measurement(m, bytes), std::invalid_argument);
}

TEST(WireCodec, MalformedHeadersAreRejected) {
  uwp::Rng rng(11);
  std::vector<std::uint8_t> bytes;
  encode_measurement(make_measurement(4, rng), bytes);
  pipeline::RoundMeasurement out;
  std::size_t pos = 0;

  {
    std::vector<std::uint8_t> bad = bytes;
    bad[0] ^= 0xff;  // magic
    pos = 0;
    EXPECT_THROW(decode_measurement(bad, pos, out), WireError);
  }
  {
    std::vector<std::uint8_t> bad = bytes;
    bad[4] = 99;  // version
    pos = 0;
    EXPECT_THROW(decode_measurement(bad, pos, out), WireError);
  }
  {
    std::vector<std::uint8_t> bad = bytes;
    bad[6] = 0x7f;  // record kind
    pos = 0;
    EXPECT_THROW(decode_measurement(bad, pos, out), WireError);
  }
  {
    // A round record where a measurement is expected (and vice versa).
    std::vector<std::uint8_t> rec;
    encode_round_record(RoundRecord{}, rec);
    pos = 0;
    EXPECT_THROW(decode_measurement(rec, pos, out), WireError);
    RoundRecord rr;
    pos = 0;
    EXPECT_THROW(decode_round_record(bytes, pos, rr), WireError);
  }
  {
    // Absurd device count must be rejected before sizing any allocation.
    std::vector<std::uint8_t> bad(bytes.begin(), bytes.begin() + 7);
    put_u32(bad, 0xffffffffu);
    pos = 0;
    EXPECT_THROW(decode_measurement(bad, pos, out), WireError);
  }
}

TEST(WireCodec, EveryTruncationThrowsInsteadOfCrashing) {
  uwp::Rng rng(13);
  std::vector<std::uint8_t> bytes;
  encode_measurement(make_measurement(5, rng), bytes);

  pipeline::RoundMeasurement out;
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(len));
    std::size_t pos = 0;
    EXPECT_THROW(decode_measurement(cut, pos, out), WireError) << "len=" << len;
  }
}

TEST(WireCodec, FuzzRoundTripAndMutationSafety) {
  // Deterministically seeded randomized sweep: round trips must be exact for
  // arbitrary well-formed measurements, and random single-byte corruption
  // must never crash — it either still parses or throws WireError.
  uwp::Rng rng(0xF022);
  std::size_t parsed_after_mutation = 0;
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 10));
    const pipeline::RoundMeasurement m = make_measurement(n, rng);

    std::vector<std::uint8_t> bytes;
    encode_measurement(m, bytes);
    pipeline::RoundMeasurement back;
    std::size_t pos = 0;
    decode_measurement(bytes, pos, back);
    ASSERT_TRUE(bit_equal(m, back)) << "iter " << iter;
    std::vector<std::uint8_t> again;
    encode_measurement(back, again);
    ASSERT_EQ(bytes, again) << "iter " << iter;

    std::vector<std::uint8_t> mutated = bytes;
    const std::size_t at = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(mutated.size()) - 1));
    mutated[at] ^= static_cast<std::uint8_t>(1 + rng.uniform_int(0, 254));
    try {
      pos = 0;
      decode_measurement(mutated, pos, back);
      ++parsed_after_mutation;  // e.g. a flipped double payload bit: fine
    } catch (const WireError&) {
      // equally fine
    }
  }
  // Most mutations land in f64 payload bytes and still parse; the point is
  // that none of the 200 crashed or threw anything but WireError.
  EXPECT_GT(parsed_after_mutation, 0u);
}

}  // namespace
}  // namespace uwp::fleet
