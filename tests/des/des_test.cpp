#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "des/event_queue.hpp"
#include "des/medium.hpp"
#include "des/mobility.hpp"

namespace uwp::des {
namespace {

TEST(EventQueue, OrdersByTimeThenInsertion) {
  EventQueue q;
  std::vector<int> fired;
  q.push(2.0, [&] { fired.push_back(2); });
  q.push(1.0, [&] { fired.push_back(10); });
  q.push(1.0, [&] { fired.push_back(11); });  // same time: FIFO
  q.push(0.5, [&] { fired.push_back(0); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{0, 10, 11, 2}));
}

TEST(EventQueue, RejectsBadInput) {
  EventQueue q;
  EXPECT_THROW(q.pop(), std::logic_error);
  EXPECT_THROW(q.next_time(), std::logic_error);
  EXPECT_THROW(q.push(std::numeric_limits<double>::infinity(), [] {}),
               std::invalid_argument);
}

TEST(Simulator, AdvancesMonotonicallyAndSupportsNestedScheduling) {
  Simulator sim;
  std::vector<double> times;
  sim.at(1.0, [&] {
    times.push_back(sim.now());
    sim.in(0.5, [&] { times.push_back(sim.now()); });  // nested event
  });
  sim.at(2.0, [&] { times.push_back(sim.now()); });
  const std::size_t n = sim.run();
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(times, (std::vector<double>{1.0, 1.5, 2.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Simulator, RunUntilLeavesLaterEventsQueued) {
  Simulator sim;
  int fired = 0;
  sim.at(1.0, [&] { ++fired; });
  sim.at(3.0, [&] { ++fired; });
  EXPECT_EQ(sim.run_until(2.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);  // advances even with nothing to run
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, SchedulingIntoThePastThrows) {
  Simulator sim;
  sim.at(1.0, [] {});
  sim.run();
  EXPECT_THROW(sim.at(0.5, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.in(-0.1, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.run_until(0.5), std::invalid_argument);
}

TEST(Mobility, StaticHoldsPositions) {
  const StaticMobility mob({{0, 0, 1}, {10, 0, 2}});
  EXPECT_EQ(mob.size(), 2u);
  EXPECT_EQ(mob.position(1, 0.0), (Vec3{10, 0, 2}));
  EXPECT_EQ(mob.position(1, 123.0), (Vec3{10, 0, 2}));
  EXPECT_THROW(mob.position(2, 0.0), std::invalid_argument);
}

TEST(Mobility, LawnmowerSweepsBackAndForth) {
  LawnmowerMobility mob({{3, 0, 1}, {0, 0, 1}});
  LawnmowerTrack track;
  track.direction = {1, 0, 0};
  track.span_m = 15.0;
  track.speed_mps = 0.5;  // period = 60 s
  mob.set_track(0, track);

  EXPECT_NEAR(mob.position(0, 0.0).x, 3.0, 1e-12);
  EXPECT_NEAR(mob.position(0, 15.0).x, 3.0 + 7.5, 1e-12);  // quarter period
  EXPECT_NEAR(mob.position(0, 30.0).x, 3.0 + 15.0, 1e-12); // far end
  EXPECT_NEAR(mob.position(0, 60.0).x, 3.0, 1e-9);         // full period
  // The untracked node never moves.
  EXPECT_EQ(mob.position(1, 42.0), (Vec3{0, 0, 1}));
  // Continuous motion: positions 1 s apart differ by exactly the speed.
  const double dx = mob.position(0, 11.0).x - mob.position(0, 10.0).x;
  EXPECT_NEAR(std::abs(dx), 0.5, 1e-9);
}

TEST(Mobility, WaypointLoopsThroughTour) {
  WaypointMobility mob({{0, 0, 0}});
  WaypointTrack track;
  track.waypoints = {{0, 0, 1}, {10, 0, 1}, {10, 10, 1}, {0, 10, 1}};
  track.speed_mps = 1.0;  // 40 m tour -> 40 s loop
  mob.set_track(0, track);

  EXPECT_NEAR(mob.position(0, 0.0).x, 0.0, 1e-12);
  EXPECT_NEAR(mob.position(0, 5.0).x, 5.0, 1e-12);
  EXPECT_NEAR(mob.position(0, 10.0).x, 10.0, 1e-12);
  EXPECT_NEAR(mob.position(0, 15.0).y, 5.0, 1e-12);
  // Loop closure: one full tour later, back at the start.
  EXPECT_NEAR(distance(mob.position(0, 41.0), mob.position(0, 1.0)), 0.0, 1e-9);
  EXPECT_THROW(mob.set_track(0, WaypointTrack{}), std::invalid_argument);
}

// --- Medium -----------------------------------------------------------------

struct Delivery {
  std::size_t rx, src;
  double detected;
};

struct MediumFixture : public ::testing::Test {
  // Three static nodes on a line, 15 m apart (10 ms hops at 1500 m/s).
  MediumFixture()
      : mobility({{0, 0, 1}, {15, 0, 1}, {30, 0, 1}}),
        medium(make_cfg(), &sim, &mobility, Matrix(3, 3, 1.0)) {
    medium.begin_round(0);
    medium.set_sink([this](std::size_t rx, std::size_t src, double detected) {
      deliveries.push_back({rx, src, detected});
    });
  }

  static MediumConfig make_cfg() {
    MediumConfig mc;
    mc.sound_speed_mps = 1500.0;
    mc.packet_duration_s = 0.278;
    return mc;
  }

  Simulator sim;
  StaticMobility mobility;
  AcousticMedium medium;
  std::vector<Delivery> deliveries;
};

TEST_F(MediumFixture, CleanTransmissionReachesAllConnectedReceivers) {
  sim.at(0.0, [&] { medium.transmit(0); });
  sim.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0].rx, 1u);
  EXPECT_NEAR(deliveries[0].detected, 15.0 / 1500.0, 1e-12);
  EXPECT_EQ(deliveries[1].rx, 2u);
  EXPECT_NEAR(deliveries[1].detected, 30.0 / 1500.0, 1e-12);
  EXPECT_EQ(medium.stats().deliveries, 2u);
  EXPECT_EQ(medium.stats().collisions, 0u);
}

TEST_F(MediumFixture, ArrivalErrorHookShiftsDetectionAndNanDrops) {
  medium.set_error_hook([](std::size_t at, std::size_t) {
    if (at == 2) return std::numeric_limits<double>::quiet_NaN();
    return 1e-3;
  });
  sim.at(0.0, [&] { medium.transmit(0); });
  sim.run();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].rx, 1u);
  EXPECT_NEAR(deliveries[0].detected, 15.0 / 1500.0 + 1e-3, 1e-12);
  EXPECT_EQ(medium.stats().detect_failures, 1u);
}

TEST_F(MediumFixture, OverlappingTransmissionsCollideAtTheReceiver) {
  // Nodes 0 and 2 transmit almost simultaneously; their packets overlap at
  // node 1 for ~all of the 278 ms duration -> both corrupted. Each of the
  // transmitters also misses the other's packet (half-duplex).
  sim.at(0.0, [&] { medium.transmit(0); });
  sim.at(0.001, [&] { medium.transmit(2); });
  sim.run();
  EXPECT_TRUE(deliveries.empty());
  EXPECT_EQ(medium.stats().collisions, 2u);
  EXPECT_EQ(medium.stats().half_duplex_drops, 2u);
  EXPECT_EQ(medium.stats().deliveries, 0u);
}

TEST_F(MediumFixture, HalfDuplexReceiverMissesPacketWhileTransmitting) {
  // Node 1 starts transmitting just before node 0's packet arrives at it.
  sim.at(0.0, [&] { medium.transmit(0); });
  sim.at(0.009, [&] { medium.transmit(1); });
  sim.run();
  // Node 0 hears node 1? Node 1's packet arrives at node 0 at 0.019, while
  // node 0 transmits 0.0-0.278 -> also half-duplex dropped. Node 2 receives
  // both cleanly only if they don't overlap there: arrivals at 0.02 and
  // 0.019 -> they do overlap -> collision.
  EXPECT_EQ(medium.stats().half_duplex_drops, 2u);
  EXPECT_EQ(medium.stats().collisions, 2u);
  EXPECT_TRUE(deliveries.empty());
}

TEST_F(MediumFixture, SequentialSlotsDoNotCollide) {
  sim.at(0.0, [&] { medium.transmit(0); });
  sim.at(0.320, [&] { medium.transmit(1); });  // one delta1 later
  sim.run();
  // 0 -> {1, 2} and 1 -> {0, 2} all clean.
  EXPECT_EQ(medium.stats().deliveries, 4u);
  EXPECT_EQ(medium.stats().collisions, 0u);
  EXPECT_EQ(medium.stats().half_duplex_drops, 0u);
}

TEST_F(MediumFixture, RangeGateDropsFarLinks) {
  MediumConfig mc = make_cfg();
  mc.max_range_m = 20.0;
  AcousticMedium gated(mc, &sim, &mobility, Matrix(3, 3, 1.0));
  gated.begin_round(0);
  std::vector<Delivery> got;
  gated.set_sink([&](std::size_t rx, std::size_t src, double detected) {
    got.push_back({rx, src, detected});
  });
  sim.at(0.0, [&] { gated.transmit(0); });
  sim.run();
  ASSERT_EQ(got.size(), 1u);  // node 2 at 30 m is out of range
  EXPECT_EQ(got[0].rx, 1u);
}

TEST_F(MediumFixture, TraceRecordsEveryMediumEvent) {
  sim::PacketTrace trace;
  medium.set_trace(&trace);
  medium.begin_round(7);
  medium.set_error_hook([](std::size_t at, std::size_t) {
    return at == 2 ? std::numeric_limits<double>::quiet_NaN() : 0.0;
  });
  sim.at(0.0, [&] { medium.transmit(0); });
  sim.run();
  ASSERT_EQ(trace.size(), 3u);  // tx_start + deliver + detect_fail
  EXPECT_EQ(trace.events[0].kind, sim::PacketEventKind::kTxStart);
  EXPECT_EQ(trace.events[0].round, 7u);
  EXPECT_EQ(trace.events[1].kind, sim::PacketEventKind::kRxDeliver);
  EXPECT_EQ(trace.events[2].kind, sim::PacketEventKind::kRxDetectFail);
  EXPECT_EQ(trace.events[2].rx, 2u);
}

TEST_F(MediumFixture, BeginRoundInvalidatesInFlightPackets) {
  sim.at(0.0, [&] { medium.transmit(0); });
  // Abort the round while the packet is still in the air.
  sim.at(0.005, [&] { medium.begin_round(1); });
  sim.run();
  EXPECT_TRUE(deliveries.empty());
  EXPECT_EQ(medium.stats().deliveries, 0u);
}

}  // namespace
}  // namespace uwp::des
