// Cross-validation of the packet-level DES against the closed-form protocol
// model, plus the determinism contract that lets DES trials ride the
// parallel SweepRunner bit-identically.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <sstream>

#include "des/scenario.hpp"
#include "proto/timestamp_protocol.hpp"
#include "sim/sweep.hpp"

namespace uwp::des {
namespace {

// The ProtocolFixture topology from the closed-form tests: 5 devices in a
// line, 8 m apart, distinct stream-start offsets.
struct CrossValidationFixture : public ::testing::Test {
  CrossValidationFixture() {
    cfg.num_devices = 5;
    for (std::size_t i = 0; i < 5; ++i) {
      positions.push_back({static_cast<double>(i) * 8.0, 0.0, 2.0});
      audio::AudioTimingConfig a;
      a.speaker_start_s = 0.3 * static_cast<double>(i);
      a.mic_start_s = 0.1 * static_cast<double>(i) + 0.05;
      a.self_loopback_delay_s = 0.0;
      audio.push_back(a);
    }
    conn = Matrix(5, 5, 1.0);
    for (std::size_t i = 0; i < 5; ++i) conn(i, i) = 0.0;
  }

  proto::ProtocolRun closed_form() const {
    std::vector<proto::ProtocolDevice> devices;
    for (std::size_t i = 0; i < 5; ++i) devices.push_back({i, positions[i], audio[i]});
    const proto::TimestampProtocol protocol(cfg, devices);
    uwp::Rng rng(1);
    return protocol.run(conn, rng);
  }

  DesScenarioResult des(std::size_t rounds = 1) const {
    DesScenarioConfig dcfg;
    dcfg.protocol = cfg;
    dcfg.rounds = rounds;
    dcfg.ideal_arrivals = true;
    dcfg.quantize_payload = false;
    dcfg.sound_speed_error_mps = 0.0;
    const DesScenario scenario(dcfg, std::make_shared<StaticMobility>(positions),
                               audio, conn);
    uwp::Rng rng(2);
    return scenario.run(rng);
  }

  proto::ProtocolConfig cfg{};
  std::vector<Vec3> positions;
  std::vector<audio::AudioTimingConfig> audio;
  Matrix conn;
};

// Acceptance: a collision-free static DES round reproduces the closed-form
// timestamp table within payload quantization (2 samples at fs).
TEST_F(CrossValidationFixture, DesRoundMatchesClosedFormTimestamps) {
  const proto::ProtocolRun reference = closed_form();
  const DesScenarioResult result = des();
  ASSERT_EQ(result.rounds.size(), 1u);
  const proto::ProtocolRun& run = result.rounds[0].protocol;

  const double tol = 2.0 / cfg.fs_hz;  // §2.4 payload quantization step
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(run.sync_ref[i], reference.sync_ref[i]) << "device " << i;
    ASSERT_FALSE(std::isnan(run.tx_global[i]));
    EXPECT_NEAR(run.tx_global[i], reference.tx_global[i], 1e-9) << "device " << i;
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_EQ(run.heard(i, j) > 0.0, reference.heard(i, j) > 0.0)
          << i << "," << j;
      if (reference.heard(i, j) <= 0.0) continue;
      EXPECT_NEAR(run.timestamps(i, j), reference.timestamps(i, j), tol)
          << i << "," << j;
    }
  }
  EXPECT_NEAR(run.round_duration_s, reference.round_duration_s, 0.05);
}

TEST_F(CrossValidationFixture, MatchHoldsUnderClockSkewAndLoopback) {
  for (std::size_t i = 0; i < 5; ++i) {
    audio[i].speaker_skew_ppm = 40.0;
    audio[i].mic_skew_ppm = -35.0;
    audio[i].self_loopback_delay_s = 0.11e-3;
  }
  const proto::ProtocolRun reference = closed_form();
  const DesScenarioResult result = des();
  const proto::ProtocolRun& run = result.rounds[0].protocol;
  const double tol = 2.0 / cfg.fs_hz;
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 5; ++j) {
      if (reference.heard(i, j) <= 0.0) continue;
      ASSERT_GT(run.heard(i, j), 0.0) << i << "," << j;
      EXPECT_NEAR(run.timestamps(i, j), reference.timestamps(i, j), tol)
          << i << "," << j;
    }
}

TEST_F(CrossValidationFixture, DesRangingRecoversTrueDistances) {
  const DesScenarioResult result = des();
  const proto::RangingSolution& sol = result.rounds[0].ranging;
  EXPECT_EQ(sol.two_way_links, 10u);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = i + 1; j < 5; ++j)
      EXPECT_NEAR(sol.distances(i, j), static_cast<double>(j - i) * 8.0, 0.12)
          << i << "," << j;
  EXPECT_EQ(result.localized_rounds, 1u);
  EXPECT_EQ(result.rounds[0].medium.collisions, 0u);
}

TEST_F(CrossValidationFixture, EveryRoundOfAStaticScenarioRanges) {
  const DesScenarioResult result = des(4);
  ASSERT_EQ(result.rounds.size(), 4u);
  for (const DesRound& round : result.rounds) {
    EXPECT_EQ(round.ranging.two_way_links, 10u) << "round " << round.index;
    EXPECT_NEAR(round.ranging.distances(1, 3), 16.0, 0.12) << round.index;
  }
  // Tracker errors exist from round 1 on and stay bounded.
  EXPECT_GE(result.tracked_errors.size(), 12u);
}

TEST_F(CrossValidationFixture, RelaySyncInNormalSlot) {
  // Device 4 cannot hear the leader or device 1; it syncs off device 2's
  // message ((4-2) * delta1 > delta0 -> the normal slot still works).
  conn(4, 0) = conn(0, 4) = 0.0;
  conn(4, 1) = conn(1, 4) = 0.0;
  const DesScenarioResult result = des();
  const proto::ProtocolRun& run = result.rounds[0].protocol;
  EXPECT_EQ(run.sync_ref[4], 2u);
  EXPECT_FALSE(std::isnan(run.tx_global[4]));
  EXPECT_GT(run.heard(3, 4), 0.0);
  EXPECT_NEAR(result.rounds[0].ranging.distances(3, 4), 8.0, 0.15);
}

TEST_F(CrossValidationFixture, RelaySyncWrapAroundSlot) {
  // Device 2 hears everyone but the leader; its first detection is device
  // 1's message, and (2-1) * delta1 < delta0 means its normal slot has
  // already passed -> it transmits in the wrap-around slot N - 1 + 2.
  conn(2, 0) = conn(0, 2) = 0.0;
  const DesScenarioResult result = des();
  const proto::ProtocolRun& run = result.rounds[0].protocol;
  EXPECT_EQ(run.sync_ref[2], 1u);
  ASSERT_FALSE(std::isnan(run.tx_global[2]));
  // Wrap slot lands after every normal slot (last one is device 4's).
  EXPECT_GT(run.tx_global[2], run.tx_global[4]);
  const double expected_slot =
      proto::slot_time_relay_sync(cfg, 2, 1, 0.0);  // (5 - 1 + 2) * delta1
  // tx = first-detection instant + slot, through the audio pipeline.
  const double detect = run.tx_global[1] + 8.0 / cfg.sound_speed_mps;
  EXPECT_NEAR(run.tx_global[2], detect + expected_slot, 1e-3);
  // The leader stays deaf to it, but its neighbors hear the wrap-around
  // transmission and its distances survive.
  EXPECT_EQ(run.heard(0, 2), 0.0);
  EXPECT_GT(run.heard(3, 2), 0.0);
  EXPECT_NEAR(result.rounds[0].ranging.distances(2, 3), 8.0, 0.15);
}

// --- Determinism / sweep integration ---------------------------------------

std::shared_ptr<const MobilityModel> make_swarm_mobility(std::size_t n) {
  // 4 x 5 grid over ~48 x 36 m with slightly varied depths; three nodes ride
  // lawnmower tracks so positions change *during* rounds.
  std::vector<Vec3> origins;
  for (std::size_t i = 0; i < n; ++i) {
    origins.push_back({3.0 + static_cast<double>(i % 5) * 12.0,
                       static_cast<double>(i / 5) * 12.0,
                       1.0 + 0.1 * static_cast<double>(i)});
  }
  auto mob = std::make_shared<LawnmowerMobility>(std::move(origins));
  for (std::size_t node : {5u, 9u, 13u}) {
    LawnmowerTrack track;
    track.direction = {0.0, 1.0, 0.0};
    track.span_m = 8.0;
    track.speed_mps = 0.45;
    track.phase_s = static_cast<double>(node);
    mob->set_track(node, track);
  }
  return mob;
}

DesScenario make_swarm_scenario(std::size_t n, std::size_t rounds) {
  DesScenarioConfig cfg;
  cfg.protocol.num_devices = n;
  cfg.rounds = rounds;
  cfg.arrival.detection_failure_prob = 0.02;
  std::vector<audio::AudioTimingConfig> audio(n);
  for (std::size_t i = 0; i < n; ++i) {
    audio[i].speaker_start_s = 0.17 * static_cast<double>(i);
    audio[i].mic_start_s = 0.05 + 0.11 * static_cast<double>(i);
    audio[i].speaker_skew_ppm = (i % 2 ? 1.0 : -1.0) * static_cast<double>(i);
    audio[i].mic_skew_ppm = (i % 3 ? -0.5 : 0.5) * static_cast<double>(i);
  }
  Matrix conn(n, n, 1.0);
  for (std::size_t i = 0; i < n; ++i) conn(i, i) = 0.0;
  return DesScenario(cfg, make_swarm_mobility(n), std::move(audio),
                     std::move(conn));
}

TEST(DesDeterminism, IdenticalSeedsReplayBitIdentically) {
  const DesScenario scenario = make_swarm_scenario(20, 3);
  uwp::Rng a(77), b(77);
  const DesScenarioResult ra = scenario.run(a);
  const DesScenarioResult rb = scenario.run(b);
  ASSERT_EQ(ra.errors.size(), rb.errors.size());
  for (std::size_t k = 0; k < ra.errors.size(); ++k)
    EXPECT_EQ(ra.errors[k], rb.errors[k]) << k;  // bitwise, not approximate
  EXPECT_EQ(ra.total_deliveries, rb.total_deliveries);
  EXPECT_EQ(ra.total_collisions, rb.total_collisions);
}

// Acceptance: a >= 20-node, >= 10-round mobile DES scenario produces
// bit-identical sweep output at 1 and N threads.
TEST(DesDeterminism, SweepOutputBitIdenticalAcrossThreadCounts) {
  const DesScenario scenario = make_swarm_scenario(20, 10);
  const auto trial = [&scenario](std::size_t, uwp::Rng& rng) {
    DesScenarioResult r = scenario.run(rng);
    // Mix raw and tracked errors so both paths are covered by the check.
    r.errors.insert(r.errors.end(), r.tracked_errors.begin(),
                    r.tracked_errors.end());
    return r.errors;
  };

  sim::SweepOptions serial;
  serial.trials = 3;
  serial.master_seed = 0xDE5;
  serial.threads = 1;
  sim::SweepOptions parallel = serial;
  parallel.threads = 4;

  const sim::SweepResult rs = sim::SweepRunner(serial).run(trial);
  const sim::SweepResult rp = sim::SweepRunner(parallel).run(trial);
  EXPECT_EQ(rs.failed_trials, 0u);
  EXPECT_EQ(rp.failed_trials, 0u);
  ASSERT_FALSE(rs.samples.empty());
  ASSERT_EQ(rs.samples.size(), rp.samples.size());
  for (std::size_t k = 0; k < rs.samples.size(); ++k)
    EXPECT_EQ(rs.samples[k], rp.samples[k]) << k;
}

TEST(DesTrace, PacketTraceWritesCsv) {
  const DesScenario scenario = make_swarm_scenario(20, 1);
  uwp::Rng rng(5);
  sim::PacketTrace trace;
  const DesScenarioResult result = scenario.run(rng, &trace);
  ASSERT_GT(trace.size(), 0u);
  EXPECT_GE(trace.size(), result.total_deliveries + 20u);  // + tx_start rows

  std::ostringstream csv;
  sim::write_packet_trace_csv(csv, trace);
  const std::string text = csv.str();
  EXPECT_EQ(text.rfind("time_s,round,tx,rx,event,collision\n", 0), 0u);
  const std::size_t lines =
      static_cast<std::size_t>(std::count(text.begin(), text.end(), '\n'));
  EXPECT_EQ(lines, trace.size() + 1);
  EXPECT_NE(text.find("rx_deliver"), std::string::npos);
  EXPECT_NE(text.find("tx_start"), std::string::npos);
}

}  // namespace
}  // namespace uwp::des
