#include <gtest/gtest.h>

#include <cmath>

#include "audio/calibration.hpp"
#include "audio/device_audio.hpp"
#include "audio/sample_clock.hpp"
#include "audio/stream_buffer.hpp"
#include "util/random.hpp"

namespace uwp::audio {
namespace {

TEST(SampleClock, NominalRoundTrip) {
  SampleClock c(44100.0, 0.0, 1.25);
  EXPECT_DOUBLE_EQ(c.fs_actual(), 44100.0);
  EXPECT_DOUBLE_EQ(c.time_at(0.0), 1.25);
  EXPECT_NEAR(c.index_at(c.time_at(12345.0)), 12345.0, 1e-9);
}

TEST(SampleClock, SkewShiftsActualRate) {
  SampleClock c(44100.0, 80.0, 0.0);
  // Positive ppm: fs_actual = fs / (1 - 80e-6) > fs.
  EXPECT_GT(c.fs_actual(), 44100.0);
  EXPECT_NEAR(c.fs_actual(), 44100.0 * (1.0 + 80e-6), 1.0);
}

TEST(SampleClock, OneSecondOfSamplesTakesSkewedTime) {
  SampleClock c(44100.0, 50.0, 0.0);
  const double elapsed = c.time_at(44100.0) - c.time_at(0.0);
  // Faster clock consumes 44100 samples in slightly less than a second.
  EXPECT_LT(elapsed, 1.0);
  EXPECT_NEAR(elapsed, 1.0 - 50e-6, 1e-9);
}

TEST(StreamBuffer, MixAtGrowsAndAdds) {
  StreamBuffer sb;
  const std::vector<double> w = {1, 2, 3};
  sb.mix_at(5, w);
  EXPECT_EQ(sb.size(), 8u);
  EXPECT_DOUBLE_EQ(sb.read(4), 0.0);
  EXPECT_DOUBLE_EQ(sb.read(6), 2.0);
  sb.mix_at(6, w);  // overlapping mix adds
  EXPECT_DOUBLE_EQ(sb.read(6), 3.0);
}

TEST(StreamBuffer, WindowZeroPads) {
  StreamBuffer sb;
  sb.mix_at(0, std::vector<double>{1, 2});
  const auto win = sb.window(1, 4);
  ASSERT_EQ(win.size(), 4u);
  EXPECT_DOUBLE_EQ(win[0], 2.0);
  EXPECT_DOUBLE_EQ(win[1], 0.0);
}

TEST(DeviceAudio, CalibrationMeasuresBufferOffset) {
  AudioTimingConfig cfg;
  cfg.speaker_start_s = 0.7;
  cfg.mic_start_s = 0.25;
  DeviceAudio dev(cfg);
  EXPECT_FALSE(dev.calibrated());
  dev.calibrate();
  EXPECT_TRUE(dev.calibrated());
  // Speaker started later: at the same global time the mic index is larger,
  // so the offset n1 - m1 is negative by roughly (0.45 s + delta2) * fs.
  const double expected =
      -(0.45 + cfg.self_loopback_delay_s) * cfg.fs_nominal_hz;
  EXPECT_NEAR(static_cast<double>(dev.buffer_offset()), expected, 2.0);
}

TEST(DeviceAudio, UncalibratedThrows) {
  DeviceAudio dev(AudioTimingConfig{});
  EXPECT_THROW(dev.buffer_offset(), std::logic_error);
  EXPECT_THROW(dev.reply_index_for(100, 0.1), std::logic_error);
}

TEST(DeviceAudio, PerfectClocksReplyExactly) {
  AudioTimingConfig cfg;
  cfg.speaker_start_s = 1.3;
  cfg.mic_start_s = 0.2;
  DeviceAudio dev(cfg);
  dev.calibrate();
  const std::int64_t m2 = 100000;
  const double t_reply = 0.6;
  const std::int64_t n2 = dev.reply_index_for(m2, t_reply);
  // Without skew the realized interval equals the desired one to within the
  // 1-sample calibration rounding.
  EXPECT_NEAR(dev.realized_reply_interval(m2, n2), t_reply, 2.0 / cfg.fs_nominal_hz);
}

TEST(DeviceAudio, SkewErrorMatchesEquationSix) {
  AudioTimingConfig cfg;
  cfg.speaker_skew_ppm = 35.0;   // alpha
  cfg.mic_skew_ppm = -20.0;      // beta
  cfg.speaker_start_s = 0.9;
  cfg.mic_start_s = 0.1;
  DeviceAudio dev(cfg);
  dev.calibrate();
  const double t_reply = 0.92;  // delta0 + slot
  const std::int64_t m2 = dev.calibration_m1() + 2500000;  // ~57 s later
  const std::int64_t n2 = dev.reply_index_for(m2, t_reply);
  const double realized = dev.realized_reply_interval(m2, n2);
  const double predicted = dev.predicted_reply_error(m2, t_reply);
  EXPECT_NEAR(realized - t_reply, predicted, 5e-5);
  // The error is dominated by (m2 - m1)(beta - alpha)/fs here, and with
  // 55 ppm spread over ~57 s it is in the milliseconds.
  EXPECT_GT(std::abs(predicted), 1e-3);
}

TEST(DeviceAudio, RecalibrationResetsErrorGrowth) {
  AudioTimingConfig cfg;
  cfg.speaker_skew_ppm = 30.0;
  cfg.mic_skew_ppm = -30.0;
  DeviceAudio dev(cfg);
  dev.calibrate();
  const std::int64_t far = dev.calibration_m1() + 5000000;
  const double before = std::abs(dev.predicted_reply_error(far, 0.5));
  // Fresh (n, m) observation near `far` collapses the second error term.
  const double m_new = dev.mic_index_for_speaker_emission(
      static_cast<double>(far), cfg.self_loopback_delay_s);
  dev.recalibrate(far, static_cast<std::int64_t>(std::llround(m_new)));
  const double after = std::abs(dev.predicted_reply_error(far + 1000, 0.5));
  EXPECT_LT(after, before / 10.0);
}

TEST(Calibration, SignalDetectedAtInsertionPoint) {
  const auto sig = make_calibration_signal(44100.0);
  std::vector<double> stream(20000, 0.0);
  uwp::Rng rng(9);
  for (double& v : stream) v = rng.normal(0.0, 0.01);
  for (std::size_t i = 0; i < sig.size(); ++i) stream[7000 + i] += sig[i];
  const auto found = detect_calibration(stream, sig);
  ASSERT_TRUE(found.has_value());
  EXPECT_NEAR(static_cast<double>(*found), 7000.0, 1.0);
}

TEST(Calibration, NoSignalReturnsNullopt) {
  const auto sig = make_calibration_signal(44100.0);
  uwp::Rng rng(10);
  std::vector<double> stream(20000);
  for (double& v : stream) v = rng.normal(0.0, 0.01);
  EXPECT_FALSE(detect_calibration(stream, sig).has_value());
}

TEST(Calibration, FullLoopbackPipelineRecoversOffset) {
  // End-to-end: write the calibration signal into a speaker stream, render
  // it into the mic stream after the loopback delay, detect, and verify the
  // measured offset matches DeviceAudio's analytic calibration.
  AudioTimingConfig cfg;
  cfg.speaker_start_s = 0.5;
  cfg.mic_start_s = 0.1;
  DeviceAudio dev(cfg);

  const auto sig = make_calibration_signal(44100.0);
  const std::int64_t n1 = 4096;
  StreamBuffer mic(dev.mic_clock());
  const double m_exact =
      dev.mic_index_for_speaker_emission(static_cast<double>(n1),
                                         cfg.self_loopback_delay_s);
  mic.ensure_size(60000);
  mic.mix_at(static_cast<std::size_t>(std::llround(m_exact)), sig);

  const auto detected = detect_calibration(mic.window(0, mic.size()), sig);
  ASSERT_TRUE(detected.has_value());
  dev.calibrate(n1);
  EXPECT_NEAR(static_cast<double>(n1) - static_cast<double>(*detected),
              static_cast<double>(dev.buffer_offset()), 1.5);
}

}  // namespace
}  // namespace uwp::audio
