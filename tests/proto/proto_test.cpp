#include <gtest/gtest.h>

#include <cmath>

#include "proto/payload_codec.hpp"
#include "proto/ranging_solver.hpp"
#include "proto/slot_schedule.hpp"
#include "proto/timestamp_protocol.hpp"
#include "proto/uplink.hpp"
#include "sim/deployment.hpp"

namespace uwp::proto {
namespace {

TEST(SlotSchedule, PaperConstants) {
  const ProtocolConfig cfg;
  EXPECT_DOUBLE_EQ(cfg.delta1_s(), 0.320);
  EXPECT_DOUBLE_EQ(cfg.tau_max_s(), 0.021);
  EXPECT_NEAR(cfg.max_range_m(), 31.5, 0.1);  // ~32 m in the paper
}

TEST(SlotSchedule, LeaderSyncSlots) {
  const ProtocolConfig cfg;
  EXPECT_DOUBLE_EQ(slot_time_leader_sync(cfg, 1), 0.600);
  EXPECT_DOUBLE_EQ(slot_time_leader_sync(cfg, 2), 0.920);
  EXPECT_DOUBLE_EQ(slot_time_leader_sync(cfg, 4), 1.560);
  EXPECT_THROW(slot_time_leader_sync(cfg, 0), std::invalid_argument);
  EXPECT_THROW(slot_time_leader_sync(cfg, 5), std::invalid_argument);
}

TEST(SlotSchedule, RelaySyncFutureSlot) {
  ProtocolConfig cfg;
  cfg.num_devices = 6;
  // Device 5 hears device 1 first: (5-1)*0.32 = 1.28 > 0.6 -> normal slot.
  EXPECT_TRUE(relay_slot_in_future(cfg, 5, 1));
  EXPECT_DOUBLE_EQ(slot_time_relay_sync(cfg, 5, 1, 0.0), 4 * 0.320);
  // Device 2 hears device 1: (2-1)*0.32 = 0.32 < 0.6 -> missed, wrap around.
  EXPECT_FALSE(relay_slot_in_future(cfg, 2, 1));
  EXPECT_DOUBLE_EQ(slot_time_relay_sync(cfg, 2, 1, 0.0), (6 - 1 + 2) * 0.320);
}

TEST(SlotSchedule, RelayWrapAroundWhenNormalSlotHasPassed) {
  ProtocolConfig cfg;
  cfg.num_devices = 8;
  // Device 3 hears device 2 first: (3-2)*0.32 = 0.32 < 0.6 -> its slot has
  // passed; it must wait for slot N - ref + id = 8 - 2 + 3 = 9.
  EXPECT_FALSE(relay_slot_in_future(cfg, 3, 2));
  EXPECT_DOUBLE_EQ(slot_time_relay_sync(cfg, 3, 2, 0.0), 9.0 * cfg.delta1_s());
  // The wrap-around slot lands after every normal slot, so it cannot
  // collide with a leader-synced device (last normal slot is N - 1 - ref).
  EXPECT_GT(slot_time_relay_sync(cfg, 3, 2, 0.0),
            static_cast<double>(cfg.num_devices - 1 - 2) * cfg.delta1_s());
  // A non-zero reference timestamp shifts the slot rigidly.
  EXPECT_DOUBLE_EQ(slot_time_relay_sync(cfg, 3, 2, 1.5),
                   1.5 + 9.0 * cfg.delta1_s());
  // Hearing a LATER device always means the own slot has passed.
  EXPECT_FALSE(relay_slot_in_future(cfg, 2, 5));
  EXPECT_DOUBLE_EQ(slot_time_relay_sync(cfg, 2, 5, 0.0),
                   (8.0 - 5.0 + 2.0) * cfg.delta1_s());
}

TEST(SlotSchedule, RelaySlotInFutureBoundaryIsExclusive) {
  // The paper's condition is strict: (i - j) * delta1 > delta0. Pick delta0
  // = 2 * delta1 so (i - j) = 2 sits exactly on the boundary -> NOT in the
  // future (transmitting at that instant would already be late).
  ProtocolConfig cfg;
  cfg.num_devices = 8;
  cfg.delta0_s = 2.0 * cfg.delta1_s();
  EXPECT_FALSE(relay_slot_in_future(cfg, 4, 2));  // == boundary
  EXPECT_TRUE(relay_slot_in_future(cfg, 5, 2));   // one slot beyond
  EXPECT_FALSE(relay_slot_in_future(cfg, 3, 2));  // clearly passed
  // Same-id and wrong-order inputs are rejected rather than wrapped.
  EXPECT_FALSE(relay_slot_in_future(cfg, 2, 2));
  EXPECT_THROW(slot_time_relay_sync(cfg, 2, 2, 0.0), std::invalid_argument);
  EXPECT_THROW(slot_time_relay_sync(cfg, 0, 2, 0.0), std::invalid_argument);
  EXPECT_THROW(slot_time_relay_sync(cfg, 3, 0, 0.0), std::invalid_argument);
}

TEST(SlotSchedule, RoundTripFormulas) {
  ProtocolConfig cfg;
  // §3.2: measured round times 1.2/1.6/1.9/2.2/2.5 s for N = 3..7 track
  // delta0 + (N-1) delta1 = 1.24, 1.56, 1.88, 2.20, 2.52.
  const double expected[] = {1.24, 1.56, 1.88, 2.20, 2.52};
  for (std::size_t n = 3; n <= 7; ++n) {
    cfg.num_devices = n;
    EXPECT_NEAR(round_trip_all_in_range(cfg), expected[n - 3], 1e-9);
    EXPECT_NEAR(round_trip_worst_case(cfg),
                0.6 + 2.0 * static_cast<double>(n - 1) * 0.32, 1e-9);
  }
}

class ProtocolFixture : public ::testing::Test {
 protected:
  // 5 devices in a line, 8 m apart, all within 32 m of the leader.
  ProtocolFixture() {
    cfg_.num_devices = 5;
    for (std::size_t i = 0; i < 5; ++i) {
      ProtocolDevice d;
      d.id = i;
      d.position = {static_cast<double>(i) * 8.0, 0.0, 2.0};
      d.audio.speaker_start_s = 0.3 * static_cast<double>(i);
      d.audio.mic_start_s = 0.1 * static_cast<double>(i) + 0.05;
      // Zero loopback isolates the pure protocol arithmetic; the bias from a
      // real speaker->own-mic delay gets its own dedicated test below.
      d.audio.self_loopback_delay_s = 0.0;
      devices_.push_back(d);
    }
  }

  Matrix full_connectivity() const {
    Matrix c(5, 5, 1.0);
    for (std::size_t i = 0; i < 5; ++i) c(i, i) = 0.0;
    return c;
  }

  ProtocolConfig cfg_{};
  std::vector<ProtocolDevice> devices_;
};

TEST_F(ProtocolFixture, IdealConditionsExactDistances) {
  const TimestampProtocol proto(cfg_, devices_);
  uwp::Rng rng(1);
  const ProtocolRun run = proto.run(full_connectivity(), rng);
  const RangingSolver solver(cfg_);
  const RangingSolution sol = solver.solve(run);
  EXPECT_EQ(sol.two_way_links, 10u);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = i + 1; j < 5; ++j) {
      const double truth = static_cast<double>(j - i) * 8.0;
      // Sample quantization at 44.1 kHz -> ~3.4 cm per sample; allow 10 cm.
      EXPECT_NEAR(sol.distances(i, j), truth, 0.10) << i << "," << j;
    }
}

TEST_F(ProtocolFixture, AllDevicesSyncToLeaderWhenConnected) {
  const TimestampProtocol proto(cfg_, devices_);
  uwp::Rng rng(2);
  const ProtocolRun run = proto.run(full_connectivity(), rng);
  for (std::size_t i = 1; i < 5; ++i) EXPECT_EQ(run.sync_ref[i], 0u);
  // Transmissions happen in slot order without collisions.
  for (std::size_t i = 1; i + 1 < 5; ++i)
    EXPECT_LT(run.tx_global[i] + cfg_.t_packet_s, run.tx_global[i + 1]);
}

TEST_F(ProtocolFixture, RoundDurationMatchesLatencyAnalysis) {
  const TimestampProtocol proto(cfg_, devices_);
  uwp::Rng rng(3);
  const ProtocolRun run = proto.run(full_connectivity(), rng);
  // Last slot at delta0 + 3*delta1 = 1.56 s; packet + propagation follow.
  // The paper's round formula (1.88 s for N=5) adds that packet's guard.
  const double last_slot = cfg_.delta0_s + 3.0 * cfg_.delta1_s();
  EXPECT_NEAR(run.round_duration_s, last_slot + cfg_.t_packet_s, 0.1);
  EXPECT_LT(run.round_duration_s, round_trip_all_in_range(cfg_) + cfg_.t_packet_s);
}

TEST_F(ProtocolFixture, RelaySyncWhenLeaderOutOfRange) {
  // Device 4 cannot hear the leader (and vice versa) but hears devices 2, 3.
  Matrix conn = full_connectivity();
  conn(4, 0) = conn(0, 4) = 0.0;
  conn(4, 1) = conn(1, 4) = 0.0;
  const TimestampProtocol proto(cfg_, devices_);
  uwp::Rng rng(4);
  const ProtocolRun run = proto.run(conn, rng);
  EXPECT_NE(run.sync_ref[4], 0u);
  EXPECT_NE(run.sync_ref[4], std::numeric_limits<std::size_t>::max());
  // It still transmits and others hear it.
  EXPECT_FALSE(std::isnan(run.tx_global[4]));
  EXPECT_GT(run.heard(3, 4), 0.0);

  const RangingSolver solver(cfg_);
  const RangingSolution sol = solver.solve(run);
  // Distances among connected pairs are still accurate.
  EXPECT_NEAR(sol.distances(3, 4), 8.0, 0.15);
  EXPECT_NEAR(sol.distances(2, 4), 16.0, 0.15);
}

TEST_F(ProtocolFixture, DetectionErrorPropagatesToDistance) {
  const TimestampProtocol proto(cfg_, devices_);
  uwp::Rng rng(5);
  // +1 ms arrival error on link (2 <- 1) only.
  const ProtocolRun run = proto.run(
      full_connectivity(), rng, [](std::size_t at, std::size_t from) {
        return (at == 2 && from == 1) ? 1e-3 : 0.0;
      });
  const RangingSolver solver(cfg_);
  const RangingSolution sol = solver.solve(run);
  // 1 ms one-way error -> c/2 * 1ms = 0.75 m bias on that pair.
  EXPECT_NEAR(sol.distances(1, 2), 8.0 + 0.75, 0.15);
  // Other pairs unaffected.
  EXPECT_NEAR(sol.distances(0, 1), 8.0, 0.15);
}

TEST_F(ProtocolFixture, DetectionFailureDropsLink) {
  const TimestampProtocol proto(cfg_, devices_);
  uwp::Rng rng(6);
  const ProtocolRun run = proto.run(
      full_connectivity(), rng, [](std::size_t at, std::size_t from) {
        if (at == 3 && from == 2) return std::numeric_limits<double>::quiet_NaN();
        return 0.0;
      });
  EXPECT_EQ(run.heard(3, 2), 0.0);
  const RangingSolver solver(cfg_);
  const RangingSolution sol = solver.solve(run);
  // One-way fallback through the leader should still recover the distance.
  EXPECT_GT(sol.weights(2, 3), 0.0);
  EXPECT_EQ(sol.one_way_links, 1u);
  EXPECT_NEAR(sol.distances(2, 3), 8.0, 0.25);
}

TEST_F(ProtocolFixture, IsolatedDeviceNeverTransmits) {
  Matrix conn = full_connectivity();
  for (std::size_t j = 0; j < 5; ++j) conn(4, j) = conn(j, 4) = 0.0;
  const TimestampProtocol proto(cfg_, devices_);
  uwp::Rng rng(7);
  const ProtocolRun run = proto.run(conn, rng);
  EXPECT_TRUE(std::isnan(run.tx_global[4]));
  EXPECT_EQ(run.sync_ref[4], std::numeric_limits<std::size_t>::max());
}

TEST_F(ProtocolFixture, DisconnectedDeviceYieldsEmptyRowAndSolvableRest) {
  // Fully disconnected device 4: sync_ref stays SIZE_MAX, its timestamp row
  // and column are all-NaN/unheard, and the solver must still produce the
  // full distance set among the remaining four without touching device 4.
  Matrix conn = full_connectivity();
  for (std::size_t j = 0; j < 5; ++j) conn(4, j) = conn(j, 4) = 0.0;
  const TimestampProtocol proto(cfg_, devices_);
  uwp::Rng rng(12);
  const ProtocolRun run = proto.run(conn, rng);

  EXPECT_EQ(run.sync_ref[4], std::numeric_limits<std::size_t>::max());
  EXPECT_TRUE(std::isnan(run.tx_global[4]));
  for (std::size_t j = 0; j < 5; ++j) {
    EXPECT_TRUE(std::isnan(run.timestamps(4, j))) << j;
    EXPECT_EQ(run.heard(4, j), 0.0) << j;
    EXPECT_EQ(run.heard(j, 4), 0.0) << j;
  }

  const RangingSolver solver(cfg_);
  const RangingSolution sol = solver.solve(run);
  EXPECT_EQ(sol.two_way_links, 6u);  // C(4,2) among devices 0-3
  for (std::size_t j = 0; j < 5; ++j) {
    EXPECT_EQ(sol.weights(4, j), 0.0) << j;
    EXPECT_EQ(sol.distances(4, j), 0.0) << j;
  }
  EXPECT_NEAR(sol.distances(1, 3), 16.0, 0.12);
  // The round still completes in normal time for the connected devices.
  EXPECT_GT(run.round_duration_s, 0.0);
}

TEST_F(ProtocolFixture, ClockSkewToleratedWithinCentimeters) {
  for (ProtocolDevice& d : devices_) {
    d.audio.speaker_skew_ppm = 40.0;
    d.audio.mic_skew_ppm = -35.0;
  }
  const TimestampProtocol proto(cfg_, devices_);
  uwp::Rng rng(8);
  const ProtocolRun run = proto.run(full_connectivity(), rng);
  const RangingSolver solver(cfg_);
  const RangingSolution sol = solver.solve(run);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = i + 1; j < 5; ++j)
      EXPECT_NEAR(sol.distances(i, j), static_cast<double>(j - i) * 8.0, 0.30);
}

TEST_F(ProtocolFixture, LoopbackDelayBiasMatchesPaperApproximation) {
  // §2.3 ignores the speaker->own-mic propagation delta_2; the two-way
  // distance then reads low by c * (delta_i + delta_j) / 2. Verify the
  // bias is exactly that (and small).
  const double delta2 = 0.11e-3;
  for (ProtocolDevice& d : devices_) d.audio.self_loopback_delay_s = delta2;
  const TimestampProtocol proto(cfg_, devices_);
  uwp::Rng rng(11);
  const ProtocolRun run = proto.run(full_connectivity(), rng);
  const RangingSolver solver(cfg_);
  const RangingSolution sol = solver.solve(run);
  const double expected_bias = cfg_.sound_speed_mps * delta2;  // ~0.165 m
  EXPECT_NEAR(sol.distances(1, 2), 8.0 - expected_bias, 0.08);
  // Leader pairs see half the bias (the leader transmits at its local zero).
  EXPECT_NEAR(sol.distances(0, 1), 8.0 - expected_bias / 2.0, 0.08);
}

// Parameterized sweep: the protocol + solver recover exact distances for
// every group size the paper evaluates (N = 3..8).
class ProtocolSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ProtocolSizeSweep, ExactDistancesAtEverySize) {
  const std::size_t n = GetParam();
  ProtocolConfig cfg;
  cfg.num_devices = n;
  std::vector<ProtocolDevice> devices(n);
  uwp::Rng rng(n * 31 + 1);
  for (std::size_t i = 0; i < n; ++i) {
    devices[i].id = i;
    devices[i].position = {rng.uniform(-14, 14), rng.uniform(-14, 14),
                           rng.uniform(0.5, 3.0)};
    devices[i].audio.self_loopback_delay_s = 0.0;
    devices[i].audio.speaker_start_s = rng.uniform(0.0, 1.0);
    devices[i].audio.mic_start_s = rng.uniform(0.0, 1.0);
  }
  Matrix conn(n, n, 1.0);
  for (std::size_t i = 0; i < n; ++i) conn(i, i) = 0.0;
  const TimestampProtocol proto(cfg, devices);
  const ProtocolRun run = proto.run(conn, rng);
  const RangingSolver solver(cfg);
  const RangingSolution sol = solver.solve(run);
  EXPECT_EQ(sol.two_way_links, n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      const double truth = distance(devices[i].position, devices[j].position);
      EXPECT_NEAR(sol.distances(i, j), truth, 0.12) << i << "," << j << " N=" << n;
    }
  // Round duration: the last device transmits at delta0 + (N-2) delta1; its
  // packet lands t_packet + propagation later. (The paper's round formula
  // delta0 + (N-1) delta1 additionally counts that packet's guard slot.)
  const double last_slot =
      cfg.delta0_s + static_cast<double>(n - 2) * cfg.delta1_s();
  EXPECT_NEAR(run.round_duration_s, last_slot + cfg.t_packet_s, 0.1);
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, ProtocolSizeSweep,
                         ::testing::Values(3, 4, 5, 6, 7, 8));

// Fuzz the payload codec: random reports must round-trip within quantization
// bounds for every group size.
class CodecFuzzSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CodecFuzzSweep, RandomReportsRoundTrip) {
  const std::size_t n = GetParam();
  PayloadCodecConfig cfg;
  cfg.protocol.num_devices = n;
  const PayloadCodec codec(cfg);
  uwp::Rng rng(n * 97 + 5);
  for (int trial = 0; trial < 25; ++trial) {
    DeviceReport report;
    report.depth_m = rng.uniform(0.0, 40.0);
    report.slot_delta_s.assign(n, std::nullopt);
    const auto self = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    for (std::size_t j = 0; j < n; ++j) {
      if (j == self) continue;
      if (rng.bernoulli(0.75)) report.slot_delta_s[j] = rng.uniform(0.0, 0.040);
    }
    const auto bits = codec.encode(report, self);
    ASSERT_EQ(bits.size(), cfg.payload_bits());
    const DeviceReport rt = codec.decode(bits, self);
    EXPECT_NEAR(rt.depth_m, report.depth_m, cfg.depth_resolution_m / 2.0 + 1e-9);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == self) continue;
      ASSERT_EQ(rt.slot_delta_s[j].has_value(), report.slot_delta_s[j].has_value());
      if (rt.slot_delta_s[j]) {
        EXPECT_NEAR(*rt.slot_delta_s[j], *report.slot_delta_s[j],
                    cfg.timestamp_resolution_samples / cfg.protocol.fs_hz + 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, CodecFuzzSweep, ::testing::Values(2, 4, 6, 8));

TEST(PayloadCodec, PaperBitBudget) {
  PayloadCodecConfig cfg;
  cfg.protocol.num_devices = 6;
  const PayloadCodec codec(cfg);
  EXPECT_EQ(codec.config().payload_bits(), 58u);  // 10*(6-1) + 8
}

TEST(PayloadCodec, DepthQuantization) {
  const PayloadCodec codec(PayloadCodecConfig{});
  EXPECT_DOUBLE_EQ(codec.dequantize_depth(codec.quantize_depth(3.14)), 3.2);
  EXPECT_DOUBLE_EQ(codec.dequantize_depth(codec.quantize_depth(0.0)), 0.0);
  EXPECT_DOUBLE_EQ(codec.dequantize_depth(codec.quantize_depth(-2.0)), 0.0);
  // 40 m dive range fits in 8 bits at 0.2 m.
  EXPECT_DOUBLE_EQ(codec.dequantize_depth(codec.quantize_depth(40.0)), 40.0);
}

TEST(PayloadCodec, DeltaQuantizationResolution) {
  const PayloadCodec codec(PayloadCodecConfig{});
  // 2-sample resolution at 44.1 kHz: ~45 us.
  const double delta = 0.0123;
  const double rt = codec.dequantize_delta(codec.quantize_delta(delta));
  EXPECT_NEAR(rt, delta, 2.0 / 44100.0);
}

TEST(PayloadCodec, ReportRoundTrip) {
  PayloadCodecConfig cfg;
  cfg.protocol.num_devices = 5;
  const PayloadCodec codec(cfg);
  DeviceReport report;
  report.depth_m = 7.4;
  report.slot_delta_s.assign(5, std::nullopt);
  report.slot_delta_s[0] = 0.010;
  report.slot_delta_s[1] = 0.020;
  report.slot_delta_s[3] = 0.0005;
  // Own entry (id 2) stays nullopt, device 4 not heard.
  const auto bits = codec.encode(report, 2);
  EXPECT_EQ(bits.size(), codec.config().payload_bits());
  const DeviceReport rt = codec.decode(bits, 2);
  EXPECT_NEAR(rt.depth_m, 7.4, 0.11);
  ASSERT_TRUE(rt.slot_delta_s[0].has_value());
  EXPECT_NEAR(*rt.slot_delta_s[0], 0.010, 1e-4);
  EXPECT_FALSE(rt.slot_delta_s[2].has_value());
  EXPECT_FALSE(rt.slot_delta_s[4].has_value());
}

TEST(PayloadCodec, Validation) {
  PayloadCodecConfig cfg;
  cfg.protocol.num_devices = 3;
  const PayloadCodec codec(cfg);
  DeviceReport r;
  r.slot_delta_s.assign(2, std::nullopt);  // wrong size
  EXPECT_THROW(codec.encode(r, 0), std::invalid_argument);
  r.slot_delta_s.assign(3, std::nullopt);
  EXPECT_THROW(codec.encode(r, 9), std::invalid_argument);
}

TEST(Uplink, SimultaneousReportsDecodeExactly) {
  UplinkConfig cfg;
  cfg.codec.protocol.num_devices = 5;
  cfg.fsk.num_bands = 5;
  cfg.noise_rms = 0.1;
  const UplinkSimulator uplink(cfg);
  std::vector<DeviceReport> reports(5);
  uwp::Rng rng(9);
  for (std::size_t id = 1; id < 5; ++id) {
    reports[id].depth_m = static_cast<double>(id) * 1.6;
    reports[id].slot_delta_s.assign(5, std::nullopt);
    for (std::size_t j = 0; j < 5; ++j)
      if (j != id) reports[id].slot_delta_s[j] = 0.001 * static_cast<double>(j + 1);
  }
  const UplinkResult res = uplink.run(reports, rng);
  for (std::size_t id = 1; id < 5; ++id) {
    EXPECT_TRUE(res.decode_exact[id]) << "device " << id;
    EXPECT_NEAR(res.reports[id].depth_m, reports[id].depth_m, 0.11);
  }
  // §2.4 airtime: ~0.9-1 s scale for these payload sizes.
  EXPECT_GT(res.airtime_s, 0.5);
  EXPECT_LT(res.airtime_s, 1.5);
}

TEST(Uplink, WeakDeviceFailsGracefully) {
  UplinkConfig cfg;
  cfg.codec.protocol.num_devices = 4;
  cfg.fsk.num_bands = 4;
  cfg.noise_rms = 0.6;
  cfg.device_gain = {0.0, 1.0, 0.02, 1.0};  // device 2 nearly inaudible
  const UplinkSimulator uplink(cfg);
  std::vector<DeviceReport> reports(4);
  uwp::Rng rng(10);
  for (std::size_t id = 1; id < 4; ++id)
    reports[id].slot_delta_s.assign(4, std::nullopt);
  const UplinkResult res = uplink.run(reports, rng);
  // Strong devices decode; the weak one likely not — but no crash and the
  // flags reflect reality.
  EXPECT_TRUE(res.decode_exact[1]);
  EXPECT_TRUE(res.decode_exact[3]);
}

}  // namespace
}  // namespace uwp::proto
