#include "proto/multihop.hpp"

#include <gtest/gtest.h>

namespace uwp::proto {
namespace {

Matrix full(std::size_t n) {
  Matrix c(n, n, 1.0);
  for (std::size_t i = 0; i < n; ++i) c(i, i) = 0.0;
  return c;
}

TEST(Multihop, AllInRangeNeedsNoRelays) {
  const MultihopPlan plan = plan_multihop_uplink(full(5));
  EXPECT_EQ(plan.direct.size(), 4u);
  EXPECT_TRUE(plan.relays.empty());
  EXPECT_TRUE(plan.unreachable.empty());
  EXPECT_TRUE(plan.complete());
  MultihopOptions opts;
  EXPECT_DOUBLE_EQ(plan.total_airtime_s, opts.report_airtime_s);  // one phase
}

TEST(Multihop, StrandedDeviceGetsRelay) {
  Matrix c = full(5);
  c(0, 4) = c(4, 0) = 0.0;  // device 4 cannot reach the leader
  const MultihopPlan plan = plan_multihop_uplink(c);
  EXPECT_EQ(plan.direct.size(), 3u);
  ASSERT_EQ(plan.relays.size(), 1u);
  EXPECT_EQ(plan.relays[0].source, 4u);
  EXPECT_NE(plan.relays[0].relay, 0u);
  EXPECT_TRUE(plan.complete());
  // Two phases of airtime.
  MultihopOptions opts;
  EXPECT_DOUBLE_EQ(plan.total_airtime_s, 2.0 * opts.report_airtime_s);
}

TEST(Multihop, LoadBalancedAcrossRelays) {
  // Devices 3 and 4 stranded; both can reach 1 and 2 -> one forward each.
  Matrix c = full(5);
  c(0, 3) = c(3, 0) = 0.0;
  c(0, 4) = c(4, 0) = 0.0;
  const MultihopPlan plan = plan_multihop_uplink(c);
  ASSERT_EQ(plan.relays.size(), 2u);
  EXPECT_NE(plan.relays[0].relay, plan.relays[1].relay);
  // Balanced load -> phase 2 is a single burst.
  MultihopOptions opts;
  EXPECT_DOUBLE_EQ(plan.total_airtime_s, 2.0 * opts.report_airtime_s);
}

TEST(Multihop, RelayCapacityRespected) {
  // Three stranded devices but only one possible relay with capacity 2.
  const std::size_t n = 5;
  Matrix c(n, n, 0.0);
  c(0, 1) = c(1, 0) = 1.0;  // only device 1 reaches the leader
  for (std::size_t i = 2; i < n; ++i) {
    c(1, i) = c(i, 1) = 1.0;  // stranded devices reach device 1
  }
  MultihopOptions opts;
  opts.max_forwards_per_relay = 2;
  const MultihopPlan plan = plan_multihop_uplink(c, opts);
  EXPECT_EQ(plan.relays.size(), 2u);
  EXPECT_EQ(plan.unreachable.size(), 1u);
  EXPECT_FALSE(plan.complete());
  // Phase 2 runs the relay's queue of 2 sequentially.
  EXPECT_DOUBLE_EQ(plan.total_airtime_s, 3.0 * opts.report_airtime_s);
}

TEST(Multihop, IsolatedDeviceUnreachable) {
  Matrix c = full(4);
  for (std::size_t j = 0; j < 4; ++j) c(3, j) = c(j, 3) = 0.0;
  const MultihopPlan plan = plan_multihop_uplink(c);
  ASSERT_EQ(plan.unreachable.size(), 1u);
  EXPECT_EQ(plan.unreachable[0], 3u);
}

TEST(Multihop, Validation) {
  EXPECT_THROW(plan_multihop_uplink(Matrix(1, 1)), std::invalid_argument);
  EXPECT_THROW(plan_multihop_uplink(Matrix(3, 2)), std::invalid_argument);
}

}  // namespace
}  // namespace uwp::proto
