// Golden regression for the solver stack: proto::RangingSolver and
// core::Localizer outputs on the fixed-seed fixtures in golden_fixtures.hpp,
// captured (hexfloat) and re-pinned once when the SIMD solver kernels and
// cross-round warm starts landed; every path — the allocating wrappers, a
// cold workspace, and a warm (reused) workspace — must reproduce them bit
// for bit, on every backend (AVX2/NEON/UWP_SIMD=off share these bits: the
// kernels fix the 4-lane blocking and reduction order). Driver-level
// goldens (sim fast round, DES multi-round run) pin the pipeline adapters
// the same way.
#include "golden_fixtures.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "des/scenario.hpp"
#include "pipeline/round_pipeline.hpp"
#include "sim/scenario.hpp"
#include "sim/sweep.hpp"

namespace {

using namespace uwp;

// --- Goldens captured pre-refactor (hexfloat, bit-exact) --------------------

const double kRangingDistances[] = {
    0x0p+0, 0x1.1fe422d4766c3p+3, 0x1.23b35fc845ab8p+3, 0x1.8e5e0a72f051p+3, 0x1.7e95c4ca03755p+3, 0x0p+0,
    0x1.1fe422d4766c3p+3, 0x0p+0, 0x1.d8ecd7f2116c4p+3, 0x1.0422d4766bf6fp+3, 0x1.41a1f58d0faccp+4, 0x1.1db6db6db6da5p+4,
    0x1.23b35fc845ab8p+3, 0x1.d8ecd7f2116c4p+3, 0x0p+0, 0x1.3a8ecd7f21159p+4, 0x1.0397829cbc156p+4, 0x1.e9406f74ae269p+4,
    0x1.8e5e0a72f051p+3, 0x1.0422d4766bf6fp+3, 0x1.3a8ecd7f21159p+4, 0x0p+0, 0x1.3335fc845a8f2p+4, 0x1.5099406f74aeep+4,
    0x1.7e95c4ca03755p+3, 0x1.41a1f58d0faccp+4, 0x1.0397829cbc156p+4, 0x1.3335fc845a8f2p+4, 0x0p+0, 0x1.351d9afe422c9p+5,
    0x0p+0, 0x1.1db6db6db6da5p+4, 0x1.e9406f74ae269p+4, 0x1.5099406f74aeep+4, 0x1.351d9afe422c9p+5, 0x0p+0,
};
const double kRangingWeights[] = {
    0, 1, 1, 1, 1, 0,
    1, 0, 1, 1, 1, 1,
    1, 1, 0, 1, 1, 1,
    1, 1, 1, 0, 1, 1,
    1, 1, 1, 1, 0, 1,
    0, 1, 1, 1, 1, 0,
};

const double kClean_xy[] = {
    0x0p+0, 0x0p+0,
    0x1.00f2a3bf9db2dp+3, 0x1.54eba61c2a111p+0,
    -0x1.a6b18691f6192p+2, 0x1.9b7bdd49980dp+2,
    0x1.68411fb2c176cp+3, 0x1.390319112e07dp+3,
    0x1.ca1a99484afb8p+1, -0x1.145155c01737ep+3,
    -0x1.1453e9cdf2082p+3, -0x1.707aef5656a61p+2,
};
const double kClean_stress = 0x1.519ee60a672edp-3;

const double kOutlier_xy[] = {
    -0x0p+0, 0x0p+0,
    0x1.ba3198d55a63bp+2, 0x1.23689f0566e54p+1,
    -0x1.653c487b3d48ap+2, 0x1.9a52b689452c8p+2,
    0x1.92242004b7246p+3, 0x1.0d0e30e923279p+3,
    0x1.1f65f73ccb55dp+2, -0x1.f69561d4389adp+2,
    -0x1.eab8ff51a1bd4p+2, -0x1.9971d4d9f7092p+2,
    0x1.c57ae153c71ccp+3, -0x1.d81f7c0331c32p+1,
};
const double kOutlier_stress = 0x1.4bfc587692109p-4;

const double kPruned_xy[] = {
    0x0p+0, 0x0p+0,
    0x1.4094d8ae4c786p+3, 0x1.04160c7b8d24p+1,
    0x1.3d95e2cd68f4dp+4, 0x1.c653092c71f04p+0,
    0x1.b378957b38371p+4, 0x1.732ce4ecf18ap-1,
    0x1.20fcfc5b6235ep+5, 0x1.fac9d8009db8p-3,
    0x1.e99dd96f247p+0, 0x1.20dd0b205694ep+3,
    0x1.33dc53768d6f1p+3, 0x1.2a0a62a924b93p+3,
    0x1.34b9f6edd6d9fp+4, 0x1.158eb33544e48p+3,
    0x1.a595461b038fep+4, 0x1.2e39e58cd5e0ap+3,
    0x1.260e1baef71bdp+5, 0x1.6b72ccc0a371ep+3,
    -0x1.4705e365fadp-2, 0x1.368aa576ca02ap+4,
    0x1.3b4ae25810762p+3, 0x1.2791d6ce8ec97p+4,
    0x1.195826d3b7fddp+4, 0x1.27f15d911ce02p+4,
    0x1.b1e497bfde80ap+4, 0x1.419332b9c0796p+4,
    0x1.23c8443eccd4p+5, 0x1.47d26789da16fp+4,
    -0x1.4fc39e94e6bfp+0, 0x1.b74e55eb2f2d9p+4,
    0x1.0b8093a1fa01p+3, 0x1.c7673237139f9p+4,
    0x1.19181573da9cfp+4, 0x1.b566b2f1dbeb6p+4,
    0x1.b07ae0526bdccp+4, 0x1.ccb4d96b0e0c4p+4,
    0x1.16bfe35349455p+5, 0x1.d4186979264dep+4,
};
const double kPruned_stress = 0x1.5f50281146254p-4;

// Driver-level goldens: sim::ScenarioRunner fast round (deployment Rng(77),
// round Rng(78)) and a 6-node 4-round DES run (Rng(55)).
const double kSimFastError2d[] = {0x0p+0, 0x1.b35c261eb4941p-2, 0x1.901e16612fa92p+0,
                                  0x1.446734d02804bp+1, 0x1.1629cfc12add4p+2};
const double kSimFastStress = 0x1.43c1135f64471p-3;
const double kSimFastD03 = 0x1.05f469ccb42c6p+4;
const double kDesErrors[] = {
    0x1.5320a5c5bb0a5p-1, 0x1.3d2fdcda7e358p-1, 0x1.a2b7771e3049bp-1,
    0x1.a778897fb42b9p-1, 0x1.fea1e2a528dc6p-1, 0x1.17c5fd7564bb2p-1,
    0x1.a2cf41f03e4f5p-2, 0x1.4fbbc5433b5f2p-1, 0x1.1b9e6d72d5f1bp-1,
    0x1.aec483f6aef27p-2, 0x1.d192a3b929c6bp+0, 0x1.503346634b4e7p+1,
    0x1.27a4f9a57316p+1,  0x1.32252bf3fa9bap+1, 0x1.8d2d6daac1bf6p+1,
    0x1.3da3ff65e8982p+1, 0x1.80e5efdc9d34bp+1, 0x1.a1cb66660d50bp+1,
    0x1.6856167c60e5cp+1, 0x1.c46e9de41eb27p+1};
const double kDesTracked[] = {
    0x1.5320a5c5bb0a5p-1, 0x1.3d2fdcda7e358p-1, 0x1.a2b7771e3049bp-1,
    0x1.a778897fb42b9p-1, 0x1.fea1e2a528dc6p-1, 0x1.0ce5be8684511p-1,
    0x1.d043e358426d1p-3, 0x1.53876bbe08e24p-1, 0x1.27ac7b86bb72ap-1,
    0x1.ae0f6bf7a4de4p-2, 0x1.721b742002d17p+0, 0x1.07a88f4273d0ap+1,
    0x1.bab0ca3601ee1p+0, 0x1.c1f453cb6adb9p+0, 0x1.43ed377a35c6ep+1,
    0x1.e5c334bcdc885p-1, 0x1.b11295038f8fep+1, 0x1.500da199dae59p+0,
    0x1.f95e68b81d278p-1, 0x1.f23f357f7b077p+1};

void expect_matrix_eq(const Matrix& m, const double* golden, std::size_t n) {
  ASSERT_EQ(m.rows(), n);
  ASSERT_EQ(m.cols(), n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_EQ(m(i, j), golden[i * n + j]) << "entry (" << i << ", " << j << ")";
}

void expect_positions_eq(const core::LocalizationResult& res, const double* golden_xy) {
  for (std::size_t i = 0; i < res.positions.size(); ++i) {
    EXPECT_EQ(res.positions[i].x, golden_xy[2 * i]) << "x of device " << i;
    EXPECT_EQ(res.positions[i].y, golden_xy[2 * i + 1]) << "y of device " << i;
  }
}

TEST(GoldenRanging, SolveMatchesPreRefactorCapture) {
  const proto::ProtocolRun run = golden::fixture_protocol_run();
  const proto::RangingSolver solver(golden::fixture_protocol_config());

  const proto::RangingSolution sol = solver.solve(run);
  EXPECT_EQ(sol.two_way_links, 12u);
  EXPECT_EQ(sol.one_way_links, 2u);
  expect_matrix_eq(sol.distances, kRangingDistances, 6);
  expect_matrix_eq(sol.weights, kRangingWeights, 6);

  // Warm reuse: solving twice into the same buffers changes nothing.
  proto::RangingSolution reused;
  solver.solve_into(reused, run);
  solver.solve_into(reused, run);
  EXPECT_EQ(reused.two_way_links, 12u);
  EXPECT_EQ(reused.one_way_links, 2u);
  expect_matrix_eq(reused.distances, kRangingDistances, 6);
}

struct LocalizerGoldenCase {
  core::LocalizationInput input;
  core::LocalizerOptions opts;
  const double* xy;
  double stress;
  bool flipped;
  int margin;
  bool outliers;
  std::vector<core::Edge> dropped;
};

void check_localizer_case(const LocalizerGoldenCase& c) {
  const core::Localizer loc(c.opts);
  // Cold allocating path.
  {
    Rng rng(99);
    const core::LocalizationResult res = loc.localize(c.input, rng);
    expect_positions_eq(res, c.xy);
    EXPECT_EQ(res.normalized_stress, c.stress);
    EXPECT_EQ(res.flipped, c.flipped);
    EXPECT_EQ(res.flip_vote_margin, c.margin);
    EXPECT_EQ(res.outliers_suspected, c.outliers);
    ASSERT_EQ(res.dropped_links.size(), c.dropped.size());
    for (std::size_t i = 0; i < c.dropped.size(); ++i)
      EXPECT_EQ(res.dropped_links[i], c.dropped[i]);
  }
  // Workspace path, cold then warm: identical both times.
  core::LocalizerWorkspace ws;
  core::LocalizationResult res;
  for (int pass = 0; pass < 2; ++pass) {
    Rng rng(99);
    loc.localize_into(res, c.input, rng, ws);
    expect_positions_eq(res, c.xy);
    EXPECT_EQ(res.normalized_stress, c.stress) << "pass " << pass;
    EXPECT_EQ(res.flipped, c.flipped) << "pass " << pass;
    ASSERT_EQ(res.dropped_links.size(), c.dropped.size()) << "pass " << pass;
  }
}

TEST(GoldenLocalizer, CleanFullGraph) {
  check_localizer_case({golden::fixture_clean_input(), {}, kClean_xy, kClean_stress,
                        false, 4, false, {}});
}

TEST(GoldenLocalizer, ExhaustiveOutlierSearch) {
  check_localizer_case({golden::fixture_outlier_input(), {}, kOutlier_xy,
                        kOutlier_stress, false, 6, true, {{2, 3}, {2, 5}}});
}

TEST(GoldenLocalizer, PrunedWarmStartSearch) {
  check_localizer_case({golden::fixture_pruned_input(), golden::fixture_pruned_options(),
                        kPruned_xy, kPruned_stress, true, 32, true,
                        {{3, 11}, {7, 15}}});
}

// The parallel pruned search must reduce to the exact serial result.
TEST(GoldenLocalizer, PrunedSearchBitIdenticalWithSearchThreads) {
  core::LocalizerOptions opts = golden::fixture_pruned_options();
  opts.outlier.search_threads = 4;
  check_localizer_case({golden::fixture_pruned_input(), opts, kPruned_xy,
                        kPruned_stress, true, 32, true, {{3, 11}, {7, 15}}});
}

TEST(GoldenScenario, SimFastRoundMatchesPreRefactorCapture) {
  Rng setup(77);
  const sim::Deployment dep = sim::make_dock_testbed(setup);
  const sim::ScenarioRunner runner(dep);
  sim::RoundOptions opts;
  opts.waveform_phy = false;

  // One-shot wrapper.
  {
    Rng rng(78);
    const sim::RoundResult res = runner.run_round(opts, rng);
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.ranging.two_way_links, 10u);
    EXPECT_EQ(res.ranging.one_way_links, 0u);
    ASSERT_EQ(res.error_2d.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(res.error_2d[i], kSimFastError2d[i]);
    EXPECT_EQ(res.localization.normalized_stress, kSimFastStress);
    EXPECT_EQ(res.ranging.distances(0, 3), kSimFastD03);
    EXPECT_EQ(res.ranging_errors.size(), 10u);
  }
  // Reusable context, run twice from a fresh Rng: warm workspaces must not
  // leak state between rounds.
  sim::ScenarioRoundContext ctx(runner, opts);
  sim::RoundResult res;
  for (int pass = 0; pass < 2; ++pass) {
    Rng rng(78);
    ctx.run_into(res, rng);
    ASSERT_TRUE(res.ok) << "pass " << pass;
    for (std::size_t i = 0; i < 5; ++i)
      EXPECT_EQ(res.error_2d[i], kSimFastError2d[i]) << "pass " << pass;
    EXPECT_EQ(res.localization.normalized_stress, kSimFastStress) << "pass " << pass;
  }
}

TEST(GoldenScenario, DesRunMatchesPreRefactorCapture) {
  des::DesScenarioConfig cfg;
  cfg.protocol.num_devices = 6;
  cfg.rounds = 4;
  cfg.arrival.detection_failure_prob = 0.02;
  std::vector<Vec3> origins = {{0, 0, 1},   {9, 2, 2},   {-5, 7, 1.5},
                               {11, -6, 3}, {-8, -9, 2}, {6, 14, 1}};
  auto mob = std::make_shared<des::LawnmowerMobility>(origins);
  des::LawnmowerTrack track;
  track.direction = {0.0, 1.0, 0.0};
  track.span_m = 5.0;
  track.speed_mps = 0.35;
  mob->set_track(2, track);
  std::vector<audio::AudioTimingConfig> audio(6);
  for (std::size_t i = 0; i < 6; ++i) {
    audio[i].speaker_start_s = 0.17 * static_cast<double>(i);
    audio[i].mic_start_s = 0.06 + 0.11 * static_cast<double>(i);
    audio[i].speaker_skew_ppm = (i % 2 ? 1.0 : -1.0) * static_cast<double>(i);
  }
  Matrix conn(6, 6, 1.0);
  for (std::size_t i = 0; i < 6; ++i) conn(i, i) = 0.0;
  const des::DesScenario scenario(cfg, mob, std::move(audio), std::move(conn));

  Rng rng(55);
  const des::DesScenarioResult res = scenario.run(rng);
  EXPECT_EQ(res.localized_rounds, 4u);
  EXPECT_EQ(res.total_deliveries, 120u);
  ASSERT_EQ(res.errors.size(), 20u);
  ASSERT_EQ(res.tracked_errors.size(), 20u);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(res.errors[i], kDesErrors[i]) << "error " << i;
    EXPECT_EQ(res.tracked_errors[i], kDesTracked[i]) << "tracked " << i;
  }
}

// The workspace-reusing sweep path (per-worker ScenarioRoundContext through
// pipeline::RoundPipeline) must stay bit-identical between the serial
// reference and any thread count.
TEST(GoldenSweep, PipelineSweepBitIdenticalAcrossThreadCounts) {
  Rng setup(12);
  const sim::Deployment dep = sim::make_dock_testbed(setup);
  const sim::ScenarioRunner runner(dep);
  sim::RoundOptions opts;
  opts.waveform_phy = false;

  const auto sweep_with = [&](std::size_t threads) {
    sim::SweepOptions so;
    so.trials = 48;
    so.master_seed = 4242;
    so.threads = threads;
    return sim::SweepRunner(so).run(
        [&]() { return std::make_shared<sim::ScenarioRoundContext>(runner, opts); },
        [](std::size_t, Rng& rng, void* ctx) {
          auto* context = static_cast<sim::ScenarioRoundContext*>(ctx);
          sim::RoundResult res;
          context->run_into(res, rng);
          return res.error_2d;
        });
  };

  const sim::SweepResult serial = sweep_with(1);
  const sim::SweepResult parallel = sweep_with(4);
  EXPECT_EQ(serial.threads_used, 1u);
  ASSERT_EQ(serial.samples.size(), parallel.samples.size());
  for (std::size_t i = 0; i < serial.samples.size(); ++i)
    EXPECT_EQ(serial.samples[i], parallel.samples[i]) << i;  // bitwise
}

}  // namespace
