// Behavior tests for the pipeline layer: the MeasurementModel front-ends,
// RoundPipeline's chain, the batched entry point, and the shared
// ArrivalErrorModel.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "pipeline/arrival_error.hpp"
#include "pipeline/closed_form.hpp"
#include "pipeline/round_pipeline.hpp"
#include "sim/deployment.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace uwp;
using namespace uwp::pipeline;

ClosedFormScene test_scene(std::size_t n = 5) {
  ClosedFormScene scene;
  Rng place(7);
  scene.positions.push_back({0, 0, 1.5});
  scene.positions.push_back({8, 1, 2.0});
  for (std::size_t i = 2; i < n; ++i)
    scene.positions.push_back(
        {place.uniform(-15, 15), place.uniform(-15, 15), place.uniform(1, 4)});
  scene.connectivity = Matrix(n, n, 1.0);
  for (std::size_t i = 0; i < n; ++i) scene.connectivity(i, i) = 0.0;
  scene.audio.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    scene.audio[i].speaker_start_s = 0.13 * static_cast<double>(i);
    scene.audio[i].mic_start_s = 0.05 + 0.09 * static_cast<double>(i);
  }
  scene.protocol.num_devices = n;
  return scene;
}

PipelineOptions test_options(const ClosedFormScene& scene) {
  PipelineOptions opts;
  opts.protocol = scene.protocol;
  return opts;
}

TEST(ArrivalErrorModel, FailureAndDeterminism) {
  ArrivalErrorModel model;
  model.detection_failure_prob = 1.0;
  Rng rng(1);
  EXPECT_TRUE(std::isnan(model.sample_seconds(20.0, 1500.0, rng)));

  model.detection_failure_prob = 0.0;
  Rng a(2), b(2);
  const double ea = model.sample_seconds(20.0, 1500.0, a);
  const double eb = model.sample_seconds(20.0, 1500.0, b);
  EXPECT_TRUE(std::isfinite(ea));
  EXPECT_EQ(ea, eb);  // same stream, same draw

  // Sigma grows with range: far links are noisier on average.
  Rng c(3);
  double near_acc = 0.0, far_acc = 0.0;
  for (int i = 0; i < 2000; ++i) near_acc += std::abs(model.sample_seconds(1.0, 1500.0, c));
  for (int i = 0; i < 2000; ++i) far_acc += std::abs(model.sample_seconds(500.0, 1500.0, c));
  EXPECT_GT(far_acc, near_acc);
}

TEST(FastMeasurementModel, ProducesCompleteMeasurement) {
  ArrivalErrorModel arrival;
  arrival.detection_failure_prob = 0.0;
  FastMeasurementModel model(test_scene(), arrival);
  RoundMeasurement m;
  Rng rng(11);
  model.measure(m, rng);

  const std::size_t n = model.size();
  ASSERT_EQ(n, 5u);
  EXPECT_EQ(m.depths.size(), n);
  EXPECT_EQ(m.truth_xy.size(), n);
  EXPECT_EQ(m.truth_pos.size(), n);
  // Leader-origin frame.
  EXPECT_EQ(m.truth_xy[0].x, 0.0);
  EXPECT_EQ(m.truth_xy[0].y, 0.0);
  // Full connectivity, no failures: everyone heard everyone.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_GT(m.protocol.heard(i, j), 0.0) << i << "," << j;
  // Votes come from divers 2..n-1 only.
  for (const core::MicVote& v : m.votes) EXPECT_GE(v.node, 2u);
}

TEST(FastMeasurementModel, MovingADeviceUpdatesTruthAndProtocol) {
  FastMeasurementModel model(test_scene(), {});
  RoundMeasurement m;
  Rng rng(12);
  model.measure(m, rng);
  const Vec2 before = m.truth_xy[2];

  model.positions()[2] = model.positions()[2] + Vec3{5.0, 0.0, 0.0};
  model.measure(m, rng);
  EXPECT_NEAR(m.truth_xy[2].x - before.x, 5.0, 1e-12);
}

TEST(RoundPipeline, RunRoundLocalizesCleanMeasurement) {
  const ClosedFormScene scene = test_scene();
  ArrivalErrorModel arrival;
  arrival.detection_failure_prob = 0.0;
  arrival.sigma_m = 0.1;
  FastMeasurementModel model(scene, arrival);
  RoundPipeline pipe(test_options(scene));

  RoundMeasurement m;
  Rng rng(21);
  model.measure(m, rng);
  const RoundOutput& out = pipe.run_round(m, rng);
  ASSERT_TRUE(out.localized);
  EXPECT_EQ(out.error_2d.size(), 5u);
  EXPECT_EQ(out.error_2d[0], 0.0);
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_TRUE(std::isfinite(out.error_2d[i]));
    EXPECT_LT(out.error_2d[i], 10.0);
  }
  // The exposed localizer input mirrors the solved ranging data.
  EXPECT_LT(out.localizer_input.distances.max_abs_diff(out.ranging.distances), 1e-12);
  EXPECT_LT(out.localizer_input.weights.max_abs_diff(out.ranging.weights), 1e-12);
  // Ranging diagnostics cover every measured link.
  std::size_t measured = 0;
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = i + 1; j < 5; ++j)
      if (out.ranging.weights(i, j) > 0.0) ++measured;
  EXPECT_EQ(out.ranging_errors.size(), measured);
  // Tracking is off by default: no tracked errors.
  for (std::size_t i = 0; i < 5; ++i) EXPECT_TRUE(std::isnan(out.tracked_error_2d[i]));
}

TEST(RoundPipeline, TrackingFusesRoundsAndCoasts) {
  const ClosedFormScene scene = test_scene();
  ArrivalErrorModel arrival;
  arrival.detection_failure_prob = 0.0;
  FastMeasurementModel model(scene, arrival);
  PipelineOptions opts = test_options(scene);
  opts.track = true;
  RoundPipeline pipe(opts);

  RoundMeasurement m;
  Rng rng(31);
  for (int r = 0; r < 3; ++r) {
    model.measure(m, rng);
    pipe.run_round(m, rng, r == 0 ? 0.0 : 5.0);
  }
  ASSERT_TRUE(pipe.tracker().track(2).initialized());
  const double sigma_before = pipe.tracker().track(2).position_sigma();
  pipe.coast(30.0);
  EXPECT_GT(pipe.tracker().track(2).position_sigma(), sigma_before);

  pipe.reset();
  EXPECT_FALSE(pipe.tracker().track(2).initialized());
}

TEST(RoundPipeline, RunBatchMatchesManualRounds) {
  const ClosedFormScene scene = test_scene();
  const ArrivalErrorModel arrival{0.25, 0.008, 0.05};

  std::vector<double> batch;
  {
    FastMeasurementModel model(scene, arrival);
    RoundPipeline pipe(test_options(scene));
    Rng rng(41);
    pipe.run_batch(model, 6, rng, batch);
  }
  std::vector<double> manual;
  {
    FastMeasurementModel model(scene, arrival);
    RoundPipeline pipe(test_options(scene));
    RoundMeasurement m;
    Rng rng(41);
    for (int r = 0; r < 6; ++r) {
      model.measure(m, rng);
      const RoundOutput& out = pipe.run_round(m, rng);
      for (std::size_t i = 1; i < out.error_2d.size(); ++i)
        if (!std::isnan(out.error_2d[i])) manual.push_back(out.error_2d[i]);
    }
  }
  ASSERT_EQ(batch.size(), manual.size());
  for (std::size_t i = 0; i < batch.size(); ++i)
    EXPECT_EQ(batch[i], manual[i]) << i;  // bitwise
}

// The waveform front-end and the one-shot ScenarioRunner wrapper agree
// bitwise: the adapter rewire did not change the waveform path either.
TEST(WaveformModel, ContextMatchesRunRound) {
  Rng setup(51);
  const sim::Deployment dep = sim::make_dock_testbed(setup);
  const sim::ScenarioRunner runner(dep);
  sim::RoundOptions opts;
  opts.waveform_phy = true;

  Rng rng_a(52);
  const sim::RoundResult a = runner.run_round(opts, rng_a);

  sim::ScenarioRoundContext ctx(runner, opts);
  Rng rng_b(52);
  const sim::RoundResult b = ctx.run(rng_b);

  ASSERT_EQ(a.ok, b.ok);
  ASSERT_EQ(a.error_2d.size(), b.error_2d.size());
  for (std::size_t i = 0; i < a.error_2d.size(); ++i)
    EXPECT_EQ(a.error_2d[i], b.error_2d[i]) << i;
  EXPECT_EQ(a.localization.normalized_stress, b.localization.normalized_stress);
}

}  // namespace
