// Deterministic fixtures for the solver-stack golden regression tests.
//
// These builders construct fixed-seed inputs for proto::RangingSolver and
// core::Localizer covering every solver regime: the clean full-graph solve,
// the exhaustive outlier search (paper scale, links <= max_suspect_links),
// and the residual-pruned warm-started search (swarm scale). The expected
// outputs were captured from these exact fixtures BEFORE the workspace
// refactor (hexfloat, bit-exact) and live in golden_regression_test.cpp;
// the workspace plumbing must reproduce them bit-identically.
#pragma once

#include <cmath>

#include "core/localizer.hpp"
#include "proto/ranging_solver.hpp"
#include "proto/timestamp_protocol.hpp"
#include "util/geometry.hpp"
#include "util/random.hpp"

namespace uwp::golden {

// --- Fixture A: protocol run -> RangingSolver --------------------------------

inline proto::ProtocolConfig fixture_protocol_config() {
  proto::ProtocolConfig cfg;
  cfg.num_devices = 6;
  return cfg;
}

// Six devices, one out of leader range (relay sync), per-link Gaussian
// arrival errors and two forced detection failures, so the solution
// exercises two-way links, the one-way fallback, and missing links.
inline proto::ProtocolRun fixture_protocol_run() {
  const proto::ProtocolConfig cfg = fixture_protocol_config();
  const std::size_t n = cfg.num_devices;
  std::vector<proto::ProtocolDevice> devices(n);
  const Vec3 pos[6] = {{0, 0, 1},    {9, 2, 2},    {-5, 7, 1.5},
                       {11, -6, 3},  {-8, -9, 2},  {26, 9, 1}};
  for (std::size_t i = 0; i < n; ++i) {
    devices[i].id = i;
    devices[i].position = pos[i];
    devices[i].audio.speaker_start_s = 0.11 * static_cast<double>(i);
    devices[i].audio.mic_start_s = 0.05 + 0.07 * static_cast<double>(i);
    devices[i].audio.speaker_skew_ppm = (i % 2 ? 1.0 : -1.0) * 4.0;
    devices[i].audio.mic_skew_ppm = (i % 2 ? -1.0 : 1.0) * 3.0;
  }
  Matrix conn(n, n, 1.0);
  for (std::size_t i = 0; i < n; ++i) conn(i, i) = 0.0;
  // Device 5 sits 26+ m from the leader: out of direct range.
  conn(5, 0) = conn(0, 5) = 0.0;

  Rng rng(41);
  const proto::TimestampProtocol protocol(cfg, devices);
  return protocol.run(conn, rng, [&rng](std::size_t at, std::size_t from) {
    // Two fixed detection failures plus small Gaussian arrival noise.
    const double e = rng.normal(0.0, 2e-4);
    if ((at == 2 && from == 3) || (at == 4 && from == 1))
      return std::numeric_limits<double>::quiet_NaN();
    return e;
  });
}

// --- Localizer fixtures ------------------------------------------------------

namespace detail {

// Noisy measured distance matrix from true 3D positions.
inline void fill_measured(const std::vector<Vec3>& pos, double sigma_m, Rng& rng,
                          Matrix& dist, Matrix& weights) {
  const std::size_t n = pos.size();
  dist = Matrix(n, n);
  weights = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d =
          std::max(0.1, distance(pos[i], pos[j]) + rng.normal(0.0, sigma_m));
      dist(i, j) = dist(j, i) = d;
      weights(i, j) = weights(j, i) = 1.0;
    }
}

inline void finish_input(const std::vector<Vec3>& pos, core::LocalizationInput& in) {
  const std::size_t n = pos.size();
  in.depths.resize(n);
  for (std::size_t i = 0; i < n; ++i) in.depths[i] = pos[i].z;
  const Vec2 to1 = (pos[1] - pos[0]).xy();
  in.pointing_bearing_rad = bearing(to1) + 0.04;
  in.votes.clear();
  for (std::size_t i = 2; i < n; ++i) {
    const double side = side_of_line((pos[i] - pos[0]).xy(), {0, 0}, to1);
    int sign = side > 0 ? 1 : (side < 0 ? -1 : 0);
    if (i == 3) sign = -sign;  // one deliberately wrong vote
    if (sign != 0) in.votes.push_back({i, sign});
  }
}

}  // namespace detail

// Fixture B: clean 6-device group, full graph, no outliers.
inline core::LocalizationInput fixture_clean_input() {
  const std::vector<Vec3> pos = {{0, 0, 1.2},  {8, 1, 2.1},   {-6, 7, 1.7},
                                 {12, 9, 2.9}, {3, -9, 1.1},  {-9, -5, 2.4}};
  core::LocalizationInput in;
  Rng rng(101);
  detail::fill_measured(pos, 0.25, rng, in.distances, in.weights);
  detail::finish_input(pos, in);
  return in;
}

// Fixture C: 7 devices, one occluded link whose multipath inflated the
// measured distance — the exhaustive (paper-scale) outlier search.
inline core::LocalizationInput fixture_outlier_input() {
  const std::vector<Vec3> pos = {{0, 0, 1.5},   {7, 2, 2.2},  {-6, 6, 1.9},
                                 {13, 8, 2.6},  {4, -8, 1.3}, {-8, -6, 2.0},
                                 {14, -4, 2.8}};
  core::LocalizationInput in;
  Rng rng(202);
  detail::fill_measured(pos, 0.2, rng, in.distances, in.weights);
  in.distances(2, 5) = in.distances(5, 2) = in.distances(2, 5) * 1.9;
  detail::finish_input(pos, in);
  return in;
}

// Fixture D: 20 devices (190 links > max_suspect_links), two inflated links
// — exercises the residual-pruned candidate pool and warm-started solves.
inline core::LocalizationInput fixture_pruned_input() {
  std::vector<Vec3> pos;
  Rng place(303);
  for (std::size_t i = 0; i < 20; ++i) {
    pos.push_back({static_cast<double>(i % 5) * 9.0 + place.uniform(-1.5, 1.5),
                   static_cast<double>(i / 5) * 9.0 + place.uniform(-1.5, 1.5),
                   1.0 + 0.1 * static_cast<double>(i % 7)});
  }
  core::LocalizationInput in;
  Rng rng(304);
  detail::fill_measured(pos, 0.1, rng, in.distances, in.weights);
  in.distances(3, 11) = in.distances(11, 3) = in.distances(3, 11) * 2.5;
  in.distances(7, 15) = in.distances(15, 7) = in.distances(7, 15) * 2.3;
  detail::finish_input(pos, in);
  return in;
}

// Options for fixture D: cap the search at two dropped links so the pruned
// test stays fast while still covering multi-link subsets.
inline core::LocalizerOptions fixture_pruned_options() {
  core::LocalizerOptions opts;
  opts.outlier.max_outliers = 2;
  return opts;
}

}  // namespace uwp::golden
