// The batch plane's whole contract is "pure memory-layout optimization":
// stage-slicing many pipelines' rounds through struct-of-arrays groups must
// be bit-identical to running each round start to finish, and the fleet's
// batched tick must be bit-identical to the per-session reference loop at
// every shard count.
#include "pipeline/batch_plane.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "fleet/service.hpp"
#include "pipeline/closed_form.hpp"
#include "sim/fleet_workload.hpp"
#include "telemetry/collector.hpp"

namespace uwp::pipeline {
namespace {

ClosedFormScene make_scene(std::size_t n, std::uint64_t seed) {
  ClosedFormScene scene;
  uwp::Rng place(seed);
  scene.positions.push_back({0, 0, 1.5});
  for (std::size_t i = 1; i < n; ++i)
    scene.positions.push_back(
        {place.uniform(-15, 15), place.uniform(-15, 15), place.uniform(1, 4)});
  scene.connectivity = Matrix(n, n, 1.0);
  for (std::size_t i = 0; i < n; ++i) scene.connectivity(i, i) = 0.0;
  scene.audio.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    scene.audio[i].speaker_start_s = 0.13 * static_cast<double>(i);
    scene.audio[i].mic_start_s = 0.05 + 0.09 * static_cast<double>(i);
  }
  scene.protocol.num_devices = n;
  return scene;
}

struct SessionHarness {
  RoundPipeline pipe;
  FastMeasurementModel model;
  RoundMeasurement meas;
  uwp::Rng meas_rng;
  uwp::Rng solve_rng;

  SessionHarness(const ClosedFormScene& scene, const PipelineOptions& o,
                 std::uint64_t seed)
      : pipe(o), model(scene), meas_rng(seed), solve_rng(seed ^ 0x50Fu) {}
};

std::uint64_t digest_output(const RoundOutput& out) {
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](double v) {
    std::uint64_t u = std::bit_cast<std::uint64_t>(v);
    for (int b = 0; b < 8; ++b) {
      h ^= (u >> (8 * b)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  mix(out.localized ? 1.0 : 0.0);
  if (out.localized) mix(out.localization.normalized_stress);
  for (const double e : out.error_2d) mix(e);
  for (const double e : out.tracked_error_2d) mix(e);
  return h;
}

// Mixed group sizes + mixed track/quantize options, several rounds: the
// batched schedule (grouped by shape, stage-sliced) must produce the same
// bits as running each harness's round alone, round after round.
TEST(BatchPlane, StageSlicedBatchesAreBitIdenticalToSequentialRounds) {
  std::vector<PipelineOptions> variants;
  for (const std::size_t n : {4u, 5u, 4u, 6u, 5u, 4u}) {
    PipelineOptions o;
    o.protocol.num_devices = n;
    o.track = (n % 2) == 0;
    o.quantize_payload = n != 6;
    variants.push_back(o);
  }

  // Two identically-seeded harness sets: one batched, one sequential.
  std::vector<std::unique_ptr<SessionHarness>> batched, sequential;
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const ClosedFormScene scene =
        make_scene(variants[i].protocol.num_devices, 0x9000u + i);
    batched.push_back(
        std::make_unique<SessionHarness>(scene, variants[i], 0x1234u + i));
    sequential.push_back(
        std::make_unique<SessionHarness>(scene, variants[i], 0x1234u + i));
  }

  BatchPlane plane;
  for (std::size_t round = 0; round < 4; ++round) {
    const double dt = round == 0 ? 0.0 : 1.0;
    plane.clear();
    for (auto& h : batched) {
      h->model.measure(h->meas, h->meas_rng);
      plane.enqueue(h->pipe, h->meas, h->solve_rng, dt);
    }
    plane.execute();
    const auto slots = plane.slots();
    ASSERT_EQ(slots.size(), batched.size());

    for (std::size_t i = 0; i < sequential.size(); ++i) {
      SessionHarness& h = *sequential[i];
      h.model.measure(h.meas, h.meas_rng);
      const RoundOutput& ref = h.pipe.run_round(h.meas, h.solve_rng, dt);
      ASSERT_NE(slots[i].out, nullptr);
      EXPECT_EQ(digest_output(*slots[i].out), digest_output(ref))
          << "session " << i << " round " << round;
      EXPECT_EQ(slots[i].out->localized, ref.localized);
    }
  }
}

TEST(BatchPlane, LatencyMeasurementFillsEverySlot) {
  PipelineOptions o;
  o.protocol.num_devices = 4;
  const ClosedFormScene scene = make_scene(4, 0x77u);
  SessionHarness a(scene, o, 1), b(scene, o, 2);

  BatchPlane plane;
  a.model.measure(a.meas, a.meas_rng);
  b.model.measure(b.meas, b.meas_rng);
  plane.enqueue(a.pipe, a.meas, a.solve_rng, 0.0);
  plane.enqueue(b.pipe, b.meas, b.solve_rng, 0.0);
  plane.execute(/*measure_latency=*/true);
  for (const BatchSlot& slot : plane.slots()) {
    EXPECT_NE(slot.out, nullptr);
    EXPECT_GT(slot.latency_s, 0.0);
  }
}

// The fleet-level restatement: batch_rounds on/off and 1/2/4 shards all land
// on the same fleet digest, session metrics, and error samples.
TEST(BatchPlane, FleetBatchedPathBitIdenticalToReferenceAcrossShards) {
  sim::WorkloadParams params;
  params.sessions = 96;
  params.seed = 0xBA7C4u;
  params.min_group_size = 4;
  params.max_group_size = 6;
  params.min_rounds = 2;
  params.max_rounds = 5;
  params.admit_spread_ticks = 3;
  params.include_des = true;
  const std::vector<sim::GroupScenario> workload = sim::make_workload(params);

  fleet::FleetResult reference;
  bool have_reference = false;
  for (const bool batch : {false, true}) {
    for (const std::size_t shards : {1u, 2u, 4u}) {
      fleet::FleetOptions fo;
      fo.master_seed = 0xF00Du;
      fo.shards = shards;
      fo.batch_rounds = batch;
      fleet::FleetService service(fo, workload);
      const fleet::FleetResult r = service.run();
      if (!have_reference) {
        reference = r;
        have_reference = true;
        EXPECT_GT(r.rounds, 0u);
        continue;
      }
      EXPECT_EQ(r.fleet_digest, reference.fleet_digest)
          << "batch=" << batch << " shards=" << shards;
      ASSERT_EQ(r.errors.size(), reference.errors.size());
      for (std::size_t i = 0; i < r.errors.size(); ++i)
        EXPECT_EQ(std::bit_cast<std::uint64_t>(r.errors[i]),
                  std::bit_cast<std::uint64_t>(reference.errors[i]))
            << "sample " << i;
    }
  }
}

// Warm-start accounting: every localize attempt is either a hit or a miss,
// the totals are deterministic (identical across shard counts), and a
// steady-state fleet actually warms up (hits dominate once tracks exist).
TEST(BatchPlane, WarmStartCountersAreDeterministicAndMostlyHits) {
  sim::WorkloadParams params;
  params.sessions = 48;
  params.seed = 0x3A11u;
  params.min_group_size = 4;
  params.max_group_size = 6;
  params.min_rounds = 6;
  params.max_rounds = 10;
  params.include_des = false;
  const std::vector<sim::GroupScenario> workload = sim::make_workload(params);

  std::uint64_t ref_hits = 0, ref_misses = 0;
  for (const std::size_t shards : {1u, 3u}) {
    fleet::FleetOptions fo;
    fo.master_seed = 0xD1CEu;
    fo.shards = shards;
    fleet::FleetService service(fo, workload);
    telemetry::TelemetryOptions topts;
    topts.enabled = true;
    topts.timing = false;
    telemetry::Collector col(topts);
    const fleet::FleetResult r = service.run(nullptr, &col);
    const telemetry::TelemetryReport report = col.report();
    const std::uint64_t hits =
        report.totals[static_cast<std::size_t>(telemetry::Counter::kWarmStartHits)];
    const std::uint64_t misses =
        report.totals[static_cast<std::size_t>(telemetry::Counter::kWarmStartMisses)];
    EXPECT_EQ(hits + misses, r.rounds);  // every round localizes exactly once
    EXPECT_GT(hits, misses);  // multi-round sessions warm up after round 1
    if (shards == 1) {
      ref_hits = hits;
      ref_misses = misses;
    } else {
      EXPECT_EQ(hits, ref_hits);
      EXPECT_EQ(misses, ref_misses);
    }
  }
}

}  // namespace
}  // namespace uwp::pipeline
