#include "dsp/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "util/random.hpp"

namespace uwp::dsp {
namespace {

// Direct O(n^2) DFT reference.
std::vector<cplx> dft_reference(std::span<const cplx> x) {
  const std::size_t n = x.size();
  std::vector<cplx> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    cplx acc{0, 0};
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = -2.0 * std::numbers::pi * static_cast<double>(k * j) /
                         static_cast<double>(n);
      acc += x[j] * cplx{std::cos(ang), std::sin(ang)};
    }
    out[k] = acc;
  }
  return out;
}

std::vector<cplx> random_signal(std::size_t n, Rng& rng) {
  std::vector<cplx> x(n);
  for (cplx& v : x) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  return x;
}

class FftMatchesDft : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftMatchesDft, AgainstReference) {
  Rng rng(GetParam() * 7919 + 1);
  const std::vector<cplx> x = random_signal(GetParam(), rng);
  const std::vector<cplx> fast = fft(x);
  const std::vector<cplx> ref = dft_reference(x);
  ASSERT_EQ(fast.size(), ref.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_LT(std::abs(fast[i] - ref[i]), 1e-7) << "bin " << i << " n=" << GetParam();
}

// Mix of power-of-two, smooth (2^a 3^b 5^c) and awkward prime lengths,
// including the paper's 1920-sample OFDM symbol.
INSTANTIATE_TEST_SUITE_P(Lengths, FftMatchesDft,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 12, 15, 16, 20, 30, 60,
                                           64, 100, 128, 240, 480, 960, 1920, 7, 11,
                                           13, 17, 97, 101, 540));

TEST(Fft, SmoothDetection) {
  EXPECT_TRUE(is_smooth_235(1920));
  EXPECT_TRUE(is_smooth_235(1));
  EXPECT_TRUE(is_smooth_235(480));
  EXPECT_FALSE(is_smooth_235(0));
  EXPECT_FALSE(is_smooth_235(7));
  EXPECT_FALSE(is_smooth_235(1918));
}

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
}

class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, IfftInvertsFft) {
  Rng rng(GetParam() + 99);
  const std::vector<cplx> x = random_signal(GetParam(), rng);
  const std::vector<cplx> y = ifft(fft(x));
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_LT(std::abs(y[i] - x[i]), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Lengths, FftRoundTrip,
                         ::testing::Values(2, 3, 15, 64, 97, 540, 1920, 2460));

TEST(Fft, ImpulseIsFlat) {
  std::vector<cplx> x(16, cplx{0, 0});
  x[0] = {1, 0};
  const std::vector<cplx> y = fft(x);
  for (const cplx& v : y) EXPECT_LT(std::abs(v - cplx{1, 0}), 1e-12);
}

TEST(Fft, PureToneHitsSingleBin) {
  const std::size_t n = 1920;
  const std::size_t k0 = 44;  // ~1 kHz at 44.1 kHz with 1920-pt symbols
  std::vector<cplx> x(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double ang = 2.0 * std::numbers::pi * static_cast<double>(k0 * j) /
                       static_cast<double>(n);
    x[j] = {std::cos(ang), std::sin(ang)};
  }
  const std::vector<cplx> y = fft(x);
  EXPECT_NEAR(std::abs(y[k0]), static_cast<double>(n), 1e-6);
  for (std::size_t k = 0; k < n; ++k) {
    if (k != k0) {
      EXPECT_LT(std::abs(y[k]), 1e-6);
    }
  }
}

TEST(Fft, LinearityProperty) {
  Rng rng(1234);
  const std::vector<cplx> a = random_signal(240, rng);
  const std::vector<cplx> b = random_signal(240, rng);
  std::vector<cplx> sum(240);
  for (std::size_t i = 0; i < 240; ++i) sum[i] = 2.0 * a[i] + 3.0 * b[i];
  const std::vector<cplx> fa = fft(a);
  const std::vector<cplx> fb = fft(b);
  const std::vector<cplx> fsum = fft(sum);
  for (std::size_t i = 0; i < 240; ++i)
    EXPECT_LT(std::abs(fsum[i] - (2.0 * fa[i] + 3.0 * fb[i])), 1e-8);
}

TEST(Fft, ParsevalEnergyConservation) {
  Rng rng(55);
  const std::vector<cplx> x = random_signal(1920, rng);
  const std::vector<cplx> y = fft(x);
  double ex = 0.0, ey = 0.0;
  for (const cplx& v : x) ex += std::norm(v);
  for (const cplx& v : y) ey += std::norm(v);
  EXPECT_NEAR(ey, ex * 1920.0, ex * 1e-8);
}

TEST(Fft, RealInputHermitianSpectrum) {
  Rng rng(66);
  std::vector<double> x(480);
  for (double& v : x) v = rng.uniform(-1, 1);
  const std::vector<cplx> y = fft_real(x);
  for (std::size_t k = 1; k < x.size(); ++k)
    EXPECT_LT(std::abs(y[k] - std::conj(y[x.size() - k])), 1e-9);
}

TEST(Fft, IfftRealRecoversRealSignal) {
  Rng rng(77);
  std::vector<double> x(1920);
  for (double& v : x) v = rng.uniform(-1, 1);
  const std::vector<double> y = ifft_real(fft_real(x));
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(y[i], x[i], 1e-9);
}

TEST(Fft, EmptyThrows) { EXPECT_THROW(fft(std::vector<cplx>{}), std::invalid_argument); }

TEST(FftConvolve, MatchesDirectConvolution) {
  Rng rng(88);
  std::vector<double> a(37), b(12);
  for (double& v : a) v = rng.uniform(-1, 1);
  for (double& v : b) v = rng.uniform(-1, 1);
  const std::vector<double> fast = fft_convolve(a, b);
  ASSERT_EQ(fast.size(), a.size() + b.size() - 1);
  for (std::size_t k = 0; k < fast.size(); ++k) {
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (k >= i && k - i < b.size()) acc += a[i] * b[k - i];
    }
    EXPECT_NEAR(fast[k], acc, 1e-9);
  }
}

TEST(FftConvolve, IdentityKernel) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> delta = {1};
  const std::vector<double> y = fft_convolve(x, delta);
  ASSERT_EQ(y.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(y[i], x[i], 1e-10);
}

TEST(FftConvolve, EmptyInputs) {
  EXPECT_TRUE(fft_convolve({}, std::vector<double>{1.0}).empty());
  EXPECT_TRUE(fft_convolve(std::vector<double>{1.0}, {}).empty());
}

}  // namespace
}  // namespace uwp::dsp
