#include "dsp/filter.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dsp/goertzel.hpp"
#include "util/random.hpp"

namespace uwp::dsp {
namespace {

std::vector<double> tone(double f_hz, double fs_hz, std::size_t n) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = std::sin(2.0 * std::numbers::pi * f_hz * static_cast<double>(i) / fs_hz);
  return x;
}

double band_power(std::span<const double> x, double f_hz, double fs_hz) {
  return goertzel_power(x, f_hz, fs_hz);
}

TEST(FirDesign, OddTapValidation) {
  EXPECT_THROW(design_fir_lowpass(10, 1000, 44100), std::invalid_argument);
  EXPECT_THROW(design_fir_lowpass(0, 1000, 44100), std::invalid_argument);
  EXPECT_THROW(design_fir_bandpass(64, 1000, 5000, 44100), std::invalid_argument);
}

TEST(FirDesign, BandpassRejectsInvertedBand) {
  EXPECT_THROW(design_fir_bandpass(101, 5000, 1000, 44100), std::invalid_argument);
}

TEST(FirLowpass, PassesLowRejectsHigh) {
  const double fs = 44100;
  const auto taps = design_fir_lowpass(201, 2000, fs);
  const auto low = fir_filter(tone(500, fs, 4096), taps);
  const auto high = fir_filter(tone(8000, fs, 4096), taps);
  EXPECT_GT(band_power(low, 500, fs), 0.5 * band_power(tone(500, fs, 4096), 500, fs));
  EXPECT_LT(band_power(high, 8000, fs), 1e-3 * band_power(tone(8000, fs, 4096), 8000, fs));
}

TEST(FirBandpass, PassesBandRejectsOutside) {
  const double fs = 44100;
  const auto taps = design_fir_bandpass(301, 1000, 5000, fs);
  const auto in_band = fir_filter(tone(3000, fs, 8192), taps);
  const auto below = fir_filter(tone(200, fs, 8192), taps);
  const auto above = fir_filter(tone(10000, fs, 8192), taps);
  const double ref = band_power(tone(3000, fs, 8192), 3000, fs);
  EXPECT_GT(band_power(in_band, 3000, fs), 0.5 * ref);
  EXPECT_LT(band_power(below, 200, fs), 1e-2 * ref);
  EXPECT_LT(band_power(above, 10000, fs), 1e-2 * ref);
}

TEST(FirFilter, GroupDelayCompensated) {
  // An impulse through the zero-phase wrapper should stay centered at its
  // original position (peak not shifted).
  const double fs = 44100;
  const auto taps = design_fir_lowpass(101, 5000, fs);
  std::vector<double> x(512, 0.0);
  x[256] = 1.0;
  const auto y = fir_filter(x, taps);
  ASSERT_EQ(y.size(), x.size());
  std::size_t peak = 0;
  for (std::size_t i = 1; i < y.size(); ++i)
    if (y[i] > y[peak]) peak = i;
  EXPECT_EQ(peak, 256u);
}

TEST(FirFilter, EmptyInputs) {
  EXPECT_TRUE(fir_filter({}, std::vector<double>{1.0}).empty());
  EXPECT_TRUE(fir_filter(std::vector<double>{1.0}, {}).empty());
}

TEST(Biquad, LowpassAttenuatesHighFrequency) {
  const double fs = 44100;
  Biquad bq = Biquad::lowpass(1000, 0.707, fs);
  const auto low = biquad_filter(tone(200, fs, 8192), bq);
  bq.reset();
  const auto high = biquad_filter(tone(10000, fs, 8192), bq);
  EXPECT_GT(band_power(low, 200, fs), 0.5 * band_power(tone(200, fs, 8192), 200, fs));
  EXPECT_LT(band_power(high, 10000, fs),
            0.05 * band_power(tone(10000, fs, 8192), 10000, fs));
}

TEST(Biquad, HighpassAttenuatesLowFrequency) {
  const double fs = 44100;
  Biquad bq = Biquad::highpass(5000, 0.707, fs);
  const auto low = biquad_filter(tone(300, fs, 8192), bq);
  EXPECT_LT(band_power(low, 300, fs), 0.05 * band_power(tone(300, fs, 8192), 300, fs));
}

TEST(Biquad, BandpassSelectsCenter) {
  const double fs = 44100;
  Biquad bq = Biquad::bandpass(3000, 2.0, fs);
  const auto center = biquad_filter(tone(3000, fs, 8192), bq);
  bq.reset();
  const auto off = biquad_filter(tone(500, fs, 8192), bq);
  EXPECT_GT(band_power(center, 3000, fs), 10.0 * band_power(off, 500, fs));
}

TEST(Biquad, ResetClearsState) {
  Biquad bq = Biquad::lowpass(1000, 0.707, 44100);
  const double first = bq.process(1.0);
  bq.process(0.5);
  bq.reset();
  EXPECT_DOUBLE_EQ(bq.process(1.0), first);
}

}  // namespace
}  // namespace uwp::dsp
