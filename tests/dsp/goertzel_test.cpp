#include "dsp/goertzel.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace uwp::dsp {
namespace {

std::vector<double> tone(double f_hz, double fs_hz, std::size_t n, double amp = 1.0) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = amp * std::sin(2.0 * std::numbers::pi * f_hz * static_cast<double>(i) / fs_hz);
  return x;
}

TEST(Goertzel, DetectsMatchingTone) {
  const double fs = 44100;
  const auto x = tone(2000, fs, 4410);
  EXPECT_GT(goertzel_power(x, 2000, fs), 100.0 * goertzel_power(x, 3500, fs));
}

TEST(Goertzel, PowerScalesWithAmplitudeSquared) {
  const double fs = 44100;
  const auto x1 = tone(1500, fs, 4410, 1.0);
  const auto x2 = tone(1500, fs, 4410, 3.0);
  EXPECT_NEAR(goertzel_power(x2, 1500, fs) / goertzel_power(x1, 1500, fs), 9.0, 0.1);
}

TEST(Goertzel, MagnitudeIsSqrtPower) {
  const double fs = 44100;
  const auto x = tone(1200, fs, 2048);
  EXPECT_NEAR(goertzel_magnitude(x, 1200, fs),
              std::sqrt(goertzel_power(x, 1200, fs)), 1e-9);
}

TEST(Goertzel, EmptyInputIsZero) {
  EXPECT_DOUBLE_EQ(goertzel_power({}, 1000, 44100), 0.0);
}

TEST(Goertzel, SilenceIsZero) {
  const std::vector<double> x(1000, 0.0);
  EXPECT_DOUBLE_EQ(goertzel_power(x, 1000, 44100), 0.0);
}

TEST(Goertzel, ResolvesAdjacentMfskBins) {
  // The MFSK ID codec divides 1-5 kHz into N bins; with N=8 bins are 500 Hz
  // apart. Goertzel over one symbol must separate adjacent bins.
  const double fs = 44100;
  const std::size_t n = 4410;  // 100 ms symbol
  const auto x = tone(2250, fs, n);
  const double on = goertzel_power(x, 2250, fs);
  const double off = goertzel_power(x, 2750, fs);
  EXPECT_GT(on, 50.0 * off);
}

}  // namespace
}  // namespace uwp::dsp
