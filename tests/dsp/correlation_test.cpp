#include "dsp/correlation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.hpp"

namespace uwp::dsp {
namespace {

TEST(CrossCorrelate, FindsEmbeddedTemplate) {
  Rng rng(1);
  std::vector<double> tmpl(64);
  for (double& v : tmpl) v = rng.uniform(-1, 1);
  std::vector<double> signal(512, 0.0);
  const std::size_t offset = 200;
  for (std::size_t i = 0; i < tmpl.size(); ++i) signal[offset + i] = tmpl[i];
  const std::vector<double> corr = cross_correlate(signal, tmpl);
  EXPECT_EQ(argmax(corr), offset);
}

TEST(CrossCorrelate, MatchesDirectComputation) {
  Rng rng(2);
  std::vector<double> signal(50), tmpl(7);
  for (double& v : signal) v = rng.uniform(-1, 1);
  for (double& v : tmpl) v = rng.uniform(-1, 1);
  const std::vector<double> corr = cross_correlate(signal, tmpl);
  ASSERT_EQ(corr.size(), signal.size() - tmpl.size() + 1);
  for (std::size_t k = 0; k < corr.size(); ++k) {
    double acc = 0.0;
    for (std::size_t j = 0; j < tmpl.size(); ++j) acc += signal[k + j] * tmpl[j];
    EXPECT_NEAR(corr[k], acc, 1e-9);
  }
}

TEST(CrossCorrelate, TemplateLongerThanSignal) {
  EXPECT_TRUE(cross_correlate(std::vector<double>{1, 2}, std::vector<double>{1, 2, 3}).empty());
}

TEST(NormalizedCrossCorrelate, PerfectMatchIsOne) {
  Rng rng(3);
  std::vector<double> tmpl(128);
  for (double& v : tmpl) v = rng.uniform(-1, 1);
  std::vector<double> signal(1024, 0.0);
  for (std::size_t i = 0; i < tmpl.size(); ++i) signal[300 + i] = tmpl[i] * 5.0;
  const std::vector<double> corr = normalized_cross_correlate(signal, tmpl);
  EXPECT_EQ(argmax(corr), 300u);
  EXPECT_NEAR(corr[300], 1.0, 1e-6);
}

TEST(NormalizedCrossCorrelate, BoundedByOne) {
  Rng rng(4);
  std::vector<double> signal(2000), tmpl(100);
  for (double& v : signal) v = rng.uniform(-1, 1);
  for (double& v : tmpl) v = rng.uniform(-1, 1);
  for (double v : normalized_cross_correlate(signal, tmpl)) {
    EXPECT_LE(v, 1.0 + 1e-9);
    EXPECT_GE(v, -1.0 - 1e-9);
  }
}

TEST(NormalizedCrossCorrelate, AmplitudeInvariant) {
  Rng rng(5);
  std::vector<double> signal(600), tmpl(60);
  for (double& v : signal) v = rng.uniform(-1, 1);
  for (double& v : tmpl) v = rng.uniform(-1, 1);
  std::vector<double> loud(signal.size());
  for (std::size_t i = 0; i < signal.size(); ++i) loud[i] = signal[i] * 20.0;
  const auto a = normalized_cross_correlate(signal, tmpl);
  const auto b = normalized_cross_correlate(loud, tmpl);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-9);
}

TEST(WindowCorrelation, IdenticalWindowsGiveOne) {
  Rng rng(6);
  std::vector<double> a(128);
  for (double& v : a) v = rng.uniform(-1, 1);
  EXPECT_NEAR(window_correlation(a, a), 1.0, 1e-12);
}

TEST(WindowCorrelation, NegatedWindowsGiveMinusOne) {
  Rng rng(7);
  std::vector<double> a(128), b(128);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.uniform(-1, 1);
    b[i] = -a[i];
  }
  EXPECT_NEAR(window_correlation(a, b), -1.0, 1e-12);
}

TEST(WindowCorrelation, ZeroEnergyGivesZero) {
  std::vector<double> a(16, 0.0), b(16, 1.0);
  EXPECT_DOUBLE_EQ(window_correlation(a, b), 0.0);
}

TEST(Argmax, Basics) {
  EXPECT_EQ(argmax(std::vector<double>{1, 5, 3}), 1u);
  EXPECT_EQ(argmax(std::vector<double>{}), 0u);
  EXPECT_EQ(argmax(std::vector<double>{2, 2}), 0u);  // first on ties
}

TEST(IsPeak, InteriorAndBoundary) {
  const std::vector<double> xs = {0, 2, 1, 3, 3, 0, 5};
  EXPECT_TRUE(is_peak(xs, 1));
  EXPECT_FALSE(is_peak(xs, 2));
  EXPECT_FALSE(is_peak(xs, 3));  // plateau is not a strict peak
  EXPECT_TRUE(is_peak(xs, 6));   // right boundary, one-sided
  EXPECT_FALSE(is_peak(xs, 0));
  EXPECT_FALSE(is_peak(xs, 99));
}

TEST(FindPeaks, ThresholdFilters) {
  const std::vector<double> xs = {0, 2, 0, 5, 0, 1, 0};
  const auto peaks = find_peaks(xs, 1.5);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_EQ(peaks[0], 1u);
  EXPECT_EQ(peaks[1], 3u);
}

}  // namespace
}  // namespace uwp::dsp
