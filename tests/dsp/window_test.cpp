#include "dsp/window.hpp"

#include <gtest/gtest.h>

namespace uwp::dsp {
namespace {

class WindowShapes : public ::testing::TestWithParam<WindowType> {};

TEST_P(WindowShapes, SymmetricAndBounded) {
  const auto w = make_window(GetParam(), 65);
  ASSERT_EQ(w.size(), 65u);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_GE(w[i], -1e-12);
    EXPECT_LE(w[i], 1.0 + 1e-12);
    EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-12) << "asymmetry at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, WindowShapes,
                         ::testing::Values(WindowType::kRect, WindowType::kHann,
                                           WindowType::kHamming, WindowType::kBlackman,
                                           WindowType::kTukey));

TEST(Window, RectIsAllOnes) {
  for (double v : make_window(WindowType::kRect, 10)) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Window, HannEndsAtZeroPeaksAtOne) {
  const auto w = make_window(WindowType::kHann, 33);
  EXPECT_NEAR(w.front(), 0.0, 1e-12);
  EXPECT_NEAR(w.back(), 0.0, 1e-12);
  EXPECT_NEAR(w[16], 1.0, 1e-12);
}

TEST(Window, TukeyFlatMiddle) {
  const auto w = make_window(WindowType::kTukey, 101, 0.2);
  // With alpha=0.2 the middle 80% is exactly 1.
  for (std::size_t i = 15; i <= 85; ++i) EXPECT_DOUBLE_EQ(w[i], 1.0);
  EXPECT_LT(w.front(), 0.1);
}

TEST(Window, TukeyAlphaValidation) {
  EXPECT_THROW(make_window(WindowType::kTukey, 16, -0.1), std::invalid_argument);
  EXPECT_THROW(make_window(WindowType::kTukey, 16, 1.1), std::invalid_argument);
}

TEST(Window, TrivialLengths) {
  EXPECT_EQ(make_window(WindowType::kHann, 0).size(), 0u);
  const auto w1 = make_window(WindowType::kHann, 1);
  ASSERT_EQ(w1.size(), 1u);
  EXPECT_DOUBLE_EQ(w1[0], 1.0);
}

TEST(Window, ApplyWindowMultiplies) {
  std::vector<double> x = {2, 2, 2};
  apply_window(x, {0.5, 1.0, 0.0});
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
  EXPECT_DOUBLE_EQ(x[2], 0.0);
}

TEST(Window, ApplyWindowSizeMismatchThrows) {
  std::vector<double> x = {1, 2};
  EXPECT_THROW(apply_window(x, {1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace uwp::dsp
