#include "dsp/resample.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace uwp::dsp {
namespace {

TEST(SampleAt, ExactIndices) {
  const std::vector<double> x = {0, 1, 4, 9};
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(sample_at(x, static_cast<double>(i)), x[i], 1e-12);
}

TEST(SampleAt, OutOfRangeIsZero) {
  const std::vector<double> x = {1, 2, 3};
  EXPECT_DOUBLE_EQ(sample_at(x, -10.0), 0.0);
  EXPECT_DOUBLE_EQ(sample_at(x, 100.0), 0.0);
}

TEST(SampleAt, InterpolatesSmoothFunction) {
  // Cubic interpolation should track a sinusoid closely away from edges.
  std::vector<double> x(256);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / 64.0);
  for (double t = 10.0; t < 200.0; t += 0.37) {
    const double expected = std::sin(2.0 * std::numbers::pi * t / 64.0);
    EXPECT_NEAR(sample_at(x, t), expected, 5e-3);
  }
}

TEST(FractionalDelay, IntegerDelayShiftsExactly) {
  std::vector<double> x(32, 0.0);
  x[5] = 1.0;
  const auto y = fractional_delay(x, 7.0);
  std::size_t peak = 0;
  for (std::size_t i = 1; i < y.size(); ++i)
    if (y[i] > y[peak]) peak = i;
  EXPECT_EQ(peak, 12u);
}

TEST(FractionalDelay, SubSampleDelayOnSinusoid) {
  std::vector<double> x(512);
  const double f = 0.02;  // cycles/sample, well below Nyquist
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::sin(2.0 * std::numbers::pi * f * static_cast<double>(i));
  const double d = 3.4;
  const auto y = fractional_delay(x, d);
  for (std::size_t i = 50; i < 450; ++i) {
    const double expected = std::sin(2.0 * std::numbers::pi * f * (static_cast<double>(i) - d));
    EXPECT_NEAR(y[i], expected, 2e-3);
  }
}

TEST(FractionalDelay, NegativeDelayThrows) {
  EXPECT_THROW(fractional_delay(std::vector<double>{1.0}, -0.5), std::invalid_argument);
}

TEST(Resample, UnitRatioPreservesSignal) {
  std::vector<double> x(100);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::cos(0.1 * static_cast<double>(i));
  const auto y = resample(x, 1.0);
  ASSERT_EQ(y.size(), x.size());
  for (std::size_t i = 2; i + 2 < x.size(); ++i) EXPECT_NEAR(y[i], x[i], 1e-9);
}

TEST(Resample, DoublesLength) {
  const std::vector<double> x(50, 1.0);
  EXPECT_EQ(resample(x, 2.0).size(), 100u);
}

TEST(Resample, PpmSkewChangesLengthByExpectedAmount) {
  // 80 ppm over 1e6 samples is 80 samples — the scale of clock drift the
  // audio substrate models.
  std::vector<double> x(100000, 0.5);
  const auto y = resample(x, 1.0 + 80e-6);
  EXPECT_NEAR(static_cast<double>(y.size()), 100008.0, 1.0);
}

TEST(Resample, InvalidRatioThrows) {
  EXPECT_THROW(resample(std::vector<double>{1.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(resample(std::vector<double>{1.0}, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace uwp::dsp
