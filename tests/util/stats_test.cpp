#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace uwp {
namespace {

TEST(Stats, MeanBasics) {
  const std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, VarianceUnbiased) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  // Population variance is 4; sample (n-1) variance is 32/7.
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
}

TEST(Stats, VarianceDegenerate) {
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{5.0}), 0.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4, 1, 2, 3}), 2.5);
}

TEST(Stats, PercentileInterpolation) {
  const std::vector<double> xs = {0, 10};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 95), 9.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 10.0);
}

TEST(Stats, PercentileValidation) {
  EXPECT_THROW(percentile(std::vector<double>{}, 50), std::invalid_argument);
  EXPECT_THROW(percentile(std::vector<double>{1.0}, -1), std::invalid_argument);
  EXPECT_THROW(percentile(std::vector<double>{1.0}, 101), std::invalid_argument);
}

TEST(Stats, PercentileSingleSample) {
  // One sample is every percentile: rank = pct/100 * (n-1) is always 0.
  const std::vector<double> one = {42.0};
  for (const double pct : {0.0, 1.0, 50.0, 99.0, 100.0})
    EXPECT_DOUBLE_EQ(percentile(one, pct), 42.0) << "pct=" << pct;
}

TEST(Stats, PercentileIsOrderInvariant) {
  const std::vector<double> a = {5, 1, 4, 2, 3};
  const std::vector<double> b = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(a, 37.5), percentile(b, 37.5));
}

TEST(Stats, Ecdf) {
  const std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(ecdf(xs, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf(xs, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(ecdf(xs, 10.0), 1.0);
}

TEST(Stats, SummaryFields) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
}

TEST(Stats, CdfPointsMonotone) {
  const std::vector<double> xs = {0.3, 1.2, 0.8, 2.5, 1.9, 0.1};
  const auto pts = cdf_points(xs, 11);
  ASSERT_EQ(pts.size(), 11u);
  EXPECT_DOUBLE_EQ(pts.front().second, ecdf(xs, pts.front().first));
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LE(pts[i - 1].first, pts[i].first);
    EXPECT_LE(pts[i - 1].second, pts[i].second);
  }
}

TEST(Stats, Rms) {
  const std::vector<double> xs = {3, -4};
  EXPECT_NEAR(rms(xs), std::sqrt(12.5), 1e-12);
  EXPECT_DOUBLE_EQ(rms(std::vector<double>{}), 0.0);
}

}  // namespace
}  // namespace uwp
