#include "util/linalg.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.hpp"

namespace uwp {
namespace {

Matrix random_symmetric(std::size_t n, Rng& rng) {
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = r; c < n; ++c) a(r, c) = a(c, r) = rng.uniform(-1.0, 1.0);
  return a;
}

TEST(EigenSymmetric, DiagonalMatrix) {
  Matrix a{{3, 0}, {0, -1}};
  const EigenResult e = eigen_symmetric(a);
  EXPECT_NEAR(e.values[0], 3.0, 1e-12);
  EXPECT_NEAR(e.values[1], -1.0, 1e-12);
}

TEST(EigenSymmetric, KnownEigenvalues) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix a{{2, 1}, {1, 2}};
  const EigenResult e = eigen_symmetric(a);
  EXPECT_NEAR(e.values[0], 3.0, 1e-10);
  EXPECT_NEAR(e.values[1], 1.0, 1e-10);
  // Eigenvector of 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(e.vectors(0, 0)), 1.0 / std::sqrt(2.0), 1e-10);
}

TEST(EigenSymmetric, ReconstructsMatrix) {
  Rng rng(42);
  for (int trial = 0; trial < 5; ++trial) {
    const Matrix a = random_symmetric(6, rng);
    const EigenResult e = eigen_symmetric(a);
    // A == V diag(lambda) V^T
    Matrix reconstructed(6, 6);
    for (std::size_t k = 0; k < 6; ++k)
      for (std::size_t r = 0; r < 6; ++r)
        for (std::size_t c = 0; c < 6; ++c)
          reconstructed(r, c) += e.values[k] * e.vectors(r, k) * e.vectors(c, k);
    EXPECT_LT(a.max_abs_diff(reconstructed), 1e-9);
  }
}

TEST(EigenSymmetric, VectorsAreOrthonormal) {
  Rng rng(7);
  const Matrix a = random_symmetric(5, rng);
  const EigenResult e = eigen_symmetric(a);
  const Matrix vtv = e.vectors.transposed() * e.vectors;
  EXPECT_LT(vtv.max_abs_diff(Matrix::identity(5)), 1e-9);
}

TEST(EigenSymmetric, ValuesSortedDescending) {
  Rng rng(3);
  const Matrix a = random_symmetric(8, rng);
  const EigenResult e = eigen_symmetric(a);
  for (std::size_t i = 0; i + 1 < e.values.size(); ++i)
    EXPECT_GE(e.values[i], e.values[i + 1]);
}

TEST(EigenSymmetric, NonSquareThrows) {
  EXPECT_THROW(eigen_symmetric(Matrix(2, 3)), std::invalid_argument);
}

TEST(PseudoInverse, InvertibleMatrixMatchesInverse) {
  Matrix a{{4, 1}, {1, 3}};
  const Matrix pinv = pseudo_inverse_symmetric(a);
  const Matrix prod = a * pinv;
  EXPECT_LT(prod.max_abs_diff(Matrix::identity(2)), 1e-9);
}

TEST(PseudoInverse, SingularMatrixSatisfiesPenroseConditions) {
  // Rank-1 symmetric matrix.
  Matrix a{{1, 1}, {1, 1}};
  const Matrix p = pseudo_inverse_symmetric(a);
  // A P A == A and P A P == P.
  EXPECT_LT((a * p * a).max_abs_diff(a), 1e-9);
  EXPECT_LT((p * a * p).max_abs_diff(p), 1e-9);
}

TEST(PseudoInverse, CenteringMatrixIsOwnPseudoInverse) {
  // The SMACOF V matrix for a fully connected graph is N*J where J is the
  // centering matrix; its pseudoinverse is J/N.
  const std::size_t n = 5;
  Matrix v(n, n, -1.0);
  for (std::size_t i = 0; i < n; ++i) v(i, i) = static_cast<double>(n - 1);
  const Matrix p = pseudo_inverse_symmetric(v);
  EXPECT_LT((v * p * v).max_abs_diff(v), 1e-8);
}

TEST(Solve, TwoByTwo) {
  Matrix a{{2, 1}, {1, 3}};
  const std::vector<double> b = {5, 10};
  const std::vector<double> x = solve(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Solve, SingularThrows) {
  Matrix a{{1, 2}, {2, 4}};
  const std::vector<double> b = {1, 2};
  EXPECT_THROW(solve(a, b), std::domain_error);
}

TEST(Solve, RandomSystemsRoundTrip) {
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 4;
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-2, 2);
      a(r, r) += 5.0;  // diagonally dominant => well conditioned
    }
    std::vector<double> x_true(n);
    for (double& v : x_true) v = rng.uniform(-3, 3);
    std::vector<double> b(n, 0.0);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c) b[r] += a(r, c) * x_true[c];
    const std::vector<double> x = solve(a, b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
  }
}

TEST(Determinant, KnownValues) {
  EXPECT_NEAR(determinant(Matrix{{1, 2}, {3, 4}}), -2.0, 1e-12);
  EXPECT_NEAR(determinant(Matrix::identity(4)), 1.0, 1e-12);
  EXPECT_NEAR(determinant(Matrix{{1, 2}, {2, 4}}), 0.0, 1e-12);
}

TEST(Inverse, RoundTrip) {
  Matrix a{{2, 1, 0}, {1, 3, 1}, {0, 1, 2}};
  const Matrix inv = inverse(a);
  EXPECT_LT((a * inv).max_abs_diff(Matrix::identity(3)), 1e-10);
}

}  // namespace
}  // namespace uwp
