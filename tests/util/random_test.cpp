#include "util/random.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace uwp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i)
    if (a.uniform(0, 1) != b.uniform(0, 1)) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(9);
  const std::vector<double> xs = rng.normal_vector(20000, 1.5, 2.0);
  EXPECT_NEAR(mean(xs), 1.5, 0.05);
  EXPECT_NEAR(stddev(xs), 2.0, 0.05);
}

TEST(Rng, SymmetricBounds) {
  Rng rng(13);
  double acc = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.symmetric(0.8);
    EXPECT_GE(v, -0.8);
    EXPECT_LE(v, 0.8);
    acc += v;
  }
  EXPECT_NEAR(acc / 5000.0, 0.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int count = 0;
  for (int i = 0; i < 10000; ++i) count += rng.bernoulli(0.3);
  EXPECT_NEAR(count / 10000.0, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(21);
  double acc = 0.0;
  for (int i = 0; i < 20000; ++i) acc += rng.exponential(4.0);
  EXPECT_NEAR(acc / 20000.0, 0.25, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(33);
  Rng child = parent.fork();
  // Child should not replay the parent's stream.
  Rng parent_copy(33);
  parent_copy.fork();
  bool any_diff = false;
  for (int i = 0; i < 10; ++i)
    if (child.uniform(0, 1) != parent.uniform(0, 1)) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(Rng, ForkIsReproducible) {
  Rng a(33), b(33);
  Rng ca = a.fork();
  Rng cb = b.fork();
  for (int i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(ca.uniform(0, 1), cb.uniform(0, 1));
}

}  // namespace
}  // namespace uwp
