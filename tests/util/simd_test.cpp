// The portable SIMD contract: every kernel in util/simd_kernels.hpp returns
// bit-identical doubles under ScalarOps and the build's ActiveOps backend.
// This is what lets UWP_SIMD=off builds (and x86 vs ARM builds) share one
// set of goldens — the vector backends are a speed choice, not a numerics
// choice, because all of them accumulate in the same fixed 4-lane blocked
// order with the same (v0+v1)+(v2+v3) horizontal reduction.
#include "util/simd_kernels.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "util/random.hpp"

namespace uwp {
namespace {

using simd::ActiveOps;
using simd::ScalarOps;

void expect_bits(double a, double b, const char* what, std::size_t i = 0) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
      << what << " lane/index " << i << ": " << a << " vs " << b;
}

std::vector<double> random_vec(uwp::Rng& rng, std::size_t n, std::size_t padded) {
  std::vector<double> v(padded, 0.0);
  for (std::size_t i = 0; i < n; ++i) v[i] = rng.uniform(-3.0, 3.0);
  return v;
}

TEST(SimdKernels, BlockAndRowSumsMatchScalarBitwise) {
  uwp::Rng rng(0xB10Cu);
  for (const std::size_t n : {1u, 3u, 4u, 7u, 16u, 33u}) {
    const std::size_t pad = simd::padded(n);
    const std::vector<double> v = random_vec(rng, n, pad);
    expect_bits(kernels::block_sum<ScalarOps>(v.data(), pad),
                kernels::block_sum<ActiveOps>(v.data(), pad), "block_sum", n);
    expect_bits(kernels::row_sum<ScalarOps>(v.data(), n),
                kernels::row_sum<ActiveOps>(v.data(), n), "row_sum", n);
  }
}

TEST(SimdKernels, Matvec2MatchesScalarBitwise) {
  uwp::Rng rng(0x3A7u);
  const std::size_t n = 11;
  const std::size_t pad = simd::padded(n);
  std::vector<double> m(n * pad, 0.0);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) m[r * pad + c] = rng.uniform(-1.0, 1.0);
  const std::vector<double> x = random_vec(rng, n, pad);
  const std::vector<double> y = random_vec(rng, n, pad);

  std::vector<double> ox_s(pad, 0.0), oy_s(pad, 0.0), ox_a(pad, 0.0), oy_a(pad, 0.0);
  kernels::matvec2<ScalarOps>(m.data(), pad, n, x.data(), y.data(), ox_s.data(),
                              oy_s.data());
  kernels::matvec2<ActiveOps>(m.data(), pad, n, x.data(), y.data(), ox_a.data(),
                              oy_a.data());
  for (std::size_t i = 0; i < n; ++i) {
    expect_bits(ox_s[i], ox_a[i], "matvec2 x", i);
    expect_bits(oy_s[i], oy_a[i], "matvec2 y", i);
  }
}

TEST(SimdKernels, LinkStressAndGuttmanMatchScalarBitwise) {
  uwp::Rng rng(0x57355u);
  const std::size_t np = 9;
  const std::size_t m = 17;
  const std::size_t mp = simd::padded(m);
  const std::vector<double> x = random_vec(rng, np, simd::padded(np));
  const std::vector<double> y = random_vec(rng, np, simd::padded(np));
  std::vector<std::uint32_t> li(mp, 0), lj(mp, 0);
  std::vector<double> w(mp, 0.0), d(mp, 0.0);
  for (std::size_t k = 0; k < m; ++k) {
    li[k] = static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(np) - 1));
    lj[k] = static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(np) - 1));
    w[k] = rng.uniform(0.1, 2.0);
    d[k] = rng.uniform(0.0, 5.0);
  }

  std::vector<double> dij_s(mp, 0.0), dij_a(mp, 0.0), b_s(mp, 0.0), b_a(mp, 0.0);
  const double stress_s = kernels::link_stress<ScalarOps>(
      x.data(), y.data(), li.data(), lj.data(), w.data(), d.data(), dij_s.data(), mp);
  const double stress_a = kernels::link_stress<ActiveOps>(
      x.data(), y.data(), li.data(), lj.data(), w.data(), d.data(), dij_a.data(), mp);
  expect_bits(stress_s, stress_a, "link_stress");
  for (std::size_t k = 0; k < mp; ++k) expect_bits(dij_s[k], dij_a[k], "dij", k);

  kernels::guttman_b_values<ScalarOps>(w.data(), d.data(), dij_s.data(), b_s.data(), mp);
  kernels::guttman_b_values<ActiveOps>(w.data(), d.data(), dij_a.data(), b_a.data(), mp);
  for (std::size_t k = 0; k < mp; ++k) expect_bits(b_s[k], b_a[k], "guttman_b", k);
}

TEST(SimdKernels, AxpyRotateCenterMatchScalarBitwise) {
  uwp::Rng rng(0xA0931u);
  for (const std::size_t n : {2u, 5u, 8u, 13u}) {
    std::vector<double> out_s = random_vec(rng, n, n);
    std::vector<double> out_a = out_s;
    const std::vector<double> col = random_vec(rng, n, n);
    const double a = rng.uniform(-2.0, 2.0);
    kernels::axpy<ScalarOps>(out_s.data(), a, col.data(), n);
    kernels::axpy<ActiveOps>(out_a.data(), a, col.data(), n);
    for (std::size_t i = 0; i < n; ++i) expect_bits(out_s[i], out_a[i], "axpy", i);

    std::vector<double> p_s = random_vec(rng, n, n), q_s = random_vec(rng, n, n);
    std::vector<double> p_a = p_s, q_a = q_s;
    const double c = rng.uniform(-1.0, 1.0);
    const double s = rng.uniform(-1.0, 1.0);
    kernels::rotate_rows<ScalarOps>(p_s.data(), q_s.data(), c, s, n);
    kernels::rotate_rows<ActiveOps>(p_a.data(), q_a.data(), c, s, n);
    for (std::size_t i = 0; i < n; ++i) {
      expect_bits(p_s[i], p_a[i], "rotate p", i);
      expect_bits(q_s[i], q_a[i], "rotate q", i);
    }

    std::vector<double> b_s(n, 0.0), b_a(n, 0.0);
    const std::vector<double> d2 = random_vec(rng, n, n);
    const std::vector<double> rm = random_vec(rng, n, n);
    const double total = rng.uniform(0.0, 4.0);
    kernels::center_row<ScalarOps>(b_s.data(), d2.data(), rm[0], rm.data(), total, n);
    kernels::center_row<ActiveOps>(b_a.data(), d2.data(), rm[0], rm.data(), total, n);
    for (std::size_t i = 0; i < n; ++i) expect_bits(b_s[i], b_a[i], "center_row", i);
  }
}

TEST(SimdKernels, TrilaterationAccumulatorMatchesScalarBitwise) {
  uwp::Rng rng(0x7417u);
  for (const std::size_t n : {3u, 4u, 6u, 10u}) {
    const std::size_t pad = simd::padded(n);
    std::vector<double> ax(pad, 0.0), ay(pad, 0.0), r(pad, 0.0), mask(pad, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      ax[i] = rng.uniform(-20.0, 20.0);
      ay[i] = rng.uniform(-20.0, 20.0);
      r[i] = rng.uniform(1.0, 30.0);
      mask[i] = 1.0;
    }
    const double px = rng.uniform(-5.0, 5.0);
    const double py = rng.uniform(-5.0, 5.0);
    const kernels::TrilatAccum s = kernels::trilat_accumulate<ScalarOps>(
        ax.data(), ay.data(), r.data(), mask.data(), pad, px, py);
    const kernels::TrilatAccum a = kernels::trilat_accumulate<ActiveOps>(
        ax.data(), ay.data(), r.data(), mask.data(), pad, px, py);
    expect_bits(s.jtj00, a.jtj00, "jtj00", n);
    expect_bits(s.jtj01, a.jtj01, "jtj01", n);
    expect_bits(s.jtj11, a.jtj11, "jtj11", n);
    expect_bits(s.jtr0, a.jtr0, "jtr0", n);
    expect_bits(s.jtr1, a.jtr1, "jtr1", n);
    expect_bits(s.sse, a.sse, "sse", n);
  }
}

}  // namespace
}  // namespace uwp
