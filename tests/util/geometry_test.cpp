#include "util/geometry.hpp"

#include <gtest/gtest.h>

#include "util/random.hpp"

namespace uwp {
namespace {

TEST(Geometry, VectorArithmetic) {
  const Vec2 a{1, 2}, b{3, -1};
  EXPECT_EQ(a + b, (Vec2{4, 1}));
  EXPECT_EQ(a - b, (Vec2{-2, 3}));
  EXPECT_DOUBLE_EQ(a.dot(b), 1.0);
  EXPECT_DOUBLE_EQ(a.cross(b), -7.0);
  EXPECT_DOUBLE_EQ((Vec2{3, 4}).norm(), 5.0);
}

TEST(Geometry, Vec3Cross) {
  const Vec3 x{1, 0, 0}, y{0, 1, 0};
  EXPECT_EQ(x.cross(y), (Vec3{0, 0, 1}));
  EXPECT_DOUBLE_EQ((Vec3{1, 2, 2}).norm(), 3.0);
}

TEST(Geometry, RotateQuarterTurn) {
  const Vec2 v = rotate({1, 0}, kPi / 2.0);
  EXPECT_NEAR(v.x, 0.0, 1e-12);
  EXPECT_NEAR(v.y, 1.0, 1e-12);
}

TEST(Geometry, RotationPreservesNorm) {
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    const Vec2 v{rng.uniform(-5, 5), rng.uniform(-5, 5)};
    const double ang = rng.uniform(-kPi, kPi);
    EXPECT_NEAR(rotate(v, ang).norm(), v.norm(), 1e-12);
  }
}

TEST(Geometry, ReflectAcrossXAxis) {
  const Vec2 p = reflect_across_line({2, 3}, {0, 0}, {1, 0});
  EXPECT_NEAR(p.x, 2.0, 1e-12);
  EXPECT_NEAR(p.y, -3.0, 1e-12);
}

TEST(Geometry, ReflectionIsInvolution) {
  Rng rng(8);
  for (int i = 0; i < 20; ++i) {
    const Vec2 a{rng.uniform(-5, 5), rng.uniform(-5, 5)};
    const Vec2 b{rng.uniform(-5, 5), rng.uniform(-5, 5)};
    const Vec2 p{rng.uniform(-5, 5), rng.uniform(-5, 5)};
    const Vec2 twice = reflect_across_line(reflect_across_line(p, a, b), a, b);
    EXPECT_NEAR(twice.x, p.x, 1e-9);
    EXPECT_NEAR(twice.y, p.y, 1e-9);
  }
}

TEST(Geometry, ReflectionPreservesDistanceToLinePoints) {
  const Vec2 a{1, 1}, b{4, 3}, p{2, 5};
  const Vec2 q = reflect_across_line(p, a, b);
  EXPECT_NEAR(distance(p, a), distance(q, a), 1e-12);
  EXPECT_NEAR(distance(p, b), distance(q, b), 1e-12);
}

TEST(Geometry, DegenerateReflectionReturnsPoint) {
  const Vec2 p{2, 3};
  EXPECT_EQ(reflect_across_line(p, {1, 1}, {1, 1}), p);
}

TEST(Geometry, WrapAngle) {
  EXPECT_NEAR(wrap_angle(3 * kPi), kPi, 1e-12);
  EXPECT_NEAR(wrap_angle(-3 * kPi), kPi, 1e-12);
  EXPECT_NEAR(wrap_angle(0.5), 0.5, 1e-12);
}

TEST(Geometry, SideOfLineSigns) {
  // Line from origin along +x; points above are left (positive).
  EXPECT_GT(side_of_line({1, 1}, {0, 0}, {2, 0}), 0.0);
  EXPECT_LT(side_of_line({1, -1}, {0, 0}, {2, 0}), 0.0);
  EXPECT_DOUBLE_EQ(side_of_line({1, 0}, {0, 0}, {2, 0}), 0.0);
}

TEST(Geometry, Centroid) {
  const std::vector<Vec2> pts = {{0, 0}, {2, 0}, {2, 2}, {0, 2}};
  const Vec2 c = centroid(pts);
  EXPECT_DOUBLE_EQ(c.x, 1.0);
  EXPECT_DOUBLE_EQ(c.y, 1.0);
}

TEST(Geometry, ProcrustesRecoversRigidTransform) {
  Rng rng(15);
  std::vector<Vec2> truth;
  for (int i = 0; i < 6; ++i) truth.push_back({rng.uniform(-10, 10), rng.uniform(-10, 10)});
  const double ang = 1.1;
  const Vec2 shift{3, -2};
  std::vector<Vec2> moved;
  for (const Vec2& p : truth) moved.push_back(rotate(p, ang) + shift);
  EXPECT_NEAR(aligned_rmse(moved, truth), 0.0, 1e-9);
}

TEST(Geometry, ProcrustesHandlesReflection) {
  std::vector<Vec2> truth = {{0, 0}, {1, 0}, {0, 2}, {3, 1}};
  std::vector<Vec2> mirrored;
  for (const Vec2& p : truth) mirrored.push_back({p.x, -p.y});
  EXPECT_NEAR(aligned_rmse(mirrored, truth), 0.0, 1e-9);
  // Without reflection the mirrored asymmetric cloud cannot align perfectly.
  const std::vector<Vec2> no_ref = procrustes_align(mirrored, truth, false);
  double err = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) err += distance(no_ref[i], truth[i]);
  EXPECT_GT(err, 0.1);
}

TEST(Geometry, AlignedRmseDetectsDeformation) {
  std::vector<Vec2> truth = {{0, 0}, {4, 0}, {0, 4}, {4, 4}};
  std::vector<Vec2> stretched = {{0, 0}, {8, 0}, {0, 4}, {8, 4}};
  EXPECT_GT(aligned_rmse(stretched, truth), 0.5);
}

TEST(Geometry, DegToRadRoundTrip) {
  EXPECT_NEAR(rad_to_deg(deg_to_rad(37.0)), 37.0, 1e-12);
}

}  // namespace
}  // namespace uwp
