#include "util/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace uwp {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

TEST(Matrix, FillConstructor) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1, 2}, {3, 4}};
  EXPECT_DOUBLE_EQ(m(0, 0), 1);
  EXPECT_DOUBLE_EQ(m(0, 1), 2);
  EXPECT_DOUBLE_EQ(m(1, 0), 3);
  EXPECT_DOUBLE_EQ(m(1, 1), 4);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, Identity) {
  Matrix i = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, Transpose) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6);
  EXPECT_DOUBLE_EQ(t(0, 1), 4);
}

TEST(Matrix, Product) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(Matrix, ProductShapeMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(Matrix, IdentityIsMultiplicativeIdentity) {
  Matrix a{{2, -1}, {0.5, 3}};
  EXPECT_EQ(a * Matrix::identity(2), a);
  EXPECT_EQ(Matrix::identity(2) * a, a);
}

TEST(Matrix, SumAndDifference) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{4, 3}, {2, 1}};
  Matrix s = a + b;
  Matrix d = a - b;
  EXPECT_DOUBLE_EQ(s(0, 0), 5);
  EXPECT_DOUBLE_EQ(s(1, 1), 5);
  EXPECT_DOUBLE_EQ(d(0, 0), -3);
  EXPECT_DOUBLE_EQ(d(1, 1), 3);
}

TEST(Matrix, ScalarProduct) {
  Matrix a{{1, -2}};
  Matrix b = 2.0 * a;
  EXPECT_DOUBLE_EQ(b(0, 0), 2);
  EXPECT_DOUBLE_EQ(b(0, 1), -4);
}

TEST(Matrix, FrobeniusNorm) {
  Matrix a{{3, 4}};
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
}

TEST(Matrix, MaxAbsDiff) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{1, 2.5}, {3, 3}};
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 1.0);
}

TEST(Matrix, RowSpanWritable) {
  Matrix a(2, 2);
  auto r = a.row(1);
  r[0] = 7.0;
  EXPECT_DOUBLE_EQ(a(1, 0), 7.0);
}

TEST(Matrix, AssignReshapesAndFills) {
  Matrix a(2, 3, 1.0);
  a.assign(3, 2, 4.5);
  EXPECT_EQ(a.rows(), 3u);
  EXPECT_EQ(a.cols(), 2u);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 2; ++c) EXPECT_DOUBLE_EQ(a(r, c), 4.5);
}

TEST(Matrix, MultiplyIntoBitIdenticalToOperator) {
  // Irrational-ish entries so accumulation-order differences would show.
  Matrix a(3, 4);
  Matrix b(4, 2);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 4; ++c)
      a(r, c) = std::sin(static_cast<double>(r * 4 + c) + 0.3);
  a(1, 2) = 0.0;  // exercise the exact-zero skip
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 2; ++c)
      b(r, c) = std::cos(static_cast<double>(r * 2 + c) * 1.7);

  const Matrix expected = a * b;
  Matrix out(7, 7, 9.0);  // wrong shape + stale values: assign must reset
  multiply_into(out, a, b);
  ASSERT_EQ(out.rows(), 3u);
  ASSERT_EQ(out.cols(), 2u);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 2; ++c)
      EXPECT_EQ(out(r, c), expected(r, c));  // bitwise

  EXPECT_THROW(multiply_into(out, b, b), std::invalid_argument);
}

}  // namespace
}  // namespace uwp
