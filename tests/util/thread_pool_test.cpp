#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hpp"

namespace uwp {
namespace {

TEST(ThreadPool, ResolveThreadCount) {
  EXPECT_GE(ThreadPool::resolve_thread_count(0), 1u);
  EXPECT_EQ(ThreadPool::resolve_thread_count(1), 1u);
  EXPECT_EQ(ThreadPool::resolve_thread_count(7), 7u);
}

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // nothing queued: must not hang
  SUCCEED();
}

TEST(ThreadPool, ParallelForVisitsEachIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForHandlesFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.parallel_for(3, [&count](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "body must not run for n=0"; });
}

TEST(ThreadPool, ParallelForRethrowsFirstException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&completed](std::size_t i) {
                          if (i == 17) throw std::runtime_error("trial 17 failed");
                          completed.fetch_add(1);
                        }),
      std::runtime_error);
  // All non-throwing indices still ran; the pool is reusable afterwards.
  EXPECT_EQ(completed.load(), 63);
  std::atomic<int> again{0};
  pool.parallel_for(10, [&again](std::size_t) { again.fetch_add(1); });
  EXPECT_EQ(again.load(), 10);
}

TEST(ThreadPool, SingleThreadPoolStillCompletesWork) {
  ThreadPool pool(1);
  std::vector<int> order;
  // One worker: FIFO submissions run in order, no data race on `order`.
  for (int i = 0; i < 10; ++i)
    pool.submit([&order, i] { order.push_back(i); });
  pool.wait_idle();
  std::vector<int> expect(10);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
}

}  // namespace
}  // namespace uwp
