#include <gtest/gtest.h>

#include <cmath>

#include "sensors/depth_sensor_model.hpp"
#include "sensors/imu_drift.hpp"
#include "sensors/pointing_model.hpp"
#include "sensors/pressure_depth.hpp"
#include "util/stats.hpp"

namespace uwp::sensors {
namespace {

TEST(PressureDepth, SurfaceIsZero) {
  EXPECT_DOUBLE_EQ(depth_from_pressure(101325.0), 0.0);
}

TEST(PressureDepth, KnownConversion) {
  // 1 m of fresh water ~ 9.78 kPa.
  const double p = 101325.0 + 997.0 * 9.81 * 1.0;
  EXPECT_NEAR(depth_from_pressure(p), 1.0, 1e-9);
}

TEST(PressureDepth, RoundTrip) {
  for (double d = 0.0; d <= 40.0; d += 2.5)
    EXPECT_NEAR(depth_from_pressure(pressure_at_depth(d)), d, 1e-9);
}

TEST(PressureDepth, NegativeClampsToZero) {
  EXPECT_DOUBLE_EQ(depth_from_pressure(90000.0), 0.0);
  EXPECT_DOUBLE_EQ(pressure_at_depth(-3.0), 101325.0);
}

TEST(DepthSensorModel, WatchMatchesPaperErrorBand) {
  // Fig 13b: watch 0.15 +/- 0.11 m average error.
  const DepthSensorModel watch = DepthSensorModel::watch_ultra_gauge();
  uwp::Rng rng(1);
  std::vector<double> errors;
  for (double depth = 1.0; depth <= 9.0; depth += 1.0)
    for (int t = 0; t < 200; ++t)
      errors.push_back(std::abs(watch.read(depth, rng) - depth));
  EXPECT_NEAR(uwp::mean(errors), 0.15, 0.05);
}

TEST(DepthSensorModel, PhoneWorseThanWatch) {
  const DepthSensorModel watch = DepthSensorModel::watch_ultra_gauge();
  const DepthSensorModel phone = DepthSensorModel::phone_pressure_in_pouch();
  uwp::Rng rng(2);
  std::vector<double> watch_err, phone_err;
  for (double depth = 1.0; depth <= 9.0; depth += 1.0)
    for (int t = 0; t < 100; ++t) {
      watch_err.push_back(std::abs(watch.read(depth, rng) - depth));
      phone_err.push_back(std::abs(phone.read(depth, rng) - depth));
    }
  EXPECT_GT(uwp::mean(phone_err), uwp::mean(watch_err));
  EXPECT_NEAR(uwp::mean(phone_err), 0.42, 0.12);
}

TEST(DepthSensorModel, AveragingReducesJitterNotBias) {
  const DepthSensorModel phone = DepthSensorModel::phone_pressure_in_pouch();
  uwp::Rng rng(3);
  std::vector<double> single, averaged;
  for (int t = 0; t < 300; ++t) {
    single.push_back(phone.read(5.0, rng));
    averaged.push_back(phone.read_averaged(5.0, 30, rng));
  }
  EXPECT_LT(uwp::stddev(averaged), uwp::stddev(single) / 2.0);
  // Bias remains.
  EXPECT_NEAR(uwp::mean(averaged), 5.0 + phone.bias_m, 0.05);
}

TEST(DepthSensorModel, ReadingsNonNegative) {
  const DepthSensorModel phone = DepthSensorModel::phone_pressure_in_pouch();
  uwp::Rng rng(4);
  for (int t = 0; t < 200; ++t) EXPECT_GE(phone.read(0.1, rng), 0.0);
}

TEST(DepthSensorModel, EndToEndPressurePipeline) {
  uwp::Rng rng(5);
  std::vector<double> errors;
  for (int t = 0; t < 500; ++t)
    errors.push_back(std::abs(phone_pressure_reading(4.0, rng) - 4.0));
  // Same 0.42 +/- 0.18 band as the direct model.
  EXPECT_NEAR(uwp::mean(errors), 0.42, 0.12);
}

TEST(PointingModel, MeanAbsoluteErrorNearFiveDegrees) {
  const PointingModel model;
  uwp::Rng rng(6);
  std::vector<double> errors;
  for (int t = 0; t < 4000; ++t) {
    const double pointed = model.point(0.3, 5.0, rng);
    errors.push_back(std::abs(uwp::rad_to_deg(uwp::wrap_angle(pointed - 0.3))));
  }
  EXPECT_NEAR(uwp::mean(errors), 5.0, 0.8);  // Fig 16 average
}

TEST(PointingModel, ErrorGrowsSlightlyWithRange) {
  const PointingModel model;
  uwp::Rng rng(7);
  auto mean_err = [&](double range) {
    std::vector<double> errs;
    for (int t = 0; t < 3000; ++t)
      errs.push_back(std::abs(model.point(0.0, range, rng)));
    return uwp::mean(errs);
  };
  EXPECT_LT(mean_err(2.0), mean_err(30.0));
}

TEST(PointingModel, CameraErrorZeroWhenCentered) {
  // Checkerboard exactly at the frame center ray.
  EXPECT_NEAR(camera_orientation_error_deg({0, 0, 0}, {10, 0, 0}, {5, 0, 0}), 0.0,
              1e-9);
}

TEST(PointingModel, CameraErrorMatchesKnownAngle) {
  // Target 45 degrees off the frame center.
  const double err = camera_orientation_error_deg({0, 0, 0}, {1, 1, 0}, {1, 0, 0});
  EXPECT_NEAR(err, 45.0, 1e-9);
}

TEST(ImuDrift, DriftsBeyondUsefulnessWithinSeconds) {
  // §4: smart-device IMUs drift within a few seconds, which is the paper's
  // argument against inertial anchor-free localization.
  const ImuModel imu;
  uwp::Rng rng(8);
  double worst = 1e9;
  for (int t = 0; t < 5; ++t)
    worst = std::min(worst, time_to_drift(imu, 1.0, 60.0, rng));
  EXPECT_LT(worst, 30.0);
}

TEST(ImuDrift, DriftGrowsOverTime) {
  const ImuModel imu;
  uwp::Rng rng(9);
  const auto drift = dead_reckoning_drift(imu, 30.0, rng);
  ASSERT_GE(drift.size(), 30u);
  // Position error after 30 s dwarfs the 1 s error (t^2 growth).
  EXPECT_GT(drift[29], drift[0] * 10.0);
}

}  // namespace
}  // namespace uwp::sensors
