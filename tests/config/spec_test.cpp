#include "config/spec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "util/random.hpp"

namespace uwp::config {
namespace {

// A spec with every section exercised: explicit geometry, motion of both
// shapes disallowed by validation but legal to serialize, forced fleet kind,
// non-default doubles everywhere. Randomized per call.
ScenarioSpec random_spec(uwp::Rng& rng, bool include_nan) {
  ScenarioSpec s;
  s.name = "random_" + std::to_string(rng.uniform_int(0, 1 << 30));
  s.mode = static_cast<RunMode>(rng.uniform_int(0, 4));
  s.deployment.preset = static_cast<DeploymentPreset>(rng.uniform_int(0, 3));
  s.deployment.environment = static_cast<EnvironmentPreset>(rng.uniform_int(0, 3));
  s.deployment.seed = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30)) |
                      (static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30)) << 34);
  s.deployment.devices = static_cast<std::size_t>(rng.uniform_int(2, 12));
  const std::size_t npos = static_cast<std::size_t>(rng.uniform_int(0, 6));
  for (std::size_t i = 0; i < npos; ++i)
    s.deployment.positions.push_back(
        {rng.uniform(-50.0, 50.0), rng.uniform(-50.0, 50.0), rng.uniform(0.0, 10.0)});
  s.deployment.random_audio = rng.bernoulli(0.5);

  s.round.waveform_phy = rng.bernoulli(0.5);
  s.round.fast_arrival.sigma_m = rng.uniform(0.0, 1.0);
  s.round.fast_arrival.sigma_per_m = rng.uniform(0.0, 0.05);
  s.round.fast_arrival.detection_failure_prob = rng.uniform(0.0, 1.0);
  s.round.quantize_payload = rng.bernoulli(0.5);
  s.round.sound_speed_error_mps =
      include_nan && rng.bernoulli(0.3) ? std::numeric_limits<double>::quiet_NaN()
                                        : rng.uniform(-50.0, 50.0);
  s.round.mic_mode = static_cast<phy::MicMode>(rng.uniform_int(0, 2));
  s.round.depth_sensor.bias_m = rng.uniform(-0.5, 0.5);
  s.round.depth_sensor.noise_sigma_m = rng.uniform(0.0, 0.3);
  s.round.depth_sensor.quantization_m = rng.uniform(0.0, 0.1);
  s.round.pointing.sigma_deg = rng.uniform(0.0, 20.0);
  s.round.pointing.sigma_per_meter_deg = rng.uniform(0.0, 1.0);
  s.round.localizer.outlier.stress_threshold = rng.uniform(0.1, 2.0);
  s.round.localizer.outlier.drop_ratio = rng.uniform(0.0, 1.0);
  s.round.localizer.outlier.max_outliers = static_cast<int>(rng.uniform_int(0, 5));
  s.round.localizer.outlier.max_suspect_links =
      static_cast<std::size_t>(rng.uniform_int(1, 100));
  s.round.localizer.outlier.search_threads =
      static_cast<std::size_t>(rng.uniform_int(0, 8));
  s.round.localizer.outlier.smacof.max_iterations =
      static_cast<int>(rng.uniform_int(1, 1000));
  s.round.localizer.outlier.smacof.rel_tolerance = rng.uniform(1e-12, 1e-6);
  s.round.localizer.outlier.smacof.random_restarts =
      static_cast<int>(rng.uniform_int(0, 5));
  s.round.localizer.outlier.smacof.init_spread = rng.uniform(1.0, 100.0);

  s.protocol.num_devices = static_cast<std::size_t>(rng.uniform_int(2, 12));
  s.protocol.delta0_s = rng.uniform(0.1, 1.0);
  s.protocol.t_packet_s = rng.uniform(0.05, 0.5);
  s.protocol.t_guard_s = rng.uniform(0.01, 0.1);
  s.protocol.sound_speed_mps = rng.uniform(1400.0, 1600.0);
  s.protocol.fs_hz = rng.uniform(8000.0, 48000.0);

  s.des.rounds = static_cast<std::size_t>(rng.uniform_int(1, 20));
  s.des.round_period_s = rng.uniform(0.0, 10.0);
  s.des.max_range_m = rng.uniform(0.0, 100.0);
  s.des.ideal_arrivals = rng.bernoulli(0.5);
  s.des.tracker.accel_noise = rng.uniform(0.001, 0.1);
  s.des.tracker.measurement_sigma_m = rng.uniform(0.1, 2.0);
  s.des.tracker.velocity_decay_tau_s = rng.uniform(5.0, 60.0);
  s.des.tracker.gate_sigmas = rng.uniform(2.0, 8.0);
  const std::size_t nmotion = static_cast<std::size_t>(rng.uniform_int(0, 3));
  for (std::size_t i = 0; i < nmotion; ++i) {
    MotionSpec m;
    m.node = static_cast<std::size_t>(rng.uniform_int(0, 11));
    if (rng.bernoulli(0.5)) {
      m.motion.axis = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0), 0.0};
      m.motion.span_m = rng.uniform(1.0, 10.0);
      m.motion.phase_s = rng.uniform(0.0, 60.0);
    } else {
      const std::size_t wps = static_cast<std::size_t>(rng.uniform_int(2, 4));
      for (std::size_t w = 0; w < wps; ++w)
        m.motion.waypoints.push_back(
            {rng.uniform(-20.0, 20.0), rng.uniform(-20.0, 20.0), rng.uniform(0.0, 5.0)});
    }
    m.motion.speed_mps = rng.uniform(0.1, 1.0);
    s.des.motion.push_back(std::move(m));
  }

  s.sweep.trials = static_cast<std::size_t>(rng.uniform_int(1, 5000));
  s.sweep.master_seed = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30));
  s.sweep.threads = static_cast<std::size_t>(rng.uniform_int(0, 16));

  s.fleet.options.master_seed =
      static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30)) << 20;
  s.fleet.options.shards = static_cast<std::size_t>(rng.uniform_int(0, 8));
  s.fleet.options.measure_latency = rng.bernoulli(0.5);
  s.fleet.workload.sessions = static_cast<std::size_t>(rng.uniform_int(1, 500));
  s.fleet.workload.seed = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30));
  s.fleet.workload.min_group_size = static_cast<std::size_t>(rng.uniform_int(4, 6));
  s.fleet.workload.max_group_size = static_cast<std::size_t>(rng.uniform_int(6, 10));
  s.fleet.workload.min_rounds = static_cast<std::size_t>(rng.uniform_int(1, 4));
  s.fleet.workload.max_rounds = static_cast<std::size_t>(rng.uniform_int(4, 12));
  s.fleet.workload.admit_spread_ticks =
      static_cast<std::size_t>(rng.uniform_int(0, 16));
  s.fleet.workload.include_des = rng.bernoulli(0.5);
  s.fleet.workload.force_kind = static_cast<int>(rng.uniform_int(-1, 4));

  s.fleet.server.options.workers = static_cast<std::size_t>(rng.uniform_int(0, 16));
  s.fleet.server.options.queue_depth = static_cast<std::size_t>(rng.uniform_int(1, 256));
  s.fleet.server.tick_period_s = rng.uniform(0.1, 5.0);
  s.fleet.server.transport_capacity = static_cast<std::size_t>(rng.uniform_int(1, 512));
  auto& shaping = s.fleet.server.options.shaping;
  shaping.policy = static_cast<fleet::AdmissionPolicy>(rng.uniform_int(0, 2));
  shaping.ingest_shards = static_cast<std::size_t>(rng.uniform_int(1, 16));
  shaping.queue_depth = static_cast<std::size_t>(rng.uniform_int(1, 64));
  shaping.drain_rounds_per_s = rng.uniform(0.5, 64.0);
  shaping.rate_rounds_per_s = rng.bernoulli(0.5) ? 0.0 : rng.uniform(1.0, 64.0);
  shaping.burst_rounds = rng.uniform(1.0, 16.0);
  shaping.feedback_threshold = rng.uniform(0.0, 1.0);
  shaping.defer_delay_s = rng.uniform(0.01, 2.0);
  shaping.max_defers = static_cast<std::size_t>(rng.uniform_int(0, 16));

  s.telemetry.enabled = rng.bernoulli(0.5);
  s.telemetry.timing = rng.bernoulli(0.5);
  s.telemetry.window_ticks = static_cast<std::size_t>(rng.uniform_int(1, 64));
  s.telemetry.ring_capacity = static_cast<std::size_t>(rng.uniform_int(1, 1 << 16));
  s.telemetry.trace.enabled = rng.bernoulli(0.5);
  s.telemetry.trace.max_spans = static_cast<std::size_t>(rng.uniform_int(1, 1 << 20));
  s.telemetry.flight.capacity = static_cast<std::size_t>(rng.uniform_int(0, 1 << 10));
  s.telemetry.flight.max_dumps = static_cast<std::size_t>(rng.uniform_int(0, 64));
  s.telemetry.flight.evict_storm = static_cast<std::size_t>(rng.uniform_int(1, 64));
  s.telemetry.flight.shed_burst = static_cast<std::size_t>(rng.uniform_int(1, 64));
  s.telemetry.flight.localize_failures =
      static_cast<std::size_t>(rng.uniform_int(1, 64));
  return s;
}

TEST(SpecRoundTrip, DefaultSpecSurvivesBothFormats) {
  const ScenarioSpec spec;
  for (const bool hexfloat : {false, true}) {
    const ScenarioSpec back = parse_spec(write_spec(spec, hexfloat));
    EXPECT_TRUE(bit_equal(spec, back)) << "hexfloat=" << hexfloat;
  }
}

TEST(SpecRoundTrip, InvalidIntFieldsSerializeVerbatimNotClamped) {
  // Serialization is full fidelity even for values validation rejects; the
  // round trip must not launder -1 into 0 (and bit_equal must see the
  // difference).
  ScenarioSpec spec;
  spec.round.localizer.outlier.smacof.max_iterations = -1;
  const ScenarioSpec back = parse_spec(write_spec(spec));
  EXPECT_EQ(back.round.localizer.outlier.smacof.max_iterations, -1);
  EXPECT_TRUE(bit_equal(spec, back));
  EXPECT_FALSE(bit_equal(spec, ScenarioSpec{}));
}

TEST(SpecRoundTrip, RandomSpecsFieldEqualIncludingNanAndHexfloat) {
  uwp::Rng rng(0x5EEDC0DEu);
  for (int i = 0; i < 50; ++i) {
    const ScenarioSpec spec = random_spec(rng, /*include_nan=*/true);
    for (const bool hexfloat : {false, true}) {
      const ScenarioSpec back = parse_spec(write_spec(spec, hexfloat));
      ASSERT_TRUE(bit_equal(spec, back)) << "spec " << i << " hexfloat=" << hexfloat;
    }
  }
}

TEST(SpecRoundTrip, SaveLoadFile) {
  uwp::Rng rng(7);
  ScenarioSpec spec = random_spec(rng, /*include_nan=*/false);
  // Make it valid so load_spec (which validates) accepts it.
  spec = ScenarioSpec{};
  spec.name = "file_trip";
  const char* path = "spec_roundtrip_test.json";
  save_spec(spec, path);
  const ScenarioSpec back = load_spec(path);
  std::remove(path);
  EXPECT_TRUE(bit_equal(spec, back));
}

// --- parse-time failures (type/shape errors carry the field's path) ---------

void expect_parse_error(const std::string& json, const std::string& path_substr) {
  try {
    parse_spec(json);
    FAIL() << "expected SpecError for " << json;
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find(path_substr), std::string::npos)
        << "what(): " << e.what();
  }
}

TEST(SpecParse, UnknownAndMistypedFieldsFailWithPaths) {
  expect_parse_error(R"({"des_fraction": 0.5})", "des_fraction");
  expect_parse_error(R"({"fleet": {"workload": {"des_fraction": 0.5}}})",
                     "fleet.workload.des_fraction");
  expect_parse_error(R"({"round": {"waveform_phy": "yes"}})", "round.waveform_phy");
  expect_parse_error(R"({"round": {"arrival": {"sigma_m": true}}})",
                     "round.arrival.sigma_m");
  expect_parse_error(R"({"mode": "turbo"})", "mode");
  expect_parse_error(R"({"deployment": {"preset": "moonbase"}})", "deployment.preset");
  expect_parse_error(R"({"deployment": {"positions": [[1, 2]]}})",
                     "deployment.positions[0]");
  expect_parse_error(R"({"des": {"motion": [{"axis": "up"}]}})", "des.motion[0].axis");
  expect_parse_error(R"({"fleet": {"workload": {"kind_mix": "chaotic"}}})",
                     "fleet.workload.kind_mix");
  expect_parse_error(R"({"sweep": {"trials": -3}})", "sweep.trials");
  expect_parse_error(R"({"sweep": 17})", "sweep");
  expect_parse_error(R"({"telemetry": {"window": 4}})", "telemetry.window");
  expect_parse_error(R"({"telemetry": {"enabled": 1}})", "telemetry.enabled");
  expect_parse_error(R"({"telemetry": {"trace": {"max_span": 1}}})",
                     "telemetry.trace.max_span");
  expect_parse_error(R"({"telemetry": {"flight": {"capacity": true}}})",
                     "telemetry.flight.capacity");
}

// --- validation failures (range/consistency errors, one per field) ----------

void expect_invalid(const ScenarioSpec& spec, const std::string& path_substr) {
  const std::vector<std::string> errors = validate(spec);
  for (const std::string& e : errors)
    if (e.find(path_substr) != std::string::npos) {
      EXPECT_THROW(validate_or_throw(spec), SpecError);
      return;
    }
  ADD_FAILURE() << "no validation error mentioning \"" << path_substr << "\"; got "
                << errors.size() << " errors"
                << (errors.empty() ? "" : ", first: " + errors[0]);
}

TEST(SpecValidate, DefaultAndExampleShapesAreValid) {
  EXPECT_TRUE(validate(ScenarioSpec{}).empty());
}

TEST(SpecValidate, EachRejectedFieldReportsItsPath) {
  {
    ScenarioSpec s;
    s.name.clear();
    expect_invalid(s, "name");
  }
  {
    ScenarioSpec s;
    s.deployment.preset = DeploymentPreset::kAnalytical;
    s.deployment.devices = 1;
    expect_invalid(s, "deployment.devices");
  }
  {
    ScenarioSpec s;
    s.deployment.preset = DeploymentPreset::kExplicit;
    expect_invalid(s, "deployment.positions");
  }
  {
    ScenarioSpec s;  // positions on a non-explicit preset
    s.deployment.positions.push_back({0, 0, 1});
    expect_invalid(s, "deployment.positions");
  }
  {
    ScenarioSpec s;
    s.round.fast_arrival.detection_failure_prob = 1.5;
    expect_invalid(s, "round.arrival.detection_failure_prob");
  }
  {
    ScenarioSpec s;
    s.round.fast_arrival.sigma_m = -0.1;
    expect_invalid(s, "round.arrival.sigma_m");
  }
  {
    ScenarioSpec s;
    s.round.sound_speed_error_mps = std::numeric_limits<double>::quiet_NaN();
    expect_invalid(s, "round.sound_speed_error_mps");
  }
  {
    ScenarioSpec s;
    s.round.depth_sensor.noise_sigma_m = -0.2;
    expect_invalid(s, "round.depth_sensor.noise_sigma_m");
  }
  {
    ScenarioSpec s;
    s.round.pointing.sigma_deg = std::numeric_limits<double>::infinity();
    expect_invalid(s, "round.pointing.sigma_deg");
  }
  {
    ScenarioSpec s;
    s.des.tracker.measurement_sigma_m = std::numeric_limits<double>::quiet_NaN();
    expect_invalid(s, "des.tracker.measurement_sigma_m");
  }
  {
    ScenarioSpec s;
    s.round.localizer.outlier.stress_threshold = 0.0;
    expect_invalid(s, "round.localizer.outlier.stress_threshold");
  }
  {
    ScenarioSpec s;
    s.round.localizer.outlier.smacof.max_iterations = 0;
    expect_invalid(s, "round.localizer.outlier.smacof.max_iterations");
  }
  {
    ScenarioSpec s;
    s.protocol.num_devices = 7;  // dock preset deploys 5
    expect_invalid(s, "protocol.num_devices");
  }
  {
    ScenarioSpec s;
    s.protocol.t_guard_s = 0.0;
    expect_invalid(s, "protocol.t_guard_s");
  }
  {
    ScenarioSpec s;
    s.des.rounds = 0;
    expect_invalid(s, "des.rounds");
  }
  {
    ScenarioSpec s;
    MotionSpec m;
    m.node = 99;
    m.motion.span_m = 2.0;
    m.motion.speed_mps = 0.3;
    s.des.motion.push_back(m);
    expect_invalid(s, "des.motion[0].node");
  }
  {
    ScenarioSpec s;
    MotionSpec m;
    m.motion.span_m = 2.0;
    m.motion.speed_mps = 0.3;
    m.motion.waypoints = {{0, 0, 1}, {1, 0, 1}};
    s.des.motion.push_back(m);
    expect_invalid(s, "des.motion[0]");
  }
  {
    ScenarioSpec s;
    MotionSpec m;
    m.motion.span_m = 2.0;
    m.motion.speed_mps = 0.0;
    s.des.motion.push_back(m);
    expect_invalid(s, "des.motion[0].speed_mps");
  }
  {
    ScenarioSpec s;
    MotionSpec m;
    m.motion.span_m = std::numeric_limits<double>::quiet_NaN();
    m.motion.speed_mps = 0.3;
    s.des.motion.push_back(m);
    expect_invalid(s, "des.motion[0].span_m");
  }
  {
    ScenarioSpec s;  // neither a lawnmower nor a waypoint track
    MotionSpec m;
    m.motion.speed_mps = 0.3;
    s.des.motion.push_back(m);
    expect_invalid(s, "des.motion[0]");
  }
  {
    ScenarioSpec s;
    MotionSpec m;
    m.motion.waypoints = {{0, 0, 1},
                          {std::numeric_limits<double>::infinity(), 0, 1}};
    m.motion.speed_mps = 0.3;
    s.des.motion.push_back(m);
    expect_invalid(s, "des.motion[0].waypoints[1]");
  }
  {
    ScenarioSpec s;
    s.sweep.trials = 0;
    expect_invalid(s, "sweep.trials");
  }
  {
    ScenarioSpec s;
    s.sweep.threads = 100000000;
    expect_invalid(s, "sweep.threads");
  }
  {
    ScenarioSpec s;
    s.fleet.options.shards = 100000000;
    expect_invalid(s, "fleet.shards");
  }
  {
    ScenarioSpec s;
    s.fleet.workload.sessions = 0;
    expect_invalid(s, "fleet.workload.sessions");
  }
  {
    ScenarioSpec s;
    s.fleet.workload.min_group_size = 3;
    expect_invalid(s, "fleet.workload.min_group_size");
  }
  {
    ScenarioSpec s;
    s.fleet.workload.max_group_size = 3;  // < min (4)
    expect_invalid(s, "fleet.workload.max_group_size");
  }
  {
    ScenarioSpec s;
    s.fleet.workload.max_rounds = 0;
    expect_invalid(s, "fleet.workload.max_rounds");
  }
  {
    ScenarioSpec s;
    s.fleet.workload.force_kind = 9;
    expect_invalid(s, "fleet.workload.kind_mix");
  }
}

TEST(SpecValidate, TelemetryFieldsReportTheirPaths) {
  {
    ScenarioSpec s;
    s.telemetry.window_ticks = 0;
    expect_invalid(s, "telemetry.window_ticks");
  }
  {
    ScenarioSpec s;
    s.telemetry.ring_capacity = 0;
    expect_invalid(s, "telemetry.ring_capacity");
  }
  {
    ScenarioSpec s;
    s.telemetry.ring_capacity = (std::size_t{1} << 24) + 1;
    expect_invalid(s, "telemetry.ring_capacity");
  }
  {
    ScenarioSpec s;
    s.telemetry.trace.max_spans = 0;
    expect_invalid(s, "telemetry.trace.max_spans");
  }
  {
    ScenarioSpec s;
    s.telemetry.flight.capacity = (std::size_t{1} << 20) + 1;
    expect_invalid(s, "telemetry.flight.capacity");
  }
  {
    ScenarioSpec s;
    s.telemetry.flight.shed_burst = 0;
    expect_invalid(s, "telemetry.flight.shed_burst");
  }
}

TEST(SpecValidate, AllErrorsAreCollectedNotJustTheFirst) {
  ScenarioSpec s;
  s.name.clear();
  s.sweep.trials = 0;
  s.des.rounds = 0;
  EXPECT_GE(validate(s).size(), 3u);
}

}  // namespace
}  // namespace uwp::config
