#include "config/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

namespace uwp::config {
namespace {

bool same_bits(double a, double b) { return std::memcmp(&a, &b, sizeof a) == 0; }

TEST(Json, ParsesEveryValueKind) {
  const Json v = parse_json(
      R"({"b": true, "f": false, "n": null, "num": -12.5e2, "s": "hi\nthere",
          "arr": [1, 2, 3], "obj": {"nested": "yes"}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_TRUE(v.find("b")->as_bool());
  EXPECT_FALSE(v.find("f")->as_bool());
  EXPECT_TRUE(v.find("n")->is_null());
  EXPECT_EQ(v.find("num")->as_number(), -1250.0);
  EXPECT_EQ(v.find("s")->as_string(), "hi\nthere");
  ASSERT_EQ(v.find("arr")->items().size(), 3u);
  EXPECT_EQ(v.find("arr")->items()[1].as_number(), 2.0);
  EXPECT_EQ(v.find("obj")->find("nested")->as_string(), "yes");
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  const Json v = parse_json(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_EQ(v.members().size(), 3u);
  EXPECT_EQ(v.members()[0].first, "z");
  EXPECT_EQ(v.members()[1].first, "a");
  EXPECT_EQ(v.members()[2].first, "m");
}

TEST(Json, ErrorsCarryLineAndColumn) {
  try {
    parse_json("{\n  \"ok\": 1,\n  \"bad\": tru\n}");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW(parse_json(""), JsonError);
  EXPECT_THROW(parse_json("{"), JsonError);
  EXPECT_THROW(parse_json("[1, 2,]"), JsonError);
  EXPECT_THROW(parse_json("{\"a\": 1} trailing"), JsonError);
  EXPECT_THROW(parse_json("{\"a\": 01}"), JsonError);
  EXPECT_THROW(parse_json("\"unterminated"), JsonError);
  EXPECT_THROW(parse_json("{\"dup\": 1, \"dup\": 2}"), JsonError);
  EXPECT_THROW(parse_json("nul"), JsonError);
  // Bare NaN is not JSON; it must ride as a string (double_to_json).
  EXPECT_THROW(parse_json("nan"), JsonError);
  // Overflowing literals are malformed, not silently +inf...
  EXPECT_THROW(parse_json("1e999"), JsonError);
  // ...but subnormal underflow is a value the writer legitimately emits.
  EXPECT_EQ(parse_json("5e-324").as_number(), 5e-324);
}

TEST(Json, WriteParsePreservesStructure) {
  const char* text =
      R"({"a": [1.5, "two", false, null], "b": {"c": [[0.25]]}, "d": ""})";
  const Json v = parse_json(text);
  for (const int indent : {0, 2}) {
    JsonWriteOptions opts;
    opts.indent = indent;
    const Json back = parse_json(write_json(v, opts));
    EXPECT_EQ(write_json(back), write_json(v));
  }
}

TEST(JsonDoubles, BitExactRoundTripDecimalAndHexfloat) {
  const double cases[] = {0.0,
                          -0.0,
                          1.0,
                          -1.0 / 3.0,
                          0.1,
                          1e-300,
                          -1.7976931348623157e308,
                          5e-324,  // min subnormal
                          3.141592653589793,
                          22.0,
                          std::numeric_limits<double>::quiet_NaN(),
                          std::numeric_limits<double>::infinity(),
                          -std::numeric_limits<double>::infinity()};
  for (const bool hexfloat : {false, true}) {
    for (const double v : cases) {
      const Json j = double_to_json(v, hexfloat);
      // Through a full document serialize/parse cycle, not just the value.
      Json doc = Json::object();
      doc.set("v", j);
      const Json back = parse_json(write_json(doc));
      double out = 0.0;
      ASSERT_TRUE(json_as_double(*back.find("v"), out));
      EXPECT_TRUE(same_bits(v, out) || (std::isnan(v) && std::isnan(out)))
          << "value " << v << " hexfloat=" << hexfloat;
    }
  }
}

TEST(JsonDoubles, AcceptsHexfloatAndSpecialStringsOnInput) {
  double out = 0.0;
  ASSERT_TRUE(json_as_double(Json::string("0x1.8p+1"), out));
  EXPECT_EQ(out, 3.0);
  ASSERT_TRUE(json_as_double(Json::string("nan"), out));
  EXPECT_TRUE(std::isnan(out));
  ASSERT_TRUE(json_as_double(Json::string("-inf"), out));
  EXPECT_TRUE(std::isinf(out));
  EXPECT_FALSE(json_as_double(Json::string("not a number"), out));
  EXPECT_FALSE(json_as_double(Json::string(""), out));
  EXPECT_FALSE(json_as_double(Json::boolean(true), out));
}

TEST(JsonU64, FullRangeRoundTrip) {
  const std::uint64_t cases[] = {0u, 1u, (1ull << 53) - 1, (1ull << 53),
                                 0xFFFFFFFFFFFFFFFFull};
  for (const std::uint64_t v : cases) {
    Json doc = Json::object();
    doc.set("v", u64_to_json(v));
    const Json back = parse_json(write_json(doc));
    std::uint64_t out = 0;
    ASSERT_TRUE(json_as_u64(*back.find("v"), out));
    EXPECT_EQ(out, v);
  }
  std::uint64_t out = 0;
  EXPECT_FALSE(json_as_u64(Json::number(-1.0), out));
  EXPECT_FALSE(json_as_u64(Json::number(1.5), out));
  // Bare numbers from 2^53 up are rejected — the decimal token may already
  // have been rounded by the parser (2^53 + 1 reads as 2^53), so accepting
  // any of them could alter a seed silently; the string form is required.
  EXPECT_FALSE(json_as_u64(Json::number(9007199254740992.0), out));
  EXPECT_FALSE(json_as_u64(Json::number(9007199254740994.0), out));
  ASSERT_TRUE(json_as_u64(Json::string("9007199254740993"), out));
  EXPECT_EQ(out, 9007199254740993ull);
  EXPECT_FALSE(json_as_u64(Json::string("12x"), out));
  EXPECT_FALSE(json_as_u64(Json::string("99999999999999999999999"), out));
}

}  // namespace
}  // namespace uwp::config
