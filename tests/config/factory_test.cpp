// Pins the tentpole contract: a driver built from a ScenarioSpec is the
// driver a hand-wired main would construct — workload field for field,
// fleet runs bit for bit — and every committed example spec stays loadable
// and true to its declared shape.
#include "config/factory.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "config/spec.hpp"
#include "fleet/wire.hpp"

#ifndef UWP_SPEC_DIR
#define UWP_SPEC_DIR "examples/specs"
#endif

namespace uwp::config {
namespace {

void expect_workload_field_equal(const sim::GroupScenario& a,
                                 const sim::GroupScenario& b) {
  EXPECT_EQ(a.session_id, b.session_id);
  EXPECT_EQ(a.kind, b.kind);
  ASSERT_EQ(a.scene.positions.size(), b.scene.positions.size());
  for (std::size_t i = 0; i < a.scene.positions.size(); ++i) {
    EXPECT_EQ(a.scene.positions[i].x, b.scene.positions[i].x);
    EXPECT_EQ(a.scene.positions[i].y, b.scene.positions[i].y);
    EXPECT_EQ(a.scene.positions[i].z, b.scene.positions[i].z);
  }
  ASSERT_EQ(a.scene.audio.size(), b.scene.audio.size());
  for (std::size_t i = 0; i < a.scene.audio.size(); ++i) {
    EXPECT_EQ(a.scene.audio[i].speaker_skew_ppm, b.scene.audio[i].speaker_skew_ppm);
    EXPECT_EQ(a.scene.audio[i].mic_skew_ppm, b.scene.audio[i].mic_skew_ppm);
    EXPECT_EQ(a.scene.audio[i].speaker_start_s, b.scene.audio[i].speaker_start_s);
    EXPECT_EQ(a.scene.audio[i].mic_start_s, b.scene.audio[i].mic_start_s);
  }
  EXPECT_EQ(a.scene.protocol.num_devices, b.scene.protocol.num_devices);
  ASSERT_EQ(a.motion.size(), b.motion.size());
  for (std::size_t i = 0; i < a.motion.size(); ++i) {
    EXPECT_EQ(a.motion[i].span_m, b.motion[i].span_m);
    EXPECT_EQ(a.motion[i].speed_mps, b.motion[i].speed_mps);
    EXPECT_EQ(a.motion[i].phase_s, b.motion[i].phase_s);
    EXPECT_EQ(a.motion[i].waypoints.size(), b.motion[i].waypoints.size());
  }
  EXPECT_EQ(a.arrival.detection_failure_prob, b.arrival.detection_failure_prob);
  EXPECT_EQ(a.sound_speed_error_mps, b.sound_speed_error_mps);
  EXPECT_EQ(a.dropout_prob, b.dropout_prob);
  EXPECT_EQ(a.admit_tick, b.admit_tick);
  EXPECT_EQ(a.lifetime_rounds, b.lifetime_rounds);
  EXPECT_EQ(a.round_period_s, b.round_period_s);
}

TEST(SpecFactory, WorkloadReproducesMakeWorkloadFieldForField) {
  sim::WorkloadParams params;
  params.sessions = 64;
  params.seed = 0xAB17u;
  params.min_group_size = 4;
  params.max_group_size = 7;
  params.min_rounds = 3;
  params.max_rounds = 6;
  params.admit_spread_ticks = 5;
  params.include_des = true;

  ScenarioSpec spec;
  spec.mode = RunMode::kFleet;
  spec.fleet.workload = params;

  // Through the JSON round trip, not just the in-memory struct.
  const ScenarioSpec reloaded = parse_spec(write_spec(spec));
  const std::vector<sim::GroupScenario> from_spec = make_workload(reloaded);
  const std::vector<sim::GroupScenario> programmatic = sim::make_workload(params);

  ASSERT_EQ(from_spec.size(), programmatic.size());
  for (std::size_t i = 0; i < from_spec.size(); ++i)
    expect_workload_field_equal(from_spec[i], programmatic[i]);
  // The digest covers EVERY field bit for bit; the explicit checks above
  // just localize a failure.
  EXPECT_EQ(fleet::workload_digest(from_spec), fleet::workload_digest(programmatic));
}

TEST(SpecFactory, FleetRunFromSpecBitIdenticalToProgrammatic) {
  sim::WorkloadParams params;
  params.sessions = 48;
  params.seed = 0x5EEDu;
  params.min_rounds = 2;
  params.max_rounds = 4;
  fleet::FleetOptions fo;
  fo.master_seed = 0xCAFEu;
  fo.shards = 2;

  ScenarioSpec spec;
  spec.mode = RunMode::kFleet;
  spec.fleet.options = fo;
  spec.fleet.workload = params;

  const fleet::FleetService programmatic(fo, sim::make_workload(params));
  const fleet::FleetResult want = programmatic.run();

  // Spec-built, through the serialized form — and at a different shard
  // count, which must not matter (PR 4's determinism contract).
  ScenarioSpec reloaded = parse_spec(write_spec(spec));
  reloaded.fleet.options.shards = 4;
  const fleet::FleetService from_spec = make_fleet_service(reloaded);
  const fleet::FleetResult got = from_spec.run();

  EXPECT_EQ(got.fleet_digest, want.fleet_digest);
  EXPECT_EQ(got.rounds, want.rounds);
  EXPECT_EQ(got.localized, want.localized);
  EXPECT_EQ(got.coasts, want.coasts);
  ASSERT_EQ(got.sessions.size(), want.sessions.size());
  for (std::size_t i = 0; i < got.sessions.size(); ++i)
    EXPECT_TRUE(got.sessions[i].bit_equal(want.sessions[i])) << "session " << i;
  ASSERT_EQ(got.errors.size(), want.errors.size());
  for (std::size_t i = 0; i < got.errors.size(); ++i)
    EXPECT_EQ(got.errors[i], want.errors[i]);
}

TEST(SpecFactory, DesScenarioFromSpecMatchesHandWiredConstruction) {
  ScenarioSpec spec;
  spec.mode = RunMode::kDes;
  spec.deployment.preset = DeploymentPreset::kExplicit;
  spec.deployment.seed = 9;
  for (std::size_t i = 0; i < 6; ++i)
    spec.deployment.positions.push_back(
        {4.0 * static_cast<double>(i), 3.0 * static_cast<double>(i % 2),
         1.0 + 0.3 * static_cast<double>(i)});
  spec.protocol.num_devices = 6;
  spec.des.rounds = 3;
  spec.round.fast_arrival.detection_failure_prob = 0.02;
  MotionSpec m;
  m.node = 2;
  m.motion.axis = {0.0, 1.0, 0.0};
  m.motion.span_m = 4.0;
  m.motion.speed_mps = 0.5;
  spec.des.motion.push_back(m);

  const des::DesScenario from_spec = make_des_scenario(spec);

  // Hand-wire the same scenario from the same deployment.
  const sim::Deployment dep = make_deployment(spec);
  des::DesScenarioConfig cfg;
  cfg.protocol = spec.protocol;
  cfg.rounds = spec.des.rounds;
  cfg.arrival = spec.round.fast_arrival;
  std::vector<Vec3> origins;
  std::vector<audio::AudioTimingConfig> audio;
  for (const sim::ScenarioDevice& dev : dep.devices) {
    origins.push_back(dev.position);
    audio.push_back(dev.audio);
  }
  auto mobility = std::make_shared<des::LawnmowerMobility>(std::move(origins));
  des::LawnmowerTrack track;
  track.direction = m.motion.axis;
  track.span_m = m.motion.span_m;
  track.speed_mps = m.motion.speed_mps;
  mobility->set_track(2, track);
  const des::DesScenario programmatic(cfg, mobility, audio, dep.connectivity);

  EXPECT_EQ(from_spec.round_period_s(), programmatic.round_period_s());
  uwp::Rng rng_a(11), rng_b(11);
  const des::DesScenarioResult a = from_spec.run(rng_a);
  const des::DesScenarioResult b = programmatic.run(rng_b);
  EXPECT_EQ(a.localized_rounds, b.localized_rounds);
  EXPECT_EQ(a.total_deliveries, b.total_deliveries);
  ASSERT_EQ(a.errors.size(), b.errors.size());
  for (std::size_t i = 0; i < a.errors.size(); ++i) EXPECT_EQ(a.errors[i], b.errors[i]);
}

TEST(SpecFactory, ScenarioRunnerAndSweepComeFromTheBackingStructs) {
  ScenarioSpec spec;
  spec.mode = RunMode::kSweep;
  spec.round.waveform_phy = false;
  spec.sweep.trials = 40;
  spec.sweep.master_seed = 77;
  spec.sweep.threads = 1;

  const sim::ScenarioRunner runner = make_scenario_runner(spec);
  EXPECT_EQ(runner.deployment().size(), 5u);  // dock preset
  EXPECT_EQ(runner.deployment().env.name, "dock");

  const sim::SweepRunner sweep = make_sweep(spec);
  EXPECT_EQ(sweep.options().trials, 40u);
  EXPECT_EQ(sweep.options().master_seed, 77u);

  const sim::RoundOptions opts = make_round_options(spec);
  const sim::SweepResult res = sweep.run(
      [&] { return std::make_shared<sim::ScenarioRoundContext>(runner, opts); },
      [](std::size_t, uwp::Rng& rng, void* ctx) {
        auto* context = static_cast<sim::ScenarioRoundContext*>(ctx);
        sim::RoundResult round;
        context->run_into(round, rng);
        return round.error_2d;
      });
  EXPECT_EQ(res.per_trial.size(), 40u);
  EXPECT_GT(res.summary.count, 0u);
}

TEST(SpecFactory, InvalidSpecsNeverReachADriver) {
  ScenarioSpec spec;
  spec.protocol.num_devices = 9;  // dock preset has 5
  EXPECT_THROW(make_scenario_runner(spec), SpecError);
  EXPECT_THROW(make_des_scenario(spec), SpecError);
  spec = ScenarioSpec{};
  spec.fleet.workload.sessions = 0;
  EXPECT_THROW(make_fleet_service(spec), SpecError);
}

TEST(SpecFactory, TelemetryOptionsScaleWindowToTheModesVirtualClock) {
  ScenarioSpec spec;
  spec.mode = RunMode::kFleet;
  spec.telemetry.enabled = true;
  spec.telemetry.timing = false;
  spec.telemetry.window_ticks = 8;
  spec.telemetry.ring_capacity = 1024;
  spec.fleet.server.tick_period_s = 0.5;

  // Fleet stamps tick indices: the window is the tick count verbatim.
  telemetry::TelemetryOptions fo = make_telemetry_options(spec);
  EXPECT_TRUE(fo.enabled);
  EXPECT_FALSE(fo.timing);
  EXPECT_EQ(fo.ring_capacity, 1024u);
  EXPECT_EQ(fo.window, 8.0);

  // Serve stamps frame t_s (tick_period_s per tick): same windows on the
  // same virtual timeline requires the scale factor.
  spec.mode = RunMode::kServe;
  EXPECT_EQ(make_telemetry_options(spec).window, 4.0);

  spec.telemetry.window_ticks = 0;
  EXPECT_THROW(make_telemetry_options(spec), SpecError);
}

// --- committed example specs -------------------------------------------------

TEST(GoldenSpecs, EveryCommittedSpecLoadsAndValidates) {
  const char* files[] = {"quickstart.json",      "sweep_dock_fast.json",
                         "des_swarm.json",       "fleet_mixed.json",
                         "fleet_serving.json",   "fleet_static.json",
                         "fleet_lawnmower.json", "fleet_waypoint.json",
                         "fleet_dropout_churn.json", "fleet_packet_des.json",
                         "fleet_serve_shaped.json", "fleet_telemetry.json"};
  for (const char* f : files) {
    SCOPED_TRACE(f);
    const ScenarioSpec spec = load_spec(std::string(UWP_SPEC_DIR) + "/" + f);
    EXPECT_FALSE(spec.name.empty());
    // Normalization is stable: serialize -> parse -> bit-equal.
    EXPECT_TRUE(bit_equal(spec, parse_spec(write_spec(spec))));
  }
}

TEST(GoldenSpecs, OneForcedFleetPerGroupScenarioKind) {
  const std::map<std::string, sim::GroupScenarioKind> per_kind = {
      {"fleet_static.json", sim::GroupScenarioKind::kStatic},
      {"fleet_lawnmower.json", sim::GroupScenarioKind::kLawnmower},
      {"fleet_waypoint.json", sim::GroupScenarioKind::kWaypoint},
      {"fleet_dropout_churn.json", sim::GroupScenarioKind::kDropoutChurn},
      {"fleet_packet_des.json", sim::GroupScenarioKind::kPacketDes},
  };
  for (const auto& [file, kind] : per_kind) {
    SCOPED_TRACE(file);
    const ScenarioSpec spec = load_spec(std::string(UWP_SPEC_DIR) + "/" + file);
    EXPECT_EQ(spec.mode, RunMode::kFleet);
    const std::vector<sim::GroupScenario> workload = make_workload(spec);
    ASSERT_FALSE(workload.empty());
    for (const sim::GroupScenario& sc : workload) EXPECT_EQ(sc.kind, kind);
  }
}

TEST(GoldenSpecs, ForcedKindNeverShiftsTheSessionGeometryStreams) {
  // The same (seed, session_id) must describe the same group geometry and
  // clocks whether the kind was drawn or forced: every draw *before* the
  // kind-dependent branch (kind, size, topology, audio, arrival) is shared.
  sim::WorkloadParams mixed;
  mixed.sessions = 32;
  mixed.seed = 0x77u;
  sim::WorkloadParams forced = mixed;
  forced.force_kind = static_cast<int>(sim::GroupScenarioKind::kStatic);
  const auto a = sim::make_workload(mixed);
  const auto b = sim::make_workload(forced);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].scene.positions.size(), b[i].scene.positions.size());
    for (std::size_t d = 0; d < a[i].scene.positions.size(); ++d) {
      EXPECT_EQ(a[i].scene.positions[d].x, b[i].scene.positions[d].x);
      EXPECT_EQ(a[i].scene.positions[d].y, b[i].scene.positions[d].y);
      EXPECT_EQ(a[i].scene.audio[d].speaker_start_s, b[i].scene.audio[d].speaker_start_s);
    }
    EXPECT_EQ(a[i].arrival.detection_failure_prob,
              b[i].arrival.detection_failure_prob);
    EXPECT_EQ(b[i].kind, sim::GroupScenarioKind::kStatic);
  }
}

}  // namespace
}  // namespace uwp::config
