// §3.2 "Flipping disambiguation accuracy": 50 localization sets at the dock
// with the leader pointed at a nearby device. Settings per the paper:
// (1) a single non-pointed device's dual-mic signal resolves the flip;
// (2) all three other devices vote. Paper: 90.1% single-voter, 100% with
// three voters.
#include <cstdio>
#include <vector>

#include "core/ambiguity.hpp"
#include "sim/scenario.hpp"

int main() {
  uwp::Rng rng(50);
  uwp::sim::Deployment dep = uwp::sim::make_dock_testbed(rng);
  const uwp::sim::ScenarioRunner runner(dep);

  const uwp::Vec2 to1 = (dep.devices[1].position - dep.devices[0].position).xy();
  const double pointing = bearing(to1);

  const int sets = 50;
  int single_correct = 0, single_total = 0;
  int majority_correct = 0, majority_total = 0;

  for (int s = 0; s < sets; ++s) {
    // Collect one dual-mic vote per non-pointed device (waveform level).
    std::vector<int> expected, votes;
    for (std::size_t node = 2; node < dep.size(); ++node) {
      const double side = side_of_line(
          (dep.devices[node].position - dep.devices[0].position).xy(), {0, 0}, to1);
      expected.push_back(side > 0 ? 1 : -1);
      votes.push_back(runner.sample_leader_vote(node, pointing, rng));
    }

    // Setting (1): each single vote counts as one trial.
    for (std::size_t k = 0; k < votes.size(); ++k) {
      if (votes[k] == 0) continue;
      ++single_total;
      if (votes[k] == expected[k]) ++single_correct;
    }

    // Setting (2): majority of all three votes decides the flip. "Correct"
    // means the majority agrees with the true configuration.
    int score = 0;
    for (std::size_t k = 0; k < votes.size(); ++k) score += votes[k] * expected[k];
    ++majority_total;
    if (score > 0) ++majority_correct;
  }

  std::printf("=== Flipping disambiguation accuracy (50 sets, dock) ===\n");
  std::printf("single device's signal : %5.1f%%  (paper: 90.1%%)\n",
              100.0 * single_correct / std::max(single_total, 1));
  std::printf("all 3 devices voting   : %5.1f%%  (paper: 100%%)\n",
              100.0 * majority_correct / std::max(majority_total, 1));
  std::printf("\nThe binary left/right classification needs no AoA resolution:\n"
              "only which microphone the direct path reaches first.\n");
  return 0;
}
