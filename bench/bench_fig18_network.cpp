// Fig 18 (§3.2): full-system 2D localization accuracy at the dock and the
// boathouse with 5-device testbeds (Fig 17 topologies). Each round runs the
// complete pipeline — waveform-level preamble exchanges on every link, the
// distributed timestamp protocol, payload quantization, SMACOF + ambiguity
// resolution — and errors are broken down by the device's link distance to
// the leader. Paper medians (95%): dock 0.9 m (3.2 m), boathouse 1.6 m
// (4.9 m), growing with distance to the leader.
//
// Rounds are independent, so each site's rounds fan out across hardware
// threads via the SweepRunner (`--threads=N`), bit-identical at any count.
#include <cstdio>
#include <vector>

#include "bench_flags.hpp"
#include "sim/metrics.hpp"
#include "sim/scenario.hpp"
#include "sim/sweep.hpp"
#include "util/stats.hpp"

namespace {

void run_site(const char* name, uwp::sim::Deployment deployment,
              std::uint64_t master_seed, int rounds, std::size_t threads,
              uwp::sim::SweepTally& tally) {
  const uwp::sim::ScenarioRunner runner(std::move(deployment));
  uwp::sim::RoundOptions opts;
  opts.waveform_phy = true;

  uwp::sim::SweepOptions so;
  so.trials = static_cast<std::size_t>(rounds);
  so.master_seed = master_seed;
  so.threads = threads;
  // Each trial is one full round; it reports (leader distance, error) pairs
  // flattened per device so the distance breakdown survives aggregation.
  const uwp::sim::SweepResult res = uwp::sim::SweepRunner(so).run(
      [&runner, &opts](std::size_t, uwp::Rng& rng) -> std::vector<double> {
        const uwp::sim::RoundResult r = runner.run_round(opts, rng);
        if (!r.ok) return {};
        std::vector<double> out;
        for (std::size_t i = 1; i < runner.deployment().size(); ++i) {
          out.push_back(r.truth_xy[i].norm());
          out.push_back(r.error_2d[i]);
        }
        return out;
      });
  tally.add(res);

  std::vector<double> all, d0_10, d10_15, d15_25;
  int ok_rounds = 0;
  for (const auto& row : res.per_trial) {
    if (row.empty()) continue;
    ++ok_rounds;
    for (std::size_t k = 0; k + 1 < row.size(); k += 2) {
      const double link_dist = row[k];
      const double err = row[k + 1];
      all.push_back(err);
      (link_dist <= 10.0 ? d0_10 : link_dist <= 15.0 ? d10_15 : d15_25).push_back(err);
    }
  }

  std::printf("=== Fig 18: %s (%d/%d rounds localized) ===\n", name, ok_rounds,
              rounds);
  uwp::sim::print_summary_row("all devices (0-25 m)", all);
  uwp::sim::print_summary_row("links 0-10 m", d0_10);
  uwp::sim::print_summary_row("links 10-15 m", d10_15);
  uwp::sim::print_summary_row("links 15-25 m", d15_25);
  uwp::sim::print_cdf("all devices", all, 9);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t threads = uwp::bench::parse_flags(argc, argv).threads;
  uwp::sim::SweepTally tally;
  uwp::Rng rng(18);  // deployments only; round streams come from the sweep
  const int rounds = 20;  // paper: ~240 measurements per site
  run_site("dock", uwp::sim::make_dock_testbed(rng), 181, rounds, threads, tally);
  run_site("boathouse", uwp::sim::make_boathouse_testbed(rng), 182, rounds, threads,
           tally);
  std::printf("Paper reference: dock median 0.9 m (95%% 3.2 m); boathouse\n"
              "median 1.6 m (95%% 4.9 m); error grows with leader distance.\n");
  tally.print_footer();
  return 0;
}
