// Fig 18 (§3.2): full-system 2D localization accuracy at the dock and the
// boathouse with 5-device testbeds (Fig 17 topologies). Each round runs the
// complete pipeline — waveform-level preamble exchanges on every link, the
// distributed timestamp protocol, payload quantization, SMACOF + ambiguity
// resolution — and errors are broken down by the device's link distance to
// the leader. Paper medians (95%): dock 0.9 m (3.2 m), boathouse 1.6 m
// (4.9 m), growing with distance to the leader.
#include <cstdio>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/scenario.hpp"
#include "util/stats.hpp"

namespace {

void run_site(const char* name, uwp::sim::Deployment deployment, uwp::Rng& rng,
              int rounds) {
  const uwp::sim::ScenarioRunner runner(std::move(deployment));
  uwp::sim::RoundOptions opts;
  opts.waveform_phy = true;

  std::vector<double> all, d0_10, d10_15, d15_25;
  int ok_rounds = 0;
  for (int r = 0; r < rounds; ++r) {
    const uwp::sim::RoundResult res = runner.run_round(opts, rng);
    if (!res.ok) continue;
    ++ok_rounds;
    for (std::size_t i = 1; i < runner.deployment().size(); ++i) {
      const double link_dist = res.truth_xy[i].norm();
      all.push_back(res.error_2d[i]);
      (link_dist <= 10.0 ? d0_10 : link_dist <= 15.0 ? d10_15 : d15_25)
          .push_back(res.error_2d[i]);
    }
  }

  std::printf("=== Fig 18: %s (%d/%d rounds localized) ===\n", name, ok_rounds,
              rounds);
  uwp::sim::print_summary_row("all devices (0-25 m)", all);
  uwp::sim::print_summary_row("links 0-10 m", d0_10);
  uwp::sim::print_summary_row("links 10-15 m", d10_15);
  uwp::sim::print_summary_row("links 15-25 m", d15_25);
  uwp::sim::print_cdf("all devices", all, 9);
  std::printf("\n");
}

}  // namespace

int main() {
  uwp::Rng rng(18);
  const int rounds = 20;  // paper: ~240 measurements per site
  run_site("dock", uwp::sim::make_dock_testbed(rng), rng, rounds);
  run_site("boathouse", uwp::sim::make_boathouse_testbed(rng), rng, rounds);
  std::printf("Paper reference: dock median 0.9 m (95%% 3.2 m); boathouse\n"
              "median 1.6 m (95%% 4.9 m); error grows with leader distance.\n");
  return 0;
}
