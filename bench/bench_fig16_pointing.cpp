// Fig 16 (§3.1): leader orientation accuracy. Two simulated users point a
// wrist-mounted device at a stationary diver holding a checkerboard at
// several distances; the pointing error is measured with the camera-geometry
// method of the paper (angle between camera->checkerboard and the frame
// center ray). Paper average: 5.0 degrees across users and distances.
#include <cmath>
#include <cstdio>
#include <vector>

#include "sensors/pointing_model.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"

int main() {
  uwp::Rng rng(16);
  // Two users with slightly different pointing skill (the paper's two
  // volunteers show different per-distance means).
  uwp::sensors::PointingModel user1;
  uwp::sensors::PointingModel user2;
  user2.sigma_deg = 7.2;

  std::printf("=== Fig 16: human pointing error via camera geometry ===\n");
  std::printf("%8s %14s %14s\n", "dist[m]", "user 1 [deg]", "user 2 [deg]");

  std::vector<double> all;
  for (double dist : {2.0, 4.0, 6.0, 8.0, 10.0, 12.0}) {
    std::vector<double> e1, e2;
    for (int t = 0; t < 40; ++t) {
      for (const auto& [user, bucket] :
           {std::pair{&user1, &e1}, std::pair{&user2, &e2}}) {
        // The pointed bearing deviates from the true bearing; reconstruct
        // the error with the camera method: the checkerboard sits at the
        // true bearing, the frame center along the pointed bearing.
        const double pointed = user->point(0.0, dist, rng);
        const uwp::Vec3 camera{0, 0, 0};
        const uwp::Vec3 board{dist, 0, 0};
        const uwp::Vec3 center{dist * std::cos(pointed), dist * std::sin(pointed), 0};
        const double err =
            uwp::sensors::camera_orientation_error_deg(camera, board, center);
        bucket->push_back(err);
        all.push_back(err);
      }
    }
    std::printf("%8.0f %14.2f %14.2f\n", dist, uwp::mean(e1), uwp::mean(e2));
  }
  std::printf("\naverage across users and distances: %.1f deg (paper: 5.0 deg)\n",
              uwp::mean(all));
  std::printf("This error feeds Fig 6c: at 20 m a 5 deg pointing error costs\n"
              "~%.1f m of cross-range offset.\n", 20.0 * std::sin(uwp::deg_to_rad(5.0)));
  return 0;
}
