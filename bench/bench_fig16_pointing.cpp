// Fig 16 (§3.1): leader orientation accuracy. Two simulated users point a
// wrist-mounted device at a stationary diver holding a checkerboard at
// several distances; the pointing error is measured with the camera-geometry
// method of the paper (angle between camera->checkerboard and the frame
// center ray). Paper average: 5.0 degrees across users and distances.
// Each (distance, repetition) pair is an independent SweepRunner trial
// (`--threads=N` / UWP_THREADS, bit-identical at any count).
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_flags.hpp"
#include "sensors/pointing_model.hpp"
#include "sim/sweep.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  const std::size_t threads = uwp::bench::parse_flags(argc, argv).threads;
  // Two users with slightly different pointing skill (the paper's two
  // volunteers show different per-distance means).
  uwp::sensors::PointingModel user1;
  uwp::sensors::PointingModel user2;
  user2.sigma_deg = 7.2;

  const std::vector<double> dists = {2.0, 4.0, 6.0, 8.0, 10.0, 12.0};
  const std::size_t reps = 40;

  uwp::sim::SweepOptions so;
  so.trials = dists.size() * reps;  // trial -> (distance bucket, repetition)
  so.master_seed = 160;
  so.threads = threads;
  const uwp::sim::SweepResult res = uwp::sim::SweepRunner(so).run(
      [&](std::size_t trial, uwp::Rng& rng) -> std::vector<double> {
        const double dist = dists[trial / reps];
        std::vector<double> out;
        for (const uwp::sensors::PointingModel* user : {&user1, &user2}) {
          // The pointed bearing deviates from the true bearing; reconstruct
          // the error with the camera method: the checkerboard sits at the
          // true bearing, the frame center along the pointed bearing.
          const double pointed = user->point(0.0, dist, rng);
          const uwp::Vec3 camera{0, 0, 0};
          const uwp::Vec3 board{dist, 0, 0};
          const uwp::Vec3 center{dist * std::cos(pointed), dist * std::sin(pointed), 0};
          out.push_back(
              uwp::sensors::camera_orientation_error_deg(camera, board, center));
        }
        return out;
      });
  uwp::sim::SweepTally tally;
  tally.add(res);

  std::printf("=== Fig 16: human pointing error via camera geometry ===\n");
  std::printf("%8s %14s %14s\n", "dist[m]", "user 1 [deg]", "user 2 [deg]");
  for (std::size_t d = 0; d < dists.size(); ++d) {
    std::vector<double> e1, e2;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const auto& row = res.per_trial[d * reps + rep];
      if (row.size() != 2) continue;
      e1.push_back(row[0]);
      e2.push_back(row[1]);
    }
    std::printf("%8.0f %14.2f %14.2f\n", dists[d], uwp::mean(e1), uwp::mean(e2));
  }
  std::printf("\naverage across users and distances: %.1f deg (paper: 5.0 deg)\n",
              uwp::mean(res.samples));
  std::printf("This error feeds Fig 6c: at 20 m a 5 deg pointing error costs\n"
              "~%.1f m of cross-range offset.\n", 20.0 * std::sin(uwp::deg_to_rad(5.0)));
  tally.print_footer();
  return 0;
}
