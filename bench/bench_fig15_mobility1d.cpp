// Fig 15 (§3.1): 1D ranging of a continuously moving device. A static phone
// pings every second while the other rides a simulated extension pole along
// a 1D trajectory parallel to the coast at ~32 and ~56 cm/s (the paper's two
// runs). Prints estimated-vs-actual distance series and the error summary
// (paper: median 0.51 m, 95th percentile 1.17 m).
#include <cmath>
#include <cstdio>
#include <vector>

#include "channel/propagation.hpp"
#include "phy/ranging.hpp"
#include "sim/metrics.hpp"
#include "util/stats.hpp"

namespace {

// Back-and-forth sweep between 3 and 18 m with the given speed.
double trajectory(double t_s, double speed_mps) {
  const double span = 15.0;
  const double period = 2.0 * span / speed_mps;
  double phase = std::fmod(t_s, period) / period;  // 0..1
  const double x = phase < 0.5 ? phase * 2.0 : 2.0 - phase * 2.0;
  return 3.0 + span * x;
}

}  // namespace

int main() {
  const uwp::channel::Environment env = uwp::channel::make_dock();
  const uwp::phy::PreambleConfig pc;
  const uwp::phy::OfdmPreamble preamble(pc);
  const uwp::phy::PreambleRanger ranger(preamble);
  const uwp::channel::LinkSimulator link(env, pc.fs_hz);
  // Receiver-side configured sound speed: Wilson's equation with a ~4-6 C
  // temperature guess error (paper 2: <=2% c error at dive depths). This is
  // what makes ranging error grow with true distance.
  const double c_assumed = env.sound_speed_mps() + 22.0;
  uwp::Rng rng(15);

  std::vector<double> all_errors;
  for (double speed : {0.32, 0.56}) {
    std::printf("=== Fig 15: moving device at %.0f cm/s, ping every 2 s ===\n",
                speed * 100.0);
    std::printf("%6s %12s %12s %8s\n", "t[s]", "actual[m]", "estimated[m]", "err[m]");
    std::vector<double> errors;
    for (double t = 0.0; t <= 60.0; t += 2.0) {
      const double actual = trajectory(t, speed);
      uwp::channel::LinkConfig lc;
      lc.tx_pos = {actual, 0.0, 1.0};
      lc.rx_pos = {0.0, 0.0, 1.0};
      const auto rec = link.transmit(preamble.waveform(), lc, rng);
      const auto est = ranger.estimate(rec);
      if (!est) {
        std::printf("%6.0f %12.2f %12s\n", t, actual, "missed");
        continue;
      }
      const double d = uwp::phy::one_way_distance_m(*est, c_assumed);
      errors.push_back(std::abs(d - actual));
      if (std::fmod(t, 10.0) < 1e-9)
        std::printf("%6.0f %12.2f %12.2f %8.2f\n", t, actual, d, std::abs(d - actual));
    }
    uwp::sim::print_summary_row("errors over the run", errors);
    all_errors.insert(all_errors.end(), errors.begin(), errors.end());
    std::printf("\n");
  }
  std::printf("combined: median %.2f m, p95 %.2f m\n", uwp::median(all_errors),
              uwp::percentile(all_errors, 95.0));
  std::printf("(paper: median 0.51 m, 95th percentile 1.17 m)\n");
  return 0;
}
