// Fig 15 (§3.1): 1D ranging of a continuously moving device. A static phone
// pings every second while the other rides a simulated extension pole along
// a 1D trajectory parallel to the coast at ~32 and ~56 cm/s (the paper's two
// runs). Prints estimated-vs-actual distance series and the error summary
// (paper: median 0.51 m, 95th percentile 1.17 m).
// Each ping is an independent trial keyed by its time step, so the series
// fans out across hardware threads via the SweepRunner (`--threads=N`,
// bit-identical at any count) while printing in time order.
#include <cmath>
#include <cstdio>
#include <limits>
#include <vector>

#include "bench_flags.hpp"
#include "channel/propagation.hpp"
#include "phy/ranging.hpp"
#include "sim/metrics.hpp"
#include "sim/sweep.hpp"
#include "util/stats.hpp"

namespace {

// Back-and-forth sweep between 3 and 18 m with the given speed.
double trajectory(double t_s, double speed_mps) {
  const double span = 15.0;
  const double period = 2.0 * span / speed_mps;
  double phase = std::fmod(t_s, period) / period;  // 0..1
  const double x = phase < 0.5 ? phase * 2.0 : 2.0 - phase * 2.0;
  return 3.0 + span * x;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t threads = uwp::bench::parse_flags(argc, argv).threads;
  const uwp::channel::Environment env = uwp::channel::make_dock();
  const uwp::phy::PreambleConfig pc;
  const uwp::phy::OfdmPreamble preamble(pc);
  const uwp::phy::PreambleRanger ranger(preamble);
  const uwp::channel::LinkSimulator link(env, pc.fs_hz);
  // Receiver-side configured sound speed: Wilson's equation with a ~4-6 C
  // temperature guess error (paper 2: <=2% c error at dive depths). This is
  // what makes ranging error grow with true distance.
  const double c_assumed = env.sound_speed_mps() + 22.0;

  uwp::sim::SweepTally tally;
  std::vector<double> all_errors;
  std::uint64_t seed = 150;
  for (double speed : {0.32, 0.56}) {
    std::printf("=== Fig 15: moving device at %.0f cm/s, ping every 2 s ===\n",
                speed * 100.0);
    std::printf("%6s %12s %12s %8s\n", "t[s]", "actual[m]", "estimated[m]", "err[m]");

    uwp::sim::SweepOptions so;
    so.trials = 31;  // t = 0, 2, ..., 60 s
    so.master_seed = ++seed;
    so.threads = threads;
    // Each trial returns {error, estimate}; a missed detection returns NaN
    // sentinels which per_trial keeps verbatim for the series printout.
    const uwp::sim::SweepResult res = uwp::sim::SweepRunner(so).run(
        [&](std::size_t trial, uwp::Rng& rng) -> std::vector<double> {
          const double t = 2.0 * static_cast<double>(trial);
          const double actual = trajectory(t, speed);
          uwp::channel::LinkConfig lc;
          lc.tx_pos = {actual, 0.0, 1.0};
          lc.rx_pos = {0.0, 0.0, 1.0};
          const auto rec = link.transmit(preamble.waveform(), lc, rng);
          const auto est = ranger.estimate(rec);
          const double nan = std::numeric_limits<double>::quiet_NaN();
          if (!est) return {nan, nan};
          const double d = uwp::phy::one_way_distance_m(*est, c_assumed);
          return {std::abs(d - actual), d};
        });
    tally.add(res);

    std::vector<double> errors;
    for (std::size_t trial = 0; trial < res.per_trial.size(); ++trial) {
      const double t = 2.0 * static_cast<double>(trial);
      const double actual = trajectory(t, speed);
      const auto& row = res.per_trial[trial];
      const bool missed = row.size() < 2 || std::isnan(row[0]);
      // Misses always get a row (they are the interesting events); clean
      // estimates print on the 10-s marks only, as before the rewire.
      if (missed)
        std::printf("%6.0f %12.2f %12s\n", t, actual, "missed");
      else if (std::fmod(t, 10.0) < 1e-9)
        std::printf("%6.0f %12.2f %12.2f %8.2f\n", t, actual, row[1], row[0]);
      if (!missed) errors.push_back(row[0]);
    }
    uwp::sim::print_summary_row("errors over the run", errors);
    all_errors.insert(all_errors.end(), errors.begin(), errors.end());
    std::printf("\n");
  }
  std::printf("combined: median %.2f m, p95 %.2f m\n", uwp::median(all_errors),
              uwp::percentile(all_errors, 95.0));
  std::printf("(paper: median 0.51 m, 95th percentile 1.17 m)\n");
  tally.print_footer();
  return 0;
}
