// §3.2 "Localization protocol round-trip time" + §2.4 comms latency.
// Runs the distributed timestamp protocol 40 times per group size and
// reports the mean round time (paper: 1.2 / 1.6 / 1.9 / 2.2 / 2.5 s for
// N = 3..7), then the simultaneous-FSK uplink airtime for N = 6/7/8
// (paper: ~0.9 / 1.0 / 1.2 s at 100 bps per device).
#include <cstdio>
#include <vector>

#include "proto/ranging_solver.hpp"
#include "proto/timestamp_protocol.hpp"
#include "proto/uplink.hpp"
#include "sim/deployment.hpp"
#include "util/stats.hpp"

int main() {
  uwp::Rng rng(40);

  std::printf("=== Protocol round-trip time vs group size (40 runs each) ===\n");
  std::printf("%4s %12s %14s %16s\n", "N", "mean RTT[s]", "paper mean[s]",
              "worst-case[s]");
  const double paper[] = {1.2, 1.6, 1.9, 2.2, 2.5};
  for (std::size_t n = 3; n <= 7; ++n) {
    uwp::proto::ProtocolConfig cfg;
    cfg.num_devices = n;
    std::vector<double> rtts;
    for (int run = 0; run < 40; ++run) {
      std::vector<uwp::proto::ProtocolDevice> devices(n);
      for (std::size_t i = 0; i < n; ++i) {
        devices[i].id = i;
        devices[i].position = {rng.uniform(-14.0, 14.0), rng.uniform(-14.0, 14.0),
                               rng.uniform(0.5, 3.0)};
        devices[i].audio = uwp::sim::random_audio_timing(rng);
      }
      uwp::Matrix conn(n, n, 1.0);
      for (std::size_t i = 0; i < n; ++i) conn(i, i) = 0.0;
      const uwp::proto::TimestampProtocol protocol(cfg, devices);
      rtts.push_back(protocol.run(conn, rng).round_duration_s);
    }
    std::printf("%4zu %12.2f %14.1f %16.2f\n", n, uwp::mean(rtts), paper[n - 3],
                uwp::proto::round_trip_worst_case(cfg));
  }

  std::printf("\n=== Uplink airtime: simultaneous FSK reports to the leader ===\n");
  std::printf("%4s %14s %14s %14s\n", "N", "payload[bits]", "airtime[s]",
              "paper[s]");
  const double paper_air[] = {0.9, 1.0, 1.2};
  for (std::size_t n : {6u, 7u, 8u}) {
    uwp::proto::UplinkConfig ucfg;
    ucfg.codec.protocol.num_devices = n;
    ucfg.fsk.num_bands = n;
    const uwp::proto::UplinkSimulator uplink(ucfg);
    std::printf("%4zu %14zu %14.2f %14.1f\n", n, ucfg.codec.payload_bits(),
                uplink.report_airtime_s(), paper_air[n == 6 ? 0 : (n == 7 ? 1 : 2)]);
  }

  std::printf("\n=== Uplink decode check (N=6, simultaneous bands + AWGN) ===\n");
  {
    uwp::proto::UplinkConfig ucfg;
    ucfg.codec.protocol.num_devices = 6;
    ucfg.fsk.num_bands = 6;
    ucfg.noise_rms = 0.2;
    const uwp::proto::UplinkSimulator uplink(ucfg);
    std::vector<uwp::proto::DeviceReport> reports(6);
    for (std::size_t id = 1; id < 6; ++id) {
      reports[id].depth_m = 1.5 * static_cast<double>(id);
      reports[id].slot_delta_s.assign(6, std::nullopt);
      for (std::size_t j = 0; j < 6; ++j)
        if (j != id) reports[id].slot_delta_s[j] = 0.002 * static_cast<double>(j + 1);
    }
    const uwp::proto::UplinkResult res = uplink.run(reports, rng);
    int ok = 0;
    for (std::size_t id = 1; id < 6; ++id) ok += res.decode_exact[id] ? 1 : 0;
    std::printf("devices decoded exactly: %d/5, airtime %.2f s\n", ok, res.airtime_s);
  }
  return 0;
}
