// Fig 13 (§3.1):
// (a) ranging error vs device depth at 18 m horizontal separation in 9 m of
//     water — mid-depth (5 m) is best because boundary multipath is weakest
//     away from the surface and the bottom.
// (b) depth-sensor accuracy: Apple Watch Ultra gauge vs phone pressure
//     sensor in a pouch over 0-9 m (paper: 0.15 +/- 0.11 m and
//     0.42 +/- 0.18 m average error).
// Fig 13a's transmissions fan out across hardware threads through the
// SweepRunner (`--threads=N`, bit-identical at any count); 13b's sensor
// sweep is trivially cheap and stays serial.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_flags.hpp"
#include "channel/propagation.hpp"
#include "phy/ranging.hpp"
#include "sensors/depth_sensor_model.hpp"
#include "sim/metrics.hpp"
#include "sim/sweep.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  const std::size_t threads = uwp::bench::parse_flags(argc, argv).threads;
  const uwp::channel::Environment env = uwp::channel::make_dock();  // 9 m deep
  const uwp::phy::PreambleConfig pc;
  const uwp::phy::OfdmPreamble preamble(pc);
  const uwp::phy::PreambleRanger ranger(preamble);
  const uwp::channel::LinkSimulator link(env, pc.fs_hz);
  // Receiver-side configured sound speed: Wilson's equation with a ~4-6 C
  // temperature guess error (paper 2: <=2% c error at dive depths). This is
  // what makes ranging error grow with true distance.
  const double c_assumed = env.sound_speed_mps() + 22.0;
  uwp::Rng rng(13);

  uwp::sim::SweepTally tally;

  std::printf("=== Fig 13a: ranging error vs depth (18 m horizontal) ===\n");
  const double range = 18.0;
  std::uint64_t seed = 130;
  for (double depth : {2.0, 5.0, 8.0}) {
    uwp::channel::LinkConfig lc;
    lc.tx_pos = {0.0, 0.0, depth};
    lc.rx_pos = {range, 0.0, depth};
    const double true_d = range;

    uwp::sim::SweepOptions so;
    so.trials = 30;
    so.master_seed = ++seed;
    so.threads = threads;
    const uwp::sim::SweepResult res = uwp::sim::SweepRunner(so).run(
        [&](std::size_t, uwp::Rng& trial_rng) -> std::vector<double> {
          const auto rec = link.transmit(preamble.waveform(), lc, trial_rng);
          if (const auto est = ranger.estimate(rec))
            return {std::abs(uwp::phy::one_way_distance_m(*est, c_assumed) - true_d)};
          return {};
        });
    tally.add(res);

    char label[32];
    std::snprintf(label, sizeof label, "depth %.0f m", depth);
    uwp::sim::print_summary_row(label, res.samples);
  }
  std::printf("(paper: 5 m depth best — median 0.28 m, p95 0.73 m — because\n"
              " multipath is strongest near the surface and the bottom)\n\n");

  std::printf("=== Fig 13b: depth sensor accuracy, 0-9 m in 1 m steps ===\n");
  const auto watch = uwp::sensors::DepthSensorModel::watch_ultra_gauge();
  const auto phone = uwp::sensors::DepthSensorModel::phone_pressure_in_pouch();
  std::printf("%8s %18s %18s\n", "ref[m]", "watch reading[m]", "phone reading[m]");
  std::vector<double> watch_err, phone_err;
  for (double ref = 0.0; ref <= 9.0; ref += 1.0) {
    // Paper holds each depth 30 s; model that as a 30-reading average.
    const double w = watch.read_averaged(ref, 30, rng);
    const double p = phone.read_averaged(ref, 30, rng);
    std::printf("%8.1f %18.2f %18.2f\n", ref, w, p);
    for (int t = 0; t < 60; ++t) {
      watch_err.push_back(std::abs(watch.read(ref, rng) - ref));
      phone_err.push_back(std::abs(phone.read(ref, rng) - ref));
    }
  }
  std::printf("\naverage |error|: watch %.2f +/- %.2f m, phone %.2f +/- %.2f m\n",
              uwp::mean(watch_err), uwp::stddev(watch_err), uwp::mean(phone_err),
              uwp::stddev(phone_err));
  std::printf("(paper: watch 0.15 +/- 0.11 m, phone 0.42 +/- 0.18 m)\n");
  tally.print_footer();
  return 0;
}
