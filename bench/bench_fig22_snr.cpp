// Fig 22 (Appendix): per-subcarrier SNR between two phones at 10/20/28 m at
// the boathouse. An 8-symbol OFDM preamble is transmitted; per-bin SNR is
// estimated from the LS channel estimate (signal power) against the ambient
// noise spectrum measured in a signal-free window.
//
// Each distance's transmissions run as a SweepRunner sweep (`--threads=N`);
// a trial contributes the whole per-bin SNR row, and rows are averaged over
// the trials whose detection succeeded — bit-identical at any thread count.
#include <cmath>
#include <complex>
#include <cstdio>
#include <vector>

#include "bench_flags.hpp"
#include "channel/propagation.hpp"
#include "dsp/fft.hpp"
#include "phy/channel_estimator.hpp"
#include "phy/preamble_detector.hpp"
#include "sim/sweep.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  const std::size_t threads = uwp::bench::parse_flags(argc, argv).threads;

  const uwp::channel::Environment env = uwp::channel::make_boathouse();
  uwp::phy::PreambleConfig pc;
  pc.num_symbols = 8;  // the appendix uses 8 OFDM symbols
  pc.pn = {1, 1, -1, 1, 1, -1, 1, 1};
  const uwp::phy::OfdmPreamble preamble(pc);
  const uwp::phy::PreambleDetector detector(preamble);
  const uwp::phy::LsChannelEstimator estimator(preamble);
  const uwp::channel::LinkSimulator link(env, pc.fs_hz);

  std::printf("=== Fig 22: per-subcarrier SNR (1-5 kHz, boathouse) ===\n");
  std::printf("%10s", "freq[kHz]");
  const std::vector<double> distances = {10.0, 20.0, 28.0};
  for (double d : distances) std::printf("  %6.0fm", d);
  std::printf("\n");

  const double bin_hz = pc.fs_hz / static_cast<double>(pc.symbol_len);
  const std::size_t lo = pc.bin_lo();
  const std::size_t hi = pc.bin_hi();
  const std::size_t bins = hi - lo + 1;
  std::vector<std::vector<double>> snr_db(distances.size(),
                                          std::vector<double>(bins, 0.0));

  uwp::sim::SweepTally tally;
  for (std::size_t di = 0; di < distances.size(); ++di) {
    uwp::channel::LinkConfig lc;
    lc.tx_pos = {0.0, 0.0, 1.0};
    lc.rx_pos = {distances[di], 0.0, 1.0};

    uwp::sim::SweepOptions so;
    so.trials = 6;
    so.master_seed = 22 + di;  // fixed per distance: thread-count invariant
    so.threads = threads;
    const uwp::sim::SweepResult res = uwp::sim::SweepRunner(so).run(
        [&](std::size_t, uwp::Rng& rng) -> std::vector<double> {
          const uwp::channel::Reception rec = link.transmit(preamble.waveform(), lc, rng);
          const auto det = detector.detect(rec.mic[0]);
          if (!det) return {};  // missed detection contributes no row
          const uwp::phy::ChannelEstimate est = estimator.estimate(rec.mic[0],
                                                                   det->coarse_index);
          // Noise spectrum from a signal-free tail window of the same length.
          std::vector<double> tail(rec.mic[0].end() - static_cast<long>(pc.symbol_len),
                                   rec.mic[0].end());
          const auto noise_spec = uwp::dsp::fft_real(tail);
          std::vector<double> row(bins, 0.0);
          for (std::size_t k = lo; k <= hi; ++k) {
            // |H|^2 * |X|^2 vs noise bin power. ZC bins have unit magnitude.
            const double sig = std::norm(est.freq[k]);
            const double noise = std::norm(noise_spec[k]) /
                                 static_cast<double>(pc.symbol_len);
            row[k - lo] =
                10.0 * std::log10(std::max(sig, 1e-30) / std::max(noise, 1e-30));
          }
          return row;
        });
    tally.add(res);

    std::size_t used = 0;
    for (const auto& row : res.per_trial) {
      if (row.empty()) continue;
      ++used;
      for (std::size_t b = 0; b < bins; ++b) snr_db[di][b] += row[b];
    }
    if (used > 0)
      for (double& v : snr_db[di]) v /= static_cast<double>(used);
  }

  for (std::size_t k = lo; k <= hi; k += 8) {
    std::printf("%10.2f", k * bin_hz / 1000.0);
    for (std::size_t di = 0; di < distances.size(); ++di)
      std::printf("  %7.1f", snr_db[di][k - lo]);
    std::printf("\n");
  }
  std::printf("\n(paper shape: SNR decreases with distance; the usable band\n"
              " spans 1-5 kHz with tens of dB at 10 m)\n");
  tally.print_footer();
  return 0;
}
