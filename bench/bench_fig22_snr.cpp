// Fig 22 (Appendix): per-subcarrier SNR between two phones at 10/20/28 m at
// the boathouse. An 8-symbol OFDM preamble is transmitted; per-bin SNR is
// estimated from the LS channel estimate (signal power) against the ambient
// noise spectrum measured in a signal-free window.
#include <cmath>
#include <complex>
#include <cstdio>
#include <vector>

#include "channel/propagation.hpp"
#include "dsp/fft.hpp"
#include "phy/channel_estimator.hpp"
#include "phy/preamble_detector.hpp"
#include "util/stats.hpp"

int main() {
  const uwp::channel::Environment env = uwp::channel::make_boathouse();
  uwp::phy::PreambleConfig pc;
  pc.num_symbols = 8;  // the appendix uses 8 OFDM symbols
  pc.pn = {1, 1, -1, 1, 1, -1, 1, 1};
  const uwp::phy::OfdmPreamble preamble(pc);
  const uwp::phy::PreambleDetector detector(preamble);
  const uwp::phy::LsChannelEstimator estimator(preamble);
  const uwp::channel::LinkSimulator link(env, pc.fs_hz);
  uwp::Rng rng(22);

  std::printf("=== Fig 22: per-subcarrier SNR (1-5 kHz, boathouse) ===\n");
  std::printf("%10s", "freq[kHz]");
  const std::vector<double> distances = {10.0, 20.0, 28.0};
  for (double d : distances) std::printf("  %6.0fm", d);
  std::printf("\n");

  const double bin_hz = pc.fs_hz / static_cast<double>(pc.symbol_len);
  const std::size_t lo = pc.bin_lo();
  const std::size_t hi = pc.bin_hi();
  std::vector<std::vector<double>> snr_db(distances.size(),
                                          std::vector<double>(hi - lo + 1, 0.0));

  for (std::size_t di = 0; di < distances.size(); ++di) {
    uwp::channel::LinkConfig lc;
    lc.tx_pos = {0.0, 0.0, 1.0};
    lc.rx_pos = {distances[di], 0.0, 1.0};
    const int trials = 6;
    int used = 0;
    for (int t = 0; t < trials; ++t) {
      const uwp::channel::Reception rec = link.transmit(preamble.waveform(), lc, rng);
      const auto det = detector.detect(rec.mic[0]);
      if (!det) continue;
      const uwp::phy::ChannelEstimate est = estimator.estimate(rec.mic[0],
                                                               det->coarse_index);
      // Noise spectrum from a signal-free tail window of the same length.
      std::vector<double> tail(rec.mic[0].end() - static_cast<long>(pc.symbol_len),
                               rec.mic[0].end());
      const auto noise_spec = uwp::dsp::fft_real(tail);
      ++used;
      for (std::size_t k = lo; k <= hi; ++k) {
        // |H|^2 * |X|^2 vs noise bin power. ZC bins have unit magnitude.
        const double sig = std::norm(est.freq[k]);
        const double noise = std::norm(noise_spec[k]) /
                             static_cast<double>(pc.symbol_len);
        snr_db[di][k - lo] +=
            10.0 * std::log10(std::max(sig, 1e-30) / std::max(noise, 1e-30));
      }
    }
    if (used > 0)
      for (double& v : snr_db[di]) v /= used;
  }

  for (std::size_t k = lo; k <= hi; k += 8) {
    std::printf("%10.2f", k * bin_hz / 1000.0);
    for (std::size_t di = 0; di < distances.size(); ++di)
      std::printf("  %7.1f", snr_db[di][k - lo]);
    std::printf("\n");
  }
  std::printf("\n(paper shape: SNR decreases with distance; the usable band\n"
              " spans 1-5 kHz with tens of dB at 10 m)\n");
  return 0;
}
