// Fig 11 (§3.1): 1D ranging accuracy vs device separation at the dock.
// (a) CDF of absolute error at 10/20/35/45 m using the dual-mic pipeline
//     (paper medians: 0.48 / 0.80 / 0.86 m at 10/20/35 m).
// (b) 95th-percentile error using both microphones vs each mic alone —
//     dual-mic should win at every distance (paper: up to 4.52 m saved
//     at 45 m).
//
// Each distance's exchanges run as one SweepRunner sweep (`--threads=N`);
// every trial shares one channel reception across the three mic modes, like
// the paper's measurement (same recording, different processing).
#include <cmath>
#include <cstdio>
#include <limits>
#include <vector>

#include "bench_flags.hpp"
#include "channel/propagation.hpp"
#include "phy/ranging.hpp"
#include "sim/metrics.hpp"
#include "sim/sweep.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  const std::size_t threads = uwp::bench::parse_flags(argc, argv).threads;

  const uwp::channel::Environment env = uwp::channel::make_dock();
  const uwp::phy::PreambleConfig pc;
  const uwp::phy::OfdmPreamble preamble(pc);
  const uwp::phy::PreambleRanger ranger(preamble);
  const uwp::channel::LinkSimulator link(env, pc.fs_hz);
  // Receiver-side configured sound speed: Wilson's equation with a ~4-6 C
  // temperature guess error (paper 2: <=2% c error at dive depths). This is
  // what makes ranging error grow with true distance.
  const double c_assumed = env.sound_speed_mps() + 22.0;

  const std::vector<double> distances = {10.0, 20.0, 35.0, 45.0};
  const int trials = 40;  // paper: up to 60 exchanges per distance
  const double kMiss = std::numeric_limits<double>::quiet_NaN();
  const std::vector<uwp::phy::MicMode> modes = {
      uwp::phy::MicMode::kDual, uwp::phy::MicMode::kMic1Only,
      uwp::phy::MicMode::kMic2Only};

  uwp::sim::SweepTally tally;

  std::printf("=== Fig 11a: ranging error CDF vs separation (dual mic) ===\n");
  std::vector<std::vector<double>> dual_errors(distances.size());
  for (std::size_t di = 0; di < distances.size(); ++di) {
    const double range = distances[di];
    uwp::channel::LinkConfig lc;
    lc.tx_pos = {0.0, 0.0, 2.5};
    lc.rx_pos = {range, 0.0, 2.5};

    uwp::sim::SweepOptions so;
    so.trials = trials;
    so.master_seed = 110 + di;  // fixed per distance
    so.threads = threads;
    // Trial row: [dual, bottom-only, top-only] absolute errors, NaN = missed.
    const uwp::sim::SweepResult res = uwp::sim::SweepRunner(so).run(
        [&](std::size_t, uwp::Rng& rng) {
          const uwp::channel::Reception rec = link.transmit(preamble.waveform(), lc, rng);
          std::vector<double> row;
          for (const uwp::phy::MicMode mode : modes) {
            const auto est = ranger.estimate(rec, mode);
            row.push_back(est ? std::abs(uwp::phy::one_way_distance_m(*est, c_assumed) - range)
                              : kMiss);
          }
          return row;
        });
    tally.add(res);

    std::vector<double> mic1_err, mic2_err;
    for (const auto& row : res.per_trial) {
      if (row.size() != modes.size()) continue;
      if (!std::isnan(row[0])) dual_errors[di].push_back(row[0]);
      if (!std::isnan(row[1])) mic1_err.push_back(row[1]);
      if (!std::isnan(row[2])) mic2_err.push_back(row[2]);
    }

    char label[64];
    std::snprintf(label, sizeof label, "dual-mic @ %2.0f m", range);
    uwp::sim::print_summary_row(label, dual_errors[di]);

    // Stash single-mic stats for part (b).
    std::snprintf(label, sizeof label, "  bottom-only @ %2.0f m", range);
    uwp::sim::print_summary_row(label, mic1_err);
    std::snprintf(label, sizeof label, "  top-only    @ %2.0f m", range);
    uwp::sim::print_summary_row(label, mic2_err);

    std::printf("=== Fig 11b @ %.0f m: 95th percentile error ===\n", range);
    auto p95 = [](const std::vector<double>& v) {
      return v.empty() ? 99.0 : uwp::percentile(v, 95.0);
    };
    std::printf("  both=%5.2f m  bottom=%5.2f m  top=%5.2f m\n\n",
                p95(dual_errors[di]), p95(mic1_err), p95(mic2_err));
  }

  std::printf("=== Fig 11a CDFs ===\n");
  for (std::size_t di = 0; di < distances.size(); ++di) {
    char label[32];
    std::snprintf(label, sizeof label, "%2.0f m", distances[di]);
    uwp::sim::print_cdf(label, dual_errors[di], 9);
  }
  std::printf("\nPaper reference: medians 0.48 / 0.80 / 0.86 m at 10/20/35 m;\n"
              "dual-mic lowers the 95%% tail at every distance.\n");
  tally.print_footer();
  return 0;
}
