// Fig 11 (§3.1): 1D ranging accuracy vs device separation at the dock.
// (a) CDF of absolute error at 10/20/35/45 m using the dual-mic pipeline
//     (paper medians: 0.48 / 0.80 / 0.86 m at 10/20/35 m).
// (b) 95th-percentile error using both microphones vs each mic alone —
//     dual-mic should win at every distance (paper: up to 4.52 m saved
//     at 45 m).
#include <cmath>
#include <cstdio>
#include <vector>

#include "channel/propagation.hpp"
#include "phy/ranging.hpp"
#include "sim/metrics.hpp"
#include "util/stats.hpp"

int main() {
  const uwp::channel::Environment env = uwp::channel::make_dock();
  const uwp::phy::PreambleConfig pc;
  const uwp::phy::OfdmPreamble preamble(pc);
  const uwp::phy::PreambleRanger ranger(preamble);
  const uwp::channel::LinkSimulator link(env, pc.fs_hz);
  // Receiver-side configured sound speed: Wilson's equation with a ~4-6 C
  // temperature guess error (paper 2: <=2% c error at dive depths). This is
  // what makes ranging error grow with true distance.
  const double c_assumed = env.sound_speed_mps() + 22.0;
  uwp::Rng rng(11);

  const std::vector<double> distances = {10.0, 20.0, 35.0, 45.0};
  const int trials = 40;  // paper: up to 60 exchanges per distance

  std::printf("=== Fig 11a: ranging error CDF vs separation (dual mic) ===\n");
  std::vector<std::vector<double>> dual_errors(distances.size());
  for (std::size_t di = 0; di < distances.size(); ++di) {
    const double range = distances[di];
    uwp::channel::LinkConfig lc;
    lc.tx_pos = {0.0, 0.0, 2.5};
    lc.rx_pos = {range, 0.0, 2.5};
    std::vector<double> mic1_err, mic2_err;
    for (int t = 0; t < trials; ++t) {
      const uwp::channel::Reception rec = link.transmit(preamble.waveform(), lc, rng);
      for (auto [mode, bucket] :
           {std::pair{uwp::phy::MicMode::kDual, &dual_errors[di]},
            std::pair{uwp::phy::MicMode::kMic1Only, &mic1_err},
            std::pair{uwp::phy::MicMode::kMic2Only, &mic2_err}}) {
        const auto est = ranger.estimate(rec, mode);
        if (est)
          bucket->push_back(std::abs(
              uwp::phy::one_way_distance_m(*est, c_assumed) - range));
      }
    }
    char label[64];
    std::snprintf(label, sizeof label, "dual-mic @ %2.0f m", range);
    uwp::sim::print_summary_row(label, dual_errors[di]);

    // Stash single-mic stats for part (b).
    std::snprintf(label, sizeof label, "  bottom-only @ %2.0f m", range);
    uwp::sim::print_summary_row(label, mic1_err);
    std::snprintf(label, sizeof label, "  top-only    @ %2.0f m", range);
    uwp::sim::print_summary_row(label, mic2_err);

    std::printf("=== Fig 11b @ %.0f m: 95th percentile error ===\n", range);
    auto p95 = [](const std::vector<double>& v) {
      return v.empty() ? 99.0 : uwp::percentile(v, 95.0);
    };
    std::printf("  both=%5.2f m  bottom=%5.2f m  top=%5.2f m\n\n",
                p95(dual_errors[di]), p95(mic1_err), p95(mic2_err));
  }

  std::printf("=== Fig 11a CDFs ===\n");
  for (std::size_t di = 0; di < distances.size(); ++di) {
    char label[32];
    std::snprintf(label, sizeof label, "%2.0f m", distances[di]);
    uwp::sim::print_cdf(label, dual_errors[di], 9);
  }
  std::printf("\nPaper reference: medians 0.48 / 0.80 / 0.86 m at 10/20/35 m;\n"
              "dual-mic lowers the 95%% tail at every distance.\n");
  return 0;
}
