// Fig 12 (§3.1): comparison against BeepBeep-style chirp autocorrelation
// [75] and CAT-style FMCW [64] at the boathouse.
// (a) signal-detection false positives / false negatives: our xcorr+autocorr
//     gate vs the window-power threshold TH_SD swept over thresholds.
// (b) 1D ranging error (mean +/- std) at 10/20/28 m for the three methods,
//     with equal signal duration and bandwidth.
#include <cmath>
#include <cstdio>
#include <vector>

#include "channel/propagation.hpp"
#include "phy/baseline/chirp_ranger.hpp"
#include "phy/baseline/fmcw_ranger.hpp"
#include "phy/ranging.hpp"
#include "util/stats.hpp"

int main() {
  const uwp::channel::Environment env = uwp::channel::make_boathouse();
  const uwp::phy::PreambleConfig pc;
  const uwp::phy::OfdmPreamble preamble(pc);
  const uwp::phy::PreambleRanger ranger(preamble);
  const uwp::channel::LinkSimulator link(env, pc.fs_hz);
  // Receiver-side configured sound speed: Wilson's equation with a ~4-6 C
  // temperature guess error (paper 2: <=2% c error at dive depths). This is
  // what makes ranging error grow with true distance.
  const double c_assumed = env.sound_speed_mps() + 22.0;
  uwp::Rng rng(12);

  const std::vector<double> distances = {10.0, 20.0, 28.0};
  const int sends = 30;        // paper: 180 preambles per distance
  const int noise_trials = 30; // noise-only segments for false positives

  // ---------- (a) detection robustness ----------
  std::printf("=== Fig 12a: detection FP/FN (ours vs FMCW window-power TH_SD) ===\n");
  // Pre-generate receptions at 20 m plus noise-only segments.
  uwp::channel::LinkConfig lc;
  lc.tx_pos = {0.0, 0.0, 1.0};
  lc.rx_pos = {20.0, 0.0, 1.0};

  std::vector<uwp::channel::Reception> with_signal, noise_only;
  const uwp::phy::baseline::ChirpRanger chirp{uwp::phy::baseline::ChirpConfig{}};
  std::vector<uwp::channel::Reception> chirp_rx, chirp_noise;
  for (int t = 0; t < sends; ++t) {
    with_signal.push_back(link.transmit(preamble.waveform(), lc, rng));
    chirp_rx.push_back(link.transmit(chirp.waveform(), lc, rng));
  }
  for (int t = 0; t < noise_trials; ++t) {
    noise_only.push_back(link.noise_only(0.5, lc, rng));
    chirp_noise.push_back(link.noise_only(0.5, lc, rng));
  }

  std::printf("%-26s %8s %8s\n", "detector", "FP rate", "FN rate");
  {
    const uwp::phy::PreambleDetector det(preamble);
    int fn = 0, fp = 0;
    for (const auto& r : with_signal)
      if (!det.detect(r.mic[0])) ++fn;
    for (const auto& r : noise_only)
      if (det.detect(r.mic[0])) ++fp;
    std::printf("%-26s %8.3f %8.3f\n", "ours (xcorr+autocorr)",
                static_cast<double>(fp) / noise_trials,
                static_cast<double>(fn) / sends);
  }
  for (double th_db : {3.0, 6.0, 10.0, 15.0, 20.0}) {
    uwp::phy::baseline::ChirpConfig ccfg;
    ccfg.detect_threshold_db = th_db;
    const uwp::phy::baseline::ChirpRanger det(ccfg);
    int fn = 0, fp = 0;
    for (const auto& r : chirp_rx)
      if (!det.detect(r.mic[0])) ++fn;
    for (const auto& r : chirp_noise)
      if (det.detect(r.mic[0])) ++fp;
    std::printf("power TH_SD = %4.1f dB       %8.3f %8.3f\n", th_db,
                static_cast<double>(fp) / noise_trials,
                static_cast<double>(fn) / sends);
  }
  std::printf("(paper: the power threshold trades FP against FN; the PN-coded\n"
              " autocorrelation gate achieves low FP and FN simultaneously)\n\n");

  // ---------- (b) 1D ranging error ----------
  std::printf("=== Fig 12b: 1D ranging error, mean +/- std (m) ===\n");
  std::printf("%8s %22s %22s %22s\n", "dist", "ours (dual-mic)",
              "BeepBeep (chirp corr)", "CAT (FMCW)");
  const uwp::phy::baseline::FmcwRanger fmcw{uwp::phy::baseline::FmcwConfig{}};
  for (double range : distances) {
    lc.rx_pos = {range, 0.0, 1.0};
    std::vector<double> ours, beep, cat;
    for (int t = 0; t < sends; ++t) {
      const auto rec = link.transmit(preamble.waveform(), lc, rng);
      if (const auto est = ranger.estimate(rec))
        ours.push_back(std::abs(
            uwp::phy::one_way_distance_m(*est, c_assumed) - range));

      const auto rec_c = link.transmit(chirp.waveform(), lc, rng);
      if (const auto arr = chirp.estimate_arrival(rec_c.mic[0]))
        beep.push_back(std::abs(*arr / pc.fs_hz * c_assumed - range));

      const auto rec_f = link.transmit(fmcw.waveform(), lc, rng);
      if (const auto d = fmcw.estimate_delay_samples(rec_f.mic[0]))
        cat.push_back(std::abs(*d / pc.fs_hz * c_assumed - range));
    }
    auto fmt = [](const std::vector<double>& v) {
      static char buf[4][48];
      static int slot = 0;
      slot = (slot + 1) % 4;
      if (v.empty())
        std::snprintf(buf[slot], 48, "(none)");
      else
        // median [mean +/- std]: the median is robust to the occasional
        // catastrophic miss that dominates the mean at small n.
        std::snprintf(buf[slot], 48, "%5.2f [%5.2f+/-%5.2f]", uwp::median(v),
                      uwp::mean(v), uwp::stddev(v));
      return buf[slot];
    };
    std::printf("%7.0fm %22s %22s %22s\n", range, fmt(ours), fmt(beep), fmt(cat));
  }
  std::printf("(paper shape: ours lowest at every distance; FMCW degrades most\n"
              " because multipath smears the beat spectrum)\n");
  return 0;
}
