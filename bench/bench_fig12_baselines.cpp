// Fig 12 (§3.1): comparison against BeepBeep-style chirp autocorrelation
// [75] and CAT-style FMCW [64] at the boathouse.
// (a) signal-detection false positives / false negatives: our xcorr+autocorr
//     gate vs the window-power threshold TH_SD swept over thresholds.
// (b) 1D ranging error (mean +/- std) at 10/20/28 m for the three methods,
//     with equal signal duration and bandwidth.
//
// Every series is a SweepRunner Monte-Carlo sweep: the waveform-level channel
// simulation dominates the cost and each trial is independent, so trials fan
// out across hardware threads (`--threads=N`) with bit-identical rates.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_flags.hpp"
#include "channel/propagation.hpp"
#include "phy/baseline/chirp_ranger.hpp"
#include "phy/baseline/fmcw_ranger.hpp"
#include "phy/ranging.hpp"
#include "sim/sweep.hpp"
#include "util/stats.hpp"

namespace {

uwp::sim::SweepResult sweep(std::size_t trials, std::uint64_t seed,
                            std::size_t threads, uwp::sim::SweepTally& tally,
                            const uwp::sim::TrialFn& fn) {
  uwp::sim::SweepOptions so;
  so.trials = trials;
  so.master_seed = seed;
  so.threads = threads;
  const uwp::sim::SweepResult res = uwp::sim::SweepRunner(so).run(fn);
  tally.add(res);
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t threads = uwp::bench::parse_flags(argc, argv).threads;
  uwp::sim::SweepTally tally;

  const uwp::channel::Environment env = uwp::channel::make_boathouse();
  const uwp::phy::PreambleConfig pc;
  const uwp::phy::OfdmPreamble preamble(pc);
  const uwp::phy::PreambleRanger ranger(preamble);
  const uwp::channel::LinkSimulator link(env, pc.fs_hz);
  // Receiver-side configured sound speed: Wilson's equation with a ~4-6 C
  // temperature guess error (paper 2: <=2% c error at dive depths). This is
  // what makes ranging error grow with true distance.
  const double c_assumed = env.sound_speed_mps() + 22.0;

  const std::vector<double> distances = {10.0, 20.0, 28.0};
  const int sends = 30;        // paper: 180 preambles per distance
  const int noise_trials = 30; // noise-only segments for false positives
  std::uint64_t seed = 12;     // fixed master seed per series

  // ---------- (a) detection robustness ----------
  std::printf("=== Fig 12a: detection FP/FN (ours vs FMCW window-power TH_SD) ===\n");
  uwp::channel::LinkConfig lc;
  lc.tx_pos = {0.0, 0.0, 1.0};
  lc.rx_pos = {20.0, 0.0, 1.0};

  const uwp::phy::baseline::ChirpRanger chirp{uwp::phy::baseline::ChirpConfig{}};
  const std::vector<double> thresholds_db = {3.0, 6.0, 10.0, 15.0, 20.0};
  // Pre-construct one detector per threshold; they are const and shared
  // read-only across the sweep threads.
  std::vector<uwp::phy::baseline::ChirpRanger> chirp_dets;
  for (double th_db : thresholds_db) {
    uwp::phy::baseline::ChirpConfig ccfg;
    ccfg.detect_threshold_db = th_db;
    chirp_dets.emplace_back(ccfg);
  }

  std::printf("%-26s %8s %8s\n", "detector", "FP rate", "FN rate");
  {
    const uwp::phy::PreambleDetector det(preamble);
    // Each trial transmits one preamble at 20 m (FN) or records a noise-only
    // window (FP) and reports a miss/false-fire flag; the rate is the mean.
    const auto fn_sweep = sweep(sends, ++seed, threads, tally,
                                [&](std::size_t, uwp::Rng& rng) {
                                  const auto r = link.transmit(preamble.waveform(), lc, rng);
                                  return std::vector<double>{det.detect(r.mic[0]) ? 0.0 : 1.0};
                                });
    const auto fp_sweep = sweep(noise_trials, ++seed, threads, tally,
                                [&](std::size_t, uwp::Rng& rng) {
                                  const auto r = link.noise_only(0.5, lc, rng);
                                  return std::vector<double>{det.detect(r.mic[0]) ? 1.0 : 0.0};
                                });
    std::printf("%-26s %8.3f %8.3f\n", "ours (xcorr+autocorr)",
                fp_sweep.summary.mean, fn_sweep.summary.mean);
  }
  {
    // One chirp transmission (or noise window) per trial, scored against all
    // thresholds at once; per-threshold rates come from per_trial columns.
    const auto fn_sweep = sweep(sends, ++seed, threads, tally,
                                [&](std::size_t, uwp::Rng& rng) {
                                  const auto r = link.transmit(chirp.waveform(), lc, rng);
                                  std::vector<double> flags;
                                  for (const auto& det : chirp_dets)
                                    flags.push_back(det.detect(r.mic[0]) ? 0.0 : 1.0);
                                  return flags;
                                });
    const auto fp_sweep = sweep(noise_trials, ++seed, threads, tally,
                                [&](std::size_t, uwp::Rng& rng) {
                                  const auto r = link.noise_only(0.5, lc, rng);
                                  std::vector<double> flags;
                                  for (const auto& det : chirp_dets)
                                    flags.push_back(det.detect(r.mic[0]) ? 1.0 : 0.0);
                                  return flags;
                                });
    // Rates over completed trials only, matching the summary.mean the "ours"
    // row uses (a failed trial must not count as a clean detection).
    const auto rate = [](const uwp::sim::SweepResult& r, std::size_t ti) {
      double sum = 0.0;
      std::size_t done = 0;
      for (const auto& t : r.per_trial) {
        if (t.empty()) continue;
        sum += t[ti];
        ++done;
      }
      return done == 0 ? 0.0 : sum / static_cast<double>(done);
    };
    for (std::size_t ti = 0; ti < thresholds_db.size(); ++ti)
      std::printf("power TH_SD = %4.1f dB       %8.3f %8.3f\n", thresholds_db[ti],
                  rate(fp_sweep, ti), rate(fn_sweep, ti));
  }
  std::printf("(paper: the power threshold trades FP against FN; the PN-coded\n"
              " autocorrelation gate achieves low FP and FN simultaneously)\n\n");

  // ---------- (b) 1D ranging error ----------
  std::printf("=== Fig 12b: 1D ranging error, mean +/- std (m) ===\n");
  std::printf("%8s %22s %22s %22s\n", "dist", "ours (dual-mic)",
              "BeepBeep (chirp corr)", "CAT (FMCW)");
  const uwp::phy::baseline::FmcwRanger fmcw{uwp::phy::baseline::FmcwConfig{}};
  for (double range : distances) {
    uwp::channel::LinkConfig rlc = lc;
    rlc.rx_pos = {range, 0.0, 1.0};

    // One sweep per method: independent trial streams, missed detections
    // contribute no sample (empty trial) exactly like the serial loop.
    const auto ours = sweep(sends, ++seed, threads, tally,
                            [&](std::size_t, uwp::Rng& rng) -> std::vector<double> {
                              const auto rec = link.transmit(preamble.waveform(), rlc, rng);
                              if (const auto est = ranger.estimate(rec))
                                return {std::abs(uwp::phy::one_way_distance_m(*est, c_assumed) - range)};
                              return {};
                            });
    const auto beep = sweep(sends, ++seed, threads, tally,
                            [&](std::size_t, uwp::Rng& rng) -> std::vector<double> {
                              const auto rec = link.transmit(chirp.waveform(), rlc, rng);
                              if (const auto arr = chirp.estimate_arrival(rec.mic[0]))
                                return {std::abs(*arr / pc.fs_hz * c_assumed - range)};
                              return {};
                            });
    const auto cat = sweep(sends, ++seed, threads, tally,
                           [&](std::size_t, uwp::Rng& rng) -> std::vector<double> {
                             const auto rec = link.transmit(fmcw.waveform(), rlc, rng);
                             if (const auto d = fmcw.estimate_delay_samples(rec.mic[0]))
                               return {std::abs(*d / pc.fs_hz * c_assumed - range)};
                             return {};
                           });
    auto fmt = [](const uwp::sim::SweepResult& r) {
      static char buf[4][48];
      static int slot = 0;
      slot = (slot + 1) % 4;
      if (r.samples.empty())
        std::snprintf(buf[slot], 48, "(none)");
      else
        // median [mean +/- std]: the median is robust to the occasional
        // catastrophic miss that dominates the mean at small n.
        std::snprintf(buf[slot], 48, "%5.2f [%5.2f+/-%5.2f]", r.summary.median,
                      r.summary.mean, r.summary.stddev);
      return buf[slot];
    };
    std::printf("%7.0fm %22s %22s %22s\n", range, fmt(ours), fmt(beep), fmt(cat));
  }
  std::printf("(paper shape: ours lowest at every distance; FMCW degrades most\n"
              " because multipath smears the beat spectrum)\n");

  tally.print_footer();
  return 0;
}
