// Fig 19 (§3.2):
// (a) erroneous links from occlusion: the leader <-> user-1 line of sight is
//     blocked (thick sheet on a pole, in the paper). The link still decodes
//     via multipath but its distance is inflated; compare the worst-decile
//     localization errors with and without Algorithm 1.
//     Paper: with detection, median 1.4 m / 95% 3.4 m; without, a long tail.
// (b) link and node removal: drop one random link (or one random non-leader,
//     non-pointed node) per round. Paper: medians 1.0 / 0.9 m; 95% grows to
//     6.2 m with a dropped link vs 3.2 m fully connected; 4-device networks
//     match 5-device ones.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/scenario.hpp"
#include "util/stats.hpp"

namespace {

std::vector<double> run_rounds(const uwp::sim::Deployment& dep,
                               const uwp::sim::RoundOptions& opts, int rounds,
                               uwp::Rng& rng) {
  const uwp::sim::ScenarioRunner runner(dep);
  std::vector<double> errors;
  for (int r = 0; r < rounds; ++r) {
    const uwp::sim::RoundResult res = runner.run_round(opts, rng);
    if (!res.ok) continue;
    for (std::size_t i = 1; i < dep.size(); ++i) errors.push_back(res.error_2d[i]);
  }
  return errors;
}

std::vector<double> worst_decile(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return {v.begin() + static_cast<std::ptrdiff_t>(v.size() * 9 / 10), v.end()};
}

}  // namespace

int main() {
  uwp::Rng rng(19);
  const int rounds = 14;

  // ---------- (a) occluded link ----------
  std::printf("=== Fig 19a: occluded leader<->user1 link (waveform PHY) ===\n");
  uwp::sim::Deployment occluded = uwp::sim::make_dock_testbed(rng);
  // Same depth for leader and user 1 (the paper's setup) and heavy blocking.
  occluded.devices[1].position.z = occluded.devices[0].position.z;
  occluded.occlude_link(0, 1, 30.0);

  uwp::sim::RoundOptions with_det;
  with_det.waveform_phy = true;

  // Localize each round's measurements twice — once with Algorithm 1, once
  // with the detector disabled — so the comparison shares identical data.
  uwp::core::LocalizerOptions detector_off;
  detector_off.outlier.stress_threshold = 1e9;
  const uwp::core::Localizer no_detection(detector_off);

  std::vector<double> with_errors, without_errors;
  const uwp::sim::ScenarioRunner occluded_runner(occluded);
  for (int r = 0; r < rounds; ++r) {
    const uwp::sim::RoundResult res = occluded_runner.run_round(with_det, rng);
    if (!res.ok) continue;
    for (std::size_t i = 1; i < occluded.size(); ++i)
      with_errors.push_back(res.error_2d[i]);
    try {
      const uwp::core::LocalizationResult alt =
          no_detection.localize(res.localizer_input, rng);
      for (std::size_t i = 1; i < occluded.size(); ++i)
        without_errors.push_back(distance(alt.positions[i].xy(), res.truth_xy[i]));
    } catch (const std::exception&) {
    }
  }
  uwp::sim::print_summary_row("with outlier detection", with_errors);
  uwp::sim::print_summary_row("without outlier detection", without_errors);
  uwp::sim::print_cdf("90-100th pct, with detection", worst_decile(with_errors), 6);
  uwp::sim::print_cdf("90-100th pct, without detection", worst_decile(without_errors), 6);
  std::printf("(paper: detection cuts the long tail; median 1.4 m, 95%% 3.4 m)\n\n");

  // ---------- (b) link / node removal (fast mode for breadth) ----------
  std::printf("=== Fig 19b: random link and node removal ===\n");
  uwp::sim::RoundOptions fast;
  fast.waveform_phy = false;
  const int fast_rounds = 60;

  // Fully connected baseline.
  const uwp::sim::Deployment base = uwp::sim::make_dock_testbed(rng);
  uwp::sim::print_summary_row("fully connected network",
                              run_rounds(base, fast, fast_rounds, rng));

  // One random link removed per round.
  {
    std::vector<double> errors;
    for (int r = 0; r < fast_rounds; ++r) {
      uwp::sim::Deployment dep = base;
      std::size_t i = 0, j = 0;
      while (i == j) {
        i = static_cast<std::size_t>(rng.uniform_int(0, 4));
        j = static_cast<std::size_t>(rng.uniform_int(0, 4));
      }
      dep.drop_link(i, j);
      const auto e = run_rounds(dep, fast, 1, rng);
      errors.insert(errors.end(), e.begin(), e.end());
    }
    uwp::sim::print_summary_row("random link dropped", errors);
  }

  // One random node removed (never the leader or the pointed diver).
  {
    std::vector<double> errors;
    for (int r = 0; r < fast_rounds; ++r) {
      uwp::sim::Deployment dep = base;
      const auto victim = static_cast<std::size_t>(rng.uniform_int(2, 4));
      // Build the 4-device deployment without `victim`.
      uwp::sim::Deployment four = dep;
      four.devices.erase(four.devices.begin() + static_cast<std::ptrdiff_t>(victim));
      four.protocol.num_devices = 4;
      four.connect_all();
      const auto e = run_rounds(four, fast, 1, rng);
      errors.insert(errors.end(), e.begin(), e.end());
    }
    uwp::sim::print_summary_row("random node dropped (4-device)", errors);
  }
  std::printf("(paper: similar medians ~0.9-1.0 m; dropped links inflate the\n"
              " 95%% tail because some links pin down rotational ambiguity;\n"
              " dropping far nodes can even help)\n");
  return 0;
}
