// Fig 19 (§3.2):
// (a) erroneous links from occlusion: the leader <-> user-1 line of sight is
//     blocked (thick sheet on a pole, in the paper). The link still decodes
//     via multipath but its distance is inflated; compare the worst-decile
//     localization errors with and without Algorithm 1.
//     Paper: with detection, median 1.4 m / 95% 3.4 m; without, a long tail.
// (b) link and node removal: drop one random link (or one random non-leader,
//     non-pointed node) per round. Paper: medians 1.0 / 0.9 m; 95% grows to
//     6.2 m with a dropped link vs 3.2 m fully connected; 4-device networks
//     match 5-device ones.
//
// All four series run as SweepRunner sweeps (`--threads=N`): the waveform
// rounds in (a) dominate the cost, and the fast-mode breadth runs in (b)
// draw their per-round deployment mutations from the trial's own stream.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_flags.hpp"
#include "sim/metrics.hpp"
#include "sim/scenario.hpp"
#include "sim/sweep.hpp"
#include "util/stats.hpp"

namespace {

uwp::sim::SweepTally g_tally;

uwp::sim::SweepResult sweep(std::size_t trials, std::uint64_t seed,
                            std::size_t threads, const uwp::sim::TrialFn& fn) {
  uwp::sim::SweepOptions so;
  so.trials = trials;
  so.master_seed = seed;
  so.threads = threads;
  const uwp::sim::SweepResult res = uwp::sim::SweepRunner(so).run(fn);
  g_tally.add(res);
  return res;
}

std::vector<double> worst_decile(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return {v.begin() + static_cast<std::ptrdiff_t>(v.size() * 9 / 10), v.end()};
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t threads = uwp::bench::parse_flags(argc, argv).threads;
  uwp::Rng rng(19);  // deployment construction only
  const int rounds = 14;

  // ---------- (a) occluded link ----------
  std::printf("=== Fig 19a: occluded leader<->user1 link (waveform PHY) ===\n");
  uwp::sim::Deployment occluded = uwp::sim::make_dock_testbed(rng);
  // Same depth for leader and user 1 (the paper's setup) and heavy blocking.
  occluded.devices[1].position.z = occluded.devices[0].position.z;
  occluded.occlude_link(0, 1, 30.0);

  uwp::sim::RoundOptions with_det;
  with_det.waveform_phy = true;

  // Localize each round's measurements twice — once with Algorithm 1, once
  // with the detector disabled — so the comparison shares identical data.
  uwp::core::LocalizerOptions detector_off;
  detector_off.outlier.stress_threshold = 1e9;
  const uwp::core::Localizer no_detection(detector_off);

  const uwp::sim::ScenarioRunner occluded_runner(occluded);
  const std::size_t ndev = occluded.size();
  // Trial layout: first ndev-1 values are errors with detection; if the
  // detector-off re-localization succeeds, ndev-1 more follow.
  const auto occl = sweep(rounds, 191, threads,
                          [&](std::size_t, uwp::Rng& trial_rng) -> std::vector<double> {
                            const uwp::sim::RoundResult res =
                                occluded_runner.run_round(with_det, trial_rng);
                            if (!res.ok) return {};
                            std::vector<double> out;
                            for (std::size_t i = 1; i < ndev; ++i)
                              out.push_back(res.error_2d[i]);
                            try {
                              const uwp::core::LocalizationResult alt =
                                  no_detection.localize(res.localizer_input, trial_rng);
                              for (std::size_t i = 1; i < ndev; ++i)
                                out.push_back(distance(alt.positions[i].xy(), res.truth_xy[i]));
                            } catch (const std::exception&) {
                            }
                            return out;
                          });
  std::vector<double> with_errors, without_errors;
  for (const auto& row : occl.per_trial) {
    for (std::size_t k = 0; k < row.size(); ++k)
      (k < ndev - 1 ? with_errors : without_errors).push_back(row[k]);
  }
  uwp::sim::print_summary_row("with outlier detection", with_errors);
  uwp::sim::print_summary_row("without outlier detection", without_errors);
  uwp::sim::print_cdf("90-100th pct, with detection", worst_decile(with_errors), 6);
  uwp::sim::print_cdf("90-100th pct, without detection", worst_decile(without_errors), 6);
  std::printf("(paper: detection cuts the long tail; median 1.4 m, 95%% 3.4 m)\n\n");

  // ---------- (b) link / node removal (fast mode for breadth) ----------
  std::printf("=== Fig 19b: random link and node removal ===\n");
  uwp::sim::RoundOptions fast;
  fast.waveform_phy = false;
  const int fast_rounds = 60;

  const uwp::sim::Deployment base = uwp::sim::make_dock_testbed(rng);
  const auto round_errors = [&fast](const uwp::sim::Deployment& dep,
                                    uwp::Rng& trial_rng) -> std::vector<double> {
    const uwp::sim::ScenarioRunner runner(dep);
    const uwp::sim::RoundResult res = runner.run_round(fast, trial_rng);
    if (!res.ok) return {};
    std::vector<double> out;
    for (std::size_t i = 1; i < dep.size(); ++i) out.push_back(res.error_2d[i]);
    return out;
  };

  // Fully connected baseline.
  const uwp::sim::ScenarioRunner base_runner(base);
  const auto full = sweep(fast_rounds, 192, threads,
                          [&](std::size_t, uwp::Rng& trial_rng) -> std::vector<double> {
                            const uwp::sim::RoundResult res =
                                base_runner.run_round(fast, trial_rng);
                            if (!res.ok) return {};
                            std::vector<double> out;
                            for (std::size_t i = 1; i < base.size(); ++i)
                              out.push_back(res.error_2d[i]);
                            return out;
                          });
  uwp::sim::print_summary_row("fully connected network", full.samples);

  // One random link removed per round (drawn from the trial's own stream).
  const auto link_drop = sweep(fast_rounds, 193, threads,
                               [&](std::size_t, uwp::Rng& trial_rng) {
                                 uwp::sim::Deployment dep = base;
                                 std::size_t i = 0, j = 0;
                                 while (i == j) {
                                   i = static_cast<std::size_t>(trial_rng.uniform_int(0, 4));
                                   j = static_cast<std::size_t>(trial_rng.uniform_int(0, 4));
                                 }
                                 dep.drop_link(i, j);
                                 return round_errors(dep, trial_rng);
                               });
  uwp::sim::print_summary_row("random link dropped", link_drop.samples);

  // One random node removed (never the leader or the pointed diver).
  const auto node_drop = sweep(fast_rounds, 194, threads,
                               [&](std::size_t, uwp::Rng& trial_rng) {
                                 const auto victim =
                                     static_cast<std::size_t>(trial_rng.uniform_int(2, 4));
                                 uwp::sim::Deployment four = base;
                                 four.devices.erase(four.devices.begin() +
                                                    static_cast<std::ptrdiff_t>(victim));
                                 four.protocol.num_devices = 4;
                                 four.connect_all();
                                 return round_errors(four, trial_rng);
                               });
  uwp::sim::print_summary_row("random node dropped (4-device)", node_drop.samples);
  std::printf("(paper: similar medians ~0.9-1.0 m; dropped links inflate the\n"
              " 95%% tail because some links pin down rotational ambiguity;\n"
              " dropping far nodes can even help)\n");

  g_tally.print_footer();
  return 0;
}
