// Ablations and extensions beyond the paper's evaluation:
//  (1) depth-projection 2D SMACOF (the paper's design) vs direct 3D SMACOF
//      with soft depth anchoring — quantifies §2.1.1's design choice;
//  (2) anchor-free topology localization vs conventional anchor-buoy
//      trilateration at identical ranging noise (the comparison implicit in
//      the paper's related-work argument), including the GDOP geometry term;
//  (3) continuous tracking (§5 future work): Kalman smoothing across rounds
//      vs raw per-round estimates for a moving diver;
//  (4) the two-hop uplink relay planner filling §5's multi-hop gap.
#include <cmath>
#include <cstdio>
#include <optional>
#include <vector>

#include "core/localizer.hpp"
#include "core/projection.hpp"
#include "core/smacof.hpp"
#include "core/mds3d.hpp"
#include "core/tracker.hpp"
#include "core/trilateration.hpp"
#include "proto/multihop.hpp"
#include "sim/deployment.hpp"
#include "util/stats.hpp"

namespace {

using uwp::Matrix;
using uwp::Vec2;
using uwp::Vec3;

Matrix distances_3d(const std::vector<Vec3>& pts) {
  const std::size_t n = pts.size();
  Matrix d(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) d(i, j) = distance(pts[i], pts[j]);
  return d;
}

void ablation_projection_vs_3d(uwp::Rng& rng) {
  std::printf("=== Ablation 1: depth projection (paper) vs direct 3D SMACOF ===\n");
  std::printf("%10s %26s %26s\n", "eps_1d[m]", "projection mean err [m]",
              "3D SMACOF mean err [m]");
  for (double eps : {0.2, 0.5, 0.8, 1.2}) {
    std::vector<double> err_proj, err_3d;
    for (int trial = 0; trial < 60; ++trial) {
      const auto topo = uwp::sim::random_analytical_topology(6, rng);
      const std::size_t n = topo.positions.size();
      Matrix d = distances_3d(topo.positions);
      std::vector<double> depths(n);
      for (std::size_t i = 0; i < n; ++i)
        depths[i] = topo.positions[i].z + rng.symmetric(0.4);
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j) {
          d(i, j) = std::max(0.2, d(i, j) + rng.symmetric(eps));
          d(j, i) = d(i, j);
        }

      // Paper pipeline: project with depths, 2D SMACOF, compare topologies
      // via Procrustes (ambiguity resolution is common to both, skip it).
      const Matrix d2 = uwp::core::project_to_2d(d, depths);
      const auto res2d =
          uwp::core::smacof_2d(d2, Matrix::ones(n, n), {}, rng);
      std::vector<Vec2> truth_xy(n);
      for (std::size_t i = 0; i < n; ++i) truth_xy[i] = topo.positions[i].xy();
      err_proj.push_back(uwp::aligned_rmse(res2d.positions, truth_xy));

      // Direct 3D embedding with soft depth anchoring.
      const auto res3d = uwp::core::smacof_3d(d, Matrix::ones(n, n), depths, {}, rng);
      std::vector<Vec2> est_xy(n);
      for (std::size_t i = 0; i < n; ++i) est_xy[i] = res3d.positions[i].xy();
      err_3d.push_back(uwp::aligned_rmse(est_xy, truth_xy));
    }
    std::printf("%10.2f %26.2f %26.2f\n", eps, uwp::mean(err_proj), uwp::mean(err_3d));
  }
  std::printf("(with well-anchored depths the two agree; the projection gets the\n"
              " same accuracy from a strictly smaller, convexer 2D problem — the\n"
              " paper's design choice costs nothing and simplifies everything)\n\n");
}

void anchored_vs_anchor_free(uwp::Rng& rng) {
  std::printf("=== Ablation 2: anchor buoys + trilateration vs anchor-free ===\n");
  // Four anchor buoys at the corners of a 50 x 50 m area; divers range to
  // them with the same 1D noise the anchor-free system sees.
  const std::vector<Vec2> anchors = {{-25, -25}, {25, -25}, {25, 25}, {-25, 25}};
  std::printf("%10s %22s %22s %12s\n", "eps_1d[m]", "anchored mean err[m]",
              "anchor-free mean err[m]", "mean GDOP");
  for (double eps : {0.3, 0.8, 1.5}) {
    std::vector<double> err_anchor, err_free, gdops;
    for (int trial = 0; trial < 60; ++trial) {
      const auto topo = uwp::sim::random_analytical_topology(6, rng);
      const std::size_t n = topo.positions.size();

      // Anchored: each diver trilaterates to the 4 buoys independently.
      for (std::size_t i = 1; i < n; ++i) {
        const Vec2 truth = topo.positions[i].xy();
        std::vector<double> ranges;
        for (const Vec2& a : anchors)
          ranges.push_back(std::max(0.2, distance(truth, a) + rng.symmetric(eps)));
        const auto sol = uwp::core::trilaterate_2d(anchors, ranges);
        if (sol) {
          err_anchor.push_back(distance(sol->position, truth));
          gdops.push_back(uwp::core::gdop_2d(anchors, truth));
        }
      }

      // Anchor-free: the paper's topology pipeline on noisy pairwise data.
      Matrix d = distances_3d(topo.positions);
      std::vector<double> depths(n);
      for (std::size_t i = 0; i < n; ++i)
        depths[i] = topo.positions[i].z + rng.symmetric(0.4);
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j) {
          d(i, j) = std::max(0.2, d(i, j) + rng.symmetric(eps));
          d(j, i) = d(i, j);
        }
      const Matrix d2 = uwp::core::project_to_2d(d, depths);
      const auto res = uwp::core::smacof_2d(d2, Matrix::ones(n, n), {}, rng);
      std::vector<Vec2> truth_xy(n);
      for (std::size_t i = 0; i < n; ++i) truth_xy[i] = topo.positions[i].xy();
      err_free.push_back(uwp::aligned_rmse(res.positions, truth_xy));
    }
    std::printf("%10.2f %22.2f %23.2f %12.2f\n", eps, uwp::mean(err_anchor),
                uwp::mean(err_free), uwp::mean(gdops));
  }
  std::printf("(anchors buy absolute coordinates and slightly lower error — at\n"
              " the cost of deploying and maintaining four moored buoys)\n\n");
}

void tracking_extension(uwp::Rng& rng) {
  std::printf("=== Extension 3: Kalman tracking across rounds (5 s cadence) ===\n");
  // A diver swims a lazy loop at ~0.4 m/s; rounds localize it with 0.9 m
  // noise; compare raw rounds against the filtered track.
  uwp::core::DiverTrack track;
  std::vector<double> raw_err, filt_err;
  for (int round = 0; round < 120; ++round) {
    const double t = 5.0 * static_cast<double>(round);
    const Vec2 truth{12.0 * std::cos(2.0 * uwp::kPi * t / 240.0),
                     12.0 * std::sin(2.0 * uwp::kPi * t / 240.0)};
    track.predict(round == 0 ? 0.0 : 5.0);
    const Vec2 measured{truth.x + rng.normal(0.0, 0.9), truth.y + rng.normal(0.0, 0.9)};
    raw_err.push_back(distance(measured, truth));
    track.update(measured);
    if (round >= 10) filt_err.push_back(distance(track.position(), truth));
  }
  std::printf("raw rounds : median %.2f m, p95 %.2f m\n", uwp::median(raw_err),
              uwp::percentile(raw_err, 95.0));
  std::printf("filtered   : median %.2f m, p95 %.2f m, speed est %.2f m/s (true 0.31)\n",
              uwp::median(filt_err), uwp::percentile(filt_err, 95.0),
              track.speed());
  std::printf("(fusing rounds smooths jitter without extra acoustic airtime —\n"
              " the paper's proposed future work)\n\n");
}

void multihop_extension(uwp::Rng& rng) {
  std::printf("=== Extension 4: two-hop uplink relays (fills section 5's gap) ===\n");
  uwp::proto::MultihopOptions opts;
  opts.report_airtime_s = 0.96;  // N=6 payload at 100 bps
  std::printf("%22s %10s %10s %14s\n", "scenario", "relays", "stranded",
              "airtime [s]");
  for (const auto& [label, drop_leader_links] :
       std::vector<std::pair<const char*, int>>{
           {"all in range", 0}, {"1 stranded", 1}, {"2 stranded", 2}, {"3 stranded", 3}}) {
    int relays = 0, stranded = 0;
    double airtime = 0.0;
    const int trials = 40;
    for (int t = 0; t < trials; ++t) {
      Matrix c(6, 6, 1.0);
      for (std::size_t i = 0; i < 6; ++i) c(i, i) = 0.0;
      // Strand random non-pointed devices.
      for (int k = 0; k < drop_leader_links; ++k) {
        const auto v = static_cast<std::size_t>(rng.uniform_int(2, 5));
        c(0, v) = c(v, 0) = 0.0;
      }
      const auto plan = uwp::proto::plan_multihop_uplink(c, opts);
      relays += static_cast<int>(plan.relays.size());
      stranded += static_cast<int>(plan.unreachable.size());
      airtime += plan.total_airtime_s;
    }
    std::printf("%22s %10.2f %10.2f %14.2f\n", label,
                static_cast<double>(relays) / trials,
                static_cast<double>(stranded) / trials, airtime / trials);
  }
  std::printf("(one extra report burst recovers every stranded device's data\n"
              " as long as any in-range neighbor can hear it)\n");
}

}  // namespace

int main() {
  uwp::Rng rng(77);
  ablation_projection_vs_3d(rng);
  anchored_vs_anchor_free(rng);
  tracking_extension(rng);
  multihop_extension(rng);
  return 0;
}
