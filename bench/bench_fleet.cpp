// Serving-fleet bench: how many concurrent positioning groups the sharded
// session service sustains, and at what per-round latency. Runs a mixed
// workload (static / lawnmower / waypoint / dropout-churn / packet-DES
// groups) through fleet::FleetService and reports aggregate rounds/sec plus
// p50/p99 per-round service latency per shard count.
//
//   --sessions=N     concurrent session count (default 512)
//   --threads=N      shard count for the headline run (0 = one per hardware
//                    thread; UWP_THREADS env var also works)
//   --benchmark_format=json
//                    emit google-benchmark-style JSON (BENCH_fleet.json in
//                    CI): one entry with items_per_second = rounds/sec, one
//                    entry each for the p50/p99/p999 round latency and the
//                    coast/evict rates, and a second rate entry for the same
//                    run with telemetry instrumentation on — the pair CI
//                    compares to pin the instrumentation overhead (< 3%)
#include <cstdio>
#include <map>
#include <thread>
#include <vector>

#include "bench_flags.hpp"
#include "control/engine.hpp"
#include "fleet/server.hpp"
#include "fleet/service.hpp"
#include "sim/fleet_workload.hpp"
#include "sim/metrics.hpp"
#include "telemetry/collector.hpp"
#include "telemetry/slo.hpp"
#include "util/thread_pool.hpp"

namespace {

uwp::fleet::FleetResult run_fleet(const std::vector<uwp::sim::GroupScenario>& workload,
                                  std::size_t shards,
                                  uwp::telemetry::Collector* telemetry = nullptr) {
  uwp::fleet::FleetOptions fo;
  fo.master_seed = 0xF1EE7u;
  fo.shards = shards;
  fo.measure_latency = true;
  return uwp::fleet::FleetService(fo, workload).run(nullptr, telemetry);
}

// Bursty overload: the served workload arrives faster than the token buckets
// admit (per-partition rate sized well under the fleet's active-session
// arrival rate), so the shaper defers and sheds. The control-on run lets the
// policy engine retune the buckets from the shed/defer counters at window
// boundaries; control-off serves the same schedule with the static options.
struct OverloadRun {
  uwp::fleet::ServerResult res;
  std::uint64_t control_actions = 0;
};

OverloadRun run_overload(const std::vector<uwp::sim::GroupScenario>& workload,
                         std::size_t workers, bool control) {
  uwp::fleet::ServerOptions so;
  so.master_seed = 0xF1EE7u;
  so.workers = workers;
  so.measure_latency = true;
  so.shaping.policy = uwp::fleet::AdmissionPolicy::kDefer;
  // Per-partition bucket sized to ~1/2 of this workload's arrival share, so
  // the uncontrolled run sheds hard; the tuner can open it up to 4x.
  const double share =
      static_cast<double>(workload.size()) / (4.0 * so.shaping.ingest_shards);
  so.shaping.rate_rounds_per_s = share * 0.5;
  so.shaping.burst_rounds = share;
  so.shaping.max_defers = 2;

  uwp::telemetry::TelemetryOptions topts;
  topts.enabled = control;
  topts.timing = false;
  topts.window = 4.0;  // serve stamps seconds; 4 ticks at the default period
  uwp::telemetry::Collector collector(topts);

  uwp::control::ControlConfig cfg;
  cfg.enabled = true;
  cfg.window_ticks = 4;
  uwp::control::ShardControls baseline;
  baseline.shaper_rate = so.shaping.rate_rounds_per_s;
  baseline.shaper_burst = so.shaping.burst_rounds;
  baseline.shaper_max_defers = so.shaping.max_defers;
  uwp::control::ControlEngine engine(cfg, baseline);

  uwp::fleet::Server server(so, workload);
  uwp::fleet::RingBufferTransport transport(256);
  std::thread feeder([&] {
    uwp::fleet::feed_workload(transport, workload, so.master_seed, {});
  });
  OverloadRun out;
  try {
    out.res = server.serve(transport, nullptr, control ? &collector : nullptr,
                           control ? &engine : nullptr);
  } catch (...) {
    transport.close();
    feeder.join();
    throw;
  }
  feeder.join();
  out.control_actions = engine.log().actions.size();
  return out;
}

double shed_rate(const uwp::fleet::ServerResult& r) {
  const std::size_t rounds =
      r.stats.shaper.rounds_admitted + r.stats.shaper.rounds_shed;
  return rounds == 0
             ? 0.0
             : static_cast<double>(r.stats.shaper.rounds_shed) / rounds;
}

}  // namespace

int main(int argc, char** argv) {
  const uwp::bench::BenchFlags flags = uwp::bench::parse_flags(argc, argv, 512);
  const std::size_t sessions = flags.sessions;
  const std::size_t shards = flags.threads;

  uwp::sim::WorkloadParams params;
  params.sessions = sessions;
  params.seed = 0xBE7Cu;
  // Stagger admissions across most of the timeline so sessions churn: late
  // admissions land on pipelines warmed by early evictions (the arena-reuse
  // steady state a long-lived service settles into).
  params.admit_spread_ticks = 16;
  const std::vector<uwp::sim::GroupScenario> workload = uwp::sim::make_workload(params);

  if (flags.json) {
    const uwp::fleet::FleetResult r = run_fleet(workload, shards);
    const uwp::sim::RateLatency rl =
        uwp::sim::rate_latency(r.rounds, r.wall_seconds, r.round_latency_s);

    // The same run with the full telemetry plane attached (counters + span
    // timers + ring). items_per_second(run_telemetry) / items_per_second(run)
    // is the instrumentation overhead CI pins.
    uwp::telemetry::TelemetryOptions topts;
    topts.enabled = true;
    uwp::telemetry::Collector collector(topts);
    const uwp::fleet::FleetResult rt = run_fleet(workload, shards, &collector);
    const uwp::sim::RateLatency rlt =
        uwp::sim::rate_latency(rt.rounds, rt.wall_seconds, rt.round_latency_s);

    // SLO scoreboard over the instrumented run: counter totals (warm-start
    // hit rate) plus the deterministic per-round error CDF. These entries
    // are spec-derived, so CI can diff them run to run like any counter.
    const uwp::telemetry::TelemetryReport trep = collector.report();
    const uwp::telemetry::SloReport slo = uwp::telemetry::build_slo_report(
        uwp::fleet::make_slo_inputs(rt, &trep));

    // Coast/evict churn as rates per executed round: how much of the fleet's
    // work is dropout coasting, and how fast sessions turn over (every
    // session evicts exactly once at end of life in this driver).
    const double rounds = r.rounds > 0 ? static_cast<double>(r.rounds) : 1.0;
    char name[64];
    std::snprintf(name, sizeof(name), "fleet/%zusessions", sessions);
    uwp::sim::BenchJsonReporter report;
    report.add_with_rate(std::string(name) + "/run", r.wall_seconds, r.rounds,
                         rl.rounds_per_sec);
    report.add(std::string(name) + "/round_p50", rl.p50_s);
    report.add(std::string(name) + "/round_p99", rl.p99_s);
    report.add(std::string(name) + "/round_p999", rl.p999_s);
    report.add(std::string(name) + "/coast_rate",
               static_cast<double>(r.coasts) / rounds);
    report.add(std::string(name) + "/evict_rate",
               static_cast<double>(r.sessions.size()) / rounds);
    report.add_with_rate(std::string(name) + "/run_telemetry", rt.wall_seconds,
                         rt.rounds, rlt.rounds_per_sec);

    // Bursty-overload serve pair: the same shaped schedule with the control
    // plane off vs on. CI compares shed rates (control must shed less) and
    // keeps the off run's throughput pinned to the unshaped baseline.
    const OverloadRun off = run_overload(workload, shards, false);
    const uwp::sim::RateLatency rlo = uwp::sim::rate_latency(
        off.res.fleet.rounds, off.res.fleet.wall_seconds,
        off.res.fleet.round_latency_s);
    report.add_with_rate(std::string(name) + "/overload_control_off/run",
                         off.res.fleet.wall_seconds, off.res.fleet.rounds,
                         rlo.rounds_per_sec);
    report.add(std::string(name) + "/overload_control_off/shed_rate",
               shed_rate(off.res));
    report.add(std::string(name) + "/overload_control_off/round_p99", rlo.p99_s);

    const OverloadRun on = run_overload(workload, shards, true);
    const uwp::sim::RateLatency rlc = uwp::sim::rate_latency(
        on.res.fleet.rounds, on.res.fleet.wall_seconds,
        on.res.fleet.round_latency_s);
    report.add_with_rate(std::string(name) + "/overload_control_on/run",
                         on.res.fleet.wall_seconds, on.res.fleet.rounds,
                         rlc.rounds_per_sec);
    report.add(std::string(name) + "/overload_control_on/shed_rate",
               shed_rate(on.res));
    report.add(std::string(name) + "/overload_control_on/round_p99", rlc.p99_s);
    report.add(std::string(name) + "/overload_control_on/actions",
               static_cast<double>(on.control_actions));
    report.add(std::string(name) + "/warm_start_hit_rate", slo.warm_start_hit_rate);
    report.add(std::string(name) + "/slo_localized_rate", slo.localized_rate);
    report.add(std::string(name) + "/slo_error_p50", slo.error.p50);
    report.add(std::string(name) + "/slo_error_p99", slo.error.p99);
    report.add(std::string(name) + "/slo_error_p999", slo.error.p999);
    report.write();
    return r.localized > 0 && rt.localized == r.localized ? 0 : 1;
  }

  std::printf("=== fleet serving: %zu concurrent positioning groups ===\n", sessions);
  std::map<uwp::sim::GroupScenarioKind, std::size_t> kinds;
  std::size_t devices = 0;
  for (const uwp::sim::GroupScenario& sc : workload) {
    ++kinds[sc.kind];
    devices += sc.scene.positions.size();
  }
  std::printf("workload mix (%zu devices total):", devices);
  for (const auto& [kind, count] : kinds)
    std::printf("  %s=%zu", uwp::sim::to_string(kind), count);
  std::printf("\n\n");

  std::printf("%8s %12s %14s %14s %15s %10s %10s\n", "shards", "rounds/sec",
              "p50 round[ms]", "p99 round[ms]", "p999 round[ms]", "wall[s]",
              "reused");
  uwp::fleet::FleetResult last;
  std::vector<std::size_t> shard_counts = {1, 2, shards == 1 ? 4 : shards};
  // Dedupe resolved counts (e.g. --threads=2, or 0 resolving to 2 on a
  // 2-thread machine) so no configuration runs twice.
  for (std::size_t i = 0; i < shard_counts.size(); ++i)
    for (std::size_t j = 0; j < i; ++j)
      if (uwp::ThreadPool::resolve_thread_count(shard_counts[i]) ==
          uwp::ThreadPool::resolve_thread_count(shard_counts[j])) {
        shard_counts.erase(shard_counts.begin() + static_cast<std::ptrdiff_t>(i--));
        break;
      }
  for (const std::size_t s : shard_counts) {
    uwp::fleet::FleetOptions fo;
    fo.master_seed = 0xF1EE7u;
    fo.shards = s;
    fo.measure_latency = true;
    uwp::fleet::FleetService service(fo, workload);
    uwp::fleet::FleetResult r = service.run();
    const uwp::sim::RateLatency rl =
        uwp::sim::rate_latency(r.rounds, r.wall_seconds, r.round_latency_s);
    std::printf("%8zu %12.0f %14.3f %14.3f %15.3f %10.2f %9zu%%\n", r.shards_used,
                rl.rounds_per_sec, rl.p50_s * 1e3, rl.p99_s * 1e3, rl.p999_s * 1e3,
                r.wall_seconds,
                service.arena_stats().leases == 0
                    ? 0
                    : 100 * service.arena_stats().reuses / service.arena_stats().leases);
    last = std::move(r);
  }

  // Overload pair (see run_overload): how much shed the self-tuning control
  // plane recovers on the same bursty schedule.
  const OverloadRun off = run_overload(workload, shards, false);
  const OverloadRun on = run_overload(workload, shards, true);
  std::printf(
      "\nbursty overload: shed %.1f%% static -> %.1f%% controlled (%zu actions)\n",
      100.0 * shed_rate(off.res), 100.0 * shed_rate(on.res),
      static_cast<std::size_t>(on.control_actions));

  // Accuracy stays what the single-group benches report (the fleet only
  // multiplexes sessions; it never touches the solver math).
  std::printf("\n%zu rounds, %zu localized, %zu coasted\n", last.rounds, last.localized,
              last.coasts);
  uwp::sim::print_summary_row("per-device error (all sessions)", last.errors);
  return 0;
}
