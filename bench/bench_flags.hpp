// The flag dialect every bench binary speaks, parsed once instead of
// re-implemented per main():
//   --threads=N             worker/shard count (0 = all hardware threads;
//                           the UWP_THREADS env var is the fallback)
//   --benchmark_format=json google-benchmark-style JSON on stdout
//                           (sim::BenchJsonReporter)
//   --trace-out=FILE        CSV packet trace of a serial reference run
//                           (DES benches)
//   --sessions=N            concurrent session count (fleet bench)
//
// Numeric flags are parsed strictly: a malformed or out-of-range value is a
// usage error that exits(2) with a message — a typo'd "--sessions=10o0"
// must never silently run the bench at its default size and publish numbers
// for the wrong configuration.
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/metrics.hpp"
#include "sim/sweep.hpp"

namespace uwp::bench {

struct BenchFlags {
  std::size_t threads = 0;
  bool json = false;
  const char* trace_out = nullptr;
  std::size_t sessions = 0;
};

// Strict decimal parser for a --flag=VALUE tail: the whole value must be
// digits and fit under `max`. Exits with a usage error otherwise.
inline std::size_t parse_count_or_die(const char* flag, const char* s,
                                      std::size_t min, std::size_t max) {
  bool digits = *s != '\0';
  for (const char* p = s; *p != '\0'; ++p)
    if (*p < '0' || *p > '9') digits = false;
  if (!digits) {
    std::fprintf(stderr, "%s: expected an unsigned integer, got \"%s\"\n", flag, s);
    std::exit(2);
  }
  errno = 0;
  const unsigned long long v = std::strtoull(s, nullptr, 10);
  if (errno == ERANGE || v < min || v > max) {
    std::fprintf(stderr, "%s: value \"%s\" out of range [%zu, %zu]\n", flag, s, min,
                 max);
    std::exit(2);
  }
  return static_cast<std::size_t>(v);
}

inline BenchFlags parse_flags(int argc, char** argv, std::size_t default_sessions = 0) {
  BenchFlags flags;
  flags.threads = sim::threads_from_args(argc, argv);
  flags.json = sim::BenchJsonReporter::requested(argc, argv);
  flags.trace_out = sim::trace_out_from_args(argc, argv);
  flags.sessions = default_sessions;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--sessions=", 11) == 0) {
      flags.sessions = parse_count_or_die("--sessions", argv[i] + 11, 1, 1000000);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      // threads_from_args already resolved the value leniently; re-check
      // the same cap spec validation uses (0 = all hardware threads).
      flags.threads = parse_count_or_die("--threads", argv[i] + 10, 0, 1024);
    }
  }
  return flags;
}

}  // namespace uwp::bench
