// The flag dialect every bench binary speaks, parsed once instead of
// re-implemented per main():
//   --threads=N             worker/shard count (0 = all hardware threads;
//                           the UWP_THREADS env var is the fallback)
//   --benchmark_format=json google-benchmark-style JSON on stdout
//                           (sim::BenchJsonReporter)
//   --trace-out=FILE        CSV packet trace of a serial reference run
//                           (DES benches)
//   --sessions=N            concurrent session count (fleet bench)
#pragma once

#include <cstdlib>
#include <cstring>

#include "sim/metrics.hpp"
#include "sim/sweep.hpp"

namespace uwp::bench {

struct BenchFlags {
  std::size_t threads = 0;
  bool json = false;
  const char* trace_out = nullptr;
  std::size_t sessions = 0;
};

inline BenchFlags parse_flags(int argc, char** argv, std::size_t default_sessions = 0) {
  BenchFlags flags;
  flags.threads = sim::threads_from_args(argc, argv);
  flags.json = sim::BenchJsonReporter::requested(argc, argv);
  flags.trace_out = sim::trace_out_from_args(argc, argv);
  flags.sessions = default_sessions;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--sessions=", 11) != 0) continue;
    const char* s = argv[i] + 11;
    if (*s == '\0') break;
    bool digits = true;
    for (const char* p = s; *p != '\0'; ++p)
      if (*p < '0' || *p > '9') digits = false;
    if (!digits) break;
    const unsigned long long v = std::strtoull(s, nullptr, 10);
    if (v > 0)
      flags.sessions = static_cast<std::size_t>(v > 1000000 ? 1000000 : v);
    break;
  }
  return flags;
}

}  // namespace uwp::bench
