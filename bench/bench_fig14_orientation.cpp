// Fig 14 (§3.1): effect of transmitter orientation and phone model pairs at
// 20 m / 2.5 m depth at the dock.
// (a) azimuth 0/90/180 degrees and the phone facing the surface — the paper
//     finds modest degradation (median 0.54-1.25 m), worst when facing up.
// (b) ranging across Pixel / Samsung / OnePlus pairings.
// Each case's waveform transmissions fan out across hardware threads via the
// SweepRunner (`--threads=N` / UWP_THREADS, bit-identical at any count).
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_flags.hpp"
#include "channel/propagation.hpp"
#include "phy/ranging.hpp"
#include "sim/metrics.hpp"
#include "sim/sweep.hpp"

int main(int argc, char** argv) {
  const std::size_t threads = uwp::bench::parse_flags(argc, argv).threads;
  const uwp::channel::Environment env = uwp::channel::make_dock();
  const uwp::phy::PreambleConfig pc;
  const uwp::phy::OfdmPreamble preamble(pc);
  const uwp::phy::PreambleRanger ranger(preamble);
  const uwp::channel::LinkSimulator link(env, pc.fs_hz);
  // Receiver-side configured sound speed: Wilson's equation with a ~4-6 C
  // temperature guess error (paper 2: <=2% c error at dive depths). This is
  // what makes ranging error grow with true distance.
  const double c_assumed = env.sound_speed_mps() + 22.0;
  const double range = 20.0;

  uwp::sim::SweepTally tally;
  std::uint64_t seed = 140;
  auto run_case = [&](const char* label, const uwp::channel::LinkConfig& lc) {
    uwp::sim::SweepOptions so;
    so.trials = 25;
    so.master_seed = ++seed;
    so.threads = threads;
    const uwp::sim::SweepResult res = uwp::sim::SweepRunner(so).run(
        [&](std::size_t, uwp::Rng& rng) -> std::vector<double> {
          const auto rec = link.transmit(preamble.waveform(), lc, rng);
          if (const auto est = ranger.estimate(rec))
            return {std::abs(uwp::phy::one_way_distance_m(*est, c_assumed) - range)};
          return {};
        });
    tally.add(res);
    uwp::sim::print_summary_row(label, res.samples);
  };

  std::printf("=== Fig 14a: ranging error vs transmitter orientation (20 m) ===\n");
  uwp::channel::LinkConfig base;
  base.tx_pos = {0.0, 0.0, 2.5};
  base.rx_pos = {range, 0.0, 2.5};

  {
    uwp::channel::LinkConfig lc = base;
    run_case("azimuth 0 deg (facing)", lc);
  }
  {
    uwp::channel::LinkConfig lc = base;
    lc.speaker_azimuth_off_rad = uwp::deg_to_rad(90.0);
    run_case("azimuth 90 deg", lc);
  }
  {
    uwp::channel::LinkConfig lc = base;
    lc.speaker_azimuth_off_rad = uwp::deg_to_rad(180.0);
    run_case("azimuth 180 deg", lc);
  }
  {
    uwp::channel::LinkConfig lc = base;
    lc.speaker_faces_up = true;
    lc.tx_pos.z = 1.0;  // paper: facing up happens near the surface
    run_case("facing surface", lc);
  }
  std::printf("(paper: medians 0.54-1.25 m; facing up worst due to surface\n"
              " multipath)\n\n");

  std::printf("=== Fig 14b: smartphone model pairs (20 m) ===\n");
  const auto samsung = uwp::channel::DeviceModel::samsung_s9();
  const auto pixel = uwp::channel::DeviceModel::pixel();
  const auto oneplus = uwp::channel::DeviceModel::oneplus();
  const std::vector<std::pair<const char*, std::pair<uwp::channel::DeviceModel,
                                                     uwp::channel::DeviceModel>>>
      pairs = {{"Pixel -> Samsung", {pixel, samsung}},
               {"Pixel -> OnePlus", {pixel, oneplus}},
               {"Samsung -> OnePlus", {samsung, oneplus}}};
  for (const auto& [label, devices] : pairs) {
    uwp::channel::LinkConfig lc = base;
    lc.tx_device = devices.first;
    lc.rx_device = devices.second;
    run_case(label, lc);
  }
  std::printf("(paper: all pairs achieve sub-meter medians; differences come\n"
              " from per-device band response and mic noise)\n");
  tally.print_footer();
  return 0;
}
