// Fig 6 (§2.1.5): analytical evaluation of the topology-based localization
// algorithm. Random topologies in a 60 x 60 x 10 m volume; uniform errors on
// pairwise distances, heights and pointing angle; mean 2D error across all
// divers (excluding the leader), 200 samples per configuration (paper's
// count). Prints the four series: (a) vs 1D ranging error, (b) vs number of
// users, (c) vs orientation error, (d) vs dropped links.
//
// Each configuration's samples fan out across hardware threads through the
// SweepRunner; results are bit-identical for any `--threads=N` (master seed
// fixed per configuration).
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_flags.hpp"
#include "core/localizer.hpp"
#include "sim/deployment.hpp"
#include "sim/sweep.hpp"
#include "util/stats.hpp"

namespace {

struct Params {
  std::size_t n = 6;
  double eps_1d = 0.8;       // +/- bound on pairwise distances (m)
  double eps_h = 0.4;        // +/- bound on heights (m)
  double eps_theta_deg = 0;  // +/- bound on pointing angle
  int dropped_links = 0;
  int samples = 200;
};

// One Monte-Carlo sample: a random topology perturbed per the config, solved
// by the localizer; returns the mean 2D error over the non-leader devices.
std::vector<double> one_sample(const Params& p, const uwp::core::Localizer& localizer,
                               uwp::Rng& rng) {
  const uwp::sim::AnalyticalTopology topo =
      uwp::sim::random_analytical_topology(p.n, rng);

  uwp::core::LocalizationInput in;
  in.distances = uwp::Matrix(p.n, p.n);
  in.weights = uwp::Matrix::ones(p.n, p.n);
  in.depths.resize(p.n);
  for (std::size_t i = 0; i < p.n; ++i) {
    in.depths[i] = topo.positions[i].z + rng.symmetric(p.eps_h);
    for (std::size_t j = 0; j < p.n; ++j) {
      const double d = distance(topo.positions[i], topo.positions[j]);
      in.distances(i, j) = std::max(0.1, d + rng.symmetric(p.eps_1d));
    }
  }
  // Symmetrize the error draw.
  for (std::size_t i = 0; i < p.n; ++i)
    for (std::size_t j = i + 1; j < p.n; ++j) in.distances(j, i) = in.distances(i, j);

  // Drop random non-adjacent links (never 0-1, the pointing edge).
  for (int k = 0; k < p.dropped_links; ++k) {
    for (int attempt = 0; attempt < 50; ++attempt) {
      const auto i = static_cast<std::size_t>(rng.uniform_int(0, static_cast<long>(p.n) - 1));
      const auto j = static_cast<std::size_t>(rng.uniform_int(0, static_cast<long>(p.n) - 1));
      if (i == j || (i == 0 && j == 1) || (i == 1 && j == 0)) continue;
      if (in.weights(i, j) == 0.0) continue;
      in.weights(i, j) = in.weights(j, i) = 0.0;
      break;
    }
  }

  const uwp::Vec2 to1 = (topo.positions[1] - topo.positions[0]).xy();
  in.pointing_bearing_rad =
      bearing(to1) + uwp::deg_to_rad(rng.symmetric(p.eps_theta_deg));
  for (std::size_t i = 2; i < p.n; ++i) {
    const double side = side_of_line((topo.positions[i] - topo.positions[0]).xy(),
                                     {0, 0}, to1);
    in.votes.push_back({i, side > 0 ? 1 : -1});
  }

  // A throwing localize (degenerate topology) fails just this trial; the
  // sweep counts it and moves on, like the old try/continue loop.
  const uwp::core::LocalizationResult res = localizer.localize(in, rng);
  double acc = 0.0;
  for (std::size_t i = 1; i < p.n; ++i)
    acc += distance(res.positions[i].xy(), (topo.positions[i] - topo.positions[0]).xy());
  return {acc / static_cast<double>(p.n - 1)};
}

double mean_2d_error(const Params& p, std::uint64_t master_seed, std::size_t threads,
                     uwp::sim::SweepTally& tally) {
  // The analytical evaluation has no occluded links, so Algorithm 1's subset
  // search would only burn time; disable it (as §2.1.5 does).
  uwp::core::LocalizerOptions lopts;
  lopts.outlier.stress_threshold = 1e9;
  const uwp::core::Localizer localizer(lopts);

  uwp::sim::SweepOptions so;
  so.trials = static_cast<std::size_t>(p.samples);
  so.master_seed = master_seed;
  so.threads = threads;
  const uwp::sim::SweepResult res = uwp::sim::SweepRunner(so).run(
      [&p, &localizer](std::size_t, uwp::Rng& rng) {
        return one_sample(p, localizer, rng);
      });
  tally.add(res);
  return res.summary.mean;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t threads = uwp::bench::parse_flags(argc, argv).threads;
  uwp::sim::SweepTally tally;
  // Distinct fixed master seed per configuration: results do not depend on
  // thread count or on the order the series are printed.
  std::uint64_t seed = 60;

  std::printf("=== Fig 6: analytical evaluation (mean 2D error, m) ===\n");
  std::printf("Paper shape: (a) grows ~linearly with eps_1d; (b) shrinks with N;\n");
  std::printf("(c) grows with pointing error; (d) grows slowly with dropped links.\n\n");

  std::printf("(a) vs 1D ranging error  [N=6, eps_h=0.4, eps_theta=0]\n");
  for (double eps : {0.0, 0.25, 0.5, 0.8, 1.0, 1.5, 2.0}) {
    Params p;
    p.eps_1d = eps;
    std::printf("  eps_1d=%4.2f m -> mean 2D error %5.2f m\n", eps,
                mean_2d_error(p, ++seed, threads, tally));
  }

  std::printf("\n(b) vs number of users  [eps_1d=0.8, eps_h=0.4, eps_theta=0]\n");
  for (std::size_t n : {3u, 4u, 5u, 6u, 7u, 8u}) {
    Params p;
    p.n = n;
    std::printf("  N=%zu -> mean 2D error %5.2f m\n", n,
                mean_2d_error(p, ++seed, threads, tally));
  }

  std::printf("\n(c) vs orientation error  [N=6, eps_1d=0.8, eps_h=0.4]\n");
  for (double deg : {0.0, 5.0, 10.0, 15.0, 20.0}) {
    Params p;
    p.eps_theta_deg = deg;
    std::printf("  eps_theta=%4.1f deg -> mean 2D error %5.2f m\n", deg,
                mean_2d_error(p, ++seed, threads, tally));
  }

  std::printf("\n(d) vs dropped links  [N=6, eps_1d=0.8, eps_h=0.4, eps_theta=0]\n");
  for (int drops : {0, 1, 2, 3}) {
    Params p;
    p.dropped_links = drops;
    std::printf("  drops=%d -> mean 2D error %5.2f m\n", drops,
                mean_2d_error(p, ++seed, threads, tally));
  }

  tally.print_footer();
  return 0;
}
