// google-benchmark microbenches for the hot kernels: FFT, preamble
// cross-correlation, LS channel estimation, SMACOF, the pebble game,
// Viterbi decoding and the channel simulator. Ablation pairs (classical MDS
// vs SMACOF; smooth FFT vs Bluestein) are included for the design choices
// DESIGN.md calls out, and every util/simd_kernels.hpp kernel runs as a
// scalar-vs-SIMD template pair so `--benchmark_format=json` shows the
// per-kernel speedup of the active backend directly.
#include <benchmark/benchmark.h>

#include "channel/propagation.hpp"
#include "core/mds_classical.hpp"
#include "core/rigidity.hpp"
#include "core/smacof.hpp"
#include "dsp/correlation.hpp"
#include "dsp/fft.hpp"
#include "phy/channel_estimator.hpp"
#include "phy/convolutional.hpp"
#include "phy/ofdm_preamble.hpp"
#include "phy/preamble_detector.hpp"
#include "util/random.hpp"
#include "util/simd_kernels.hpp"

namespace {

void BM_Fft1920(benchmark::State& state) {
  uwp::Rng rng(1);
  std::vector<uwp::dsp::cplx> x(1920);
  for (auto& v : x) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  for (auto _ : state) benchmark::DoNotOptimize(uwp::dsp::fft(x));
}
BENCHMARK(BM_Fft1920);

void BM_FftBluestein1918(benchmark::State& state) {
  // 1918 = 2 * 7 * 137: forces the Bluestein path (ablation vs smooth 1920).
  uwp::Rng rng(2);
  std::vector<uwp::dsp::cplx> x(1918);
  for (auto& v : x) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  for (auto _ : state) benchmark::DoNotOptimize(uwp::dsp::fft(x));
}
BENCHMARK(BM_FftBluestein1918);

void BM_PreambleXcorr(benchmark::State& state) {
  uwp::Rng rng(3);
  const uwp::phy::OfdmPreamble preamble{uwp::phy::PreambleConfig{}};
  std::vector<double> stream(44100);
  for (auto& v : stream) v = rng.normal(0.0, 0.1);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        uwp::dsp::normalized_cross_correlate(stream, preamble.waveform()));
}
BENCHMARK(BM_PreambleXcorr);

void BM_LsChannelEstimate(benchmark::State& state) {
  uwp::Rng rng(4);
  const uwp::phy::OfdmPreamble preamble{uwp::phy::PreambleConfig{}};
  std::vector<double> stream(20000);
  for (auto& v : stream) v = rng.normal(0.0, 0.05);
  for (std::size_t i = 0; i < preamble.waveform().size(); ++i)
    stream[5000 + i] += preamble.waveform()[i];
  const uwp::phy::LsChannelEstimator est(preamble);
  for (auto _ : state) benchmark::DoNotOptimize(est.estimate(stream, 5000));
}
BENCHMARK(BM_LsChannelEstimate);

std::pair<uwp::Matrix, uwp::Matrix> mds_problem(std::size_t n, uwp::Rng& rng) {
  std::vector<uwp::Vec2> pts(n);
  for (auto& p : pts) p = {rng.uniform(-20, 20), rng.uniform(-20, 20)};
  uwp::Matrix d(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) d(i, j) = distance(pts[i], pts[j]);
  return {d, uwp::Matrix::ones(n, n)};
}

void BM_Smacof(benchmark::State& state) {
  uwp::Rng rng(5);
  const auto [d, w] = mds_problem(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    uwp::Rng r(6);
    benchmark::DoNotOptimize(uwp::core::smacof_2d(d, w, {}, r));
  }
}
BENCHMARK(BM_Smacof)->Arg(5)->Arg(8)->Arg(12);

void BM_ClassicalMds(benchmark::State& state) {
  uwp::Rng rng(7);
  const auto [d, w] = mds_problem(8, rng);
  for (auto _ : state) benchmark::DoNotOptimize(uwp::core::classical_mds_2d(d));
}
BENCHMARK(BM_ClassicalMds);

void BM_PebbleGameK8(benchmark::State& state) {
  std::vector<uwp::core::Edge> edges;
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = i + 1; j < 8; ++j) edges.emplace_back(i, j);
  for (auto _ : state)
    benchmark::DoNotOptimize(uwp::core::is_uniquely_realizable_2d(8, edges));
}
BENCHMARK(BM_PebbleGameK8);

void BM_ViterbiDecode(benchmark::State& state) {
  uwp::Rng rng(8);
  std::vector<std::uint8_t> bits(58);
  for (auto& b : bits) b = rng.bernoulli(0.5);
  const auto coded = uwp::phy::ConvolutionalCode::encode_r23(bits);
  for (auto _ : state)
    benchmark::DoNotOptimize(uwp::phy::ConvolutionalCode::decode_r23(coded, 58));
}
BENCHMARK(BM_ViterbiDecode);

void BM_ChannelTransmit(benchmark::State& state) {
  uwp::Rng rng(9);
  const uwp::phy::OfdmPreamble preamble{uwp::phy::PreambleConfig{}};
  const uwp::channel::LinkSimulator link(uwp::channel::make_dock(), 44100.0);
  uwp::channel::LinkConfig cfg;
  cfg.tx_pos = {0, 0, 2};
  cfg.rx_pos = {20, 0, 2};
  for (auto _ : state)
    benchmark::DoNotOptimize(link.transmit(preamble.waveform(), cfg, rng));
}
BENCHMARK(BM_ChannelTransmit);

// --- scalar-vs-SIMD kernel pairs --------------------------------------------
// Each fixture builds one representative problem (sized like the fleet's hot
// path: fully connected groups of `n` devices) and runs the same kernel
// under ScalarOps and the build's ActiveOps. Both backends are always
// compiled, so a single binary reports the pair; with UWP_SIMD=off the two
// entries coincide by construction.

struct GuttmanProblem {
  std::size_t np;
  std::size_t mp;  // padded link count
  std::vector<double> x, y, w, d, dij, bvals;
  std::vector<std::uint32_t> li, lj;

  explicit GuttmanProblem(std::size_t n) : np(n) {
    uwp::Rng rng(10);
    const std::size_t m = n * (n - 1) / 2;
    mp = uwp::simd::padded(m);
    x.assign(uwp::simd::padded(n), 0.0);
    y.assign(uwp::simd::padded(n), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = rng.uniform(-20, 20);
      y[i] = rng.uniform(-20, 20);
    }
    li.assign(mp, 0);
    lj.assign(mp, 0);
    w.assign(mp, 0.0);
    d.assign(mp, 0.0);
    dij.assign(mp, 0.0);
    bvals.assign(mp, 0.0);
    std::size_t k = 0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j, ++k) {
        li[k] = static_cast<std::uint32_t>(i);
        lj[k] = static_cast<std::uint32_t>(j);
        w[k] = 1.0;
        d[k] = rng.uniform(1.0, 40.0);
      }
  }
};

// One SMACOF Guttman step's per-link work: stress + distances, then the
// B(X) off-diagonal values.
template <class Ops>
void BM_KernelGuttmanStep(benchmark::State& state) {
  GuttmanProblem p(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const double stress = uwp::kernels::link_stress<Ops>(
        p.x.data(), p.y.data(), p.li.data(), p.lj.data(), p.w.data(), p.d.data(),
        p.dij.data(), p.mp);
    benchmark::DoNotOptimize(stress);
    uwp::kernels::guttman_b_values<Ops>(p.w.data(), p.d.data(), p.dij.data(),
                                        p.bvals.data(), p.mp);
    benchmark::DoNotOptimize(p.bvals.data());
  }
}
BENCHMARK_TEMPLATE(BM_KernelGuttmanStep, uwp::simd::ScalarOps)->Arg(6)->Arg(12);
BENCHMARK_TEMPLATE(BM_KernelGuttmanStep, uwp::simd::ActiveOps)->Arg(6)->Arg(12);

// The pseudoinverse's rank-1 accumulation (the pinv hot loop).
template <class Ops>
void BM_KernelPinvAxpy(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  uwp::Rng rng(11);
  std::vector<double> out(n * n, 0.0), col(n, 0.0);
  for (auto& v : col) v = rng.uniform(-1, 1);
  for (auto _ : state) {
    for (std::size_t r = 0; r < n; ++r)
      uwp::kernels::axpy<Ops>(out.data() + r * n, 0.5 * col[r], col.data(), n);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK_TEMPLATE(BM_KernelPinvAxpy, uwp::simd::ScalarOps)->Arg(6)->Arg(12);
BENCHMARK_TEMPLATE(BM_KernelPinvAxpy, uwp::simd::ActiveOps)->Arg(6)->Arg(12);

// One Gauss-Newton iteration's residual/normal-equation accumulation over
// all anchors (the trilateration inner loop).
template <class Ops>
void BM_KernelTrilatResiduals(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t pad = uwp::simd::padded(n);
  uwp::Rng rng(12);
  std::vector<double> ax(pad, 0.0), ay(pad, 0.0), r(pad, 0.0), mask(pad, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    ax[i] = rng.uniform(-30, 30);
    ay[i] = rng.uniform(-30, 30);
    r[i] = rng.uniform(5, 50);
    mask[i] = 1.0;
  }
  for (auto _ : state) {
    const uwp::kernels::TrilatAccum acc = uwp::kernels::trilat_accumulate<Ops>(
        ax.data(), ay.data(), r.data(), mask.data(), pad, 1.5, -2.5);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK_TEMPLATE(BM_KernelTrilatResiduals, uwp::simd::ScalarOps)->Arg(5)->Arg(11);
BENCHMARK_TEMPLATE(BM_KernelTrilatResiduals, uwp::simd::ActiveOps)->Arg(5)->Arg(11);

}  // namespace

BENCHMARK_MAIN();
