// Fig 20 (§3.2): 2D localization with one moving device. User 1 (then user
// 2) oscillates around its nominal spot at 15-50 cm/s while the rest of the
// 5-device dock network stays put; ground truth is the trajectory midpoint,
// as in the paper. Paper: user 1 median 0.2 -> 0.3 m when moving; user 2
// 0.4 -> 0.8 m — motion costs little because every round is independent.
#include <cmath>
#include <cstdio>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/scenario.hpp"

namespace {

void run_config(const char* label, std::size_t mover, uwp::Rng& rng) {
  const int rounds = 12;
  uwp::sim::Deployment base = uwp::sim::make_dock_testbed(rng);
  const uwp::Vec3 midpoint = base.devices[mover].position;

  uwp::sim::RoundOptions opts;
  opts.waveform_phy = true;

  std::vector<double> mover_static, mover_moving, other_static, other_moving;
  const std::size_t other = mover == 1 ? 2 : 1;

  // Static baseline.
  {
    const uwp::sim::ScenarioRunner runner(base);
    for (int r = 0; r < rounds; ++r) {
      const auto res = runner.run_round(opts, rng);
      if (!res.ok) continue;
      mover_static.push_back(res.error_2d[mover]);
      other_static.push_back(res.error_2d[other]);
    }
  }

  // Moving: +/- 1.2 m oscillation along y around the midpoint (~30 cm/s at
  // one round every ~8 s). Error is measured against the midpoint.
  for (int r = 0; r < rounds; ++r) {
    uwp::sim::Deployment dep = base;
    const double phase = 2.0 * uwp::kPi * static_cast<double>(r) / 6.0;
    dep.devices[mover].position = midpoint + uwp::Vec3{0.0, 1.2 * std::sin(phase), 0.0};
    const uwp::sim::ScenarioRunner runner(std::move(dep));
    uwp::sim::RoundResult res = runner.run_round(opts, rng);
    if (!res.ok) continue;
    // Ground truth for the mover is the trajectory midpoint (paper's rule).
    const uwp::Vec2 mid_rel = (midpoint - base.devices[0].position).xy();
    res.error_2d[mover] =
        distance(res.localization.positions[mover].xy(), mid_rel);
    mover_moving.push_back(res.error_2d[mover]);
    other_moving.push_back(res.error_2d[other]);
  }

  std::printf("=== Fig 20: %s ===\n", label);
  char row[64];
  std::snprintf(row, sizeof row, "user %zu static", mover);
  uwp::sim::print_summary_row(row, mover_static);
  std::snprintf(row, sizeof row, "user %zu moving", mover);
  uwp::sim::print_summary_row(row, mover_moving);
  std::snprintf(row, sizeof row, "user %zu (bystander) static", other);
  uwp::sim::print_summary_row(row, other_static);
  std::snprintf(row, sizeof row, "user %zu (bystander) w/ mover", other);
  uwp::sim::print_summary_row(row, other_moving);
  std::printf("\n");
}

}  // namespace

int main() {
  uwp::Rng rng(20);
  run_config("user 1 moves (15-50 cm/s)", 1, rng);
  run_config("user 2 moves (15-50 cm/s)", 2, rng);
  std::printf("(paper: moving increases the mover's median error only\n"
              " modestly — 0.2->0.3 m and 0.4->0.8 m — because each protocol\n"
              " round is an independent snapshot)\n");
  return 0;
}
