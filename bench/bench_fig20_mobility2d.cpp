// Fig 20 (§3.2): 2D localization with one moving device. User 1 (then user
// 2) oscillates around its nominal spot at 15-50 cm/s while the rest of the
// 5-device dock network stays put; ground truth is the trajectory midpoint,
// as in the paper. Paper: user 1 median 0.2 -> 0.3 m when moving; user 2
// 0.4 -> 0.8 m — motion costs little because every round is independent.
// Rounds are independent full-pipeline runs fanned out via the SweepRunner
// (`--threads=N` / UWP_THREADS, bit-identical at any count); static-network
// sweeps keep one sim::ScenarioRoundContext per worker so the
// pipeline::RoundPipeline workspaces stay warm across rounds.
//
//   --benchmark_format=json   emit the fast-mode sweep timings as a
//                             google-benchmark-style JSON document instead
//                             of the human tables (CI perf artifact)
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <vector>

#include "bench_flags.hpp"
#include "sim/metrics.hpp"
#include "sim/scenario.hpp"
#include "sim/sweep.hpp"

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// Split {mover error, bystander error} trial rows into finite per-series
// sample vectors.
void split_rows(const uwp::sim::SweepResult& res, std::vector<double>& mover,
                std::vector<double>& other) {
  for (const auto& row : res.per_trial) {
    if (row.size() != 2 || std::isnan(row[0])) continue;
    mover.push_back(row[0]);
    other.push_back(row[1]);
  }
}

void run_config(const char* label, std::size_t mover, std::uint64_t master_seed,
                std::size_t threads, uwp::Rng& setup_rng,
                uwp::sim::SweepTally& tally) {
  const std::size_t rounds = 12;
  const uwp::sim::Deployment base = uwp::sim::make_dock_testbed(setup_rng);
  const uwp::Vec3 midpoint = base.devices[mover].position;

  uwp::sim::RoundOptions opts;
  opts.waveform_phy = true;
  const std::size_t other = mover == 1 ? 2 : 1;

  uwp::sim::SweepOptions so;
  so.trials = rounds;
  so.threads = threads;

  // Static baseline: every trial is one full round of the unmodified
  // deployment, through a per-worker round context (warm pipeline).
  so.master_seed = master_seed;
  const uwp::sim::ScenarioRunner static_runner(base);
  const uwp::sim::SweepResult static_res = uwp::sim::SweepRunner(so).run(
      [&]() {
        return std::make_shared<uwp::sim::ScenarioRoundContext>(static_runner, opts);
      },
      [&](std::size_t, uwp::Rng& rng, void* ctx) -> std::vector<double> {
        auto* context = static_cast<uwp::sim::ScenarioRoundContext*>(ctx);
        uwp::sim::RoundResult res;
        context->run_into(res, rng);
        if (!res.ok) return {kNaN, kNaN};
        return {res.error_2d[mover], res.error_2d[other]};
      });
  tally.add(static_res);

  // Moving: +/- 1.2 m oscillation along y around the midpoint (~30 cm/s at
  // one round every ~8 s); the trial index is the round index, so the
  // trajectory phase stays deterministic under any thread count. Error is
  // measured against the midpoint (paper's rule).
  so.master_seed = master_seed + 1;
  const uwp::sim::SweepResult moving_res = uwp::sim::SweepRunner(so).run(
      [&](std::size_t trial, uwp::Rng& rng) -> std::vector<double> {
        uwp::sim::Deployment dep = base;
        const double phase = 2.0 * uwp::kPi * static_cast<double>(trial) / 6.0;
        dep.devices[mover].position =
            midpoint + uwp::Vec3{0.0, 1.2 * std::sin(phase), 0.0};
        const uwp::sim::ScenarioRunner runner(std::move(dep));
        const uwp::sim::RoundResult res = runner.run_round(opts, rng);
        if (!res.ok) return {kNaN, kNaN};
        const uwp::Vec2 mid_rel = (midpoint - base.devices[0].position).xy();
        return {distance(res.localization.positions[mover].xy(), mid_rel),
                res.error_2d[other]};
      });
  tally.add(moving_res);

  std::vector<double> mover_static, mover_moving, other_static, other_moving;
  split_rows(static_res, mover_static, other_static);
  split_rows(moving_res, mover_moving, other_moving);

  std::printf("=== Fig 20: %s ===\n", label);
  char row[64];
  std::snprintf(row, sizeof row, "user %zu static", mover);
  uwp::sim::print_summary_row(row, mover_static);
  std::snprintf(row, sizeof row, "user %zu moving", mover);
  uwp::sim::print_summary_row(row, mover_moving);
  std::snprintf(row, sizeof row, "user %zu (bystander) static", other);
  uwp::sim::print_summary_row(row, other_static);
  std::snprintf(row, sizeof row, "user %zu (bystander) w/ mover", other);
  uwp::sim::print_summary_row(row, other_moving);
  std::printf("\n");
}

// The fast-mode sweep (calibrated-Gaussian front-end, no waveform PHY):
// what large Monte-Carlo campaigns run, and the perf workload tracked in
// BENCH_pipeline.json.
uwp::sim::SweepResult run_fast_sweep(std::size_t trials, std::size_t threads) {
  uwp::Rng setup(20);
  const uwp::sim::Deployment base = uwp::sim::make_dock_testbed(setup);
  const uwp::sim::ScenarioRunner runner(base);
  uwp::sim::RoundOptions opts;
  opts.waveform_phy = false;

  uwp::sim::SweepOptions so;
  so.trials = trials;
  so.master_seed = 201;
  so.threads = threads;
  return uwp::sim::SweepRunner(so).run(
      [&]() { return std::make_shared<uwp::sim::ScenarioRoundContext>(runner, opts); },
      [](std::size_t, uwp::Rng& rng, void* ctx) {
        auto* context = static_cast<uwp::sim::ScenarioRoundContext*>(ctx);
        uwp::sim::RoundResult res;
        context->run_into(res, rng);
        return res.error_2d;
      });
}

}  // namespace

int main(int argc, char** argv) {
  const uwp::bench::BenchFlags flags = uwp::bench::parse_flags(argc, argv);
  const std::size_t threads = flags.threads;

  if (flags.json) {
    uwp::sim::BenchJsonReporter report;
    const std::size_t trials = 400;
    const uwp::sim::SweepResult serial = run_fast_sweep(trials, 1);
    report.add("fig20_fast_sweep/400rounds/serial", serial.wall_seconds, trials);
    const uwp::sim::SweepResult par = run_fast_sweep(trials, threads);
    report.add("fig20_fast_sweep/400rounds/threads", par.wall_seconds, trials);
    report.write();
    return 0;
  }

  uwp::sim::SweepTally tally;
  uwp::Rng rng(20);  // deployments only; round streams come from the sweep
  run_config("user 1 moves (15-50 cm/s)", 1, 201, threads, rng, tally);
  run_config("user 2 moves (15-50 cm/s)", 2, 203, threads, rng, tally);

  const uwp::sim::SweepResult fast = run_fast_sweep(400, threads);
  std::printf("=== Fast mode: 400-round sweep (calibrated Gaussian) ===\n");
  uwp::sim::print_summary_row("per-device error", fast.samples);
  std::printf("(%zu rounds in %.3f s across %zu threads)\n\n", fast.per_trial.size(),
              fast.wall_seconds, fast.threads_used);
  tally.add(fast);

  std::printf("(paper: moving increases the mover's median error only\n"
              " modestly — 0.2->0.3 m and 0.4->0.8 m — because each protocol\n"
              " round is an independent snapshot)\n");
  tally.print_footer();
  return 0;
}
