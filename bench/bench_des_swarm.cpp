// Packet-level swarm bench on the discrete-event simulator: a 24-node,
// 12-round scenario (4x the paper's largest group) with three nodes moving
// mid-round, fast-model arrival errors, half-duplex and collision physics.
// Reports per-round packet accounting, raw-vs-tracked localization error,
// and scaling of the round duration with group size.
//
//   --threads=N      fan independent swarm trials across N threads
//                    (UWP_THREADS env var also works; bit-identical output)
//   --trace-out=FILE write a CSV packet trace (time, round, tx, rx, event,
//                    collision) of one serial reference run
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_flags.hpp"
#include "des/scenario.hpp"
#include "sim/metrics.hpp"
#include "sim/sweep.hpp"
#include "util/stats.hpp"

namespace {

std::shared_ptr<const uwp::des::MobilityModel> make_mobility(std::size_t n) {
  // 6 x 4 grid over ~50 x 33 m; three nodes ride lawnmower tracks so their
  // positions change during (not just between) protocol rounds.
  std::vector<uwp::Vec3> origins;
  for (std::size_t i = 0; i < n; ++i) {
    origins.push_back({2.0 + static_cast<double>(i % 6) * 10.0,
                       static_cast<double>(i / 6) * 11.0,
                       1.5 + 0.08 * static_cast<double>(i)});
  }
  auto mob = std::make_shared<uwp::des::LawnmowerMobility>(std::move(origins));
  // Mover nodes beyond the group size are skipped, so the scaling-table
  // sizes carry fewer movers (N = 5 keeps only node 4). Motion shifts
  // positions by centimeters per round — irrelevant to round duration.
  for (std::size_t node : {4u, 11u, 17u}) {
    if (node >= n) continue;
    uwp::des::LawnmowerTrack track;
    track.direction = {0.0, 1.0, 0.0};
    track.span_m = 6.0;
    track.speed_mps = 0.4;
    track.phase_s = 3.0 * static_cast<double>(node);
    mob->set_track(node, track);
  }
  return mob;
}

// `search_threads` parallelizes the localizer's pruned outlier-candidate
// search (bit-identical at any count): 0 = all hardware threads — right for
// the serial reference run; 1 = serial — right for Monte-Carlo sweeps whose
// trials already occupy every core.
uwp::des::DesScenario make_scenario(std::size_t n, std::size_t rounds,
                                    std::size_t search_threads = 1) {
  uwp::des::DesScenarioConfig cfg;
  cfg.protocol.num_devices = n;
  cfg.rounds = rounds;
  cfg.arrival.detection_failure_prob = 0.02;
  cfg.localizer.outlier.search_threads = search_threads;
  std::vector<uwp::audio::AudioTimingConfig> audio(n);
  for (std::size_t i = 0; i < n; ++i) {
    audio[i].speaker_start_s = 0.19 * static_cast<double>(i);
    audio[i].mic_start_s = 0.07 + 0.13 * static_cast<double>(i);
    audio[i].speaker_skew_ppm = (i % 2 ? 1.0 : -1.0) * static_cast<double>(i % 7);
    audio[i].mic_skew_ppm = (i % 3 ? -1.0 : 1.0) * static_cast<double>(i % 5);
  }
  uwp::Matrix conn(n, n, 1.0);
  for (std::size_t i = 0; i < n; ++i) conn(i, i) = 0.0;
  return uwp::des::DesScenario(cfg, make_mobility(n), std::move(audio),
                               std::move(conn));
}

}  // namespace

int main(int argc, char** argv) {
  const uwp::bench::BenchFlags flags = uwp::bench::parse_flags(argc, argv);
  const std::size_t threads = flags.threads;
  const char* trace_path = flags.trace_out;
  const std::size_t n = 24;
  const std::size_t rounds = 12;

  if (flags.json) {
    // The perf workload tracked in BENCH_pipeline.json: the 24-node,
    // 12-round reference round loop (outlier search across all cores).
    const uwp::des::DesScenario timed = make_scenario(n, rounds, 0);
    const auto t0 = std::chrono::steady_clock::now();
    uwp::Rng timing_rng(24);
    const auto res = timed.run(timing_rng);
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    uwp::sim::BenchJsonReporter report;
    report.add("des_swarm/24nodes_12rounds", dt, rounds);
    report.write();
    return res.localized_rounds > 0 ? 0 : 1;
  }

  const uwp::des::DesScenario scenario = make_scenario(n, rounds, 0);

  std::printf("=== DES swarm: %zu nodes, %zu rounds, 3 movers ===\n", n, rounds);
  std::printf("round period %.2f s (worst-case relay round trip)\n\n",
              scenario.round_period_s());

  // One serial reference run for the per-round table (and the packet trace).
  uwp::sim::PacketTrace trace;
  uwp::Rng rng(24);
  const uwp::des::DesScenarioResult ref =
      scenario.run(rng, trace_path != nullptr ? &trace : nullptr);

  std::printf("%6s %10s %10s %10s %12s %12s\n", "round", "delivered", "collided",
              "hd-drops", "raw med[m]", "track med[m]");
  for (const uwp::des::DesRound& round : ref.rounds) {
    std::vector<double> raw, tracked;
    for (std::size_t i = 1; i < n; ++i) {
      if (!std::isnan(round.error_2d[i])) raw.push_back(round.error_2d[i]);
      if (!std::isnan(round.tracked_error_2d[i]))
        tracked.push_back(round.tracked_error_2d[i]);
    }
    std::printf("%6zu %10zu %10zu %10zu %12.2f %12.2f\n", round.index,
                round.medium.deliveries, round.medium.collisions,
                round.medium.half_duplex_drops,
                raw.empty() ? -1.0 : uwp::median(raw),
                tracked.empty() ? -1.0 : uwp::median(tracked));
  }
  std::printf("\n%zu/%zu rounds localized, %zu deliveries, %zu collisions, "
              "%zu half-duplex drops\n",
              ref.localized_rounds, rounds, ref.total_deliveries,
              ref.total_collisions, ref.total_half_duplex_drops);
  uwp::sim::print_summary_row("raw per-device error", ref.errors);
  uwp::sim::print_summary_row("tracked per-device error", ref.tracked_errors);

  if (trace_path != nullptr) {
    uwp::sim::save_packet_trace_csv(trace_path, trace);
    std::printf("packet trace: %zu events -> %s\n", trace.size(), trace_path);
  }

  // Monte-Carlo over independent swarms (fresh error/sensor draws per
  // trial) through the parallel sweep engine. Trials occupy every core, so
  // the per-trial localizer search stays serial (same results either way).
  std::printf("\n=== Monte-Carlo: 8 independent %zu-node swarm runs ===\n", n);
  const uwp::des::DesScenario mc_scenario = make_scenario(n, rounds, 1);
  uwp::sim::SweepOptions so;
  so.trials = 8;
  so.master_seed = 2400;
  so.threads = threads;
  const uwp::sim::SweepResult res = uwp::sim::SweepRunner(so).run(
      [&mc_scenario](std::size_t, uwp::Rng& trial_rng) {
        return mc_scenario.run(trial_rng).errors;
      });
  uwp::sim::print_summary_row("all trials, raw error", res.samples);
  uwp::sim::print_cdf("raw error CDF", res.samples, 9);

  // Round-duration scaling: the slot schedule grows linearly with N; the
  // DES measures the realized duration including propagation tails.
  std::printf("\n=== Round duration vs group size (all-in-range) ===\n");
  std::printf("%6s %14s %16s\n", "N", "paper formula", "DES measured[s]");
  for (std::size_t size : {5u, 10u, 16u, 24u}) {
    const uwp::des::DesScenario s = make_scenario(size, 1);
    uwp::Rng r(size);
    const auto one = s.run(r);
    uwp::proto::ProtocolConfig pc;
    pc.num_devices = size;
    std::printf("%6zu %14.2f %16.2f\n", size,
                uwp::proto::round_trip_all_in_range(pc),
                one.rounds[0].protocol.round_duration_s);
  }
  uwp::sim::SweepTally tally;
  tally.add(res);
  tally.print_footer();
  return 0;
}
