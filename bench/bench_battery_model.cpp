// §3.1 "Battery life": duty-cycle energy model standing in for the paper's
// measurement (watch looping the SOS siren lost 90% in 4.5 h; phone sending
// the preamble every 3 s lost 63%). Also reports how many localization
// rounds a dive-length session costs.
#include <cstdio>

#include "proto/slot_schedule.hpp"
#include "sim/energy_model.hpp"

int main() {
  const uwp::sim::EnergyModel watch = uwp::sim::EnergyModel::watch_ultra_siren();
  const uwp::sim::EnergyModel phone = uwp::sim::EnergyModel::phone_preamble_tx();

  std::printf("=== Battery model vs paper's 4.5 h measurement ===\n");
  std::printf("%-28s %12s %12s\n", "device / workload", "model drop", "paper drop");
  std::printf("%-28s %11.0f%% %11.0f%%\n", "Watch Ultra, continuous siren",
              100.0 * watch.battery_drop_fraction(4.5), 90.0);
  std::printf("%-28s %11.0f%% %11.0f%%\n", "Galaxy S9, preamble / 3 s",
              100.0 * phone.battery_drop_fraction(4.5), 63.0);

  std::printf("\nDrain curves (battery %% consumed):\n%8s %10s %10s\n", "hours",
              "watch", "phone");
  for (double h = 0.5; h <= 4.5; h += 0.5)
    std::printf("%8.1f %9.0f%% %9.0f%%\n", h,
                100.0 * watch.battery_drop_fraction(h),
                100.0 * phone.battery_drop_fraction(h));

  // Cost of on-demand localization: one protocol round (5 devices) is
  // ~1.9 s of audio work.
  uwp::proto::ProtocolConfig cfg;
  cfg.num_devices = 5;
  const double round_s = uwp::proto::round_trip_all_in_range(cfg) + 1.0;  // + uplink
  uwp::sim::EnergyModel loc = phone;
  loc.duty_cycle = 1.0;
  const double wh_per_round = loc.average_power_w() * round_s / 3600.0;
  std::printf("\nOne 5-device localization round (~%.1f s of audio):\n", round_s);
  std::printf("  %.4f Wh -> %.3f%% of the phone battery per round\n", wh_per_round,
              100.0 * wh_per_round / phone.battery_wh);
  std::printf("  (user-initiated rounds are energetically negligible — the\n"
              "   paper's rationale for not tracking continuously)\n");
  return 0;
}
