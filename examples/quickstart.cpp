// Quickstart: localize a 5-device dive group with zero infrastructure —
// and zero hand-wired configuration: the whole scenario (deployment,
// channel, sensors, solver) comes from a declarative ScenarioSpec file.
//
// A leader (device 0) and four divers hang in a simulated lake. A
// measurement front-end (the waveform-level PHY model, per the spec's
// round.waveform_phy) produces one protocol round — leader query, TDM
// responses, timestamp uplink — and the shared pipeline::RoundPipeline
// turns it into 3D positions: payload quantization -> ranging solve ->
// weighted-SMACOF localization -> error metrics against ground truth.
//
//   ./examples/example_quickstart [spec.json]
//
// Defaults to examples/specs/quickstart.json; edit the JSON (move devices,
// switch the preset, go fast-mode) and rerun — no recompile. The uwp_run
// tool drives the same spec from the command line.
#include <cstdio>

#include "config/factory.hpp"
#include "config/spec.hpp"

#ifndef UWP_SPEC_DIR
#define UWP_SPEC_DIR "examples/specs"
#endif

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : UWP_SPEC_DIR "/quickstart.json";

  uwp::config::ScenarioSpec spec;
  try {
    spec = uwp::config::load_spec(path);
  } catch (const uwp::config::SpecError& e) {
    std::fprintf(stderr, "quickstart: %s\n", e.what());
    return 2;
  }

  // Everything below is built *from the spec*: the deployment (dock testbed
  // by default), the per-round options, and the warm round context holding
  // the measurement model plus the shared RoundPipeline.
  const uwp::sim::ScenarioRunner runner = uwp::config::make_scenario_runner(spec);
  const uwp::sim::RoundOptions opts = uwp::config::make_round_options(spec);
  uwp::sim::ScenarioRoundContext context(runner, opts);

  std::printf("[%s] %s\n", path, spec.name.c_str());
  std::printf("Running one localization round (%zu devices, %s, %s PHY)...\n\n",
              runner.deployment().size(), runner.deployment().env.name.c_str(),
              opts.waveform_phy ? "waveform" : "fast-Gaussian");

  uwp::Rng rng(spec.sweep.master_seed);
  const uwp::sim::RoundResult round = context.run(rng);
  if (!round.ok) {
    std::printf("Localization failed (not enough links measured).\n");
    return 1;
  }

  std::printf("Protocol round trip: %.2f s, %zu two-way + %zu one-way links\n",
              round.protocol.round_duration_s, round.ranging.two_way_links,
              round.ranging.one_way_links);
  std::printf("Topology stress: %.2f m RMS%s\n\n",
              round.localization.normalized_stress,
              round.localization.outliers_suspected ? " (outliers suspected)" : "");

  std::printf("%-8s %28s %28s %10s\n", "device", "estimated (x, y, depth) [m]",
              "true (x, y, depth) [m]", "2D err");
  for (std::size_t i = 0; i < runner.deployment().size(); ++i) {
    const uwp::Vec3 est = round.localization.positions[i];
    std::printf("%-8zu (%7.2f, %7.2f, %5.2f)      (%7.2f, %7.2f, %5.2f)      %6.2f\n",
                i, est.x, est.y, est.z, round.truth_xy[i].x, round.truth_xy[i].y,
                round.truth_depths[i], round.error_2d[i]);
  }
  std::printf("\nDevice 0 is the dive leader (origin); device 1 is the diver "
              "the leader points at.\n");
  return 0;
}
