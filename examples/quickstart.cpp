// Quickstart: localize a 5-device dive group with zero infrastructure,
// through the round pipeline.
//
// A leader (device 0) and four divers hang in a simulated lake. A
// measurement front-end (here the waveform-level PHY model) produces one
// protocol round — leader query, TDM responses, timestamp uplink — and the
// shared pipeline::RoundPipeline turns it into 3D positions: payload
// quantization -> ranging solve -> weighted-SMACOF localization -> error
// metrics against ground truth.
//
//   ./examples/quickstart
#include <cstdio>

#include "pipeline/round_pipeline.hpp"
#include "sim/scenario.hpp"

int main() {
  uwp::Rng rng(2023);

  // A ready-made testbed mirroring the paper's dock deployment (Fig 17a).
  uwp::sim::Deployment deployment = uwp::sim::make_dock_testbed(rng);
  const uwp::sim::ScenarioRunner runner(std::move(deployment));

  // Front-end: full acoustic simulation on every link. Swap in
  // pipeline::FastMeasurementModel (calibrated Gaussian) for large sweeps,
  // or des::DesFrontEnd for packet-level dynamics — the pipeline below is
  // identical for all of them.
  uwp::sim::RoundOptions opts;
  opts.waveform_phy = true;
  uwp::sim::WaveformMeasurementModel model(runner, opts);

  uwp::pipeline::PipelineOptions popts;
  popts.protocol = model.scene().protocol;
  uwp::pipeline::RoundPipeline pipeline(popts);

  std::printf("Running one localization round (%zu devices, %s)...\n\n",
              runner.deployment().size(), runner.deployment().env.name.c_str());
  uwp::pipeline::RoundMeasurement measurement;
  model.measure(measurement, rng);
  const uwp::pipeline::RoundOutput& round = pipeline.run_round(measurement, rng);
  if (!round.localized) {
    std::printf("Localization failed (not enough links measured).\n");
    return 1;
  }

  std::printf("Protocol round trip: %.2f s, %zu two-way + %zu one-way links\n",
              measurement.protocol.round_duration_s, round.ranging.two_way_links,
              round.ranging.one_way_links);
  std::printf("Topology stress: %.2f m RMS%s\n\n",
              round.localization.normalized_stress,
              round.localization.outliers_suspected ? " (outliers suspected)" : "");

  std::printf("%-8s %28s %28s %10s\n", "device", "estimated (x, y, depth) [m]",
              "true (x, y, depth) [m]", "2D err");
  for (std::size_t i = 0; i < runner.deployment().size(); ++i) {
    const uwp::Vec3 est = round.localization.positions[i];
    std::printf("%-8zu (%7.2f, %7.2f, %5.2f)      (%7.2f, %7.2f, %5.2f)      %6.2f\n",
                i, est.x, est.y, est.z, measurement.truth_xy[i].x,
                measurement.truth_xy[i].y, measurement.truth_depths[i],
                round.error_2d[i]);
  }
  std::printf("\nDevice 0 is the dive leader (origin); device 1 is the diver "
              "the leader points at.\n");
  return 0;
}
