// Occlusion recovery: a rock (thick sheet, in the paper's experiment) blocks
// the leader <-> diver-1 line of sight. The link still "works" — multipath
// delivers the preamble — but the measured distance is meters too long.
// Algorithm 1 notices the inflated topology stress, searches link subsets,
// and drops the corrupted measurement (§2.1.3 / Fig 19a).
//
//   ./examples/occlusion_recovery
#include <cstdio>

#include "core/localizer.hpp"
#include "util/random.hpp"

int main() {
  uwp::Rng rng(5);

  // Ground-truth group layout (leader at origin).
  const std::vector<uwp::Vec3> truth = {
      {0, 0, 1.5}, {9, 1, 2.0}, {4, 10, 1.0}, {-7, 6, 2.5}, {-3, -9, 3.0}};
  const std::size_t n = truth.size();

  uwp::core::LocalizationInput input;
  input.distances = uwp::Matrix(n, n);
  input.weights = uwp::Matrix::ones(n, n);
  input.depths.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    input.depths[i] = truth[i].z;
    for (std::size_t j = 0; j < n; ++j)
      input.distances(i, j) = distance(truth[i], truth[j]);
  }
  input.pointing_bearing_rad = bearing(truth[1].xy());
  for (std::size_t i = 2; i < n; ++i) {
    const double side = side_of_line(truth[i].xy(), {0, 0}, truth[1].xy());
    input.votes.push_back({i, side > 0 ? 1 : -1});
  }

  // The occlusion: multipath detour adds 6.5 m to the 0<->1 measurement.
  input.distances(0, 1) += 6.5;
  input.distances(1, 0) = input.distances(0, 1);
  std::printf("Link 0-1 occluded: measured %.1f m vs true %.1f m\n\n",
              input.distances(0, 1), distance(truth[0], truth[1]));

  auto report = [&](const char* label, const uwp::core::LocalizerOptions& opts) {
    const uwp::core::Localizer loc(opts);
    const uwp::core::LocalizationResult res = loc.localize(input, rng);
    double worst = 0.0;
    for (std::size_t i = 1; i < n; ++i)
      worst = std::max(worst, distance(res.positions[i].xy(), truth[i].xy()));
    std::printf("%-28s stress=%.2f m, dropped=%zu, worst device error=%.2f m\n",
                label, res.normalized_stress, res.dropped_links.size(), worst);
    for (const auto& [a, b] : res.dropped_links)
      std::printf("%-28s   -> dropped link %zu-%zu\n", "", a, b);
  };

  uwp::core::LocalizerOptions without;
  without.outlier.stress_threshold = 1e9;  // detector disabled
  report("Without outlier detection:", without);

  report("With outlier detection:", uwp::core::LocalizerOptions{});
  std::printf("\nThe detector only ever drops subsets that keep the graph\n"
              "uniquely realizable (redundantly rigid + 3-connected).\n");
  return 0;
}
