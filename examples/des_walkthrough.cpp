// Discrete-event simulator walkthrough: a 10-node, 20-round mobile dive
// group, narrated layer by layer. Shows how the des/ subsystem composes with
// the rest of the stack:
//
//   des::Simulator        deterministic event loop (time, FIFO tie-break)
//   des::AcousticMedium   propagation delay, half-duplex, collisions
//   des::ProtocolNode     §2.3 slot schedule as a per-node state machine
//   des::MobilityModel    positions move *during* rounds
//   proto::RangingSolver  timestamp table -> pairwise distances
//   core::Localizer       distances + depths + pointing -> positions
//   core::GroupTracker    Kalman smoothing across rounds
//
//   ./examples/example_des_walkthrough [--trace-out=FILE]
//
// With --trace-out=FILE every packet event lands in a CSV you can pivot on:
//   awk -F, '$5 == "rx_collision"' FILE   # all collisions
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "des/scenario.hpp"
#include "sim/sweep.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  const char* trace_path = uwp::sim::trace_out_from_args(argc, argv);

  const std::size_t n = 10;

  // Mobility: eight static divers around the leader plus two swimming —
  // node 3 on a 1D lawnmower pass, node 7 looping a 2D waypoint circuit.
  // Waypoint tours subsume lawnmower tracks, so one model carries both.
  std::vector<uwp::Vec3> origins;
  for (std::size_t i = 0; i < n; ++i) {
    const double angle = 2.0 * uwp::kPi * static_cast<double>(i) / n;
    origins.push_back({12.0 * std::cos(angle) + 14.0, 12.0 * std::sin(angle) + 14.0,
                       1.0 + 0.2 * static_cast<double>(i)});
  }
  origins[0] = {14.0, 14.0, 1.5};  // leader at the center
  auto mobility = std::make_shared<uwp::des::WaypointMobility>(origins);
  {
    uwp::des::WaypointTrack pass;  // 1D out-and-back
    pass.waypoints = {origins[3], origins[3] + uwp::Vec3{10.0, 0.0, 0.0}};
    pass.speed_mps = 0.45;
    mobility->set_track(3, pass);
    uwp::des::WaypointTrack loop;  // 2D circuit
    loop.waypoints = {origins[7], origins[7] + uwp::Vec3{6.0, 0.0, 0.0},
                      origins[7] + uwp::Vec3{6.0, 5.0, 0.0},
                      origins[7] + uwp::Vec3{0.0, 5.0, 0.0}};
    loop.speed_mps = 0.35;
    mobility->set_track(7, loop);
  }

  // Per-node audio clocks: distinct offsets and ppm-scale skews, as the
  // Appendix measures on real phones.
  std::vector<uwp::audio::AudioTimingConfig> audio(n);
  for (std::size_t i = 0; i < n; ++i) {
    audio[i].speaker_start_s = 0.23 * static_cast<double>(i);
    audio[i].mic_start_s = 0.04 + 0.09 * static_cast<double>(i);
    audio[i].speaker_skew_ppm = (i % 2 ? 8.0 : -6.0);
    audio[i].mic_skew_ppm = (i % 2 ? -5.0 : 7.0);
  }

  uwp::Matrix conn(n, n, 1.0);
  for (std::size_t i = 0; i < n; ++i) conn(i, i) = 0.0;

  uwp::des::DesScenarioConfig cfg;
  cfg.protocol.num_devices = n;
  cfg.rounds = 20;
  cfg.arrival.detection_failure_prob = 0.03;

  const uwp::des::DesScenario scenario(cfg, mobility, audio, conn);
  std::printf("10-node dive group, 20 protocol rounds, %.1f s apart.\n"
              "Nodes 3 and 7 swim while everyone else holds position.\n\n",
              scenario.round_period_s());

  uwp::sim::PacketTrace trace;
  uwp::Rng rng(10);
  const uwp::des::DesScenarioResult result =
      scenario.run(rng, trace_path != nullptr ? &trace : nullptr);

  std::printf("%6s %6s %9s %9s %12s %12s %14s\n", "round", "t[s]", "heard",
              "collided", "mover3[m]", "mover7[m]", "group med[m]");
  for (const uwp::des::DesRound& round : result.rounds) {
    std::vector<double> finite;
    for (std::size_t i = 1; i < n; ++i)
      if (!std::isnan(round.error_2d[i])) finite.push_back(round.error_2d[i]);
    std::printf("%6zu %6.0f %9zu %9zu %12.2f %12.2f %14.2f\n", round.index,
                round.t_start_s, round.medium.deliveries,
                round.medium.collisions, round.error_2d[3], round.error_2d[7],
                finite.empty() ? -1.0 : uwp::median(finite));
  }

  std::printf("\n%zu/%zu rounds localized; %zu packets delivered, "
              "%zu collided, %zu lost to half-duplex.\n",
              result.localized_rounds, result.rounds.size(),
              result.total_deliveries, result.total_collisions,
              result.total_half_duplex_drops);
  if (result.errors.empty() || result.tracked_errors.empty()) {
    std::printf("no round produced localizable measurements — nothing to "
                "summarize.\n");
  } else {
    std::printf("raw error:     median %.2f m, p95 %.2f m (n=%zu)\n",
                uwp::median(result.errors),
                uwp::percentile(result.errors, 95.0), result.errors.size());
    std::printf("tracked error: median %.2f m, p95 %.2f m — the Kalman layer\n"
                "smooths round-to-round jitter for the static divers while\n"
                "following the movers.\n",
                uwp::median(result.tracked_errors),
                uwp::percentile(result.tracked_errors, 95.0));
  }

  if (trace_path != nullptr) {
    uwp::sim::save_packet_trace_csv(trace_path, trace);
    std::printf("\nwrote %zu packet events to %s\n", trace.size(), trace_path);
  }
  return 0;
}
