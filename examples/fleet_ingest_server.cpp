// The serving front-end end to end: stream a fleet workload through a
// Transport into fleet::Server, with admission control and token-bucket
// rate shaping making real shed/defer decisions — then demonstrate the two
// determinism contracts that make the server testable:
//
//   1. the recorded ingest schedule replays bit for bit through
//      verify_ingest_schedule (every admit/shed/defer decision is a pure
//      function of the schedule and the shaper options), and
//   2. the served run's trace replays bit for bit through fleet::Replayer
//      (a shed round was executed as a tracker coast, so the standard
//      fleet trace format captures a shaped run unchanged).
//
//   ./examples/example_fleet_ingest_server [spec.json]
//                                    (default: fleet_serve_shaped.json)
#include <cstdio>
#include <thread>

#include "config/factory.hpp"
#include "config/spec.hpp"
#include "fleet/recorder.hpp"
#include "fleet/server.hpp"
#include "sim/metrics.hpp"

#ifndef UWP_SPEC_DIR
#define UWP_SPEC_DIR "examples/specs"
#endif

int main(int argc, char** argv) {
  const char* spec_path =
      argc > 1 ? argv[1] : UWP_SPEC_DIR "/fleet_serve_shaped.json";

  uwp::config::ScenarioSpec spec;
  try {
    spec = uwp::config::load_spec(spec_path);
  } catch (const uwp::config::SpecError& e) {
    std::fprintf(stderr, "fleet_ingest_server: %s\n", e.what());
    return 2;
  }

  // 1. Producer and server meet at a bounded in-process transport: the
  //    feeder thread plays every session's device-side event stream (the
  //    same MeasurementFeed the synchronous service consumes), and a full
  //    ring blocks it — transport-level backpressure, not dropped frames.
  uwp::fleet::Server server = uwp::config::make_fleet_server(spec);
  const std::vector<uwp::sim::GroupScenario> workload =
      uwp::config::make_workload(spec);
  uwp::fleet::RingBufferTransport transport(spec.fleet.server.transport_capacity);

  uwp::fleet::FeedOptions feed_opts;
  feed_opts.tick_period_s = spec.fleet.server.tick_period_s;
  std::thread feeder([&] {
    uwp::fleet::feed_workload(transport, workload, spec.fleet.options.master_seed,
                              feed_opts);
  });

  // 2. Serve while recording the run in the standard fleet trace format.
  uwp::fleet::SessionRecorder recorder(spec.fleet.options.master_seed,
                                       spec.fleet.workload, workload);
  const uwp::fleet::ServerResult res = server.serve(transport, &recorder);
  feeder.join();

  const uwp::fleet::ShaperStats& sh = res.stats.shaper;
  std::printf("[%s] policy=%s workers=%zu\n", spec_path,
              to_string(spec.fleet.server.options.shaping.policy),
              res.stats.workers_used);
  std::printf("ingest: %zu frames, %zu rounds admitted, %zu shed, "
              "%zu defer events (%zu frames), peak occupancy %.1f\n",
              sh.frames, sh.rounds_admitted, sh.rounds_shed, sh.defer_events,
              sh.frames_deferred, res.stats.peak_occupancy);
  std::printf("fleet:  %zu sessions, %zu rounds (%zu localized, %zu coasted), "
              "digest %016llx\n",
              res.fleet.sessions.size(), res.fleet.rounds, res.fleet.localized,
              res.fleet.coasts,
              static_cast<unsigned long long>(res.fleet.fleet_digest));
  std::printf("        transport backpressure: %zu send waits\n",
              transport.send_waits());
  uwp::sim::print_summary_row("per-device error", res.fleet.errors);

  // 3. Contract 1 — the schedule verifier (also run inside serve itself).
  const std::size_t schedule_mismatches = uwp::fleet::verify_ingest_schedule(
      res.schedule, spec.fleet.server.options.shaping, workload.size());
  std::printf("schedule: %zu decisions, digest %016llx — %s\n",
              res.schedule.size(),
              static_cast<unsigned long long>(res.schedule_digest),
              schedule_mismatches == 0 ? "recomputed bit-identically"
                                       : "MISMATCH");

  // 4. Contract 2 — the served (and shaped!) run replays through the
  //    ordinary fleet replayer, because shed rounds were recorded as coasts.
  const uwp::fleet::Replayer replayer(recorder.trace());
  const auto replay = replayer.replay();
  bool identical = replay.fleet.fleet_digest == res.fleet.fleet_digest &&
                   replay.result_mismatches == 0;
  for (std::size_t i = 0; identical && i < res.fleet.sessions.size(); ++i)
    identical = res.fleet.sessions[i].bit_equal(replay.fleet.sessions[i]);
  std::printf("replay: %zu rounds recomputed, %zu result mismatches — %s\n",
              replay.fleet.rounds, replay.result_mismatches,
              identical ? "bit-identical to the served run" : "MISMATCH");

  return (identical && schedule_mismatches == 0) ? 0 : 1;
}
