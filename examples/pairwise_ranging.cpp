// Pairwise acoustic ranging demo: two phones exchange the ZC-OFDM preamble
// through the simulated dock channel at increasing separations, and the
// dual-microphone pipeline estimates the distance (paper §2.2 / Fig 11).
//
//   ./examples/pairwise_ranging
#include <cstdio>
#include <vector>

#include "channel/propagation.hpp"
#include "phy/ranging.hpp"
#include "util/stats.hpp"

int main() {
  const uwp::channel::Environment env = uwp::channel::make_dock();
  const uwp::phy::PreambleConfig pc;
  const uwp::phy::OfdmPreamble preamble(pc);
  const uwp::phy::PreambleRanger ranger(preamble);
  const uwp::channel::LinkSimulator link(env, pc.fs_hz);
  // Receiver-side configured sound speed: Wilson's equation with a ~4-6 C
  // temperature guess error (paper 2: <=2% c error at dive depths). This is
  // what makes ranging error grow with true distance.
  const double c_assumed = env.sound_speed_mps() + 22.0;
  uwp::Rng rng(7);

  std::printf("Preamble: %zu samples (%.0f ms), %zu OFDM bins in 1-5 kHz\n\n",
              pc.total_len(), 1000.0 * pc.total_len() / pc.fs_hz, pc.num_bins());
  std::printf("%8s %10s %10s %10s %8s\n", "true[m]", "median[m]", "mean[m]",
              "p95err[m]", "detect");

  for (double range : {5.0, 10.0, 20.0, 30.0, 40.0}) {
    uwp::channel::LinkConfig lc;
    lc.tx_pos = {0.0, 0.0, 2.5};
    lc.rx_pos = {range, 0.0, 2.5};

    std::vector<double> estimates, errors;
    int detected = 0;
    const int trials = 12;
    for (int t = 0; t < trials; ++t) {
      const uwp::channel::Reception rec = link.transmit(preamble.waveform(), lc, rng);
      const auto est = ranger.estimate(rec);
      if (!est) continue;
      ++detected;
      const double d = uwp::phy::one_way_distance_m(*est, c_assumed);
      estimates.push_back(d);
      errors.push_back(std::abs(d - range));
    }
    if (estimates.empty()) {
      std::printf("%8.1f  (no detections)\n", range);
      continue;
    }
    std::printf("%8.1f %10.2f %10.2f %10.2f %6d/%d\n", range,
                uwp::median(estimates), uwp::mean(estimates),
                uwp::percentile(errors, 95.0), detected, trials);
  }
  std::printf("\nErrors grow with range as SNR drops — the shape of Fig 11a.\n");
  return 0;
}
