// Dive-group tracking: repeated localization rounds while one diver swims.
// Demonstrates the user-initiated (non-continuous) tracking model of the
// paper — each round is an independent protocol run — and how the estimate
// follows a moving diver (§3.2 "Effect of mobility").
//
//   ./examples/dive_group_tracking
#include <cmath>
#include <cstdio>

#include "sim/scenario.hpp"

int main() {
  uwp::Rng rng(99);
  uwp::sim::Deployment deployment = uwp::sim::make_dock_testbed(rng);
  const uwp::Vec3 base = deployment.devices[2].position;

  uwp::sim::RoundOptions opts;
  opts.waveform_phy = false;  // fast calibrated-error mode for interactivity

  std::printf("Diver 2 swims a slow circle (~0.4 m/s) around (%.1f, %.1f).\n",
              base.x, base.y);
  std::printf("One localization round every 5 s:\n\n");
  std::printf("%6s %22s %22s %8s\n", "t[s]", "true (x, y)", "estimate (x, y)",
              "err[m]");

  for (int step = 0; step < 12; ++step) {
    const double t = 5.0 * step;
    // Circle of radius 2 m, period 60 s -> ~0.2 m/s tangential speed.
    const double phase = 2.0 * uwp::kPi * t / 60.0;
    deployment.devices[2].position = {base.x + 2.0 * std::cos(phase),
                                      base.y + 2.0 * std::sin(phase), base.z};

    const uwp::sim::ScenarioRunner runner(deployment);
    const uwp::sim::RoundResult round = runner.run_round(opts, rng);
    if (!round.ok) {
      std::printf("%6.0f  (round failed)\n", t);
      continue;
    }
    const uwp::Vec2 truth = round.truth_xy[2];
    const uwp::Vec2 est = round.localization.positions[2].xy();
    std::printf("%6.0f   (%7.2f, %7.2f)    (%7.2f, %7.2f)   %6.2f\n", t, truth.x,
                truth.y, est.x, est.y, round.error_2d[2]);
  }

  std::printf("\nEach round stands alone, so motion between rounds cannot\n"
              "accumulate error — the property Fig 20 measures.\n");
  return 0;
}
