// Continuous tracking demo (§5 future work): periodic localization rounds
// feed per-diver Kalman filters, giving smooth position/velocity estimates
// between acoustic snapshots and coasting through failed rounds.
//
//   ./examples/continuous_tracking
#include <cmath>
#include <cstdio>

#include "core/tracker.hpp"
#include "sim/scenario.hpp"

int main() {
  uwp::Rng rng(321);
  uwp::sim::Deployment deployment = uwp::sim::make_dock_testbed(rng);
  const uwp::Vec3 base = deployment.devices[2].position;

  uwp::core::GroupTracker tracker(deployment.size());
  uwp::sim::RoundOptions opts;
  opts.waveform_phy = false;

  std::printf("Diver 2 swims a loop; one localization round every 5 s.\n");
  std::printf("Rounds at t=40..50 s fail (e.g. boat noise) — the track coasts.\n\n");
  std::printf("%6s %10s %12s %12s %10s %10s\n", "t[s]", "round", "raw err[m]",
              "track err[m]", "speed", "sigma[m]");

  for (int step = 0; step < 20; ++step) {
    const double t = 5.0 * step;
    const double phase = 2.0 * uwp::kPi * t / 80.0;
    deployment.devices[2].position =
        base + uwp::Vec3{2.5 * std::cos(phase), 2.5 * std::sin(phase), 0.0};
    const uwp::Vec2 truth =
        (deployment.devices[2].position - deployment.devices[0].position).xy();

    tracker.predict(step == 0 ? 0.0 : 5.0);

    const bool round_fails = t >= 40.0 && t <= 50.0;
    double raw_err = -1.0;
    if (!round_fails) {
      const uwp::sim::ScenarioRunner runner(deployment);
      const uwp::sim::RoundResult res = runner.run_round(opts, rng);
      if (res.ok) {
        raw_err = res.error_2d[2];
        std::vector<std::optional<uwp::Vec2>> update(deployment.size());
        update[2] = res.localization.positions[2].xy();
        tracker.update(update, res.localization.normalized_stress + 0.5);
      }
    }

    const auto& track = tracker.track(2);
    const double track_err =
        track.initialized() ? distance(track.position(), truth) : -1.0;
    std::printf("%6.0f %10s %12.2f %12.2f %10.2f %10.2f\n", t,
                round_fails ? "FAILED" : "ok", raw_err, track_err, track.speed(),
                track.position_sigma());
  }

  std::printf("\nThe filter's sigma column shows uncertainty growing while\n"
              "rounds fail and collapsing when measurements resume.\n");
  return 0;
}
