// Continuous tracking demo (§5 future work): periodic localization rounds
// feed per-diver Kalman filters, giving smooth position/velocity estimates
// between acoustic snapshots and coasting through failed rounds. The whole
// chain — fast-Gaussian measurement front-end, quantize -> solve ->
// localize, tracker fusion — runs inside pipeline::RoundPipeline; the demo
// only moves the diver and reads the tracks.
//
//   ./examples/continuous_tracking
#include <cmath>
#include <cstdio>

#include "pipeline/closed_form.hpp"
#include "pipeline/round_pipeline.hpp"
#include "sim/scenario.hpp"

int main() {
  uwp::Rng rng(321);
  uwp::sim::Deployment deployment = uwp::sim::make_dock_testbed(rng);
  const uwp::sim::ScenarioRunner runner(deployment);

  uwp::sim::RoundOptions opts;
  opts.waveform_phy = false;

  // Fast-Gaussian front-end over the dock scene; the pipeline runs the
  // tracker stage (one constant-velocity Kalman filter per diver).
  uwp::pipeline::FastMeasurementModel model(runner.scene(opts), opts.fast_arrival);
  uwp::pipeline::PipelineOptions popts;
  popts.protocol = model.scene().protocol;
  popts.track = true;
  // Noisy rounds (high topology stress) get less Kalman gain.
  popts.tracker_stress_sigma_offset_m = 0.5;
  uwp::pipeline::RoundPipeline pipeline(popts);

  const uwp::Vec3 base = model.scene().positions[2];
  const uwp::Vec3 leader = model.scene().positions[0];

  std::printf("Diver 2 swims a loop; one localization round every 5 s.\n");
  std::printf("Rounds at t=40..50 s fail (e.g. boat noise) — the track coasts.\n\n");
  std::printf("%6s %10s %12s %12s %10s %10s\n", "t[s]", "round", "raw err[m]",
              "track err[m]", "speed", "sigma[m]");

  uwp::pipeline::RoundMeasurement measurement;
  for (int step = 0; step < 20; ++step) {
    const double t = 5.0 * step;
    const double phase = 2.0 * uwp::kPi * t / 80.0;
    model.positions()[2] =
        base + uwp::Vec3{2.5 * std::cos(phase), 2.5 * std::sin(phase), 0.0};
    const uwp::Vec2 truth = (model.positions()[2] - leader).xy();

    const bool round_fails = t >= 40.0 && t <= 50.0;
    double raw_err = -1.0;
    if (round_fails) {
      // No acoustic round: the pipeline's tracker coasts on its motion model.
      pipeline.coast(step == 0 ? 0.0 : 5.0);
    } else {
      model.measure(measurement, rng);
      const uwp::pipeline::RoundOutput& out =
          pipeline.run_round(measurement, rng, step == 0 ? 0.0 : 5.0);
      if (out.localized) raw_err = out.error_2d[2];
    }

    const uwp::core::DiverTrack& track = pipeline.tracker().track(2);
    const double track_err =
        track.initialized() ? distance(track.position(), truth) : -1.0;
    std::printf("%6.0f %10s %12.2f %12.2f %10.2f %10.2f\n", t,
                round_fails ? "FAILED" : "ok", raw_err, track_err, track.speed(),
                track.position_sigma());
  }

  std::printf("\nThe filter's sigma column shows uncertainty growing while\n"
              "rounds fail and collapsing when measurements resume.\n");
  return 0;
}
