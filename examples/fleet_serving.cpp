// Serving many positioning groups at once: a narrated tour of the fleet
// layer, driven end to end by a declarative ScenarioSpec. The spec file
// describes the whole workload mix and service configuration; this program
// builds the service from it, runs it while fleet::SessionRecorder captures
// every session's measurement bytes, then replays the trace through the
// real service stack and verifies the replay reproduced every per-session
// metric bit for bit — the regression-testing loop a deployed fleet would
// run against captured field traffic.
//
//   ./examples/example_fleet_serving [spec.json]   (default: fleet_serving.json)
#include <cstdio>
#include <map>

#include "config/factory.hpp"
#include "config/spec.hpp"
#include "fleet/recorder.hpp"
#include "fleet/service.hpp"
#include "sim/metrics.hpp"

#ifndef UWP_SPEC_DIR
#define UWP_SPEC_DIR "examples/specs"
#endif

int main(int argc, char** argv) {
  const char* spec_path = argc > 1 ? argv[1] : UWP_SPEC_DIR "/fleet_serving.json";

  uwp::config::ScenarioSpec spec;
  try {
    spec = uwp::config::load_spec(spec_path);
  } catch (const uwp::config::SpecError& e) {
    std::fprintf(stderr, "fleet_serving: %s\n", e.what());
    return 2;
  }

  // 1. The mixed workload the spec describes (admissions staggered past the
  //    first evictions so the shard arenas get to rebind warm pipelines).
  const uwp::fleet::FleetService service = uwp::config::make_fleet_service(spec);
  const auto& workload = service.workload();

  std::map<uwp::sim::GroupScenarioKind, std::size_t> kinds;
  for (const auto& sc : workload) ++kinds[sc.kind];
  std::printf("[%s] workload: %zu sessions —", spec_path, workload.size());
  for (const auto& [kind, count] : kinds)
    std::printf(" %s=%zu", uwp::sim::to_string(kind), count);
  std::printf("\n");

  // 2. Serve the fleet, recording every session as it runs.
  uwp::fleet::SessionRecorder recorder(spec.fleet.options.master_seed,
                                       spec.fleet.workload, workload);
  const uwp::fleet::FleetResult live = service.run(&recorder);

  const uwp::sim::RateLatency rl =
      uwp::sim::rate_latency(live.rounds, live.wall_seconds, live.round_latency_s);
  std::printf("live run: %zu shards, %zu rounds (%zu localized, %zu coasted)\n",
              live.shards_used, live.rounds, live.localized, live.coasts);
  std::printf("          %.0f rounds/sec, round latency p50=%.2f ms p99=%.2f ms\n",
              rl.rounds_per_sec, rl.p50_s * 1e3, rl.p99_s * 1e3);
  std::printf("          arena: %zu admissions, %zu warm-pipeline reuses\n",
              service.arena_stats().leases, service.arena_stats().reuses);
  uwp::sim::print_summary_row("per-device error", live.errors);

  // 3. Save the trace, reload it, replay it through the real decode ->
  //    pipeline path, and compare bit for bit. The trace header pins the
  //    workload digest, so a skewed workload generator is rejected instead
  //    of silently replaying different sessions.
  const char* path = "fleet_serving.trace";
  recorder.save(path);
  const uwp::fleet::FleetTrace trace = uwp::fleet::load_fleet_trace(path);
  std::remove(path);  // the loaded copy is all the replay needs
  std::size_t bytes = 0;
  for (const auto& s : trace.sessions)
    for (const auto& ev : s.events) bytes += ev.payload.size() + 16;
  std::printf("trace: %s (%zu sessions, ~%zu KiB)\n", path, trace.sessions.size(),
              bytes / 1024);

  const uwp::fleet::Replayer replayer(trace);
  const auto replay = replayer.replay();

  bool identical = replay.fleet.fleet_digest == live.fleet_digest &&
                   replay.result_mismatches == 0;
  for (std::size_t i = 0; identical && i < live.sessions.size(); ++i)
    identical = live.sessions[i].bit_equal(replay.fleet.sessions[i]);
  std::printf("replay: %zu rounds recomputed, %zu result mismatches — %s\n",
              replay.fleet.rounds, replay.result_mismatches,
              identical ? "bit-identical to the live run" : "MISMATCH");
  return identical ? 0 : 1;
}
