// Serving many positioning groups at once: a narrated tour of the fleet
// layer. Builds a small mixed workload, runs it through the sharded
// fleet::FleetService while fleet::SessionRecorder captures every session's
// measurement bytes, then replays the trace through the real service stack
// and verifies the replay reproduced every per-session metric bit for bit —
// the regression-testing loop a deployed fleet would run against captured
// field traffic.
#include <cstdio>
#include <map>

#include "fleet/recorder.hpp"
#include "fleet/service.hpp"
#include "sim/fleet_workload.hpp"
#include "sim/metrics.hpp"

int main() {
  // 1. A mixed workload: 48 groups of 4-8 devices with staggered admission.
  uwp::sim::WorkloadParams params;
  params.sessions = 48;
  params.seed = 0x5EA5u;
  // Stagger admissions past the first evictions so the shard arenas get to
  // rebind warm pipelines instead of allocating fresh ones.
  params.admit_spread_ticks = 10;
  const auto workload = uwp::sim::make_workload(params);

  std::map<uwp::sim::GroupScenarioKind, std::size_t> kinds;
  for (const auto& sc : workload) ++kinds[sc.kind];
  std::printf("workload: %zu sessions —", workload.size());
  for (const auto& [kind, count] : kinds)
    std::printf(" %s=%zu", uwp::sim::to_string(kind), count);
  std::printf("\n");

  // 2. Serve the fleet, recording every session as it runs.
  uwp::fleet::FleetOptions fo;
  fo.master_seed = 0xD1CE;
  fo.shards = 0;  // one shard per hardware thread
  fo.measure_latency = true;
  uwp::fleet::FleetService service(fo, workload);
  uwp::fleet::SessionRecorder recorder(fo.master_seed, params);
  const uwp::fleet::FleetResult live = service.run(&recorder);

  const uwp::sim::RateLatency rl =
      uwp::sim::rate_latency(live.rounds, live.wall_seconds, live.round_latency_s);
  std::printf("live run: %zu shards, %zu rounds (%zu localized, %zu coasted)\n",
              live.shards_used, live.rounds, live.localized, live.coasts);
  std::printf("          %.0f rounds/sec, round latency p50=%.2f ms p99=%.2f ms\n",
              rl.rounds_per_sec, rl.p50_s * 1e3, rl.p99_s * 1e3);
  std::printf("          arena: %zu admissions, %zu warm-pipeline reuses\n",
              service.arena_stats().leases, service.arena_stats().reuses);
  uwp::sim::print_summary_row("per-device error", live.errors);

  // 3. Save the trace, reload it, replay it through the real decode ->
  //    pipeline path, and compare bit for bit.
  const char* path = "fleet_serving.trace";
  recorder.save(path);
  const uwp::fleet::FleetTrace trace = uwp::fleet::load_fleet_trace(path);
  std::size_t bytes = 0;
  for (const auto& s : trace.sessions)
    for (const auto& ev : s.events) bytes += ev.payload.size() + 16;
  std::printf("trace: %s (%zu sessions, ~%zu KiB)\n", path, trace.sessions.size(),
              bytes / 1024);

  const uwp::fleet::Replayer replayer(trace);
  const auto replay = replayer.replay();

  bool identical = replay.fleet.fleet_digest == live.fleet_digest &&
                   replay.result_mismatches == 0;
  for (std::size_t i = 0; identical && i < live.sessions.size(); ++i)
    identical = live.sessions[i].bit_equal(replay.fleet.sessions[i]);
  std::printf("replay: %zu rounds recomputed, %zu result mismatches — %s\n",
              replay.fleet.rounds, replay.result_mismatches,
              identical ? "bit-identical to the live run" : "MISMATCH");
  return identical ? 0 : 1;
}
