// Distributed timestamp protocol walkthrough (§2.3): prints the TDM slot
// schedule, runs one round (including a device that cannot hear the leader
// and relay-syncs off another diver), and shows how the leader turns local
// timestamps into pairwise distances, plus the §2.4 payload budget.
//
//   ./examples/protocol_walkthrough
#include <cmath>
#include <cstdio>

#include "proto/payload_codec.hpp"
#include "proto/ranging_solver.hpp"
#include "proto/timestamp_protocol.hpp"

int main() {
  uwp::proto::ProtocolConfig cfg;
  cfg.num_devices = 5;

  std::printf("Slot schedule (delta0=%.0f ms, delta1=%.0f ms):\n",
              cfg.delta0_s * 1e3, cfg.delta1_s() * 1e3);
  for (std::size_t id = 1; id < cfg.num_devices; ++id)
    std::printf("  device %zu transmits at local t = %.2f s\n", id,
                uwp::proto::slot_time_leader_sync(cfg, id));
  std::printf("  round trip (all in range): %.2f s, worst case: %.2f s\n\n",
              uwp::proto::round_trip_all_in_range(cfg),
              uwp::proto::round_trip_worst_case(cfg));

  // Line of devices, 7 m apart; device 4 is out of the leader's range.
  std::vector<uwp::proto::ProtocolDevice> devices(5);
  for (std::size_t i = 0; i < 5; ++i) {
    devices[i].id = i;
    devices[i].position = {7.0 * static_cast<double>(i), 0.0, 2.0};
  }
  uwp::Matrix conn(5, 5, 1.0);
  for (std::size_t i = 0; i < 5; ++i) conn(i, i) = 0.0;
  conn(0, 4) = conn(4, 0) = 0.0;  // leader <-/-> device 4

  const uwp::proto::TimestampProtocol protocol(cfg, devices);
  uwp::Rng rng(1);
  const uwp::proto::ProtocolRun run = protocol.run(conn, rng);

  std::printf("Sync references (device 4 relay-syncs, it cannot hear the leader):\n");
  for (std::size_t i = 1; i < 5; ++i)
    std::printf("  device %zu synced off device %zu, transmitted at global t = %.3f s\n",
                i, run.sync_ref[i], run.tx_global[i]);

  const uwp::proto::RangingSolver solver(cfg);
  const uwp::proto::RangingSolution sol = solver.solve(run);
  std::printf("\nRecovered distances (true spacing 7 m per hop):\n");
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = i + 1; j < 5; ++j)
      if (sol.weights(i, j) > 0.0)
        std::printf("  D(%zu,%zu) = %6.2f m (true %5.1f)\n", i, j,
                    sol.distances(i, j), 7.0 * static_cast<double>(j - i));

  uwp::proto::PayloadCodecConfig ccfg;
  ccfg.protocol = cfg;
  const uwp::proto::PayloadCodec codec(ccfg);
  std::printf("\nUplink payload: %zu bits per device "
              "(8-bit depth @ 0.2 m + 10-bit slot deltas @ 2 samples)\n",
              codec.config().payload_bits());
  return 0;
}
