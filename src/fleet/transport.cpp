#include "fleet/transport.hpp"

#include <utility>

namespace uwp::fleet {

void encode_ingest_frame(const IngestFrame& f, std::vector<std::uint8_t>& out) {
  out.clear();
  put_u32(out, kIngestMagic);
  put_u16(out, kIngestVersion);
  put_u8(out, static_cast<std::uint8_t>(f.kind));
  put_u64(out, f.session_id);
  put_u32(out, f.round);
  put_f64(out, f.t_s);
  put_f64(out, f.dt_s);
  put_u64(out, f.payload.size());
  out.insert(out.end(), f.payload.begin(), f.payload.end());
}

void decode_ingest_frame(std::span<const std::uint8_t> in, IngestFrame& out) {
  ByteReader r{in, 0};
  if (r.u32() != kIngestMagic) throw WireError("ingest frame: bad magic");
  const std::uint16_t version = r.u16();
  if (version != kIngestVersion)
    throw WireError("ingest frame: unsupported version " + std::to_string(version));
  const std::uint8_t kind = r.u8();
  if (kind < static_cast<std::uint8_t>(IngestKind::kMeasurement) ||
      kind > static_cast<std::uint8_t>(IngestKind::kBye))
    throw WireError("ingest frame: unknown kind " + std::to_string(kind));
  out.kind = static_cast<IngestKind>(kind);
  out.session_id = r.u64();
  out.round = r.u32();
  out.t_s = r.f64();
  out.dt_s = r.f64();
  const std::uint64_t len = r.u64();
  r.need(len);
  if (out.kind != IngestKind::kMeasurement && len != 0)
    throw WireError("ingest frame: unexpected payload on a control frame");
  out.payload.assign(in.begin() + static_cast<std::ptrdiff_t>(r.pos),
                     in.begin() + static_cast<std::ptrdiff_t>(r.pos + len));
  r.pos += len;
  if (r.pos != in.size()) throw WireError("ingest frame: trailing bytes");
}

// --- RingBufferTransport ----------------------------------------------------

RingBufferTransport::RingBufferTransport(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

bool RingBufferTransport::send(std::vector<std::uint8_t> frame) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!closed_ && ring_.size() >= capacity_) {
    ++send_waits_;
    not_full_.wait(lock, [&] { return closed_ || ring_.size() < capacity_; });
  }
  if (closed_) return false;
  ring_.push_back(std::move(frame));
  ++frames_sent_;
  not_empty_.notify_one();
  return true;
}

bool RingBufferTransport::recv(std::vector<std::uint8_t>& frame) {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [&] { return closed_ || !ring_.empty(); });
  if (ring_.empty()) return false;  // closed and drained
  frame = std::move(ring_.front());
  ring_.pop_front();
  not_full_.notify_one();
  return true;
}

void RingBufferTransport::close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  not_full_.notify_all();
  not_empty_.notify_all();
}

std::size_t RingBufferTransport::frames_sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return frames_sent_;
}

std::size_t RingBufferTransport::send_waits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return send_waits_;
}

}  // namespace uwp::fleet
