// Versioned binary wire codec for the fleet layer. A positioning service
// cannot assume its measurements were produced in-process: they arrive from
// devices as bytes, and regression traces replay those same bytes. This
// codec serializes pipeline::RoundMeasurement (the full leader-side round
// input, ground truth included) and the compact per-round result record
// exchanged between shards and trace files.
//
// Format rules:
//   * every record starts with magic "UWPF" (u32 LE), a u16 version, and a
//     u8 record kind, so streams are self-describing and refuse foreign or
//     future bytes instead of misparsing them;
//   * integers are little-endian fixed width; doubles ride as their IEEE-754
//     bit pattern, so round trips are bit-exact for every field including
//     NaN sentinels;
//   * the heard matrix and vote signs travel as MSB-first bitfields built on
//     proto::push_bits / proto::pop_bits — the same bitstream primitives the
//     §2.4 payload codec uses;
//   * decoders validate everything (magic, version, kind, sizes, value
//     domains) and throw uwp::fleet::WireError on malformed input; they
//     never read past the buffer and never allocate unbounded memory (device
//     counts are capped at kMaxWireDevices).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "pipeline/measurement.hpp"
#include "sim/fleet_workload.hpp"

namespace uwp::fleet {

inline constexpr std::uint32_t kWireMagic = 0x46505755u;  // "UWPF" little-endian
inline constexpr std::uint16_t kWireVersion = 1;
// Sanity cap on the decoded device count: a fleet group is tens of devices;
// anything larger is a corrupt or hostile length field, rejected before any
// allocation is sized from it.
inline constexpr std::size_t kMaxWireDevices = 512;

enum class RecordKind : std::uint8_t {
  kMeasurement = 1,  // a full pipeline::RoundMeasurement
  kRoundRecord = 2,  // a per-round result summary (RoundRecord below)
};

// Thrown on any malformed input: bad magic/version/kind, truncated buffer,
// inconsistent field sizes, or out-of-domain values.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

// --- little-endian byte primitives ------------------------------------------
// Shared by the record codecs below and the fleet trace recorder.

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v);
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v);
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v);
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v);
void put_f64(std::vector<std::uint8_t>& out, double v);

// Bounds-checked cursor; every accessor throws WireError instead of reading
// past the end, so a truncated or hostile buffer can never fault.
struct ByteReader {
  std::span<const std::uint8_t> in;
  std::size_t pos = 0;

  void need(std::size_t bytes) const;
  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
};

// The per-round result summary a session emits after running one
// measurement through its pipeline: enough for downstream consumers (and
// the replay verifier) to compare runs bit-for-bit without shipping the
// whole localization state.
struct RoundRecord {
  std::uint32_t round = 0;
  bool localized = false;
  double normalized_stress = 0.0;
  // Per-device horizontal errors; NaN where unavailable (see
  // pipeline::RoundOutput). tracked_error_2d is empty when tracking is off.
  std::vector<double> error_2d;
  std::vector<double> tracked_error_2d;
};

// Append one encoded record to `out` (header included). Throws
// std::invalid_argument when the in-memory value is not encodable: vector
// sizes inconsistent with the protocol's device count, heard entries other
// than 0/1, vote signs outside {-1, 0, +1}, or more than kMaxWireDevices
// devices.
void encode_measurement(const pipeline::RoundMeasurement& m,
                        std::vector<std::uint8_t>& out);
void encode_round_record(const RoundRecord& r, std::vector<std::uint8_t>& out);

// Decode one record starting at `pos`, advancing `pos` past it. Buffers in
// `out` are reused. Throws WireError on malformed input.
void decode_measurement(std::span<const std::uint8_t> in, std::size_t& pos,
                        pipeline::RoundMeasurement& out);
void decode_round_record(std::span<const std::uint8_t> in, std::size_t& pos,
                         RoundRecord& out);

// Peek the record kind at `pos` (validating magic + version) without
// consuming it; throws WireError when the header is malformed.
RecordKind peek_record_kind(std::span<const std::uint8_t> in, std::size_t pos);

// Exact structural equality (bit-level for doubles, so NaN == NaN); the
// definition of "round trip is exact" used by the codec tests and the
// replay verifier.
bool bit_equal(const pipeline::RoundMeasurement& a, const pipeline::RoundMeasurement& b);
bool bit_equal(const RoundRecord& a, const RoundRecord& b);

// FNV-1a digest over every field of every scenario in a generated workload
// (bit-level for doubles). The fleet trace header embeds it so a replay that
// regenerates a *different* workload from the recorded parameters — a
// workload-generator version skew — fails loudly instead of silently
// replaying different sessions.
std::uint64_t workload_digest(const std::vector<sim::GroupScenario>& workload);

}  // namespace uwp::fleet
