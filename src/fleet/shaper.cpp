#include "fleet/shaper.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "fleet/session.hpp"
#include "telemetry/collector.hpp"

namespace uwp::fleet {

const char* to_string(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kAdmitAll:
      return "admit-all";
    case AdmissionPolicy::kShed:
      return "shed";
    case AdmissionPolicy::kDefer:
      return "defer";
  }
  return "?";
}

const char* to_string(IngestDecision decision) {
  switch (decision) {
    case IngestDecision::kAdmit:
      return "admit";
    case IngestDecision::kShed:
      return "shed";
  }
  return "?";
}

bool bit_equal(const IngestRecord& a, const IngestRecord& b) {
  const auto db = [](double x) { return std::bit_cast<std::uint64_t>(x); };
  return db(a.arrival_s) == db(b.arrival_s) && db(a.decide_s) == db(b.decide_s) &&
         a.session_id == b.session_id && a.round == b.round && a.kind == b.kind &&
         a.decision == b.decision && a.defers == b.defers;
}

std::uint64_t ingest_schedule_digest(std::span<const IngestRecord> schedule) {
  std::uint64_t h = kFnvOffsetBasis;
  for (const IngestRecord& r : schedule) {
    fnv_mix(h, r.arrival_s);
    fnv_mix(h, r.decide_s);
    fnv_mix(h, r.session_id);
    fnv_mix(h, static_cast<std::uint64_t>(r.round));
    fnv_mix(h, static_cast<std::uint64_t>(r.kind));
    fnv_mix(h, static_cast<std::uint64_t>(r.decision));
    fnv_mix(h, static_cast<std::uint64_t>(r.defers));
  }
  return h;
}

// --- TokenBucketShaper ------------------------------------------------------

TokenBucketShaper::TokenBucketShaper(const ShaperOptions& opts)
    : opts_(opts), partitions_(opts.ingest_shards == 0 ? 1 : opts.ingest_shards) {
  for (Partition& p : partitions_) p.tokens = opts_.burst_rounds;
}

void TokenBucketShaper::advance(Partition& p, double t_s) {
  // Retry chains can interleave partitions slightly out of time order;
  // state only ever advances (dt clamps at 0), keeping it deterministic.
  const double dt = std::max(0.0, t_s - p.last_s);
  p.last_s = std::max(p.last_s, t_s);
  p.occupancy = std::max(0.0, p.occupancy - dt * opts_.drain_rounds_per_s);
  if (opts_.rate_rounds_per_s > 0.0) {
    // Occupancy feedback on the refill rate: past the threshold the rate
    // backs off linearly, hitting zero when the modeled queue is full. The
    // end-of-interval occupancy stands in for the whole interval — an
    // approximation, but a deterministic one.
    const double frac = p.occupancy / static_cast<double>(opts_.queue_depth);
    const double feedback =
        frac >= opts_.feedback_threshold ? std::max(0.0, 1.0 - frac) : 1.0;
    p.tokens = std::min(opts_.burst_rounds,
                        p.tokens + dt * opts_.rate_rounds_per_s * feedback);
  }
}

void TokenBucketShaper::retune(double rate_rounds_per_s, double burst_rounds) {
  opts_.rate_rounds_per_s = rate_rounds_per_s;
  opts_.burst_rounds = burst_rounds;
  for (Partition& p : partitions_) p.tokens = std::min(p.tokens, burst_rounds);
}

bool TokenBucketShaper::try_admit(std::size_t partition, double t_s) {
  Partition& p = partitions_[partition % partitions_.size()];
  advance(p, t_s);
  if (p.occupancy + 1.0 > static_cast<double>(opts_.queue_depth)) return false;
  if (opts_.rate_rounds_per_s > 0.0) {
    if (p.tokens < 1.0) return false;
    p.tokens -= 1.0;
  }
  p.occupancy += 1.0;
  peak_occupancy_ = std::max(peak_occupancy_, p.occupancy);
  return true;
}

// --- IngestScheduler --------------------------------------------------------

IngestScheduler::IngestScheduler(const ShaperOptions& opts, std::size_t sessions)
    : opts_(opts), shaper_(opts), backlog_(sessions) {}

bool IngestScheduler::resolve(Pending& p, double t_s, const Dispatch& dispatch) {
  IngestRecord& rec = schedule_[p.record];
  rec.decide_s = t_s;
  rec.defers = p.defers;

  // Control frames are not load; they pass whenever their turn comes.
  const bool is_round = p.frame.kind == IngestKind::kMeasurement;
  bool admit = true;
  if (is_round && opts_.policy != AdmissionPolicy::kAdmitAll)
    admit = shaper_.try_admit(static_cast<std::size_t>(p.frame.session_id), t_s);

  if (!admit && opts_.policy == AdmissionPolicy::kDefer && p.defers < opts_.max_defers) {
    if (p.defers == 0) ++stats_.frames_deferred;
    ++p.defers;
    ++stats_.defer_events;
    rec.defers = p.defers;
    if (telemetry_ != nullptr) {
      telemetry_->set_time(t_s);
      telemetry_->count(telemetry::Counter::kIngestDeferred);
    }
    return false;
  }

  rec.decision = admit ? IngestDecision::kAdmit : IngestDecision::kShed;
  if (is_round) {
    ++(admit ? stats_.rounds_admitted : stats_.rounds_shed);
    if (telemetry_ != nullptr) {
      telemetry_->set_time(t_s);
      telemetry_->count(admit ? telemetry::Counter::kIngestAdmitted
                              : telemetry::Counter::kIngestShed);
    }
  }
  dispatch(std::move(p.frame), !admit, t_s);
  return true;
}

void IngestScheduler::work_backlog(std::uint64_t session_id, double from_s,
                                   const Dispatch& dispatch) {
  std::deque<Pending>& chain = backlog_[static_cast<std::size_t>(session_id)];
  double t = from_s;
  while (!chain.empty()) {
    Pending& head = chain.front();
    // A chained frame may have arrived after the head's retry slot; it can
    // never be attempted before its own arrival time.
    t = std::max(t, head.frame.t_s);
    if (!resolve(head, t, dispatch)) {
      retries_.push({t + opts_.defer_delay_s, next_seq_++, session_id});
      return;
    }
    chain.pop_front();
  }
}

void IngestScheduler::flush(double now_s, const Dispatch& dispatch) {
  while (!retries_.empty() && retries_.top().retry_s <= now_s) {
    const Retry r = retries_.top();
    retries_.pop();
    work_backlog(r.session_id, r.retry_s, dispatch);
  }
}

void IngestScheduler::on_frame(IngestFrame f, const Dispatch& dispatch) {
  if (f.session_id >= backlog_.size())
    throw WireError("ingest: session id " + std::to_string(f.session_id) +
                    " outside the workload");
  flush(f.t_s, dispatch);

  ++stats_.frames;
  IngestRecord rec;
  rec.arrival_s = f.t_s;
  rec.decide_s = f.t_s;
  rec.session_id = f.session_id;
  rec.round = f.round;
  rec.kind = f.kind;
  schedule_.push_back(rec);

  Pending p;
  p.record = schedule_.size() - 1;
  p.frame = std::move(f);

  std::deque<Pending>& chain = backlog_[static_cast<std::size_t>(p.frame.session_id)];
  if (!chain.empty()) {
    // The session already has a deferred frame pending; preserve order by
    // chaining behind it (a retry entry for this session is already queued).
    chain.push_back(std::move(p));
    stats_.max_backlog = std::max(stats_.max_backlog, chain.size());
    return;
  }
  const double t = p.frame.t_s;
  if (!resolve(p, t, dispatch)) {
    const std::uint64_t session_id = p.frame.session_id;
    chain.push_back(std::move(p));
    stats_.max_backlog = std::max(stats_.max_backlog, chain.size());
    retries_.push({t + opts_.defer_delay_s, next_seq_++, session_id});
  }
}

void IngestScheduler::flush_until(double now_s, const Dispatch& dispatch) {
  flush(now_s, dispatch);
}

void IngestScheduler::retune(double rate_rounds_per_s, double burst_rounds,
                             std::size_t max_defers) {
  opts_.rate_rounds_per_s = rate_rounds_per_s;
  opts_.burst_rounds = burst_rounds;
  opts_.max_defers = max_defers;
  shaper_.retune(rate_rounds_per_s, burst_rounds);
}

void IngestScheduler::finish(const Dispatch& dispatch) {
  flush(std::numeric_limits<double>::infinity(), dispatch);
}

namespace {

std::size_t schedule_mismatches(std::span<const IngestRecord> recorded,
                                const std::vector<IngestRecord>& recomputed) {
  std::size_t mismatches =
      recomputed.size() > recorded.size() ? recomputed.size() - recorded.size() : 0;
  const std::size_t n = std::min(recomputed.size(), recorded.size());
  mismatches += recorded.size() - n;
  for (std::size_t i = 0; i < n; ++i)
    if (!bit_equal(recorded[i], recomputed[i])) ++mismatches;
  return mismatches;
}

}  // namespace

std::size_t verify_ingest_schedule(std::span<const IngestRecord> recorded,
                                   const ShaperOptions& opts, std::size_t sessions) {
  return verify_ingest_schedule(recorded, opts, sessions, {}, 0.0);
}

std::size_t verify_ingest_schedule(std::span<const IngestRecord> recorded,
                                   const ShaperOptions& opts, std::size_t sessions,
                                   std::span<const control::ControlAction> actions,
                                   double window_s) {
  IngestScheduler scheduler(opts, sessions);
  const IngestScheduler::Dispatch noop = [](IngestFrame&&, bool, double) {};

  // Re-apply the log's shaper retunes exactly as the live ingest loop did:
  // before feeding the first arrival at or past a window boundary, flush
  // retries due by the boundary and retune from the actions logged for the
  // window that just closed. Fold actions in order into a running knob
  // bundle so a boundary with no logged change retunes to the same values
  // it already had (a no-op, exactly as live).
  double rate = opts.rate_rounds_per_s;
  double burst = opts.burst_rounds;
  std::size_t max_defers = opts.max_defers;
  std::size_t ai = 0;
  std::uint64_t closing = 0;  // window index the next boundary closes
  double next_boundary = window_s;
  const auto cross_boundaries = [&](double arrival_s) {
    if (window_s <= 0.0) return;
    while (arrival_s >= next_boundary) {
      scheduler.flush_until(next_boundary, noop);
      const std::uint64_t w = closing++;
      for (; ai < actions.size() && actions[ai].window <= w; ++ai) {
        const control::ControlAction& a = actions[ai];
        if (a.kind == control::ActionKind::kShaperRate) rate = a.value;
        else if (a.kind == control::ActionKind::kShaperBurst) burst = a.value;
        else if (a.kind == control::ActionKind::kShaperMaxDefers)
          max_defers = static_cast<std::size_t>(a.value);
      }
      scheduler.retune(rate, burst, max_defers);
      // Multiply, don't accumulate: the live ingest loop computes each
      // boundary as (window + 1) * window_s, and the verifier must hit
      // bit-identical boundary times.
      next_boundary = static_cast<double>(closing + 1) * window_s;
    }
  };

  for (const IngestRecord& rec : recorded) {
    cross_boundaries(rec.arrival_s);
    IngestFrame f;
    f.kind = rec.kind;
    f.session_id = rec.session_id;
    f.round = rec.round;
    f.t_s = rec.arrival_s;
    scheduler.on_frame(std::move(f), noop);
  }
  scheduler.finish(noop);
  return schedule_mismatches(recorded, scheduler.schedule());
}

}  // namespace uwp::fleet
