// The serving front-end: fleet::Server consumes a stream of wire-encoded
// ingest frames from a Transport and runs them through the same warm-pipeline
// session machinery FleetService drives synchronously.
//
//   producers --frames--> Transport --> ingest loop --> IngestScheduler
//                                           |                 |
//                                           |          (admit / shed / defer
//                                           |           on the virtual clock)
//                                           v                 v
//                                  per-worker bounded     ingest schedule
//                                  dispatch queues        (IngestRecord[])
//                                           |
//                                      worker threads
//                               (ShardArena + RoundPipeline,
//                                session solver rng streams)
//
// Concurrency is real — bounded queues, blocking backpressure, worker
// threads — but none of it is allowed to influence results:
//   * admission decisions run on the frames' virtual clock inside the single
//     ingest loop (fleet/shaper.hpp), so they are a pure function of the
//     ingest schedule and the options;
//   * sessions map to workers by id, each session's solver rng stream is
//     derived from (master_seed, id) exactly as in the synchronous service,
//     and queues block instead of dropping;
//   * a shed round executes as a tracker coast, which the recorder captures
//     like any device-side dropout, so a served run's trace replays through
//     fleet::Replayer unchanged.
// Net effect: ServerResult.fleet is bit-identical for any worker count, and
// with shaping off it is bit-identical to FleetService::run on the same
// (workload, master_seed).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "fleet/service.hpp"
#include "fleet/shaper.hpp"
#include "fleet/transport.hpp"

namespace uwp::control {
class ControlEngine;
}

namespace uwp::fleet {

// --- bounded dispatch queue -------------------------------------------------

// Single-producer (the ingest loop) bounded blocking queue feeding one
// worker. Blocking push is the dispatch-level backpressure; items are never
// dropped, so queue timing cannot change results.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  void push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_; });
    items_.push_back(std::move(item));
    not_empty_.notify_one();
  }

  // False when the queue is closed and drained.
  bool pop(T& item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return true;
  }

  void close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
  }

  // Instantaneous occupancy (telemetry sampling; inherently racy-by-time,
  // never part of any determinism contract).
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

// --- server -----------------------------------------------------------------

struct ServerOptions {
  // Must match the seed the producers derived their measurement streams
  // from; the server re-derives only the per-session solver streams.
  std::uint64_t master_seed = 0x75770517u;
  // Worker threads executing admitted rounds (0 = hardware concurrency).
  // Never part of the determinism contract.
  std::size_t workers = 1;
  // Per-worker dispatch queue depth (backpressure bound, not a droppable
  // buffer).
  std::size_t queue_depth = 64;
  ShaperOptions shaping;
  bool measure_latency = false;
};

// Serving-side counters. Everything except frames_received/workers_used is a
// deterministic function of the ingest schedule.
struct ServerStats {
  ShaperStats shaper;
  double peak_occupancy = 0.0;
  // Recorded-vs-recomputed verifier (verify_ingest_schedule) run on the
  // schedule this serve produced: nonzero would mean a decision depended on
  // something other than the schedule's deterministic inputs.
  std::size_t schedule_mismatches = 0;
  std::size_t frames_received = 0;
  std::size_t workers_used = 0;
};

struct ServerResult {
  FleetResult fleet;
  ServerStats stats;
  // The full admit/shed/defer record, in arrival order.
  std::vector<IngestRecord> schedule;
  std::uint64_t schedule_digest = 0;
};

class Server {
 public:
  // Workload must be indexed by session id (workload[i].session_id == i),
  // as produced by sim::make_workload; it defines each session's pipeline
  // configuration and scene, exactly as for FleetService.
  Server(const ServerOptions& opts, std::vector<sim::GroupScenario> workload);

  // Run one serve cycle: consume frames until the transport drains, resolve
  // every deferred decision, join the workers. Blocks the calling thread
  // (it is the ingest loop). `recorder`, when set, captures the served
  // run's trace in the standard fleet trace format — replayable through
  // fleet::Replayer. `telemetry`, when set and enabled, is opened with
  // workers + 1 streams: stream 0 is the ingest loop (shaper verdicts on
  // the virtual clock, dispatch-queue depth samples), streams 1..workers
  // the worker loops (frame counters keyed by each frame's virtual decision
  // time, stage spans) — so the counters section is invariant to the worker
  // count. `engine`, when set (requires enabled telemetry — throws
  // std::invalid_argument otherwise), gets stream workers + 1 and runs the
  // control loop: at every telemetry-window boundary of the virtual clock
  // the ingest loop flushes due retries, quiesces the workers (a
  // dispatched-vs-processed barrier — the happens-before edge for the
  // closed window's counter pages), folds the window into the engine,
  // retunes the shaper in place, and broadcasts the knob bundle to every
  // worker queue. Decisions depend only on the virtual clock, so the
  // ControlLog is worker-count invariant. Throws WireError on malformed
  // frames or unknown session ids (the transport is closed first so
  // producers unblock).
  ServerResult serve(Transport& transport, SessionRecorder* recorder = nullptr,
                     telemetry::Collector* telemetry = nullptr,
                     control::ControlEngine* engine = nullptr);

  const ServerOptions& options() const { return opts_; }

 private:
  ServerOptions opts_;
  std::vector<sim::GroupScenario> workload_;
};

// --- workload feeder --------------------------------------------------------

struct FeedOptions {
  // Virtual seconds between scheduler ticks: frame t_s = tick *
  // tick_period_s, the clock every shaping decision runs on.
  double tick_period_s = 1.0;
};

// Drive a generated workload through a Transport the way FleetService would
// have run it: sessions admit at their admit tick and emit one event per
// tick (a measurement frame, or a coast frame on a device-side dropout draw)
// until their lifetime is exhausted, then say kBye. Events come from the
// same MeasurementFeed (and therefore the same per-session measurement rng
// streams) the synchronous service consumes, which is what makes an
// unshaped served run bit-identical to FleetService::run. Closes the
// transport when the workload is exhausted; returns frames sent.
std::size_t feed_workload(Transport& transport,
                          const std::vector<sim::GroupScenario>& workload,
                          std::uint64_t master_seed, const FeedOptions& opts = {});

}  // namespace uwp::fleet
