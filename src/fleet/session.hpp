// One serving session: the full lifecycle (admit -> rounds -> coast ->
// evict) of a single positioning group inside the fleet, backed by a warm
// pipeline::RoundPipeline leased from its shard's arena and one of the
// pipeline front-ends (the calibrated fast closed form for most groups, a
// full packet-level des::DesSessionSource for the DES slice).
//
// Determinism contract (the fleet analog of sim::SweepRunner's): a session
// consumes exactly two private rng streams derived from
// (master_seed, session_id) —
//   * the measurement stream (motion-independent sensor/arrival/vote noise
//     and dropout draws), and
//   * the solver stream (localizer restarts),
// so its results never depend on which shard ran it, on the shard count, or
// on what its arena-shared pipeline computed for a previous tenant. The
// split is what makes record/replay exact: a replayed session skips the
// measurement stream entirely (measurements come from the trace as bytes)
// and re-derives only the solver stream.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "control/actions.hpp"
#include "des/mobility.hpp"
#include "fleet/wire.hpp"
#include "pipeline/batch_plane.hpp"
#include "pipeline/closed_form.hpp"
#include "pipeline/round_pipeline.hpp"
#include "sim/fleet_workload.hpp"
#include "util/stats.hpp"

namespace uwp::telemetry {
class ShardStream;
}

namespace uwp::fleet {

class SessionRecorder;  // recorder.hpp

// --- deterministic stream derivation ---------------------------------------

inline constexpr std::uint64_t kMeasurementStream = 0x6d656173u;  // "meas"
inline constexpr std::uint64_t kSolverStream = 0x736f6c76u;       // "solv"

// Seed of one session stream: splitmix64 over (master_seed xor stream tag,
// session_id), the same finalizer SweepRunner uses for trial streams.
std::uint64_t session_stream_seed(std::uint64_t master_seed, std::uint64_t session_id,
                                  std::uint64_t stream);

// --- metrics ----------------------------------------------------------------

inline constexpr std::uint64_t kFnvOffsetBasis = 14695981039346656037ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

// FNV-1a over the 8 bytes of `v`, little-endian. The fleet's bit-identity
// checks hash every round output through this.
void fnv_mix(std::uint64_t& h, std::uint64_t v);
void fnv_mix(std::uint64_t& h, double v);

// Per-session outcome record. `digest` folds every event (round or coast)
// in order — localized flags, error vectors, stress — so two runs agree on
// a session iff their digests (and sample vectors) agree bit for bit.
struct SessionMetrics {
  std::uint64_t session_id = 0;
  sim::GroupScenarioKind kind = sim::GroupScenarioKind::kStatic;
  std::size_t rounds = 0;
  std::size_t localized = 0;
  std::size_t coasts = 0;
  // Finite per-device horizontal errors in round order.
  std::vector<double> errors;
  double error_sum = 0.0;
  std::uint64_t digest = kFnvOffsetBasis;

  void note_coast();
  void note_round(const pipeline::RoundOutput& out);
  double mean_error() const {
    return errors.empty() ? 0.0 : error_sum / static_cast<double>(errors.size());
  }
  bool bit_equal(const SessionMetrics& o) const;
};

// Fleet-level aggregate, sessions in id order (so it is bit-identical for
// any shard count by construction). Latency/wall fields are filled by the
// service and are the only run-dependent parts.
struct FleetResult {
  std::vector<SessionMetrics> sessions;
  std::size_t rounds = 0;
  std::size_t localized = 0;
  std::size_t coasts = 0;
  std::vector<double> errors;  // flattened in session order
  Summary summary;
  std::uint64_t fleet_digest = kFnvOffsetBasis;  // FNV over session digests
  // Wall-clock measurements (not part of any determinism contract).
  std::vector<double> round_latency_s;
  double wall_seconds = 0.0;
  std::size_t shards_used = 0;
};

// Fold per-session metrics into the aggregate (deterministic part only).
FleetResult finalize_fleet_result(std::vector<SessionMetrics> sessions);

// --- arena ------------------------------------------------------------------

// One leased runtime slot: a pipeline plus the measurement buffer it churns.
// `arena_reuses` counts free-list round trips (the arena's LFU key).
struct SessionRuntime {
  pipeline::RoundPipeline pipe;
  pipeline::RoundMeasurement meas;
  std::uint64_t arena_reuses = 0;

  explicit SessionRuntime(const pipeline::PipelineOptions& opts) : pipe(opts) {}
};

// Per-shard free list of SessionRuntimes keyed by group size: an evicted
// session's pipeline is rebound to the next admitted group of the same size
// instead of reallocated, so steady-state churn performs near-zero heap
// allocation inside the solver stack. Single-threaded by construction (one
// arena per shard, shards never share sessions).
//
// The free lists are the control plane's cache: set_controls() switches the
// replacement policy (LRU exact-LIFO, the historical default; LFU
// most-reused-first; cost-aware near-size rebinds) and caps per-size
// retention. Every knob is result-neutral — a leased pipeline is rebound to
// the requested options either way, so FleetResult cannot tell policies
// apart; only reuse rates and wall-clock change.
class ShardArena {
 public:
  std::unique_ptr<SessionRuntime> lease(const pipeline::PipelineOptions& opts);
  void release(std::unique_ptr<SessionRuntime> rt);

  std::size_t leases() const { return leases_; }
  std::size_t reuses() const { return reuses_; }

  // Apply a control-plane knob bundle: cache policy, per-size retention
  // (trimming oversized free lists immediately, oldest first), and the
  // search_threads applied to every subsequently leased pipeline.
  void set_controls(const control::ShardControls& controls);
  const control::ShardControls& controls() const { return controls_; }

  // Per-group-size free-list accounting (hits/misses/summed |size delta|
  // paid on near-size rebinds), for tests and offline tuning.
  struct SizeStats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t rebind_cost = 0;
  };
  const std::vector<SizeStats>& size_stats() const { return stats_by_size_; }

  // Attach the owning shard's telemetry stream (nullptr = off). lease()
  // then counts every lease (deterministic: leases == admissions) and
  // samples free-list hits/misses and rebind costs (run-varying: reuse
  // depends on the shard's own eviction interleaving, so it stays out of
  // the counters plane).
  void set_telemetry(telemetry::ShardStream* stream) { telemetry_ = stream; }

 private:
  // One retained runtime: `seq` orders releases (LRU evicts the smallest,
  // LFU tie-breaks toward the largest), `reuses` counts free-list round
  // trips (the LFU key).
  struct FreeSlot {
    std::unique_ptr<SessionRuntime> rt;
    std::uint64_t seq = 0;
    std::uint64_t reuses = 0;
  };

  std::unique_ptr<SessionRuntime> take(std::size_t size, std::size_t slot);
  SizeStats& stats_for(std::size_t size);

  // Group sizes are tiny integers; a flat per-size free list beats a map.
  std::vector<std::vector<FreeSlot>> free_by_size_;
  std::vector<SizeStats> stats_by_size_;
  control::ShardControls controls_;
  std::uint64_t next_seq_ = 0;
  std::size_t leases_ = 0;
  std::size_t reuses_ = 0;
  telemetry::ShardStream* telemetry_ = nullptr;
};

// The pipeline configuration a scenario's sessions run with (shared by the
// live service and the trace replayer, which must agree exactly).
pipeline::PipelineOptions pipeline_options_for(const sim::GroupScenario& sc);

// --- measurement feed -------------------------------------------------------

// The client side of a session: the deterministic event stream its devices
// produce — dropout draws, closed-form motion, front-end sampling — with no
// serving-side state attached. The live FleetService couples producer and
// consumer in-process (Session owns a feed); the ingest server's workload
// feeder runs the same feed on the producer side of a Transport. Both paths
// consume the identical measurement rng stream, so a served fleet is
// bit-identical to the synchronous one on the same (workload, master_seed).
class MeasurementFeed {
 public:
  MeasurementFeed(const sim::GroupScenario& scenario, std::uint64_t master_seed);

  // Build the front-end (admit time) / drop it (evict time). The rng stream
  // is seeded at construction; open/close only manage front-end memory so a
  // large fleet holds models only for its live sessions.
  void open();
  void close();

  enum class Event : std::uint8_t { kCoast, kMeasurement };

  // dt the pipeline expects for the *next* event (0.0 for the first).
  double next_dt_s() const {
    return events_done_ == 0 ? 0.0 : sc_->round_period_s;
  }
  // Produce the session's next event. For kMeasurement `out` holds the
  // sampled round; for a jammed dropout round it is untouched. Requires
  // open() and !exhausted().
  Event next(pipeline::RoundMeasurement& out);

  std::size_t events_done() const { return events_done_; }
  bool exhausted() const { return events_done_ >= sc_->lifetime_rounds; }
  const sim::GroupScenario& scenario() const { return *sc_; }

 private:
  const sim::GroupScenario* sc_;
  std::size_t events_done_ = 0;
  uwp::Rng rng_;  // the session's private measurement stream
  std::unique_ptr<pipeline::MeasurementModel> model_;
  pipeline::ClosedFormModel* closed_form_ = nullptr;  // owned via model_
  std::shared_ptr<const des::MobilityModel> mobility_;  // closed-form motion
};

// --- session ----------------------------------------------------------------

enum class SessionState : std::uint8_t { kPending, kActive, kEvicted };

class Session {
 public:
  Session(const sim::GroupScenario& scenario, std::uint64_t master_seed);

  SessionState state() const { return state_; }
  const SessionMetrics& metrics() const { return metrics_; }
  SessionMetrics take_metrics() { return std::move(metrics_); }

  // Advance one scheduler tick: admit at the scenario's admit tick (leasing
  // a runtime from `arena`), then run one round — or coast through a jammed
  // one — per tick until the scheduled lifetime is exhausted, then evict
  // (returning the runtime to `arena`). `latencies`, when set, receives the
  // wall-clock of each run_round call; `recorder`, when set, captures the
  // session's trace; `telemetry`, when set, receives the admit/coast/evict
  // counters and is bound into the pipeline for stage spans (the caller has
  // already set its virtual time to this tick).
  void tick(std::size_t tick, ShardArena& arena, SessionRecorder* recorder,
            std::vector<double>* latencies,
            telemetry::ShardStream* telemetry = nullptr);

  // Batched tick, split in two so a shard can gather every session's round
  // into one pipeline::BatchPlane per tick. begin_tick handles the
  // non-round half of tick() — admission, coast, the recorder's
  // pre-quantization measurement capture — and enqueues the round onto
  // `plane` instead of running it; it returns true iff a round was
  // enqueued. After plane.execute(), call finish_tick with this session's
  // slot to fold in the outputs and evict exactly as tick() would have.
  // begin_tick(t) + execute + finish_tick is bit-identical to tick(t):
  // stages only touch this session's pipeline/rng, so metrics, digests,
  // traces and counters cannot tell the two schedules apart.
  bool begin_tick(std::size_t tick, ShardArena& arena, SessionRecorder* recorder,
                  pipeline::BatchPlane& plane,
                  telemetry::ShardStream* telemetry = nullptr);
  void finish_tick(const pipeline::BatchSlot& slot, ShardArena& arena,
                   SessionRecorder* recorder, std::vector<double>* latencies,
                   telemetry::ShardStream* telemetry = nullptr);

  // Apply the control plane's result-neutral pipeline knobs to a live
  // session (no-op unless active). Called at control-window boundaries.
  void apply_controls(const control::ShardControls& controls);

 private:
  void admit(ShardArena& arena, SessionRecorder* recorder,
             telemetry::ShardStream* telemetry);
  void run_event(ShardArena& arena, SessionRecorder* recorder,
                 std::vector<double>* latencies,
                 telemetry::ShardStream* telemetry);
  void record_round(const pipeline::RoundOutput& out, std::uint32_t round_index,
                    SessionRecorder* recorder);
  void maybe_evict(ShardArena& arena, SessionRecorder* recorder,
                   telemetry::ShardStream* telemetry);

  const sim::GroupScenario* sc_;
  SessionState state_ = SessionState::kPending;
  MeasurementFeed feed_;
  uwp::Rng solve_rng_;
  std::unique_ptr<SessionRuntime> rt_;
  SessionMetrics metrics_;
  RoundRecord record_scratch_;
};

}  // namespace uwp::fleet
