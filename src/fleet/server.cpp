#include "fleet/server.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>

#include "control/engine.hpp"
#include "fleet/recorder.hpp"
#include "telemetry/collector.hpp"
#include "util/thread_pool.hpp"

namespace uwp::fleet {

namespace {

// One admitted-or-shed frame on its way to a worker — or, when `control` is
// set, a knob-bundle broadcast from the ingest loop's control boundary (the
// frame fields are unused then).
struct WorkItem {
  IngestFrame frame;
  bool shed = false;
  double enq_ts = 0.0;   // trace clock at enqueue (0 when not tracing)
  double decide_s = 0.0;  // virtual time of the shaper's final verdict
  std::shared_ptr<const control::ShardControls> control;
};

// A session's serving-side state, owned by exactly one worker (sessions map
// to workers by id), so none of it needs locks.
struct WorkerSession {
  std::unique_ptr<SessionRuntime> rt;
  uwp::Rng solve_rng{0};
  SessionMetrics metrics;
  RoundRecord scratch;
  bool active = false;
};

}  // namespace

Server::Server(const ServerOptions& opts, std::vector<sim::GroupScenario> workload)
    : opts_(opts), workload_(std::move(workload)) {
  for (std::size_t i = 0; i < workload_.size(); ++i) {
    if (workload_[i].session_id != i)
      throw std::invalid_argument("Server: workload must be indexed by session id");
    if (workload_[i].lifetime_rounds < 1)
      throw std::invalid_argument("Server: session lifetime must be >= 1 round");
  }
}

ServerResult Server::serve(Transport& transport, SessionRecorder* recorder,
                           telemetry::Collector* telemetry,
                           control::ControlEngine* engine) {
  const auto wall0 = std::chrono::steady_clock::now();
  const std::size_t workers = ThreadPool::resolve_thread_count(opts_.workers);

  // Stream 0 is the ingest loop, streams 1..workers the worker loops, and
  // (with control on) stream workers + 1 the engine.
  telemetry::Collector* const col =
      telemetry != nullptr && telemetry->enabled() ? telemetry : nullptr;
  if (engine != nullptr && col == nullptr)
    throw std::invalid_argument("Server: control requires enabled telemetry");
  if (col != nullptr) col->open(workers + 1 + (engine != nullptr ? 1 : 0));
  // The boundary length in virtual seconds is the collector's window (the
  // telemetry factory already scaled it by the tick period for serve mode).
  const double window_s = engine != nullptr ? col->options().window : 0.0;
  if (engine != nullptr && !(window_s > 0.0))
    throw std::invalid_argument("Server: control requires a positive telemetry window");
  if (engine != nullptr)
    engine->bind_stream(&col->stream(workers + 1), window_s);

  std::vector<std::unique_ptr<BoundedQueue<WorkItem>>> queues;
  queues.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w)
    queues.push_back(std::make_unique<BoundedQueue<WorkItem>>(opts_.queue_depth));

  // Per-worker outputs, merged in worker order after the join. `processed`
  // counters pair with the ingest loop's private dispatched counts to form
  // the boundary barrier: a worker publishes each consumed item with a
  // release increment, and the ingest loop's acquire spin at a window
  // boundary is the happens-before edge that makes the closed window's
  // counter pages safe to merge.
  std::vector<std::vector<std::unique_ptr<WorkerSession>>> states(workers);
  std::vector<std::vector<double>> latencies(workers);
  std::vector<std::exception_ptr> errors(workers);
  std::vector<std::atomic<std::uint64_t>> processed(workers);

  auto worker_body = [&](std::size_t w) {
    std::vector<std::unique_ptr<WorkerSession>>& mine = states[w];
    mine.resize(workload_.size());
    ShardArena arena;
    telemetry::ShardStream* const tel = col != nullptr ? &col->stream(1 + w) : nullptr;
    arena.set_telemetry(tel);
    std::vector<double>* lat = opts_.measure_latency ? &latencies[w] : nullptr;

    const auto process = [&](WorkItem& item) {
      if (item.control != nullptr) {
        // Knob broadcast from a control boundary: retune the arena and the
        // live pipelines. All of these are result-neutral.
        arena.set_controls(*item.control);
        for (std::unique_ptr<WorkerSession>& slot : mine)
          if (slot != nullptr && slot->active && slot->rt != nullptr)
            slot->rt->pipe.set_search_threads(item.control->search_threads);
        return;
      }
      const std::uint64_t id = item.frame.session_id;
      const sim::GroupScenario& sc = workload_[static_cast<std::size_t>(id)];
      std::unique_ptr<WorkerSession>& slot = mine[static_cast<std::size_t>(id)];
      if (slot == nullptr) {
        slot = std::make_unique<WorkerSession>();
        slot->solve_rng =
            uwp::Rng(session_stream_seed(opts_.master_seed, id, kSolverStream));
        slot->metrics.session_id = id;
        slot->metrics.kind = sc.kind;
      }
      WorkerSession& s = *slot;
      // Counter windows key off the frame's virtual decision time (its own
      // t_s unless the shaper deferred it), which is what makes the
      // counters section worker-count invariant — and what guarantees a
      // frame's counters land in the window its verdict belongs to, so the
      // boundary barrier sees every closed window complete.
      if (tel != nullptr) tel->set_time(item.decide_s);

      if (item.frame.kind == IngestKind::kBye) {
        if (s.active) {
          arena.release(std::move(s.rt));
          s.active = false;
          if (recorder != nullptr) recorder->on_evict(id);
          if (tel != nullptr) {
            tel->count(telemetry::Counter::kEvicts);
            tel->count(telemetry::Counter::kEvictDevices,
                       sc.scene.protocol.num_devices);
          }
        }
        return;
      }

      if (!s.active) {
        s.rt = arena.lease(pipeline_options_for(sc));
        s.rt->pipe.set_telemetry(tel);
        s.active = true;
        if (recorder != nullptr) recorder->on_admit(sc);
        if (tel != nullptr) {
          tel->count(telemetry::Counter::kAdmits);
          tel->count(telemetry::Counter::kAdmitDevices,
                     sc.scene.protocol.num_devices);
        }
      }

      if (item.frame.kind == IngestKind::kCoast || item.shed) {
        // Device-side dropout and server-side shed land in the same
        // place: the tracker coasts, and the trace records a coast.
        s.rt->pipe.coast(item.frame.dt_s);
        s.metrics.note_coast();
        if (recorder != nullptr) recorder->on_coast(id, item.frame.dt_s);
        if (tel != nullptr) tel->count(telemetry::Counter::kCoasts);
        return;
      }

      if (tel != nullptr && tel->trace_enabled()) {
        // Close the causal chain: queue residency (enqueue -> this pop)
        // under the ingest span, then arm the pipeline for the round.
        const std::uint64_t trace_id =
            telemetry::make_trace_id(id, item.frame.round);
        tel->trace_span(trace_id, telemetry::TraceOp::kQueue,
                        telemetry::TraceOp::kIngest, item.enq_ts);
        s.rt->pipe.set_trace(trace_id);
      }

      std::size_t pos = 0;
      decode_measurement(item.frame.payload, pos, s.rt->meas);
      // A frame is only internally consistent; the pipeline indexes by
      // the scenario's device count, so a mismatched frame must be
      // rejected here, not read out of bounds downstream.
      if (s.rt->meas.protocol.timestamps.rows() != sc.scene.protocol.num_devices)
        throw WireError("ingest: measurement device count != session's");
      if (recorder != nullptr)
        recorder->on_measurement(id, item.frame.round, item.frame.dt_s, s.rt->meas);

      const auto t0 = std::chrono::steady_clock::now();
      const pipeline::RoundOutput& out =
          s.rt->pipe.run_round(s.rt->meas, s.solve_rng, item.frame.dt_s);
      if (lat != nullptr)
        lat->push_back(
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count());

      s.metrics.note_round(out);
      if (recorder != nullptr) {
        s.scratch.round = item.frame.round;
        s.scratch.localized = out.localized;
        s.scratch.normalized_stress =
            out.localized ? out.localization.normalized_stress : 0.0;
        s.scratch.error_2d = out.error_2d;
        s.scratch.tracked_error_2d = out.tracked_error_2d;
        recorder->on_round_result(id, s.scratch);
      }
    };

    WorkItem item;
    while (queues[w]->pop(item)) {
      if (errors[w] == nullptr) {  // failed: drain without processing
        try {
          process(item);
        } catch (...) {
          errors[w] = std::current_exception();
        }
      }
      // Publish the consumption — after every side effect — so the ingest
      // loop's boundary barrier can acquire the counter pages this item
      // touched. Counted even on the drain path to keep the barrier live.
      processed[w].fetch_add(1, std::memory_order_release);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) threads.emplace_back(worker_body, w);

  telemetry::ShardStream* const ingest_tel = col != nullptr ? &col->stream(0) : nullptr;
  IngestScheduler scheduler(opts_.shaping, workload_.size());
  scheduler.set_telemetry(ingest_tel);
  // Ingest-thread private: items pushed per queue, paired with `processed`
  // at boundary barriers.
  std::vector<std::uint64_t> dispatched(workers, 0);
  const IngestScheduler::Dispatch dispatch = [&](IngestFrame&& f, bool shed,
                                                 double decide_s) {
    const std::size_t w = static_cast<std::size_t>(f.session_id) % workers;
    if (ingest_tel != nullptr)
      ingest_tel->sample(telemetry::Sample::kQueueDepth,
                         static_cast<double>(queues[w]->size()));
    WorkItem item;
    item.frame = std::move(f);
    item.shed = shed;
    item.decide_s = decide_s;
    if (ingest_tel != nullptr && ingest_tel->trace_enabled())
      item.enq_ts = ingest_tel->trace_now();
    queues[w]->push(std::move(item));
    ++dispatched[w];
  };

  // The serve-side control loop. Before feeding an arrival at or past a
  // window boundary: resolve every retry due by the boundary (so the
  // closing window's verdicts are final), quiesce the workers, fold the
  // window into the engine, retune the shaper in place, and broadcast the
  // new knob bundle to every worker queue. Every step keys off the frames'
  // virtual clock, so the ControlLog is a pure function of the ingest
  // schedule — byte-identical at any worker count. The boundary times are
  // computed as (window + 1) * window_s (multiplied, never accumulated) so
  // verify_ingest_schedule's re-run hits bit-identical boundaries.
  std::uint64_t closing = 0;  // window index the next boundary closes
  double next_boundary = window_s;
  const auto cross_boundaries = [&](double arrival_s) {
    while (arrival_s >= next_boundary) {
      scheduler.flush_until(next_boundary, dispatch);
      for (std::size_t w = 0; w < workers; ++w)
        while (processed[w].load(std::memory_order_acquire) < dispatched[w])
          std::this_thread::yield();
      const std::uint64_t w_closed = closing++;
      engine->observe_window(w_closed, col->window_snapshot(w_closed));
      const control::ShardControls& c = engine->controls();
      scheduler.retune(c.shaper_rate, c.shaper_burst, c.shaper_max_defers);
      auto bundle = std::make_shared<const control::ShardControls>(c);
      for (std::size_t w = 0; w < workers; ++w) {
        WorkItem item;
        item.control = bundle;
        queues[w]->push(std::move(item));
        ++dispatched[w];
      }
      next_boundary = static_cast<double>(closing + 1) * window_s;
    }
  };

  ServerResult out;
  std::exception_ptr ingest_error;
  try {
    std::vector<std::uint8_t> bytes;
    IngestFrame frame;
    const bool tracing =
        ingest_tel != nullptr && ingest_tel->trace_enabled();
    while (transport.recv(bytes)) {
      ++out.stats.frames_received;
      const double trace_ts0 = tracing ? ingest_tel->trace_now() : 0.0;
      telemetry::SpanTimer span(ingest_tel, telemetry::Stage::kIngest);
      decode_ingest_frame(bytes, frame);
      if (engine != nullptr) cross_boundaries(frame.t_s);
      // Trace root of the serve-side chain: one kIngest span per
      // measurement frame covering decode + the shaper's verdict, tagged
      // before on_frame consumes the frame.
      const std::uint64_t trace_id =
          tracing && frame.kind == IngestKind::kMeasurement
              ? telemetry::make_trace_id(frame.session_id, frame.round)
              : 0;
      const double frame_t_s = frame.t_s;
      scheduler.on_frame(std::move(frame), dispatch);
      if (trace_id != 0) {
        ingest_tel->set_time(frame_t_s);
        ingest_tel->trace_span(trace_id, telemetry::TraceOp::kIngest,
                               telemetry::TraceOp::kNone, trace_ts0);
      }
      frame.clear();
    }
    scheduler.finish(dispatch);
  } catch (...) {
    // Unblock producers stuck in send() and let the workers drain.
    ingest_error = std::current_exception();
    transport.close();
  }

  for (auto& q : queues) q->close();
  for (std::thread& t : threads) t.join();

  if (ingest_error != nullptr) std::rethrow_exception(ingest_error);
  for (const std::exception_ptr& e : errors)
    if (e != nullptr) std::rethrow_exception(e);

  // Observe the trailing windows (the join above is the barrier). The window
  // count is derived from the schedule's last decide time — a pure function
  // of the ingest schedule, never of page-count bookkeeping, so
  // ControlLog::windows_observed is worker-count invariant.
  if (engine != nullptr && !scheduler.schedule().empty()) {
    double last_decide = 0.0;
    for (const IngestRecord& r : scheduler.schedule())
      last_decide = std::max(last_decide, r.decide_s);
    const std::uint64_t n_windows =
        static_cast<std::uint64_t>(last_decide / window_s) + 1;
    while (closing < n_windows) {
      engine->observe_window(closing, col->window_snapshot(closing));
      ++closing;
    }
  }

  // Merge per-session metrics in id order: bit-identical for any worker
  // count by construction.
  std::vector<SessionMetrics> metrics(workload_.size());
  for (std::size_t id = 0; id < workload_.size(); ++id) {
    std::unique_ptr<WorkerSession>& slot = states[id % workers][id];
    if (slot != nullptr) {
      metrics[id] = std::move(slot->metrics);
    } else {
      metrics[id].session_id = id;
      metrics[id].kind = workload_[id].kind;
    }
  }

  out.fleet = finalize_fleet_result(std::move(metrics));
  out.fleet.shards_used = workers;
  for (std::size_t w = 0; w < workers; ++w)
    out.fleet.round_latency_s.insert(out.fleet.round_latency_s.end(),
                                     latencies[w].begin(), latencies[w].end());
  out.fleet.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0).count();

  out.stats.shaper = scheduler.stats();
  out.stats.peak_occupancy = scheduler.peak_occupancy();
  out.stats.workers_used = workers;
  out.schedule = scheduler.take_schedule();
  out.schedule_digest = ingest_schedule_digest(out.schedule);
  out.stats.schedule_mismatches =
      engine != nullptr
          ? verify_ingest_schedule(out.schedule, opts_.shaping, workload_.size(),
                                   engine->log().actions, window_s)
          : verify_ingest_schedule(out.schedule, opts_.shaping, workload_.size());
  return out;
}

// --- feed_workload ----------------------------------------------------------

std::size_t feed_workload(Transport& transport,
                          const std::vector<sim::GroupScenario>& workload,
                          std::uint64_t master_seed, const FeedOptions& opts) {
  std::vector<MeasurementFeed> feeds;
  feeds.reserve(workload.size());
  for (const sim::GroupScenario& sc : workload) feeds.emplace_back(sc, master_seed);

  std::vector<bool> open(workload.size(), false);
  std::vector<std::uint32_t> rounds(workload.size(), 0);
  std::size_t live = workload.size();
  std::size_t sent = 0;

  pipeline::RoundMeasurement meas;
  IngestFrame frame;
  std::vector<std::uint8_t> bytes;

  // Mirror the FleetService scheduler: one event per live session per tick,
  // sessions in id order within a tick, admission gated on admit_tick. This
  // ordering (with t_s = tick * tick_period_s) IS the ingest schedule every
  // shaping decision is a function of.
  for (std::size_t tick = 0; live > 0; ++tick) {
    const double t_s = static_cast<double>(tick) * opts.tick_period_s;
    for (std::size_t id = 0; id < workload.size(); ++id) {
      MeasurementFeed& feed = feeds[id];
      if (feed.exhausted()) continue;
      if (!open[id]) {
        if (tick < workload[id].admit_tick) continue;
        feed.open();
        open[id] = true;
      }

      frame.clear();
      frame.session_id = id;
      frame.t_s = t_s;
      frame.dt_s = feed.next_dt_s();
      frame.round = rounds[id];
      if (feed.next(meas) == MeasurementFeed::Event::kMeasurement) {
        frame.kind = IngestKind::kMeasurement;
        encode_measurement(meas, frame.payload);
        ++rounds[id];
      } else {
        frame.kind = IngestKind::kCoast;
      }
      encode_ingest_frame(frame, bytes);
      if (!transport.send(std::move(bytes))) return sent;
      bytes = {};
      ++sent;

      if (feed.exhausted()) {
        feed.close();
        frame.clear();
        frame.kind = IngestKind::kBye;
        frame.session_id = id;
        frame.round = rounds[id];
        frame.t_s = t_s;
        encode_ingest_frame(frame, bytes);
        if (!transport.send(std::move(bytes))) return sent;
        bytes = {};
        ++sent;
        --live;
      }
    }
  }

  transport.close();
  return sent;
}

}  // namespace uwp::fleet
