#include "fleet/service.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "fleet/recorder.hpp"
#include "telemetry/collector.hpp"
#include "util/thread_pool.hpp"

namespace uwp::fleet {

FleetService::FleetService(FleetOptions opts, std::vector<sim::GroupScenario> workload)
    : opts_(opts), workload_(std::move(workload)) {
  for (std::size_t i = 0; i < workload_.size(); ++i) {
    if (workload_[i].session_id != i)
      throw std::invalid_argument("FleetService: workload session_id != index");
    // A zero-lifetime session would either run one round anyway (eviction is
    // checked after the event) or never be admitted, depending on unrelated
    // sessions' timelines — reject it instead of picking either behavior.
    if (workload_[i].lifetime_rounds == 0)
      throw std::invalid_argument("FleetService: lifetime_rounds must be >= 1");
  }
}

std::size_t FleetService::ticks() const {
  std::size_t t = 0;
  for (const sim::GroupScenario& sc : workload_)
    t = std::max(t, sc.admit_tick + sc.lifetime_rounds);
  return t;
}

FleetResult FleetService::run(SessionRecorder* recorder,
                              telemetry::Collector* telemetry) const {
  const std::size_t n_sessions = workload_.size();
  const std::size_t shards = ThreadPool::resolve_thread_count(opts_.shards);
  const std::size_t total_ticks = ticks();

  telemetry::Collector* const col =
      telemetry != nullptr && telemetry->enabled() ? telemetry : nullptr;
  if (col != nullptr) col->open(shards);

  std::vector<SessionMetrics> metrics(n_sessions);
  std::vector<std::vector<double>> shard_latencies(shards);
  std::vector<ShardArena> arenas(shards);

  // One shard: the sessions with id % shards == shard, run through the full
  // tick timeline in id order. Sessions are independent and the recorder's
  // per-session buffers are disjoint, so shards share nothing mutable (each
  // telemetry stream has exactly one producer: its shard).
  const auto shard_body = [&](std::size_t shard) {
    std::vector<Session> sessions;
    std::vector<std::size_t> ids;
    for (std::size_t id = shard; id < n_sessions; id += shards) ids.push_back(id);
    sessions.reserve(ids.size());
    for (const std::size_t id : ids)
      sessions.emplace_back(workload_[id], opts_.master_seed);

    telemetry::ShardStream* const tel = col != nullptr ? &col->stream(shard) : nullptr;
    arenas[shard].set_telemetry(tel);
    std::vector<double>* lat = opts_.measure_latency ? &shard_latencies[shard] : nullptr;
    pipeline::BatchPlane plane;
    std::vector<Session*> enqueued;
    for (std::size_t tick = 0; tick < total_ticks; ++tick) {
      if (tel != nullptr) tel->set_time(static_cast<double>(tick));
      if (!opts_.batch_rounds) {
        for (Session& s : sessions) s.tick(tick, arenas[shard], recorder, lat, tel);
        continue;
      }
      // Batched tick: collect every session's pending round, run them all
      // stage-sliced through the SoA plane, then fold outputs back in the
      // same session order the reference loop uses.
      plane.clear();
      enqueued.clear();
      for (Session& s : sessions)
        if (s.begin_tick(tick, arenas[shard], recorder, plane, tel))
          enqueued.push_back(&s);
      plane.execute(opts_.measure_latency);
      const std::span<const pipeline::BatchSlot> slots = plane.slots();
      for (std::size_t k = 0; k < enqueued.size(); ++k)
        enqueued[k]->finish_tick(slots[k], arenas[shard], recorder, lat, tel);
    }

    for (std::size_t k = 0; k < ids.size(); ++k)
      metrics[ids[k]] = sessions[k].take_metrics();
  };

  const auto t0 = std::chrono::steady_clock::now();
  if (shards <= 1 || n_sessions <= 1) {
    shard_body(0);
  } else {
    ThreadPool pool(shards);
    pool.parallel_for(shards, shard_body);
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  arena_stats_ = {};
  for (const ShardArena& a : arenas) {
    arena_stats_.leases += a.leases();
    arena_stats_.reuses += a.reuses();
  }

  FleetResult out = finalize_fleet_result(std::move(metrics));
  out.wall_seconds = wall;
  out.shards_used = shards;
  for (const std::vector<double>& lat : shard_latencies)
    out.round_latency_s.insert(out.round_latency_s.end(), lat.begin(), lat.end());
  return out;
}

telemetry::SloInputs make_slo_inputs(const FleetResult& result,
                                     const telemetry::TelemetryReport* report) {
  telemetry::SloInputs in;
  // One bucket per GroupScenarioKind, enum order, always present.
  constexpr sim::GroupScenarioKind kKinds[] = {
      sim::GroupScenarioKind::kStatic,       sim::GroupScenarioKind::kLawnmower,
      sim::GroupScenarioKind::kWaypoint,     sim::GroupScenarioKind::kDropoutChurn,
      sim::GroupScenarioKind::kPacketDes};
  in.kinds.resize(std::size(kKinds));
  for (std::size_t k = 0; k < std::size(kKinds); ++k)
    in.kinds[k].kind = sim::to_string(kKinds[k]);
  // Sessions arrive in id order (FleetResult's invariant), so each bucket's
  // error multiset is accumulated identically at any shard/worker count.
  for (const SessionMetrics& s : result.sessions) {
    const std::size_t k = static_cast<std::size_t>(s.kind);
    if (k >= in.kinds.size()) continue;
    telemetry::SloKindInput& bucket = in.kinds[k];
    ++bucket.sessions;
    bucket.rounds += s.rounds;
    bucket.localized += s.localized;
    bucket.coasts += s.coasts;
    bucket.errors.insert(bucket.errors.end(), s.errors.begin(), s.errors.end());
  }
  if (report != nullptr) {
    in.totals = report->totals;
    in.have_totals = true;
  }
  in.latency_s = result.round_latency_s;
  in.wall_s = result.wall_seconds;
  return in;
}

}  // namespace uwp::fleet
