#include "fleet/service.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "control/engine.hpp"
#include "fleet/recorder.hpp"
#include "telemetry/collector.hpp"
#include "util/thread_pool.hpp"

namespace uwp::fleet {

FleetService::FleetService(FleetOptions opts, std::vector<sim::GroupScenario> workload)
    : opts_(opts), workload_(std::move(workload)) {
  for (std::size_t i = 0; i < workload_.size(); ++i) {
    if (workload_[i].session_id != i)
      throw std::invalid_argument("FleetService: workload session_id != index");
    // A zero-lifetime session would either run one round anyway (eviction is
    // checked after the event) or never be admitted, depending on unrelated
    // sessions' timelines — reject it instead of picking either behavior.
    if (workload_[i].lifetime_rounds == 0)
      throw std::invalid_argument("FleetService: lifetime_rounds must be >= 1");
  }
}

std::size_t FleetService::ticks() const {
  std::size_t t = 0;
  for (const sim::GroupScenario& sc : workload_)
    t = std::max(t, sc.admit_tick + sc.lifetime_rounds);
  return t;
}

FleetResult FleetService::run(SessionRecorder* recorder,
                              telemetry::Collector* telemetry,
                              control::ControlEngine* engine) const {
  const std::size_t n_sessions = workload_.size();
  const std::size_t shards = ThreadPool::resolve_thread_count(opts_.shards);
  const std::size_t total_ticks = ticks();

  telemetry::Collector* const col =
      telemetry != nullptr && telemetry->enabled() ? telemetry : nullptr;
  if (engine != nullptr && col == nullptr)
    throw std::invalid_argument("FleetService: control requires enabled telemetry");
  // The engine gets its own stream (index == shards) so its emissions never
  // ride a shard's page and the counter plane stays per-producer.
  if (col != nullptr) col->open(shards + (engine != nullptr ? 1 : 0));
  const std::size_t window_ticks =
      engine != nullptr ? std::max<std::size_t>(1, engine->config().window_ticks)
                        : total_ticks;
  if (engine != nullptr)
    engine->bind_stream(&col->stream(shards), static_cast<double>(window_ticks));

  std::vector<SessionMetrics> metrics(n_sessions);
  std::vector<std::vector<double>> shard_latencies(shards);
  std::vector<ShardArena> arenas(shards);

  // Per-shard state persists across chunks: the control loop slices the
  // tick timeline into window-length chunks with a quiesce point between
  // them, and sessions/arenas/planes must carry over.
  struct ShardState {
    std::vector<Session> sessions;
    std::vector<std::size_t> ids;
    pipeline::BatchPlane plane;
    std::vector<Session*> enqueued;
  };
  std::vector<ShardState> states(shards);
  for (std::size_t shard = 0; shard < shards; ++shard) {
    ShardState& st = states[shard];
    for (std::size_t id = shard; id < n_sessions; id += shards) st.ids.push_back(id);
    st.sessions.reserve(st.ids.size());
    for (const std::size_t id : st.ids)
      st.sessions.emplace_back(workload_[id], opts_.master_seed);
  }

  // One shard over one tick range: the sessions with id % shards == shard,
  // in id order. Sessions are independent and the recorder's per-session
  // buffers are disjoint, so shards share nothing mutable (each telemetry
  // stream has exactly one producer: its shard). `apply` folds the engine's
  // current knob bundle in first — every fleet-side knob is result-neutral,
  // so sessions admitted mid-chunk (which run with the previous bundle
  // until the next boundary) cannot perturb FleetResult either.
  const auto run_chunk = [&](std::size_t shard, std::size_t tick_begin,
                             std::size_t tick_end, bool apply) {
    ShardState& st = states[shard];
    telemetry::ShardStream* const tel = col != nullptr ? &col->stream(shard) : nullptr;
    arenas[shard].set_telemetry(tel);
    if (apply) {
      arenas[shard].set_controls(engine->controls());
      for (Session& s : st.sessions) s.apply_controls(engine->controls());
    }
    std::vector<double>* lat = opts_.measure_latency ? &shard_latencies[shard] : nullptr;
    for (std::size_t tick = tick_begin; tick < tick_end; ++tick) {
      if (tel != nullptr) tel->set_time(static_cast<double>(tick));
      if (!opts_.batch_rounds) {
        for (Session& s : st.sessions) s.tick(tick, arenas[shard], recorder, lat, tel);
        continue;
      }
      // Batched tick: collect every session's pending round, run them all
      // stage-sliced through the SoA plane, then fold outputs back in the
      // same session order the reference loop uses.
      st.plane.clear();
      st.enqueued.clear();
      for (Session& s : st.sessions)
        if (s.begin_tick(tick, arenas[shard], recorder, st.plane, tel))
          st.enqueued.push_back(&s);
      st.plane.execute(opts_.measure_latency);
      const std::span<const pipeline::BatchSlot> slots = st.plane.slots();
      for (std::size_t k = 0; k < st.enqueued.size(); ++k)
        st.enqueued[k]->finish_tick(slots[k], arenas[shard], recorder, lat, tel);
    }
  };

  const bool parallel = shards > 1 && n_sessions > 1;
  std::unique_ptr<ThreadPool> pool;
  if (parallel) pool = std::make_unique<ThreadPool>(shards);

  const auto t0 = std::chrono::steady_clock::now();
  // Without an engine this collapses to a single full-timeline chunk — the
  // historical (and control-off) execution exactly. With one, each
  // parallel_for return is the happens-before edge that makes the closed
  // window's counter pages safe to merge.
  std::uint64_t window = 0;
  bool apply = false;
  std::size_t tick = 0;
  while (tick < total_ticks) {
    const std::size_t end =
        engine != nullptr ? std::min(total_ticks, tick + window_ticks) : total_ticks;
    if (parallel) {
      pool->parallel_for(shards, [&](std::size_t shard) {
        run_chunk(shard, tick, end, apply);
      });
    } else {
      for (std::size_t shard = 0; shard < shards; ++shard)
        run_chunk(shard, tick, end, apply);
    }
    apply = false;
    if (engine != nullptr) {
      while ((window + 1) * window_ticks <= end) {
        engine->observe_window(window, col->window_snapshot(window));
        ++window;
        apply = true;
      }
    }
    tick = end;
  }
  // Observe the final partial window, if any, so the log's window count is
  // a pure function of the workload (never of chunking arithmetic).
  if (engine != nullptr && total_ticks > 0) {
    const std::uint64_t n_windows =
        (total_ticks + window_ticks - 1) / window_ticks;
    while (window < n_windows) {
      engine->observe_window(window, col->window_snapshot(window));
      ++window;
    }
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  for (std::size_t shard = 0; shard < shards; ++shard)
    for (std::size_t k = 0; k < states[shard].ids.size(); ++k)
      metrics[states[shard].ids[k]] = states[shard].sessions[k].take_metrics();

  arena_stats_ = {};
  for (const ShardArena& a : arenas) {
    arena_stats_.leases += a.leases();
    arena_stats_.reuses += a.reuses();
    for (const ShardArena::SizeStats& s : a.size_stats()) {
      arena_stats_.free_hits += s.hits;
      arena_stats_.free_misses += s.misses;
    }
  }

  FleetResult out = finalize_fleet_result(std::move(metrics));
  out.wall_seconds = wall;
  out.shards_used = shards;
  for (const std::vector<double>& lat : shard_latencies)
    out.round_latency_s.insert(out.round_latency_s.end(), lat.begin(), lat.end());
  return out;
}

telemetry::SloInputs make_slo_inputs(const FleetResult& result,
                                     const telemetry::TelemetryReport* report) {
  telemetry::SloInputs in;
  // One bucket per GroupScenarioKind, enum order, always present.
  constexpr sim::GroupScenarioKind kKinds[] = {
      sim::GroupScenarioKind::kStatic,       sim::GroupScenarioKind::kLawnmower,
      sim::GroupScenarioKind::kWaypoint,     sim::GroupScenarioKind::kDropoutChurn,
      sim::GroupScenarioKind::kPacketDes};
  in.kinds.resize(std::size(kKinds));
  for (std::size_t k = 0; k < std::size(kKinds); ++k)
    in.kinds[k].kind = sim::to_string(kKinds[k]);
  // Sessions arrive in id order (FleetResult's invariant), so each bucket's
  // error multiset is accumulated identically at any shard/worker count.
  for (const SessionMetrics& s : result.sessions) {
    const std::size_t k = static_cast<std::size_t>(s.kind);
    if (k >= in.kinds.size()) continue;
    telemetry::SloKindInput& bucket = in.kinds[k];
    ++bucket.sessions;
    bucket.rounds += s.rounds;
    bucket.localized += s.localized;
    bucket.coasts += s.coasts;
    bucket.errors.insert(bucket.errors.end(), s.errors.begin(), s.errors.end());
  }
  if (report != nullptr) {
    in.totals = report->totals;
    in.have_totals = true;
  }
  in.latency_s = result.round_latency_s;
  in.wall_s = result.wall_seconds;
  return in;
}

}  // namespace uwp::fleet
