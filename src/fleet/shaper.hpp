// Deterministic admission control and rate shaping for the ingest path.
//
// The idiom is the ndnSIM shaper's: a token bucket gates work onto each
// queue, tokens refill at a configured rate, and the refill rate backs off
// as queue occupancy grows (occupancy feedback), so a shard that falls
// behind sheds or delays load instead of building an unbounded backlog.
// Transplanted to the fleet, with one crucial twist: every quantity runs on
// the *virtual ingest clock* carried by the frames themselves
// (IngestFrame::t_s), never on wall time, and the shaper partitions
// sessions by a fixed `ingest_shards` count that is independent of how many
// worker threads execute the admitted work. Both choices serve the same
// contract:
//
//   every admit / shed / defer decision is a pure function of the ingest
//   schedule (arrival times + session ids) and the ShaperOptions — not of
//   wall clock, worker count, or scheduling noise.
//
// That is what lets a recorded schedule be re-verified bit for bit
// (verify_ingest_schedule) and lets a served run replay exactly through
// fleet::Replayer: a shed round was executed as a tracker coast, which the
// recorder captured like any other coast.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <span>
#include <vector>

#include "control/actions.hpp"
#include "fleet/transport.hpp"

namespace uwp::telemetry {
class ShardStream;
}

namespace uwp::fleet {

enum class AdmissionPolicy : std::uint8_t {
  // Shaping off: every frame dispatches on arrival (the FleetService-
  // equivalent path; a server run in this mode is bit-identical to the
  // synchronous service on the same workload).
  kAdmitAll = 0,
  // Over-rate or queue-full measurement rounds are shed: the session's
  // tracker coasts through them, exactly like a device-side dropout.
  kShed = 1,
  // The shaper proper: held frames retry defer_delay_s later (preserving
  // per-session order), and shed only after max_defers failed attempts.
  kDefer = 2,
};
const char* to_string(AdmissionPolicy policy);

struct ShaperOptions {
  AdmissionPolicy policy = AdmissionPolicy::kAdmitAll;
  // Admission-control partitions. Fixed by configuration — NOT the worker
  // count — so decisions are invariant to how many threads execute them.
  std::size_t ingest_shards = 4;
  // Modeled per-partition queue: depth cap and deterministic service rate
  // (how fast the modeled queue drains in virtual seconds).
  std::size_t queue_depth = 32;
  double drain_rounds_per_s = 16.0;
  // Token bucket: refill rate (0 = unlimited) and bucket capacity.
  double rate_rounds_per_s = 0.0;
  double burst_rounds = 8.0;
  // Occupancy feedback: above this occupancy fraction the refill rate
  // scales by (1 - occupancy/depth), reaching zero at a full queue.
  double feedback_threshold = 0.5;
  // kDefer only: retry spacing and the attempt budget before shedding.
  double defer_delay_s = 0.25;
  std::size_t max_defers = 8;
};

enum class IngestDecision : std::uint8_t {
  kAdmit = 0,  // dispatched to a worker as a round (or a control frame)
  kShed = 1,   // dispatched as a forced tracker coast
};
const char* to_string(IngestDecision decision);

// One frame's outcome in the recorded ingest schedule, in arrival order.
struct IngestRecord {
  double arrival_s = 0.0;  // the frame's own t_s
  double decide_s = 0.0;   // virtual time of the final decision (>= arrival_s)
  std::uint64_t session_id = 0;
  std::uint32_t round = 0;
  IngestKind kind = IngestKind::kMeasurement;
  IngestDecision decision = IngestDecision::kAdmit;
  std::uint32_t defers = 0;  // failed attempts before the final decision
};

// Bit-level equality (doubles compared by bit pattern) and an FNV-1a digest
// over every field of every record — the schedule's identity for tests.
bool bit_equal(const IngestRecord& a, const IngestRecord& b);
std::uint64_t ingest_schedule_digest(std::span<const IngestRecord> schedule);

// The per-partition token/occupancy state machine. Pure virtual-time: the
// only inputs are the attempt timestamps and the option set.
class TokenBucketShaper {
 public:
  TokenBucketShaper(const ShaperOptions& opts);

  // Try to take one queue slot (and one token, when rate-limited) for
  // `partition` at virtual time `t_s`. Mutates state on success.
  bool try_admit(std::size_t partition, double t_s);

  // Control-plane retune: swap the refill rate and bucket depth mid-run,
  // clamping each partition's tokens to the new depth. Deterministic as
  // long as the caller invokes it at virtual-time-defined points (the
  // ingest loop does so at control-window boundaries).
  void retune(double rate_rounds_per_s, double burst_rounds);

  // Peak modeled occupancy seen across all partitions (deterministic).
  double peak_occupancy() const { return peak_occupancy_; }

 private:
  struct Partition {
    double tokens = 0.0;
    double occupancy = 0.0;
    double last_s = 0.0;
  };
  void advance(Partition& p, double t_s);

  ShaperOptions opts_;
  std::vector<Partition> partitions_;
  double peak_occupancy_ = 0.0;
};

// Aggregate decision counters (all deterministic; folded into tests).
struct ShaperStats {
  std::size_t frames = 0;           // every frame that entered the scheduler
  std::size_t rounds_admitted = 0;  // measurement frames dispatched as rounds
  std::size_t rounds_shed = 0;      // measurement frames dispatched as coasts
  std::size_t defer_events = 0;     // individual failed attempts (kDefer)
  std::size_t frames_deferred = 0;  // distinct frames deferred at least once
  std::size_t max_backlog = 0;      // peak per-session pending chain length
};

// Orders frames through the shaper on the virtual clock. Frames of one
// session never reorder: while a session has a deferred frame pending, its
// later frames chain behind it and are attempted in sequence when the head
// resolves. Control frames (kCoast / kBye) are never shed or deferred on
// their own, but chain like any other frame to preserve session order.
//
// Single-threaded by design (one ingest loop drives it); determinism comes
// from processing frames in the nondecreasing t_s order the feeder emits.
class IngestScheduler {
 public:
  // Dispatch: hand an admitted (shed = false) or shed (shed = true) frame
  // to execution, with the virtual time of the final decision. Called in
  // decision order; decide_s is what worker-side telemetry stamps, so a
  // frame's counters land in the window its verdict belongs to.
  using Dispatch =
      std::function<void(IngestFrame&&, bool shed, double decide_s)>;

  IngestScheduler(const ShaperOptions& opts, std::size_t sessions);

  // Feed the next arrival (frames must arrive in nondecreasing t_s order;
  // session_id must be < sessions). Throws WireError on a bad session id.
  void on_frame(IngestFrame f, const Dispatch& dispatch);

  // Resolve every retry scheduled at or before `now_s` — the control
  // plane's window-boundary hook, so every decision belonging to a closing
  // window is final before its counters are merged. Decide times derive
  // from each retry's own slot (never from now_s), so calling this at a
  // boundary does not perturb the schedule.
  void flush_until(double now_s, const Dispatch& dispatch);

  // Control-plane retune of the live bucket + defer budget. Must be called
  // at virtual-time-defined points between frames (the ingest loop's
  // window boundaries) to stay deterministic.
  void retune(double rate_rounds_per_s, double burst_rounds,
              std::size_t max_defers);

  // Resolve every still-deferred frame (end of stream).
  void finish(const Dispatch& dispatch);

  const std::vector<IngestRecord>& schedule() const { return schedule_; }
  std::vector<IngestRecord> take_schedule() { return std::move(schedule_); }
  const ShaperStats& stats() const { return stats_; }
  double peak_occupancy() const { return shaper_.peak_occupancy(); }

  // Attach the ingest loop's telemetry stream (nullptr = off). Every final
  // verdict (admit/shed) and every failed defer attempt is counted at its
  // virtual decide time — a pure function of the ingest schedule, so the
  // counters land on the deterministic side of the telemetry contract.
  void set_telemetry(telemetry::ShardStream* stream) { telemetry_ = stream; }

 private:
  struct Pending {
    IngestFrame frame;
    std::size_t record = 0;  // index into schedule_
    std::uint32_t defers = 0;
  };
  struct Retry {
    double retry_s = 0.0;
    std::uint64_t seq = 0;  // FIFO tie-break for equal retry times
    std::uint64_t session_id = 0;
  };
  struct RetryAfter {
    bool operator()(const Retry& a, const Retry& b) const {
      return a.retry_s != b.retry_s ? a.retry_s > b.retry_s : a.seq > b.seq;
    }
  };

  // Run all retries scheduled at or before now_s (pass +inf to drain).
  void flush(double now_s, const Dispatch& dispatch);
  // Attempt a session's backlog starting at from_s; re-queues on defer.
  void work_backlog(std::uint64_t session_id, double from_s, const Dispatch& dispatch);
  // One frame's admission attempt; true when resolved (dispatched either
  // way), false when deferred for another attempt.
  bool resolve(Pending& p, double t_s, const Dispatch& dispatch);

  ShaperOptions opts_;
  TokenBucketShaper shaper_;
  std::vector<std::deque<Pending>> backlog_;  // per session
  std::priority_queue<Retry, std::vector<Retry>, RetryAfter> retries_;
  std::uint64_t next_seq_ = 0;
  std::vector<IngestRecord> schedule_;
  ShaperStats stats_;
  telemetry::ShardStream* telemetry_ = nullptr;
};

// Recompute every decision from the recorded arrivals (the deterministic
// inputs alone) and count records that disagree with the recording — the
// schedule-level recorded-vs-recomputed verifier. 0 means the recording is
// exactly what these options produce.
std::size_t verify_ingest_schedule(std::span<const IngestRecord> recorded,
                                   const ShaperOptions& opts, std::size_t sessions);

// Control-aware re-verification: replays the recorded arrivals while
// re-applying the ControlLog's shaper retunes at the same virtual-time
// window boundaries the live ingest loop used (boundary length `window_s`,
// actions in log order). With an empty action span and window_s <= 0 this
// degenerates to the overload above. 0 mismatches means the recording is
// exactly what (options, control log) produce.
std::size_t verify_ingest_schedule(std::span<const IngestRecord> recorded,
                                   const ShaperOptions& opts, std::size_t sessions,
                                   std::span<const control::ControlAction> actions,
                                   double window_s);

}  // namespace uwp::fleet
