// The sharded multi-session positioning service: owns the lifecycle of
// thousands of concurrent positioning groups, partitioned across shards by
// session id and executed on a util::ThreadPool (one worker per shard).
// Sessions are fully independent — each consumes only its two private rng
// streams — so a shard can run its slice of the timeline start to finish
// without synchronizing, and the aggregate (collected in session-id order)
// is bit-identical at ANY shard count, including the serial shards = 1
// reference. This is the serving-side restatement of sim::SweepRunner's
// determinism contract.
#pragma once

#include <cstdint>
#include <vector>

#include "fleet/session.hpp"
#include "sim/fleet_workload.hpp"
#include "telemetry/slo.hpp"

namespace uwp::telemetry {
class Collector;
struct TelemetryReport;
}

namespace uwp::control {
class ControlEngine;
}

namespace uwp::fleet {

class SessionRecorder;  // recorder.hpp

struct FleetOptions {
  std::uint64_t master_seed = 0x75770517u;
  // 0 = one shard per hardware thread; 1 = serial reference path.
  std::size_t shards = 0;
  // Record the wall-clock of every run_round call into
  // FleetResult::round_latency_s (for the bench's p50/p99 reporting).
  bool measure_latency = false;
  // Gather every session's round on a tick into one pipeline::BatchPlane
  // and run them stage-sliced in struct-of-arrays groups (the throughput
  // path). Results are bit-identical to the per-session path — grouping is
  // a memory layout choice, not a scheduling one — so this is a pure perf
  // knob; false keeps the one-session-at-a-time reference loop.
  bool batch_rounds = true;
};

class FleetService {
 public:
  // The workload (one scenario per session, indexed by session id) is
  // typically sim::make_workload(params); a custom vector works as long as
  // session_id == index. Throws std::invalid_argument otherwise.
  FleetService(FleetOptions opts, std::vector<sim::GroupScenario> workload);

  const FleetOptions& options() const { return opts_; }
  const std::vector<sim::GroupScenario>& workload() const { return workload_; }

  // Ticks the scheduler needs to drain every session: max over sessions of
  // admit_tick + lifetime_rounds.
  std::size_t ticks() const;

  // Run every session to eviction. `recorder`, when given, captures the
  // whole run as a replayable trace (it must have been constructed for this
  // service's workload). `telemetry`, when given and enabled, is opened
  // with one stream per shard; counter events carry the tick as virtual
  // time, so the collector's counters section is bit-identical at any shard
  // count. `engine`, when given (requires enabled telemetry — throws
  // std::invalid_argument otherwise), turns the run into window-length
  // chunks: at each window boundary every shard quiesces, the engine folds
  // the closed window's merged counter snapshot, and the resulting knob
  // bundle is applied to every shard before the next chunk. All fleet-side
  // knobs are result-neutral, so FleetResult stays bit-identical to the
  // uncontrolled run and across shard counts; the ControlLog is likewise
  // shard-count invariant. Thread-safe internally; call from one thread.
  FleetResult run(SessionRecorder* recorder = nullptr,
                  telemetry::Collector* telemetry = nullptr,
                  control::ControlEngine* engine = nullptr) const;

  // Arena accounting of the last run (summed over shards): how many session
  // admissions there were, how many were served by rebinding an evicted
  // session's warm pipeline instead of allocating a fresh one, and the
  // free-list hit/miss split underneath (hits == reuses; misses are cold
  // constructions).
  struct ArenaStats {
    std::size_t leases = 0;
    std::size_t reuses = 0;
    std::size_t free_hits = 0;
    std::size_t free_misses = 0;
  };
  const ArenaStats& arena_stats() const { return arena_stats_; }

 private:
  FleetOptions opts_;
  std::vector<sim::GroupScenario> workload_;
  mutable ArenaStats arena_stats_;
};

// Fold a finished run into the SLO reducer's inputs: per-kind session /
// round / error tallies from the (deterministic, id-ordered) FleetResult,
// counter totals from `report` when given (evict/shed/warm-start rates),
// and the run-varying latency samples. Every GroupScenarioKind appears, in
// enum order, so the reduced scoreboard's shape is spec-independent and
// its content bit-identical at any shard/worker count.
telemetry::SloInputs make_slo_inputs(const FleetResult& result,
                                     const telemetry::TelemetryReport* report);

}  // namespace uwp::fleet
