#include "fleet/wire.hpp"

#include <bit>
#include <cstring>

#include "fleet/session.hpp"
#include "proto/payload_codec.hpp"

namespace uwp::fleet {

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int b = 0; b < 4; ++b) out.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) out.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void ByteReader::need(std::size_t bytes) const {
  if (pos > in.size() || bytes > in.size() - pos)
    throw WireError("wire: truncated record");
}

std::uint8_t ByteReader::u8() {
  need(1);
  return in[pos++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  const std::uint16_t v = static_cast<std::uint16_t>(in[pos] | (in[pos + 1] << 8));
  pos += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int b = 3; b >= 0; --b) v = (v << 8) | in[pos + static_cast<std::size_t>(b)];
  pos += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int b = 7; b >= 0; --b) v = (v << 8) | in[pos + static_cast<std::size_t>(b)];
  pos += 8;
  return v;
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

namespace {

using Reader = ByteReader;

void put_header(std::vector<std::uint8_t>& out, RecordKind kind) {
  put_u32(out, kWireMagic);
  put_u16(out, kWireVersion);
  put_u8(out, static_cast<std::uint8_t>(kind));
}

RecordKind read_header(Reader& r) {
  if (r.u32() != kWireMagic) throw WireError("wire: bad magic");
  const std::uint16_t version = r.u16();
  if (version != kWireVersion)
    throw WireError("wire: unsupported version " + std::to_string(version));
  const std::uint8_t kind = r.u8();
  if (kind != static_cast<std::uint8_t>(RecordKind::kMeasurement) &&
      kind != static_cast<std::uint8_t>(RecordKind::kRoundRecord))
    throw WireError("wire: unknown record kind " + std::to_string(kind));
  return static_cast<RecordKind>(kind);
}

void expect_kind(Reader& r, RecordKind want) {
  if (read_header(r) != want) throw WireError("wire: unexpected record kind");
}

// Bitfields ride as proto::push_bits bit vectors (one bit per byte, MSB
// first) packed 8-to-a-byte on the wire.
void put_bitvector(std::vector<std::uint8_t>& out,
                   const std::vector<std::uint8_t>& bits) {
  std::uint8_t acc = 0;
  unsigned filled = 0;
  for (const std::uint8_t bit : bits) {
    acc = static_cast<std::uint8_t>((acc << 1) | (bit & 1u));
    if (++filled == 8) {
      out.push_back(acc);
      acc = 0;
      filled = 0;
    }
  }
  if (filled > 0) out.push_back(static_cast<std::uint8_t>(acc << (8 - filled)));
}

std::vector<std::uint8_t> read_bitvector(Reader& r, std::size_t nbits) {
  const std::size_t nbytes = (nbits + 7) / 8;
  r.need(nbytes);
  std::vector<std::uint8_t> bits;
  bits.reserve(nbits);
  for (std::size_t i = 0; i < nbits; ++i) {
    const std::uint8_t byte = r.in[r.pos + i / 8];
    bits.push_back(static_cast<std::uint8_t>((byte >> (7 - i % 8)) & 1u));
  }
  r.pos += nbytes;
  return bits;
}

std::size_t checked_n(const pipeline::RoundMeasurement& m) {
  const std::size_t n = m.protocol.timestamps.rows();
  if (n < 2 || n > kMaxWireDevices)
    throw std::invalid_argument("wire: device count out of range");
  if (m.protocol.timestamps.cols() != n || m.protocol.heard.rows() != n ||
      m.protocol.heard.cols() != n || m.protocol.sync_ref.size() != n ||
      m.protocol.tx_global.size() != n || m.depths.size() != n ||
      m.truth_pos.size() != n || m.truth_xy.size() != n || m.truth_depths.size() != n)
    throw std::invalid_argument("wire: inconsistent field sizes");
  return n;
}

std::uint64_t dbits(double v) { return std::bit_cast<std::uint64_t>(v); }

bool bit_equal(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (dbits(a[i]) != dbits(b[i])) return false;
  return true;
}

bool bit_equal(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  const auto da = a.data();
  const auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i)
    if (dbits(da[i]) != dbits(db[i])) return false;
  return true;
}

}  // namespace

void encode_measurement(const pipeline::RoundMeasurement& m,
                        std::vector<std::uint8_t>& out) {
  const std::size_t n = checked_n(m);
  put_header(out, RecordKind::kMeasurement);
  put_u32(out, static_cast<std::uint32_t>(n));

  for (const double v : m.protocol.timestamps.data()) put_f64(out, v);

  // heard is a 0/1 indicator matrix; ship it as one bit per link through the
  // payload codec's bitstream primitives.
  std::vector<std::uint8_t> bits;
  bits.reserve(n * n);
  for (const double h : m.protocol.heard.data()) {
    if (h != 0.0 && h != 1.0)
      throw std::invalid_argument("wire: heard entries must be 0 or 1");
    proto::push_bits(bits, h == 1.0 ? 1u : 0u, 1);
  }
  put_bitvector(out, bits);

  for (const std::size_t s : m.protocol.sync_ref) put_u64(out, s);
  for (const double v : m.protocol.tx_global) put_f64(out, v);
  put_f64(out, m.protocol.round_duration_s);

  for (const double v : m.depths) put_f64(out, v);
  put_f64(out, m.pointing_bearing_rad);

  if (m.votes.size() > n) throw std::invalid_argument("wire: more votes than devices");
  put_u32(out, static_cast<std::uint32_t>(m.votes.size()));
  bits.clear();
  for (const core::MicVote& v : m.votes) {
    if (v.node >= n) throw std::invalid_argument("wire: vote node out of range");
    if (v.mic_sign < -1 || v.mic_sign > 1)
      throw std::invalid_argument("wire: vote sign outside {-1, 0, +1}");
    put_u32(out, static_cast<std::uint32_t>(v.node));
    // Sign as a 2-bit field (00 = 0, 01 = +1, 10 = -1) in the shared
    // bitstream convention.
    proto::push_bits(bits, v.mic_sign == 0 ? 0u : (v.mic_sign > 0 ? 1u : 2u), 2);
  }
  put_bitvector(out, bits);

  for (const Vec3& p : m.truth_pos) {
    put_f64(out, p.x);
    put_f64(out, p.y);
    put_f64(out, p.z);
  }
  for (const Vec2& p : m.truth_xy) {
    put_f64(out, p.x);
    put_f64(out, p.y);
  }
  for (const double v : m.truth_depths) put_f64(out, v);
}

void decode_measurement(std::span<const std::uint8_t> in, std::size_t& pos,
                        pipeline::RoundMeasurement& out) {
  Reader r{in, pos};
  expect_kind(r, RecordKind::kMeasurement);

  const std::size_t n = r.u32();
  if (n < 2 || n > kMaxWireDevices) throw WireError("wire: device count out of range");

  out.protocol.timestamps.assign(n, n);
  for (double& v : out.protocol.timestamps.data()) v = r.f64();

  {
    const std::vector<std::uint8_t> bits = read_bitvector(r, n * n);
    std::size_t bitpos = 0;
    out.protocol.heard.assign(n, n);
    for (double& h : out.protocol.heard.data())
      h = proto::pop_bits(bits, bitpos, 1) != 0 ? 1.0 : 0.0;
  }

  out.protocol.sync_ref.resize(n);
  for (std::size_t& s : out.protocol.sync_ref) s = static_cast<std::size_t>(r.u64());
  out.protocol.tx_global.resize(n);
  for (double& v : out.protocol.tx_global) v = r.f64();
  out.protocol.round_duration_s = r.f64();

  out.depths.resize(n);
  for (double& v : out.depths) v = r.f64();
  out.pointing_bearing_rad = r.f64();

  const std::size_t votes = r.u32();
  if (votes > n) throw WireError("wire: more votes than devices");
  out.votes.resize(votes);
  for (core::MicVote& v : out.votes) {
    v.node = r.u32();
    if (v.node >= n) throw WireError("wire: vote node out of range");
  }
  {
    const std::vector<std::uint8_t> bits = read_bitvector(r, 2 * votes);
    std::size_t bitpos = 0;
    for (core::MicVote& v : out.votes) {
      const unsigned s = proto::pop_bits(bits, bitpos, 2);
      if (s > 2) throw WireError("wire: vote sign field out of domain");
      v.mic_sign = s == 0 ? 0 : (s == 1 ? 1 : -1);
    }
  }

  out.truth_pos.resize(n);
  for (Vec3& p : out.truth_pos) {
    p.x = r.f64();
    p.y = r.f64();
    p.z = r.f64();
  }
  out.truth_xy.resize(n);
  for (Vec2& p : out.truth_xy) {
    p.x = r.f64();
    p.y = r.f64();
  }
  out.truth_depths.resize(n);
  for (double& v : out.truth_depths) v = r.f64();

  pos = r.pos;
}

void encode_round_record(const RoundRecord& rec, std::vector<std::uint8_t>& out) {
  if (rec.error_2d.size() > kMaxWireDevices ||
      rec.tracked_error_2d.size() > kMaxWireDevices)
    throw std::invalid_argument("wire: device count out of range");
  put_header(out, RecordKind::kRoundRecord);
  put_u32(out, rec.round);
  put_u8(out, rec.localized ? 1 : 0);
  put_f64(out, rec.normalized_stress);
  put_u32(out, static_cast<std::uint32_t>(rec.error_2d.size()));
  for (const double v : rec.error_2d) put_f64(out, v);
  put_u32(out, static_cast<std::uint32_t>(rec.tracked_error_2d.size()));
  for (const double v : rec.tracked_error_2d) put_f64(out, v);
}

void decode_round_record(std::span<const std::uint8_t> in, std::size_t& pos,
                         RoundRecord& out) {
  Reader r{in, pos};
  expect_kind(r, RecordKind::kRoundRecord);
  out.round = r.u32();
  const std::uint8_t localized = r.u8();
  if (localized > 1) throw WireError("wire: localized flag out of domain");
  out.localized = localized == 1;
  out.normalized_stress = r.f64();
  const std::size_t n_err = r.u32();
  if (n_err > kMaxWireDevices) throw WireError("wire: device count out of range");
  out.error_2d.resize(n_err);
  for (double& v : out.error_2d) v = r.f64();
  const std::size_t n_tracked = r.u32();
  if (n_tracked > kMaxWireDevices) throw WireError("wire: device count out of range");
  out.tracked_error_2d.resize(n_tracked);
  for (double& v : out.tracked_error_2d) v = r.f64();
  pos = r.pos;
}

RecordKind peek_record_kind(std::span<const std::uint8_t> in, std::size_t pos) {
  Reader r{in, pos};
  return read_header(r);
}

bool bit_equal(const pipeline::RoundMeasurement& a, const pipeline::RoundMeasurement& b) {
  if (!bit_equal(a.protocol.timestamps, b.protocol.timestamps)) return false;
  if (!bit_equal(a.protocol.heard, b.protocol.heard)) return false;
  if (a.protocol.sync_ref != b.protocol.sync_ref) return false;
  if (!bit_equal(a.protocol.tx_global, b.protocol.tx_global)) return false;
  if (dbits(a.protocol.round_duration_s) != dbits(b.protocol.round_duration_s))
    return false;
  if (!bit_equal(a.depths, b.depths)) return false;
  if (dbits(a.pointing_bearing_rad) != dbits(b.pointing_bearing_rad)) return false;
  if (a.votes.size() != b.votes.size()) return false;
  for (std::size_t i = 0; i < a.votes.size(); ++i)
    if (a.votes[i].node != b.votes[i].node || a.votes[i].mic_sign != b.votes[i].mic_sign)
      return false;
  if (a.truth_pos.size() != b.truth_pos.size()) return false;
  for (std::size_t i = 0; i < a.truth_pos.size(); ++i)
    if (dbits(a.truth_pos[i].x) != dbits(b.truth_pos[i].x) ||
        dbits(a.truth_pos[i].y) != dbits(b.truth_pos[i].y) ||
        dbits(a.truth_pos[i].z) != dbits(b.truth_pos[i].z))
      return false;
  if (a.truth_xy.size() != b.truth_xy.size()) return false;
  for (std::size_t i = 0; i < a.truth_xy.size(); ++i)
    if (dbits(a.truth_xy[i].x) != dbits(b.truth_xy[i].x) ||
        dbits(a.truth_xy[i].y) != dbits(b.truth_xy[i].y))
      return false;
  return bit_equal(a.truth_depths, b.truth_depths);
}

bool bit_equal(const RoundRecord& a, const RoundRecord& b) {
  return a.round == b.round && a.localized == b.localized &&
         dbits(a.normalized_stress) == dbits(b.normalized_stress) &&
         bit_equal(a.error_2d, b.error_2d) &&
         bit_equal(a.tracked_error_2d, b.tracked_error_2d);
}

std::uint64_t workload_digest(const std::vector<sim::GroupScenario>& workload) {
  std::uint64_t h = kFnvOffsetBasis;
  const auto mix_matrix = [&h](const Matrix& m) {
    fnv_mix(h, m.rows());
    fnv_mix(h, m.cols());
    for (std::size_t r = 0; r < m.rows(); ++r)
      for (std::size_t c = 0; c < m.cols(); ++c) fnv_mix(h, m(r, c));
  };
  const auto mix_vec3 = [&h](const Vec3& v) {
    fnv_mix(h, v.x);
    fnv_mix(h, v.y);
    fnv_mix(h, v.z);
  };
  fnv_mix(h, workload.size());
  for (const sim::GroupScenario& sc : workload) {
    fnv_mix(h, sc.session_id);
    fnv_mix(h, static_cast<std::uint64_t>(sc.kind));
    fnv_mix(h, sc.scene.positions.size());
    for (const Vec3& p : sc.scene.positions) mix_vec3(p);
    mix_matrix(sc.scene.connectivity);
    fnv_mix(h, sc.scene.audio.size());
    for (const audio::AudioTimingConfig& a : sc.scene.audio) {
      fnv_mix(h, a.fs_nominal_hz);
      fnv_mix(h, a.speaker_skew_ppm);
      fnv_mix(h, a.mic_skew_ppm);
      fnv_mix(h, a.speaker_start_s);
      fnv_mix(h, a.mic_start_s);
      fnv_mix(h, a.self_loopback_delay_s);
    }
    fnv_mix(h, sc.scene.protocol.num_devices);
    fnv_mix(h, sc.scene.protocol.delta0_s);
    fnv_mix(h, sc.scene.protocol.t_packet_s);
    fnv_mix(h, sc.scene.protocol.t_guard_s);
    fnv_mix(h, sc.scene.protocol.sound_speed_mps);
    fnv_mix(h, sc.scene.protocol.fs_hz);
    fnv_mix(h, sc.scene.depth_sensor.bias_m);
    fnv_mix(h, sc.scene.depth_sensor.noise_sigma_m);
    fnv_mix(h, sc.scene.depth_sensor.quantization_m);
    fnv_mix(h, sc.scene.pointing.sigma_deg);
    fnv_mix(h, sc.scene.pointing.sigma_per_meter_deg);
    fnv_mix(h, sc.motion.size());
    for (const sim::GroupMotion& m : sc.motion) {
      mix_vec3(m.axis);
      fnv_mix(h, m.span_m);
      fnv_mix(h, m.speed_mps);
      fnv_mix(h, m.phase_s);
      fnv_mix(h, m.waypoints.size());
      for (const Vec3& w : m.waypoints) mix_vec3(w);
    }
    fnv_mix(h, sc.arrival.sigma_m);
    fnv_mix(h, sc.arrival.sigma_per_m);
    fnv_mix(h, sc.arrival.detection_failure_prob);
    fnv_mix(h, sc.sound_speed_error_mps);
    fnv_mix(h, sc.dropout_prob);
    fnv_mix(h, sc.admit_tick);
    fnv_mix(h, sc.lifetime_rounds);
    fnv_mix(h, sc.round_period_s);
  }
  return h;
}

}  // namespace uwp::fleet
