#include "fleet/session.hpp"

#include <bit>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "des/session_source.hpp"
#include "fleet/recorder.hpp"
#include "sim/sweep.hpp"
#include "telemetry/collector.hpp"

namespace uwp::fleet {

std::uint64_t session_stream_seed(std::uint64_t master_seed, std::uint64_t session_id,
                                  std::uint64_t stream) {
  return sim::trial_seed(master_seed ^ stream, session_id);
}

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xffu;
    h *= kFnvPrime;
  }
}

void fnv_mix(std::uint64_t& h, double v) { fnv_mix(h, std::bit_cast<std::uint64_t>(v)); }

// --- SessionMetrics ---------------------------------------------------------

void SessionMetrics::note_coast() {
  ++coasts;
  fnv_mix(digest, static_cast<std::uint64_t>(2));
}

void SessionMetrics::note_round(const pipeline::RoundOutput& out) {
  ++rounds;
  fnv_mix(digest, static_cast<std::uint64_t>(1));
  fnv_mix(digest, static_cast<std::uint64_t>(out.localized ? 1 : 0));
  if (out.localized) {
    ++localized;
    // Stress is only folded in when this round produced it; on a failed
    // round the localization buffer may hold a previous tenant's values
    // (pipelines are arena-reused), which must never leak into the digest.
    fnv_mix(digest, out.localization.normalized_stress);
  }
  for (const double e : out.error_2d) fnv_mix(digest, e);
  for (const double e : out.tracked_error_2d) fnv_mix(digest, e);
  for (std::size_t i = 1; i < out.error_2d.size(); ++i) {
    if (std::isnan(out.error_2d[i])) continue;
    errors.push_back(out.error_2d[i]);
    error_sum += out.error_2d[i];
  }
}

bool SessionMetrics::bit_equal(const SessionMetrics& o) const {
  if (session_id != o.session_id || kind != o.kind || rounds != o.rounds ||
      localized != o.localized || coasts != o.coasts || digest != o.digest ||
      errors.size() != o.errors.size())
    return false;
  for (std::size_t i = 0; i < errors.size(); ++i)
    if (std::bit_cast<std::uint64_t>(errors[i]) !=
        std::bit_cast<std::uint64_t>(o.errors[i]))
      return false;
  return true;
}

FleetResult finalize_fleet_result(std::vector<SessionMetrics> sessions) {
  FleetResult out;
  out.sessions = std::move(sessions);
  std::size_t total = 0;
  for (const SessionMetrics& s : out.sessions) total += s.errors.size();
  out.errors.reserve(total);
  for (const SessionMetrics& s : out.sessions) {
    out.rounds += s.rounds;
    out.localized += s.localized;
    out.coasts += s.coasts;
    out.errors.insert(out.errors.end(), s.errors.begin(), s.errors.end());
    fnv_mix(out.fleet_digest, s.digest);
  }
  out.summary = summarize(out.errors);
  return out;
}

// --- ShardArena -------------------------------------------------------------

ShardArena::SizeStats& ShardArena::stats_for(std::size_t size) {
  if (size >= stats_by_size_.size()) stats_by_size_.resize(size + 1);
  return stats_by_size_[size];
}

std::unique_ptr<SessionRuntime> ShardArena::take(std::size_t size,
                                                 std::size_t slot) {
  std::vector<FreeSlot>& list = free_by_size_[size];
  std::unique_ptr<SessionRuntime> rt = std::move(list[slot].rt);
  list.erase(list.begin() + static_cast<std::ptrdiff_t>(slot));
  ++rt->arena_reuses;
  ++reuses_;
  return rt;
}

std::unique_ptr<SessionRuntime> ShardArena::lease(const pipeline::PipelineOptions& opts) {
  ++leases_;
  if (telemetry_ != nullptr) telemetry_->count(telemetry::Counter::kArenaLeases);
  const std::size_t n = opts.protocol.num_devices;

  // Pick a free slot under the active cache policy. Exact-size entries need
  // only a rebind to *equal* options; the cost-aware fallback additionally
  // considers slightly larger entries (their workspaces shrink-fit), paying
  // an explicit rebind-cost sample instead of a cold construction.
  std::size_t from_size = free_by_size_.size();  // sentinel: miss
  std::size_t slot = 0;
  if (n < free_by_size_.size() && !free_by_size_[n].empty()) {
    const std::vector<FreeSlot>& list = free_by_size_[n];
    from_size = n;
    slot = list.size() - 1;  // kLru: most recently released
    if (controls_.cache_policy == control::CachePolicy::kLfu) {
      for (std::size_t i = 0; i < list.size(); ++i) {
        const bool better = list[i].reuses > list[slot].reuses ||
                            (list[i].reuses == list[slot].reuses &&
                             list[i].seq > list[slot].seq);
        if (better) slot = i;
      }
    }
  } else if (controls_.cache_policy == control::CachePolicy::kCostAware) {
    for (std::size_t m = n + 1; m <= n + 2 && m < free_by_size_.size(); ++m) {
      if (free_by_size_[m].empty()) continue;
      from_size = m;
      slot = free_by_size_[m].size() - 1;
      break;
    }
  }

  SizeStats& stats = stats_for(n);
  if (from_size < free_by_size_.size()) {
    const std::size_t cost = from_size - n;
    std::unique_ptr<SessionRuntime> rt = take(from_size, slot);
    rt->pipe.rebind(opts);
    rt->pipe.set_search_threads(controls_.search_threads);
    ++stats.hits;
    stats.rebind_cost += cost;
    if (telemetry_ != nullptr) {
      telemetry_->sample(telemetry::Sample::kArenaReuse, 1.0);
      telemetry_->sample(telemetry::Sample::kArenaFreeHit, double(n));
      telemetry_->sample(telemetry::Sample::kArenaRebindCost, double(cost));
    }
    return rt;
  }

  ++stats.misses;
  if (telemetry_ != nullptr)
    telemetry_->sample(telemetry::Sample::kArenaFreeMiss, double(n));
  std::unique_ptr<SessionRuntime> rt = std::make_unique<SessionRuntime>(opts);
  rt->pipe.set_search_threads(controls_.search_threads);
  return rt;
}

void ShardArena::release(std::unique_ptr<SessionRuntime> rt) {
  if (rt == nullptr) return;
  const std::size_t n = rt->pipe.options().protocol.num_devices;
  if (n >= free_by_size_.size()) free_by_size_.resize(n + 1);
  std::vector<FreeSlot>& list = free_by_size_[n];
  list.push_back(FreeSlot{std::move(rt), next_seq_++, 0});
  list.back().reuses = list.back().rt->arena_reuses;
  if (controls_.arena_retain > 0 && list.size() > controls_.arena_retain)
    list.erase(list.begin());  // drop the oldest (smallest seq by invariant)
}

void ShardArena::set_controls(const control::ShardControls& controls) {
  controls_ = controls;
  if (controls_.arena_retain == 0) return;
  for (std::vector<FreeSlot>& list : free_by_size_)
    if (list.size() > controls_.arena_retain)
      list.erase(list.begin(),
                 list.end() - static_cast<std::ptrdiff_t>(controls_.arena_retain));
}

pipeline::PipelineOptions pipeline_options_for(const sim::GroupScenario& sc) {
  pipeline::PipelineOptions opts;
  opts.protocol = sc.scene.protocol;
  opts.quantize_payload = true;
  opts.sound_speed_error_mps = sc.sound_speed_error_mps;
  opts.track = true;
  return opts;
}

// --- Session ----------------------------------------------------------------

namespace {

std::shared_ptr<const des::MobilityModel> make_lawnmower(
    const std::vector<Vec3>& origins, const std::vector<sim::GroupMotion>& motion) {
  auto mob = std::make_shared<des::LawnmowerMobility>(origins);
  for (std::size_t i = 0; i < motion.size(); ++i) {
    if (motion[i].span_m <= 0.0) continue;
    des::LawnmowerTrack track;
    track.direction = motion[i].axis;
    track.span_m = motion[i].span_m;
    track.speed_mps = motion[i].speed_mps;
    track.phase_s = motion[i].phase_s;
    mob->set_track(i, track);
  }
  return mob;
}

std::shared_ptr<const des::MobilityModel> make_waypoint(
    const std::vector<Vec3>& origins, const std::vector<sim::GroupMotion>& motion) {
  auto mob = std::make_shared<des::WaypointMobility>(origins);
  for (std::size_t i = 0; i < motion.size(); ++i) {
    if (motion[i].waypoints.size() < 2) continue;
    des::WaypointTrack track;
    track.waypoints = motion[i].waypoints;
    track.speed_mps = motion[i].speed_mps;
    mob->set_track(i, track);
  }
  return mob;
}

}  // namespace

// --- MeasurementFeed --------------------------------------------------------

MeasurementFeed::MeasurementFeed(const sim::GroupScenario& scenario,
                                 std::uint64_t master_seed)
    : sc_(&scenario),
      rng_(session_stream_seed(master_seed, scenario.session_id, kMeasurementStream)) {}

void MeasurementFeed::open() {
  if (sc_->kind == sim::GroupScenarioKind::kPacketDes) {
    des::DesScenarioConfig cfg;
    cfg.protocol = sc_->scene.protocol;
    cfg.round_period_s = sc_->round_period_s;
    cfg.arrival = sc_->arrival;
    cfg.depth_sensor = sc_->scene.depth_sensor;
    cfg.pointing = sc_->scene.pointing;
    model_ = std::make_unique<des::DesSessionSource>(
        cfg, make_lawnmower(sc_->scene.positions, sc_->motion), sc_->scene.audio,
        sc_->scene.connectivity);
  } else {
    auto fast =
        std::make_unique<pipeline::FastMeasurementModel>(sc_->scene, sc_->arrival);
    closed_form_ = fast.get();
    model_ = std::move(fast);
    if (sc_->kind == sim::GroupScenarioKind::kLawnmower)
      mobility_ = make_lawnmower(sc_->scene.positions, sc_->motion);
    else if (sc_->kind == sim::GroupScenarioKind::kWaypoint)
      mobility_ = make_waypoint(sc_->scene.positions, sc_->motion);
  }
}

void MeasurementFeed::close() {
  model_.reset();
  mobility_.reset();
  closed_form_ = nullptr;
}

MeasurementFeed::Event MeasurementFeed::next(pipeline::RoundMeasurement& out) {
  // Jammed round (dropout/churn groups): no measurement exists, so nothing
  // reaches the wire; the serving side coasts its tracker.
  if (sc_->dropout_prob > 0.0 && rng_.bernoulli(sc_->dropout_prob)) {
    ++events_done_;
    return Event::kCoast;
  }
  // Closed-form motion advances between rounds (the DES front-end moves
  // its nodes itself, during rounds).
  if (mobility_ != nullptr && closed_form_ != nullptr) {
    const double t = static_cast<double>(events_done_) * sc_->round_period_s;
    std::vector<Vec3>& pos = closed_form_->positions();
    for (std::size_t i = 0; i < pos.size(); ++i) pos[i] = mobility_->position(i, t);
  }
  model_->measure(out, rng_);
  ++events_done_;
  return Event::kMeasurement;
}

// --- Session ----------------------------------------------------------------

Session::Session(const sim::GroupScenario& scenario, std::uint64_t master_seed)
    : sc_(&scenario),
      feed_(scenario, master_seed),
      solve_rng_(session_stream_seed(master_seed, scenario.session_id, kSolverStream)) {
  metrics_.session_id = scenario.session_id;
  metrics_.kind = scenario.kind;
}

void Session::admit(ShardArena& arena, SessionRecorder* recorder,
                    telemetry::ShardStream* telemetry) {
  rt_ = arena.lease(pipeline_options_for(*sc_));
  rt_->pipe.set_telemetry(telemetry);
  feed_.open();
  state_ = SessionState::kActive;
  if (recorder != nullptr) recorder->on_admit(*sc_);
  if (telemetry != nullptr) {
    telemetry->count(telemetry::Counter::kAdmits);
    telemetry->count(telemetry::Counter::kAdmitDevices,
                     sc_->scene.protocol.num_devices);
  }
}

void Session::apply_controls(const control::ShardControls& controls) {
  if (state_ != SessionState::kActive || rt_ == nullptr) return;
  rt_->pipe.set_search_threads(controls.search_threads);
}

void Session::run_event(ShardArena& arena, SessionRecorder* recorder,
                        std::vector<double>* latencies,
                        telemetry::ShardStream* telemetry) {
  const double dt = feed_.next_dt_s();

  if (feed_.next(rt_->meas) == MeasurementFeed::Event::kCoast) {
    rt_->pipe.coast(dt);
    metrics_.note_coast();
    if (recorder != nullptr) recorder->on_coast(sc_->session_id, dt);
    if (telemetry != nullptr) telemetry->count(telemetry::Counter::kCoasts);
  } else {
    const std::uint32_t round_index = static_cast<std::uint32_t>(metrics_.rounds);
    if (recorder != nullptr)
      recorder->on_measurement(sc_->session_id, round_index, dt, rt_->meas);
    if (telemetry != nullptr && telemetry->trace_enabled())
      rt_->pipe.set_trace(
          telemetry::make_trace_id(sc_->session_id, metrics_.rounds));

    const auto t0 = std::chrono::steady_clock::now();
    const pipeline::RoundOutput& out = rt_->pipe.run_round(rt_->meas, solve_rng_, dt);
    if (latencies != nullptr)
      latencies->push_back(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());

    metrics_.note_round(out);
    record_round(out, round_index, recorder);
  }

  maybe_evict(arena, recorder, telemetry);
}

void Session::record_round(const pipeline::RoundOutput& out, std::uint32_t round_index,
                           SessionRecorder* recorder) {
  if (recorder == nullptr) return;
  record_scratch_.round = round_index;
  record_scratch_.localized = out.localized;
  record_scratch_.normalized_stress =
      out.localized ? out.localization.normalized_stress : 0.0;
  record_scratch_.error_2d = out.error_2d;
  record_scratch_.tracked_error_2d = out.tracked_error_2d;
  recorder->on_round_result(sc_->session_id, record_scratch_);
}

void Session::maybe_evict(ShardArena& arena, SessionRecorder* recorder,
                          telemetry::ShardStream* telemetry) {
  if (!feed_.exhausted()) return;
  arena.release(std::move(rt_));
  feed_.close();
  state_ = SessionState::kEvicted;
  if (recorder != nullptr) recorder->on_evict(sc_->session_id);
  if (telemetry != nullptr) {
    telemetry->count(telemetry::Counter::kEvicts);
    telemetry->count(telemetry::Counter::kEvictDevices,
                     sc_->scene.protocol.num_devices);
  }
}

bool Session::begin_tick(std::size_t tick, ShardArena& arena, SessionRecorder* recorder,
                         pipeline::BatchPlane& plane,
                         telemetry::ShardStream* telemetry) {
  if (state_ == SessionState::kEvicted) return false;
  if (state_ == SessionState::kPending) {
    if (tick < sc_->admit_tick) return false;
    admit(arena, recorder, telemetry);
  }

  const double dt = feed_.next_dt_s();
  if (feed_.next(rt_->meas) == MeasurementFeed::Event::kCoast) {
    rt_->pipe.coast(dt);
    metrics_.note_coast();
    if (recorder != nullptr) recorder->on_coast(sc_->session_id, dt);
    if (telemetry != nullptr) telemetry->count(telemetry::Counter::kCoasts);
    maybe_evict(arena, recorder, telemetry);
    return false;
  }

  // The measurement is captured pre-quantization, exactly as in run_event
  // (the batch plane's quantize stage mutates it in place afterwards).
  if (recorder != nullptr)
    recorder->on_measurement(sc_->session_id, static_cast<std::uint32_t>(metrics_.rounds),
                             dt, rt_->meas);
  if (telemetry != nullptr && telemetry->trace_enabled())
    rt_->pipe.set_trace(
        telemetry::make_trace_id(sc_->session_id, metrics_.rounds));
  plane.enqueue(rt_->pipe, rt_->meas, solve_rng_, dt);
  return true;
}

void Session::finish_tick(const pipeline::BatchSlot& slot, ShardArena& arena,
                          SessionRecorder* recorder, std::vector<double>* latencies,
                          telemetry::ShardStream* telemetry) {
  if (latencies != nullptr) latencies->push_back(slot.latency_s);
  const std::uint32_t round_index = static_cast<std::uint32_t>(metrics_.rounds);
  metrics_.note_round(*slot.out);
  record_round(*slot.out, round_index, recorder);
  maybe_evict(arena, recorder, telemetry);
}

void Session::tick(std::size_t tick, ShardArena& arena, SessionRecorder* recorder,
                   std::vector<double>* latencies,
                   telemetry::ShardStream* telemetry) {
  if (state_ == SessionState::kEvicted) return;
  if (state_ == SessionState::kPending) {
    if (tick < sc_->admit_tick) return;
    admit(arena, recorder, telemetry);
  }
  run_event(arena, recorder, latencies, telemetry);
}

}  // namespace uwp::fleet
