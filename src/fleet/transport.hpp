// The byte boundary of the serving front-end: ingest frames and the
// Transport interface they travel through. A served fleet does not call
// into its clients — sessions arrive as a stream of wire-encoded frames
// (measurements, device-side coast notices, end-of-stream markers), each
// stamped with its position on the *virtual ingest clock* (`t_s`). Every
// admission/shaping decision downstream (fleet/shaper.hpp) is a function of
// those stamps, never of wall clock, which is what keeps a served run
// replayable bit for bit.
//
// One implementation ships today: RingBufferTransport, a bounded in-process
// MPMC ring whose blocking send() is the transport-level backpressure (a
// slow server stalls its producers instead of buffering unboundedly). A
// socket transport slots in behind the same three-method interface later.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <vector>

#include "fleet/wire.hpp"

namespace uwp::fleet {

// --- ingest frame codec -----------------------------------------------------

inline constexpr std::uint32_t kIngestMagic = 0x49475755u;  // "UWGI" little-endian
inline constexpr std::uint16_t kIngestVersion = 1;

enum class IngestKind : std::uint8_t {
  kMeasurement = 1,  // payload = encode_measurement bytes for one round
  kCoast = 2,        // the device side skipped a jammed round (no payload)
  kBye = 3,          // end of this session's stream; evict after processing
};

// One frame of a session's ingest stream.
struct IngestFrame {
  IngestKind kind = IngestKind::kMeasurement;
  std::uint64_t session_id = 0;
  std::uint32_t round = 0;  // client-side event index within the session
  double t_s = 0.0;         // virtual arrival time (the ingest schedule clock)
  double dt_s = 0.0;        // pipeline dt to the session's previous event
  std::vector<std::uint8_t> payload;  // kMeasurement only

  void clear() {
    kind = IngestKind::kMeasurement;
    session_id = 0;
    round = 0;
    t_s = dt_s = 0.0;
    payload.clear();
  }
};

// Whole-buffer frame codec (one frame per transport message). Decoders
// validate magic/version/kind/length and throw WireError on malformed or
// trailing bytes; like the rest of fleet/wire.*, they never read past the
// buffer and never size an allocation from an unchecked length field.
void encode_ingest_frame(const IngestFrame& f, std::vector<std::uint8_t>& out);
void decode_ingest_frame(std::span<const std::uint8_t> in, IngestFrame& out);

// --- transport --------------------------------------------------------------

// A byte-stream channel between measurement producers and fleet::Server.
// Contract: frames arrive exactly once, in send order (producers sending
// concurrently are serialized at the transport); send() blocks for
// backpressure rather than dropping; after close(), senders fail fast and
// receivers drain what is in flight before seeing end-of-stream.
class Transport {
 public:
  virtual ~Transport() = default;

  // Blocking; false once the stream is closed (the frame is then dropped).
  virtual bool send(std::vector<std::uint8_t> frame) = 0;
  // Blocking; fills `frame` and returns true, or returns false when the
  // stream is closed and fully drained.
  virtual bool recv(std::vector<std::uint8_t>& frame) = 0;
  // End the stream (idempotent). Wakes all blocked senders and receivers.
  virtual void close() = 0;
};

// Bounded in-process ring: mutex + two condvars, capacity fixed at
// construction. The occupancy counters are wall-clock artifacts for
// observability only — they are NOT part of any determinism contract.
class RingBufferTransport final : public Transport {
 public:
  explicit RingBufferTransport(std::size_t capacity);

  bool send(std::vector<std::uint8_t> frame) override;
  bool recv(std::vector<std::uint8_t>& frame) override;
  void close() override;

  std::size_t capacity() const { return capacity_; }
  // Total frames accepted by send().
  std::size_t frames_sent() const;
  // Times a sender found the ring full and had to block (backpressure hits).
  std::size_t send_waits() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<std::vector<std::uint8_t>> ring_;
  std::size_t frames_sent_ = 0;
  std::size_t send_waits_ = 0;
  bool closed_ = false;
};

}  // namespace uwp::fleet
