// Record/replay for fleet runs, in the spirit of game-traffic capture
// systems: a live run is captured once — every session's measurement bytes,
// coasts, and per-round results, in session order — and regression tests
// replay the trace through the real service stack, expecting bit-identical
// per-session metrics. Because each session's events are recorded on the one
// shard that owns it, recording needs no locks and the trace is independent
// of the shard count that produced it.
//
// Trace file layout (little-endian, fleet wire primitives):
//   u32 magic "UWFT" | u16 version
//   u64 master_seed | u64 workload_digest
//   WorkloadParams (u64 x7, u8 include_des, u8 force_kind: 0xFF = mixed)
//   u64 session_count
//   per session (id order):
//     u64 session_id | u64 event_count
//     events in order:
//       u8 kCoast       | f64 dt
//       u8 kMeasurement | f64 dt | u32 round | u64 len | encode_measurement bytes
//       u8 kRoundResult |                      u64 len | encode_round_record bytes
//
// The header carries the workload *parameters*, not the scenarios: the
// workload generator is deterministic in (params, session_id), so the
// replayer regenerates identical pipeline configurations and re-derives
// each session's solver stream from master_seed — only measurements ride in
// the trace. Replay therefore exercises the real decode -> pipeline path.
// The workload_digest (fleet::workload_digest over the generated scenarios)
// pins that regeneration: a trace recorded under a different workload
// generator fails replay with a clear version-skew error instead of
// silently replaying different sessions.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "control/log.hpp"
#include "control/policy.hpp"
#include "fleet/session.hpp"
#include "sim/fleet_workload.hpp"

namespace uwp::telemetry {
class Collector;
}

namespace uwp::fleet {

inline constexpr std::uint32_t kTraceMagic = 0x54465755u;  // "UWFT" little-endian
// v2: header gained workload_digest + WorkloadParams::force_kind.
inline constexpr std::uint16_t kTraceVersion = 2;

enum class FrameKind : std::uint8_t {
  kCoast = 1,
  kMeasurement = 2,
  kRoundResult = 3,
};

struct TraceEvent {
  FrameKind kind = FrameKind::kCoast;
  double dt_s = 0.0;       // kCoast / kMeasurement
  std::uint32_t round = 0;  // kMeasurement
  std::vector<std::uint8_t> payload;  // wire-encoded record, when any
};

struct SessionTrace {
  std::uint64_t session_id = 0;
  std::vector<TraceEvent> events;
};

struct FleetTrace {
  std::uint64_t master_seed = 0;
  // fleet::workload_digest of the workload generated from `workload` at
  // record time; Replayer refuses a trace whose regeneration disagrees.
  std::uint64_t workload_digest = 0;
  sim::WorkloadParams workload;
  std::vector<SessionTrace> sessions;  // indexed by session id
};

// Captures one live FleetService run. Construct for the workload parameters
// the service's workload was generated from, pass to FleetService::run.
// The hook methods are called by sessions from shard threads; each session's
// slot is touched by exactly one shard, so they are lock-free by design.
class SessionRecorder {
 public:
  // The params-only form regenerates the workload once to pin its digest in
  // the header; callers that already hold the generated workload (the usual
  // case — the service was built from it) should pass it to skip that.
  SessionRecorder(std::uint64_t master_seed, const sim::WorkloadParams& params);
  SessionRecorder(std::uint64_t master_seed, const sim::WorkloadParams& params,
                  const std::vector<sim::GroupScenario>& workload);

  // Session hooks (see fleet::Session).
  void on_admit(const sim::GroupScenario& scenario);
  void on_measurement(std::uint64_t session_id, std::uint32_t round, double dt_s,
                      const pipeline::RoundMeasurement& m);
  void on_round_result(std::uint64_t session_id, const RoundRecord& r);
  void on_coast(std::uint64_t session_id, double dt_s);
  void on_evict(std::uint64_t session_id);

  const FleetTrace& trace() const { return trace_; }

  void write(std::ostream& out) const;
  void save(const std::string& path) const;

 private:
  SessionTrace& slot(std::uint64_t session_id);

  FleetTrace trace_;
};

// Parse a trace; throws WireError (or std::runtime_error for I/O failures)
// on malformed input.
FleetTrace read_fleet_trace(std::istream& in);
FleetTrace load_fleet_trace(const std::string& path);

// Serialize without a recorder (used by tests to re-save a loaded trace).
void write_fleet_trace(std::ostream& out, const FleetTrace& trace);

// Replays a captured fleet run through the real service stack: regenerates
// the workload from the trace header, rebuilds each session's pipeline,
// decodes every measurement from its recorded bytes and runs it through
// pipeline::RoundPipeline with the session's re-derived solver stream.
// Produces the same FleetResult a live run produces, bit for bit.
class Replayer {
 public:
  explicit Replayer(FleetTrace trace);

  struct ReplayResult {
    FleetResult fleet;
    // Rounds whose recomputed result record differed bit-for-bit from the
    // recorded one; always 0 unless the trace or the code base changed.
    std::size_t result_mismatches = 0;
    // The re-derived control log (empty unless replay() got a config).
    control::ControlLog control_log;
  };
  // Plain replay. `telemetry`, when given and enabled, is opened with one
  // stream and fed the same counter events a live tick-scheduled fleet run
  // emits — each event stamped at virtual time admit_tick + event index, so
  // with the live run's window length the rebuilt counter plane matches the
  // live one page for page. `control` (requires telemetry) then re-executes
  // the control fold offline over that rebuilt plane: the result's
  // control_log must equal the live run's — the record→replay pin for the
  // control plane. `baseline` (optional) seeds the fold's knob bundle;
  // defaults to ShardControls{}, matching a fleet-mode live run.
  ReplayResult replay(telemetry::Collector* telemetry = nullptr,
                      const control::ControlConfig* control = nullptr,
                      const control::ShardControls* baseline = nullptr) const;

 private:
  FleetTrace trace_;
  std::vector<sim::GroupScenario> workload_;
};

}  // namespace uwp::fleet
