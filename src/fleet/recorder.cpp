#include "fleet/recorder.hpp"

#include <algorithm>
#include <fstream>
#include <iterator>
#include <stdexcept>

#include "control/engine.hpp"
#include "telemetry/collector.hpp"

namespace uwp::fleet {

SessionRecorder::SessionRecorder(std::uint64_t master_seed,
                                 const sim::WorkloadParams& params)
    : SessionRecorder(master_seed, params, sim::make_workload(params)) {}

SessionRecorder::SessionRecorder(std::uint64_t master_seed,
                                 const sim::WorkloadParams& params,
                                 const std::vector<sim::GroupScenario>& workload) {
  trace_.master_seed = master_seed;
  trace_.workload = params;
  // Pin the workload these parameters generate *today*, so replaying the
  // trace under a changed generator fails loudly (see Replayer).
  trace_.workload_digest = workload_digest(workload);
  trace_.sessions.resize(params.sessions);
  for (std::size_t i = 0; i < params.sessions; ++i)
    trace_.sessions[i].session_id = i;
}

SessionTrace& SessionRecorder::slot(std::uint64_t session_id) {
  if (session_id >= trace_.sessions.size())
    throw std::invalid_argument("SessionRecorder: session_id outside workload");
  return trace_.sessions[session_id];
}

void SessionRecorder::on_admit(const sim::GroupScenario& scenario) {
  slot(scenario.session_id).events.clear();
}

void SessionRecorder::on_measurement(std::uint64_t session_id, std::uint32_t round,
                                     double dt_s, const pipeline::RoundMeasurement& m) {
  TraceEvent ev;
  ev.kind = FrameKind::kMeasurement;
  ev.dt_s = dt_s;
  ev.round = round;
  encode_measurement(m, ev.payload);
  slot(session_id).events.push_back(std::move(ev));
}

void SessionRecorder::on_round_result(std::uint64_t session_id, const RoundRecord& r) {
  TraceEvent ev;
  ev.kind = FrameKind::kRoundResult;
  encode_round_record(r, ev.payload);
  slot(session_id).events.push_back(std::move(ev));
}

void SessionRecorder::on_coast(std::uint64_t session_id, double dt_s) {
  TraceEvent ev;
  ev.kind = FrameKind::kCoast;
  ev.dt_s = dt_s;
  slot(session_id).events.push_back(std::move(ev));
}

void SessionRecorder::on_evict(std::uint64_t session_id) {
  slot(session_id);  // bounds check only; eviction is implicit in the format
}

void write_fleet_trace(std::ostream& out, const FleetTrace& trace) {
  std::vector<std::uint8_t> buf;
  put_u32(buf, kTraceMagic);
  put_u16(buf, kTraceVersion);
  put_u64(buf, trace.master_seed);
  put_u64(buf, trace.workload_digest);
  const sim::WorkloadParams& p = trace.workload;
  put_u64(buf, p.sessions);
  put_u64(buf, p.seed);
  put_u64(buf, p.min_group_size);
  put_u64(buf, p.max_group_size);
  put_u64(buf, p.min_rounds);
  put_u64(buf, p.max_rounds);
  put_u64(buf, p.admit_spread_ticks);
  put_u8(buf, p.include_des ? 1 : 0);
  put_u8(buf, p.force_kind < 0 ? 0xFF : static_cast<std::uint8_t>(p.force_kind));
  put_u64(buf, trace.sessions.size());
  for (const SessionTrace& s : trace.sessions) {
    put_u64(buf, s.session_id);
    put_u64(buf, s.events.size());
    for (const TraceEvent& ev : s.events) {
      put_u8(buf, static_cast<std::uint8_t>(ev.kind));
      switch (ev.kind) {
        case FrameKind::kCoast:
          put_f64(buf, ev.dt_s);
          break;
        case FrameKind::kMeasurement:
          put_f64(buf, ev.dt_s);
          put_u32(buf, ev.round);
          put_u64(buf, ev.payload.size());
          buf.insert(buf.end(), ev.payload.begin(), ev.payload.end());
          break;
        case FrameKind::kRoundResult:
          put_u64(buf, ev.payload.size());
          buf.insert(buf.end(), ev.payload.begin(), ev.payload.end());
          break;
      }
    }
  }
  out.write(reinterpret_cast<const char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
  if (!out) throw std::runtime_error("fleet trace: write failed");
}

void SessionRecorder::write(std::ostream& out) const { write_fleet_trace(out, trace_); }

void SessionRecorder::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("fleet trace: cannot open " + path);
  write(out);
}

FleetTrace read_fleet_trace(std::istream& in) {
  // One copy only: traces from a large fleet run are tens of MB.
  std::vector<std::uint8_t> buf{std::istreambuf_iterator<char>(in),
                                std::istreambuf_iterator<char>()};
  ByteReader r{buf, 0};

  FleetTrace trace;
  if (r.u32() != kTraceMagic) throw WireError("fleet trace: bad magic");
  const std::uint16_t version = r.u16();
  if (version != kTraceVersion)
    throw WireError("fleet trace: unsupported version " + std::to_string(version));
  trace.master_seed = r.u64();
  trace.workload_digest = r.u64();
  sim::WorkloadParams& p = trace.workload;
  p.sessions = static_cast<std::size_t>(r.u64());
  p.seed = r.u64();
  p.min_group_size = static_cast<std::size_t>(r.u64());
  p.max_group_size = static_cast<std::size_t>(r.u64());
  p.min_rounds = static_cast<std::size_t>(r.u64());
  p.max_rounds = static_cast<std::size_t>(r.u64());
  p.admit_spread_ticks = static_cast<std::size_t>(r.u64());
  p.include_des = r.u8() != 0;
  const std::uint8_t force_kind = r.u8();
  if (force_kind != 0xFF &&
      force_kind > static_cast<std::uint8_t>(sim::GroupScenarioKind::kPacketDes))
    throw WireError("fleet trace: force_kind out of range");
  p.force_kind = force_kind == 0xFF ? -1 : static_cast<int>(force_kind);

  const std::uint64_t count = r.u64();
  if (count != p.sessions) throw WireError("fleet trace: session count mismatch");
  // Every count field sizes an allocation, so it must be proven against the
  // bytes still in the stream *before* the resize — a corrupt count must
  // fail as WireError, never as bad_alloc. Each session costs at least 16
  // bytes (id + event count); each event at least 9 (kind tag + 8-byte
  // body). Bounding against the remaining bytes (not the total buffer)
  // keeps the check tight deep inside large traces.
  if (count > (buf.size() - r.pos) / 16)
    throw WireError("fleet trace: implausible session count");
  trace.sessions.resize(count);
  for (SessionTrace& s : trace.sessions) {
    s.session_id = r.u64();
    const std::uint64_t events = r.u64();
    if (events > (buf.size() - r.pos) / 9)
      throw WireError("fleet trace: implausible event count");
    s.events.resize(events);
    for (TraceEvent& ev : s.events) {
      const std::uint8_t kind = r.u8();
      switch (kind) {
        case static_cast<std::uint8_t>(FrameKind::kCoast):
          ev.kind = FrameKind::kCoast;
          ev.dt_s = r.f64();
          break;
        case static_cast<std::uint8_t>(FrameKind::kMeasurement): {
          ev.kind = FrameKind::kMeasurement;
          ev.dt_s = r.f64();
          ev.round = r.u32();
          const std::uint64_t len = r.u64();
          r.need(len);
          ev.payload.assign(buf.begin() + static_cast<std::ptrdiff_t>(r.pos),
                            buf.begin() + static_cast<std::ptrdiff_t>(r.pos + len));
          r.pos += len;
          break;
        }
        case static_cast<std::uint8_t>(FrameKind::kRoundResult): {
          ev.kind = FrameKind::kRoundResult;
          const std::uint64_t len = r.u64();
          r.need(len);
          ev.payload.assign(buf.begin() + static_cast<std::ptrdiff_t>(r.pos),
                            buf.begin() + static_cast<std::ptrdiff_t>(r.pos + len));
          r.pos += len;
          break;
        }
        default:
          throw WireError("fleet trace: unknown frame kind " + std::to_string(kind));
      }
    }
  }
  if (r.pos != buf.size()) throw WireError("fleet trace: trailing bytes");
  return trace;
}

FleetTrace load_fleet_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("fleet trace: cannot open " + path);
  return read_fleet_trace(in);
}

// --- Replayer ---------------------------------------------------------------

Replayer::Replayer(FleetTrace trace)
    : trace_(std::move(trace)), workload_(sim::make_workload(trace_.workload)) {
  if (trace_.sessions.size() != workload_.size())
    throw WireError("fleet trace: session count != regenerated workload");
  if (workload_digest(workload_) != trace_.workload_digest)
    throw WireError(
        "fleet trace: workload digest mismatch — the trace was recorded "
        "against a different workload (generator version skew or a tampered "
        "header); refusing to replay different sessions");
  for (std::size_t i = 0; i < trace_.sessions.size(); ++i)
    if (trace_.sessions[i].session_id != i)
      throw WireError("fleet trace: sessions out of order");
}

Replayer::ReplayResult Replayer::replay(telemetry::Collector* telemetry,
                                        const control::ControlConfig* control,
                                        const control::ShardControls* baseline) const {
  ReplayResult out;
  std::vector<SessionMetrics> metrics(trace_.sessions.size());

  telemetry::Collector* const col =
      telemetry != nullptr && telemetry->enabled() ? telemetry : nullptr;
  if (control != nullptr && col == nullptr)
    throw std::invalid_argument(
        "Replayer: control re-execution requires enabled telemetry");
  if (col != nullptr) col->open(1);
  telemetry::ShardStream* const tel = col != nullptr ? &col->stream(0) : nullptr;

  pipeline::RoundMeasurement meas;
  RoundRecord recorded, recomputed;
  for (std::size_t id = 0; id < trace_.sessions.size(); ++id) {
    const sim::GroupScenario& sc = workload_[id];
    pipeline::RoundPipeline pipe(pipeline_options_for(sc));
    pipe.set_telemetry(tel);
    uwp::Rng solve_rng(session_stream_seed(trace_.master_seed, id, kSolverStream));

    SessionMetrics& m = metrics[id];
    m.session_id = id;
    m.kind = sc.kind;

    // The counter-plane mirror of the live tick loop: the session's i-th
    // coast/measurement event happened at tick admit_tick + i, and the
    // admit (with its arena lease) rode the first event's tick, the evict
    // the last one's. Counter pages are per-window sums, so replaying the
    // sessions one by one rebuilds the same pages the interleaved live
    // schedule produced.
    std::size_t event_index = 0;
    bool admitted = false;
    const auto stamp = [&]() {
      if (tel == nullptr) return;
      tel->set_time(static_cast<double>(sc.admit_tick + event_index));
      if (!admitted) {
        tel->count(telemetry::Counter::kArenaLeases);
        tel->count(telemetry::Counter::kAdmits);
        tel->count(telemetry::Counter::kAdmitDevices, sc.scene.protocol.num_devices);
      }
      admitted = true;
    };

    bool have_round = false;  // a run_round result awaiting its record frame
    for (const TraceEvent& ev : trace_.sessions[id].events) {
      switch (ev.kind) {
        case FrameKind::kCoast:
          stamp();
          ++event_index;
          pipe.coast(ev.dt_s);
          m.note_coast();
          if (tel != nullptr) tel->count(telemetry::Counter::kCoasts);
          have_round = false;
          break;
        case FrameKind::kMeasurement: {
          stamp();
          ++event_index;
          std::size_t pos = 0;
          decode_measurement(ev.payload, pos, meas);
          // Each record is only internally consistent; the pipeline indexes
          // by the *scenario's* device count, so a mismatched (corrupt or
          // cross-wired) frame must be rejected here, not read out of
          // bounds downstream.
          if (meas.protocol.timestamps.rows() != sc.scene.protocol.num_devices)
            throw WireError("fleet trace: measurement device count != session's");
          const pipeline::RoundOutput& po = pipe.run_round(meas, solve_rng, ev.dt_s);
          m.note_round(po);
          recomputed.round = ev.round;
          recomputed.localized = po.localized;
          recomputed.normalized_stress =
              po.localized ? po.localization.normalized_stress : 0.0;
          recomputed.error_2d = po.error_2d;
          recomputed.tracked_error_2d = po.tracked_error_2d;
          have_round = true;
          break;
        }
        case FrameKind::kRoundResult: {
          std::size_t pos = 0;
          decode_round_record(ev.payload, pos, recorded);
          if (!have_round || !bit_equal(recorded, recomputed)) ++out.result_mismatches;
          have_round = false;
          break;
        }
      }
    }
    if (tel != nullptr && admitted) {
      // Eviction is implicit in the trace: it happened on the last event's
      // tick (the live scheduler checks lifetime exhaustion after the
      // event), whose time is still the stream's current window.
      tel->count(telemetry::Counter::kEvicts);
      tel->count(telemetry::Counter::kEvictDevices, sc.scene.protocol.num_devices);
    }
  }

  if (control != nullptr) {
    // Re-execute the control fold offline over the rebuilt counter plane.
    // The window count is the live fleet's: ceil(total_ticks / window_ticks)
    // with total_ticks from the regenerated workload — the same pure
    // function of the workload the live run used. The collector must carry
    // the live run's window length for the pages to line up.
    const std::size_t window_ticks = std::max<std::size_t>(1, control->window_ticks);
    std::size_t total_ticks = 0;
    for (const sim::GroupScenario& sc : workload_)
      total_ticks = std::max(total_ticks, sc.admit_tick + sc.lifetime_rounds);
    const std::uint64_t n_windows =
        total_ticks == 0 ? 0 : (total_ticks + window_ticks - 1) / window_ticks;
    std::vector<telemetry::Snapshot> snaps;
    snaps.reserve(static_cast<std::size_t>(n_windows));
    for (std::uint64_t w = 0; w < n_windows; ++w)
      snaps.push_back(col->window_snapshot(w));
    out.control_log = control::ControlEngine::reexecute(
        *control, baseline != nullptr ? *baseline : control::ShardControls{}, snaps);
  }

  out.fleet = finalize_fleet_result(std::move(metrics));
  out.fleet.shards_used = 1;
  return out;
}

}  // namespace uwp::fleet
