#include "des/mobility.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace uwp::des {

namespace {

void check_node(std::size_t node, std::size_t n, const char* who) {
  if (node >= n) throw std::invalid_argument(std::string(who) + ": bad node id");
}

// Triangle wave in [0, 1] with period `period_s`, starting at 0 going up.
double triangle01(double t_s, double period_s) {
  const double phase = t_s / period_s - std::floor(t_s / period_s);  // [0, 1)
  return phase < 0.5 ? 2.0 * phase : 2.0 - 2.0 * phase;
}

}  // namespace

StaticMobility::StaticMobility(std::vector<Vec3> positions)
    : positions_(std::move(positions)) {}

Vec3 StaticMobility::position(std::size_t node, double) const {
  check_node(node, positions_.size(), "StaticMobility");
  return positions_[node];
}

LawnmowerMobility::LawnmowerMobility(std::vector<Vec3> origins)
    : origins_(std::move(origins)),
      tracks_(origins_.size()),
      has_track_(origins_.size(), 0) {}

void LawnmowerMobility::set_track(std::size_t node, LawnmowerTrack track) {
  check_node(node, origins_.size(), "LawnmowerMobility");
  if (track.span_m <= 0.0 || track.speed_mps <= 0.0)
    throw std::invalid_argument("LawnmowerMobility: span and speed must be > 0");
  const double norm = track.direction.norm();
  if (norm <= 0.0)
    throw std::invalid_argument("LawnmowerMobility: zero direction");
  track.direction = track.direction * (1.0 / norm);
  tracks_[node] = track;
  has_track_[node] = 1;
}

Vec3 LawnmowerMobility::position(std::size_t node, double t_s) const {
  check_node(node, origins_.size(), "LawnmowerMobility");
  if (!has_track_[node]) return origins_[node];
  const LawnmowerTrack& tr = tracks_[node];
  const double period = 2.0 * tr.span_m / tr.speed_mps;
  const double along = tr.span_m * triangle01(t_s + tr.phase_s, period);
  return origins_[node] + tr.direction * along;
}

WaypointMobility::WaypointMobility(std::vector<Vec3> origins)
    : origins_(std::move(origins)), tracks_(origins_.size()) {}

void WaypointMobility::set_track(std::size_t node, WaypointTrack track) {
  check_node(node, origins_.size(), "WaypointMobility");
  if (track.waypoints.size() < 2)
    throw std::invalid_argument("WaypointMobility: need >= 2 waypoints");
  if (track.speed_mps <= 0.0)
    throw std::invalid_argument("WaypointMobility: speed must be > 0");
  CompiledTrack compiled;
  compiled.track = std::move(track);
  // Closed tour: segment k runs waypoint k -> k+1, last one loops to 0.
  const std::size_t m = compiled.track.waypoints.size();
  compiled.seg_len.resize(m);
  for (std::size_t k = 0; k < m; ++k) {
    compiled.seg_len[k] = distance(compiled.track.waypoints[k],
                                   compiled.track.waypoints[(k + 1) % m]);
    compiled.total_len += compiled.seg_len[k];
  }
  tracks_[node] = std::move(compiled);
}

Vec3 WaypointMobility::position(std::size_t node, double t_s) const {
  check_node(node, origins_.size(), "WaypointMobility");
  const CompiledTrack& ct = tracks_[node];
  const std::size_t m = ct.track.waypoints.size();
  if (m < 2) return origins_[node];
  if (ct.total_len <= 0.0) return ct.track.waypoints[0];

  double along = std::fmod(t_s * ct.track.speed_mps, ct.total_len);
  if (along < 0.0) along += ct.total_len;
  for (std::size_t k = 0; k < m; ++k) {
    if (along <= ct.seg_len[k] || k + 1 == m) {
      const Vec3& a = ct.track.waypoints[k];
      const Vec3& b = ct.track.waypoints[(k + 1) % m];
      const double f = ct.seg_len[k] > 0.0 ? along / ct.seg_len[k] : 0.0;
      return a + (b - a) * f;
    }
    along -= ct.seg_len[k];
  }
  return ct.track.waypoints[0];  // unreachable
}

}  // namespace uwp::des
