// A persistent packet-level session source for the fleet layer. DesScenario
// builds its simulator, medium and nodes on the stack for one batch run;
// a *serving* session instead needs the whole DES world to live as long as
// the session does, producing one round per measure() call across the
// session's lifetime. DesSessionSource owns that world (event queue, medium,
// protocol-node state machines, mobility) and exposes it through the same
// pipeline::MeasurementModel contract every other front-end uses, so a
// fleet session backed by full packet physics is a drop-in for one backed
// by the closed form.
#pragma once

#include <memory>
#include <vector>

#include "des/medium.hpp"
#include "des/mobility.hpp"
#include "des/protocol_node.hpp"
#include "des/scenario.hpp"
#include "pipeline/measurement.hpp"

namespace uwp::des {

class DesSessionSource final : public pipeline::MeasurementModel {
 public:
  // Same construction contract as DesScenario (cfg.rounds is ignored — the
  // fleet decides the session's lifetime). The mobility model is shared,
  // not owned. Non-movable: the medium, nodes and hooks hold pointers into
  // each other, so fleet arenas keep it behind a unique_ptr.
  DesSessionSource(DesScenarioConfig cfg, std::shared_ptr<const MobilityModel> mobility,
                   std::vector<audio::AudioTimingConfig> audio, Matrix connectivity);

  DesSessionSource(const DesSessionSource&) = delete;
  DesSessionSource& operator=(const DesSessionSource&) = delete;

  std::size_t size() const override { return nodes_.size(); }
  std::size_t rounds_run() const { return front_end_->rounds_run(); }
  double round_period_s() const { return period_; }
  const MediumStats& medium_stats() const { return medium_->stats(); }

  // Run one full slot-schedule round of the packet simulation and assemble
  // its measurement. The rng drives per-packet arrival errors (in event
  // order), sensor noise and votes — exactly DesScenario's draw order.
  void measure(pipeline::RoundMeasurement& out, uwp::Rng& rng) override;

 private:
  DesScenarioConfig cfg_;
  std::shared_ptr<const MobilityModel> mobility_;
  std::vector<audio::AudioTimingConfig> audio_;
  Matrix connectivity_;
  double period_ = 0.0;
  Simulator sim_;
  std::unique_ptr<AcousticMedium> medium_;
  std::vector<ProtocolNode> nodes_;
  std::unique_ptr<DesFrontEnd> front_end_;
  uwp::Rng* round_rng_ = nullptr;  // valid only inside measure()
};

}  // namespace uwp::des
