// Deterministic discrete-event scheduler, the spine of the packet-level
// network simulator (ns-3 style). Events fire in (time, insertion order):
// monotonic simulated time with stable FIFO tie-breaking, so a run is a pure
// function of its inputs — the same scenario and seed replay bit-identically
// regardless of host, wall-clock, or how many sweep threads run *other*
// trials concurrently (a Simulator itself is single-threaded by design).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace uwp::des {

using EventFn = std::function<void()>;

// Min-heap of (time, seq) -> callback. Exposed separately from Simulator so
// tests can exercise the ordering contract directly.
class EventQueue {
 public:
  struct Entry {
    double time_s = 0.0;
    std::uint64_t seq = 0;  // insertion order, the tie-breaker
    EventFn fn;
  };

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  double next_time() const;  // throws std::logic_error when empty

  void push(double time_s, EventFn fn);
  Entry pop();  // throws std::logic_error when empty
  void clear();

 private:
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time_s != b.time_s) return a.time_s > b.time_s;
      return a.seq > b.seq;
    }
  };
  // Hand-managed heap (std::push_heap/pop_heap) instead of priority_queue:
  // pop() can then MOVE the entry (and its closure) out instead of copying
  // from the const top() — one less allocation per event on the hot path.
  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
};

// Event loop with a current simulated time. Scheduling into the past throws:
// causality violations are always scenario bugs, never something to clamp.
class Simulator {
 public:
  double now() const { return now_; }
  std::size_t processed() const { return processed_; }
  std::size_t pending() const { return queue_.size(); }

  // Schedule `fn` at absolute time / after a delay (>= now, >= 0).
  void at(double time_s, EventFn fn);
  void in(double delay_s, EventFn fn);

  // Run until the queue drains (or stop()). Returns events processed.
  std::size_t run();
  // Process every event with time <= t, then advance now to t. Events
  // scheduled beyond t stay queued for the next call.
  std::size_t run_until(double t_s);
  // Makes run()/run_until() return after the current event completes.
  void stop() { stopped_ = true; }

 private:
  EventQueue queue_;
  double now_ = 0.0;
  std::size_t processed_ = 0;
  bool stopped_ = false;
};

}  // namespace uwp::des
