// Node mobility for the discrete-event simulator. Positions are pure
// functions of simulated time, sampled by the medium at each transmission —
// so nodes move *during* a protocol round (the closed-form protocol model
// can only move them between rounds). The three models mirror the paper's
// evaluation: static testbeds (Fig 17/18), the 1D back-and-forth pole ride
// (Fig 15), and 2D oscillation around a nominal spot (Fig 20).
#pragma once

#include <cstddef>
#include <vector>

#include "util/geometry.hpp"

namespace uwp::des {

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;
  virtual std::size_t size() const = 0;
  // Position of `node` at simulated time `t_s` (z = depth, meters).
  virtual Vec3 position(std::size_t node, double t_s) const = 0;
};

// Fixed positions for all nodes.
class StaticMobility : public MobilityModel {
 public:
  explicit StaticMobility(std::vector<Vec3> positions);
  std::size_t size() const override { return positions_.size(); }
  Vec3 position(std::size_t node, double t_s) const override;

 private:
  std::vector<Vec3> positions_;
};

// Triangle-wave sweep along a fixed axis: the node rides from `origin` to
// origin + direction * span and back at constant speed (Fig 15's extension
// pole parallel to the coast). Nodes without a track stay at their origin.
struct LawnmowerTrack {
  Vec3 direction{1.0, 0.0, 0.0};  // normalized internally
  double span_m = 15.0;
  double speed_mps = 0.32;
  double phase_s = 0.0;  // time offset into the sweep
};

class LawnmowerMobility : public MobilityModel {
 public:
  explicit LawnmowerMobility(std::vector<Vec3> origins);
  void set_track(std::size_t node, LawnmowerTrack track);
  std::size_t size() const override { return origins_.size(); }
  Vec3 position(std::size_t node, double t_s) const override;

 private:
  std::vector<Vec3> origins_;
  std::vector<LawnmowerTrack> tracks_;
  std::vector<char> has_track_;
};

// Piecewise-linear waypoint tour at constant speed, looping back to the
// first waypoint (Fig 20's oscillation is a 2-waypoint loop). Nodes without
// waypoints stay at their origin.
struct WaypointTrack {
  std::vector<Vec3> waypoints;  // >= 2 points
  double speed_mps = 0.3;
};

class WaypointMobility : public MobilityModel {
 public:
  explicit WaypointMobility(std::vector<Vec3> origins);
  void set_track(std::size_t node, WaypointTrack track);
  std::size_t size() const override { return origins_.size(); }
  Vec3 position(std::size_t node, double t_s) const override;

 private:
  // Tour geometry is fixed per track, and position() sits on the medium's
  // per-packet hot path — segment lengths are precomputed in set_track.
  struct CompiledTrack {
    WaypointTrack track;
    std::vector<double> seg_len;
    double total_len = 0.0;
  };
  std::vector<Vec3> origins_;
  std::vector<CompiledTrack> tracks_;
};

}  // namespace uwp::des
