#include "des/event_queue.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace uwp::des {

double EventQueue::next_time() const {
  if (heap_.empty()) throw std::logic_error("EventQueue: next_time on empty queue");
  return heap_.front().time_s;
}

void EventQueue::push(double time_s, EventFn fn) {
  if (!std::isfinite(time_s))
    throw std::invalid_argument("EventQueue: non-finite event time");
  heap_.push_back(Entry{time_s, next_seq_++, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

EventQueue::Entry EventQueue::pop() {
  if (heap_.empty()) throw std::logic_error("EventQueue: pop on empty queue");
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  return e;
}

void EventQueue::clear() {
  heap_.clear();
  // seq keeps counting: ordering stays stable across rounds that reuse the
  // queue, which is what makes multi-round runs replayable.
}

void Simulator::at(double time_s, EventFn fn) {
  if (time_s < now_)
    throw std::invalid_argument("Simulator: scheduling into the past");
  queue_.push(time_s, std::move(fn));
}

void Simulator::in(double delay_s, EventFn fn) {
  if (delay_s < 0.0)
    throw std::invalid_argument("Simulator: negative delay");
  queue_.push(now_ + delay_s, std::move(fn));
}

std::size_t Simulator::run() {
  stopped_ = false;
  std::size_t n = 0;
  while (!queue_.empty() && !stopped_) {
    EventQueue::Entry e = queue_.pop();
    now_ = e.time_s;
    ++n;
    ++processed_;
    e.fn();
  }
  return n;
}

std::size_t Simulator::run_until(double t_s) {
  if (t_s < now_)
    throw std::invalid_argument("Simulator: run_until into the past");
  stopped_ = false;
  std::size_t n = 0;
  while (!queue_.empty() && !stopped_ && queue_.next_time() <= t_s) {
    EventQueue::Entry e = queue_.pop();
    now_ = e.time_s;
    ++n;
    ++processed_;
    e.fn();
  }
  if (!stopped_) now_ = t_s;
  return n;
}

}  // namespace uwp::des
