#include "des/protocol_node.hpp"

#include <cmath>
#include <stdexcept>

namespace uwp::des {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr std::size_t kNoSync = std::numeric_limits<std::size_t>::max();
}  // namespace

ProtocolNode::ProtocolNode(std::size_t id, proto::ProtocolConfig cfg,
                           const audio::AudioTimingConfig& audio, Simulator* sim,
                           AcousticMedium* medium)
    : id_(id), cfg_(cfg), audio_cfg_(audio), audio_(audio), sim_(sim),
      medium_(medium) {
  if (sim_ == nullptr || medium_ == nullptr)
    throw std::invalid_argument("ProtocolNode: null simulator/medium");
  if (id_ >= cfg_.num_devices)
    throw std::invalid_argument("ProtocolNode: id out of range");
  audio_.calibrate();
}

void ProtocolNode::begin_round(double round_start_global_s) {
  ++round_gen_;
  state_ = {};
  state_.timestamps.assign(cfg_.num_devices, kNaN);
  state_.heard.assign(cfg_.num_devices, 0);

  if (id_ != 0) return;
  // The leader opens the round; its transmit instant is its local zero, so
  // T^0_0 = 0 by definition (as in the closed form).
  const std::uint64_t gen = round_gen_;
  sim_->at(round_start_global_s, [this, gen, round_start_global_s] {
    if (gen != round_gen_) return;
    state_.sync_ref = 0;
    state_.local_zero_global_s = round_start_global_s;
    state_.sched_local_s = 0.0;
    state_.tx_global_s = round_start_global_s;
    state_.timestamps[0] = 0.0;
    state_.heard[0] = 1;
    state_.transmitted = true;
    medium_->transmit(0);
  });
}

void ProtocolNode::on_packet(std::size_t src, double detected_time_s) {
  if (src >= cfg_.num_devices)
    throw std::invalid_argument("ProtocolNode: bad packet source");
  if (id_ == 0) {
    // The leader is synced to itself from the moment it transmits; packets
    // arriving before that (impossible in the protocol) are dropped.
    if (state_.sync_ref != 0) return;
    record_timestamp(src, detected_time_s);
    return;
  }
  if (state_.sync_ref == kNoSync) synchronize(src, detected_time_s);
  record_timestamp(src, detected_time_s);
}

void ProtocolNode::synchronize(std::size_t src, double detected_time_s) {
  // The first detected packet defines the local clock zero. Unlike the
  // closed form — which gives up on a device whose first-arriving message
  // failed detection — the state machine simply syncs to the next packet
  // it manages to detect, which is what firmware would do.
  state_.sync_ref = src;
  state_.local_zero_global_s = detected_time_s;
  state_.sched_local_s = src == 0
                             ? proto::slot_time_leader_sync(cfg_, id_)
                             : proto::slot_time_relay_sync(cfg_, id_, src, 0.0);

  // Audio scheduling per Appendix Eqs. 2-6: detect at mic index m2, write
  // the reply at speaker index n2; skews and offsets move the realized
  // emission off the ideal slot time. Identical arithmetic to the closed
  // form, so cross-validation is exact up to sample quantization.
  const double m2_exact = audio_.mic_clock().index_at(detected_time_s);
  const std::int64_t m2 = static_cast<std::int64_t>(std::llround(m2_exact));
  const std::int64_t n2 = audio_.reply_index_for(m2, state_.sched_local_s);
  const double emit_global = audio_.speaker_clock().time_at(static_cast<double>(n2));
  state_.tx_global_s = emit_global;
  state_.timestamps[id_] = state_.sched_local_s;
  state_.heard[id_] = 1;

  const std::uint64_t gen = round_gen_;
  // Guard against pathological configs (slot shorter than a packet) where
  // the realized emission lands before "now"; physically the device would
  // start late, so clamp rather than violate causality.
  sim_->at(std::max(emit_global, sim_->now()), [this, gen] {
    if (gen != round_gen_) return;
    state_.transmitted = true;
    medium_->transmit(id_);
  });
}

void ProtocolNode::record_timestamp(std::size_t src, double detected_time_s) {
  if (std::isnan(state_.local_zero_global_s)) return;
  // Local mic-clock reading of the detection instant, exactly as the closed
  // form computes it: elapsed global time scaled by the mic skew, then
  // quantized to the microphone sample grid.
  double local = (detected_time_s - state_.local_zero_global_s) *
                 (1.0 + audio_cfg_.mic_skew_ppm * 1e-6);
  local = std::round(local * cfg_.fs_hz) / cfg_.fs_hz;
  state_.timestamps[src] = local;
  state_.heard[src] = 1;
}

}  // namespace uwp::des
