// Event-driven per-node state machine for the §2.3 timestamp protocol,
// replacing the closed-form fixed-point relaxation in
// proto::TimestampProtocol::run with what a device actually does: wait for
// the first packet it can detect, synchronize its local clock zero to that
// arrival, schedule its own transmission through its (skewed, offset)
// audio pipeline via proto::slot_schedule — leader sync, relay sync, or the
// wrap-around slot — and log a local receive timestamp for every packet it
// hears. Timestamp arithmetic deliberately mirrors TimestampProtocol::run
// line for line so a collision-free static DES round cross-validates
// against the closed form within payload quantization.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "audio/device_audio.hpp"
#include "des/event_queue.hpp"
#include "des/medium.hpp"
#include "proto/slot_schedule.hpp"

namespace uwp::des {

struct NodeRoundState {
  bool transmitted = false;
  // Device this node synchronized against (0 = leader, SIZE_MAX = never
  // synced this round). Matches proto::ProtocolRun::sync_ref.
  std::size_t sync_ref = std::numeric_limits<std::size_t>::max();
  double local_zero_global_s = std::numeric_limits<double>::quiet_NaN();
  double sched_local_s = std::numeric_limits<double>::quiet_NaN();  // own T^i_i
  double tx_global_s = std::numeric_limits<double>::quiet_NaN();
  // Local receive timestamps T^i_j (NaN = not heard), heard flags.
  std::vector<double> timestamps;
  std::vector<char> heard;
};

class ProtocolNode {
 public:
  // The simulator and medium must outlive the node. The audio pipeline is
  // calibrated once at construction (the paper's self-loopback step).
  ProtocolNode(std::size_t id, proto::ProtocolConfig cfg,
               const audio::AudioTimingConfig& audio, Simulator* sim,
               AcousticMedium* medium);

  std::size_t id() const { return id_; }
  const NodeRoundState& state() const { return state_; }

  // Reset per-round state. The leader (id 0) schedules its round-opening
  // transmission at `round_start_global_s`; everyone else arms and waits.
  void begin_round(double round_start_global_s);

  // Clean detected packet from the medium (detected_time_s = true arrival +
  // link error, global clock). First detection triggers synchronization.
  void on_packet(std::size_t src, double detected_time_s);

 private:
  void record_timestamp(std::size_t src, double detected_time_s);
  void synchronize(std::size_t src, double detected_time_s);

  std::size_t id_;
  proto::ProtocolConfig cfg_;
  audio::AudioTimingConfig audio_cfg_;
  audio::DeviceAudio audio_;
  Simulator* sim_;
  AcousticMedium* medium_;
  NodeRoundState state_;
  std::uint64_t round_gen_ = 0;  // invalidates queued tx events of old rounds
};

}  // namespace uwp::des
