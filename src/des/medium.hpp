// Shared acoustic medium for the discrete-event simulator. Transmissions
// fan out to every connected receiver with a per-link propagation delay
// computed from the nodes' *current* (mobility-sampled) positions and the
// water's sound speed. The medium models two effects the closed-form
// protocol round cannot express:
//
//   * half-duplex — a node that is transmitting cannot hear anything; a
//     packet overlapping the receiver's own transmission is lost;
//   * collisions — two receptions overlapping in time at the same receiver
//     corrupt each other; neither is delivered.
//
// Clean receptions pass through the injectable arrival-error hook (the same
// contract as proto::ArrivalError: signed seconds added to the detected
// arrival, NaN = detection failure) before the destination node's protocol
// state machine sees them. Every event is optionally mirrored into a
// sim::PacketTrace CSV row for offline debugging.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "des/event_queue.hpp"
#include "des/mobility.hpp"
#include "sim/trace.hpp"
#include "util/matrix.hpp"

namespace uwp::des {

// Detected packet handed to a node: `detected_time_s` is the true arrival
// plus the link's arrival error, in global simulated time.
using PacketSink =
    std::function<void(std::size_t rx, std::size_t src, double detected_time_s)>;

// Arrival-error hook, called once per clean reception (see proto::ArrivalError).
using LinkErrorFn = std::function<double(std::size_t at, std::size_t from)>;

struct MediumConfig {
  double sound_speed_mps = 1500.0;
  double packet_duration_s = 0.278;  // ProtocolConfig::t_packet_s
  // Links with a true range beyond this are silently out of reach (0 = no
  // range limit). Evaluated per transmission, so mobility can break and
  // re-form links mid-round.
  double max_range_m = 0.0;
};

struct MediumStats {
  std::size_t transmissions = 0;
  std::size_t deliveries = 0;
  std::size_t collisions = 0;        // receptions corrupted by overlap
  std::size_t half_duplex_drops = 0;
  std::size_t detect_failures = 0;
  double last_activity_s = 0.0;      // latest packet-end time seen
};

class AcousticMedium {
 public:
  // `connectivity(rx, tx) > 0` gates each directed link on top of the range
  // limit. The mobility model and simulator must outlive the medium.
  AcousticMedium(MediumConfig cfg, Simulator* sim, const MobilityModel* mobility,
                 Matrix connectivity);

  void set_sink(PacketSink sink) { sink_ = std::move(sink); }
  void set_error_hook(LinkErrorFn err) { err_ = std::move(err); }
  void set_trace(sim::PacketTrace* trace) { trace_ = trace; }

  // Start a transmission from `src` at the current simulated time. Arrival
  // events at every reachable receiver are scheduled immediately (the
  // propagation delay is frozen at emission, a safe approximation while
  // nodes move at cm/s and sound at km/s).
  void transmit(std::size_t src);

  // Reset per-round bookkeeping (active receptions, own-transmission
  // intervals, per-round stats). Stale in-flight events from a previous
  // round are invalidated by a generation counter, not by queue surgery.
  void begin_round(std::size_t round_index);

  const MediumStats& stats() const { return stats_; }
  std::size_t size() const { return connectivity_.rows(); }

 private:
  struct Reception {
    std::size_t src = 0;
    double start_s = 0.0;
    double end_s = 0.0;
    bool collided = false;
  };

  void on_arrival_start(std::size_t rx, std::size_t slot);
  void on_arrival_end(std::size_t rx, std::size_t slot);
  bool overlaps_own_tx(std::size_t rx, double start_s, double end_s) const;

  MediumConfig cfg_;
  Simulator* sim_;
  const MobilityModel* mobility_;
  Matrix connectivity_;
  PacketSink sink_;
  LinkErrorFn err_;
  sim::PacketTrace* trace_ = nullptr;

  // receptions_[rx] holds this round's receptions (slots referenced by the
  // scheduled events); active_[rx] indexes the ones currently in the air.
  std::vector<std::vector<Reception>> receptions_;
  std::vector<std::vector<std::size_t>> active_;
  std::vector<std::vector<std::pair<double, double>>> tx_intervals_;
  MediumStats stats_;
  std::uint64_t generation_ = 0;
};

}  // namespace uwp::des
