// Multi-round packet-level scenario driver: the DES counterpart of
// sim::ScenarioRunner. Each round the leader opens the slot schedule on the
// shared AcousticMedium, the ProtocolNode state machines produce a local
// timestamp table exactly as firmware would, and DesFrontEnd — the DES
// implementation of pipeline::MeasurementModel — assembles it (plus depths,
// pointing, and flip votes) into a pipeline::RoundMeasurement consumed by
// the shared pipeline::RoundPipeline (quantize -> proto::RangingSolver ->
// core::Localizer -> core::GroupTracker -> error metrics). What this adds
// over the closed form: many rounds, motion *during* a round, half-duplex/
// collision losses, range-gated links, and packet loss that unfolds over
// time.
//
// Determinism: a run consumes only its caller's uwp::Rng (arrival errors,
// sensor noise, votes, localizer) in event order, which the scheduler makes
// stable — so a DesScenario trial inside sim::SweepRunner is bit-identical
// at any thread count.
#pragma once

#include <memory>
#include <vector>

#include "core/localizer.hpp"
#include "core/tracker.hpp"
#include "des/medium.hpp"
#include "des/mobility.hpp"
#include "des/protocol_node.hpp"
#include "pipeline/arrival_error.hpp"
#include "pipeline/measurement.hpp"
#include "proto/ranging_solver.hpp"
#include "sensors/depth_sensor_model.hpp"
#include "sensors/pointing_model.hpp"
#include "sim/trace.hpp"

namespace uwp::des {

struct DesScenarioConfig {
  proto::ProtocolConfig protocol{};  // num_devices must equal node count
  std::size_t rounds = 10;
  // Gap between round starts; 0 = auto (worst-case relay round trip plus a
  // packet and a settling margin, so rounds never overlap).
  double round_period_s = 0.0;
  double max_range_m = 0.0;  // medium range gate (0 = connectivity only)

  // Fast per-packet arrival-error model (the same calibrated Gaussian
  // sim::RoundOptions uses in fast mode; sigma grows with range).
  // ideal_arrivals disables it entirely — the cross-validation setting.
  bool ideal_arrivals = false;
  pipeline::ArrivalErrorModel arrival{};

  bool quantize_payload = true;
  // Leader-side configured sound speed offset (§2 misestimation error).
  double sound_speed_error_mps = 22.0;

  sensors::DepthSensorModel depth_sensor =
      sensors::DepthSensorModel::phone_pressure_in_pouch();
  sensors::PointingModel pointing{};
  core::LocalizerOptions localizer{};
  core::TrackerConfig tracker{};
};

struct DesRound {
  std::size_t index = 0;
  double t_start_s = 0.0;
  proto::ProtocolRun protocol;  // the round's timestamp table
  proto::RangingSolution ranging;
  bool localized = false;
  core::LocalizationResult localization;
  // Ground truth (leader-origin frame) sampled at the round start.
  std::vector<Vec2> truth_xy;
  // Per-device horizontal errors; NaN when unavailable (leader entry 0).
  std::vector<double> error_2d;
  std::vector<double> tracked_error_2d;
  MediumStats medium;  // per-round packet accounting
};

struct DesScenarioResult {
  std::vector<DesRound> rounds;
  std::size_t localized_rounds = 0;
  std::size_t total_collisions = 0;
  std::size_t total_half_duplex_drops = 0;
  std::size_t total_deliveries = 0;
  // All finite per-device errors flattened in round order — ready for
  // sim::metrics / SweepRunner aggregation.
  std::vector<double> errors;
  std::vector<double> tracked_errors;
};

// The packet-level front-end: each measure() call runs one slot-schedule
// round of the ProtocolNode state machines on the shared AcousticMedium and
// assembles the resulting timestamp table, depth readings, leader pointing,
// and fast-model flip votes. Holds references only — the simulator, medium,
// nodes, and mobility must outlive it.
class DesFrontEnd final : public pipeline::MeasurementModel {
 public:
  DesFrontEnd(const DesScenarioConfig& cfg, Simulator& sim, AcousticMedium& medium,
              std::vector<ProtocolNode>& nodes, const MobilityModel& mobility,
              double round_period_s);

  std::size_t size() const override { return nodes_.size(); }
  std::size_t rounds_run() const { return round_; }

  void measure(pipeline::RoundMeasurement& out, uwp::Rng& rng) override;

 private:
  const DesScenarioConfig& cfg_;
  Simulator& sim_;
  AcousticMedium& medium_;
  std::vector<ProtocolNode>& nodes_;
  const MobilityModel& mobility_;
  double period_;
  std::size_t round_ = 0;
};

class DesScenario {
 public:
  // `audio[i]` is node i's clock model; `connectivity(rx, tx) > 0` gates
  // links (pass Matrix(n, n, 1.0) and a max_range_m for pure range gating —
  // the diagonal is ignored). The mobility model defines node count and is
  // shared, not owned.
  DesScenario(DesScenarioConfig cfg, std::shared_ptr<const MobilityModel> mobility,
              std::vector<audio::AudioTimingConfig> audio, Matrix connectivity);

  const DesScenarioConfig& config() const { return cfg_; }
  std::size_t size() const { return audio_.size(); }
  double round_period_s() const;

  // Run all rounds. Thread-safe for concurrent calls with distinct Rngs
  // (all mutable state lives on the stack). `trace`, when given, receives
  // every packet event of this run (serial use only).
  DesScenarioResult run(uwp::Rng& rng, sim::PacketTrace* trace = nullptr) const;

 private:
  DesScenarioConfig cfg_;
  std::shared_ptr<const MobilityModel> mobility_;
  std::vector<audio::AudioTimingConfig> audio_;
  Matrix connectivity_;
};

}  // namespace uwp::des
