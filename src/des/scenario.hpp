// Multi-round packet-level scenario driver: the DES counterpart of
// sim::ScenarioRunner. Each round the leader opens the slot schedule on the
// shared AcousticMedium, the ProtocolNode state machines produce a local
// timestamp table exactly as firmware would, and the round's table flows
// through the existing leader-side chain — proto::quantize_run_payload ->
// proto::RangingSolver -> core::Localizer -> core::GroupTracker — with
// per-round error metrics against the mobility model's ground truth. What
// this adds over the closed form: many rounds, motion *during* a round,
// half-duplex/collision losses, range-gated links, and packet loss that
// unfolds over time.
//
// Determinism: a run consumes only its caller's uwp::Rng (arrival errors,
// sensor noise, votes, localizer) in event order, which the scheduler makes
// stable — so a DesScenario trial inside sim::SweepRunner is bit-identical
// at any thread count.
#pragma once

#include <memory>
#include <vector>

#include "core/localizer.hpp"
#include "core/tracker.hpp"
#include "des/medium.hpp"
#include "des/mobility.hpp"
#include "des/protocol_node.hpp"
#include "proto/ranging_solver.hpp"
#include "sensors/depth_sensor_model.hpp"
#include "sensors/pointing_model.hpp"
#include "sim/trace.hpp"

namespace uwp::des {

struct DesScenarioConfig {
  proto::ProtocolConfig protocol{};  // num_devices must equal node count
  std::size_t rounds = 10;
  // Gap between round starts; 0 = auto (worst-case relay round trip plus a
  // packet and a settling margin, so rounds never overlap).
  double round_period_s = 0.0;
  double max_range_m = 0.0;  // medium range gate (0 = connectivity only)

  // Fast per-packet arrival-error model (same shape as the calibrated
  // Gaussian in sim::RoundOptions fast mode; sigma grows with range).
  // ideal_arrivals disables it entirely — the cross-validation setting.
  bool ideal_arrivals = false;
  double error_sigma_m = 0.30;
  double error_sigma_per_m = 0.008;
  double detection_failure_prob = 0.01;

  bool quantize_payload = true;
  // Leader-side configured sound speed offset (§2 misestimation error).
  double sound_speed_error_mps = 22.0;

  sensors::DepthSensorModel depth_sensor =
      sensors::DepthSensorModel::phone_pressure_in_pouch();
  sensors::PointingModel pointing{};
  core::LocalizerOptions localizer{};
  core::TrackerConfig tracker{};
};

struct DesRound {
  std::size_t index = 0;
  double t_start_s = 0.0;
  proto::ProtocolRun protocol;  // the round's timestamp table
  proto::RangingSolution ranging;
  bool localized = false;
  core::LocalizationResult localization;
  // Ground truth (leader-origin frame) sampled at the round start.
  std::vector<Vec2> truth_xy;
  // Per-device horizontal errors; NaN when unavailable (leader entry 0).
  std::vector<double> error_2d;
  std::vector<double> tracked_error_2d;
  MediumStats medium;  // per-round packet accounting
};

struct DesScenarioResult {
  std::vector<DesRound> rounds;
  std::size_t localized_rounds = 0;
  std::size_t total_collisions = 0;
  std::size_t total_half_duplex_drops = 0;
  std::size_t total_deliveries = 0;
  // All finite per-device errors flattened in round order — ready for
  // sim::metrics / SweepRunner aggregation.
  std::vector<double> errors;
  std::vector<double> tracked_errors;
};

class DesScenario {
 public:
  // `audio[i]` is node i's clock model; `connectivity(rx, tx) > 0` gates
  // links (pass Matrix(n, n, 1.0) and a max_range_m for pure range gating —
  // the diagonal is ignored). The mobility model defines node count and is
  // shared, not owned.
  DesScenario(DesScenarioConfig cfg, std::shared_ptr<const MobilityModel> mobility,
              std::vector<audio::AudioTimingConfig> audio, Matrix connectivity);

  const DesScenarioConfig& config() const { return cfg_; }
  std::size_t size() const { return audio_.size(); }
  double round_period_s() const;

  // Run all rounds. Thread-safe for concurrent calls with distinct Rngs
  // (all mutable state lives on the stack). `trace`, when given, receives
  // every packet event of this run (serial use only).
  DesScenarioResult run(uwp::Rng& rng, sim::PacketTrace* trace = nullptr) const;

 private:
  DesScenarioConfig cfg_;
  std::shared_ptr<const MobilityModel> mobility_;
  std::vector<audio::AudioTimingConfig> audio_;
  Matrix connectivity_;
};

}  // namespace uwp::des
