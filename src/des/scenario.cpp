#include "des/scenario.hpp"

#include <cmath>
#include <optional>
#include <stdexcept>

#include "pipeline/round_pipeline.hpp"

namespace uwp::des {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}

DesScenario::DesScenario(DesScenarioConfig cfg,
                         std::shared_ptr<const MobilityModel> mobility,
                         std::vector<audio::AudioTimingConfig> audio,
                         Matrix connectivity)
    : cfg_(cfg),
      mobility_(std::move(mobility)),
      audio_(std::move(audio)),
      connectivity_(std::move(connectivity)) {
  if (!mobility_) throw std::invalid_argument("DesScenario: null mobility");
  const std::size_t n = mobility_->size();
  if (n < 2) throw std::invalid_argument("DesScenario: need >= 2 nodes");
  if (audio_.size() != n)
    throw std::invalid_argument("DesScenario: audio config count != node count");
  if (cfg_.protocol.num_devices != n)
    throw std::invalid_argument("DesScenario: protocol.num_devices != node count");
  if (connectivity_.rows() != n || connectivity_.cols() != n)
    throw std::invalid_argument("DesScenario: connectivity shape mismatch");
  if (cfg_.rounds == 0) throw std::invalid_argument("DesScenario: rounds == 0");
}

double DesScenario::round_period_s() const {
  if (cfg_.round_period_s > 0.0) return cfg_.round_period_s;
  // Even a wrap-around relay slot has landed by the worst-case round trip;
  // one packet length covers the tail transmission, the margin covers
  // propagation and audio scheduling slop.
  return proto::round_trip_worst_case(cfg_.protocol) + 2.0 * cfg_.protocol.t_packet_s +
         1.0;
}

DesFrontEnd::DesFrontEnd(const DesScenarioConfig& cfg, Simulator& sim,
                         AcousticMedium& medium, std::vector<ProtocolNode>& nodes,
                         const MobilityModel& mobility, double round_period_s)
    : cfg_(cfg),
      sim_(sim),
      medium_(medium),
      nodes_(nodes),
      mobility_(mobility),
      period_(round_period_s) {}

void DesFrontEnd::measure(pipeline::RoundMeasurement& out, uwp::Rng& rng) {
  const std::size_t n = nodes_.size();
  const double t0 = static_cast<double>(round_) * period_;
  // Same expression as the next round's t0 — `t0 + period` can differ
  // from it by one ulp, which would put the next leader event "in the
  // past" after run_until() advanced the clock.
  const double t_end = static_cast<double>(round_ + 1) * period_;
  medium_.begin_round(round_);
  for (ProtocolNode& node : nodes_) node.begin_round(t0);
  sim_.run_until(t_end);

  // Assemble the round's timestamp table from the per-node state machines.
  out.protocol.timestamps.assign(n, n, kNaN);
  out.protocol.heard.assign(n, n, 0.0);
  out.protocol.sync_ref.assign(n, std::numeric_limits<std::size_t>::max());
  out.protocol.tx_global.assign(n, kNaN);
  for (std::size_t i = 0; i < n; ++i) {
    const NodeRoundState& st = nodes_[i].state();
    out.protocol.sync_ref[i] = st.sync_ref;
    // Round-local transmit time, comparable to the closed form's
    // leader-at-zero convention.
    out.protocol.tx_global[i] =
        std::isnan(st.tx_global_s) ? kNaN : st.tx_global_s - t0;
    for (std::size_t j = 0; j < n; ++j) {
      if (!st.heard[j]) continue;
      out.protocol.timestamps(i, j) = st.timestamps[j];
      out.protocol.heard(i, j) = 1.0;
    }
  }
  out.protocol.round_duration_s =
      std::max(0.0, medium_.stats().last_activity_s - t0);

  // Ground truth at the round start (the paper evaluates each round as an
  // independent snapshot; a mover's intra-round drift becomes error).
  const Vec3 leader_pos = mobility_.position(0, t0);
  out.truth_pos.resize(n);
  out.truth_xy.resize(n);
  out.truth_depths.resize(n);
  out.depths.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 pos = mobility_.position(i, t0);
    out.truth_pos[i] = pos;
    out.truth_xy[i] = (pos - leader_pos).xy();
    out.truth_depths[i] = pos.z;
    out.depths[i] = cfg_.depth_sensor.read(pos.z, rng);
  }

  // Leader pointing toward node 1 plus fast-mode dual-mic flip votes
  // (the same reliability model sim::ScenarioRunner fast mode uses).
  const Vec2 to_dev1 = out.truth_xy[1];
  out.pointing_bearing_rad =
      cfg_.pointing.point(bearing(to_dev1), to_dev1.norm(), rng);
  out.votes.clear();
  for (std::size_t i = 2; i < n; ++i) {
    if (out.protocol.heard(0, i) <= 0.0) continue;
    const int sign = pipeline::fast_vote_sign(out.truth_xy[i], to_dev1, rng);
    if (sign != 0) out.votes.push_back({i, sign});
  }

  ++round_;
}

DesScenarioResult DesScenario::run(uwp::Rng& rng, sim::PacketTrace* trace) const {
  const std::size_t n = size();
  const double period = round_period_s();

  Simulator sim;
  MediumConfig mc;
  mc.sound_speed_mps = cfg_.protocol.sound_speed_mps;
  mc.packet_duration_s = cfg_.protocol.t_packet_s;
  mc.max_range_m = cfg_.max_range_m;
  AcousticMedium medium(mc, &sim, mobility_.get(), connectivity_);
  medium.set_trace(trace);

  // Arrival detection error, drawn per packet in event order (deterministic
  // given the scheduler's stable ordering). The shared ArrivalErrorModel
  // mirrors sim::ScenarioRunner fast mode.
  if (!cfg_.ideal_arrivals) {
    medium.set_error_hook([this, &rng, &sim](std::size_t at, std::size_t from) {
      const double t = sim.now();
      const double range =
          distance(mobility_->position(at, t), mobility_->position(from, t));
      return cfg_.arrival.sample_seconds(range, cfg_.protocol.sound_speed_mps, rng);
    });
  }

  std::vector<ProtocolNode> nodes;
  nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    nodes.emplace_back(i, cfg_.protocol, audio_[i], &sim, &medium);
  medium.set_sink([&nodes](std::size_t rx, std::size_t src, double detected) {
    nodes[rx].on_packet(src, detected);
  });

  // The shared leader-side chain, with tracking enabled.
  pipeline::PipelineOptions popts;
  popts.protocol = cfg_.protocol;
  popts.quantize_payload = cfg_.quantize_payload;
  popts.sound_speed_error_mps = cfg_.sound_speed_error_mps;
  popts.localizer = cfg_.localizer;
  popts.track = true;
  popts.tracker = cfg_.tracker;
  pipeline::RoundPipeline pipe(popts);

  DesFrontEnd front_end(cfg_, sim, medium, nodes, *mobility_, period);
  pipeline::RoundMeasurement meas;

  DesScenarioResult out;
  out.rounds.reserve(cfg_.rounds);

  for (std::size_t r = 0; r < cfg_.rounds; ++r) {
    front_end.measure(meas, rng);
    const pipeline::RoundOutput& po =
        pipe.run_round(meas, rng, r == 0 ? 0.0 : period);

    DesRound round;
    round.index = r;
    round.t_start_s = static_cast<double>(r) * period;
    round.medium = medium.stats();
    round.protocol = meas.protocol;  // post-quantization leader view
    round.ranging = po.ranging;
    round.localized = po.localized;
    round.localization = po.localization;
    round.truth_xy = meas.truth_xy;
    round.error_2d = po.error_2d;
    round.tracked_error_2d = po.tracked_error_2d;

    for (std::size_t i = 1; i < n; ++i) {
      if (!std::isnan(round.error_2d[i])) out.errors.push_back(round.error_2d[i]);
      if (!std::isnan(round.tracked_error_2d[i]))
        out.tracked_errors.push_back(round.tracked_error_2d[i]);
    }

    out.localized_rounds += round.localized ? 1 : 0;
    out.total_collisions += round.medium.collisions;
    out.total_half_duplex_drops += round.medium.half_duplex_drops;
    out.total_deliveries += round.medium.deliveries;
    out.rounds.push_back(std::move(round));
  }
  return out;
}

}  // namespace uwp::des
