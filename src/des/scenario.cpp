#include "des/scenario.hpp"

#include <cmath>
#include <optional>
#include <stdexcept>

#include "proto/payload_codec.hpp"

namespace uwp::des {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}

DesScenario::DesScenario(DesScenarioConfig cfg,
                         std::shared_ptr<const MobilityModel> mobility,
                         std::vector<audio::AudioTimingConfig> audio,
                         Matrix connectivity)
    : cfg_(cfg),
      mobility_(std::move(mobility)),
      audio_(std::move(audio)),
      connectivity_(std::move(connectivity)) {
  if (!mobility_) throw std::invalid_argument("DesScenario: null mobility");
  const std::size_t n = mobility_->size();
  if (n < 2) throw std::invalid_argument("DesScenario: need >= 2 nodes");
  if (audio_.size() != n)
    throw std::invalid_argument("DesScenario: audio config count != node count");
  if (cfg_.protocol.num_devices != n)
    throw std::invalid_argument("DesScenario: protocol.num_devices != node count");
  if (connectivity_.rows() != n || connectivity_.cols() != n)
    throw std::invalid_argument("DesScenario: connectivity shape mismatch");
  if (cfg_.rounds == 0) throw std::invalid_argument("DesScenario: rounds == 0");
}

double DesScenario::round_period_s() const {
  if (cfg_.round_period_s > 0.0) return cfg_.round_period_s;
  // Even a wrap-around relay slot has landed by the worst-case round trip;
  // one packet length covers the tail transmission, the margin covers
  // propagation and audio scheduling slop.
  return proto::round_trip_worst_case(cfg_.protocol) + 2.0 * cfg_.protocol.t_packet_s +
         1.0;
}

DesScenarioResult DesScenario::run(uwp::Rng& rng, sim::PacketTrace* trace) const {
  const std::size_t n = size();
  const double period = round_period_s();

  Simulator sim;
  MediumConfig mc;
  mc.sound_speed_mps = cfg_.protocol.sound_speed_mps;
  mc.packet_duration_s = cfg_.protocol.t_packet_s;
  mc.max_range_m = cfg_.max_range_m;
  AcousticMedium medium(mc, &sim, mobility_.get(), connectivity_);
  medium.set_trace(trace);

  // Arrival detection error, drawn per packet in event order (deterministic
  // given the scheduler's stable ordering). Mirrors the calibrated fast
  // model in sim::ScenarioRunner::run_round.
  if (!cfg_.ideal_arrivals) {
    medium.set_error_hook([this, &rng, &sim](std::size_t at, std::size_t from) {
      if (rng.bernoulli(cfg_.detection_failure_prob)) return kNaN;
      const double t = sim.now();
      const double range =
          distance(mobility_->position(at, t), mobility_->position(from, t));
      const double sigma_m = cfg_.error_sigma_m + cfg_.error_sigma_per_m * range;
      // Multipath biases arrivals late more often than early.
      const double err_m = std::abs(rng.normal(0.0, sigma_m)) * 0.8 +
                           rng.normal(0.0, sigma_m * 0.3);
      return err_m / cfg_.protocol.sound_speed_mps;
    });
  }

  std::vector<ProtocolNode> nodes;
  nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    nodes.emplace_back(i, cfg_.protocol, audio_[i], &sim, &medium);
  medium.set_sink([&nodes](std::size_t rx, std::size_t src, double detected) {
    nodes[rx].on_packet(src, detected);
  });

  proto::ProtocolConfig solver_cfg = cfg_.protocol;
  solver_cfg.sound_speed_mps += cfg_.sound_speed_error_mps;
  const proto::RangingSolver solver(solver_cfg);
  const core::Localizer localizer(cfg_.localizer);
  core::GroupTracker tracker(n, cfg_.tracker);

  DesScenarioResult out;
  out.rounds.reserve(cfg_.rounds);

  for (std::size_t r = 0; r < cfg_.rounds; ++r) {
    const double t0 = static_cast<double>(r) * period;
    // Same expression as the next round's t0 — `t0 + period` can differ
    // from it by one ulp, which would put the next leader event "in the
    // past" after run_until() advanced the clock.
    const double t_end = static_cast<double>(r + 1) * period;
    medium.begin_round(r);
    for (ProtocolNode& node : nodes) node.begin_round(t0);
    sim.run_until(t_end);

    DesRound round;
    round.index = r;
    round.t_start_s = t0;
    round.medium = medium.stats();

    // Assemble the round's ProtocolRun from the per-node state machines.
    round.protocol.timestamps = Matrix(n, n, kNaN);
    round.protocol.heard = Matrix(n, n, 0.0);
    round.protocol.sync_ref.assign(n, std::numeric_limits<std::size_t>::max());
    round.protocol.tx_global.assign(n, kNaN);
    for (std::size_t i = 0; i < n; ++i) {
      const NodeRoundState& st = nodes[i].state();
      round.protocol.sync_ref[i] = st.sync_ref;
      // Round-local transmit time, comparable to the closed form's
      // leader-at-zero convention.
      round.protocol.tx_global[i] =
          std::isnan(st.tx_global_s) ? kNaN : st.tx_global_s - t0;
      for (std::size_t j = 0; j < n; ++j) {
        if (!st.heard[j]) continue;
        round.protocol.timestamps(i, j) = st.timestamps[j];
        round.protocol.heard(i, j) = 1.0;
      }
    }
    round.protocol.round_duration_s =
        std::max(0.0, round.medium.last_activity_s - t0);

    if (cfg_.quantize_payload) {
      proto::PayloadCodecConfig ccfg;
      ccfg.protocol = cfg_.protocol;
      proto::quantize_run_payload(round.protocol, ccfg);
    }
    round.ranging = solver.solve(round.protocol);

    // Ground truth at the round start (the paper evaluates each round as an
    // independent snapshot; a mover's intra-round drift becomes error).
    const Vec3 leader_pos = mobility_->position(0, t0);
    round.truth_xy.resize(n);
    std::vector<double> depths(n);
    for (std::size_t i = 0; i < n; ++i) {
      const Vec3 pos = mobility_->position(i, t0);
      round.truth_xy[i] = (pos - leader_pos).xy();
      depths[i] = cfg_.depth_sensor.read(pos.z, rng);
    }

    // Leader pointing toward node 1 plus fast-mode dual-mic flip votes
    // (same reliability model as sim::ScenarioRunner fast mode).
    const Vec2 to_dev1 = round.truth_xy[1];
    const double measured_bearing =
        cfg_.pointing.point(bearing(to_dev1), to_dev1.norm(), rng);
    std::vector<core::MicVote> votes;
    for (std::size_t i = 2; i < n; ++i) {
      if (round.protocol.heard(0, i) <= 0.0) continue;
      const double side = side_of_line(round.truth_xy[i], {0, 0}, to_dev1);
      int sign = side > 0 ? 1 : (side < 0 ? -1 : 0);
      const double range = round.truth_xy[i].norm();
      const double sin_angle =
          range > 0.1 ? std::abs(side) / (range * to_dev1.norm()) : 0.0;
      const double p_wrong = sin_angle < 0.17 ? 0.30 : 0.03;  // ~10 degrees
      if (rng.bernoulli(p_wrong)) sign = -sign;
      if (sign != 0) votes.push_back({i, sign});
    }

    core::LocalizationInput input;
    input.distances = round.ranging.distances;
    input.weights = round.ranging.weights;
    input.depths = depths;
    input.pointing_bearing_rad = measured_bearing;
    input.votes = votes;

    round.error_2d.assign(n, kNaN);
    round.tracked_error_2d.assign(n, kNaN);
    round.error_2d[0] = 0.0;
    try {
      round.localization = localizer.localize(input, rng);
      round.localized = true;
    } catch (const std::exception&) {
      round.localized = false;
    }

    // Tracker: coast through failed rounds, fuse successful ones.
    tracker.predict(r == 0 ? 0.0 : period);
    if (round.localized) {
      std::vector<std::optional<Vec2>> update(n);
      for (std::size_t i = 1; i < n; ++i)
        update[i] = round.localization.positions[i].xy();
      tracker.update(update);
    }

    for (std::size_t i = 1; i < n; ++i) {
      if (round.localized) {
        round.error_2d[i] =
            distance(round.localization.positions[i].xy(), round.truth_xy[i]);
        out.errors.push_back(round.error_2d[i]);
      }
      const core::DiverTrack& track = tracker.track(i);
      if (track.initialized()) {
        round.tracked_error_2d[i] = distance(track.position(), round.truth_xy[i]);
        out.tracked_errors.push_back(round.tracked_error_2d[i]);
      }
    }

    out.localized_rounds += round.localized ? 1 : 0;
    out.total_collisions += round.medium.collisions;
    out.total_half_duplex_drops += round.medium.half_duplex_drops;
    out.total_deliveries += round.medium.deliveries;
    out.rounds.push_back(std::move(round));
  }
  return out;
}

}  // namespace uwp::des
