#include "des/session_source.hpp"

#include <stdexcept>

namespace uwp::des {

DesSessionSource::DesSessionSource(DesScenarioConfig cfg,
                                   std::shared_ptr<const MobilityModel> mobility,
                                   std::vector<audio::AudioTimingConfig> audio,
                                   Matrix connectivity)
    : cfg_(cfg),
      mobility_(std::move(mobility)),
      audio_(std::move(audio)),
      connectivity_(std::move(connectivity)) {
  if (!mobility_) throw std::invalid_argument("DesSessionSource: null mobility");
  const std::size_t n = mobility_->size();
  if (n < 2) throw std::invalid_argument("DesSessionSource: need >= 2 nodes");
  if (audio_.size() != n)
    throw std::invalid_argument("DesSessionSource: audio config count != node count");
  if (cfg_.protocol.num_devices != n)
    throw std::invalid_argument("DesSessionSource: protocol.num_devices != node count");
  if (connectivity_.rows() != n || connectivity_.cols() != n)
    throw std::invalid_argument("DesSessionSource: connectivity shape mismatch");

  period_ = cfg_.round_period_s > 0.0
                ? cfg_.round_period_s
                : proto::round_trip_worst_case(cfg_.protocol) +
                      2.0 * cfg_.protocol.t_packet_s + 1.0;

  MediumConfig mc;
  mc.sound_speed_mps = cfg_.protocol.sound_speed_mps;
  mc.packet_duration_s = cfg_.protocol.t_packet_s;
  mc.max_range_m = cfg_.max_range_m;
  medium_ = std::make_unique<AcousticMedium>(mc, &sim_, mobility_.get(), connectivity_);

  // Per-packet arrival error in event order, drawn from whichever rng the
  // current measure() call received.
  if (!cfg_.ideal_arrivals) {
    medium_->set_error_hook([this](std::size_t at, std::size_t from) {
      const double t = sim_.now();
      const double range =
          distance(mobility_->position(at, t), mobility_->position(from, t));
      return cfg_.arrival.sample_seconds(range, cfg_.protocol.sound_speed_mps,
                                         *round_rng_);
    });
  }

  nodes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    nodes_.emplace_back(i, cfg_.protocol, audio_[i], &sim_, medium_.get());
  medium_->set_sink([this](std::size_t rx, std::size_t src, double detected) {
    nodes_[rx].on_packet(src, detected);
  });

  front_end_ = std::make_unique<DesFrontEnd>(cfg_, sim_, *medium_, nodes_, *mobility_,
                                             period_);
}

void DesSessionSource::measure(pipeline::RoundMeasurement& out, uwp::Rng& rng) {
  round_rng_ = &rng;
  front_end_->measure(out, rng);
  round_rng_ = nullptr;
}

}  // namespace uwp::des
