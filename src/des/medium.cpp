#include "des/medium.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace uwp::des {

AcousticMedium::AcousticMedium(MediumConfig cfg, Simulator* sim,
                               const MobilityModel* mobility, Matrix connectivity)
    : cfg_(cfg),
      sim_(sim),
      mobility_(mobility),
      connectivity_(std::move(connectivity)) {
  if (sim_ == nullptr || mobility_ == nullptr)
    throw std::invalid_argument("AcousticMedium: null simulator/mobility");
  const std::size_t n = mobility_->size();
  if (connectivity_.rows() != n || connectivity_.cols() != n)
    throw std::invalid_argument("AcousticMedium: connectivity shape mismatch");
  if (cfg_.sound_speed_mps <= 0.0 || cfg_.packet_duration_s <= 0.0)
    throw std::invalid_argument("AcousticMedium: bad sound speed / packet length");
  receptions_.resize(n);
  active_.resize(n);
  tx_intervals_.resize(n);
}

void AcousticMedium::begin_round(std::size_t round_index) {
  ++generation_;
  for (auto& v : receptions_) v.clear();
  for (auto& v : active_) v.clear();
  for (auto& v : tx_intervals_) v.clear();
  stats_ = {};
  if (trace_ != nullptr) trace_->round = round_index;
}

bool AcousticMedium::overlaps_own_tx(std::size_t rx, double start_s,
                                     double end_s) const {
  for (const auto& [t0, t1] : tx_intervals_[rx])
    if (start_s < t1 && t0 < end_s) return true;
  return false;
}

void AcousticMedium::transmit(std::size_t src) {
  const std::size_t n = size();
  if (src >= n) throw std::invalid_argument("AcousticMedium: bad src id");
  const double now = sim_->now();
  const double tx_end = now + cfg_.packet_duration_s;
  tx_intervals_[src].emplace_back(now, tx_end);
  ++stats_.transmissions;
  stats_.last_activity_s = std::max(stats_.last_activity_s, tx_end);
  if (trace_ != nullptr)
    trace_->add(now, src, src, sim::PacketEventKind::kTxStart, false);

  const Vec3 tx_pos = mobility_->position(src, now);
  const std::uint64_t gen = generation_;
  for (std::size_t rx = 0; rx < n; ++rx) {
    if (rx == src || connectivity_(rx, src) <= 0.0) continue;
    const double range = distance(tx_pos, mobility_->position(rx, now));
    if (cfg_.max_range_m > 0.0 && range > cfg_.max_range_m) continue;
    const double arrival = now + range / cfg_.sound_speed_mps;

    receptions_[rx].push_back(
        {src, arrival, arrival + cfg_.packet_duration_s, false});
    const std::size_t slot = receptions_[rx].size() - 1;
    sim_->at(arrival, [this, rx, slot, gen] {
      if (gen == generation_) on_arrival_start(rx, slot);
    });
    sim_->at(arrival + cfg_.packet_duration_s, [this, rx, slot, gen] {
      if (gen == generation_) on_arrival_end(rx, slot);
    });
  }
}

void AcousticMedium::on_arrival_start(std::size_t rx, std::size_t slot) {
  Reception& rec = receptions_[rx][slot];
  // Any reception still in the air at this receiver overlaps: packets have
  // equal duration, so every overlap pair has one start inside the other.
  for (const std::size_t other : active_[rx]) {
    receptions_[rx][other].collided = true;
    rec.collided = true;
  }
  active_[rx].push_back(slot);
}

void AcousticMedium::on_arrival_end(std::size_t rx, std::size_t slot) {
  const Reception rec = receptions_[rx][slot];
  std::erase(active_[rx], slot);
  stats_.last_activity_s = std::max(stats_.last_activity_s, rec.end_s);

  // Half-duplex beats the collision flag in the trace: the receiver was deaf
  // for the whole packet, so what the air did meanwhile is irrelevant to it.
  if (overlaps_own_tx(rx, rec.start_s, rec.end_s)) {
    ++stats_.half_duplex_drops;
    if (trace_ != nullptr)
      trace_->add(rec.start_s, rec.src, rx,
                  sim::PacketEventKind::kRxHalfDuplexDrop, rec.collided);
    return;
  }
  if (rec.collided) {
    ++stats_.collisions;
    if (trace_ != nullptr)
      trace_->add(rec.start_s, rec.src, rx, sim::PacketEventKind::kRxCollision,
                  true);
    return;
  }
  const double err = err_ ? err_(rx, rec.src) : 0.0;
  if (std::isnan(err)) {
    ++stats_.detect_failures;
    if (trace_ != nullptr)
      trace_->add(rec.start_s, rec.src, rx, sim::PacketEventKind::kRxDetectFail,
                  false);
    return;
  }
  ++stats_.deliveries;
  if (trace_ != nullptr)
    trace_->add(rec.start_s, rec.src, rx, sim::PacketEventKind::kRxDeliver, false);
  if (sink_) sink_(rx, rec.src, rec.start_s + err);
}

}  // namespace uwp::des
