#include "phy/direct_path.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "dsp/correlation.hpp"

namespace uwp::phy {

double channel_noise_floor(std::span<const double> h, std::size_t noise_taps) {
  if (h.empty()) return 0.0;
  const std::size_t n = std::min(noise_taps, h.size());
  double acc = 0.0;
  for (std::size_t i = h.size() - n; i < h.size(); ++i) acc += h[i];
  return acc / static_cast<double>(n);
}

std::vector<std::size_t> candidate_arrival_peaks(std::span<const double> h,
                                                 const DirectPathConfig& cfg) {
  const double w = channel_noise_floor(h, cfg.noise_taps);
  const std::vector<std::size_t> raw = uwp::dsp::find_peaks(h, w + cfg.lambda);
  std::vector<std::size_t> out;
  out.reserve(raw.size());
  for (std::size_t p : raw) {
    double later_max = 0.0;
    const std::size_t end = std::min(p + cfg.sidelobe_guard_hi + 1, h.size());
    for (std::size_t q = p + cfg.sidelobe_guard_lo; q < end; ++q)
      later_max = std::max(later_max, h[q]);
    if (h[p] >= cfg.sidelobe_guard_ratio * later_max) out.push_back(p);
  }
  return out;
}

std::optional<DirectPathResult> find_direct_path_dual(std::span<const double> h1,
                                                      std::span<const double> h2,
                                                      const DirectPathConfig& cfg) {
  if (h1.empty() || h1.size() != h2.size()) return std::nullopt;

  const std::vector<std::size_t> peaks1 = candidate_arrival_peaks(h1, cfg);
  const std::vector<std::size_t> peaks2 = candidate_arrival_peaks(h2, cfg);
  if (peaks1.empty() || peaks2.empty()) return std::nullopt;

  const double max_off = cfg.max_offset_samples();
  std::optional<DirectPathResult> best;
  // Peaks are sorted ascending; the earliest feasible pair minimizes tau.
  for (std::size_t n : peaks1) {
    for (std::size_t m : peaks2) {
      const double off = std::abs(static_cast<double>(n) - static_cast<double>(m));
      if (off > max_off) continue;
      const double tau = (static_cast<double>(n) + static_cast<double>(m)) / 2.0;
      if (!best || tau < best->tau) best = DirectPathResult{tau, n, m};
      break;  // later m only increases tau for this n
    }
    if (best && static_cast<double>(n) > best->tau + max_off) break;
  }
  return best;
}

std::optional<std::size_t> find_direct_path_single(std::span<const double> h,
                                                   const DirectPathConfig& cfg) {
  const std::vector<std::size_t> peaks = candidate_arrival_peaks(h, cfg);
  if (peaks.empty()) return std::nullopt;
  return peaks.front();
}

double refine_peak_parabolic(std::span<const double> h, std::size_t peak) {
  if (peak == 0 || peak + 1 >= h.size()) return static_cast<double>(peak);
  const double y0 = h[peak - 1];
  const double y1 = h[peak];
  const double y2 = h[peak + 1];
  const double denom = y0 - 2.0 * y1 + y2;
  if (std::abs(denom) < 1e-12) return static_cast<double>(peak);
  const double delta = 0.5 * (y0 - y2) / denom;
  return static_cast<double>(peak) + std::clamp(delta, -1.0, 1.0);
}

}  // namespace uwp::phy
