// Coarse preamble synchronization (§2.2.1): normalized cross-correlation
// against the transmit template proposes candidates; the PN-encoded
// auto-correlation across the 4 received OFDM symbols gates out spiky-noise
// false positives (threshold 0.35 in the paper). Spikes rarely replicate the
// 4-symbol PN structure, while true receptions correlate strongly symbol-to-
// symbol because all 4 symbols ride the same multipath.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "phy/ofdm_preamble.hpp"

namespace uwp::phy {

struct DetectionResult {
  std::size_t coarse_index = 0;  // sample where the preamble (first CP) starts
  double xcorr_score = 0.0;      // normalized cross-correlation at the peak
  double autocorr_score = 0.0;   // mean pairwise PN-corrected symbol correlation
};

struct DetectorConfig {
  // Minimum normalized cross-correlation for a candidate. Low on purpose:
  // the autocorrelation stage does the real gating.
  double xcorr_threshold = 0.08;
  // Paper's auto-correlation acceptance threshold.
  double autocorr_threshold = 0.35;
  // How many top cross-correlation candidates to try before giving up.
  std::size_t max_candidates = 5;
  // Candidates closer than this many samples are considered duplicates.
  std::size_t peak_separation = 512;
};

class PreambleDetector {
 public:
  explicit PreambleDetector(const OfdmPreamble& preamble, DetectorConfig cfg = {});

  // Find the preamble in `stream`. Returns nullopt when nothing passes both
  // the cross-correlation and the auto-correlation tests.
  std::optional<DetectionResult> detect(std::span<const double> stream) const;

  // The PN-corrected mean pairwise correlation of the 4 symbol segments
  // starting at `index` (the autocorrelation metric by itself).
  double autocorrelation_score(std::span<const double> stream, std::size_t index) const;

 private:
  const OfdmPreamble& preamble_;
  DetectorConfig cfg_;
};

}  // namespace uwp::phy
