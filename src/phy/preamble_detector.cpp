#include "phy/preamble_detector.hpp"

#include <algorithm>

#include "dsp/correlation.hpp"

namespace uwp::phy {

PreambleDetector::PreambleDetector(const OfdmPreamble& preamble, DetectorConfig cfg)
    : preamble_(preamble), cfg_(cfg) {}

double PreambleDetector::autocorrelation_score(std::span<const double> stream,
                                               std::size_t index) const {
  const PreambleConfig& pc = preamble_.config();
  const std::size_t sym = pc.symbol_len;
  const std::size_t block = pc.cp_len + sym;
  if (index + pc.num_symbols * block > stream.size()) return 0.0;

  // Extract the 4 symbol bodies (skipping CPs) and undo the PN signs.
  std::vector<std::vector<double>> segs(pc.num_symbols);
  for (std::size_t s = 0; s < pc.num_symbols; ++s) {
    segs[s].resize(sym);
    const std::size_t start = index + s * block + pc.cp_len;
    const double sign = static_cast<double>(pc.pn[s]);
    for (std::size_t i = 0; i < sym; ++i) segs[s][i] = sign * stream[start + i];
  }

  // Mean pairwise normalized correlation across all symbol pairs.
  double acc = 0.0;
  std::size_t pairs = 0;
  for (std::size_t a = 0; a < segs.size(); ++a)
    for (std::size_t b = a + 1; b < segs.size(); ++b) {
      acc += uwp::dsp::window_correlation(segs[a], segs[b]);
      ++pairs;
    }
  return pairs > 0 ? acc / static_cast<double>(pairs) : 0.0;
}

std::optional<DetectionResult> PreambleDetector::detect(
    std::span<const double> stream) const {
  const std::vector<double>& tmpl = preamble_.waveform();
  const std::vector<double> corr = uwp::dsp::normalized_cross_correlate(stream, tmpl);
  if (corr.empty()) return std::nullopt;

  // Collect candidate peaks above the xcorr floor, best first, enforcing a
  // separation so we don't test the same event repeatedly.
  std::vector<std::size_t> order(corr.size());
  for (std::size_t i = 0; i < corr.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return corr[a] > corr[b]; });

  std::vector<std::size_t> candidates;
  for (std::size_t idx : order) {
    if (corr[idx] < cfg_.xcorr_threshold) break;
    bool dup = false;
    for (std::size_t c : candidates)
      if (static_cast<std::size_t>(std::abs(static_cast<long long>(c) -
                                            static_cast<long long>(idx))) <
          cfg_.peak_separation)
        dup = true;
    if (dup) continue;
    candidates.push_back(idx);
    if (candidates.size() >= cfg_.max_candidates) break;
  }

  for (std::size_t idx : candidates) {
    const double score = autocorrelation_score(stream, idx);
    if (score >= cfg_.autocorr_threshold)
      return DetectionResult{idx, corr[idx], score};
  }
  return std::nullopt;
}

}  // namespace uwp::phy
