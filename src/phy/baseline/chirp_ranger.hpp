// BeepBeep-style baseline ([75] in the paper): a linear chirp preamble,
// window-based power threshold detection (TH_SD) and cross-correlation peak
// picking with the "earliest strong peak" heuristic. Used as the comparison
// point in Fig 12. Duration and bandwidth match the paper's preamble for a
// fair comparison.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace uwp::phy::baseline {

struct ChirpConfig {
  double fs_hz = 44100.0;
  double f0_hz = 1000.0;
  double f1_hz = 5000.0;
  std::size_t length = 9840;  // match the OFDM preamble duration

  // Detection: sliding short-window power ratio threshold in dB (TH_SD).
  double detect_threshold_db = 3.0;
  std::size_t power_window = 512;

  // Peak picking: accept the earliest correlation peak within this many dB
  // of the global maximum inside a search window before it.
  double peak_margin_db = 6.0;
  std::size_t peak_search_back = 600;
};

class ChirpRanger {
 public:
  explicit ChirpRanger(ChirpConfig cfg);

  const std::vector<double>& waveform() const { return waveform_; }
  const ChirpConfig& config() const { return cfg_; }

  // Window-power detection: true when the ratio of consecutive-window power
  // exceeds the threshold anywhere in the stream.
  bool detect(std::span<const double> stream) const;

  // Arrival sample index via cross-correlation + earliest-strong-peak.
  std::optional<double> estimate_arrival(std::span<const double> stream) const;

 private:
  ChirpConfig cfg_;
  std::vector<double> waveform_;
};

}  // namespace uwp::phy::baseline
