#include "phy/baseline/fmcw_ranger.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "dsp/correlation.hpp"
#include "dsp/fft.hpp"
#include "dsp/filter.hpp"
#include "util/stats.hpp"

namespace uwp::phy::baseline {

FmcwRanger::FmcwRanger(FmcwConfig cfg) : cfg_(cfg) {
  waveform_.resize(cfg_.length);
  const double duration = static_cast<double>(cfg_.length) / cfg_.fs_hz;
  const double k = (cfg_.f1_hz - cfg_.f0_hz) / duration;
  for (std::size_t i = 0; i < cfg_.length; ++i) {
    const double t = static_cast<double>(i) / cfg_.fs_hz;
    waveform_[i] =
        std::sin(2.0 * std::numbers::pi * (cfg_.f0_hz * t + 0.5 * k * t * t));
  }
}

std::vector<double> FmcwRanger::beat_spectrum(std::span<const double> stream,
                                              std::size_t sweep_start) const {
  if (sweep_start + cfg_.length > stream.size()) return {};
  // Mix: multiply received sweep window by the reference sweep.
  std::vector<double> mixed(cfg_.length);
  for (std::size_t i = 0; i < cfg_.length; ++i)
    mixed[i] = stream[sweep_start + i] * waveform_[i];
  // Low-pass to keep only the difference (beat) component. The maximum beat
  // of interest corresponds to ~2000 samples of delay: f = k * tau.
  const double duration = static_cast<double>(cfg_.length) / cfg_.fs_hz;
  const double k = (cfg_.f1_hz - cfg_.f0_hz) / duration;
  const double f_max = k * 2500.0 / cfg_.fs_hz;  // beat at 2500-sample delay
  const auto lp = uwp::dsp::design_fir_lowpass(201, std::min(f_max * 1.5, cfg_.fs_hz / 2.5),
                                               cfg_.fs_hz);
  mixed = uwp::dsp::fir_filter(mixed, lp);

  const std::size_t nfft = uwp::dsp::next_pow2(cfg_.length * cfg_.fft_pad);
  std::vector<uwp::dsp::cplx> in(nfft, uwp::dsp::cplx{0.0, 0.0});
  for (std::size_t i = 0; i < cfg_.length; ++i) in[i] = {mixed[i], 0.0};
  const std::vector<uwp::dsp::cplx> spec = uwp::dsp::fft(in);
  std::vector<double> mag(nfft / 2);
  for (std::size_t i = 0; i < mag.size(); ++i) mag[i] = std::abs(spec[i]);
  return mag;
}

bool FmcwRanger::detect(std::span<const double> stream, std::size_t sweep_start) const {
  const std::vector<double> mag = beat_spectrum(stream, sweep_start);
  if (mag.empty()) return false;
  const double peak = *std::max_element(mag.begin(), mag.end());
  const double med = uwp::median(mag);
  return med > 0.0 && peak / med > cfg_.detect_ratio;
}

std::optional<double> FmcwRanger::estimate_delay_samples(std::span<const double> stream,
                                                         std::size_t sweep_start) const {
  const std::vector<double> mag = beat_spectrum(stream, sweep_start);
  if (mag.empty()) return std::nullopt;
  const std::size_t peak = uwp::dsp::argmax(mag);
  if (mag[peak] <= 0.0) return std::nullopt;

  // Beat frequency -> delay: tau = f_beat / k.
  const std::size_t nfft = uwp::dsp::next_pow2(cfg_.length * cfg_.fft_pad);
  const double f_beat = static_cast<double>(peak) * cfg_.fs_hz / static_cast<double>(nfft);
  const double duration = static_cast<double>(cfg_.length) / cfg_.fs_hz;
  const double k = (cfg_.f1_hz - cfg_.f0_hz) / duration;
  return f_beat / k * cfg_.fs_hz;  // delay in samples
}

}  // namespace uwp::phy::baseline
