#include "phy/baseline/chirp_ranger.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "dsp/correlation.hpp"
#include "dsp/window.hpp"

namespace uwp::phy::baseline {

ChirpRanger::ChirpRanger(ChirpConfig cfg) : cfg_(cfg) {
  waveform_.resize(cfg_.length);
  const double duration = static_cast<double>(cfg_.length) / cfg_.fs_hz;
  const double k = (cfg_.f1_hz - cfg_.f0_hz) / duration;
  for (std::size_t i = 0; i < cfg_.length; ++i) {
    const double t = static_cast<double>(i) / cfg_.fs_hz;
    waveform_[i] =
        std::sin(2.0 * std::numbers::pi * (cfg_.f0_hz * t + 0.5 * k * t * t));
  }
  const auto w = uwp::dsp::make_window(uwp::dsp::WindowType::kTukey, cfg_.length, 0.05);
  uwp::dsp::apply_window(waveform_, w);
}

bool ChirpRanger::detect(std::span<const double> stream) const {
  // Sliding window power ratio: power of window k vs window k-1 in dB.
  const std::size_t w = cfg_.power_window;
  if (stream.size() < 2 * w) return false;
  const double thresh = std::pow(10.0, cfg_.detect_threshold_db / 10.0);
  double prev = 0.0;
  for (std::size_t i = 0; i < w; ++i) prev += stream[i] * stream[i];
  for (std::size_t start = w; start + w <= stream.size(); start += w) {
    double cur = 0.0;
    for (std::size_t i = start; i < start + w; ++i) cur += stream[i] * stream[i];
    if (prev > 1e-20 && cur / prev > thresh) return true;
    prev = cur;
  }
  return false;
}

std::optional<double> ChirpRanger::estimate_arrival(std::span<const double> stream) const {
  const std::vector<double> corr =
      uwp::dsp::normalized_cross_correlate(stream, waveform_);
  if (corr.empty()) return std::nullopt;
  const std::size_t best = uwp::dsp::argmax(corr);
  if (corr[best] <= 0.0) return std::nullopt;

  // Earliest peak within peak_margin_db of the max, looking back a bounded
  // window (BeepBeep's specially designed peak detection).
  const double floor = corr[best] * std::pow(10.0, -cfg_.peak_margin_db / 20.0);
  const std::size_t back =
      best > cfg_.peak_search_back ? best - cfg_.peak_search_back : 0;
  for (std::size_t i = back; i <= best; ++i) {
    if (corr[i] >= floor && uwp::dsp::is_peak(corr, i)) return static_cast<double>(i);
  }
  return static_cast<double>(best);
}

}  // namespace uwp::phy::baseline
