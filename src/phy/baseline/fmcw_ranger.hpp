// CAT-style FMCW baseline ([64] in the paper): the receiver mixes the
// received chirp with the transmitted template; the beat frequency after
// low-pass filtering is proportional to the delay: f_beat = (B/T) * tau.
// Works beautifully in air over meters; underwater multipath smears the beat
// spectrum, which is exactly the effect Fig 12b demonstrates.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace uwp::phy::baseline {

struct FmcwConfig {
  double fs_hz = 44100.0;
  double f0_hz = 1000.0;
  double f1_hz = 5000.0;
  std::size_t length = 9840;  // sweep length T*fs (matches our preamble)
  // FFT zero-padding factor for beat-spectrum resolution.
  std::size_t fft_pad = 4;
  // Detection: minimum beat-spectrum peak-to-median ratio.
  double detect_ratio = 6.0;
};

class FmcwRanger {
 public:
  explicit FmcwRanger(FmcwConfig cfg);

  const std::vector<double>& waveform() const { return waveform_; }
  const FmcwConfig& config() const { return cfg_; }

  bool detect(std::span<const double> stream, std::size_t sweep_start = 0) const;

  // Delay in samples estimated from the beat spectrum of the mixed signal.
  // `sweep_start` is where the reference sweep is assumed to begin in the
  // stream (0 when the stream is transmit-aligned, as in our receptions).
  std::optional<double> estimate_delay_samples(std::span<const double> stream,
                                               std::size_t sweep_start = 0) const;

 private:
  std::vector<double> beat_spectrum(std::span<const double> stream,
                                    std::size_t sweep_start) const;

  FmcwConfig cfg_;
  std::vector<double> waveform_;
};

}  // namespace uwp::phy::baseline
