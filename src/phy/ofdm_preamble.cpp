#include "phy/ofdm_preamble.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/fft.hpp"
#include "phy/zadoff_chu.hpp"

namespace uwp::phy {

std::size_t PreambleConfig::bin_lo() const {
  const double bin_hz = fs_hz / static_cast<double>(symbol_len);
  return static_cast<std::size_t>(std::ceil(band_lo_hz / bin_hz));
}

std::size_t PreambleConfig::bin_hi() const {
  const double bin_hz = fs_hz / static_cast<double>(symbol_len);
  return static_cast<std::size_t>(std::floor(band_hi_hz / bin_hz));
}

OfdmPreamble::OfdmPreamble(PreambleConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.pn.size() != cfg_.num_symbols)
    throw std::invalid_argument("OfdmPreamble: PN length != num_symbols");
  if (cfg_.bin_hi() >= cfg_.symbol_len / 2)
    throw std::invalid_argument("OfdmPreamble: band exceeds Nyquist");

  const std::size_t lo = cfg_.bin_lo();
  const std::size_t hi = cfg_.bin_hi();
  bins_ = zadoff_chu(hi - lo + 1, cfg_.zc_root);

  // Build the Hermitian spectrum so the IFFT is real.
  std::vector<uwp::dsp::cplx> spec(cfg_.symbol_len, uwp::dsp::cplx{0.0, 0.0});
  for (std::size_t k = lo; k <= hi; ++k) {
    spec[k] = bins_[k - lo];
    spec[cfg_.symbol_len - k] = std::conj(bins_[k - lo]);
  }
  symbol_ = uwp::dsp::ifft_real(spec);

  // Normalize to unit peak so the channel's tx_level_db is meaningful.
  double peak = 0.0;
  for (double v : symbol_) peak = std::max(peak, std::abs(v));
  if (peak > 0.0)
    for (double& v : symbol_) v /= peak;

  waveform_.reserve(cfg_.total_len());
  for (std::size_t s = 0; s < cfg_.num_symbols; ++s) {
    const double sign = static_cast<double>(cfg_.pn[s]);
    // Cyclic prefix: last cp_len samples of the symbol.
    for (std::size_t i = cfg_.symbol_len - cfg_.cp_len; i < cfg_.symbol_len; ++i)
      waveform_.push_back(sign * symbol_[i]);
    for (std::size_t i = 0; i < cfg_.symbol_len; ++i)
      waveform_.push_back(sign * symbol_[i]);
  }
}

}  // namespace uwp::phy
