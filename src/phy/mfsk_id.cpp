#include "phy/mfsk_id.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "dsp/goertzel.hpp"
#include "dsp/window.hpp"

namespace uwp::phy {

double MfskConfig::bin_center_hz(std::size_t id) const {
  const double bin_width = (band_hi_hz - band_lo_hz) / static_cast<double>(num_ids);
  return band_lo_hz + (static_cast<double>(id) + 0.5) * bin_width;
}

MfskIdCodec::MfskIdCodec(MfskConfig cfg) : cfg_(cfg) {
  if (cfg_.num_ids == 0) throw std::invalid_argument("MfskIdCodec: num_ids == 0");
}

std::vector<double> MfskIdCodec::encode(std::size_t id) const {
  if (id >= cfg_.num_ids) throw std::invalid_argument("MfskIdCodec: id out of range");
  const double f = cfg_.bin_center_hz(id);
  std::vector<double> x(cfg_.symbol_samples);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::sin(2.0 * std::numbers::pi * f * static_cast<double>(i) / cfg_.fs_hz);
  const auto w = uwp::dsp::make_window(uwp::dsp::WindowType::kTukey, x.size(), 0.1);
  uwp::dsp::apply_window(x, w);
  return x;
}

std::vector<double> MfskIdCodec::encode_pair(std::size_t own_id, std::size_t ref_id) const {
  std::vector<double> x = encode(own_id);
  const std::vector<double> second = encode(ref_id);
  x.insert(x.end(), second.begin(), second.end());
  return x;
}

std::optional<std::size_t> MfskIdCodec::decode(std::span<const double> window,
                                               double min_dominance) const {
  if (window.size() < cfg_.symbol_samples / 2) return std::nullopt;
  double best = -1.0, second = -1.0;
  std::size_t best_id = 0;
  for (std::size_t id = 0; id < cfg_.num_ids; ++id) {
    const double p = uwp::dsp::goertzel_power(window, cfg_.bin_center_hz(id), cfg_.fs_hz);
    if (p > best) {
      second = best;
      best = p;
      best_id = id;
    } else if (p > second) {
      second = p;
    }
  }
  if (cfg_.num_ids > 1 && (second <= 0.0 || best / second < min_dominance))
    return std::nullopt;
  return best_id;
}

std::optional<std::pair<std::size_t, std::size_t>> MfskIdCodec::decode_pair(
    std::span<const double> window, double min_dominance) const {
  if (window.size() < 2 * cfg_.symbol_samples) return std::nullopt;
  const auto own = decode(window.subspan(0, cfg_.symbol_samples), min_dominance);
  const auto ref = decode(window.subspan(cfg_.symbol_samples, cfg_.symbol_samples),
                          min_dominance);
  if (!own || !ref) return std::nullopt;
  return std::make_pair(*own, *ref);
}

}  // namespace uwp::phy
