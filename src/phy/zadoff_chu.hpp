// Zadoff-Chu constant-amplitude zero-autocorrelation (CAZAC) sequences. The
// paper fills its OFDM preamble bins with a ZC sequence (§2.2.1) because the
// phase-modulated sequence is orthogonal to delayed copies of itself, giving
// sharp correlation peaks through dense underwater multipath.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace uwp::phy {

// Length-`n` ZC sequence with root `u` (must be coprime with n):
//   odd  n: zc[k] = exp(-i pi u k (k+1) / n)
//   even n: zc[k] = exp(-i pi u k^2 / n)
std::vector<std::complex<double>> zadoff_chu(std::size_t n, unsigned u = 1);

// Greatest common divisor helper exposed for root validation in tests.
unsigned gcd_u(unsigned a, unsigned b);

}  // namespace uwp::phy
