#include "phy/fsk_modem.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "dsp/goertzel.hpp"
#include "phy/convolutional.hpp"

namespace uwp::phy {

FskBand FskConfig::band_tones(std::size_t band) const {
  if (band >= num_bands) throw std::invalid_argument("FskConfig: band out of range");
  const double width = (band_hi_hz - band_lo_hz) / static_cast<double>(num_bands);
  const double lo = band_lo_hz + static_cast<double>(band) * width;
  return {lo + 0.25 * width, lo + 0.75 * width};
}

FskModem::FskModem(FskConfig cfg) : cfg_(cfg) {
  if (cfg_.num_bands == 0) throw std::invalid_argument("FskModem: num_bands == 0");
}

std::vector<double> FskModem::modulate(std::span<const std::uint8_t> bits,
                                       std::size_t band) const {
  const FskBand tones = cfg_.band_tones(band);
  std::vector<double> out;
  out.reserve(bits.size() * cfg_.samples_per_bit);
  double phase = 0.0;  // continuous-phase FSK avoids clicks at bit edges
  for (std::uint8_t b : bits) {
    if (b > 1) throw std::invalid_argument("FskModem: bits must be 0/1");
    const double f = b ? tones.f1_hz : tones.f0_hz;
    const double dphi = 2.0 * std::numbers::pi * f / cfg_.fs_hz;
    for (std::size_t i = 0; i < cfg_.samples_per_bit; ++i) {
      out.push_back(std::sin(phase));
      phase += dphi;
    }
  }
  return out;
}

std::vector<std::uint8_t> FskModem::demodulate(std::span<const double> signal,
                                               std::size_t band,
                                               std::size_t bits) const {
  const FskBand tones = cfg_.band_tones(band);
  std::vector<std::uint8_t> out(bits, 0);
  for (std::size_t k = 0; k < bits; ++k) {
    const std::size_t start = k * cfg_.samples_per_bit;
    if (start >= signal.size()) break;
    const std::size_t len = std::min(cfg_.samples_per_bit, signal.size() - start);
    const std::span<const double> window = signal.subspan(start, len);
    const double p0 = uwp::dsp::goertzel_power(window, tones.f0_hz, cfg_.fs_hz);
    const double p1 = uwp::dsp::goertzel_power(window, tones.f1_hz, cfg_.fs_hz);
    out[k] = p1 > p0 ? 1 : 0;
  }
  return out;
}

std::vector<double> FskModem::modulate_coded(std::span<const std::uint8_t> info_bits,
                                             std::size_t band) const {
  const std::vector<std::uint8_t> coded = ConvolutionalCode::encode_r23(info_bits);
  return modulate(coded, band);
}

std::vector<std::uint8_t> FskModem::demodulate_coded(std::span<const double> signal,
                                                     std::size_t band,
                                                     std::size_t info_bits) const {
  const std::size_t n_coded = coded_bits(info_bits);
  const std::vector<std::uint8_t> hard = demodulate(signal, band, n_coded);
  return ConvolutionalCode::decode_r23(hard, info_bits);
}

std::size_t FskModem::coded_bits(std::size_t info_bits) {
  // Rate-1/2 with 6 tail bits, punctured 4 -> 3.
  const std::size_t r12 = 2 * (info_bits + ConvolutionalCode::kConstraint - 1);
  const std::size_t steps = r12 / 2;
  return steps + (steps + 1) / 2;  // g1 every step, g2 on even steps
}

double FskModem::coded_duration_s(std::size_t info_bits) const {
  return static_cast<double>(coded_bits(info_bits) * cfg_.samples_per_bit) / cfg_.fs_hz;
}

}  // namespace uwp::phy
