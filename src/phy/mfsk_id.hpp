// MFSK device-ID encoding (§2.3): the 1-5 kHz band is divided into N bins
// (N = dive group size); device i transmits energy in bin i only. Decoding
// is maximum-likelihood: pick the bin with the highest received energy.
// Messages may carry a second ID (the sync-reference device) as a second
// MFSK symbol.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace uwp::phy {

struct MfskConfig {
  double fs_hz = 44100.0;
  double band_lo_hz = 1000.0;
  double band_hi_hz = 5000.0;
  std::size_t num_ids = 6;          // N: dive group size
  std::size_t symbol_samples = 2205;  // 50 ms per ID symbol

  // Center frequency of bin `id`.
  double bin_center_hz(std::size_t id) const;
};

class MfskIdCodec {
 public:
  explicit MfskIdCodec(MfskConfig cfg);

  const MfskConfig& config() const { return cfg_; }

  // Tone burst announcing `id`. Throws if id >= num_ids.
  std::vector<double> encode(std::size_t id) const;

  // Two consecutive symbols: own id then reference id (for relay sync).
  std::vector<double> encode_pair(std::size_t own_id, std::size_t ref_id) const;

  // ML decode of one symbol window. Returns nullopt when the best bin does
  // not dominate (energy ratio below `min_dominance`), i.e. likely noise.
  std::optional<std::size_t> decode(std::span<const double> window,
                                    double min_dominance = 2.0) const;

  std::optional<std::pair<std::size_t, std::size_t>> decode_pair(
      std::span<const double> window, double min_dominance = 2.0) const;

 private:
  MfskConfig cfg_;
};

}  // namespace uwp::phy
