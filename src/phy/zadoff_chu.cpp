#include "phy/zadoff_chu.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace uwp::phy {

unsigned gcd_u(unsigned a, unsigned b) {
  while (b != 0) {
    const unsigned t = a % b;
    a = b;
    b = t;
  }
  return a;
}

std::vector<std::complex<double>> zadoff_chu(std::size_t n, unsigned u) {
  if (n == 0) throw std::invalid_argument("zadoff_chu: zero length");
  if (u == 0 || gcd_u(static_cast<unsigned>(n), u) != 1)
    throw std::invalid_argument("zadoff_chu: root not coprime with length");
  std::vector<std::complex<double>> zc(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double kk = static_cast<double>(k);
    const double num = (n % 2 == 0) ? kk * kk : kk * (kk + 1.0);
    const double phase = -std::numbers::pi * static_cast<double>(u) * num /
                         static_cast<double>(n);
    zc[k] = {std::cos(phase), std::sin(phase)};
  }
  return zc;
}

}  // namespace uwp::phy
