// Binary FSK payload modem (§2.4). The 1-5 kHz band is split into N
// per-device sub-bands so all responders can transmit their timestamp
// payloads to the leader simultaneously; device i signals bits with two
// tones inside band i at ~100 bps. Payloads are protected with the rate-2/3
// punctured convolutional code.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace uwp::phy {

struct FskBand {
  double f0_hz = 0.0;  // tone for bit 0
  double f1_hz = 0.0;  // tone for bit 1
};

struct FskConfig {
  double fs_hz = 44100.0;
  double band_lo_hz = 1000.0;
  double band_hi_hz = 5000.0;
  std::size_t num_bands = 6;         // one per responding device + leader
  std::size_t samples_per_bit = 441; // 100 bps at 44.1 kHz

  // Tone pair for device `band` (at 1/4 and 3/4 of its sub-band).
  FskBand band_tones(std::size_t band) const;
  double bit_rate() const { return fs_hz / static_cast<double>(samples_per_bit); }
};

class FskModem {
 public:
  explicit FskModem(FskConfig cfg);

  const FskConfig& config() const { return cfg_; }

  // Modulate raw bits in sub-band `band`.
  std::vector<double> modulate(std::span<const std::uint8_t> bits, std::size_t band) const;

  // Demodulate `bits` bit periods from `signal` in sub-band `band` by tone
  // energy comparison (hard decisions).
  std::vector<std::uint8_t> demodulate(std::span<const double> signal, std::size_t band,
                                       std::size_t bits) const;

  // Convenience: FEC-protected transmit/receive (rate-2/3 convolutional).
  std::vector<double> modulate_coded(std::span<const std::uint8_t> info_bits,
                                     std::size_t band) const;
  std::vector<std::uint8_t> demodulate_coded(std::span<const double> signal,
                                             std::size_t band,
                                             std::size_t info_bits) const;

  // Number of channel bits after rate-2/3 coding of `info_bits`.
  static std::size_t coded_bits(std::size_t info_bits);

  // Transmission duration in seconds for a coded payload.
  double coded_duration_s(std::size_t info_bits) const;

 private:
  FskConfig cfg_;
};

}  // namespace uwp::phy
