// Direct-path (line-of-sight) identification in the estimated channel
// profile (§2.2). The underwater direct path can be weaker than later
// reflections, so "highest peak" and "first non-negligible peak" both fail.
// The paper's dual-microphone constraint: the direct paths at the two mics
// must be peaks above each channel's noise floor AND their sample offset is
// bounded by the acoustic travel time across the 16 cm mic separation.
// Minimize tau = (n + m)/2 subject to those constraints.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace uwp::phy {

struct DirectPathConfig {
  // Noise floor is the mean of the last `noise_taps` channel taps; a peak
  // must exceed floor + lambda (paper sets lambda = 0.2 on [0,1]-normalized
  // profiles).
  std::size_t noise_taps = 100;
  double lambda = 0.2;
  double mic_separation_m = 0.16;
  double sound_speed_mps = 1500.0;
  double fs_hz = 44100.0;
  // Extra slack in samples on the |n - m| constraint to absorb the cubic
  // fractional-placement spread.
  double offset_slack = 1.0;

  // Pre-ringing guard: the band-limited channel estimate has ~-13 dB
  // sidelobes a few taps BEFORE each arrival; a candidate peak whose
  // amplitude is below `sidelobe_guard_ratio` times some peak in the next
  // (guard_lo, guard_hi] taps is that stronger arrival's sidelobe, not a
  // path. Real reflections arrive further out (boundary detours at dive
  // geometries exceed guard_hi samples), so genuinely weak direct paths
  // survive the guard.
  double sidelobe_guard_ratio = 0.30;
  std::size_t sidelobe_guard_lo = 4;
  std::size_t sidelobe_guard_hi = 20;

  double max_offset_samples() const {
    return mic_separation_m / sound_speed_mps * fs_hz + offset_slack;
  }
};

struct DirectPathResult {
  double tau = 0.0;        // (n + m) / 2, taps
  std::size_t mic1_tap = 0;  // n
  std::size_t mic2_tap = 0;  // m
};

// Joint dual-mic search. h1/h2 are [0,1]-normalized channel magnitudes of
// equal length. Returns nullopt when no peak pair satisfies the constraints.
std::optional<DirectPathResult> find_direct_path_dual(std::span<const double> h1,
                                                      std::span<const double> h2,
                                                      const DirectPathConfig& cfg);

// Single-mic baseline: earliest peak above the noise floor + lambda.
std::optional<std::size_t> find_direct_path_single(std::span<const double> h,
                                                   const DirectPathConfig& cfg);

// Mean of the last `noise_taps` values — the per-channel noise floor.
double channel_noise_floor(std::span<const double> h, std::size_t noise_taps);

// Candidate peaks above the floor with the pre-ringing guard applied.
std::vector<std::size_t> candidate_arrival_peaks(std::span<const double> h,
                                                 const DirectPathConfig& cfg);

// Sub-sample refinement: parabolic interpolation around an integer peak.
double refine_peak_parabolic(std::span<const double> h, std::size_t peak);

}  // namespace uwp::phy
