// Least-squares OFDM channel estimation (§2.2.1): from the coarse sync, the
// 4 received symbols are segmented out, FFT'd, PN-corrected and averaged:
//   H_hat(k) = (1/4) * sum_i Y_i(k) / (PN_i * X(k))
// The band-limited time-domain channel magnitude |h(n)| then exposes the
// multipath profile in which the direct path is located.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "phy/ofdm_preamble.hpp"

namespace uwp::phy {

struct ChannelEstimate {
  // Complex frequency response, full symbol_len bins (zeros out of band).
  std::vector<std::complex<double>> freq;
  // Magnitude of the time-domain channel, normalized to peak 1 (the form the
  // direct-path search consumes). Length == symbol_len.
  std::vector<double> taps;
  // Index into the stream corresponding to tap 0 (== window start used).
  std::size_t window_start = 0;
};

class LsChannelEstimator {
 public:
  // `backoff` shifts the estimation window earlier than the coarse index so
  // a direct path that precedes the strongest correlation peak still lands
  // at a positive tap (coarse sync can be off by hundreds of samples).
  // `windowed` applies a Hamming taper across the used bins before the IFFT:
  // the rectangular band otherwise leaves -13 dB time-domain sidelobes
  // *before* the direct path, which the earliest-peak search mistakes for
  // arrivals (they sit right at the lambda = 0.2 threshold).
  explicit LsChannelEstimator(const OfdmPreamble& preamble, std::size_t backoff = 100,
                              bool windowed = false);

  std::size_t backoff() const { return backoff_; }

  // Estimate the channel from `stream` given the coarse preamble start.
  // Returns an all-zero estimate if the stream is too short.
  ChannelEstimate estimate(std::span<const double> stream,
                           std::size_t coarse_index) const;

  // MMSE-style refinement ([50] in the paper; the appendix uses MMSE for the
  // SNR measurement): per-bin Wiener shrinkage H_ls * S/(S + N), with the
  // per-bin noise power estimated from the spread of the per-symbol LS
  // estimates. Improves tap SNR at long range at the cost of slight bias.
  ChannelEstimate estimate_mmse(std::span<const double> stream,
                                std::size_t coarse_index) const;

  // Per-bin SNR estimate in dB over the used band (for Fig 22-style
  // measurements). Empty when the stream is too short.
  std::vector<double> per_bin_snr_db(std::span<const double> stream,
                                     std::size_t coarse_index) const;

 private:
  const OfdmPreamble& preamble_;
  std::size_t backoff_;
  bool windowed_;
};

}  // namespace uwp::phy
