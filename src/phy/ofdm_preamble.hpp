// The paper's ranging preamble (§2.2.1): a 1920-sample OFDM symbol whose
// 1-5 kHz bins carry a Zadoff-Chu sequence, repeated 4 times with the PN
// sign pattern [1, 1, -1, 1], each repetition preceded by a 540-sample
// cyclic prefix. Total 4 * (540 + 1920) = 9840 samples (~223 ms at 44.1 kHz).
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace uwp::phy {

struct PreambleConfig {
  double fs_hz = 44100.0;
  std::size_t symbol_len = 1920;  // OFDM symbol length L
  std::size_t cp_len = 540;       // cyclic prefix
  std::size_t num_symbols = 4;
  double band_lo_hz = 1000.0;
  double band_hi_hz = 5000.0;
  unsigned zc_root = 1;
  // PN sign pattern applied per symbol; paper uses [1, 1, -1, 1].
  std::vector<int> pn = {1, 1, -1, 1};

  std::size_t bin_lo() const;  // first OFDM bin inside the band
  std::size_t bin_hi() const;  // last OFDM bin inside the band (inclusive)
  std::size_t num_bins() const { return bin_hi() - bin_lo() + 1; }
  std::size_t total_len() const { return num_symbols * (cp_len + symbol_len); }
};

class OfdmPreamble {
 public:
  explicit OfdmPreamble(PreambleConfig cfg);

  const PreambleConfig& config() const { return cfg_; }

  // Frequency-domain reference X(k) for the used bins (ZC values), indexed
  // from bin_lo().
  const std::vector<std::complex<double>>& bin_values() const { return bins_; }

  // One time-domain OFDM symbol (no CP, unit peak amplitude).
  const std::vector<double>& base_symbol() const { return symbol_; }

  // The full transmit waveform: 4 x (CP + symbol) with PN signs.
  const std::vector<double>& waveform() const { return waveform_; }

 private:
  PreambleConfig cfg_;
  std::vector<std::complex<double>> bins_;
  std::vector<double> symbol_;
  std::vector<double> waveform_;
};

}  // namespace uwp::phy
