#include "phy/channel_estimator.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "dsp/fft.hpp"

namespace uwp::phy {

LsChannelEstimator::LsChannelEstimator(const OfdmPreamble& preamble, std::size_t backoff,
                                       bool windowed)
    : preamble_(preamble), backoff_(backoff), windowed_(windowed) {}

ChannelEstimate LsChannelEstimator::estimate(std::span<const double> stream,
                                             std::size_t coarse_index) const {
  const PreambleConfig& pc = preamble_.config();
  ChannelEstimate est;
  est.freq.assign(pc.symbol_len, {0.0, 0.0});
  est.taps.assign(pc.symbol_len, 0.0);

  const std::size_t start = coarse_index >= backoff_ ? coarse_index - backoff_ : 0;
  est.window_start = start;
  const std::size_t block = pc.cp_len + pc.symbol_len;
  if (start + pc.num_symbols * block > stream.size()) return est;

  const std::size_t lo = pc.bin_lo();
  const std::size_t hi = pc.bin_hi();
  const auto& x_bins = preamble_.bin_values();

  // Average the per-symbol LS estimates over the used bins.
  for (std::size_t s = 0; s < pc.num_symbols; ++s) {
    const std::size_t sym_start = start + s * block + pc.cp_len;
    std::vector<double> seg(stream.begin() + static_cast<std::ptrdiff_t>(sym_start),
                            stream.begin() +
                                static_cast<std::ptrdiff_t>(sym_start + pc.symbol_len));
    const std::vector<uwp::dsp::cplx> y = uwp::dsp::fft_real(seg);
    const double sign = static_cast<double>(pc.pn[s]);
    for (std::size_t k = lo; k <= hi; ++k) {
      const uwp::dsp::cplx x = sign * x_bins[k - lo];
      est.freq[k] += y[k] / x;
    }
  }
  const double inv = 1.0 / static_cast<double>(pc.num_symbols);
  for (std::size_t k = lo; k <= hi; ++k) {
    est.freq[k] *= inv;
    if (windowed_) {
      // Hamming taper across the band: trades main-lobe width for -43 dB
      // sidelobes so pre-ringing never masquerades as an early arrival.
      const double t = static_cast<double>(k - lo) / static_cast<double>(hi - lo);
      est.freq[k] *= 0.54 - 0.46 * std::cos(2.0 * std::numbers::pi * t);
    }
    // Hermitian mirror for a real time-domain response.
    est.freq[pc.symbol_len - k] = std::conj(est.freq[k]);
  }

  // Band-limited impulse response magnitude. With only the in-band bins
  // filled, taps are the analytic-like envelope of the channel.
  const std::vector<uwp::dsp::cplx> h = uwp::dsp::ifft(est.freq);
  double peak = 0.0;
  for (std::size_t n = 0; n < pc.symbol_len; ++n) {
    est.taps[n] = std::abs(h[n]);
    peak = std::max(peak, est.taps[n]);
  }
  if (peak > 0.0)
    for (double& v : est.taps) v /= peak;
  return est;
}

namespace {

// Per-symbol LS estimates for the used bins; empty when too short.
std::vector<std::vector<uwp::dsp::cplx>> per_symbol_estimates(
    const OfdmPreamble& preamble, std::span<const double> stream,
    std::size_t start) {
  const PreambleConfig& pc = preamble.config();
  const std::size_t block = pc.cp_len + pc.symbol_len;
  if (start + pc.num_symbols * block > stream.size()) return {};
  const std::size_t lo = pc.bin_lo();
  const std::size_t hi = pc.bin_hi();
  const auto& x_bins = preamble.bin_values();

  std::vector<std::vector<uwp::dsp::cplx>> out(pc.num_symbols);
  for (std::size_t s = 0; s < pc.num_symbols; ++s) {
    const std::size_t sym_start = start + s * block + pc.cp_len;
    std::vector<double> seg(stream.begin() + static_cast<std::ptrdiff_t>(sym_start),
                            stream.begin() +
                                static_cast<std::ptrdiff_t>(sym_start + pc.symbol_len));
    const std::vector<uwp::dsp::cplx> y = uwp::dsp::fft_real(seg);
    out[s].resize(hi - lo + 1);
    const double sign = static_cast<double>(pc.pn[s]);
    for (std::size_t k = lo; k <= hi; ++k)
      out[s][k - lo] = y[k] / (sign * x_bins[k - lo]);
  }
  return out;
}

}  // namespace

ChannelEstimate LsChannelEstimator::estimate_mmse(std::span<const double> stream,
                                                  std::size_t coarse_index) const {
  const PreambleConfig& pc = preamble_.config();
  ChannelEstimate est;
  est.freq.assign(pc.symbol_len, {0.0, 0.0});
  est.taps.assign(pc.symbol_len, 0.0);
  const std::size_t start = coarse_index >= backoff_ ? coarse_index - backoff_ : 0;
  est.window_start = start;

  const auto per_sym = per_symbol_estimates(preamble_, stream, start);
  if (per_sym.empty()) return est;
  const std::size_t lo = pc.bin_lo();
  const std::size_t hi = pc.bin_hi();
  const double n_sym = static_cast<double>(pc.num_symbols);

  for (std::size_t k = lo; k <= hi; ++k) {
    uwp::dsp::cplx mean{0.0, 0.0};
    for (const auto& sym : per_sym) mean += sym[k - lo];
    mean /= n_sym;
    // Sample variance across symbols estimates the per-symbol noise power;
    // the averaged estimate's noise is that divided by num_symbols.
    double var = 0.0;
    for (const auto& sym : per_sym) var += std::norm(sym[k - lo] - mean);
    var /= std::max(n_sym - 1.0, 1.0);
    const double noise_power = var / n_sym;
    const double sig_power = std::max(std::norm(mean) - noise_power, 0.0);
    const double shrink =
        sig_power / std::max(sig_power + noise_power, 1e-30);
    est.freq[k] = mean * shrink;
    est.freq[pc.symbol_len - k] = std::conj(est.freq[k]);
  }

  const std::vector<uwp::dsp::cplx> h = uwp::dsp::ifft(est.freq);
  double peak = 0.0;
  for (std::size_t n = 0; n < pc.symbol_len; ++n) {
    est.taps[n] = std::abs(h[n]);
    peak = std::max(peak, est.taps[n]);
  }
  if (peak > 0.0)
    for (double& v : est.taps) v /= peak;
  return est;
}

std::vector<double> LsChannelEstimator::per_bin_snr_db(std::span<const double> stream,
                                                       std::size_t coarse_index) const {
  const PreambleConfig& pc = preamble_.config();
  const std::size_t start = coarse_index >= backoff_ ? coarse_index - backoff_ : 0;
  const auto per_sym = per_symbol_estimates(preamble_, stream, start);
  if (per_sym.empty()) return {};
  const std::size_t lo = pc.bin_lo();
  const std::size_t hi = pc.bin_hi();
  const double n_sym = static_cast<double>(pc.num_symbols);

  std::vector<double> snr(hi - lo + 1, 0.0);
  for (std::size_t k = lo; k <= hi; ++k) {
    uwp::dsp::cplx mean{0.0, 0.0};
    for (const auto& sym : per_sym) mean += sym[k - lo];
    mean /= n_sym;
    double var = 0.0;
    for (const auto& sym : per_sym) var += std::norm(sym[k - lo] - mean);
    var /= std::max(n_sym - 1.0, 1.0);
    const double sig = std::max(std::norm(mean) - var / n_sym, 1e-30);
    snr[k - lo] = 10.0 * std::log10(sig / std::max(var, 1e-30));
  }
  return snr;
}

}  // namespace uwp::phy
