// Rate-1/2 K=7 convolutional code (industry-standard generators 133/171
// octal) with puncturing to the paper's rate 2/3 (§2.4), plus a hard-decision
// Viterbi decoder that treats punctured positions as erasures.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace uwp::phy {

class ConvolutionalCode {
 public:
  static constexpr int kConstraint = 7;
  static constexpr std::uint32_t kG1 = 0133;  // octal
  static constexpr std::uint32_t kG2 = 0171;

  // Encode at rate 1/2 with kConstraint-1 flush (tail) bits appended, so the
  // decoder terminates in the zero state. Output bits alternate g1, g2.
  static std::vector<std::uint8_t> encode_r12(std::span<const std::uint8_t> bits);

  // Puncture a rate-1/2 stream to rate 2/3 with the pattern
  //   g1: 1 1
  //   g2: 1 0
  // (keep 3 of every 4 coded bits).
  static std::vector<std::uint8_t> puncture_r23(std::span<const std::uint8_t> coded);

  // Re-insert erasures (value 2) at punctured positions. `coded_len` is the
  // original rate-1/2 length.
  static std::vector<std::uint8_t> depuncture_r23(std::span<const std::uint8_t> punctured,
                                                  std::size_t coded_len);

  // Hard-decision Viterbi decode of a rate-1/2 stream (values 0/1, or 2 for
  // erasure). Returns the information bits (tail removed).
  static std::vector<std::uint8_t> decode_r12(std::span<const std::uint8_t> coded);

  // Convenience: full rate-2/3 encode/decode pipeline.
  static std::vector<std::uint8_t> encode_r23(std::span<const std::uint8_t> bits);
  static std::vector<std::uint8_t> decode_r23(std::span<const std::uint8_t> punctured,
                                              std::size_t info_bits);
};

}  // namespace uwp::phy
