#include "phy/convolutional.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <limits>
#include <stdexcept>

namespace uwp::phy {

namespace {

constexpr int kNumStates = 1 << (ConvolutionalCode::kConstraint - 1);  // 64
constexpr std::uint8_t kErasure = 2;

inline std::uint8_t parity(std::uint32_t x) {
  return static_cast<std::uint8_t>(std::popcount(x) & 1);
}

// Coded output pair for transition (state, input bit).
inline std::pair<std::uint8_t, std::uint8_t> branch_output(int state, int bit) {
  const std::uint32_t window =
      (static_cast<std::uint32_t>(state) << 1) | static_cast<std::uint32_t>(bit);
  return {parity(window & ConvolutionalCode::kG1),
          parity(window & ConvolutionalCode::kG2)};
}

inline int next_state(int state, int bit) {
  return ((state << 1) | bit) & (kNumStates - 1);
}

// Hamming cost with erasure support.
inline int bit_cost(std::uint8_t received, std::uint8_t expected) {
  if (received == kErasure) return 0;
  return received == expected ? 0 : 1;
}

}  // namespace

std::vector<std::uint8_t> ConvolutionalCode::encode_r12(
    std::span<const std::uint8_t> bits) {
  std::vector<std::uint8_t> out;
  out.reserve(2 * (bits.size() + kConstraint - 1));
  int state = 0;
  auto push = [&](int bit) {
    const auto [g1, g2] = branch_output(state, bit);
    out.push_back(g1);
    out.push_back(g2);
    state = next_state(state, bit);
  };
  for (std::uint8_t b : bits) {
    if (b > 1) throw std::invalid_argument("encode_r12: bits must be 0/1");
    push(b);
  }
  for (int i = 0; i < kConstraint - 1; ++i) push(0);  // flush to zero state
  return out;
}

std::vector<std::uint8_t> ConvolutionalCode::puncture_r23(
    std::span<const std::uint8_t> coded) {
  if (coded.size() % 2 != 0)
    throw std::invalid_argument("puncture_r23: odd coded length");
  std::vector<std::uint8_t> out;
  out.reserve(coded.size() * 3 / 4 + 2);
  const std::size_t steps = coded.size() / 2;
  for (std::size_t t = 0; t < steps; ++t) {
    out.push_back(coded[2 * t]);  // g1 always kept
    if (t % 2 == 0) out.push_back(coded[2 * t + 1]);  // g2 kept on even steps
  }
  return out;
}

std::vector<std::uint8_t> ConvolutionalCode::depuncture_r23(
    std::span<const std::uint8_t> punctured, std::size_t coded_len) {
  if (coded_len % 2 != 0)
    throw std::invalid_argument("depuncture_r23: odd coded length");
  std::vector<std::uint8_t> out(coded_len, kErasure);
  std::size_t src = 0;
  const std::size_t steps = coded_len / 2;
  for (std::size_t t = 0; t < steps && src < punctured.size(); ++t) {
    out[2 * t] = punctured[src++];
    if (t % 2 == 0 && src < punctured.size()) out[2 * t + 1] = punctured[src++];
  }
  return out;
}

std::vector<std::uint8_t> ConvolutionalCode::decode_r12(
    std::span<const std::uint8_t> coded) {
  if (coded.size() % 2 != 0)
    throw std::invalid_argument("decode_r12: odd coded length");
  const std::size_t steps = coded.size() / 2;
  if (steps < static_cast<std::size_t>(kConstraint - 1))
    throw std::invalid_argument("decode_r12: too short");

  constexpr int kInf = std::numeric_limits<int>::max() / 2;
  std::array<int, kNumStates> metric;
  metric.fill(kInf);
  metric[0] = 0;  // encoder starts in the zero state

  // survivors[t][s] = input bit that led to state s at step t (plus prev state
  // implied by the trellis structure).
  std::vector<std::array<std::int8_t, kNumStates>> survivor_bit(steps);
  std::vector<std::array<std::int8_t, kNumStates>> survivor_prev_high(steps);

  for (std::size_t t = 0; t < steps; ++t) {
    std::array<int, kNumStates> next;
    next.fill(kInf);
    std::array<std::int8_t, kNumStates>& bits = survivor_bit[t];
    std::array<std::int8_t, kNumStates>& prevs = survivor_prev_high[t];
    const std::uint8_t r1 = coded[2 * t];
    const std::uint8_t r2 = coded[2 * t + 1];
    for (int s = 0; s < kNumStates; ++s) {
      if (metric[s] >= kInf) continue;
      for (int bit = 0; bit <= 1; ++bit) {
        const auto [g1, g2] = branch_output(s, bit);
        const int cost = metric[s] + bit_cost(r1, g1) + bit_cost(r2, g2);
        const int ns = next_state(s, bit);
        if (cost < next[ns]) {
          next[ns] = cost;
          bits[ns] = static_cast<std::int8_t>(bit);
          // Previous state's high bits: s = (prev << 1 | bit) & mask means
          // prev's low (K-2) bits are s >> 1; prev's top bit is ambiguous,
          // so store it explicitly.
          prevs[ns] = static_cast<std::int8_t>((s >> (kConstraint - 2)) & 1);
        }
      }
    }
    metric = next;
  }

  // Traceback from the zero state (tail guarantees termination there).
  std::vector<std::uint8_t> decoded(steps);
  int state = 0;
  for (std::size_t t = steps; t-- > 0;) {
    const int bit = survivor_bit[t][state];
    decoded[t] = static_cast<std::uint8_t>(bit);
    const int prev_low = state >> 1;
    const int prev = prev_low | (survivor_prev_high[t][state] << (kConstraint - 2));
    state = prev;
  }
  decoded.resize(steps - (kConstraint - 1));  // strip tail bits
  return decoded;
}

std::vector<std::uint8_t> ConvolutionalCode::encode_r23(
    std::span<const std::uint8_t> bits) {
  return puncture_r23(encode_r12(bits));
}

std::vector<std::uint8_t> ConvolutionalCode::decode_r23(
    std::span<const std::uint8_t> punctured, std::size_t info_bits) {
  const std::size_t coded_len = 2 * (info_bits + kConstraint - 1);
  const std::vector<std::uint8_t> full = depuncture_r23(punctured, coded_len);
  std::vector<std::uint8_t> decoded = decode_r12(full);
  decoded.resize(info_bits);
  return decoded;
}

}  // namespace uwp::phy
