#include "phy/ranging.hpp"

namespace uwp::phy {

PreambleRanger::PreambleRanger(const OfdmPreamble& preamble, DetectorConfig det_cfg,
                               DirectPathConfig dp_cfg, std::size_t backoff)
    : preamble_(preamble),
      detector_(preamble, det_cfg),
      estimator_(preamble, backoff),
      dp_cfg_(dp_cfg) {
  dp_cfg_.fs_hz = preamble.config().fs_hz;
}

std::optional<RangingEstimate> PreambleRanger::estimate(const channel::Reception& rec,
                                                        MicMode mode) const {
  return estimate_streams(rec.mic[0], rec.mic[1], mode);
}

std::optional<RangingEstimate> PreambleRanger::estimate_streams(
    std::span<const double> mic1, std::span<const double> mic2, MicMode mode) const {
  // Coarse sync runs on the primary stream for the chosen mode.
  const std::span<const double> primary = mode == MicMode::kMic2Only ? mic2 : mic1;
  const std::optional<DetectionResult> det = detector_.detect(primary);
  if (!det) return std::nullopt;

  RangingEstimate out;
  out.autocorr_score = det->autocorr_score;
  const double fs = preamble_.config().fs_hz;

  if (mode == MicMode::kDual) {
    const ChannelEstimate est1 = estimator_.estimate(mic1, det->coarse_index);
    const ChannelEstimate est2 = estimator_.estimate(mic2, det->coarse_index);
    const std::optional<DirectPathResult> dp =
        find_direct_path_dual(est1.taps, est2.taps, dp_cfg_);
    if (!dp) return std::nullopt;
    // Plausibility gate: the cross-correlation peak cannot precede the
    // direct path (later multipath only delays it), so a "direct" tap far
    // beyond the backoff position is a wrapped or spurious pick.
    if (dp->tau > static_cast<double>(estimator_.backoff()) + 200.0)
      return std::nullopt;
    out.mic1_tap = dp->mic1_tap;
    out.mic2_tap = dp->mic2_tap;
    out.mic1_tap_frac = refine_peak_parabolic(est1.taps, dp->mic1_tap);
    out.mic2_tap_frac = refine_peak_parabolic(est2.taps, dp->mic2_tap);
    out.arrival_index = static_cast<double>(est1.window_start) +
                        (out.mic1_tap_frac + out.mic2_tap_frac) / 2.0;
  } else {
    const std::span<const double> mic = mode == MicMode::kMic1Only ? mic1 : mic2;
    const ChannelEstimate est = estimator_.estimate(mic, det->coarse_index);
    const std::optional<std::size_t> tap = find_direct_path_single(est.taps, dp_cfg_);
    if (!tap) return std::nullopt;
    if (*tap > estimator_.backoff() + 200) return std::nullopt;
    const double refined = refine_peak_parabolic(est.taps, *tap);
    out.mic1_tap = out.mic2_tap = *tap;
    out.mic1_tap_frac = out.mic2_tap_frac = refined;
    out.arrival_index = static_cast<double>(est.window_start) + refined;
  }
  out.arrival_time_s = out.arrival_index / fs;
  return out;
}

double one_way_distance_m(const RangingEstimate& est, double sound_speed_mps) {
  return est.arrival_time_s * sound_speed_mps;
}

}  // namespace uwp::phy
