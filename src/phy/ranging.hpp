// Full receiver pipeline for one-way time-of-arrival estimation: coarse
// preamble detection -> LS channel estimation (per mic) -> dual-mic joint
// direct-path identification -> fine arrival index. Combined with transmit
// timestamps by the protocol layer, this yields pairwise distances.
#pragma once

#include <optional>
#include <span>

#include "channel/propagation.hpp"
#include "phy/channel_estimator.hpp"
#include "phy/direct_path.hpp"
#include "phy/ofdm_preamble.hpp"
#include "phy/preamble_detector.hpp"

namespace uwp::phy {

enum class MicMode {
  kDual,        // the paper's joint two-microphone algorithm
  kMic1Only,    // bottom microphone alone (Fig 11b ablation)
  kMic2Only,    // top microphone alone
};

struct RangingEstimate {
  double arrival_index = 0.0;  // direct-path sample index in the mic stream
  double arrival_time_s = 0.0; // arrival_index / fs
  double autocorr_score = 0.0;
  std::size_t mic1_tap = 0;    // direct-path taps for flip voting (§2.1.4)
  std::size_t mic2_tap = 0;
  // Sub-sample refined tap positions (parabolic interpolation): the flip
  // vote compares arrival order across a 16 cm baseline, where the offset
  // can be well under one sample for divers near the pointing line.
  double mic1_tap_frac = 0.0;
  double mic2_tap_frac = 0.0;
};

class PreambleRanger {
 public:
  PreambleRanger(const OfdmPreamble& preamble, DetectorConfig det_cfg = {},
                 DirectPathConfig dp_cfg = {}, std::size_t backoff = 540);

  // Estimate the arrival of the preamble in a dual-mic reception. Returns
  // nullopt when detection fails on the mic(s) used.
  std::optional<RangingEstimate> estimate(const channel::Reception& rec,
                                          MicMode mode = MicMode::kDual) const;

  // Arrival estimate from raw stereo streams (protocol layer path).
  std::optional<RangingEstimate> estimate_streams(std::span<const double> mic1,
                                                  std::span<const double> mic2,
                                                  MicMode mode = MicMode::kDual) const;

  const OfdmPreamble& preamble() const { return preamble_; }
  const DirectPathConfig& direct_path_config() const { return dp_cfg_; }

 private:
  const OfdmPreamble& preamble_;
  PreambleDetector detector_;
  LsChannelEstimator estimator_;
  DirectPathConfig dp_cfg_;
};

// One-way ranging helper for benchmarks: distance = c * arrival_time.
double one_way_distance_m(const RangingEstimate& est, double sound_speed_mps);

}  // namespace uwp::phy
