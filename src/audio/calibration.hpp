// Calibration-signal generation and detection used during DeviceAudio
// initialization: a short in-band chirp played from the speaker into the
// device's own microphone. Detection is normalized cross-correlation, the
// same primitive the preamble detector builds on.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace uwp::audio {

// Linear chirp from f0 to f1 over `duration_s`, Tukey-windowed to keep it in
// the phone's usable band without spectral splatter.
std::vector<double> make_calibration_signal(double fs_hz, double f0_hz = 1000.0,
                                            double f1_hz = 5000.0,
                                            double duration_s = 0.05);

// Index where the calibration signal starts in `stream`, or nullopt when the
// normalized correlation never reaches `threshold`.
std::optional<std::size_t> detect_calibration(std::span<const double> stream,
                                              std::span<const double> signal,
                                              double threshold = 0.5);

}  // namespace uwp::audio
