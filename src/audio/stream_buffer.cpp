#include "audio/stream_buffer.hpp"

namespace uwp::audio {

void StreamBuffer::ensure_size(std::size_t n) {
  if (samples_.size() < n) samples_.resize(n, 0.0);
}

void StreamBuffer::mix_at(std::size_t index, std::span<const double> waveform) {
  ensure_size(index + waveform.size());
  for (std::size_t i = 0; i < waveform.size(); ++i) samples_[index + i] += waveform[i];
}

std::vector<double> StreamBuffer::window(std::size_t start, std::size_t len) const {
  std::vector<double> out(len, 0.0);
  for (std::size_t i = 0; i < len; ++i) {
    const std::size_t j = start + i;
    if (j < samples_.size()) out[i] = samples_[j];
  }
  return out;
}

}  // namespace uwp::audio
