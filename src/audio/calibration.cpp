#include "audio/calibration.hpp"

#include <cmath>
#include <numbers>

#include "dsp/correlation.hpp"
#include "dsp/window.hpp"

namespace uwp::audio {

std::vector<double> make_calibration_signal(double fs_hz, double f0_hz, double f1_hz,
                                            double duration_s) {
  const std::size_t n = static_cast<std::size_t>(duration_s * fs_hz);
  std::vector<double> x(n);
  const double k = (f1_hz - f0_hz) / duration_s;  // chirp rate
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / fs_hz;
    const double phase = 2.0 * std::numbers::pi * (f0_hz * t + 0.5 * k * t * t);
    x[i] = std::sin(phase);
  }
  const std::vector<double> w = uwp::dsp::make_window(uwp::dsp::WindowType::kTukey, n, 0.2);
  uwp::dsp::apply_window(x, w);
  return x;
}

std::optional<std::size_t> detect_calibration(std::span<const double> stream,
                                              std::span<const double> signal,
                                              double threshold) {
  const std::vector<double> corr = uwp::dsp::normalized_cross_correlate(stream, signal);
  if (corr.empty()) return std::nullopt;
  const std::size_t best = uwp::dsp::argmax(corr);
  if (corr[best] < threshold) return std::nullopt;
  return best;
}

}  // namespace uwp::audio
