// A growable audio stream with an attached SampleClock. Mirrors the paper's
// model of the OpenSL ES continuous data streams: once opened, the stream is
// never closed (keeping the clock offsets constant), zeros are written when
// nothing is playing, and samples can be mixed in at any future index.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "audio/sample_clock.hpp"

namespace uwp::audio {

class StreamBuffer {
 public:
  StreamBuffer() = default;
  explicit StreamBuffer(SampleClock clock) : clock_(clock) {}

  const SampleClock& clock() const { return clock_; }

  std::size_t size() const { return samples_.size(); }

  // Grow the stream (zero-filled) so index `n` exists.
  void ensure_size(std::size_t n);

  // Mix `waveform` into the stream starting at `index` (grows as needed).
  void mix_at(std::size_t index, std::span<const double> waveform);

  double read(std::size_t i) const { return i < samples_.size() ? samples_[i] : 0.0; }

  std::span<const double> samples() const { return samples_; }

  // Contiguous window [start, start+len), zero-padded past the end.
  std::vector<double> window(std::size_t start, std::size_t len) const;

 private:
  SampleClock clock_;
  std::vector<double> samples_;
};

}  // namespace uwp::audio
