// SampleClock is header-only; this TU anchors the target.
#include "audio/sample_clock.hpp"
