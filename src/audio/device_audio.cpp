#include "audio/device_audio.hpp"

#include <cmath>
#include <stdexcept>

namespace uwp::audio {

DeviceAudio::DeviceAudio(const AudioTimingConfig& cfg)
    : cfg_(cfg),
      speaker_clock_(cfg.fs_nominal_hz, cfg.speaker_skew_ppm, cfg.speaker_start_s),
      mic_clock_(cfg.fs_nominal_hz, cfg.mic_skew_ppm, cfg.mic_start_s) {}

double DeviceAudio::mic_index_for_speaker_emission(double n, double delay_s) const {
  const double t_emit = speaker_clock_.time_at(n);
  return mic_clock_.index_at(t_emit + delay_s);
}

void DeviceAudio::calibrate(std::int64_t n1) {
  n1_ = n1;
  const double m_exact =
      mic_index_for_speaker_emission(static_cast<double>(n1), cfg_.self_loopback_delay_s);
  // A real detector reports an integer sample index.
  m1_ = static_cast<std::int64_t>(std::llround(m_exact));
  offset_ = n1_ - m1_;
}

std::int64_t DeviceAudio::buffer_offset() const {
  if (!offset_) throw std::logic_error("DeviceAudio: not calibrated");
  return *offset_;
}

std::int64_t DeviceAudio::reply_index_for(std::int64_t m2, double t_reply_s) const {
  // Eq. 4: n2 = m2 + (n1 - m1) + fs * t_reply (nominal fs — the device does
  // not know its actual rates).
  return m2 + buffer_offset() +
         static_cast<std::int64_t>(std::llround(cfg_.fs_nominal_hz * t_reply_s));
}

double DeviceAudio::realized_reply_interval(std::int64_t m2, std::int64_t n2) const {
  // t_reply = t4 + delta2 - t3 (Eq. 2): the reply leaves the speaker at
  // t4 = t_s(n2), reaches the device's own mic delta2 later; the incoming
  // message arrived at t3 = t_m(m2).
  const double t4 = speaker_clock_.time_at(static_cast<double>(n2));
  const double t3 = mic_clock_.time_at(static_cast<double>(m2));
  return t4 + cfg_.self_loopback_delay_s - t3;
}

double DeviceAudio::predicted_reply_error(std::int64_t m2, double t_reply_s) const {
  // Eq. 6: error = -alpha * t_reply + (m2 - m1)(beta - alpha) / fs.
  const double alpha = cfg_.speaker_skew_ppm * 1e-6;
  const double beta = cfg_.mic_skew_ppm * 1e-6;
  return -alpha * t_reply_s +
         static_cast<double>(m2 - m1_) * (beta - alpha) / cfg_.fs_nominal_hz;
}

void DeviceAudio::recalibrate(std::int64_t n, std::int64_t m) {
  n1_ = n;
  m1_ = m;
  offset_ = n - m;
}

}  // namespace uwp::audio
