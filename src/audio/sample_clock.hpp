// Sample-index <-> absolute-time mapping for speaker and microphone streams.
// Models the paper Appendix's Eq. 1: t(n) = n / fs_actual + t0, where the
// actual rate differs from nominal by a ppm-scale skew (fs = fs_nom/(1-a))
// and t0 is the unknown stream-start offset the OS picked.
#pragma once

namespace uwp::audio {

class SampleClock {
 public:
  SampleClock() = default;
  SampleClock(double fs_nominal_hz, double skew_ppm, double start_time_s)
      : fs_nominal_(fs_nominal_hz), skew_ppm_(skew_ppm), t0_(start_time_s) {}

  double fs_nominal() const { return fs_nominal_; }
  double skew_ppm() const { return skew_ppm_; }
  double start_time() const { return t0_; }

  // Actual hardware rate: fs_nom / (1 - skew), per the Appendix convention
  // (positive ppm means the device consumes samples slightly fast).
  double fs_actual() const { return fs_nominal_ / (1.0 - skew_ppm_ * 1e-6); }

  // Absolute time at (possibly fractional) sample index.
  double time_at(double index) const { return index / fs_actual() + t0_; }

  // Fractional sample index at absolute time.
  double index_at(double time_s) const { return (time_s - t0_) * fs_actual(); }

 private:
  double fs_nominal_ = 44100.0;
  double skew_ppm_ = 0.0;
  double t0_ = 0.0;
};

}  // namespace uwp::audio
