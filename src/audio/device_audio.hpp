// The paper Appendix's low-level audio timing model: a device has a speaker
// stream and a microphone stream whose clocks were started at unknown,
// different offsets and run at slightly different actual rates. The device
// self-synchronizes the two buffers by playing a calibration signal through
// its own speaker-to-mic acoustic loopback and recording the index offset
// (n1 - m1); it can then schedule a reply at index n2 = m2 + (n1 - m1) +
// fs * t_reply so that its response leaves a fixed interval after an
// incoming message arrived (Eqs. 2-6).
#pragma once

#include <cstdint>
#include <optional>

#include "audio/sample_clock.hpp"

namespace uwp::audio {

struct AudioTimingConfig {
  double fs_nominal_hz = 44100.0;
  double speaker_skew_ppm = 0.0;   // alpha in the Appendix
  double mic_skew_ppm = 0.0;       // beta
  double speaker_start_s = 0.0;    // t0_s (unknown to the device)
  double mic_start_s = 0.0;        // t0_m (unknown to the device)
  // delta_2: speaker -> own-mic acoustic travel (16 cm underwater ~ 0.11 ms).
  // The protocol's distance formula ignores this term (paper §2.3), which
  // biases two-way distances low by c * delta_2 — small vs. 0.5-0.9 m errors.
  double self_loopback_delay_s = 0.11e-3;
};

class DeviceAudio {
 public:
  explicit DeviceAudio(const AudioTimingConfig& cfg);

  const SampleClock& speaker_clock() const { return speaker_clock_; }
  const SampleClock& mic_clock() const { return mic_clock_; }

  // --- Physics helpers (ground truth the device cannot see directly) ---

  // Mic index at which a signal emitted from speaker index `n` arrives after
  // traveling `delay_s`.
  double mic_index_for_speaker_emission(double n, double delay_s) const;

  // --- Device-side protocol (what the firmware would do) ---

  // Run the initial calibration: write the calibration signal at speaker
  // index n1, observe it at mic index m1 (rounded to the nearest sample, as
  // a real detector would), and store the offset n1 - m1 (Eq. 3 context).
  void calibrate(std::int64_t n1 = 4096);
  bool calibrated() const { return offset_.has_value(); }
  std::int64_t buffer_offset() const;  // n1 - m1

  // Eq. 4: speaker index to write a reply so it leaves t_reply after the
  // incoming signal that was detected at mic index m2.
  std::int64_t reply_index_for(std::int64_t m2, double t_reply_s) const;

  // Exact realized reply interval (Eq. 2): time between the incoming arrival
  // (mic index m2) and this device's own signal reaching its own mic, when
  // the reply is written at speaker index n2.
  double realized_reply_interval(std::int64_t m2, std::int64_t n2) const;

  // Eq. 6 predicted scheduling error (realized - desired), from the skews.
  double predicted_reply_error(std::int64_t m2, double t_reply_s) const;

  // Re-calibration against the device's own response signal (the paper's fix
  // for the (m2 - m1)(beta - alpha) error growth): update the stored offset
  // using a fresh (n, m) observation.
  void recalibrate(std::int64_t n, std::int64_t m);

  std::int64_t calibration_n1() const { return n1_; }
  std::int64_t calibration_m1() const { return m1_; }

 private:
  AudioTimingConfig cfg_;
  SampleClock speaker_clock_;
  SampleClock mic_clock_;
  std::optional<std::int64_t> offset_;
  std::int64_t n1_ = 0;
  std::int64_t m1_ = 0;
};

}  // namespace uwp::audio
