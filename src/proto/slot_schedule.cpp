#include "proto/slot_schedule.hpp"

#include <stdexcept>

namespace uwp::proto {

double slot_time_leader_sync(const ProtocolConfig& cfg, std::size_t id) {
  if (id == 0 || id >= cfg.num_devices)
    throw std::invalid_argument("slot_time_leader_sync: bad id");
  return cfg.delta0_s + static_cast<double>(id - 1) * cfg.delta1_s();
}

bool relay_slot_in_future(const ProtocolConfig& cfg, std::size_t id, std::size_t ref) {
  // The paper's condition: (i - j) * delta1 > delta0. When false, device i's
  // slot passed before it could hear device j.
  if (id <= ref) return false;
  return static_cast<double>(id - ref) * cfg.delta1_s() > cfg.delta0_s;
}

double slot_time_relay_sync(const ProtocolConfig& cfg, std::size_t id, std::size_t ref,
                            double t_ref_local) {
  if (id == 0 || id >= cfg.num_devices || ref == 0 || ref >= cfg.num_devices)
    throw std::invalid_argument("slot_time_relay_sync: bad ids");
  if (id == ref) throw std::invalid_argument("slot_time_relay_sync: id == ref");
  if (relay_slot_in_future(cfg, id, ref))
    return t_ref_local + static_cast<double>(id - ref) * cfg.delta1_s();
  // Missed the normal slot: wait for the wrap-around slot N - ref + id.
  return t_ref_local +
         static_cast<double>(cfg.num_devices - ref + id) * cfg.delta1_s();
}

double round_trip_all_in_range(const ProtocolConfig& cfg) {
  return cfg.delta0_s + static_cast<double>(cfg.num_devices - 1) * cfg.delta1_s();
}

double round_trip_worst_case(const ProtocolConfig& cfg) {
  return cfg.delta0_s + 2.0 * static_cast<double>(cfg.num_devices - 1) * cfg.delta1_s();
}

}  // namespace uwp::proto
