#include "proto/timestamp_protocol.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace uwp::proto {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr std::size_t kNoSync = std::numeric_limits<std::size_t>::max();

}  // namespace

TimestampProtocol::TimestampProtocol(ProtocolConfig cfg,
                                     std::vector<ProtocolDevice> devices)
    : cfg_(cfg), devices_(std::move(devices)) {
  if (devices_.size() != cfg_.num_devices)
    throw std::invalid_argument("TimestampProtocol: device count != num_devices");
  for (std::size_t i = 0; i < devices_.size(); ++i)
    if (devices_[i].id != i)
      throw std::invalid_argument("TimestampProtocol: devices must be ID-ordered");

  // Propagation delays from geometry, and the per-device audio pipelines
  // (scheduling error model): both depend only on construction state, so
  // computing them here keeps run_into allocation-free.
  const std::size_t n = cfg_.num_devices;
  tau_ = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      tau_(i, j) = uwp::distance(devices_[i].position, devices_[j].position) /
                   cfg_.sound_speed_mps;
  audio_units_.reserve(n);
  for (const ProtocolDevice& d : devices_) {
    audio_units_.emplace_back(d.audio);
    audio_units_.back().calibrate();
  }
}

ProtocolRun TimestampProtocol::run(const Matrix& connected, uwp::Rng& rng,
                                   const ArrivalError& err) const {
  ProtocolRun out;
  Workspace ws;
  run_into(out, connected, rng, err, ws);
  return out;
}

void TimestampProtocol::run_into(ProtocolRun& out, const Matrix& connected,
                                 uwp::Rng& rng, const ArrivalError& err,
                                 Workspace& ws) const {
  const std::size_t n = cfg_.num_devices;
  if (connected.rows() != n || connected.cols() != n)
    throw std::invalid_argument("TimestampProtocol: connectivity shape mismatch");

  const Matrix& tau = tau_;

  out.timestamps.assign(n, n, kNaN);
  out.heard.assign(n, n, 0.0);
  out.sync_ref.assign(n, kNoSync);
  out.tx_global.assign(n, kNaN);

  // Leader transmits at global time 0; its local clock zero is that moment.
  out.tx_global[0] = 0.0;
  out.sync_ref[0] = 0;
  std::vector<double>& local_zero_global = ws.local_zero_global;
  local_zero_global.assign(n, kNaN);  // global time of local t=0
  local_zero_global[0] = 0.0;
  std::vector<double>& sched_local = ws.sched_local;
  sched_local.assign(n, kNaN);  // intended local transmit times
  sched_local[0] = 0.0;

  // Fixed-point relaxation of sync/transmit schedule: each pass re-derives
  // every non-leader device's first-heard message from the currently known
  // transmit times. Converges in <= n passes for acyclic sync chains.
  for (std::size_t pass = 0; pass < 2 * n; ++pass) {
    bool changed = false;
    for (std::size_t i = 1; i < n; ++i) {
      // Earliest arrival among transmitted messages device i can hear.
      double best_arrival = std::numeric_limits<double>::infinity();
      std::size_t best_src = kNoSync;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i || connected(i, j) <= 0.0) continue;
        if (std::isnan(out.tx_global[j])) continue;
        const double arrival = out.tx_global[j] + tau(i, j);
        if (arrival < best_arrival) {
          best_arrival = arrival;
          best_src = j;
        }
      }
      if (best_src == kNoSync) continue;

      // Detected arrival defines the local clock zero (with estimation
      // error + sample quantization).
      double detect_err = err ? err(i, best_src) : 0.0;
      if (std::isnan(detect_err)) continue;  // detection failed entirely
      const double detected_global = best_arrival + detect_err;

      // Local transmit schedule per §2.3.
      double t_slot;
      std::size_t sync;
      if (best_src == 0) {
        sync = 0;
        t_slot = slot_time_leader_sync(cfg_, i);
      } else {
        sync = best_src;
        t_slot = slot_time_relay_sync(cfg_, i, best_src, 0.0);
      }

      // Audio scheduling: the device replies t_slot after the detected
      // arrival; the realized interval differs per Appendix Eq. 6.
      const audio::DeviceAudio& au = audio_units_[i];
      const double m2_exact = au.mic_clock().index_at(detected_global);
      const std::int64_t m2 = static_cast<std::int64_t>(std::llround(m2_exact));
      const std::int64_t n2 = au.reply_index_for(m2, t_slot);
      const double emit_global = au.speaker_clock().time_at(static_cast<double>(n2));

      if (out.sync_ref[i] != sync ||
          std::isnan(out.tx_global[i]) ||
          std::abs(out.tx_global[i] - emit_global) > 1e-12) {
        out.sync_ref[i] = sync;
        out.tx_global[i] = emit_global;
        local_zero_global[i] = detected_global;
        sched_local[i] = t_slot;
        changed = true;
      }
    }
    if (!changed) break;
  }
  (void)rng;  // randomness enters via the ArrivalError hook

  // Record timestamps: T^i_j for every message i can hear.
  double last_arrival = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::isnan(out.tx_global[i])) continue;
    // Own transmission: the device reports its scheduled local slot time.
    out.timestamps(i, i) = sched_local[i];
    out.heard(i, i) = 1.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i || connected(i, j) <= 0.0) continue;
      if (std::isnan(out.tx_global[j]) || std::isnan(local_zero_global[i])) continue;
      const double arrival_global = out.tx_global[j] + tau(i, j);
      double detect_err = err ? err(i, j) : 0.0;
      if (std::isnan(detect_err)) continue;
      double local =
          (arrival_global + detect_err - local_zero_global[i]) *
          (1.0 + devices_[i].audio.mic_skew_ppm * 1e-6);
      // Quantize to the microphone sample grid.
      local = std::round(local * cfg_.fs_hz) / cfg_.fs_hz;
      out.timestamps(i, j) = local;
      out.heard(i, j) = 1.0;
      last_arrival = std::max(last_arrival, arrival_global);
    }
  }
  out.round_duration_s = last_arrival + cfg_.t_packet_s;
}

}  // namespace uwp::proto
