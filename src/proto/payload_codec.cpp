#include "proto/payload_codec.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "proto/timestamp_protocol.hpp"

namespace uwp::proto {

void push_bits(std::vector<std::uint8_t>& out, unsigned value, unsigned bits) {
  for (unsigned b = bits; b-- > 0;)
    out.push_back(static_cast<std::uint8_t>((value >> b) & 1u));
}

unsigned pop_bits(const std::vector<std::uint8_t>& in, std::size_t& pos, unsigned bits) {
  unsigned v = 0;
  for (unsigned b = 0; b < bits; ++b) {
    if (pos >= in.size()) throw std::invalid_argument("payload: truncated bitstream");
    v = (v << 1) | (in[pos++] & 1u);
  }
  return v;
}

PayloadCodec::PayloadCodec(PayloadCodecConfig cfg) : cfg_(cfg) {
  if (cfg_.protocol.num_devices < 2)
    throw std::invalid_argument("PayloadCodec: need >= 2 devices");
}

unsigned PayloadCodec::quantize_depth(double depth_m) const {
  const unsigned max_q = (1u << cfg_.depth_bits) - 1u;
  const double q = std::round(std::max(depth_m, 0.0) / cfg_.depth_resolution_m);
  return static_cast<unsigned>(std::min(q, static_cast<double>(max_q)));
}

double PayloadCodec::dequantize_depth(unsigned q) const {
  return static_cast<double>(q) * cfg_.depth_resolution_m;
}

unsigned PayloadCodec::quantize_delta(double delta_s) const {
  // Field counts units of `timestamp_resolution_samples` samples; the
  // sentinel value is reserved for "missing".
  const unsigned sentinel = missing_sentinel();
  const double samples = std::max(delta_s, 0.0) * cfg_.protocol.fs_hz;
  const double units =
      std::round(samples / static_cast<double>(cfg_.timestamp_resolution_samples));
  const unsigned max_valid = sentinel - 1u;
  return static_cast<unsigned>(std::min(units, static_cast<double>(max_valid)));
}

double PayloadCodec::dequantize_delta(unsigned q) const {
  return static_cast<double>(q * cfg_.timestamp_resolution_samples) /
         cfg_.protocol.fs_hz;
}

std::vector<std::uint8_t> PayloadCodec::encode(const DeviceReport& report,
                                               std::size_t self_id) const {
  const std::size_t n = cfg_.protocol.num_devices;
  if (report.slot_delta_s.size() != n)
    throw std::invalid_argument("PayloadCodec: slot_delta size != N");
  if (self_id >= n) throw std::invalid_argument("PayloadCodec: bad self_id");

  std::vector<std::uint8_t> bits;
  bits.reserve(cfg_.payload_bits());
  push_bits(bits, quantize_depth(report.depth_m), cfg_.depth_bits);
  for (std::size_t j = 0; j < n; ++j) {
    if (j == self_id) continue;
    const auto& delta = report.slot_delta_s[j];
    push_bits(bits, delta ? quantize_delta(*delta) : missing_sentinel(),
              cfg_.timestamp_bits);
  }
  return bits;
}

DeviceReport PayloadCodec::decode(const std::vector<std::uint8_t>& bits,
                                  std::size_t self_id) const {
  const std::size_t n = cfg_.protocol.num_devices;
  if (self_id >= n) throw std::invalid_argument("PayloadCodec: bad self_id");
  DeviceReport report;
  report.slot_delta_s.assign(n, std::nullopt);
  std::size_t pos = 0;
  report.depth_m = dequantize_depth(pop_bits(bits, pos, cfg_.depth_bits));
  for (std::size_t j = 0; j < n; ++j) {
    if (j == self_id) continue;
    const unsigned q = pop_bits(bits, pos, cfg_.timestamp_bits);
    if (q != missing_sentinel()) report.slot_delta_s[j] = dequantize_delta(q);
  }
  return report;
}

void quantize_run_payload(ProtocolRun& run, const PayloadCodecConfig& cfg) {
  const PayloadCodec codec(cfg);
  const std::size_t n = cfg.protocol.num_devices;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 1; j < n; ++j) {
      if (i == j || run.heard(i, j) <= 0.0) continue;
      if (run.sync_ref[j] != 0) continue;  // relay slots ride as-is
      const double slot = slot_time_leader_sync(cfg.protocol, j);
      const double delta = run.timestamps(i, j) - slot;
      if (delta < 0.0 || delta >= codec.dequantize_delta(codec.missing_sentinel() - 1))
        continue;
      run.timestamps(i, j) = slot + codec.dequantize_delta(codec.quantize_delta(delta));
    }
  }
}

}  // namespace uwp::proto
