// Simultaneous multi-band FSK uplink (§2.4): after the timestamp protocol,
// every responder transmits its coded report to the leader at the same time,
// each inside its pre-assigned sub-band of 1-5 kHz. The leader demodulates
// all bands from the summed signal. This module simulates that composite
// reception (AWGN + optional per-device gain) and reports decode success
// and airtime.
#pragma once

#include <cstdint>
#include <vector>

#include "phy/fsk_modem.hpp"
#include "proto/payload_codec.hpp"
#include "util/random.hpp"

namespace uwp::proto {

struct UplinkConfig {
  phy::FskConfig fsk{};
  PayloadCodecConfig codec{};
  double noise_rms = 0.05;  // AWGN at the leader relative to unit tone amp
  // Per-device amplitude at the leader (range-dependent); empty = all 1.0.
  std::vector<double> device_gain;
};

struct UplinkResult {
  // Decoded reports per responding device id (1..N-1); index 0 unused.
  std::vector<DeviceReport> reports;
  std::vector<bool> decode_exact;  // bitstream matched what was sent
  double airtime_s = 0.0;          // duration of the longest band burst
  std::size_t payload_bits = 0;
};

class UplinkSimulator {
 public:
  explicit UplinkSimulator(UplinkConfig cfg);

  // Transmit each non-leader device's report simultaneously; decode at the
  // leader. `reports[i]` is the report of device i (index 0 ignored).
  UplinkResult run(const std::vector<DeviceReport>& reports, uwp::Rng& rng) const;

  // Airtime for one coded report at this configuration's bit rate.
  double report_airtime_s() const;

 private:
  UplinkConfig cfg_;
  phy::FskModem modem_;
  PayloadCodec codec_;
};

}  // namespace uwp::proto
