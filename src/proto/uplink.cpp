#include "proto/uplink.hpp"

#include <algorithm>
#include <stdexcept>

namespace uwp::proto {

UplinkSimulator::UplinkSimulator(UplinkConfig cfg)
    : cfg_(std::move(cfg)), modem_(cfg_.fsk), codec_(cfg_.codec) {
  if (cfg_.fsk.num_bands < cfg_.codec.protocol.num_devices)
    throw std::invalid_argument("UplinkSimulator: fewer FSK bands than devices");
}

double UplinkSimulator::report_airtime_s() const {
  return modem_.coded_duration_s(cfg_.codec.payload_bits());
}

UplinkResult UplinkSimulator::run(const std::vector<DeviceReport>& reports,
                                  uwp::Rng& rng) const {
  const std::size_t n = cfg_.codec.protocol.num_devices;
  if (reports.size() != n)
    throw std::invalid_argument("UplinkSimulator: reports size != N");

  UplinkResult out;
  out.payload_bits = cfg_.codec.payload_bits();
  out.reports.resize(n);
  out.decode_exact.assign(n, false);

  // Compose the simultaneous transmissions.
  std::vector<std::vector<std::uint8_t>> sent_bits(n);
  std::vector<double> composite;
  for (std::size_t id = 1; id < n; ++id) {
    sent_bits[id] = codec_.encode(reports[id], id);
    std::vector<double> burst = modem_.modulate_coded(sent_bits[id], id);
    const double gain =
        cfg_.device_gain.size() > id ? cfg_.device_gain[id] : 1.0;
    if (burst.size() > composite.size()) composite.resize(burst.size(), 0.0);
    for (std::size_t k = 0; k < burst.size(); ++k) composite[k] += gain * burst[k];
  }
  out.airtime_s = static_cast<double>(composite.size()) / cfg_.fsk.fs_hz;

  for (double& v : composite) v += rng.normal(0.0, cfg_.noise_rms);

  // Leader decodes every band from the shared medium.
  for (std::size_t id = 1; id < n; ++id) {
    const std::vector<std::uint8_t> decoded_bits =
        modem_.demodulate_coded(composite, id, out.payload_bits);
    out.decode_exact[id] = decoded_bits == sent_bits[id];
    out.reports[id] = codec_.decode(decoded_bits, id);
  }
  return out;
}

}  // namespace uwp::proto
