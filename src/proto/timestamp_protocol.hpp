// Timing-level simulation of the distributed timestamp protocol (§2.3).
// Devices have positions (fixing propagation delays), connectivity (who can
// hear whom), independent audio clocks (DeviceAudio scheduling errors), and
// an injectable per-link arrival-estimation error so the PHY layer's ranging
// accuracy can be threaded through. The output is the table of local receive
// timestamps T^i_j that the leader turns into pairwise distances.
#pragma once

#include <cmath>
#include <functional>
#include <vector>

#include "audio/device_audio.hpp"
#include "proto/slot_schedule.hpp"
#include "util/geometry.hpp"
#include "util/matrix.hpp"
#include "util/random.hpp"

namespace uwp::proto {

struct ProtocolDevice {
  std::size_t id = 0;
  uwp::Vec3 position;  // z = depth
  audio::AudioTimingConfig audio{};
};

struct ProtocolRun {
  // timestamps(i, j) = T^i_j: device i's local time when the message from
  // device j arrived. NaN when not heard. T^i_i is device i's own transmit
  // time in its local clock (for the leader, transmit time 0).
  Matrix timestamps;
  // heard(i, j) = 1 when device i received device j's message.
  Matrix heard;
  // Device each non-leader synchronized against (0 = leader; for relay sync
  // the ID of the first-heard device; SIZE_MAX when it never synced).
  std::vector<std::size_t> sync_ref;
  // True transmit times in global time (diagnostics / tests).
  std::vector<double> tx_global;
  // Wall-clock duration from the leader's transmission to the last packet
  // arrival anywhere — the protocol round-trip latency.
  double round_duration_s = 0.0;
};

// Arrival-error hook: extra seconds added to the detected arrival time of
// the message from `from` at device `at` (signed; from PHY simulation or an
// empirical model). Also used to model detection failures by returning NaN.
using ArrivalError = std::function<double(std::size_t at, std::size_t from)>;

class TimestampProtocol {
 public:
  TimestampProtocol(ProtocolConfig cfg, std::vector<ProtocolDevice> devices);

  const ProtocolConfig& config() const { return cfg_; }

  // Run one protocol round. `connected(i, j) > 0` means i can hear j.
  // `err` may be null for ideal arrivals.
  ProtocolRun run(const Matrix& connected, uwp::Rng& rng,
                  const ArrivalError& err = {}) const;

  // Workspace variant: identical results, reusing `out`'s tables and `ws`'s
  // scratch so repeated rounds allocate nothing. Positions are fixed at
  // construction, so the propagation-delay table is computed once.
  struct Workspace {
    std::vector<double> local_zero_global, sched_local;
  };
  void run_into(ProtocolRun& out, const Matrix& connected, uwp::Rng& rng,
                const ArrivalError& err, Workspace& ws) const;

 private:
  ProtocolConfig cfg_;
  std::vector<ProtocolDevice> devices_;
  Matrix tau_;  // pairwise propagation delays (geometry is immutable)
  std::vector<audio::DeviceAudio> audio_units_;
};

}  // namespace uwp::proto
