#include "proto/ranging_solver.hpp"

#include <cmath>
#include <vector>

namespace uwp::proto {

RangingSolution RangingSolver::solve(const ProtocolRun& run) const {
  RangingSolution out;
  solve_into(out, run);
  return out;
}

void RangingSolver::solve_into(RangingSolution& out, const ProtocolRun& run) const {
  const std::size_t n = cfg_.num_devices;
  out.distances.assign(n, n);
  out.weights.assign(n, n);
  out.two_way_links = 0;
  out.one_way_links = 0;
  const double c = cfg_.sound_speed_mps;

  auto have = [&](std::size_t i, std::size_t j) {
    return run.heard(i, j) > 0.0 && !std::isnan(run.timestamps(i, j));
  };

  // Two-way estimates.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (!(have(i, j) && have(j, i) && have(i, i) && have(j, j))) continue;
      const double d = c / 2.0 *
                       ((run.timestamps(i, j) - run.timestamps(i, i)) -
                        (run.timestamps(j, j) - run.timestamps(j, i)));
      if (d <= 0.0) continue;  // physically impossible; treat as missing
      out.distances(i, j) = out.distances(j, i) = d;
      out.weights(i, j) = out.weights(j, i) = 1.0;
      ++out.two_way_links;
    }
  }

  // One-way fallback through leader-referenced clock offsets: requires
  // two-way distances to the leader for both endpoints and leader-synced
  // local clocks (sync_ref == 0), so that local zero == leader-message
  // arrival and tau_0x == D_0x / c.
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (out.weights(i, j) > 0.0) continue;
      if (out.weights(0, i) <= 0.0 || out.weights(0, j) <= 0.0) continue;
      if (run.sync_ref[i] != 0 || run.sync_ref[j] != 0) continue;
      const double tau_0i = out.distances(0, i) / c;
      const double tau_0j = out.distances(0, j) / c;
      double d = 0.0;
      if (have(i, j) && have(j, j)) {
        d = c * (run.timestamps(i, j) - run.timestamps(j, j) + tau_0i - tau_0j);
      } else if (have(j, i) && have(i, i)) {
        d = c * (run.timestamps(j, i) - run.timestamps(i, i) + tau_0j - tau_0i);
      } else {
        continue;
      }
      if (d <= 0.0) continue;
      out.distances(i, j) = out.distances(j, i) = d;
      out.weights(i, j) = out.weights(j, i) = 1.0;
      ++out.one_way_links;
    }
  }
}

}  // namespace uwp::proto
