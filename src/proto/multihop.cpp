#include "proto/multihop.hpp"

#include <algorithm>
#include <stdexcept>

namespace uwp::proto {

double plan_airtime_s(const MultihopPlan& plan, const MultihopOptions& opts) {
  double airtime = plan.direct.empty() && plan.relays.empty()
                       ? 0.0
                       : opts.report_airtime_s;  // phase 1
  if (plan.relays.empty()) return airtime;
  // Phase 2: the busiest relay forwards its queue sequentially; relays in
  // different bands run concurrently.
  std::size_t busiest = 0;
  for (const RelayAssignment& a : plan.relays) {
    std::size_t load = 0;
    for (const RelayAssignment& b : plan.relays)
      if (b.relay == a.relay) ++load;
    busiest = std::max(busiest, load);
  }
  return airtime + static_cast<double>(busiest) * opts.report_airtime_s;
}

MultihopPlan plan_multihop_uplink(const Matrix& connectivity,
                                  const MultihopOptions& opts) {
  const std::size_t n = connectivity.rows();
  if (connectivity.cols() != n || n < 2)
    throw std::invalid_argument("plan_multihop_uplink: bad connectivity matrix");

  MultihopPlan plan;
  std::vector<bool> in_range(n, false);
  for (std::size_t i = 1; i < n; ++i) {
    if (connectivity(0, i) > 0.0) {
      in_range[i] = true;
      plan.direct.push_back(i);
    }
  }

  // Assign each stranded device the least-loaded in-range neighbor.
  std::vector<std::size_t> load(n, 0);
  for (std::size_t i = 1; i < n; ++i) {
    if (in_range[i]) continue;
    std::optional<std::size_t> best;
    for (std::size_t j = 1; j < n; ++j) {
      if (j == i || !in_range[j] || connectivity(i, j) <= 0.0) continue;
      if (load[j] >= opts.max_forwards_per_relay) continue;
      if (!best || load[j] < load[*best]) best = j;
    }
    if (best) {
      plan.relays.push_back({i, *best});
      ++load[*best];
    } else {
      plan.unreachable.push_back(i);
    }
  }

  plan.total_airtime_s = plan_airtime_s(plan, opts);
  return plan;
}

}  // namespace uwp::proto
