// TDM slot arithmetic for the distributed timestamp protocol (§2.3). The
// leader (ID 0) initiates; device i transmits at local time
//   T_i = delta0 + (i - 1) * delta1
// after it hears the leader, where delta1 = T_packet + T_guard. Devices out
// of the leader's range synchronize off the first message they hear instead
// (relay sync), transmitting either in their normal slot or, if their slot
// has already passed, in slot N + i - j relative to the reference message.
#pragma once

#include <cstddef>

namespace uwp::proto {

struct ProtocolConfig {
  std::size_t num_devices = 5;  // N, including the leader
  double delta0_s = 0.600;      // leader-message processing + audio latency
  double t_packet_s = 0.278;    // message duration
  double t_guard_s = 0.042;     // guard = 2 * tau_max (32 m at 1500 m/s)
  double sound_speed_mps = 1500.0;
  double fs_hz = 44100.0;

  double delta1_s() const { return t_packet_s + t_guard_s; }  // 0.320 s
  // Maximum one-way propagation delay the guard interval tolerates.
  double tau_max_s() const { return t_guard_s / 2.0; }
  double max_range_m() const { return tau_max_s() * sound_speed_mps; }
};

// Local transmit time for device `id` (1..N-1) synced directly to the leader.
double slot_time_leader_sync(const ProtocolConfig& cfg, std::size_t id);

// Relay sync: device `id` first heard the message of device `ref` (not the
// leader) at local time t_ref. Returns the local transmit time: the normal
// slot offset when it is still in the future ((id - ref) * delta1 > delta0),
// otherwise the wrap-around slot after all N devices (§2.3).
double slot_time_relay_sync(const ProtocolConfig& cfg, std::size_t id, std::size_t ref,
                            double t_ref_local);

// Whether device `id` hearing `ref` first can still make its normal slot.
bool relay_slot_in_future(const ProtocolConfig& cfg, std::size_t id, std::size_t ref);

// Protocol round duration when all devices are in the leader's range:
// delta0 + (N - 1) * delta1 (§2.3 latency analysis).
double round_trip_all_in_range(const ProtocolConfig& cfg);

// Worst-case round duration with relay sync: delta0 + 2 (N - 1) * delta1.
double round_trip_worst_case(const ProtocolConfig& cfg);

}  // namespace uwp::proto
