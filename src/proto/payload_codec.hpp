// Report compression for the post-protocol uplink (§2.4). Each device sends
// the leader: its depth (8 bits at 0.2 m resolution, 0-51 m) and, for every
// other device, the difference between the message arrival timestamp and
// that device's assigned slot start, bounded by [0, 2*tau_max) and quantized
// to 2 samples (10 bits). Total 10 (N-1) + 8 bits per device.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "proto/slot_schedule.hpp"

namespace uwp::proto {

// Bitstream primitives shared by the payload codec and the fleet wire codec
// (src/fleet/wire.*): MSB-first fields over a vector holding one bit per
// byte. pop_bits throws std::invalid_argument on a truncated stream.
void push_bits(std::vector<std::uint8_t>& out, unsigned value, unsigned bits);
unsigned pop_bits(const std::vector<std::uint8_t>& in, std::size_t& pos, unsigned bits);

struct DeviceReport {
  double depth_m = 0.0;
  // slot_delta[j]: arrival time of device j's message minus j's slot start,
  // seconds; nullopt when the message was not heard. Entry for the device's
  // own ID must be nullopt.
  std::vector<std::optional<double>> slot_delta_s;
};

struct PayloadCodecConfig {
  ProtocolConfig protocol{};
  double depth_resolution_m = 0.2;
  unsigned depth_bits = 8;
  unsigned timestamp_bits = 10;
  unsigned timestamp_resolution_samples = 2;

  std::size_t payload_bits() const {
    return depth_bits + timestamp_bits * (protocol.num_devices - 1);
  }
};

class PayloadCodec {
 public:
  explicit PayloadCodec(PayloadCodecConfig cfg);

  const PayloadCodecConfig& config() const { return cfg_; }

  // `self_id` owns the report; its own slot entry is skipped on the wire.
  std::vector<std::uint8_t> encode(const DeviceReport& report, std::size_t self_id) const;
  DeviceReport decode(const std::vector<std::uint8_t>& bits, std::size_t self_id) const;

  // Quantization round trips exposed for tests.
  unsigned quantize_depth(double depth_m) const;
  double dequantize_depth(unsigned q) const;
  unsigned quantize_delta(double delta_s) const;  // saturates to the field max
  double dequantize_delta(unsigned q) const;

  // Sentinel (all ones) marking "message not heard".
  unsigned missing_sentinel() const { return (1u << cfg_.timestamp_bits) - 1u; }

 private:
  PayloadCodecConfig cfg_;
};

struct ProtocolRun;  // timestamp_protocol.hpp

// Apply the §2.4 wire quantization in place to a protocol run's timestamp
// table: leader-synced devices report each arrival as a 10-bit slot-relative
// delta at 2-sample resolution, so the leader only ever sees the quantized
// values. Relay-synced transmitters ride as-is (their slot start is not
// leader-referenced), as do deltas outside the field range. Shared by the
// closed-form round driver (sim::ScenarioRunner) and the packet-level DES.
void quantize_run_payload(ProtocolRun& run, const PayloadCodecConfig& cfg);

}  // namespace uwp::proto
