// Turns the timestamp table of a protocol run into a pairwise distance
// matrix (§2.3):
//   D_ij = (c/2) * [(T^i_j - T^i_i) - (T^j_j - T^j_i)]
// For pairs with one lost direction, a one-way fallback recovers the
// distance through the leader-referenced clock offsets (the paper's "some
// device k heard by both" observation, instantiated with k = leader):
//   tau_ij = T^i_j - T^j_j + tau_0i - tau_0j.
#pragma once

#include "proto/timestamp_protocol.hpp"
#include "util/matrix.hpp"

namespace uwp::proto {

struct RangingSolution {
  Matrix distances;  // meters; 0 where unknown
  Matrix weights;    // 1 = measured, 0 = missing
  std::size_t two_way_links = 0;
  std::size_t one_way_links = 0;  // recovered via the leader-offset fallback
};

class RangingSolver {
 public:
  explicit RangingSolver(ProtocolConfig cfg) : cfg_(cfg) {}

  RangingSolution solve(const ProtocolRun& run) const;

  // Workspace variant: identical results, reusing `out`'s matrices so
  // steady-state rounds allocate nothing.
  void solve_into(RangingSolution& out, const ProtocolRun& run) const;

 private:
  ProtocolConfig cfg_;
};

}  // namespace uwp::proto
