// Two-hop report relaying — the gap §5 calls out: the timestamp protocol
// tolerates devices out of the leader's range (relay sync), but the §2.4
// uplink assumes every device can reach the leader directly. This extension
// plans relay routes for the stranded reports: an in-range device forwards a
// stranded device's payload in a second uplink phase, and the planner picks
// relays that minimize added airtime while respecting per-band capacity.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "proto/payload_codec.hpp"
#include "util/matrix.hpp"

namespace uwp::proto {

struct RelayAssignment {
  std::size_t source = 0;  // device whose report needs forwarding
  std::size_t relay = 0;   // in-range device that forwards it
};

struct MultihopPlan {
  // Devices that can reach the leader directly (phase 1, simultaneous FSK).
  std::vector<std::size_t> direct;
  // Phase-2 forwards; empty when everyone is in range.
  std::vector<RelayAssignment> relays;
  // Devices with no route to the leader at all (isolated).
  std::vector<std::size_t> unreachable;
  // Total uplink airtime: phase 1 + (phase 2 if any), seconds.
  double total_airtime_s = 0.0;

  bool complete() const { return unreachable.empty(); }
};

struct MultihopOptions {
  // Airtime for one report burst at the uplink bit rate (seconds).
  double report_airtime_s = 1.0;
  // Maximum forwarded reports per relay in phase 2 (a relay retransmits
  // each forwarded report sequentially inside its band).
  std::size_t max_forwards_per_relay = 2;
};

// Plan the uplink for `connectivity` (symmetric, connectivity(i, j) > 0 when
// i can hear j; device 0 is the leader). Relays are chosen by fewest-loaded
// first among the source's in-range neighbors.
MultihopPlan plan_multihop_uplink(const Matrix& connectivity,
                                  const MultihopOptions& opts = {});

// Airtime of a plan given per-phase durations: phase 1 is one report burst
// (all direct devices transmit simultaneously); phase 2 lasts as long as the
// busiest relay's forward queue.
double plan_airtime_s(const MultihopPlan& plan, const MultihopOptions& opts);

}  // namespace uwp::proto
