// Fixed log-bucket histogram for span latencies and depth samples.
//
// Buckets are geometric: bucket b covers [min * 2^(b/P), min * 2^((b+1)/P))
// with P buckets per octave, so relative resolution is constant (~19% per
// bucket at P = 4) across the whole range and recording is O(1) with no
// allocation after construction. The default config spans 1 ns to ~3e5
// (48 octaves), wide enough for sub-microsecond quantize spans, multi-ms
// solver spans, and integer queue depths alike.
//
// Bucketing is exact at octave boundaries (frexp, not a raw log), which is
// what the bucket-edge tests pin: value min*2^k lands in bucket k*P, never
// one off due to libm rounding. Quantiles walk the cumulative counts and
// report the geometric midpoint of the target bucket, clamped to the exact
// observed [min_seen, max_seen] range.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace uwp::telemetry {

class Histogram {
 public:
  // `min_value`: lower edge of bucket 0 (values below clamp into bucket 0).
  // `buckets_per_octave`: resolution P. `buckets`: total bucket count.
  explicit Histogram(double min_value = 1e-9, int buckets_per_octave = 4,
                     std::size_t buckets = 192);

  void record(double v);

  // Quantile in (0, 1]; 0.5 = p50. Returns 0 for an empty histogram.
  double quantile(double q) const;

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / double(count_); }
  double min_seen() const { return count_ == 0 ? 0.0 : min_seen_; }
  double max_seen() const { return count_ == 0 ? 0.0 : max_seen_; }

  // Bucket geometry (exposed for the edge tests and the merge check).
  std::size_t bucket_index(double v) const;
  double bucket_lower_edge(std::size_t b) const;
  std::size_t buckets() const { return counts_.size(); }
  double min_value() const { return min_; }
  int buckets_per_octave() const { return per_octave_; }

  // Add `o`'s counts into this histogram. Throws std::invalid_argument if
  // the bucket geometries differ.
  void merge(const Histogram& o);

 private:
  double min_ = 1e-9;
  int per_octave_ = 4;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_seen_ = 0.0;
  double max_seen_ = 0.0;
};

}  // namespace uwp::telemetry
