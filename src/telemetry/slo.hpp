// SLO scoreboard: a deterministic reducer over the counter plane plus
// per-kind position-error CDFs, with run-varying round-latency tails kept
// on their own side of the fence — the same metrics-vs-timing contract the
// rest of the telemetry layer enforces.
//
// Everything in SloReport except the latency_* / rounds_per_sec fields is
// a pure function of the deterministic inputs (counter totals, per-kind
// round/error tallies), so two runs of the same spec at different
// shard/worker/thread counts produce bit-identical scoreboards — uwp_run
// renders the deterministic half as the "slo" JSON section (exact double
// round-trips via config::Json) and CI byte-diffs it across --threads=1/4.
//
// Layering: this file consumes plain structs; adapters living in the
// layers that own the data (fleet::make_slo_inputs) fold FleetResult and
// TelemetryReport into SloInputs, keeping telemetry/ free of upward
// dependencies.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/events.hpp"

namespace uwp::telemetry {

// Quantile summary of one error population. Percentile definition is
// util/stats.hpp's linear interpolation between order statistics, computed
// from the sorted samples — deterministic given a deterministic multiset.
struct SloCdf {
  std::uint64_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

// Sorts `samples` and reduces them; all-zero summary for an empty input.
SloCdf make_slo_cdf(std::vector<double> samples);

struct SloKindInput {
  std::string kind;  // GroupScenarioKind name
  std::uint64_t sessions = 0;
  std::uint64_t rounds = 0;
  std::uint64_t localized = 0;
  std::uint64_t coasts = 0;
  std::vector<double> errors;  // per-round position RMS errors
};

struct SloInputs {
  // Counter-plane totals (authoritative for evict/shed/warm-start rates).
  std::array<std::uint64_t, kCounterCount> totals{};
  bool have_totals = false;
  std::vector<SloKindInput> kinds;
  // Run-varying: per-round wall latencies and total wall time.
  std::vector<double> latency_s;
  double wall_s = 0.0;
};

struct SloKindReport {
  std::string kind;
  std::uint64_t sessions = 0;
  std::uint64_t rounds = 0;
  std::uint64_t localized = 0;
  std::uint64_t coasts = 0;
  double localized_rate = 0.0;
  double coast_rate = 0.0;
  SloCdf error;
};

struct SloReport {
  // Deterministic scoreboard (the "slo" JSON section).
  std::uint64_t sessions = 0;
  std::uint64_t rounds = 0;
  std::uint64_t localized = 0;
  std::uint64_t coasts = 0;
  std::uint64_t evicts = 0;
  std::uint64_t sheds = 0;
  std::uint64_t defers = 0;
  std::uint64_t localize_failures = 0;
  std::uint64_t warm_hits = 0;
  std::uint64_t warm_misses = 0;
  double localized_rate = 0.0;  // localized / rounds
  double coast_rate = 0.0;      // coasts / rounds
  double evict_rate = 0.0;      // evicts / rounds
  double shed_rate = 0.0;       // sheds / rounds
  double warm_start_hit_rate = 0.0;  // hits / (hits + misses)
  SloCdf error;                      // all kinds pooled
  std::vector<SloKindReport> kinds;
  // Run-varying tails (the "timing" JSON section).
  std::uint64_t latency_count = 0;
  double rounds_per_sec = 0.0;
  double latency_p50_s = 0.0;
  double latency_p99_s = 0.0;
  double latency_p999_s = 0.0;
};

SloReport build_slo_report(const SloInputs& in);

}  // namespace uwp::telemetry
