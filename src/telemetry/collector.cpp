#include "telemetry/collector.hpp"

#include <algorithm>
#include <cmath>

namespace uwp::telemetry {

const char* to_string(FlightTrigger t) {
  switch (t) {
    case FlightTrigger::kEvictStorm:
      return "evict_storm";
    case FlightTrigger::kShedBurst:
      return "shed_burst";
    case FlightTrigger::kSolverStall:
      return "solver_stall";
    case FlightTrigger::kRingOverflow:
      return "ring_overflow";
    case FlightTrigger::kCount_:
      break;
  }
  return "unknown";
}

bool TelemetryReport::counters_equal(const TelemetryReport& o) const {
  if (totals != o.totals) return false;
  if (snapshots.size() != o.snapshots.size()) return false;
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    if (snapshots[i].window != o.snapshots[i].window) return false;
    if (snapshots[i].counts != o.snapshots[i].counts) return false;
  }
  return true;
}

ShardStream::ShardStream(const TelemetryOptions& opts, std::size_t index,
                         Clock::time_point epoch)
    : window_(opts.window > 0.0 ? opts.window : 1.0),
      timing_(opts.timing),
      trace_(opts.trace),
      index_(index),
      trace_max_(opts.trace_max_spans),
      epoch_(epoch),
      bus_(opts.ring_capacity) {}

void ShardStream::set_time(double t) {
  time_ = t;
  const double w = std::floor(t / window_);
  window_index_ = w > 0.0 ? static_cast<std::size_t>(w) : 0;
}

void ShardStream::count(Counter c, std::uint64_t delta) {
  if (window_index_ >= pages_.size()) pages_.resize(window_index_ + 1);
  pages_[window_index_][static_cast<std::size_t>(c)] += delta;
  // Best-effort live copy on the ring; determinism comes from the page.
  bus_.try_push(Event{EventKind::kCounter, static_cast<std::uint8_t>(c), time_,
                      double(delta)});
}

void ShardStream::sample(Sample s, double value) {
  bus_.try_push(
      Event{EventKind::kSample, static_cast<std::uint8_t>(s), time_, value});
}

void ShardStream::span(Stage s, double seconds) {
  bus_.try_push(
      Event{EventKind::kSpan, static_cast<std::uint8_t>(s), time_, seconds});
}

double ShardStream::trace_now() const {
  if (!trace_) return 0.0;
  const std::chrono::duration<double> dt = Clock::now() - epoch_;
  return dt.count();
}

void ShardStream::trace_span(std::uint64_t trace_id, TraceOp op,
                             TraceOp parent, double ts0_s) {
  if (!trace_ || trace_id == 0) return;
  if (trace_spans_.size() >= trace_max_) {
    ++trace_dropped_;
    return;
  }
  const double dur = trace_now() - ts0_s;
  trace_spans_.push_back(TraceSpan{trace_id, op, parent,
                                   static_cast<std::uint16_t>(index_), time_,
                                   ts0_s, dur});
  // Live mirror for tailers and the flight recorder; the producer-local
  // vector above is the authoritative structural record.
  bus_.try_push(Event{EventKind::kTraceSpan, static_cast<std::uint8_t>(op),
                      time_, dur, trace_id});
}

Collector::Collector(const TelemetryOptions& opts)
    : opts_(opts), epoch_(std::chrono::steady_clock::now()) {
  // Depth samples are small integers; spans are seconds. One geometry (1 ns
  // to ~3e5) covers both, which keeps merge() trivial.
}

void Collector::open(std::size_t n) {
  const std::lock_guard<std::mutex> lock(mu_);
  streams_.clear();
  streams_.reserve(n);
  epoch_ = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < n; ++i)
    streams_.push_back(std::make_unique<ShardStream>(opts_, i, epoch_));
  flight_.assign(n, FlightRing());
  dumps_.clear();
  for (Histogram& h : spans_) h = Histogram();
  for (Histogram& h : samples_) h = Histogram();
  events_ = 0;
}

void Collector::flight_dump(std::size_t stream, FlightRing& fr,
                            FlightTrigger trig, double t,
                            std::uint64_t window) {
  const std::size_t ti = static_cast<std::size_t>(trig);
  if (fr.dumps >= opts_.flight.max_dumps) return;
  if (fr.last_dump_window[ti] == window) return;  // once per window/trigger
  fr.last_dump_window[ti] = window;
  ++fr.dumps;
  FlightDump d;
  d.stream = stream;
  d.trigger = trig;
  d.t = t;
  d.window = window;
  if (fr.full) {
    d.events.insert(d.events.end(), fr.ring.begin() + fr.next, fr.ring.end());
    d.events.insert(d.events.end(), fr.ring.begin(),
                    fr.ring.begin() + fr.next);
  } else {
    d.events.insert(d.events.end(), fr.ring.begin(), fr.ring.end());
  }
  dumps_.push_back(std::move(d));
}

void Collector::flight_observe(std::size_t stream, FlightRing& fr,
                               const Event& e) {
  // Retain the event (append until full, then overwrite the oldest slot).
  if (fr.ring.size() < opts_.flight.capacity) {
    fr.ring.push_back(e);
  } else {
    fr.ring[fr.next] = e;
    fr.next = (fr.next + 1) % fr.ring.size();
    fr.full = true;
  }
  if (e.kind != EventKind::kCounter) return;
  // Windowed trigger counts; the window key mirrors the counter plane's.
  const double w = std::floor(e.t / (opts_.window > 0.0 ? opts_.window : 1.0));
  const std::uint64_t window = w > 0.0 ? static_cast<std::uint64_t>(w) : 0;
  if (window != fr.window) {
    fr.window = window;
    fr.counts.fill(0);
  }
  const Counter c = static_cast<Counter>(e.id);
  const std::uint64_t delta = static_cast<std::uint64_t>(e.value);
  if (c == Counter::kEvicts) {
    const std::size_t ti = static_cast<std::size_t>(FlightTrigger::kEvictStorm);
    fr.counts[ti] += delta;
    if (fr.counts[ti] >= opts_.flight.evict_storm)
      flight_dump(stream, fr, FlightTrigger::kEvictStorm, e.t, window);
  } else if (c == Counter::kIngestShed) {
    const std::size_t ti = static_cast<std::size_t>(FlightTrigger::kShedBurst);
    fr.counts[ti] += delta;
    if (fr.counts[ti] >= opts_.flight.shed_burst)
      flight_dump(stream, fr, FlightTrigger::kShedBurst, e.t, window);
  } else if (c == Counter::kLocalizeFailures) {
    const std::size_t ti =
        static_cast<std::size_t>(FlightTrigger::kSolverStall);
    fr.counts[ti] += delta;
    if (fr.counts[ti] >= opts_.flight.localize_failures)
      flight_dump(stream, fr, FlightTrigger::kSolverStall, e.t, window);
  }
}

void Collector::drain() {
  const std::lock_guard<std::mutex> lock(mu_);
  drain_locked();
}

void Collector::drain_locked() {
  Event buf[256];
  const bool flight_on = opts_.flight.capacity > 0;
  for (std::size_t si = 0; si < streams_.size(); ++si) {
    ShardStream& s = *streams_[si];
    FlightRing& fr = flight_[si];
    for (;;) {
      const std::size_t n = s.bus().pop(buf, std::size(buf));
      if (n == 0) break;
      events_ += n;
      for (std::size_t i = 0; i < n; ++i) {
        const Event& e = buf[i];
        switch (e.kind) {
          case EventKind::kSpan:
            if (e.id < kStageCount) spans_[e.id].record(e.value);
            break;
          case EventKind::kSample:
            if (e.id < kSampleCount) samples_[e.id].record(e.value);
            break;
          case EventKind::kCounter:
            break;  // counted deterministically via the pages
          case EventKind::kTraceSpan:
            break;  // authoritative copy lives in the producer vector
        }
        if (flight_on) flight_observe(si, fr, e);
      }
    }
    if (flight_on) {
      const std::uint64_t dropped = s.bus().dropped();
      if (dropped > fr.dropped_seen) {
        fr.dropped_seen = dropped;
        flight_dump(si, fr, FlightTrigger::kRingOverflow, s.time(),
                    fr.window == ~0ull ? 0 : fr.window);
      }
    }
  }
}

Snapshot Collector::window_snapshot(std::uint64_t w) const {
  const std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.window = w;
  for (const std::unique_ptr<ShardStream>& s : streams_) {
    const std::vector<ShardStream::CounterPage>& pages = s->pages();
    if (w >= pages.size()) continue;
    for (std::size_t c = 0; c < kCounterCount; ++c)
      snap.counts[c] += pages[w][c];
  }
  return snap;
}

std::size_t Collector::window_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t windows = 0;
  for (const std::unique_ptr<ShardStream>& s : streams_)
    windows = std::max(windows, s->pages().size());
  return windows;
}

TelemetryReport Collector::report() {
  const std::lock_guard<std::mutex> lock(mu_);
  drain_locked();
  TelemetryReport rep;
  rep.options = opts_;
  rep.streams = streams_.size();
  std::size_t windows = 0;
  for (const std::unique_ptr<ShardStream>& s : streams_)
    windows = std::max(windows, s->pages().size());
  rep.snapshots.resize(windows);
  for (std::size_t w = 0; w < windows; ++w) rep.snapshots[w].window = w;
  for (const std::unique_ptr<ShardStream>& s : streams_) {
    const std::vector<ShardStream::CounterPage>& pages = s->pages();
    for (std::size_t w = 0; w < pages.size(); ++w)
      for (std::size_t c = 0; c < kCounterCount; ++c)
        rep.snapshots[w].counts[c] += pages[w][c];
    rep.dropped += s->bus().dropped();
    rep.trace.insert(rep.trace.end(), s->trace_spans().begin(),
                     s->trace_spans().end());
    rep.trace_dropped += s->trace_dropped();
  }
  for (const Snapshot& snap : rep.snapshots)
    for (std::size_t c = 0; c < kCounterCount; ++c)
      rep.totals[c] += snap.counts[c];
  rep.spans = spans_;
  rep.samples = samples_;
  rep.events = events_;
  rep.flight = dumps_;
  return rep;
}

}  // namespace uwp::telemetry
