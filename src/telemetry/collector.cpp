#include "telemetry/collector.hpp"

#include <algorithm>
#include <cmath>

namespace uwp::telemetry {

bool TelemetryReport::counters_equal(const TelemetryReport& o) const {
  if (totals != o.totals) return false;
  if (snapshots.size() != o.snapshots.size()) return false;
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    if (snapshots[i].window != o.snapshots[i].window) return false;
    if (snapshots[i].counts != o.snapshots[i].counts) return false;
  }
  return true;
}

ShardStream::ShardStream(const TelemetryOptions& opts)
    : window_(opts.window > 0.0 ? opts.window : 1.0),
      timing_(opts.timing),
      bus_(opts.ring_capacity) {}

void ShardStream::set_time(double t) {
  time_ = t;
  const double w = std::floor(t / window_);
  window_index_ = w > 0.0 ? static_cast<std::size_t>(w) : 0;
}

void ShardStream::count(Counter c, std::uint64_t delta) {
  if (window_index_ >= pages_.size()) pages_.resize(window_index_ + 1);
  pages_[window_index_][static_cast<std::size_t>(c)] += delta;
  // Best-effort live copy on the ring; determinism comes from the page.
  bus_.try_push(Event{EventKind::kCounter, static_cast<std::uint8_t>(c), time_,
                      double(delta)});
}

void ShardStream::sample(Sample s, double value) {
  bus_.try_push(
      Event{EventKind::kSample, static_cast<std::uint8_t>(s), time_, value});
}

void ShardStream::span(Stage s, double seconds) {
  bus_.try_push(
      Event{EventKind::kSpan, static_cast<std::uint8_t>(s), time_, seconds});
}

Collector::Collector(const TelemetryOptions& opts) : opts_(opts) {
  // Depth samples are small integers; spans are seconds. One geometry (1 ns
  // to ~3e5) covers both, which keeps merge() trivial.
}

void Collector::open(std::size_t n) {
  streams_.clear();
  streams_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    streams_.push_back(std::make_unique<ShardStream>(opts_));
  for (Histogram& h : spans_) h = Histogram();
  for (Histogram& h : samples_) h = Histogram();
  events_ = 0;
}

void Collector::drain() {
  Event buf[256];
  for (const std::unique_ptr<ShardStream>& s : streams_) {
    for (;;) {
      const std::size_t n = s->bus().pop(buf, std::size(buf));
      if (n == 0) break;
      events_ += n;
      for (std::size_t i = 0; i < n; ++i) {
        const Event& e = buf[i];
        switch (e.kind) {
          case EventKind::kSpan:
            if (e.id < kStageCount) spans_[e.id].record(e.value);
            break;
          case EventKind::kSample:
            if (e.id < kSampleCount) samples_[e.id].record(e.value);
            break;
          case EventKind::kCounter:
            break;  // counted deterministically via the pages
        }
      }
    }
  }
}

TelemetryReport Collector::report() {
  drain();
  TelemetryReport rep;
  rep.options = opts_;
  rep.streams = streams_.size();
  std::size_t windows = 0;
  for (const std::unique_ptr<ShardStream>& s : streams_)
    windows = std::max(windows, s->pages().size());
  rep.snapshots.resize(windows);
  for (std::size_t w = 0; w < windows; ++w) rep.snapshots[w].window = w;
  for (const std::unique_ptr<ShardStream>& s : streams_) {
    const std::vector<ShardStream::CounterPage>& pages = s->pages();
    for (std::size_t w = 0; w < pages.size(); ++w)
      for (std::size_t c = 0; c < kCounterCount; ++c)
        rep.snapshots[w].counts[c] += pages[w][c];
    rep.dropped += s->bus().dropped();
  }
  for (const Snapshot& snap : rep.snapshots)
    for (std::size_t c = 0; c < kCounterCount; ++c)
      rep.totals[c] += snap.counts[c];
  rep.spans = spans_;
  rep.samples = samples_;
  rep.events = events_;
  return rep;
}

}  // namespace uwp::telemetry
