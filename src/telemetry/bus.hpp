// telemetry::Bus — the lock-free single-producer/single-consumer event ring
// that carries one shard's live telemetry stream to the collector.
//
// Hot-path contract: try_push never blocks and never allocates. When the
// consumer has fallen behind and the ring is full, the event is dropped and
// a producer-side drop counter is bumped (relaxed atomic) — backpressure is
// accounted, never propagated into the round pipeline. Deterministic
// counters do NOT rely on ring delivery (see ShardStream's counter pages in
// collector.hpp); only the run-varying timing stream is lossy.
//
// The implementation is the classic bounded SPSC ring: power-of-two
// capacity, monotonically increasing produced/consumed positions with
// release/acquire publication, and producer/consumer-local position caches
// on their own cache lines so the steady-state push touches no shared line.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "telemetry/events.hpp"

namespace uwp::telemetry {

class Bus {
 public:
  // Capacity is rounded up to a power of two, minimum 8 slots.
  explicit Bus(std::size_t capacity) {
    std::size_t cap = 8;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  Bus(const Bus&) = delete;
  Bus& operator=(const Bus&) = delete;

  // Producer side. Returns false (and counts a drop) when the ring is full.
  bool try_push(const Event& e) {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_cache_ >= slots_.size()) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (t - head_cache_ >= slots_.size()) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }
    slots_[static_cast<std::size_t>(t) & mask_] = e;
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  // Consumer side: drain up to `max` events into `out`, FIFO order.
  std::size_t pop(Event* out, std::size_t max) {
    std::uint64_t h = head_.load(std::memory_order_relaxed);
    if (h == tail_cache_) tail_cache_ = tail_.load(std::memory_order_acquire);
    std::size_t n = 0;
    while (h != tail_cache_ && n < max) {
      out[n++] = slots_[static_cast<std::size_t>(h) & mask_];
      ++h;
    }
    if (n != 0) head_.store(h, std::memory_order_release);
    return n;
  }

  std::size_t capacity() const { return slots_.size(); }

  // Events lost to overflow since construction. Readable from any thread.
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<Event> slots_;
  std::size_t mask_ = 0;
  // Produced / consumed positions (free-running, wrap via mask).
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  alignas(64) std::atomic<std::uint64_t> head_{0};
  // Producer's stale view of head_ / consumer's stale view of tail_: each
  // side refreshes its cache only when the ring looks full/empty.
  alignas(64) std::uint64_t head_cache_ = 0;
  alignas(64) std::uint64_t tail_cache_ = 0;
  alignas(64) std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace uwp::telemetry
