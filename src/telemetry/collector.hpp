// ShardStream + Collector: the two halves of the fleet telemetry plane.
//
// One ShardStream per producer thread (a fleet shard, a server worker, or
// the ingest loop). It carries two planes with different guarantees:
//
//   * Counter pages — deterministic. count() accumulates into a producer-
//     local dense page indexed by (virtual-time window, Counter). Pages are
//     never dropped and never contended; the collector merges them in
//     stream order, and because every counter event carries virtual time
//     (fleet tick / frame t_s), the per-window sums are invariant to how
//     sessions are partitioned across shards, workers, or threads. This is
//     the section uwp_run emits as "counters" and CI diffs bit-for-bit.
//   * The Bus ring — run-varying. Every event (counters included, as a live
//     stream) is also pushed onto the shard's SPSC Bus; span timers and
//     scalar samples exist only there. Ring overflow drops the event and
//     bumps the drop counter — the hot path never blocks.
//
// The Collector owns the streams, drains the rings into log-bucket
// histograms (concurrently with producers if desired — Bus is SPSC and the
// collector is the one consumer), and renders the final TelemetryReport:
// deterministic window Snapshots + totals, and run-varying span/sample
// histograms with drop accounting.
//
// Threading: open() before producers start; each stream is written by
// exactly one thread; report() only after producers have joined (it reads
// the counter pages, which are intentionally unsynchronized).
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "telemetry/bus.hpp"
#include "telemetry/events.hpp"
#include "telemetry/histogram.hpp"

namespace uwp::telemetry {

struct TelemetryOptions {
  bool enabled = false;
  // Span timers read steady_clock twice per stage; disabling `timing` keeps
  // the deterministic counter plane while skipping every clock read.
  bool timing = true;
  // Snapshot window in virtual-time units (ticks for the fleet driver,
  // seconds for the ingest server — the factory scales by tick_period_s).
  double window = 16.0;
  // Per-stream Bus capacity (rounded up to a power of two).
  std::size_t ring_capacity = 1 << 15;
};

// Per-window deterministic counter sums, merged across streams.
struct Snapshot {
  std::uint64_t window = 0;  // window index: floor(t / options.window)
  std::array<std::uint64_t, kCounterCount> counts{};
};

struct TelemetryReport {
  TelemetryOptions options;
  std::size_t streams = 0;
  // Deterministic plane: one Snapshot per window, dense from window 0.
  std::vector<Snapshot> snapshots;
  std::array<std::uint64_t, kCounterCount> totals{};
  // Run-varying plane.
  std::array<Histogram, kStageCount> spans;
  std::array<Histogram, kSampleCount> samples;
  std::uint64_t events = 0;   // events drained from the rings
  std::uint64_t dropped = 0;  // ring-overflow drops across all streams

  // Bit-equality of the deterministic plane (the ctest pin).
  bool counters_equal(const TelemetryReport& o) const;
};

class ShardStream {
 public:
  explicit ShardStream(const TelemetryOptions& opts);

  // Set the producer's current virtual time; subsequent count() calls land
  // in floor(t / window). Negative times clamp to window 0.
  void set_time(double t);
  double time() const { return time_; }

  void count(Counter c, std::uint64_t delta = 1);
  void sample(Sample s, double value);
  void span(Stage s, double seconds);

  bool timing_enabled() const { return timing_; }
  Bus& bus() { return bus_; }

  // Consumer-side view of the deterministic pages (post-join only).
  using CounterPage = std::array<std::uint64_t, kCounterCount>;
  const std::vector<CounterPage>& pages() const { return pages_; }

 private:
  double window_ = 16.0;
  bool timing_ = true;
  double time_ = 0.0;
  std::size_t window_index_ = 0;
  std::vector<CounterPage> pages_;
  Bus bus_;
};

// Scoped wall-clock span timer. Cost when the stream is null or timing is
// disabled: one branch, no clock read.
class SpanTimer {
 public:
  SpanTimer(ShardStream* s, Stage stage)
      : s_(s != nullptr && s->timing_enabled() ? s : nullptr), stage_(stage) {
    if (s_ != nullptr) t0_ = std::chrono::steady_clock::now();
  }
  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;
  ~SpanTimer() { stop(); }

  // Emits the span and returns its duration in seconds (0.0 when timing is
  // off), so callers can accumulate stage times into an aggregate span.
  double stop() {
    if (s_ == nullptr) return 0.0;
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0_;
    s_->span(stage_, dt.count());
    s_ = nullptr;
    return dt.count();
  }

 private:
  ShardStream* s_;
  Stage stage_;
  std::chrono::steady_clock::time_point t0_;
};

class Collector {
 public:
  explicit Collector(const TelemetryOptions& opts);

  const TelemetryOptions& options() const { return opts_; }
  bool enabled() const { return opts_.enabled; }

  // Allocate `n` producer streams (invalidates previous ones). Call before
  // the producer threads start.
  void open(std::size_t n);
  std::size_t streams() const { return streams_.size(); }
  ShardStream& stream(std::size_t i) { return *streams_[i]; }

  // Drain every stream's Bus into the timing accumulators. Safe to call
  // while producers are live (the collector is the single consumer).
  void drain();

  // Final report: drains, then merges counter pages in stream order.
  // Producers must have finished.
  TelemetryReport report();

 private:
  TelemetryOptions opts_;
  std::vector<std::unique_ptr<ShardStream>> streams_;
  std::array<Histogram, kStageCount> spans_;
  std::array<Histogram, kSampleCount> samples_;
  std::uint64_t events_ = 0;
};

}  // namespace uwp::telemetry
