// ShardStream + Collector: the two halves of the fleet telemetry plane.
//
// One ShardStream per producer thread (a fleet shard, a server worker, or
// the ingest loop). It carries two planes with different guarantees:
//
//   * Counter pages — deterministic. count() accumulates into a producer-
//     local dense page indexed by (virtual-time window, Counter). Pages are
//     never dropped and never contended; the collector merges them in
//     stream order, and because every counter event carries virtual time
//     (fleet tick / frame t_s), the per-window sums are invariant to how
//     sessions are partitioned across shards, workers, or threads. This is
//     the section uwp_run emits as "counters" and CI diffs bit-for-bit.
//   * The Bus ring — run-varying. Every event (counters included, as a live
//     stream) is also pushed onto the shard's SPSC Bus; span timers and
//     scalar samples exist only there. Ring overflow drops the event and
//     bumps the drop counter — the hot path never blocks.
//
// The Collector owns the streams, drains the rings into log-bucket
// histograms (concurrently with producers if desired — Bus is SPSC and the
// collector is the one consumer), and renders the final TelemetryReport:
// deterministic window Snapshots + totals, and run-varying span/sample
// histograms with drop accounting.
//
// Threading: open() before producers start; each stream is written by
// exactly one thread; report() only after producers have joined (it reads
// the counter pages, which are intentionally unsynchronized).
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "telemetry/bus.hpp"
#include "telemetry/events.hpp"
#include "telemetry/histogram.hpp"
#include "telemetry/trace.hpp"

namespace uwp::telemetry {

// Flight recorder knobs. The recorder keeps a bounded collector-side ring
// of the most recently drained events per stream and snapshots it when an
// anomaly trigger fires, so tail incidents are debuggable after the fact.
// Thresholds are counter deltas per snapshot window; triggers ride the
// lossy ring, so detection is best-effort by design (the deterministic
// counter plane is unaffected either way).
struct FlightOptions {
  std::size_t capacity = 256;  // events retained per stream; 0 disables
  std::size_t max_dumps = 4;   // dump budget per stream
  std::uint64_t evict_storm = 8;        // kEvicts per window
  std::uint64_t shed_burst = 16;        // kIngestShed per window
  std::uint64_t localize_failures = 8;  // kLocalizeFailures per window
};

struct TelemetryOptions {
  bool enabled = false;
  // Span timers read steady_clock twice per stage; disabling `timing` keeps
  // the deterministic counter plane while skipping every clock read.
  bool timing = true;
  // Snapshot window in virtual-time units (ticks for the fleet driver,
  // seconds for the ingest server — the factory scales by tick_period_s).
  double window = 16.0;
  // Per-stream Bus capacity (rounded up to a power of two).
  std::size_t ring_capacity = 1 << 15;
  // Causal round traces: producer-local span records + kTraceSpan mirror
  // events on the Bus. Off by default — tracing reads the clock per span.
  bool trace = false;
  // Per-stream span cap (safety valve; overflow counts as trace_dropped).
  std::size_t trace_max_spans = 1 << 20;
  FlightOptions flight;
};

enum class FlightTrigger : std::uint8_t {
  kEvictStorm = 0,  // session evictions clustered in one window
  kShedBurst,       // shaper shed a burst of measurement frames
  kSolverStall,     // localize stages failing to produce fixes
  kRingOverflow,    // the stream's Bus dropped events since the last drain
  kCount_,
};
inline constexpr std::size_t kFlightTriggerCount =
    static_cast<std::size_t>(FlightTrigger::kCount_);
const char* to_string(FlightTrigger t);

// One flight-recorder dump: the retained event ring of `stream` at the
// moment `trigger` fired, oldest event first.
struct FlightDump {
  std::size_t stream = 0;
  FlightTrigger trigger = FlightTrigger::kEvictStorm;
  double t = 0.0;            // virtual time of the triggering event
  std::uint64_t window = 0;  // snapshot window of the triggering event
  std::vector<Event> events;
};

// Per-window deterministic counter sums, merged across streams.
struct Snapshot {
  std::uint64_t window = 0;  // window index: floor(t / options.window)
  std::array<std::uint64_t, kCounterCount> counts{};
};

struct TelemetryReport {
  TelemetryOptions options;
  std::size_t streams = 0;
  // Deterministic plane: one Snapshot per window, dense from window 0.
  std::vector<Snapshot> snapshots;
  std::array<std::uint64_t, kCounterCount> totals{};
  // Run-varying plane.
  std::array<Histogram, kStageCount> spans;
  std::array<Histogram, kSampleCount> samples;
  std::uint64_t events = 0;   // events drained from the rings
  std::uint64_t dropped = 0;  // ring-overflow drops across all streams
  // Trace plane: producer-local spans concatenated in stream order. The
  // span *structure* (trace_structure_digest) is deterministic; ts/dur and
  // stream placement are not.
  std::vector<TraceSpan> trace;
  std::uint64_t trace_dropped = 0;  // spans lost to the per-stream cap
  // Flight-recorder dumps captured during drains, in capture order.
  std::vector<FlightDump> flight;

  // Bit-equality of the deterministic plane (the ctest pin).
  bool counters_equal(const TelemetryReport& o) const;
};

class ShardStream {
 public:
  using Clock = std::chrono::steady_clock;

  ShardStream(const TelemetryOptions& opts, std::size_t index,
              Clock::time_point epoch);

  // Set the producer's current virtual time; subsequent count() calls land
  // in floor(t / window). Negative times clamp to window 0.
  void set_time(double t);
  double time() const { return time_; }

  void count(Counter c, std::uint64_t delta = 1);
  void sample(Sample s, double value);
  void span(Stage s, double seconds);

  bool timing_enabled() const { return timing_; }
  Bus& bus() { return bus_; }

  // Trace plane. trace_now() is the span-start timestamp (seconds since
  // the collector epoch, shared by every stream so cross-stream spans
  // align); it reads the clock only when tracing is on. trace_span()
  // records {id, op, parent, virtual time, ts0 .. now} producer-locally
  // and mirrors a kTraceSpan event onto the Bus.
  bool trace_enabled() const { return trace_; }
  double trace_now() const;
  void trace_span(std::uint64_t trace_id, TraceOp op, TraceOp parent,
                  double ts0_s);
  const std::vector<TraceSpan>& trace_spans() const { return trace_spans_; }
  std::uint64_t trace_dropped() const { return trace_dropped_; }

  // Consumer-side view of the deterministic pages (post-join only).
  using CounterPage = std::array<std::uint64_t, kCounterCount>;
  const std::vector<CounterPage>& pages() const { return pages_; }

 private:
  double window_ = 16.0;
  bool timing_ = true;
  bool trace_ = false;
  std::size_t index_ = 0;
  std::size_t trace_max_ = 0;
  Clock::time_point epoch_;
  double time_ = 0.0;
  std::size_t window_index_ = 0;
  std::vector<CounterPage> pages_;
  std::vector<TraceSpan> trace_spans_;
  std::uint64_t trace_dropped_ = 0;
  Bus bus_;
};

// Scoped wall-clock span timer. Cost when the stream is null or timing is
// disabled: one branch, no clock read.
class SpanTimer {
 public:
  SpanTimer(ShardStream* s, Stage stage)
      : s_(s != nullptr && s->timing_enabled() ? s : nullptr), stage_(stage) {
    if (s_ != nullptr) t0_ = std::chrono::steady_clock::now();
  }
  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;
  ~SpanTimer() { stop(); }

  // Emits the span and returns its duration in seconds (0.0 when timing is
  // off), so callers can accumulate stage times into an aggregate span.
  double stop() {
    if (s_ == nullptr) return 0.0;
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0_;
    s_->span(stage_, dt.count());
    s_ = nullptr;
    return dt.count();
  }

 private:
  ShardStream* s_;
  Stage stage_;
  std::chrono::steady_clock::time_point t0_;
};

class Collector {
 public:
  explicit Collector(const TelemetryOptions& opts);

  const TelemetryOptions& options() const { return opts_; }
  bool enabled() const { return opts_.enabled; }

  // Allocate `n` producer streams (invalidates previous ones). Call before
  // the producer threads start. Serialized against drain()/report() so a
  // tailer thread can keep draining across a re-open.
  void open(std::size_t n);
  std::size_t streams() const { return streams_.size(); }
  ShardStream& stream(std::size_t i) { return *streams_[i]; }

  // Drain every stream's Bus into the timing accumulators and the flight
  // rings. Safe to call while producers are live (the collector is the
  // single ring consumer) and from a thread other than the one calling
  // open()/report().
  void drain();

  // Final report: drains, then merges counter pages in stream order.
  // Producers must have finished.
  TelemetryReport report();

  // Deterministic counter sums for one window, merged across streams in
  // stream order — the control plane's window hook. Callers must have a
  // happens-before edge with every producer whose page row `w` they read
  // (e.g. a barrier at the window boundary); streams that have not reached
  // window `w` simply contribute nothing.
  Snapshot window_snapshot(std::uint64_t w) const;
  // Highest window index any stream has written, plus one.
  std::size_t window_count() const;

 private:
  // Per-stream flight-recorder state, collector-side only (touched under
  // mu_ during drains — producers never see it).
  struct FlightRing {
    std::vector<Event> ring;  // circular, `next` is the oldest slot
    std::size_t next = 0;
    bool full = false;
    std::uint64_t window = ~0ull;  // window the counts below belong to
    std::array<std::uint64_t, kFlightTriggerCount> counts{};
    std::array<std::uint64_t, kFlightTriggerCount> last_dump_window;
    std::uint64_t dropped_seen = 0;
    std::size_t dumps = 0;
    FlightRing() { last_dump_window.fill(~0ull); }
  };

  void drain_locked();
  void flight_observe(std::size_t stream, FlightRing& fr, const Event& e);
  void flight_dump(std::size_t stream, FlightRing& fr, FlightTrigger trig,
                   double t, std::uint64_t window);

  TelemetryOptions opts_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;  // open()/drain()/report() vs a concurrent tailer
  std::vector<std::unique_ptr<ShardStream>> streams_;
  std::vector<FlightRing> flight_;
  std::vector<FlightDump> dumps_;
  std::array<Histogram, kStageCount> spans_;
  std::array<Histogram, kSampleCount> samples_;
  std::uint64_t events_ = 0;
};

}  // namespace uwp::telemetry
