#include "telemetry/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace uwp::telemetry {

Histogram::Histogram(double min_value, int buckets_per_octave,
                     std::size_t buckets)
    : min_(min_value), per_octave_(buckets_per_octave) {
  if (!(min_ > 0.0)) throw std::invalid_argument("histogram: min_value <= 0");
  if (per_octave_ < 1) throw std::invalid_argument("histogram: per_octave < 1");
  if (buckets < 1) throw std::invalid_argument("histogram: no buckets");
  counts_.assign(buckets, 0);
}

std::size_t Histogram::bucket_index(double v) const {
  if (!(v > min_)) return 0;
  // v / min = m * 2^e with m in [0.5, 1), so log2(v/min) = (e - 1) + f with
  // f = log2(2m) in [0, 1). frexp keeps octave boundaries exact: v = min*2^k
  // gives m = 0.5 exactly, f = 0, index k * P.
  int e = 0;
  const double m = std::frexp(v / min_, &e);
  const double f = std::log2(2.0 * m);
  long idx = static_cast<long>(e - 1) * per_octave_ +
             static_cast<long>(f * double(per_octave_));
  idx = std::clamp(idx, 0L, static_cast<long>(counts_.size()) - 1);
  return static_cast<std::size_t>(idx);
}

double Histogram::bucket_lower_edge(std::size_t b) const {
  // Nominal edge, then ulp-correct: exp2 here and the log2 inside
  // bucket_index round independently, so the nominal intra-octave edge can
  // land one bucket off. The reported edge is the smallest double that
  // actually maps to bucket b — bucket_index is monotone in v, so each loop
  // moves at most a few ulps and they cannot oscillate.
  double edge = min_ * std::exp2(double(b) / double(per_octave_));
  constexpr double kInf = std::numeric_limits<double>::infinity();
  while (bucket_index(edge) > b) edge = std::nextafter(edge, 0.0);
  while (bucket_index(edge) < b) edge = std::nextafter(edge, kInf);
  return edge;
}

void Histogram::record(double v) {
  if (!std::isfinite(v)) return;
  ++counts_[bucket_index(v)];
  if (count_ == 0) {
    min_seen_ = max_seen_ = v;
  } else {
    min_seen_ = std::min(min_seen_, v);
    max_seen_ = std::max(max_seen_, v);
  }
  ++count_;
  sum_ += v;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based), cumulative walk.
  const std::uint64_t target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * double(count_))));
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    cum += counts_[b];
    if (cum >= target) {
      // Geometric midpoint of the bucket, clamped to the observed range so
      // single-bucket histograms report the actual value, not bucket math.
      const double mid =
          min_ * std::exp2((double(b) + 0.5) / double(per_octave_));
      return std::clamp(mid, min_seen_, max_seen_);
    }
  }
  return max_seen_;
}

void Histogram::merge(const Histogram& o) {
  if (o.counts_.size() != counts_.size() || o.per_octave_ != per_octave_ ||
      o.min_ != min_)
    throw std::invalid_argument("histogram: merge geometry mismatch");
  if (o.count_ == 0) return;
  for (std::size_t b = 0; b < counts_.size(); ++b) counts_[b] += o.counts_[b];
  if (count_ == 0) {
    min_seen_ = o.min_seen_;
    max_seen_ = o.max_seen_;
  } else {
    min_seen_ = std::min(min_seen_, o.min_seen_);
    max_seen_ = std::max(max_seen_, o.max_seen_);
  }
  count_ += o.count_;
  sum_ += o.sum_;
}

}  // namespace uwp::telemetry
