#include "telemetry/events.hpp"

namespace uwp::telemetry {

const char* to_string(Counter c) {
  switch (c) {
    case Counter::kRounds:
      return "rounds";
    case Counter::kLocalized:
      return "localized";
    case Counter::kCoasts:
      return "coasts";
    case Counter::kEvicts:
      return "evicts";
    case Counter::kAdmits:
      return "admits";
    case Counter::kSolverIterations:
      return "solver_iterations";
    case Counter::kArenaLeases:
      return "arena_leases";
    case Counter::kIngestAdmitted:
      return "ingest_admitted";
    case Counter::kIngestShed:
      return "ingest_shed";
    case Counter::kIngestDeferred:
      return "ingest_deferred";
    case Counter::kWarmStartHits:
      return "warm_start_hits";
    case Counter::kWarmStartMisses:
      return "warm_start_misses";
    case Counter::kLocalizeFailures:
      return "localize_failures";
    case Counter::kAdmitDevices:
      return "admit_devices";
    case Counter::kEvictDevices:
      return "evict_devices";
    case Counter::kControlWindows:
      return "control_windows";
    case Counter::kControlActions:
      return "control_actions";
    case Counter::kCount_:
      break;
  }
  return "unknown";
}

const char* to_string(Stage s) {
  switch (s) {
    case Stage::kQuantize:
      return "quantize";
    case Stage::kRanging:
      return "ranging";
    case Stage::kLocalize:
      return "localize";
    case Stage::kTrack:
      return "track";
    case Stage::kRound:
      return "round";
    case Stage::kIngest:
      return "ingest";
    case Stage::kCount_:
      break;
  }
  return "unknown";
}

const char* to_string(TraceOp op) {
  switch (op) {
    case TraceOp::kRound:
      return "round";
    case TraceOp::kIngest:
      return "ingest";
    case TraceOp::kQueue:
      return "queue";
    case TraceOp::kBatch:
      return "batch";
    case TraceOp::kQuantize:
      return "quantize";
    case TraceOp::kRanging:
      return "ranging";
    case TraceOp::kLocalize:
      return "localize";
    case TraceOp::kTrack:
      return "track";
    case TraceOp::kCount_:
      break;
    case TraceOp::kNone:
      return "none";
  }
  return "unknown";
}

const char* to_string(Sample s) {
  switch (s) {
    case Sample::kQueueDepth:
      return "queue_depth";
    case Sample::kArenaReuse:
      return "arena_reuse";
    case Sample::kArenaFreeHit:
      return "arena_free_hit";
    case Sample::kArenaFreeMiss:
      return "arena_free_miss";
    case Sample::kArenaRebindCost:
      return "arena_rebind_cost";
    case Sample::kCount_:
      break;
  }
  return "unknown";
}

}  // namespace uwp::telemetry
