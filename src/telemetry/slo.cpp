#include "telemetry/slo.hpp"

#include <algorithm>

#include "util/stats.hpp"

namespace uwp::telemetry {

namespace {

inline double rate(std::uint64_t num, std::uint64_t den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

inline std::uint64_t total(const SloInputs& in, Counter c) {
  return in.totals[static_cast<std::size_t>(c)];
}

}  // namespace

SloCdf make_slo_cdf(std::vector<double> samples) {
  SloCdf cdf;
  if (samples.empty()) return cdf;
  std::sort(samples.begin(), samples.end());
  cdf.count = samples.size();
  double sum = 0.0;
  for (double v : samples) sum += v;  // sorted order => deterministic sum
  cdf.mean = sum / static_cast<double>(samples.size());
  cdf.min = samples.front();
  cdf.max = samples.back();
  cdf.p50 = percentile(samples, 50.0);
  cdf.p90 = percentile(samples, 90.0);
  cdf.p95 = percentile(samples, 95.0);
  cdf.p99 = percentile(samples, 99.0);
  cdf.p999 = percentile(samples, 99.9);
  return cdf;
}

SloReport build_slo_report(const SloInputs& in) {
  SloReport rep;
  std::vector<double> pooled;
  for (const SloKindInput& k : in.kinds) {
    SloKindReport kr;
    kr.kind = k.kind;
    kr.sessions = k.sessions;
    kr.rounds = k.rounds;
    kr.localized = k.localized;
    kr.coasts = k.coasts;
    kr.localized_rate = rate(k.localized, k.rounds);
    kr.coast_rate = rate(k.coasts, k.rounds);
    kr.error = make_slo_cdf(k.errors);
    rep.sessions += k.sessions;
    rep.kinds.push_back(std::move(kr));
    pooled.insert(pooled.end(), k.errors.begin(), k.errors.end());
  }
  rep.error = make_slo_cdf(std::move(pooled));

  if (in.have_totals) {
    rep.rounds = total(in, Counter::kRounds);
    rep.localized = total(in, Counter::kLocalized);
    rep.coasts = total(in, Counter::kCoasts);
    rep.evicts = total(in, Counter::kEvicts);
    rep.sheds = total(in, Counter::kIngestShed);
    rep.defers = total(in, Counter::kIngestDeferred);
    rep.localize_failures = total(in, Counter::kLocalizeFailures);
    rep.warm_hits = total(in, Counter::kWarmStartHits);
    rep.warm_misses = total(in, Counter::kWarmStartMisses);
  } else {
    for (const SloKindReport& k : rep.kinds) {
      rep.rounds += k.rounds;
      rep.localized += k.localized;
      rep.coasts += k.coasts;
    }
  }
  rep.localized_rate = rate(rep.localized, rep.rounds);
  rep.coast_rate = rate(rep.coasts, rep.rounds);
  rep.evict_rate = rate(rep.evicts, rep.rounds);
  rep.shed_rate = rate(rep.sheds, rep.rounds);
  rep.warm_start_hit_rate =
      rate(rep.warm_hits, rep.warm_hits + rep.warm_misses);

  if (!in.latency_s.empty()) {
    std::vector<double> lat(in.latency_s);
    std::sort(lat.begin(), lat.end());
    rep.latency_count = lat.size();
    rep.latency_p50_s = percentile(lat, 50.0);
    rep.latency_p99_s = percentile(lat, 99.0);
    rep.latency_p999_s = percentile(lat, 99.9);
  }
  if (in.wall_s > 0.0)
    rep.rounds_per_sec = static_cast<double>(rep.rounds) / in.wall_s;
  return rep;
}

}  // namespace uwp::telemetry
