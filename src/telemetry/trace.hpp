// Causal round traces: every traced round carries one 64-bit trace id from
// the ingest loop (frame decode + shaper verdict) through the dispatch
// queue, BatchPlane group assignment, and each stage-sliced RoundPipeline
// call. Spans live on two planes, mirroring the counter/timing split:
//
//   * Structure — deterministic. Which spans fired, their trace ids,
//     parent links, and virtual times are a pure function of the spec and
//     workload: each op occurs at most once per trace, so span identity is
//     (trace_id, op) and the parent link is the parent op alone.
//     trace_structure_digest() folds exactly those fields (sorted, stream
//     index excluded) into one FNV hash that is bit-identical at any
//     shard/worker/thread count.
//   * Timing — run-varying. Wall-clock start/duration (seconds since the
//     collector epoch) and the stream a span landed on depend on
//     scheduling and are excluded from the digest.
//
// Spans are recorded producer-locally (never dropped below the per-stream
// cap, like counter pages) and mirrored onto the SPSC Bus as kTraceSpan
// events for live tailers and the flight recorder. write_chrome_trace()
// renders the Chrome trace-event JSON that Perfetto / chrome://tracing
// load directly, including flow arrows chaining cross-thread spans of one
// trace (ingest -> queue -> round).
#pragma once

#include <cstdint>
#include <ostream>
#include <span>
#include <vector>

#include "telemetry/events.hpp"

namespace uwp::telemetry {

// One recorded span. `t` is the producer's virtual time at emission;
// `ts_s`/`dur_s` are wall-clock seconds relative to the collector epoch.
struct TraceSpan {
  std::uint64_t trace_id = 0;
  TraceOp op = TraceOp::kRound;
  TraceOp parent = TraceOp::kNone;
  std::uint16_t stream = 0;
  double t = 0.0;
  double ts_s = 0.0;
  double dur_s = 0.0;
};

// Trace ids pack (session id, round index) so they are meaningful in the
// viewer and deterministic across runs. Round is biased by one so a valid
// id is never 0 — 0 means "not tracing" throughout the pipeline.
inline constexpr std::uint64_t make_trace_id(std::uint64_t session_id,
                                             std::uint64_t round) {
  return (session_id << 24) | ((round + 1) & 0xFFFFFF);
}
inline constexpr std::uint64_t trace_session(std::uint64_t id) {
  return id >> 24;
}
inline constexpr std::uint64_t trace_round(std::uint64_t id) {
  return (id & 0xFFFFFF) - 1;
}

// FNV-1a over the deterministic span fields (trace_id, op, parent, virtual
// time), folded in (trace_id, op) order so the digest is invariant to how
// spans were partitioned across streams or interleaved in wall time.
std::uint64_t trace_structure_digest(std::span<const TraceSpan> spans);

// Chrome trace-event JSON ("X" complete events, ts/dur in microseconds,
// tid = telemetry stream index), plus "s"/"t" flow events linking the
// spans of each trace that crossed streams. Perfetto-loadable as-is.
void write_chrome_trace(std::ostream& out, std::span<const TraceSpan> spans);

}  // namespace uwp::telemetry
