// Typed telemetry events for the fleet observability bus.
//
// Every instrumented site emits one of three event families, and the family
// decides which side of the metrics-vs-timing JSON contract the data lands
// on (the same split uwp_run enforces for run metrics):
//
//   * Counter — deterministic occurrence counts keyed by *virtual* time
//     (fleet tick, or a served frame's t_s). Counters are accumulated
//     producer-locally and merged per virtual-time window, so their sums
//     are bit-identical at any shard/worker/thread count. They are never
//     dropped, whatever the ring sizing.
//   * Stage — wall-clock span durations from scoped timers around pipeline
//     and ingest stages. Wall time is inherently run-varying; spans ride
//     the lossy ring and feed log-bucket histograms (p50/p99/p999).
//   * Sample — run-varying scalar observations (live queue depth, arena
//     free-list reuse) whose values depend on scheduling, not the spec.
//   * TraceOp — causal round-trace spans. Each traced round carries one
//     trace id from ingest through the queue, batch staging, and every
//     pipeline stage; span *structure* (which ops fired, parent links,
//     virtual time) is deterministic, wall-clock start/duration is not.
//
// The Event struct itself is a 32-byte POD so pushes compile to a handful
// of stores; `ref` carries the trace id for kTraceSpan events.
#pragma once

#include <cstdint>

namespace uwp::telemetry {

// Deterministic occurrence counters (the "counters" JSON section).
enum class Counter : std::uint8_t {
  kRounds = 0,         // measurement rounds executed by a pipeline
  kLocalized,          // rounds that produced a localization fix
  kCoasts,             // tracker coasts (dropouts + shed rounds)
  kEvicts,             // session evictions (lifetime end / kBye)
  kAdmits,             // session admissions (arena lease at admit tick)
  kSolverIterations,   // SMACOF iterations across all candidate solves
  kArenaLeases,        // ShardArena::lease calls (admissions, all shards)
  kIngestAdmitted,     // shaper verdicts: measurement frames dispatched
  kIngestShed,         // shaper verdicts: measurement frames shed to coast
  kIngestDeferred,     // shaper verdicts: individual defer attempts
  kWarmStartHits,      // localize stages seeded from predicted geometry
  kWarmStartMisses,    // localize stages cold-seeded (admit/rebind/coast gap)
  kLocalizeFailures,   // rounds whose localize stage produced no fix
  kAdmitDevices,       // devices admitted (group size summed at admit)
  kEvictDevices,       // devices evicted (group size summed at evict)
  kControlWindows,     // control-plane windows observed by the policy engine
  kControlActions,     // control actions emitted (ControlLog entries)
  kCount_,
};
inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCount_);
const char* to_string(Counter c);

// Wall-clock span timers (the "timing" JSON section).
enum class Stage : std::uint8_t {
  kQuantize = 0,  // payload quantization round trip
  kRanging,       // arrival solve + ranging diagnostics
  kLocalize,      // outlier search + localization
  kTrack,         // tracker predict/update
  kRound,         // whole run_round as seen by the session/worker
  kIngest,        // ingest-loop handling of one frame (scheduler included)
  kCount_,
};
inline constexpr std::size_t kStageCount =
    static_cast<std::size_t>(Stage::kCount_);
const char* to_string(Stage s);

// Run-varying scalar samples (the "timing" JSON section).
enum class Sample : std::uint8_t {
  kQueueDepth = 0,   // dispatch-queue occupancy at enqueue time
  kArenaReuse,       // arena lease satisfied from the free list (1 per hit)
  kArenaFreeHit,     // free-list hit; value = group size served
  kArenaFreeMiss,    // free-list miss (cold construction); value = group size
  kArenaRebindCost,  // |leased size - requested size| on a free-list hit
  kCount_,
};
inline constexpr std::size_t kSampleCount =
    static_cast<std::size_t>(Sample::kCount_);
const char* to_string(Sample s);

// Causal trace ops. Each op occurs at most once per trace id, so a span is
// identified by (trace_id, op) and its parent by the parent op alone.
// kNone marks the root (the round span has no parent).
enum class TraceOp : std::uint8_t {
  kRound = 0,  // whole round, root span
  kIngest,     // serve mode: frame decode + shaper verdict (ingest stream)
  kQueue,      // serve mode: dispatch-queue residency (enqueue -> worker pop)
  kBatch,      // batched fleet mode: BatchPlane group assignment + SoA gather
  kQuantize,   // pipeline stage slices, children of kRound
  kRanging,
  kLocalize,
  kTrack,
  kCount_,
  kNone = 255,
};
inline constexpr std::size_t kTraceOpCount =
    static_cast<std::size_t>(TraceOp::kCount_);
const char* to_string(TraceOp op);

enum class EventKind : std::uint8_t {
  kCounter = 0,
  kSpan = 1,
  kSample = 2,
  kTraceSpan = 3,
};

// One ring slot. `id` is the Counter/Stage/Sample/TraceOp enum value for
// `kind`; `t` is virtual time for counters/trace spans and don't-care for
// stage spans/samples; `value` is the counter delta, span seconds, or
// sample value; `ref` is the trace id for kTraceSpan and 0 otherwise.
struct Event {
  EventKind kind = EventKind::kCounter;
  std::uint8_t id = 0;
  double t = 0.0;
  double value = 0.0;
  std::uint64_t ref = 0;
};

}  // namespace uwp::telemetry
