#include "telemetry/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace uwp::telemetry {

namespace {

inline std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 1099511628211ull;
  }
  return h;
}

inline std::uint64_t bits(double d) {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

struct StructureOrder {
  bool operator()(const TraceSpan& a, const TraceSpan& b) const {
    if (a.trace_id != b.trace_id) return a.trace_id < b.trace_id;
    return static_cast<std::uint8_t>(a.op) < static_cast<std::uint8_t>(b.op);
  }
};

}  // namespace

std::uint64_t trace_structure_digest(std::span<const TraceSpan> spans) {
  std::vector<TraceSpan> sorted(spans.begin(), spans.end());
  std::sort(sorted.begin(), sorted.end(), StructureOrder{});
  std::uint64_t h = 1469598103934665603ull;
  for (const TraceSpan& s : sorted) {
    h = fnv1a(h, s.trace_id);
    h = fnv1a(h, static_cast<std::uint64_t>(s.op));
    h = fnv1a(h, static_cast<std::uint64_t>(s.parent));
    h = fnv1a(h, bits(s.t));
  }
  return h;
}

void write_chrome_trace(std::ostream& out, std::span<const TraceSpan> spans) {
  // Stable output order (by trace, then op) keeps diffs readable; viewers
  // sort by ts themselves.
  std::vector<TraceSpan> sorted(spans.begin(), spans.end());
  std::sort(sorted.begin(), sorted.end(), StructureOrder{});

  char buf[512];
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  std::size_t i = 0;
  while (i < sorted.size()) {
    // One trace = the run of spans sharing a trace id (StructureOrder
    // groups them). Emit an "X" event per span, then flow arrows if the
    // trace crossed streams.
    std::size_t j = i;
    bool multi_stream = false;
    while (j < sorted.size() && sorted[j].trace_id == sorted[i].trace_id) {
      if (sorted[j].stream != sorted[i].stream) multi_stream = true;
      ++j;
    }
    for (std::size_t k = i; k < j; ++k) {
      const TraceSpan& s = sorted[k];
      std::snprintf(
          buf, sizeof(buf),
          "%s{\"name\":\"%s\",\"cat\":\"uwp\",\"ph\":\"X\",\"pid\":0,"
          "\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"trace\":%" PRIu64
          ",\"session\":%" PRIu64 ",\"round\":%" PRIu64
          ",\"t\":%.6g,\"parent\":\"%s\"}}",
          first ? "" : ",", to_string(s.op), unsigned(s.stream), s.ts_s * 1e6,
          s.dur_s * 1e6, s.trace_id, trace_session(s.trace_id),
          trace_round(s.trace_id), s.t, to_string(s.parent));
      out << buf;
      first = false;
    }
    if (multi_stream) {
      // Wall-time order for the arrows: ingest -> queue -> round.
      std::vector<const TraceSpan*> chain;
      for (std::size_t k = i; k < j; ++k) chain.push_back(&sorted[k]);
      std::sort(chain.begin(), chain.end(),
                [](const TraceSpan* a, const TraceSpan* b) {
                  return a->ts_s < b->ts_s;
                });
      for (std::size_t k = 0; k < chain.size(); ++k) {
        const TraceSpan& s = *chain[k];
        std::snprintf(buf, sizeof(buf),
                      ",{\"name\":\"trace\",\"cat\":\"flow\",\"ph\":\"%s\","
                      "\"id\":%" PRIu64
                      ",\"pid\":0,\"tid\":%u,\"ts\":%.3f%s}",
                      k == 0 ? "s" : "t", s.trace_id, unsigned(s.stream),
                      s.ts_s * 1e6, k == 0 ? "" : ",\"bp\":\"e\"");
        out << buf;
      }
    }
    i = j;
  }
  out << "]}\n";
}

}  // namespace uwp::telemetry
