#include "dsp/correlation.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/fft.hpp"

namespace uwp::dsp {

std::vector<double> cross_correlate(std::span<const double> signal,
                                    std::span<const double> template_) {
  if (template_.empty() || signal.size() < template_.size()) return {};
  // Correlation = convolution with the reversed template.
  std::vector<double> rev(template_.rbegin(), template_.rend());
  const std::vector<double> conv = fft_convolve(signal, rev);
  // Valid region starts where the template fully overlaps the signal.
  const std::size_t n_lags = signal.size() - template_.size() + 1;
  std::vector<double> out(n_lags);
  for (std::size_t k = 0; k < n_lags; ++k) out[k] = conv[k + template_.size() - 1];
  return out;
}

std::vector<double> normalized_cross_correlate(std::span<const double> signal,
                                               std::span<const double> template_) {
  std::vector<double> raw = cross_correlate(signal, template_);
  if (raw.empty()) return raw;

  double t_energy = 0.0;
  for (double v : template_) t_energy += v * v;
  const double t_norm = std::sqrt(t_energy);
  if (t_norm == 0.0) {
    std::fill(raw.begin(), raw.end(), 0.0);
    return raw;
  }

  // Sliding window energy of the signal via prefix sums.
  std::vector<double> prefix(signal.size() + 1, 0.0);
  for (std::size_t i = 0; i < signal.size(); ++i)
    prefix[i + 1] = prefix[i] + signal[i] * signal[i];

  const std::size_t w = template_.size();
  // Windows with (near-)zero energy carry no information; their raw value is
  // FFT round-off and dividing by a vanishing norm would manufacture fake
  // correlation peaks. Floor the window energy relative to the template.
  const double energy_floor = 1e-12 * t_energy;
  for (std::size_t k = 0; k < raw.size(); ++k) {
    const double energy = prefix[k + w] - prefix[k];
    if (energy <= energy_floor) {
      raw[k] = 0.0;
      continue;
    }
    raw[k] /= t_norm * std::sqrt(energy);
  }
  return raw;
}

double window_correlation(std::span<const double> a, std::span<const double> b) {
  const std::size_t n = std::min(a.size(), b.size());
  double dot = 0.0, ea = 0.0, eb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    dot += a[i] * b[i];
    ea += a[i] * a[i];
    eb += b[i] * b[i];
  }
  if (ea == 0.0 || eb == 0.0) return 0.0;
  return dot / std::sqrt(ea * eb);
}

std::size_t argmax(std::span<const double> xs) {
  if (xs.empty()) return 0;
  return static_cast<std::size_t>(
      std::distance(xs.begin(), std::max_element(xs.begin(), xs.end())));
}

bool is_peak(std::span<const double> xs, std::size_t i) {
  if (xs.empty() || i >= xs.size()) return false;
  const double v = xs[i];
  const bool left_ok = (i == 0) || v > xs[i - 1];
  const bool right_ok = (i + 1 == xs.size()) || v > xs[i + 1];
  return left_ok && right_ok;
}

std::vector<std::size_t> find_peaks(std::span<const double> xs, double threshold) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < xs.size(); ++i)
    if (xs[i] >= threshold && is_peak(xs, i)) out.push_back(i);
  return out;
}

}  // namespace uwp::dsp
