// Fractional-delay and sample-rate conversion. The audio substrate uses
// these to model speaker/microphone clocks that run a few ppm off the nominal
// 44.1 kHz (paper Appendix, Eq. 6) and to apply sub-sample propagation delays.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace uwp::dsp {

// Evaluate x at fractional index t using Catmull-Rom cubic interpolation.
// Out-of-range indices read as 0 (signals are zero outside their support).
double sample_at(std::span<const double> x, double t);

// Delay `x` by `delay_samples` (may be fractional and >= 0). The output has
// the same length as the input plus ceil(delay); energy shifts right.
std::vector<double> fractional_delay(std::span<const double> x, double delay_samples);

// Resample by rate `ratio` = f_out / f_in via cubic interpolation. A clock
// running alpha ppm fast is modeled as ratio = 1 + alpha*1e-6.
std::vector<double> resample(std::span<const double> x, double ratio);

}  // namespace uwp::dsp
