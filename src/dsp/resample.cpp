#include "dsp/resample.hpp"

#include <cmath>
#include <stdexcept>

namespace uwp::dsp {

double sample_at(std::span<const double> x, double t) {
  const auto read = [&](std::ptrdiff_t i) -> double {
    if (i < 0 || i >= static_cast<std::ptrdiff_t>(x.size())) return 0.0;
    return x[static_cast<std::size_t>(i)];
  };
  const double fl = std::floor(t);
  const std::ptrdiff_t i1 = static_cast<std::ptrdiff_t>(fl);
  const double u = t - fl;
  const double p0 = read(i1 - 1);
  const double p1 = read(i1);
  const double p2 = read(i1 + 1);
  const double p3 = read(i1 + 2);
  // Catmull-Rom spline.
  return 0.5 * ((2.0 * p1) + (-p0 + p2) * u + (2.0 * p0 - 5.0 * p1 + 4.0 * p2 - p3) * u * u +
                (-p0 + 3.0 * p1 - 3.0 * p2 + p3) * u * u * u);
}

std::vector<double> fractional_delay(std::span<const double> x, double delay_samples) {
  if (delay_samples < 0.0)
    throw std::invalid_argument("fractional_delay: negative delay");
  const std::size_t extra = static_cast<std::size_t>(std::ceil(delay_samples));
  std::vector<double> out(x.size() + extra, 0.0);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = sample_at(x, static_cast<double>(i) - delay_samples);
  return out;
}

std::vector<double> resample(std::span<const double> x, double ratio) {
  if (ratio <= 0.0) throw std::invalid_argument("resample: ratio must be positive");
  const std::size_t out_len =
      static_cast<std::size_t>(std::floor(static_cast<double>(x.size()) * ratio));
  std::vector<double> out(out_len);
  for (std::size_t i = 0; i < out_len; ++i)
    out[i] = sample_at(x, static_cast<double>(i) / ratio);
  return out;
}

}  // namespace uwp::dsp
