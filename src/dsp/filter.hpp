// FIR/biquad filtering. The channel simulator band-limits signals to the
// 1-5 kHz underwater response of phone speakers (per the paper's §2.2.1), and
// the FSK demodulator uses narrowband energy filters.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace uwp::dsp {

// Windowed-sinc FIR band-pass design (Hamming window). `taps` must be odd.
std::vector<double> design_fir_bandpass(std::size_t taps, double f_lo_hz,
                                        double f_hi_hz, double fs_hz);

// Windowed-sinc FIR low-pass (Hamming). `taps` must be odd.
std::vector<double> design_fir_lowpass(std::size_t taps, double f_cut_hz, double fs_hz);

// Zero-phase-ish filtering: plain convolution trimmed to input length with
// the group delay (taps-1)/2 compensated, so filtered output aligns with the
// input in time. This keeps ranging timestamps unbiased.
std::vector<double> fir_filter(std::span<const double> x, std::span<const double> taps);

// Direct-form II transposed biquad.
struct Biquad {
  double b0 = 1.0, b1 = 0.0, b2 = 0.0;
  double a1 = 0.0, a2 = 0.0;  // a0 normalized to 1

  double process(double x);
  void reset() { z1_ = z2_ = 0.0; }

  // RBJ cookbook designs.
  static Biquad lowpass(double f_hz, double q, double fs_hz);
  static Biquad highpass(double f_hz, double q, double fs_hz);
  static Biquad bandpass(double f_hz, double q, double fs_hz);

 private:
  double z1_ = 0.0;
  double z2_ = 0.0;
};

std::vector<double> biquad_filter(std::span<const double> x, Biquad bq);

}  // namespace uwp::dsp
