#include "dsp/window.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace uwp::dsp {

std::vector<double> make_window(WindowType type, std::size_t n, double tukey_alpha) {
  std::vector<double> w(n, 1.0);
  if (n <= 1) return w;
  const double N = static_cast<double>(n - 1);
  const double tau = 2.0 * std::numbers::pi;
  switch (type) {
    case WindowType::kRect:
      break;
    case WindowType::kHann:
      for (std::size_t i = 0; i < n; ++i)
        w[i] = 0.5 - 0.5 * std::cos(tau * static_cast<double>(i) / N);
      break;
    case WindowType::kHamming:
      for (std::size_t i = 0; i < n; ++i)
        w[i] = 0.54 - 0.46 * std::cos(tau * static_cast<double>(i) / N);
      break;
    case WindowType::kBlackman:
      for (std::size_t i = 0; i < n; ++i) {
        const double t = static_cast<double>(i) / N;
        w[i] = 0.42 - 0.5 * std::cos(tau * t) + 0.08 * std::cos(2.0 * tau * t);
      }
      break;
    case WindowType::kTukey: {
      if (tukey_alpha < 0.0 || tukey_alpha > 1.0)
        throw std::invalid_argument("make_window: tukey_alpha out of [0,1]");
      const double edge = tukey_alpha * N / 2.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double t = static_cast<double>(i);
        if (t < edge)
          w[i] = 0.5 * (1.0 + std::cos(std::numbers::pi * (t / edge - 1.0)));
        else if (t > N - edge)
          w[i] = 0.5 * (1.0 + std::cos(std::numbers::pi * ((t - N + edge) / edge)));
      }
      break;
    }
  }
  return w;
}

void apply_window(std::vector<double>& x, const std::vector<double>& w) {
  if (x.size() != w.size()) throw std::invalid_argument("apply_window: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) x[i] *= w[i];
}

}  // namespace uwp::dsp
