#include "dsp/filter.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "dsp/fft.hpp"

namespace uwp::dsp {

namespace {

double sinc(double x) {
  if (std::abs(x) < 1e-12) return 1.0;
  const double px = std::numbers::pi * x;
  return std::sin(px) / px;
}

void check_taps(std::size_t taps) {
  if (taps == 0 || taps % 2 == 0)
    throw std::invalid_argument("FIR design: taps must be odd and non-zero");
}

}  // namespace

std::vector<double> design_fir_lowpass(std::size_t taps, double f_cut_hz, double fs_hz) {
  check_taps(taps);
  const double fc = f_cut_hz / fs_hz;  // normalized cutoff in cycles/sample
  const std::size_t mid = taps / 2;
  std::vector<double> h(taps);
  double sum = 0.0;
  for (std::size_t i = 0; i < taps; ++i) {
    const double n = static_cast<double>(i) - static_cast<double>(mid);
    const double w =
        0.54 - 0.46 * std::cos(2.0 * std::numbers::pi * static_cast<double>(i) /
                               static_cast<double>(taps - 1));
    h[i] = 2.0 * fc * sinc(2.0 * fc * n) * w;
    sum += h[i];
  }
  // Normalize DC gain to 1.
  for (double& v : h) v /= sum;
  return h;
}

std::vector<double> design_fir_bandpass(std::size_t taps, double f_lo_hz,
                                        double f_hi_hz, double fs_hz) {
  check_taps(taps);
  if (f_lo_hz >= f_hi_hz) throw std::invalid_argument("FIR bandpass: f_lo >= f_hi");
  // Difference of two low-pass prototypes (before DC normalization).
  const double f1 = f_lo_hz / fs_hz;
  const double f2 = f_hi_hz / fs_hz;
  const std::size_t mid = taps / 2;
  std::vector<double> h(taps);
  for (std::size_t i = 0; i < taps; ++i) {
    const double n = static_cast<double>(i) - static_cast<double>(mid);
    const double w =
        0.54 - 0.46 * std::cos(2.0 * std::numbers::pi * static_cast<double>(i) /
                               static_cast<double>(taps - 1));
    h[i] = (2.0 * f2 * sinc(2.0 * f2 * n) - 2.0 * f1 * sinc(2.0 * f1 * n)) * w;
  }
  // Normalize gain at band center to 1.
  const double f_mid = (f_lo_hz + f_hi_hz) / 2.0 / fs_hz;
  double re = 0.0, im = 0.0;
  for (std::size_t i = 0; i < taps; ++i) {
    const double ang = -2.0 * std::numbers::pi * f_mid * static_cast<double>(i);
    re += h[i] * std::cos(ang);
    im += h[i] * std::sin(ang);
  }
  const double gain = std::hypot(re, im);
  if (gain > 1e-12)
    for (double& v : h) v /= gain;
  return h;
}

std::vector<double> fir_filter(std::span<const double> x, std::span<const double> taps) {
  if (x.empty() || taps.empty()) return {};
  const std::vector<double> conv = fft_convolve(x, taps);
  const std::size_t delay = (taps.size() - 1) / 2;
  std::vector<double> out(x.size(), 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const std::size_t j = i + delay;
    if (j < conv.size()) out[i] = conv[j];
  }
  return out;
}

double Biquad::process(double x) {
  const double y = b0 * x + z1_;
  z1_ = b1 * x - a1 * y + z2_;
  z2_ = b2 * x - a2 * y;
  return y;
}

namespace {

Biquad from_rbj(double b0, double b1, double b2, double a0, double a1, double a2) {
  Biquad bq;
  bq.b0 = b0 / a0;
  bq.b1 = b1 / a0;
  bq.b2 = b2 / a0;
  bq.a1 = a1 / a0;
  bq.a2 = a2 / a0;
  return bq;
}

}  // namespace

Biquad Biquad::lowpass(double f_hz, double q, double fs_hz) {
  const double w0 = 2.0 * std::numbers::pi * f_hz / fs_hz;
  const double alpha = std::sin(w0) / (2.0 * q);
  const double cw = std::cos(w0);
  return from_rbj((1 - cw) / 2, 1 - cw, (1 - cw) / 2, 1 + alpha, -2 * cw, 1 - alpha);
}

Biquad Biquad::highpass(double f_hz, double q, double fs_hz) {
  const double w0 = 2.0 * std::numbers::pi * f_hz / fs_hz;
  const double alpha = std::sin(w0) / (2.0 * q);
  const double cw = std::cos(w0);
  return from_rbj((1 + cw) / 2, -(1 + cw), (1 + cw) / 2, 1 + alpha, -2 * cw, 1 - alpha);
}

Biquad Biquad::bandpass(double f_hz, double q, double fs_hz) {
  const double w0 = 2.0 * std::numbers::pi * f_hz / fs_hz;
  const double alpha = std::sin(w0) / (2.0 * q);
  const double cw = std::cos(w0);
  return from_rbj(alpha, 0.0, -alpha, 1 + alpha, -2 * cw, 1 - alpha);
}

std::vector<double> biquad_filter(std::span<const double> x, Biquad bq) {
  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = bq.process(x[i]);
  return out;
}

}  // namespace uwp::dsp
