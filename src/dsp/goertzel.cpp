#include "dsp/goertzel.hpp"

#include <cmath>
#include <numbers>

namespace uwp::dsp {

double goertzel_power(std::span<const double> x, double f_hz, double fs_hz) {
  if (x.empty()) return 0.0;
  const double w = 2.0 * std::numbers::pi * f_hz / fs_hz;
  const double coeff = 2.0 * std::cos(w);
  double s0 = 0.0, s1 = 0.0, s2 = 0.0;
  for (double v : x) {
    s0 = v + coeff * s1 - s2;
    s2 = s1;
    s1 = s0;
  }
  // |X(f)|^2 normalized by window length so thresholds are length-independent.
  const double power = s1 * s1 + s2 * s2 - coeff * s1 * s2;
  return power / static_cast<double>(x.size());
}

double goertzel_magnitude(std::span<const double> x, double f_hz, double fs_hz) {
  return std::sqrt(goertzel_power(x, f_hz, fs_hz));
}

}  // namespace uwp::dsp
