#include "dsp/fft.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace uwp::dsp {

namespace {

constexpr double kTau = 2.0 * std::numbers::pi;

// Twiddle-factor cache for one transform length. Recursion reuses the table
// of the root length via stride tricks.
struct Plan {
  std::size_t n;
  std::vector<cplx> twiddle;  // twiddle[k] = exp(-i 2 pi k / n)

  explicit Plan(std::size_t n_) : n(n_), twiddle(n_) {
    for (std::size_t k = 0; k < n; ++k) {
      const double ang = -kTau * static_cast<double>(k) / static_cast<double>(n);
      twiddle[k] = {std::cos(ang), std::sin(ang)};
    }
  }
};

// Recursive mixed-radix Cooley-Tukey: splits off the smallest prime factor p
// (2, 3 or 5), transforms n/p sub-sequences, then combines with a p-point DFT.
void mixed_radix(const cplx* in, std::size_t stride, cplx* out, std::size_t n,
                 const Plan& plan, std::size_t twiddle_stride) {
  if (n == 1) {
    out[0] = in[0];
    return;
  }
  std::size_t p = 0;
  if (n % 2 == 0)
    p = 2;
  else if (n % 3 == 0)
    p = 3;
  else if (n % 5 == 0)
    p = 5;
  else
    throw std::invalid_argument("mixed_radix: non-smooth length");

  const std::size_t m = n / p;
  // DIT: out[q*m .. q*m+m) holds the FFT of the q-th decimated sequence.
  for (std::size_t q = 0; q < p; ++q)
    mixed_radix(in + q * stride, stride * p, out + q * m, m, plan, twiddle_stride * p);

  // Combine: X[k + r*m] = sum_q W_n^{(k + r m) q} * F_q[k].
  std::vector<cplx> scratch(p);
  for (std::size_t k = 0; k < m; ++k) {
    for (std::size_t q = 0; q < p; ++q) {
      // twiddle index (k*q mod n) scaled by the stride of this level.
      const std::size_t idx = (k * q) % n;
      scratch[q] = out[q * m + k] * plan.twiddle[idx * twiddle_stride];
    }
    for (std::size_t r = 0; r < p; ++r) {
      cplx acc = scratch[0];
      for (std::size_t q = 1; q < p; ++q) {
        const std::size_t idx = (r * m % n) * q % n;
        acc += scratch[q] * plan.twiddle[idx * twiddle_stride];
      }
      out[r * m + k] = acc;
    }
  }
}

std::vector<cplx> fft_smooth(std::span<const cplx> x) {
  const std::size_t n = x.size();
  Plan plan(n);
  std::vector<cplx> out(n);
  mixed_radix(x.data(), 1, out.data(), n, plan, 1);
  return out;
}

// Iterative radix-2 FFT used inside Bluestein (lengths are powers of two).
void fft_pow2_inplace(std::vector<cplx>& a, bool invert) {
  const std::size_t n = a.size();
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = (invert ? kTau : -kTau) / static_cast<double>(len);
    const cplx wl(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      cplx w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cplx u = a[i + k];
        const cplx v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wl;
      }
    }
  }
  if (invert)
    for (cplx& v : a) v /= static_cast<double>(n);
}

// Bluestein chirp-z transform for arbitrary n.
std::vector<cplx> fft_bluestein(std::span<const cplx> x) {
  const std::size_t n = x.size();
  const std::size_t m = next_pow2(2 * n - 1);
  std::vector<cplx> chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    // exp(-i pi k^2 / n); compute k^2 mod 2n to avoid precision loss.
    const std::size_t k2 = (static_cast<unsigned long long>(k) * k) % (2 * n);
    const double ang = -std::numbers::pi * static_cast<double>(k2) / static_cast<double>(n);
    chirp[k] = {std::cos(ang), std::sin(ang)};
  }
  std::vector<cplx> a(m, cplx{0.0, 0.0});
  std::vector<cplx> b(m, cplx{0.0, 0.0});
  for (std::size_t k = 0; k < n; ++k) a[k] = x[k] * chirp[k];
  b[0] = std::conj(chirp[0]);
  for (std::size_t k = 1; k < n; ++k) b[k] = b[m - k] = std::conj(chirp[k]);
  fft_pow2_inplace(a, false);
  fft_pow2_inplace(b, false);
  for (std::size_t k = 0; k < m; ++k) a[k] *= b[k];
  fft_pow2_inplace(a, true);
  std::vector<cplx> out(n);
  for (std::size_t k = 0; k < n; ++k) out[k] = a[k] * chirp[k];
  return out;
}

}  // namespace

bool is_smooth_235(std::size_t n) {
  if (n == 0) return false;
  for (std::size_t p : {std::size_t{2}, std::size_t{3}, std::size_t{5}})
    while (n % p == 0) n /= p;
  return n == 1;
}

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::vector<cplx> fft(std::span<const cplx> x) {
  if (x.empty()) throw std::invalid_argument("fft: empty input");
  if (x.size() == 1) return {x[0]};
  if (is_smooth_235(x.size())) return fft_smooth(x);
  return fft_bluestein(x);
}

std::vector<cplx> ifft(std::span<const cplx> x) {
  // ifft(x) = conj(fft(conj(x))) / n
  std::vector<cplx> conj_in(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) conj_in[i] = std::conj(x[i]);
  std::vector<cplx> y = fft(conj_in);
  const double inv_n = 1.0 / static_cast<double>(x.size());
  for (cplx& v : y) v = std::conj(v) * inv_n;
  return y;
}

std::vector<cplx> fft_real(std::span<const double> x) {
  std::vector<cplx> cx(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) cx[i] = {x[i], 0.0};
  return fft(cx);
}

std::vector<double> ifft_real(std::span<const cplx> x) {
  const std::vector<cplx> y = ifft(x);
  std::vector<double> out(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) out[i] = y[i].real();
  return out;
}

std::vector<double> fft_convolve(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty()) return {};
  const std::size_t out_len = a.size() + b.size() - 1;
  const std::size_t m = next_pow2(out_len);
  std::vector<cplx> fa(m, cplx{0.0, 0.0});
  std::vector<cplx> fb(m, cplx{0.0, 0.0});
  for (std::size_t i = 0; i < a.size(); ++i) fa[i] = {a[i], 0.0};
  for (std::size_t i = 0; i < b.size(); ++i) fb[i] = {b[i], 0.0};
  fa = fft(fa);
  fb = fft(fb);
  for (std::size_t i = 0; i < m; ++i) fa[i] *= fb[i];
  const std::vector<cplx> y = ifft(fa);
  std::vector<double> out(out_len);
  for (std::size_t i = 0; i < out_len; ++i) out[i] = y[i].real();
  return out;
}

}  // namespace uwp::dsp
