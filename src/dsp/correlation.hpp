// Correlation kernels used by the preamble detector (§2.2.1): sliding
// cross-correlation against a known template and the normalized
// auto-correlation across repeated OFDM symbols.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace uwp::dsp {

// Cross-correlation of `signal` with `template_` computed via FFT.
// out[k] = sum_j signal[k + j] * template_[j], for k in
// [0, signal.size() - template_.size()]. Empty when template is longer.
std::vector<double> cross_correlate(std::span<const double> signal,
                                    std::span<const double> template_);

// Normalized cross-correlation: each lag divided by
// ||template|| * ||signal window at that lag||, giving values in [-1, 1].
std::vector<double> normalized_cross_correlate(std::span<const double> signal,
                                               std::span<const double> template_);

// Pearson-style normalized correlation between two equal-length windows.
// Returns 0 when either window has zero energy.
double window_correlation(std::span<const double> a, std::span<const double> b);

// Index of the maximum element (first one on ties). Returns 0 on empty.
std::size_t argmax(std::span<const double> xs);

// Peak test used by the paper's direct-path search: xs[i] is a local maximum
// strictly greater than both neighbors (boundary samples use one-sided test).
bool is_peak(std::span<const double> xs, std::size_t i);

// All local peak indices with value >= threshold.
std::vector<std::size_t> find_peaks(std::span<const double> xs, double threshold);

}  // namespace uwp::dsp
