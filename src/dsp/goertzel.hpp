// Goertzel single-bin DFT — the FSK/MFSK demodulators probe a handful of
// tones, which Goertzel does cheaper and with less code than a full FFT.
#pragma once

#include <cstddef>
#include <span>

namespace uwp::dsp {

// Power of `x` at frequency `f_hz` given sampling rate `fs_hz`.
double goertzel_power(std::span<const double> x, double f_hz, double fs_hz);

// Magnitude (sqrt of power).
double goertzel_magnitude(std::span<const double> x, double f_hz, double fs_hz);

}  // namespace uwp::dsp
