// FFT engine for the PHY layer. The paper's OFDM symbols are 1920 samples
// (1920 = 2^7 * 3 * 5), so we implement a recursive mixed-radix Cooley-Tukey
// transform for lengths whose factors are {2, 3, 5} and fall back to
// Bluestein's chirp-z algorithm for arbitrary lengths. Everything is
// double-precision; accuracy matters more than speed at 44.1 kHz scales.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace uwp::dsp {

using cplx = std::complex<double>;

// In-place-capable forward/inverse FFT of arbitrary length (n >= 1).
// The inverse is normalized by 1/n, so ifft(fft(x)) == x.
std::vector<cplx> fft(std::span<const cplx> x);
std::vector<cplx> ifft(std::span<const cplx> x);

// Convenience overloads for real input.
std::vector<cplx> fft_real(std::span<const double> x);

// Inverse FFT returning only the real part (caller asserts the spectrum is
// Hermitian, e.g. when synthesizing real OFDM waveforms).
std::vector<double> ifft_real(std::span<const cplx> x);

// True when `n` factors completely into {2, 3, 5} — the fast path.
bool is_smooth_235(std::size_t n);

// Smallest power of two >= n (used by Bluestein and fast convolution).
std::size_t next_pow2(std::size_t n);

// Linear convolution via zero-padded FFT, output length a+b-1.
std::vector<double> fft_convolve(std::span<const double> a, std::span<const double> b);

}  // namespace uwp::dsp
