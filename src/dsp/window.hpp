// Window functions for spectral shaping of transmit waveforms and analysis.
#pragma once

#include <cstddef>
#include <vector>

namespace uwp::dsp {

enum class WindowType {
  kRect,
  kHann,
  kHamming,
  kBlackman,
  kTukey,  // flat middle with cosine tapers; `tukey_alpha` sets taper fraction
};

std::vector<double> make_window(WindowType type, std::size_t n, double tukey_alpha = 0.1);

// Multiply `x` in place by the window (sizes must match).
void apply_window(std::vector<double>& x, const std::vector<double>& w);

}  // namespace uwp::dsp
