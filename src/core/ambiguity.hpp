// Rotation and flipping disambiguation (§2.1.4). The MDS topology is only
// determined up to rotation/translation/reflection. Translation is fixed by
// putting the leader (node 0) at the origin; rotation by the requirement
// that the leader points at a visible diver (node 1); the remaining mirror
// ambiguity across the leader->node1 line is resolved by voting with the
// leader's dual-microphone first-arrival signs.
#pragma once

#include <vector>

#include "util/geometry.hpp"

namespace uwp::core {

// One vote from the signal of diver `node` (node >= 2): `mic_sign` is
// sgn(mic1_tap - mic2_tap) at the leader device, where mic 2 sits on the
// LEFT of the leader's pointing direction. A diver on the left reaches mic 2
// first (mic2_tap < mic1_tap -> mic_sign = +1).
struct MicVote {
  std::size_t node = 0;
  int mic_sign = 0;  // +1, -1, or 0 (uninformative)
};

// Translate so node 0 is at the origin.
std::vector<Vec2> translate_leader_to_origin(std::vector<Vec2> pts);

// Rotate about the origin so node 1 lies at absolute bearing
// `pointing_bearing_rad` from node 0 (node 0 must already be at the origin).
std::vector<Vec2> resolve_rotation(std::vector<Vec2> pts, double pointing_bearing_rad);

// In-place counterparts (bit-identical, no allocation).
void translate_leader_to_origin_inplace(std::vector<Vec2>& pts);
void resolve_rotation_inplace(std::vector<Vec2>& pts, double pointing_bearing_rad);

// The mirror image of the configuration across the node0->node1 line.
std::vector<Vec2> flip_configuration(const std::vector<Vec2>& pts);

// Workspace variant writing into `out` (reused buffer).
void flip_configuration_into(std::vector<Vec2>& out, const std::vector<Vec2>& pts);

// Voting function V({P}) (§2.1.4): sum over votes of
// mic_sign * sgn(side_of_line(P_node, P_0, P_1)).
double flip_vote_score(const std::vector<Vec2>& pts, const std::vector<MicVote>& votes);

// Pick the configuration (original or mirrored) with the higher vote score.
// Ties keep the original. Returns the chosen configuration and whether a
// flip was applied.
struct FlipDecision {
  std::vector<Vec2> positions;
  bool flipped = false;
  double score_original = 0.0;
  double score_flipped = 0.0;
};
FlipDecision resolve_flip(const std::vector<Vec2>& pts, const std::vector<MicVote>& votes);

}  // namespace uwp::core
