#include "core/mds3d.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/mds_classical.hpp"
#include "util/linalg.hpp"

namespace uwp::core {

double weighted_stress_3d(const std::vector<Vec3>& x, const Matrix& dist,
                          const Matrix& w) {
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    for (std::size_t j = i + 1; j < x.size(); ++j) {
      if (w(i, j) <= 0.0) continue;
      const double resid = dist(i, j) - distance(x[i], x[j]);
      s += w(i, j) * resid * resid;
    }
  return s;
}

namespace {

std::size_t count_links(const Matrix& w) {
  std::size_t links = 0;
  for (std::size_t i = 0; i < w.rows(); ++i)
    for (std::size_t j = i + 1; j < w.cols(); ++j)
      if (w(i, j) > 0.0) ++links;
  return links;
}

Smacof3dResult run_from(std::vector<Vec3> x, const Matrix& dist, const Matrix& w,
                        const std::vector<double>& depths, const Matrix& v_pinv,
                        const Matrix& vz_inv, const Smacof3dOptions& opts) {
  const std::size_t n = x.size();
  const bool use_depth = !depths.empty() && opts.depth_weight > 0.0;
  Smacof3dResult res;
  double total = weighted_stress_3d(x, dist, w);

  Matrix b(n, n);
  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    // B(X) as in 2D SMACOF.
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) b(i, j) = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (w(i, j) <= 0.0) continue;
        const double dij = distance(x[i], x[j]);
        const double val = dij > 1e-12 ? -w(i, j) * dist(i, j) / dij : 0.0;
        b(i, j) = b(j, i) = val;
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      double diag = 0.0;
      for (std::size_t j = 0; j < n; ++j)
        if (j != i) diag -= b(i, j);
      b(i, i) = diag;
    }

    // Per-axis Guttman update; z gets the depth penalty folded in:
    // (V + lambda I) z = B x_z + lambda h.
    Matrix xm(n, 3);
    for (std::size_t i = 0; i < n; ++i) {
      xm(i, 0) = x[i].x;
      xm(i, 1) = x[i].y;
      xm(i, 2) = x[i].z;
    }
    const Matrix bx = b * xm;
    // x, y axes via the pseudoinverse.
    for (std::size_t i = 0; i < n; ++i) {
      double nx = 0.0, ny = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        nx += v_pinv(i, j) * bx(j, 0);
        ny += v_pinv(i, j) * bx(j, 1);
      }
      x[i].x = nx;
      x[i].y = ny;
    }
    if (use_depth) {
      std::vector<double> rhs(n);
      for (std::size_t i = 0; i < n; ++i)
        rhs[i] = bx(i, 2) + opts.depth_weight * depths[i];
      for (std::size_t i = 0; i < n; ++i) {
        double nz = 0.0;
        for (std::size_t j = 0; j < n; ++j) nz += vz_inv(i, j) * rhs[j];
        x[i].z = nz;
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        double nz = 0.0;
        for (std::size_t j = 0; j < n; ++j) nz += v_pinv(i, j) * bx(j, 2);
        x[i].z = nz;
      }
    }

    const double new_total = weighted_stress_3d(x, dist, w);
    res.iterations = iter + 1;
    if (total - new_total <= opts.rel_tolerance * std::max(total, 1e-30) &&
        new_total <= total) {
      total = new_total;
      break;
    }
    total = new_total;
  }
  res.positions = std::move(x);
  res.stress = total;
  const std::size_t links = count_links(w);
  res.normalized_stress =
      links > 0 ? std::sqrt(total / static_cast<double>(links)) : 0.0;
  return res;
}

}  // namespace

Smacof3dResult smacof_3d(const Matrix& dist, const Matrix& w,
                         const std::vector<double>& depths,
                         const Smacof3dOptions& opts, uwp::Rng& rng) {
  const std::size_t n = dist.rows();
  if (dist.cols() != n || w.rows() != n || w.cols() != n)
    throw std::invalid_argument("smacof_3d: shape mismatch");
  if (!depths.empty() && depths.size() != n)
    throw std::invalid_argument("smacof_3d: depths size mismatch");
  if (n == 0) return {};

  Matrix v(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double diag = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      v(i, j) = -w(i, j);
      diag += w(i, j);
    }
    v(i, i) = diag;
  }
  const Matrix v_pinv = pseudo_inverse_symmetric(v);
  Matrix vz = v;
  if (!depths.empty() && opts.depth_weight > 0.0)
    for (std::size_t i = 0; i < n; ++i) vz(i, i) += opts.depth_weight;
  const Matrix vz_inv =
      (!depths.empty() && opts.depth_weight > 0.0) ? inverse(vz) : v_pinv;

  // Starts: classical MDS (x, y from 2D embedding, z from depths or zero)
  // plus random restarts.
  std::vector<std::vector<Vec3>> starts;
  {
    const std::vector<Vec2> flat = classical_mds_2d_weighted(dist, w);
    std::vector<Vec3> s(n);
    for (std::size_t i = 0; i < n; ++i)
      s[i] = {flat[i].x, flat[i].y, depths.empty() ? 0.0 : depths[i]};
    starts.push_back(std::move(s));
  }
  for (int r = 0; r < opts.random_restarts; ++r) {
    std::vector<Vec3> s(n);
    for (Vec3& p : s)
      p = {rng.uniform(-opts.init_spread, opts.init_spread),
           rng.uniform(-opts.init_spread, opts.init_spread),
           depths.empty() ? rng.uniform(0.0, 10.0)
                          : depths[static_cast<std::size_t>(&p - s.data())]};
    starts.push_back(std::move(s));
  }

  Smacof3dResult best;
  bool have = false;
  for (const auto& start : starts) {
    Smacof3dResult res = run_from(start, dist, w, depths, v_pinv, vz_inv, opts);
    if (!have || res.stress < best.stress) {
      best = std::move(res);
      have = true;
    }
  }
  return best;
}

}  // namespace uwp::core
