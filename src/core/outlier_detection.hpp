// Iterative outlier-link detection (paper Algorithm 1, §2.1.3). Occluded
// links whose multipath was mistaken for the direct path inflate the SMACOF
// stress; the detector drops growing subsets of links, re-running SMACOF on
// each candidate subset, and accepts a drop when the normalized stress
// collapses (>= 90% reduction). Candidate solves are warm-started from the
// current best layout (cheaper than the realizability check, which is
// deferred to candidates that actually improve); subsets that would leave
// the graph not uniquely realizable are never accepted, and at most
// `max_outliers` links are dropped.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/rigidity.hpp"
#include "core/smacof.hpp"
#include "util/thread_pool.hpp"

namespace uwp::core {

struct OutlierOptions {
  // Normalized-stress acceptance threshold, in meters of RMS link residual
  // sqrt(S / #links). The paper normalizes S by the link count and uses 1.5;
  // with our sqrt scale, clean rounds (0.5-0.9 m ranging noise) sit near
  // 0.1-0.3 m while a single occluded link pushes past 0.7 m, so 0.5 m
  // separates the regimes (measured in tests; documented in DESIGN.md).
  double stress_threshold = 0.5;
  // Required relative stress reduction to accept a dropped subset (0.9 in
  // the paper: "E0 - E' > 0.9 * E0").
  double drop_ratio = 0.9;
  int max_outliers = 3;  // O_max
  // Candidate-pool cap for large graphs. Algorithm 1 enumerates C(L, k)
  // subsets — fine for the paper's 5-7 devices (C(10, 3) = 120) but
  // combinatorial at swarm scale (C(190, 3) > 1M SMACOF solves at N = 20).
  // When the link count exceeds this, only the links with the largest
  // absolute residuals in the initial all-links fit stay eligible for
  // dropping; an occluded link is exactly a high-residual one, so the
  // pruning costs little accuracy and bounds the subset count. 28 =
  // C(8, 2): every fully-connected group up to the paper's largest (N = 8)
  // keeps the exhaustive subset enumeration.
  std::size_t max_suspect_links = 28;
  // Worker threads for the candidate-subset search. Candidate solves are
  // warm-started and draw no randomness, so the fan-out is deterministic in
  // both regimes: stresses are reduced in enumeration order and the result
  // is bit-identical at any thread count. 1 = serial (the default — and the
  // right setting when an outer sweep already parallelizes trials); 0 = all
  // hardware threads.
  std::size_t search_threads = 1;
  SmacofOptions smacof{};
};

struct OutlierResult {
  std::vector<Vec2> positions;
  double normalized_stress = 0.0;
  std::vector<Edge> dropped_links;
  bool outliers_suspected = false;  // initial stress exceeded the threshold
  // Final weight matrix actually used (input weights minus dropped links).
  Matrix weights;
  // Total SMACOF iterations spent on this round (base solve + every
  // candidate solve). A pure function of the inputs — the parallel pruned
  // search sums per-candidate counts in enumeration order — so it is part
  // of the deterministic telemetry plane, not a timing.
  std::int64_t iterations = 0;
};

// Algorithm 1: localize with outlier detection. `dist` is the projected 2D
// distance matrix, `weights` the initial link indicator matrix. When `init`
// is given (a predicted layout from a tracker, say) the base solve warm
// starts from it with no random restarts — no rng draws — instead of the
// cold classical-MDS + restarts seed.
OutlierResult localize_with_outlier_detection(const Matrix& dist, const Matrix& weights,
                                              const OutlierOptions& opts, uwp::Rng& rng,
                                              const std::vector<Vec2>* init = nullptr);

// Reusable scratch for the workspace variant. Two SMACOF workspaces: the
// base one keeps its V^+ cache warm across rounds (clean rounds repeat the
// same weight pattern); candidate solves churn through their own so they
// never evict it.
struct OutlierWorkspace {
  SmacofWorkspace smacof_base, smacof_cand;
  SmacofResult base, cand;
  std::vector<Edge> links, remaining;
  std::vector<std::size_t> pool, subset_slots, subset, best_subset, dropped_so_far;
  std::vector<double> residual;
  std::vector<Vec2> p0, p_min;
  Matrix w;  // candidate weight matrix

  // Parallel pruned-search state (used when search_threads != 1): one lane
  // of scratch per pool worker, a flattened subset list, and the per-
  // candidate stresses reduced serially in enumeration order.
  struct SearchLane {
    SmacofWorkspace smacof;
    SmacofResult result;
    Matrix w;
    Rng rng{0};  // never drawn from (warm solves have no restarts)
  };
  std::unique_ptr<ThreadPool> search_pool;
  std::vector<SearchLane> lanes;
  std::vector<std::size_t> flat_subsets;
  std::vector<double> cand_stress;
  std::vector<std::int64_t> cand_iters;
};

// Workspace variant: bit-identical to the allocating form, no steady-state
// heap traffic on clean (below-threshold) rounds.
void localize_with_outlier_detection_into(OutlierResult& out, const Matrix& dist,
                                          const Matrix& weights,
                                          const OutlierOptions& opts, uwp::Rng& rng,
                                          OutlierWorkspace& ws,
                                          const std::vector<Vec2>* init = nullptr);

// Enumeration helper: all size-k subsets of [0, n) (exposed for tests).
std::vector<std::vector<std::size_t>> subsets_of_size(std::size_t n, std::size_t k);

}  // namespace uwp::core
