// Classical (Torgerson) multidimensional scaling, used to initialize SMACOF.
// Missing entries (zero weight) are completed with graph shortest-path
// distances (the Isomap trick) before double centering.
#pragma once

#include <vector>

#include "util/geometry.hpp"
#include "util/linalg.hpp"
#include "util/matrix.hpp"

namespace uwp::core {

// Complete a partially observed distance matrix by all-pairs shortest paths
// over the observed links. Unreachable pairs fall back to the largest
// observed distance (keeps the Gram matrix bounded).
Matrix shortest_path_completion(const Matrix& dist, const Matrix& weights);

// Classical MDS embedding into 2D from a complete distance matrix.
std::vector<Vec2> classical_mds_2d(const Matrix& dist);

// Convenience: completion + embedding for weighted problems.
std::vector<Vec2> classical_mds_2d_weighted(const Matrix& dist, const Matrix& weights);

// Reusable scratch for the workspace variants below (bit-identical to the
// allocating forms; no steady-state heap traffic).
struct ClassicalMdsWorkspace {
  Matrix completed;  // shortest-path-completed distances
  Matrix d2, b;      // squared distances, double-centered Gram matrix
  std::vector<double> row_mean;
  EigenWorkspace eigen;
};

void shortest_path_completion_into(Matrix& out, const Matrix& dist,
                                   const Matrix& weights);
void classical_mds_2d_into(std::vector<Vec2>& out, const Matrix& dist,
                           ClassicalMdsWorkspace& ws);
void classical_mds_2d_weighted_into(std::vector<Vec2>& out, const Matrix& dist,
                                    const Matrix& weights, ClassicalMdsWorkspace& ws);

}  // namespace uwp::core
