#include "core/smacof.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/mds_classical.hpp"
#include "util/linalg.hpp"

namespace uwp::core {

double weighted_stress(const std::vector<Vec2>& x, const Matrix& dist, const Matrix& w) {
  double s = 0.0;
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      if (w(i, j) <= 0.0) continue;
      const double resid = dist(i, j) - distance(x[i], x[j]);
      s += w(i, j) * resid * resid;
    }
  return s;
}

namespace {

std::size_t count_links(const Matrix& w) {
  std::size_t links = 0;
  for (std::size_t i = 0; i < w.rows(); ++i)
    for (std::size_t j = i + 1; j < w.cols(); ++j)
      if (w(i, j) > 0.0) ++links;
  return links;
}

// One SMACOF solve from a given start.
SmacofResult run_from(std::vector<Vec2> x, const Matrix& dist, const Matrix& w,
                      const Matrix& v_pinv, const SmacofOptions& opts) {
  const std::size_t n = x.size();
  SmacofResult res;
  res.num_links = count_links(w);
  double stress = weighted_stress(x, dist, w);

  Matrix b(n, n);
  Matrix xm(n, 2);
  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    // Guttman transform: B(X) then X <- V^+ B(X) X.
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) b(i, j) = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (w(i, j) <= 0.0) continue;
        const double dij = distance(x[i], x[j]);
        const double val = dij > 1e-12 ? -w(i, j) * dist(i, j) / dij : 0.0;
        b(i, j) = val;
        b(j, i) = val;
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      double diag = 0.0;
      for (std::size_t j = 0; j < n; ++j)
        if (j != i) diag -= b(i, j);
      b(i, i) = diag;
    }
    for (std::size_t i = 0; i < n; ++i) {
      xm(i, 0) = x[i].x;
      xm(i, 1) = x[i].y;
    }
    const Matrix xn = v_pinv * (b * xm);
    for (std::size_t i = 0; i < n; ++i) x[i] = {xn(i, 0), xn(i, 1)};

    const double new_stress = weighted_stress(x, dist, w);
    res.iterations = iter + 1;
    if (stress - new_stress <= opts.rel_tolerance * std::max(stress, 1e-30)) {
      stress = new_stress;
      break;
    }
    stress = new_stress;
  }
  res.positions = std::move(x);
  res.stress = stress;
  res.normalized_stress =
      res.num_links > 0 ? std::sqrt(stress / static_cast<double>(res.num_links)) : 0.0;
  return res;
}

}  // namespace

SmacofResult smacof_2d(const Matrix& dist, const Matrix& w, const SmacofOptions& opts,
                       uwp::Rng& rng, const std::optional<std::vector<Vec2>>& init) {
  const std::size_t n = dist.rows();
  if (dist.cols() != n || w.rows() != n || w.cols() != n)
    throw std::invalid_argument("smacof_2d: shape mismatch");
  if (n == 0) return {};
  if (n == 1) {
    SmacofResult r;
    r.positions = {Vec2{0, 0}};
    return r;
  }

  // V = diag(sum_j w_ij) - W; pseudo-inverse handles the rank deficiency
  // from translation invariance (and disconnected graphs).
  Matrix v(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double diag = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      v(i, j) = -w(i, j);
      diag += w(i, j);
    }
    v(i, i) = diag;
  }
  const Matrix v_pinv = pseudo_inverse_symmetric(v);

  std::vector<std::vector<Vec2>> starts;
  if (init) {
    starts.push_back(*init);
  } else {
    starts.push_back(classical_mds_2d_weighted(dist, w));
  }
  for (int r = 0; r < opts.random_restarts; ++r) {
    std::vector<Vec2> rand_start(n);
    for (Vec2& p : rand_start)
      p = {rng.uniform(-opts.init_spread, opts.init_spread),
           rng.uniform(-opts.init_spread, opts.init_spread)};
    starts.push_back(std::move(rand_start));
  }

  SmacofResult best;
  bool have = false;
  for (const auto& start : starts) {
    SmacofResult res = run_from(start, dist, w, v_pinv, opts);
    if (!have || res.stress < best.stress) {
      best = std::move(res);
      have = true;
    }
  }
  return best;
}

}  // namespace uwp::core
