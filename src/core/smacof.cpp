#include "core/smacof.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/linalg.hpp"
#include "util/simd_kernels.hpp"

namespace uwp::core {

double weighted_stress(const std::vector<Vec2>& x, const Matrix& dist, const Matrix& w) {
  double s = 0.0;
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::span<const double> wrow = w.row(i);
    const std::span<const double> drow = dist.row(i);
    for (std::size_t j = i + 1; j < n; ++j) {
      if (wrow[j] <= 0.0) continue;
      const double resid = drow[j] - distance(x[i], x[j]);
      s += wrow[j] * resid * resid;
    }
  }
  return s;
}

namespace {

using Ops = simd::ActiveOps;

// Flatten the i < j, w > 0 links into the padded SoA form the kernels gather
// from. The link set is a pure function of the weight pattern, so one build
// serves every start (and every Guttman iteration) of a solve.
void build_links(LinkSoA& soa, const Matrix& dist, const Matrix& w) {
  const std::size_t n = w.rows();
  soa.i.clear();
  soa.j.clear();
  soa.w.clear();
  soa.d.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const std::span<const double> wrow = w.row(i);
    const std::span<const double> drow = dist.row(i);
    for (std::size_t j = i + 1; j < n; ++j) {
      if (wrow[j] <= 0.0) continue;
      soa.i.push_back(static_cast<std::uint32_t>(i));
      soa.j.push_back(static_cast<std::uint32_t>(j));
      soa.w.push_back(wrow[j]);
      soa.d.push_back(drow[j]);
    }
  }
  soa.count = soa.w.size();
  soa.padded = simd::padded(soa.count);
  soa.i.resize(soa.padded, 0);
  soa.j.resize(soa.padded, 0);
  soa.w.resize(soa.padded, 0.0);
  soa.d.resize(soa.padded, 0.0);
}

// One SMACOF solve from a given start, writing into `res`. Runs entirely on
// the workspace's padded SoA buffers: per-iteration link distances + stress
// come from one link_stress pass (distances reused by the next B fill), the
// Guttman products are fused 2-column mat-vecs over the padded B and V^+
// planes. The caller has built ws.links / ws.vp_pad and zeroed ws.b_pad for
// this link set.
void run_from(SmacofResult& res, const std::vector<Vec2>& start,
              const SmacofOptions& opts, SmacofWorkspace& ws) {
  const std::size_t n = start.size();
  const std::size_t np = simd::padded(n);
  const LinkSoA& links = ws.links;
  res.num_links = links.count;
  res.iterations = 0;

  ws.x.assign(np, 0.0);
  ws.y.assign(np, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    ws.x[k] = start[k].x;
    ws.y[k] = start[k].y;
  }
  ws.bx_x.assign(np, 0.0);
  ws.bx_y.assign(np, 0.0);
  ws.dij.resize(links.padded);
  ws.bvals.resize(links.padded);
  double* const x = ws.x.data();
  double* const y = ws.y.data();
  double* const dij = ws.dij.data();
  double* const bvals = ws.bvals.data();
  double* const b = ws.b_pad.data();

  double stress = kernels::link_stress<Ops>(x, y, links.i.data(), links.j.data(),
                                            links.w.data(), links.d.data(), dij,
                                            links.padded);
  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    // Guttman transform: B(X) then X <- V^+ B(X) X. Link distances come from
    // the stress evaluation of the same configuration (computed once).
    kernels::guttman_b_values<Ops>(links.w.data(), links.d.data(), dij, bvals,
                                   links.padded);
    for (std::size_t k = 0; k < links.count; ++k) {
      const std::size_t i = links.i[k];
      const std::size_t j = links.j[k];
      b[i * np + j] = bvals[k];
      b[j * np + i] = bvals[k];
    }
    // Diagonal = -(row sum): zero the stale diagonal slot first so the
    // blocked row sum sees only off-diagonal values.
    for (std::size_t i = 0; i < n; ++i) b[i * np + i] = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      b[i * np + i] = -kernels::block_sum<Ops>(b + i * np, np);
    kernels::matvec2<Ops>(b, np, n, x, y, ws.bx_x.data(), ws.bx_y.data());
    kernels::matvec2<Ops>(ws.vp_pad.data(), np, n, ws.bx_x.data(), ws.bx_y.data(), x,
                          y);

    const double new_stress = kernels::link_stress<Ops>(
        x, y, links.i.data(), links.j.data(), links.w.data(), links.d.data(), dij,
        links.padded);
    res.iterations = iter + 1;
    if (stress - new_stress <= opts.rel_tolerance * std::max(stress, 1e-30)) {
      stress = new_stress;
      break;
    }
    stress = new_stress;
  }
  res.stress = stress;
  res.normalized_stress =
      res.num_links > 0 ? std::sqrt(stress / static_cast<double>(res.num_links)) : 0.0;
  res.positions.resize(n);
  for (std::size_t k = 0; k < n; ++k) res.positions[k] = {x[k], y[k]};
}

}  // namespace

SmacofResult smacof_2d(const Matrix& dist, const Matrix& w, const SmacofOptions& opts,
                       uwp::Rng& rng, const std::optional<std::vector<Vec2>>& init) {
  SmacofWorkspace ws;
  SmacofResult out;
  smacof_2d_into(out, dist, w, opts, rng, init ? &*init : nullptr, ws);
  return out;
}

void smacof_2d_into(SmacofResult& out, const Matrix& dist, const Matrix& w,
                    const SmacofOptions& opts, uwp::Rng& rng,
                    const std::vector<Vec2>* init, SmacofWorkspace& ws) {
  const std::size_t n = dist.rows();
  if (dist.cols() != n || w.rows() != n || w.cols() != n)
    throw std::invalid_argument("smacof_2d: shape mismatch");
  // Reset without releasing the caller's buffers.
  out.positions.clear();
  out.stress = 0.0;
  out.normalized_stress = 0.0;
  out.iterations = 0;
  out.num_links = 0;
  if (n == 0) return;
  if (n == 1) {
    out.positions.assign(1, Vec2{0, 0});
    return;
  }

  // V = diag(sum_j w_ij) - W; pseudo-inverse handles the rank deficiency
  // from translation invariance (and disconnected graphs). Reused verbatim
  // when the weight matrix is the one already cached.
  const std::size_t np = simd::padded(n);
  if (!(ws.v_pinv_valid && ws.cached_w == w)) {
    Matrix& v = ws.v;
    v.assign(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      double diag = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        v(i, j) = -w(i, j);
        diag += w(i, j);
      }
      v(i, i) = diag;
    }
    pseudo_inverse_symmetric_into(v, ws.v_pinv, ws.mds.eigen);
    ws.vp_pad.assign(np * np, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::span<const double> prow = ws.v_pinv.row(i);
      std::copy(prow.begin(), prow.end(), ws.vp_pad.begin() + i * np);
    }
    ws.cached_w = w;
    ws.v_pinv_valid = true;
  }
  build_links(ws.links, dist, w);
  // The previous solve may have had a different link pattern: clear the whole
  // padded B plane so non-link (and pad) entries are exactly zero again.
  ws.b_pad.assign(np * np, 0.0);

  const std::size_t num_starts = 1 + static_cast<std::size_t>(
                                         opts.random_restarts > 0 ? opts.random_restarts : 0);
  if (ws.starts.size() < num_starts) ws.starts.resize(num_starts);
  if (init) {
    ws.starts[0].assign(init->begin(), init->end());
  } else {
    classical_mds_2d_weighted_into(ws.starts[0], dist, w, ws.mds);
  }
  for (std::size_t r = 1; r < num_starts; ++r) {
    std::vector<Vec2>& rand_start = ws.starts[r];
    rand_start.resize(n);
    for (Vec2& p : rand_start)
      p = {rng.uniform(-opts.init_spread, opts.init_spread),
           rng.uniform(-opts.init_spread, opts.init_spread)};
  }

  bool have = false;
  for (std::size_t s = 0; s < num_starts; ++s) {
    run_from(ws.scratch, ws.starts[s], opts, ws);
    if (!have || ws.scratch.stress < out.stress) {
      std::swap(out, ws.scratch);
      have = true;
    }
  }
}

}  // namespace uwp::core
